//===- tests/cache_reference_test.cpp - Differential cache validation -----===//
//
// Differential tests: the production cache simulators are checked against
// independent brute-force reference models on random access streams. Any
// indexing, tagging or LRU bookkeeping bug shows up as a divergence.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <list>
#include <vector>

using namespace allocsim;

namespace {

/// Brute-force direct-mapped model: an array of optional tags.
class ReferenceDirectMapped {
public:
  ReferenceDirectMapped(uint32_t CacheBytes, uint32_t LineBytes)
      : BlockBytes(LineBytes), Sets(CacheBytes / LineBytes),
        Tags(Sets, ~uint64_t(0)) {}

  bool access(Addr Address) {
    uint64_t Frame = Address / BlockBytes;
    uint64_t Set = Frame % Sets;
    if (Tags[Set] == Frame)
      return true;
    Tags[Set] = Frame;
    return false;
  }

private:
  uint32_t BlockBytes;
  uint64_t Sets;
  std::vector<uint64_t> Tags;
};

/// Brute-force set-associative LRU model: per-set std::list, MRU front.
class ReferenceSetAssoc {
public:
  ReferenceSetAssoc(uint32_t CacheBytes, uint32_t LineBytes, uint32_t NumWays)
      : BlockBytes(LineBytes), Assoc(NumWays),
        Sets(CacheBytes / LineBytes / NumWays), Ways(Sets) {}

  bool access(Addr Address) {
    uint64_t Frame = Address / BlockBytes;
    std::list<uint64_t> &Set = Ways[Frame % Sets];
    for (auto It = Set.begin(); It != Set.end(); ++It) {
      if (*It == Frame) {
        Set.erase(It);
        Set.push_front(Frame);
        return true;
      }
    }
    Set.push_front(Frame);
    if (Set.size() > Assoc)
      Set.pop_back();
    return false;
  }

private:
  uint32_t BlockBytes;
  uint32_t Assoc;
  uint64_t Sets;
  std::vector<std::list<uint64_t>> Ways;
};

/// Random stream with hot/cold mixture (tests both reuse and eviction).
std::vector<Addr> randomStream(uint64_t Seed, size_t Count,
                               uint32_t SpanBytes) {
  Rng R(Seed);
  std::vector<Addr> Stream;
  Stream.reserve(Count);
  Addr Hot = 0x10000000;
  for (size_t I = 0; I != Count; ++I) {
    Addr Address;
    if (R.nextBool(0.5))
      Address = Hot + 4 * static_cast<Addr>(R.nextBelow(256));
    else
      Address =
          0x10000000 + 4 * static_cast<Addr>(R.nextBelow(SpanBytes / 4));
    if (R.nextBool(0.01))
      Hot = 0x10000000 + 4 * static_cast<Addr>(R.nextBelow(SpanBytes / 4));
    Stream.push_back(Address);
  }
  return Stream;
}

} // namespace

TEST(CacheReferenceTest, DirectMappedMatchesBruteForce) {
  for (uint32_t SizeKb : {1u, 4u, 16u, 64u}) {
    DirectMappedCache Cache({SizeKb * 1024, 32, 1});
    ReferenceDirectMapped Reference(SizeKb * 1024, 32);
    uint64_t ReferenceMisses = 0;
    for (Addr Address : randomStream(SizeKb, 60000, 256 * 1024)) {
      Cache.access({Address, 4, AccessKind::Read,
                    AccessSource::Application});
      ReferenceMisses += !Reference.access(Address);
    }
    EXPECT_EQ(Cache.stats().Misses, ReferenceMisses)
        << SizeKb << "K direct-mapped diverged";
  }
}

TEST(CacheReferenceTest, SetAssocMatchesBruteForce) {
  for (uint32_t Assoc : {2u, 4u, 8u}) {
    SetAssocCache Cache({16 * 1024, 32, Assoc});
    ReferenceSetAssoc Reference(16 * 1024, 32, Assoc);
    uint64_t ReferenceMisses = 0;
    for (Addr Address : randomStream(Assoc, 60000, 128 * 1024)) {
      Cache.access({Address, 4, AccessKind::Read,
                    AccessSource::Application});
      ReferenceMisses += !Reference.access(Address);
    }
    EXPECT_EQ(Cache.stats().Misses, ReferenceMisses)
        << Assoc << "-way diverged";
  }
}

TEST(CacheReferenceTest, BlockSizesMatchBruteForce) {
  for (uint32_t BlockBytes : {16u, 64u, 128u}) {
    DirectMappedCache Cache({32 * 1024, BlockBytes, 1});
    ReferenceDirectMapped Reference(32 * 1024, BlockBytes);
    uint64_t ReferenceMisses = 0;
    for (Addr Address : randomStream(BlockBytes, 40000, 256 * 1024)) {
      Cache.access({Address, 4, AccessKind::Read,
                    AccessSource::Application});
      ReferenceMisses += !Reference.access(Address);
    }
    EXPECT_EQ(Cache.stats().Misses, ReferenceMisses)
        << BlockBytes << "B blocks diverged";
  }
}

TEST(CacheReferenceTest, FullyAssociativeEqualsLruStack) {
  // A one-set cache is plain LRU: with N ways, a cyclic sweep over N
  // blocks hits after warm-up and over N+1 blocks never hits.
  SetAssocCache Cache({8 * 32, 32, 8}); // 8 ways, one set
  for (int Round = 0; Round < 10; ++Round)
    for (Addr Block = 0; Block < 8; ++Block)
      Cache.access({Block * 32, 4, AccessKind::Read,
                    AccessSource::Application});
  EXPECT_EQ(Cache.stats().Misses, 8u);

  Cache.reset();
  for (int Round = 0; Round < 10; ++Round)
    for (Addr Block = 0; Block < 9; ++Block)
      Cache.access({Block * 32, 4, AccessKind::Read,
                    AccessSource::Application});
  EXPECT_EQ(Cache.stats().Misses, 90u) << "LRU must thrash on N+1 cycle";
}
