//===- tests/allocator_test.cpp - Per-allocator behavioral tests ----------===//

#include "alloc/Bsd.h"
#include "alloc/CustomAlloc.h"
#include "alloc/FirstFit.h"
#include "alloc/GnuGxx.h"
#include "alloc/GnuLocal.h"
#include "alloc/QuickFit.h"

#include <gtest/gtest.h>

#include <memory>

using namespace allocsim;

namespace {

struct Harness {
  MemoryBus Bus;
  SimHeap Heap{Bus};
  CostModel Cost;
};

} // namespace

//===----------------------------------------------------------------------===//
// Factory and naming
//===----------------------------------------------------------------------===//

TEST(AllocatorFactoryTest, CreatesEveryPaperAllocator) {
  for (AllocatorKind Kind : PaperAllocators) {
    Harness H;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, H.Heap, H.Cost);
    ASSERT_NE(Alloc, nullptr);
    EXPECT_EQ(Alloc->kind(), Kind);
    Addr Ptr = Alloc->malloc(24);
    EXPECT_NE(Ptr, 0u);
    Alloc->free(Ptr);
  }
}

TEST(AllocatorFactoryTest, NamesRoundTrip) {
  for (AllocatorKind Kind : PaperAllocators)
    EXPECT_EQ(parseAllocatorKind(allocatorKindName(Kind)), Kind);
  EXPECT_EQ(parseAllocatorKind("bsd"), AllocatorKind::Bsd);
  EXPECT_EQ(parseAllocatorKind("first-fit"), AllocatorKind::FirstFit);
}

TEST(AllocatorFactoryTest, CreatesTheModernBackends) {
  for (AllocatorKind Kind :
       {AllocatorKind::BitmapFit, AllocatorKind::SpaceFit}) {
    Harness H;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, H.Heap, H.Cost);
    ASSERT_NE(Alloc, nullptr);
    EXPECT_EQ(Alloc->kind(), Kind);
    Addr Ptr = Alloc->malloc(24);
    EXPECT_NE(Ptr, 0u);
    Alloc->free(Ptr);
    EXPECT_EQ(parseAllocatorKind(allocatorKindName(Kind)), Kind);
  }
  // The matrix axis accepts both spellings of each.
  EXPECT_EQ(parseAllocatorKind("bitmapfit"), AllocatorKind::BitmapFit);
  EXPECT_EQ(parseAllocatorKind("bitmap-fit"), AllocatorKind::BitmapFit);
  EXPECT_EQ(parseAllocatorKind("spacefit"), AllocatorKind::SpaceFit);
  EXPECT_EQ(parseAllocatorKind("space-fit"), AllocatorKind::SpaceFit);
}

//===----------------------------------------------------------------------===//
// FirstFit
//===----------------------------------------------------------------------===//

TEST(FirstFitTest, ReturnsAlignedDistinctRegions) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(10);
  Addr B = Alloc.malloc(10);
  EXPECT_EQ(A % 4, 0u);
  EXPECT_EQ(B % 4, 0u);
  EXPECT_TRUE(B >= A + 12 || A >= B + 12) << "objects overlap";
}

TEST(FirstFitTest, DataSurvivesOtherOperations) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(16);
  for (int I = 0; I < 4; ++I)
    H.Heap.poke32(A + 4 * I, 0xA0B0C0D0 + I);
  Addr B = Alloc.malloc(64);
  Alloc.free(B);
  Alloc.malloc(8);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(H.Heap.peek32(A + 4 * I), 0xA0B0C0D0u + I);
}

TEST(FirstFitTest, CoalescingRebuildsLargeBlock) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  // Carve three adjacent objects out of one sbrk chunk, free them in an
  // order that exercises next- and prev-coalescing, then reallocate the
  // combined space without heap growth.
  Addr A = Alloc.malloc(1000);
  Addr B = Alloc.malloc(1000);
  Addr C = Alloc.malloc(1000);
  EXPECT_EQ(B, A + 1008) << "expected adjacent carving";
  EXPECT_EQ(C, B + 1008);
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.free(A);
  Alloc.free(C);
  Alloc.free(B); // merges with both neighbors
  Addr Big = Alloc.malloc(3000);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore) << "coalescing failed";
  EXPECT_EQ(Big, A);
}

TEST(FirstFitTest, FreeingEverythingAllowsFullReuse) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  std::vector<Addr> Ptrs;
  for (int I = 0; I < 32; ++I)
    Ptrs.push_back(Alloc.malloc(100));
  uint32_t HeapBefore = Alloc.heapBytes();
  for (Addr Ptr : Ptrs)
    Alloc.free(Ptr);
  for (int I = 0; I < 32; ++I)
    Alloc.malloc(100);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore)
      << "reallocation of identical sizes must not grow the heap";
}

TEST(FirstFitTest, SplitsLargeBlocksForSmallRequests) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(2048);
  Alloc.free(A);
  Addr B = Alloc.malloc(16);
  Addr C = Alloc.malloc(16);
  EXPECT_EQ(B, A) << "first fit must reuse the hole's start";
  EXPECT_GT(C, B);
  EXPECT_LT(C, A + 2056) << "second allocation must come from the split";
}

TEST(FirstFitTest, ScanTelemetryGrowsWithSearch) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  std::vector<Addr> Small;
  for (int I = 0; I < 16; ++I)
    Small.push_back(Alloc.malloc(16));
  Addr Big = Alloc.malloc(4000);
  // Free the small blocks (interleaved with live ones they cannot merge
  // into a big block) and the big one; then allocating big again must scan
  // past the small remnants.
  for (size_t I = 0; I < Small.size(); I += 2)
    Alloc.free(Small[I]);
  Alloc.free(Big);
  uint64_t Before = Alloc.blocksSearched();
  Alloc.malloc(4000);
  EXPECT_GT(Alloc.blocksSearched(), Before);
}

TEST(FirstFitTest, BoundaryTagOverheadIsEightBytes) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(24);
  // Header directly before the object, footer right after it.
  EXPECT_EQ(H.Heap.peek32(A - 4), 32u | 1u);
  EXPECT_EQ(H.Heap.peek32(A + 24), 32u | 1u);
}

//===----------------------------------------------------------------------===//
// GnuGxx
//===----------------------------------------------------------------------===//

TEST(GnuGxxTest, BasicAllocFree) {
  Harness H;
  GnuGxx Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(40);
  Addr B = Alloc.malloc(4000);
  Addr C = Alloc.malloc(12);
  EXPECT_NE(A, 0u);
  Alloc.free(B);
  Alloc.free(A);
  Alloc.free(C);
  EXPECT_EQ(Alloc.stats().LiveBytes, 0u);
}

TEST(GnuGxxTest, ExactSizeReuseIsImmediate) {
  Harness H;
  GnuGxx Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(48);
  Alloc.malloc(48); // keep the region warm / non-trivial
  Alloc.free(A);
  Addr C = Alloc.malloc(48);
  EXPECT_EQ(C, A) << "LIFO bin must return the just-freed block";
}

TEST(GnuGxxTest, CoalescesAcrossBins) {
  Harness H;
  GnuGxx Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(500);
  Addr B = Alloc.malloc(500);
  Addr C = Alloc.malloc(500);
  (void)B;
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.free(A);
  Alloc.free(B);
  Alloc.free(C);
  // The three 508-byte blocks merged into one >1500-byte block.
  Alloc.malloc(1500);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore);
}

TEST(GnuGxxTest, SearchesHigherBinsWhenOwnBinEmpty) {
  Harness H;
  GnuGxx Alloc(H.Heap, H.Cost);
  Addr Big = Alloc.malloc(2048);
  Alloc.free(Big);
  // A small request must be served by splitting the big free block (which
  // is in a higher bin), not by growing the heap.
  uint32_t HeapBefore = Alloc.heapBytes();
  Addr Small = Alloc.malloc(24);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore);
  EXPECT_EQ(Small, Big);
}

//===----------------------------------------------------------------------===//
// BSD (Kingsley)
//===----------------------------------------------------------------------===//

TEST(BsdTest, BucketForRoundsUpIncludingHeader) {
  EXPECT_EQ(Bsd::bucketFor(1), 0u);   // 1+4 <= 16
  EXPECT_EQ(Bsd::bucketFor(12), 0u);  // 12+4 = 16
  EXPECT_EQ(Bsd::bucketFor(13), 1u);  // 13+4 = 17 -> 32
  EXPECT_EQ(Bsd::bucketFor(28), 1u);
  EXPECT_EQ(Bsd::bucketFor(29), 2u);  // -> 64
  EXPECT_EQ(Bsd::bucketFor(4092), 8u);
  EXPECT_EQ(Bsd::bucketFor(4093), 9u);
}

TEST(BsdTest, LifoReuseOfExactBlock) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(24);
  Alloc.free(A);
  Addr B = Alloc.malloc(20); // same bucket (32 bytes)
  EXPECT_EQ(B, A) << "freelist must hand back the most recently freed";
}

TEST(BsdTest, NeverCoalescesOrSplits) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  // Fill one page-bucket, free everything, allocate a larger class: the
  // freed small blocks must NOT be used for it.
  std::vector<Addr> Small;
  for (int I = 0; I < 10; ++I)
    Small.push_back(Alloc.malloc(24));
  for (Addr Ptr : Small)
    Alloc.free(Ptr);
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.malloc(100);
  EXPECT_GT(Alloc.heapBytes(), HeapBefore)
      << "a different size class must trigger fresh carving";
}

TEST(BsdTest, PageCarvingChainsWholePage) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  uint32_t HeapBefore = Alloc.heapBytes();
  // First 32-byte-class allocation carves a full page into 128 blocks...
  Addr First = Alloc.malloc(24);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore + 4096);
  // ...so the next 127 come with no further sbrk, at ascending addresses.
  Addr Prev = First;
  for (int I = 1; I < 128; ++I) {
    Addr Next = Alloc.malloc(24);
    EXPECT_EQ(Next, Prev + 32);
    Prev = Next;
  }
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore + 4096);
  Alloc.malloc(24);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore + 8192);
}

TEST(BsdTest, InternalFragmentationNearlyDoublesSpace) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  // 36-byte objects occupy 64-byte blocks: > 43% waste, the paper's
  // complaint about BSD.
  for (int I = 0; I < 64; ++I)
    Alloc.malloc(36);
  EXPECT_GE(Alloc.heapBytes(), 64u * 64u);
}

TEST(BsdTest, LargeObjects) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(100000);
  H.Heap.poke32(A, 1);
  H.Heap.poke32(A + 99996, 2);
  Alloc.free(A);
  Addr B = Alloc.malloc(100000);
  EXPECT_EQ(B, A);
}

//===----------------------------------------------------------------------===//
// QuickFit
//===----------------------------------------------------------------------===//

TEST(QuickFitTest, FastPathServesSmallSizes) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  for (uint32_t Size : {1u, 4u, 5u, 8u, 17u, 32u})
    EXPECT_NE(Alloc.malloc(Size), 0u);
  EXPECT_EQ(Alloc.fastMallocs(), 6u);
  EXPECT_EQ(Alloc.slowMallocs(), 0u);
}

TEST(QuickFitTest, LargeRequestsDelegate) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(33);
  EXPECT_EQ(Alloc.slowMallocs(), 1u);
  Alloc.free(A); // must route to the general allocator, not a fast list
  Addr B = Alloc.malloc(33);
  EXPECT_EQ(B, A) << "general allocator should reuse the freed block";
}

TEST(QuickFitTest, ExactLifoReuse) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(24);
  Alloc.malloc(24);
  Alloc.free(A);
  EXPECT_EQ(Alloc.malloc(24), A);
}

TEST(QuickFitTest, DistinctClassesDoNotMix) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(8);
  Alloc.free(A);
  // A 24-byte request must not reuse the freed 8-byte block.
  Addr B = Alloc.malloc(24);
  EXPECT_NE(B, A);
  // But another 8-byte request must.
  EXPECT_EQ(Alloc.malloc(8), A);
}

TEST(QuickFitTest, TailCarvingIsContiguous) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(16);
  Addr B = Alloc.malloc(16);
  EXPECT_EQ(B, A + 20) << "tail bump: header word + 16-byte payload apart";
}

TEST(QuickFitTest, FreeListsNeverCoalesce) {
  Harness H;
  QuickFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(16);
  Addr B = Alloc.malloc(16);
  Alloc.free(A);
  Alloc.free(B);
  // 32-byte request: adjacent free 16-byte fast blocks must NOT merge.
  Addr C = Alloc.malloc(32);
  EXPECT_NE(C, A);
}

//===----------------------------------------------------------------------===//
// GnuLocal (Haertel)
//===----------------------------------------------------------------------===//

TEST(GnuLocalTest, FragmentsArePowerOfTwoAlignedWithinBlock) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(24); // 32-byte fragment class
  Addr B = Alloc.malloc(24);
  EXPECT_EQ(A % 32, 0u);
  EXPECT_EQ(B % 32, 0u);
  EXPECT_EQ(A >> 12, B >> 12) << "same-class fragments share a block";
}

TEST(GnuLocalTest, NoPerObjectHeaders) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(32); // exactly a 32-byte fragment
  Addr B = Alloc.malloc(32);
  // Objects are exactly fragment-size apart: zero per-object overhead.
  EXPECT_EQ(B, A + 32) << "adjacent fragments within the fresh block";
}

TEST(GnuLocalTest, LifoFragmentReuse) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(40); // 64-byte class
  Alloc.malloc(40);
  Alloc.free(A);
  EXPECT_EQ(Alloc.malloc(40), A);
}

TEST(GnuLocalTest, WholeBlockReclaimedWhenAllFragmentsFree) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  std::vector<Addr> Frags;
  for (int I = 0; I < 8; ++I)
    Frags.push_back(Alloc.malloc(512)); // 8 x 512 = one full block
  EXPECT_EQ(Alloc.blocksReclaimed(), 0u);
  for (Addr Ptr : Frags)
    Alloc.free(Ptr);
  EXPECT_EQ(Alloc.blocksReclaimed(), 1u);
  // The reclaimed block must be reusable for a large allocation.
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.malloc(4096);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore);
}

TEST(GnuLocalTest, LargeAllocationsAreBlockAligned) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(5000); // 2 blocks
  EXPECT_EQ((A - H.Heap.base()) % 4096, 0u);
  H.Heap.poke32(A + 4996, 42);
  EXPECT_EQ(H.Heap.peek32(A + 4996), 42u);
}

TEST(GnuLocalTest, AdjacentFreeRunsCoalesce) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(4096);
  Addr B = Alloc.malloc(4096);
  Addr C = Alloc.malloc(4096);
  EXPECT_EQ(B, A + 4096);
  EXPECT_EQ(C, B + 4096);
  Alloc.free(A);
  Alloc.free(C);
  Alloc.free(B);
  uint32_t HeapBefore = Alloc.heapBytes();
  Addr Big = Alloc.malloc(3 * 4096);
  EXPECT_EQ(Big, A) << "coalesced run must be reused in place";
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore);
}

TEST(GnuLocalTest, RunSplitTakesFront) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(4 * 4096);
  Alloc.free(A);
  Addr B = Alloc.malloc(4096);
  EXPECT_EQ(B, A);
  Addr C = Alloc.malloc(4096);
  EXPECT_EQ(C, A + 4096);
}

TEST(GnuLocalTest, DescriptorTableGrowsWithHeap) {
  Harness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  // Allocate far more blocks than the initial table covers (64+).
  std::vector<Addr> Blocks;
  for (int I = 0; I < 300; ++I)
    Blocks.push_back(Alloc.malloc(4096));
  // Everything must still free and coalesce correctly afterwards.
  for (Addr Ptr : Blocks)
    Alloc.free(Ptr);
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.malloc(100 * 4096);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore)
      << "freed runs must satisfy a large allocation after table growth";
}

TEST(GnuLocalTest, TaggedVariantAddsTagTraffic) {
  Harness HPlain, HTagged;
  GnuLocal Plain(HPlain.Heap, HPlain.Cost, /*EmulateBoundaryTags=*/false);
  GnuLocal Tagged(HTagged.Heap, HTagged.Cost, /*EmulateBoundaryTags=*/true);
  EXPECT_FALSE(Plain.emulatesBoundaryTags());
  EXPECT_TRUE(Tagged.emulatesBoundaryTags());

  Addr A = Plain.malloc(24);
  Addr B = Tagged.malloc(24);
  Plain.free(A);
  Tagged.free(B);

  EXPECT_EQ(HPlain.Bus.accessesFrom(AccessSource::TagEmulation), 0u);
  EXPECT_EQ(HTagged.Bus.accessesFrom(AccessSource::TagEmulation), 4u)
      << "two tag writes on malloc, two tag reads on free";
}

TEST(GnuLocalTest, TaggedVariantUsesMoreSpacePerObject) {
  Harness HPlain, HTagged;
  GnuLocal Plain(HPlain.Heap, HPlain.Cost, false);
  GnuLocal Tagged(HTagged.Heap, HTagged.Cost, true);
  // 32-byte requests: plain uses 32-byte fragments; tagged needs 40 -> 64.
  for (int I = 0; I < 512; ++I) {
    Plain.malloc(32);
    Tagged.malloc(32);
  }
  EXPECT_GT(Tagged.heapBytes(), Plain.heapBytes());
}

//===----------------------------------------------------------------------===//
// Shared stats behavior
//===----------------------------------------------------------------------===//

TEST(AllocatorStatsTest, TracksCallsAndLiveBytes) {
  for (AllocatorKind Kind : PaperAllocators) {
    Harness H;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, H.Heap, H.Cost);
    Addr A = Alloc->malloc(100);
    Addr B = Alloc->malloc(50);
    EXPECT_EQ(Alloc->stats().MallocCalls, 2u);
    EXPECT_EQ(Alloc->stats().LiveBytes, 150u);
    EXPECT_EQ(Alloc->stats().MaxLiveBytes, 150u);
    EXPECT_EQ(Alloc->objectSize(A), 100u);
    Alloc->free(A);
    EXPECT_EQ(Alloc->stats().LiveBytes, 50u);
    EXPECT_EQ(Alloc->stats().MaxLiveBytes, 150u);
    Alloc->free(B);
    EXPECT_EQ(Alloc->stats().FreeCalls, 2u);
    EXPECT_EQ(Alloc->stats().BytesRequested, 150u);
  }
}

TEST(AllocatorStatsTest, DoubleFreeIsFatal) {
  Harness H;
  Bsd Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(8);
  Alloc.free(A);
  EXPECT_DEATH(Alloc.free(A), "unknown or already-freed");
}

TEST(AllocatorStatsTest, AllAllocatorReferencesAreTaggedAllocator) {
  for (AllocatorKind Kind : PaperAllocators) {
    Harness H;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, H.Heap, H.Cost);
    Addr A = Alloc->malloc(100);
    Alloc->free(A);
    EXPECT_GT(H.Bus.accessesFrom(AccessSource::Allocator), 0u)
        << allocatorKindName(Kind);
    EXPECT_EQ(H.Bus.accessesFrom(AccessSource::Application), 0u)
        << allocatorKindName(Kind);
  }
}

TEST(AllocatorStatsTest, AllocatorChargesInstructions) {
  for (AllocatorKind Kind : PaperAllocators) {
    Harness H;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, H.Heap, H.Cost);
    Alloc->free(Alloc->malloc(24));
    EXPECT_GT(H.Cost.allocInstructions(), 0u) << allocatorKindName(Kind);
    EXPECT_EQ(H.Cost.appInstructions(), 0u);
  }
}
