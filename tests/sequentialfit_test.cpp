//===- tests/sequentialfit_test.cpp - BestFit and FirstFit policies -------===//

#include "alloc/BestFit.h"
#include "alloc/FirstFit.h"
#include "core/Lab.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

struct Harness {
  MemoryBus Bus;
  SimHeap Heap{Bus};
  CostModel Cost;
};

} // namespace

//===----------------------------------------------------------------------===//
// BestFit
//===----------------------------------------------------------------------===//

TEST(BestFitTest, FactoryAndNames) {
  Harness H;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::BestFit, H.Heap, H.Cost);
  EXPECT_EQ(Alloc->kind(), AllocatorKind::BestFit);
  EXPECT_STREQ(Alloc->name(), "BestFit");
  EXPECT_EQ(parseAllocatorKind("best-fit"), AllocatorKind::BestFit);
}

TEST(BestFitTest, PrefersTightestHole) {
  Harness H;
  BestFit Alloc(H.Heap, H.Cost);
  // Build three holes of distinct sizes; keep separators live so the holes
  // cannot coalesce.
  Addr Big = Alloc.malloc(512);
  Alloc.malloc(16); // separator
  Addr Medium = Alloc.malloc(128);
  Alloc.malloc(16);
  Addr Small = Alloc.malloc(48);
  Alloc.malloc(16);
  Alloc.free(Big);
  Alloc.free(Medium);
  Alloc.free(Small);

  // A 40-byte request fits all three; best fit must take the 48-byte hole
  // even though the others precede it in LIFO order.
  EXPECT_EQ(Alloc.malloc(40), Small);
  // A 100-byte request now best-fits the 128-byte hole.
  EXPECT_EQ(Alloc.malloc(100), Medium);
  // And a 500-byte request the big one.
  EXPECT_EQ(Alloc.malloc(500), Big);
}

TEST(BestFitTest, ExactFitStopsSearch) {
  Harness H;
  BestFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(64);
  Alloc.malloc(16);
  Alloc.free(A);
  uint64_t Before = Alloc.blocksSearched();
  // Exactly matching request: found block has size 72 == need 72.
  Addr B = Alloc.malloc(64);
  EXPECT_EQ(B, A);
  // The freed block is at the list head; an exact match must stop there
  // (one candidate examined, plus none after).
  EXPECT_EQ(Alloc.blocksSearched(), Before + 1);
}

TEST(BestFitTest, CoalescesLikeFirstFit) {
  Harness H;
  BestFit Alloc(H.Heap, H.Cost);
  Addr A = Alloc.malloc(1000);
  Addr B = Alloc.malloc(1000);
  Addr C = Alloc.malloc(1000);
  uint32_t HeapBefore = Alloc.heapBytes();
  Alloc.free(B);
  Alloc.free(A);
  Alloc.free(C);
  EXPECT_EQ(Alloc.malloc(3000), A);
  EXPECT_EQ(Alloc.heapBytes(), HeapBefore);
}

TEST(BestFitTest, WastesLessThanFirstFitOnMixedHoles) {
  // Property: with varied hole sizes and varied requests, best fit should
  // not grow the heap more than first fit does.
  auto RunChurn = [](Allocator &Alloc) {
    Rng R(77);
    std::vector<Addr> Live;
    for (int Op = 0; Op < 4000; ++Op) {
      if (Live.size() < 60 || R.nextBool(0.5)) {
        uint32_t Size = 8 + 4 * static_cast<uint32_t>(R.nextBelow(120));
        Live.push_back(Alloc.malloc(Size));
      } else {
        size_t Victim = R.nextBelow(Live.size());
        Alloc.free(Live[Victim]);
        Live[Victim] = Live.back();
        Live.pop_back();
      }
    }
    return Alloc.heapBytes();
  };
  Harness HFirst, HBest;
  FirstFit First(HFirst.Heap, HFirst.Cost);
  BestFit Best(HBest.Heap, HBest.Cost);
  EXPECT_LE(RunChurn(Best), RunChurn(First) * 11 / 10);
}

//===----------------------------------------------------------------------===//
// FirstFit insertion policies
//===----------------------------------------------------------------------===//

TEST(FirstFitPolicyTest, AllPoliciesHonorTheContract) {
  for (FirstFitPolicy Policy :
       {FirstFitPolicy::Roving, FirstFitPolicy::Lifo,
        FirstFitPolicy::AddressOrdered}) {
    Harness H;
    FirstFit Alloc(H.Heap, H.Cost, Policy);
    EXPECT_EQ(Alloc.policy(), Policy);

    Rng R(123);
    std::vector<std::pair<Addr, uint32_t>> Live;
    for (int Op = 0; Op < 2000; ++Op) {
      if (Live.size() < 40 || R.nextBool(0.5)) {
        uint32_t Size = 4 + 4 * static_cast<uint32_t>(R.nextBelow(100));
        Addr Ptr = Alloc.malloc(Size);
        ASSERT_EQ(Ptr % 4, 0u);
        for (const auto &[Other, OtherSize] : Live)
          ASSERT_TRUE(Ptr + Size <= Other || Other + OtherSize <= Ptr)
              << "overlap under policy " << int(Policy);
        Live.emplace_back(Ptr, Size);
      } else {
        size_t Victim = R.nextBelow(Live.size());
        Alloc.free(Live[Victim].first);
        Live[Victim] = Live.back();
        Live.pop_back();
      }
    }
    for (const auto &[Ptr, Size] : Live)
      Alloc.free(Ptr);
    EXPECT_EQ(Alloc.stats().LiveBytes, 0u);
  }
}

TEST(FirstFitPolicyTest, AddressOrderedKeepsListSorted) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost, FirstFitPolicy::AddressOrdered);
  // Create holes at known, out-of-order free sequence.
  std::vector<Addr> Ptrs;
  for (int I = 0; I < 8; ++I) {
    Ptrs.push_back(Alloc.malloc(100));
    Alloc.malloc(16); // separator
  }
  // Free in a scrambled order.
  for (int I : {5, 1, 7, 3, 0, 6, 2, 4})
    Alloc.free(Ptrs[I]);
  // Address-ordered first fit must now serve same-size requests in
  // ascending address order.
  Addr Prev = 0;
  for (int I = 0; I < 8; ++I) {
    Addr Ptr = Alloc.malloc(100);
    EXPECT_GT(Ptr, Prev) << "allocation " << I << " out of address order";
    Prev = Ptr;
  }
}

TEST(FirstFitPolicyTest, LifoReusesMostRecentHole) {
  Harness H;
  FirstFit Alloc(H.Heap, H.Cost, FirstFitPolicy::Lifo);
  Addr A = Alloc.malloc(64);
  Alloc.malloc(16);
  Addr B = Alloc.malloc(64);
  Alloc.malloc(16);
  Alloc.free(A);
  Alloc.free(B);
  // LIFO: B freed last, so it is at the head and gets reused first.
  EXPECT_EQ(Alloc.malloc(64), B);
  EXPECT_EQ(Alloc.malloc(64), A);
}

TEST(FirstFitPolicyTest, LabRunsAllDisciplines) {
  for (FirstFitPolicy Policy :
       {FirstFitPolicy::Roving, FirstFitPolicy::Lifo,
        FirstFitPolicy::AddressOrdered}) {
    ExperimentConfig Config;
    Config.Workload = WorkloadId::Make;
    Config.Allocator = AllocatorKind::FirstFit;
    Config.FirstFitDiscipline = Policy;
    Config.Engine.Scale = 8;
    Config.Caches = {CacheConfig{16 * 1024, 32, 1}};
    RunResult Result = runExperiment(Config);
    EXPECT_GT(Result.BlocksSearched, 0u);
    EXPECT_GT(Result.Caches[0].Stats.Accesses, 0u);
  }
}

TEST(FirstFitPolicyTest, BestFitRunsThroughLab) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Make;
  Config.Allocator = AllocatorKind::BestFit;
  Config.Engine.Scale = 8;
  RunResult Result = runExperiment(Config);
  EXPECT_GT(Result.TotalRefs, 0u);
  EXPECT_GT(Result.BlocksSearched, 0u);
}
