#!/usr/bin/env python3
"""Unit tests for the CI gate scripts (tools/check_perf_baseline.py and
tools/check_coverage.py): malformed JSON, missing configs, schema
violations, and the pass/fail edges of the ratio and floor comparisons.

Run directly or through ctest (registered in tests/CMakeLists.txt). The
scripts are exercised as subprocesses — exit codes are the contract CI
relies on. For the perf gate: 0 = pass, 1 = regression or a malformed
*current* report, 2 = bad usage or a malformed/missing *baseline* (a
broken gate must fail loudly, not pass vacuously).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PERF_GATE = os.path.join(REPO_ROOT, "tools", "check_perf_baseline.py")
COVERAGE_GATE = os.path.join(REPO_ROOT, "tools", "check_coverage.py")


def run_gate(script, *args):
    """Runs a gate script; returns (exit_code, stdout+stderr)."""
    proc = subprocess.run(
        [sys.executable, script, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout


def perf_config(name, speedup, **overrides):
    config = {
        "name": name,
        "scalar_refs_per_sec": 1e6,
        "batched_refs_per_sec": speedup * 1e6,
        "speedup": speedup,
    }
    config.update(overrides)
    return config


def perf_report(*configs):
    return {"schema": "allocsim-bench-pipeline-v1", "configs": list(configs)}


def engines_config(name, speedup, **overrides):
    config = {
        "name": name,
        "percfg_refs_per_sec": 1e6,
        "stackdist_refs_per_sec": speedup * 1e6,
        "speedup": speedup,
    }
    config.update(overrides)
    return config


def engines_report(*configs):
    return {"schema": "allocsim-bench-engines-v1", "configs": list(configs)}


class GateTestCase(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            if isinstance(payload, str):
                handle.write(payload)
            else:
                json.dump(payload, handle)
        return path


class CheckPerfBaselineTest(GateTestCase):
    def test_identical_reports_pass(self):
        base = self.write("base.json", perf_report(perf_config("cache16", 3.0)))
        cur = self.write("cur.json", perf_report(perf_config("cache16", 3.0)))
        code, out = run_gate(PERF_GATE, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("within tolerance", out)

    def test_success_reports_measured_over_baseline_ratio(self):
        # The per-config line and the success summary both carry the
        # measured/baseline speedup ratio, so a green CI log still shows
        # how much headroom is left before the floor.
        base = self.write("base.json", perf_report(perf_config("c", 4.0)))
        cur = self.write("cur.json", perf_report(perf_config("c", 3.0)))
        code, out = run_gate(PERF_GATE, base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("ratio 0.750", out)
        self.assertIn("ratio min 0.750, max 0.750", out)

    def test_speedup_exactly_at_floor_passes(self):
        # floor = 4.0 * (1 - 0.30) = 2.8; the comparison is >=, so exactly
        # 2.8 passes and anything below fails.
        base = self.write("base.json", perf_report(perf_config("c", 4.0)))
        at_floor = self.write("at.json", perf_report(perf_config("c", 2.8)))
        code, out = run_gate(PERF_GATE, base, at_floor)
        self.assertEqual(code, 0, out)

    def test_speedup_below_floor_fails(self):
        base = self.write("base.json", perf_report(perf_config("c", 4.0)))
        below = self.write("below.json", perf_report(perf_config("c", 2.79)))
        code, out = run_gate(PERF_GATE, base, below)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)

    def test_tolerance_flag_moves_the_floor(self):
        # floor at 5% tolerance = 4.0 * 0.95 = 3.8: the default 30%
        # tolerance would accept 3.7, the tightened gate must not.
        base = self.write("base.json", perf_report(perf_config("c", 4.0)))
        ok = self.write("ok.json", perf_report(perf_config("c", 3.85)))
        code, out = run_gate(PERF_GATE, base, ok, "--tolerance", "0.05")
        self.assertEqual(code, 0, out)
        tight = self.write("tight.json", perf_report(perf_config("c", 3.7)))
        code, out = run_gate(PERF_GATE, base, tight)
        self.assertEqual(code, 0, out)
        code, out = run_gate(PERF_GATE, base, tight, "--tolerance", "0.05")
        self.assertEqual(code, 1, out)

    def test_tolerance_outside_unit_interval_is_usage_error(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        for bad in ("0", "1", "-0.5", "1.5"):
            code, _ = run_gate(PERF_GATE, base, base, "--tolerance", bad)
            self.assertEqual(code, 2, f"--tolerance {bad}")

    def test_malformed_current_fails(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        broken = self.write("broken.json", "{not json")
        code, out = run_gate(PERF_GATE, base, broken)
        self.assertEqual(code, 1, out)
        self.assertIn("cannot read", out)

    def test_malformed_baseline_is_broken_gate(self):
        # A broken *baseline* means the gate itself cannot gate: that must
        # be exit 2, loudly, never a vacuous pass or a mere exit 1 that a
        # later green pair could mask.
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        broken = self.write("broken.json", "{not json")
        code, out = run_gate(PERF_GATE, broken, base)
        self.assertEqual(code, 2, out)
        self.assertIn("bad baseline", out)

    def test_missing_current_fails(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        code, out = run_gate(PERF_GATE, base, os.path.join(self.dir.name, "nope.json"))
        self.assertEqual(code, 1, out)

    def test_missing_baseline_is_broken_gate(self):
        cur = self.write("cur.json", perf_report(perf_config("c", 2.0)))
        code, out = run_gate(
            PERF_GATE, os.path.join(self.dir.name, "nope.json"), cur
        )
        self.assertEqual(code, 2, out)
        self.assertIn("bad baseline", out)

    def test_wrong_schema_rejected(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        wrong = self.write(
            "wrong.json", {"schema": "allocsim-matrix-v1", "configs": [perf_config("c", 2.0)]}
        )
        code, out = run_gate(PERF_GATE, base, wrong)
        self.assertEqual(code, 1, out)
        self.assertIn("schema", out)

    def test_empty_or_missing_configs_rejected(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        empty = self.write("empty.json", {"schema": "allocsim-bench-pipeline-v1", "configs": []})
        code, out = run_gate(PERF_GATE, base, empty)
        self.assertEqual(code, 1, out)
        noconfigs = self.write("none.json", {"schema": "allocsim-bench-pipeline-v1"})
        code, out = run_gate(PERF_GATE, base, noconfigs)
        self.assertEqual(code, 1, out)

    def test_config_missing_key_rejected(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        incomplete = self.write(
            "inc.json",
            {
                "schema": "allocsim-bench-pipeline-v1",
                "configs": [{"name": "c", "speedup": 2.0}],
            },
        )
        code, out = run_gate(PERF_GATE, base, incomplete)
        self.assertEqual(code, 1, out)
        self.assertIn("missing", out)

    def test_nonpositive_rates_rejected(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        zero = self.write(
            "zero.json", perf_report(perf_config("c", 2.0, scalar_refs_per_sec=0))
        )
        code, out = run_gate(PERF_GATE, base, zero)
        self.assertEqual(code, 1, out)
        negative = self.write("neg.json", perf_report(perf_config("c", -1.0)))
        code, out = run_gate(PERF_GATE, base, negative)
        self.assertEqual(code, 1, out)

    def test_current_missing_baseline_config_fails(self):
        base = self.write(
            "base.json",
            perf_report(perf_config("cache16", 3.0), perf_config("paging", 2.0)),
        )
        cur = self.write("cur.json", perf_report(perf_config("cache16", 3.0)))
        code, out = run_gate(PERF_GATE, base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("paging", out)

    def test_extra_current_configs_are_fine(self):
        # New configs appear when benches grow; only baseline configs gate.
        base = self.write("base.json", perf_report(perf_config("cache16", 3.0)))
        cur = self.write(
            "cur.json",
            perf_report(perf_config("cache16", 3.0), perf_config("new", 0.5)),
        )
        code, out = run_gate(PERF_GATE, base, cur)
        self.assertEqual(code, 0, out)

    def test_odd_path_count_is_usage_error(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        code, out = run_gate(PERF_GATE, base)
        self.assertEqual(code, 2, out)
        code, out = run_gate(PERF_GATE, base, base, base)
        self.assertEqual(code, 2, out)

    def test_engines_schema_gates_like_pipeline(self):
        base = self.write("base.json", engines_report(engines_config("fig678", 6.0)))
        good = self.write("good.json", engines_report(engines_config("fig678", 5.5)))
        code, out = run_gate(PERF_GATE, base, good)
        self.assertEqual(code, 0, out)
        bad = self.write("bad.json", engines_report(engines_config("fig678", 3.0)))
        code, out = run_gate(PERF_GATE, base, bad)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)

    def test_schema_mismatch_within_pair_fails(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        other = self.write("other.json", engines_report(engines_config("c", 2.0)))
        code, out = run_gate(PERF_GATE, base, other)
        self.assertEqual(code, 1, out)
        self.assertIn("schema mismatch", out)

    def test_multiple_pairs_worst_exit_wins(self):
        base = self.write("base.json", perf_report(perf_config("c", 2.0)))
        good = self.write("good.json", perf_report(perf_config("c", 2.0)))
        bad = self.write("bad.json", perf_report(perf_config("c", 1.0)))
        ebase = self.write("ebase.json", engines_report(engines_config("e", 6.0)))
        egood = self.write("egood.json", engines_report(engines_config("e", 6.0)))
        code, out = run_gate(PERF_GATE, base, good, ebase, egood)
        self.assertEqual(code, 0, out)
        # A failing pair is not masked by a later passing one.
        code, out = run_gate(PERF_GATE, base, bad, ebase, egood)
        self.assertEqual(code, 1, out)
        # A broken baseline dominates a mere regression.
        broken = self.write("broken.json", "{not json")
        code, out = run_gate(PERF_GATE, base, bad, broken, egood)
        self.assertEqual(code, 2, out)

    def test_min_speedup_is_an_absolute_floor(self):
        # min_speedup pins a claim ("stackdist is >= 5x on this sweep")
        # that the 30% tolerance would otherwise erode: baseline 8.0 with
        # tolerance floor 5.6 vs min_speedup 5.0 -> the tighter of the two
        # gates (5.6 here); with a baseline of 6.0 the tolerance floor 4.2
        # would pass 4.5, but min_speedup 5.0 must not.
        base = self.write(
            "base.json",
            engines_report(engines_config("dense", 6.0, min_speedup=5.0)),
        )
        ok = self.write("ok.json", engines_report(engines_config("dense", 5.2)))
        code, out = run_gate(PERF_GATE, base, ok)
        self.assertEqual(code, 0, out)
        self.assertIn("min_speedup", out)
        below = self.write("below.json", engines_report(engines_config("dense", 4.5)))
        code, out = run_gate(PERF_GATE, base, below)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)

    def test_committed_baselines_are_loadable(self):
        # The real baselines at the repo root must stay parseable: a decayed
        # committed baseline must show up here, not as a vacuous CI pass.
        for name in ("BENCH_pipeline.json", "BENCH_cache_engines.json"):
            committed = os.path.join(REPO_ROOT, name)
            self.assertTrue(os.path.exists(committed), committed)
            code, out = run_gate(PERF_GATE, committed, committed)
            self.assertEqual(code, 0, (name, out))


class CheckCoverageTest(GateTestCase):
    def ratchet(self, floor):
        return self.write("ratchet.json", {"line_percent_floor": floor})

    def summary(self, covered, total):
        return self.write(
            "summary.json", {"line_covered": covered, "line_total": total}
        )

    def test_above_floor_passes(self):
        code, out = run_gate(COVERAGE_GATE, self.summary(90, 100), self.ratchet(85.0))
        self.assertEqual(code, 0, out)

    def test_exactly_at_floor_passes(self):
        code, out = run_gate(COVERAGE_GATE, self.summary(85, 100), self.ratchet(85.0))
        self.assertEqual(code, 0, out)

    def test_below_floor_fails(self):
        code, out = run_gate(COVERAGE_GATE, self.summary(80, 100), self.ratchet(85.0))
        self.assertEqual(code, 1, out)
        self.assertIn("below the committed floor", out)

    def test_percent_fallback_when_counts_absent(self):
        summary = self.write("summary.json", {"line_percent": 72.5})
        code, out = run_gate(COVERAGE_GATE, summary, self.ratchet(70.0))
        self.assertEqual(code, 0, out)
        code, out = run_gate(COVERAGE_GATE, summary, self.ratchet(75.0))
        self.assertEqual(code, 1, out)

    def test_malformed_inputs_fail_cleanly(self):
        good_summary = self.summary(90, 100)
        broken = self.write("broken.json", "]")
        code, out = run_gate(COVERAGE_GATE, broken, self.ratchet(50.0))
        self.assertEqual(code, 1, out)
        code, out = run_gate(COVERAGE_GATE, good_summary, broken)
        self.assertEqual(code, 1, out)
        no_floor = self.write("nofloor.json", {})
        code, out = run_gate(COVERAGE_GATE, good_summary, no_floor)
        self.assertEqual(code, 1, out)
        bad_floor = self.write("badfloor.json", {"line_percent_floor": 120})
        code, out = run_gate(COVERAGE_GATE, good_summary, bad_floor)
        self.assertEqual(code, 1, out)
        empty = self.write("empty.json", {"line_covered": 0, "line_total": 0})
        code, out = run_gate(COVERAGE_GATE, empty, self.ratchet(50.0))
        self.assertEqual(code, 1, out)

    def test_suggest_prints_headroom_hint(self):
        code, out = run_gate(
            COVERAGE_GATE, self.summary(95, 100), self.ratchet(80.0), "--suggest"
        )
        self.assertEqual(code, 0, out)
        self.assertIn("raising", out)

    def test_committed_ratchet_is_loadable(self):
        # The real COVERAGE.json at the repo root must stay parseable and
        # consistent with a plausible summary.
        committed = os.path.join(REPO_ROOT, "COVERAGE.json")
        self.assertTrue(os.path.exists(committed), committed)
        code, out = run_gate(COVERAGE_GATE, self.summary(100, 100), committed)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
