#!/usr/bin/env python3
"""Pins allocsim_lint's command-line contract: exit codes (0 = every input
clean, 1 = findings reported, 2 = usage or IO error) and the shape of the
allocsim-lint-v1 JSON report. CI and editor integrations match on rule ids,
file:line:column prefixes, and the schema string — changing any of those is
a breaking change this test is meant to catch.

Registered in tests/CMakeLists.txt with the allocsim_lint binary path as
argv[1] (a CMake generator expression); run through ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

LINT_BIN = None  # set from argv[1] in __main__

CLEAN_SCRIPT = "m 1 100\nt 1 25 r\nm 2 64\nf 1\nt 2 4 w\nf 2\n"
DOUBLE_FREE_SCRIPT = "m 1 16\nf 1\nf 1\n"
LEAK_SCRIPT = "m 1 16\nm 2 32\nf 1\n"
USE_AFTER_FREE_SCRIPT = "m 1 16\nf 1\nt 1 2 w\n"


def run_lint(*args):
    proc = subprocess.run(
        [LINT_BIN, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout


class LintGateTestCase(unittest.TestCase):
    def setUp(self):
        self.tmpdir = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmpdir.cleanup)

    def script(self, name, text):
        path = os.path.join(self.tmpdir.name, name)
        with open(path, "w") as handle:
            handle.write(text)
        return path


class ExitCodeTest(LintGateTestCase):
    def test_clean_script_exits_zero(self):
        code, out = run_lint(self.script("ok.events", CLEAN_SCRIPT))
        self.assertEqual(code, 0, out)
        self.assertIn("clean", out)

    def test_findings_exit_one(self):
        code, out = run_lint(self.script("bad.events", DOUBLE_FREE_SCRIPT))
        self.assertEqual(code, 1, out)

    def test_warnings_alone_exit_one(self):
        code, out = run_lint(self.script("leak.events", LEAK_SCRIPT))
        self.assertEqual(code, 1, out)
        self.assertIn("trace-leak", out)

    def test_no_inputs_is_usage_error(self):
        code, _ = run_lint()
        self.assertEqual(code, 2)

    def test_unreadable_file_is_io_error(self):
        code, _ = run_lint(os.path.join(self.tmpdir.name, "absent.events"))
        self.assertEqual(code, 2)

    def test_mixed_inputs_exit_one_if_any_dirty(self):
        code, _ = run_lint(
            self.script("ok.events", CLEAN_SCRIPT),
            self.script("bad.events", DOUBLE_FREE_SCRIPT),
        )
        self.assertEqual(code, 1)


class DiagnosticFormatTest(LintGateTestCase):
    def test_double_free_rule_and_location(self):
        path = self.script("bad.events", DOUBLE_FREE_SCRIPT)
        code, out = run_lint(path)
        self.assertEqual(code, 1)
        self.assertIn("%s:3:1: error:" % path, out)
        self.assertIn("[trace-double-free]", out)

    def test_use_after_free_rule_and_location(self):
        path = self.script("uaf.events", USE_AFTER_FREE_SCRIPT)
        code, out = run_lint(path)
        self.assertEqual(code, 1)
        self.assertIn("%s:3:1: error:" % path, out)
        self.assertIn("[trace-touch-dead]", out)

    def test_leak_reported_at_malloc_line(self):
        path = self.script("leak.events", LEAK_SCRIPT)
        code, out = run_lint(path)
        self.assertEqual(code, 1)
        self.assertIn("%s:2:1: warning:" % path, out)
        self.assertIn("[trace-leak]", out)

    def test_matrix_spec_lint(self):
        code, out = run_lint(
            "--matrix", "workloads=gs;allocators=BSD;workloads=es"
        )
        self.assertEqual(code, 1)
        self.assertIn("[spec-duplicate-axis]", out)
        code, out = run_lint("--matrix", "workloads=gs;allocators=BSD")
        self.assertEqual(code, 0, out)


class JsonReportTest(LintGateTestCase):
    def lint_json(self, *args):
        code, out = run_lint("--json=true", *args)
        return code, json.loads(out)

    def test_schema_and_totals(self):
        code, report = self.lint_json(
            self.script("ok.events", CLEAN_SCRIPT),
            self.script("bad.events", DOUBLE_FREE_SCRIPT),
        )
        self.assertEqual(code, 1)
        self.assertEqual(report["schema"], "allocsim-lint-v1")
        self.assertEqual(len(report["inputs"]), 2)
        self.assertEqual(report["errors"], 1)
        self.assertFalse(report["clean"])

    def test_diagnostic_object_shape(self):
        code, report = self.lint_json(
            self.script("bad.events", DOUBLE_FREE_SCRIPT)
        )
        self.assertEqual(code, 1)
        (entry,) = report["inputs"]
        self.assertEqual(entry["kind"], "trace")
        (diag,) = entry["diagnostics"]
        self.assertEqual(diag["rule"], "trace-double-free")
        self.assertEqual(diag["severity"], "error")
        self.assertEqual(diag["line"], 3)
        self.assertEqual(diag["column"], 1)
        self.assertIn("message", diag)
        self.assertNotIn("predictions", entry)

    def test_clean_trace_carries_predictions(self):
        code, report = self.lint_json(self.script("ok.events", CLEAN_SCRIPT))
        self.assertEqual(code, 0)
        (entry,) = report["inputs"]
        self.assertTrue(report["clean"])
        predictions = entry["predictions"]
        self.assertEqual(predictions["events"], 6)
        self.assertEqual(predictions["mallocs"], 2)
        self.assertEqual(predictions["frees"], 2)
        self.assertEqual(predictions["bytes_requested"], 164)
        self.assertEqual(predictions["max_live_bytes"], 164)
        self.assertEqual(predictions["final_live_bytes"], 0)
        self.assertEqual(predictions["max_live_objects"], 2)
        self.assertEqual(predictions["app_refs"], 29)
        self.assertEqual(predictions["request_bytes"]["count"], 2)
        self.assertEqual(predictions["obj_lifetime"]["count"], 2)

    def test_matrix_input_kind(self):
        code, report = self.lint_json("--matrix", "workloads=gs")
        self.assertEqual(code, 1)
        (entry,) = report["inputs"]
        self.assertEqual(entry["kind"], "matrix-spec")
        self.assertEqual(entry["name"], "--matrix")
        rules = {diag["rule"] for diag in entry["diagnostics"]}
        self.assertIn("spec-missing-allocators", rules)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: lint_gate_test.py <path-to-allocsim_lint> [...]")
    LINT_BIN = sys.argv.pop(1)
    unittest.main(verbosity=2)
