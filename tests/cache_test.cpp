//===- tests/cache_test.cpp - Cache simulator tests -----------------------===//

#include "cache/CacheSim.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

MemAccess read4(Addr Address,
                AccessSource Source = AccessSource::Application) {
  return {Address, 4, AccessKind::Read, Source};
}

} // namespace

TEST(CacheConfigTest, Validity) {
  EXPECT_TRUE((CacheConfig{16 * 1024, 32, 1}).valid());
  EXPECT_TRUE((CacheConfig{64 * 1024, 32, 4}).valid());
  EXPECT_FALSE((CacheConfig{1000, 32, 1}).valid());   // not a power of two
  EXPECT_FALSE((CacheConfig{16 * 1024, 24, 1}).valid());
  EXPECT_FALSE((CacheConfig{32, 32, 2}).valid());     // assoc > blocks
}

TEST(CacheConfigTest, Geometry) {
  CacheConfig Config{16 * 1024, 32, 1};
  EXPECT_EQ(Config.numBlocks(), 512u);
  EXPECT_EQ(Config.numSets(), 512u);
  CacheConfig Assoc{16 * 1024, 32, 4};
  EXPECT_EQ(Assoc.numSets(), 128u);
}

TEST(DirectMappedCacheTest, ColdMissThenHit) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x1000));
  Cache.access(read4(0x1000));
  Cache.access(read4(0x1004)); // same 32-byte block
  EXPECT_EQ(Cache.stats().Accesses, 3u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
}

TEST(DirectMappedCacheTest, ConflictEviction) {
  // 1024-byte cache: addresses 1024 apart map to the same set.
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x0000));
  Cache.access(read4(0x0400)); // evicts 0x0000
  Cache.access(read4(0x0000)); // misses again
  EXPECT_EQ(Cache.stats().Misses, 3u);
}

TEST(DirectMappedCacheTest, DistinctSetsDoNotConflict) {
  DirectMappedCache Cache({1024, 32, 1});
  for (Addr A = 0; A < 1024; A += 32)
    Cache.access(read4(A));
  for (Addr A = 0; A < 1024; A += 32)
    Cache.access(read4(A));
  EXPECT_EQ(Cache.stats().Misses, 32u) << "second sweep must fully hit";
}

TEST(DirectMappedCacheTest, StraddlingAccessTouchesTwoBlocks) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access({0x1e, 4, AccessKind::Read, AccessSource::Application});
  EXPECT_EQ(Cache.stats().Accesses, 2u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(DirectMappedCacheTest, WriteAllocates) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access({0x40, 4, AccessKind::Write, AccessSource::Application});
  Cache.access(read4(0x44));
  EXPECT_EQ(Cache.stats().Misses, 1u) << "write must install the block";
}

TEST(DirectMappedCacheTest, PerSourceAttribution) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x000, AccessSource::Application));
  Cache.access(read4(0x400, AccessSource::Allocator)); // evicts
  Cache.access(read4(0x000, AccessSource::Application));
  EXPECT_EQ(Cache.stats().accessesFrom(AccessSource::Application), 2u);
  EXPECT_EQ(Cache.stats().missesFrom(AccessSource::Application), 2u);
  EXPECT_EQ(Cache.stats().missesFrom(AccessSource::Allocator), 1u);
}

TEST(DirectMappedCacheTest, ResetClears) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x0));
  Cache.reset();
  EXPECT_EQ(Cache.stats().Accesses, 0u);
  Cache.access(read4(0x0));
  EXPECT_EQ(Cache.stats().Misses, 1u) << "contents cleared";
}

TEST(SetAssocCacheTest, LruKeepsWorkingSetOfAssocSize) {
  // One-set cache (2 blocks, 2-way): any two blocks co-reside.
  SetAssocCache Cache({64, 32, 2});
  Cache.access(read4(0x00));
  Cache.access(read4(0x40));
  Cache.access(read4(0x00));
  Cache.access(read4(0x40));
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(SetAssocCacheTest, LruEvictsLeastRecent) {
  SetAssocCache Cache({64, 32, 2});
  Cache.access(read4(0x00)); // miss {00}
  Cache.access(read4(0x40)); // miss {40,00}
  Cache.access(read4(0x00)); // hit  {00,40}
  Cache.access(read4(0x80)); // miss, evicts 0x40 -> {80,00}
  Cache.access(read4(0x00)); // hit
  Cache.access(read4(0x40)); // miss
  EXPECT_EQ(Cache.stats().Misses, 4u);
}

TEST(SetAssocCacheTest, HigherAssociativityNeverWorseOnSequentialConflict) {
  // A classic conflict pattern: k+1 blocks mapping to one set of a
  // direct-mapped cache, reused cyclically.
  DirectMappedCache Direct({1024, 32, 1});
  SetAssocCache Assoc({1024, 32, 4});
  for (int Round = 0; Round < 50; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u})
      for (auto *Cache : std::initializer_list<CacheSim *>{&Direct, &Assoc})
        Cache->access(read4(A));
  EXPECT_LT(Assoc.stats().Misses, Direct.stats().Misses);
}

TEST(VictimCacheTest, AbsorbsConflictPairThrashing) {
  // Two blocks aliasing to one set thrash a plain direct-mapped cache but
  // co-reside once a single victim entry exists (Jouppi's motivating
  // case).
  DirectMappedCache Plain({1024, 32, 1});
  VictimCache Victim({1024, 32, 1}, 1);
  for (int Round = 0; Round < 50; ++Round)
    for (Addr A : {0x0000u, 0x0400u})
      for (CacheSim *Cache :
           std::initializer_list<CacheSim *>{&Plain, &Victim}) {
        Cache->access(read4(A));
      }
  EXPECT_EQ(Plain.stats().Misses, 100u) << "plain cache must thrash";
  EXPECT_EQ(Victim.stats().Misses, 2u)
      << "only the two cold misses; the buffer holds the displaced block "
         "from the very first conflict";
  EXPECT_EQ(Victim.victimHits(), 98u);
}

TEST(VictimCacheTest, BufferIsLru) {
  // Three aliasing blocks against a 2-entry buffer: the working set fits
  // (main slot + 2 victims), so after warm-up everything hits.
  VictimCache Victim({1024, 32, 1}, 2);
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u})
      Victim.access(read4(A));
  EXPECT_EQ(Victim.stats().Misses, 3u);

  // Four aliasing blocks overflow it: cyclic access misses every time.
  VictimCache Small({1024, 32, 1}, 2);
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u, 0x0c00u})
      Small.access(read4(A));
  EXPECT_EQ(Small.stats().Misses, 80u);
}

TEST(VictimCacheTest, NeverWorseThanPlainDirectMapped) {
  // Property: on an arbitrary stream, adding a victim buffer can only
  // remove misses (inclusion of the plain cache's contents).
  DirectMappedCache Plain({2048, 32, 1});
  VictimCache Victim({2048, 32, 1}, 4);
  uint64_t State = 424242;
  for (int I = 0; I < 50000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Addr A = static_cast<Addr>((State >> 24) & 0xFFFF) * 4;
    Plain.access(read4(A));
    Victim.access(read4(A));
  }
  EXPECT_LE(Victim.stats().Misses, Plain.stats().Misses);
  EXPECT_EQ(Victim.stats().Misses + Victim.victimHits(),
            Plain.stats().Misses)
      << "every absorbed miss must be a victim hit on this stream";
}

TEST(CacheBankTest, SimulatesManyGeometriesAtOnce) {
  CacheBank Bank;
  size_t Small = Bank.addCache({1024, 32, 1});
  size_t Large = Bank.addCache({8192, 32, 1});
  // Working set of 2 KB: thrashes the 1 KB cache, fits the 8 KB one.
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A = 0; A < 2048; A += 32)
      Bank.access(read4(A));
  EXPECT_GT(Bank.cache(Small).stats().missRate(),
            Bank.cache(Large).stats().missRate());
  EXPECT_EQ(Bank.cache(Large).stats().Misses, 64u) << "cold misses only";
}

TEST(CacheBankTest, PaperSweepShape) {
  std::vector<CacheConfig> Sweep = paperCacheSweep();
  ASSERT_EQ(Sweep.size(), 5u);
  EXPECT_EQ(Sweep.front().SizeBytes, 16u * 1024);
  EXPECT_EQ(Sweep.back().SizeBytes, 256u * 1024);
  for (const CacheConfig &Config : Sweep) {
    EXPECT_EQ(Config.BlockBytes, 32u);
    EXPECT_EQ(Config.Assoc, 1u);
    EXPECT_TRUE(Config.valid());
  }
}

TEST(CacheBankTest, MissRateMonotoneInCacheSizeForLoopWorkload) {
  // For a simple looping workload, bigger direct-mapped caches of the same
  // geometry should not miss more (no pathological aliasing here).
  CacheBank Bank;
  for (const CacheConfig &Config : paperCacheSweep())
    Bank.addCache(Config);
  for (int Round = 0; Round < 10; ++Round)
    for (Addr A = 0; A < 96 * 1024; A += 16)
      Bank.access(read4(0x10000000 + A));
  for (size_t I = 1; I < Bank.size(); ++I)
    EXPECT_LE(Bank.cache(I).stats().missRate(),
              Bank.cache(I - 1).stats().missRate() + 1e-12);
}
