//===- tests/cache_test.cpp - Cache simulator tests -----------------------===//

#include "cache/CacheSim.h"
#include "cache/StackSim.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

MemAccess read4(Addr Address,
                AccessSource Source = AccessSource::Application) {
  return {Address, 4, AccessKind::Read, Source};
}

} // namespace

TEST(CacheConfigTest, Validity) {
  EXPECT_TRUE((CacheConfig{16 * 1024, 32, 1}).valid());
  EXPECT_TRUE((CacheConfig{64 * 1024, 32, 4}).valid());
  EXPECT_FALSE((CacheConfig{1000, 32, 1}).valid());   // not a power of two
  EXPECT_FALSE((CacheConfig{16 * 1024, 24, 1}).valid());
  EXPECT_FALSE((CacheConfig{32, 32, 2}).valid());     // assoc > blocks
}

TEST(CacheConfigTest, Geometry) {
  CacheConfig Config{16 * 1024, 32, 1};
  EXPECT_EQ(Config.numBlocks(), 512u);
  EXPECT_EQ(Config.numSets(), 512u);
  CacheConfig Assoc{16 * 1024, 32, 4};
  EXPECT_EQ(Assoc.numSets(), 128u);
}

TEST(CacheConfigTest, DegenerateGeometriesAreRejectedWithoutCrashing) {
  // Regression: numBlocks()/numSets() used to divide by zero (and the
  // CacheSim constructor took log2 of BlockBytes before validating), so the
  // reportFatalError path itself crashed on exactly the configs it existed
  // to reject. All of these must return cleanly from the queries and be
  // flagged invalid.
  CacheConfig ZeroAssoc{16 * 1024, 32, 0};
  EXPECT_FALSE(ZeroAssoc.valid());
  EXPECT_EQ(ZeroAssoc.numSets(), 0u);

  CacheConfig ZeroBlock{16 * 1024, 0, 1};
  EXPECT_FALSE(ZeroBlock.valid());
  EXPECT_EQ(ZeroBlock.numBlocks(), 0u);
  EXPECT_EQ(ZeroBlock.numSets(), 0u);

  CacheConfig BlockLargerThanCache{32, 64, 1};
  EXPECT_FALSE(BlockLargerThanCache.valid());
  EXPECT_EQ(BlockLargerThanCache.numBlocks(), 0u);

  CacheConfig ZeroEverything{0, 0, 0};
  EXPECT_FALSE(ZeroEverything.valid());
  EXPECT_EQ(ZeroEverything.numBlocks(), 0u);
  EXPECT_EQ(ZeroEverything.numSets(), 0u);
}

TEST(CacheConfigDeathTest, ConstructorDiagnosesDegenerateGeometry) {
  // The fatal message must actually be produced (validate before deriving
  // BlockShift), naming the offending geometry.
  EXPECT_DEATH({ DirectMappedCache Cache({16 * 1024, 0, 1}); },
               "invalid cache configuration");
  EXPECT_DEATH({ SetAssocCache Cache({16 * 1024, 32, 0}); },
               "invalid cache configuration");
  EXPECT_DEATH({ DirectMappedCache Cache({32, 64, 1}); },
               "invalid cache configuration");
  EXPECT_DEATH({ SetAssocCache Cache({16 * 1024, 24, 1}); },
               "invalid cache configuration");
}

TEST(CacheConfigTest, FullyAssociativeIsLegal) {
  // Assoc == numBlocks() is the fully-associative boundary, not an error.
  CacheConfig Full{512, 32, 16};
  EXPECT_TRUE(Full.valid());
  EXPECT_EQ(Full.numBlocks(), 16u);
  EXPECT_EQ(Full.numSets(), 1u);

  SetAssocCache Cache(Full);
  // 16 distinct blocks cycle without a single conflict eviction; block 17
  // evicts the least recent.
  for (int Round = 0; Round < 3; ++Round)
    for (Addr A = 0; A < 16 * 32; A += 32)
      Cache.access(read4(A));
  EXPECT_EQ(Cache.stats().Misses, 16u) << "cold misses only";
  Cache.access(read4(16 * 32)); // evicts block 0
  Cache.access(read4(0));
  EXPECT_EQ(Cache.stats().Misses, 18u);
}

TEST(CacheConfigTest, DescribePrintsSubKilobyteSizesInBytes) {
  EXPECT_EQ((CacheConfig{512, 32, 16}).describe(), "512B 16-way, 32B blocks");
  EXPECT_EQ((CacheConfig{64 * 1024, 32, 1}).describe(),
            "64K direct-mapped, 32B blocks");
  EXPECT_EQ((CacheConfig{64 * 1024, 32, 4}).describe(),
            "64K 4-way, 32B blocks");
  // Total on invalid configs too — it builds the fatal-error message.
  EXPECT_EQ((CacheConfig{0, 0, 0}).describe(), "0B 0-way, 0B blocks");
}

TEST(CacheConfigTest, EqualityComparesAllFields) {
  CacheConfig A{16 * 1024, 32, 1};
  EXPECT_EQ(A, (CacheConfig{16 * 1024, 32, 1}));
  EXPECT_NE(A, (CacheConfig{32 * 1024, 32, 1}));
  EXPECT_NE(A, (CacheConfig{16 * 1024, 64, 1}));
  EXPECT_NE(A, (CacheConfig{16 * 1024, 32, 2}));
}

TEST(DirectMappedCacheTest, ColdMissThenHit) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x1000));
  Cache.access(read4(0x1000));
  Cache.access(read4(0x1004)); // same 32-byte block
  EXPECT_EQ(Cache.stats().Accesses, 3u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
}

TEST(DirectMappedCacheTest, ConflictEviction) {
  // 1024-byte cache: addresses 1024 apart map to the same set.
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x0000));
  Cache.access(read4(0x0400)); // evicts 0x0000
  Cache.access(read4(0x0000)); // misses again
  EXPECT_EQ(Cache.stats().Misses, 3u);
}

TEST(DirectMappedCacheTest, DistinctSetsDoNotConflict) {
  DirectMappedCache Cache({1024, 32, 1});
  for (Addr A = 0; A < 1024; A += 32)
    Cache.access(read4(A));
  for (Addr A = 0; A < 1024; A += 32)
    Cache.access(read4(A));
  EXPECT_EQ(Cache.stats().Misses, 32u) << "second sweep must fully hit";
}

TEST(DirectMappedCacheTest, StraddlingAccessTouchesTwoBlocks) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access({0x1e, 4, AccessKind::Read, AccessSource::Application});
  EXPECT_EQ(Cache.stats().Accesses, 2u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(DirectMappedCacheTest, WriteAllocates) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access({0x40, 4, AccessKind::Write, AccessSource::Application});
  Cache.access(read4(0x44));
  EXPECT_EQ(Cache.stats().Misses, 1u) << "write must install the block";
}

TEST(DirectMappedCacheTest, PerSourceAttribution) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x000, AccessSource::Application));
  Cache.access(read4(0x400, AccessSource::Allocator)); // evicts
  Cache.access(read4(0x000, AccessSource::Application));
  EXPECT_EQ(Cache.stats().accessesFrom(AccessSource::Application), 2u);
  EXPECT_EQ(Cache.stats().missesFrom(AccessSource::Application), 2u);
  EXPECT_EQ(Cache.stats().missesFrom(AccessSource::Allocator), 1u);
}

TEST(DirectMappedCacheTest, ResetClears) {
  DirectMappedCache Cache({1024, 32, 1});
  Cache.access(read4(0x0));
  Cache.reset();
  EXPECT_EQ(Cache.stats().Accesses, 0u);
  Cache.access(read4(0x0));
  EXPECT_EQ(Cache.stats().Misses, 1u) << "contents cleared";
}

TEST(SetAssocCacheTest, LruKeepsWorkingSetOfAssocSize) {
  // One-set cache (2 blocks, 2-way): any two blocks co-reside.
  SetAssocCache Cache({64, 32, 2});
  Cache.access(read4(0x00));
  Cache.access(read4(0x40));
  Cache.access(read4(0x00));
  Cache.access(read4(0x40));
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(SetAssocCacheTest, LruEvictsLeastRecent) {
  SetAssocCache Cache({64, 32, 2});
  Cache.access(read4(0x00)); // miss {00}
  Cache.access(read4(0x40)); // miss {40,00}
  Cache.access(read4(0x00)); // hit  {00,40}
  Cache.access(read4(0x80)); // miss, evicts 0x40 -> {80,00}
  Cache.access(read4(0x00)); // hit
  Cache.access(read4(0x40)); // miss
  EXPECT_EQ(Cache.stats().Misses, 4u);
}

TEST(SetAssocCacheTest, HigherAssociativityNeverWorseOnSequentialConflict) {
  // A classic conflict pattern: k+1 blocks mapping to one set of a
  // direct-mapped cache, reused cyclically.
  DirectMappedCache Direct({1024, 32, 1});
  SetAssocCache Assoc({1024, 32, 4});
  for (int Round = 0; Round < 50; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u})
      for (auto *Cache : std::initializer_list<CacheSim *>{&Direct, &Assoc})
        Cache->access(read4(A));
  EXPECT_LT(Assoc.stats().Misses, Direct.stats().Misses);
}

TEST(VictimCacheTest, AbsorbsConflictPairThrashing) {
  // Two blocks aliasing to one set thrash a plain direct-mapped cache but
  // co-reside once a single victim entry exists (Jouppi's motivating
  // case).
  DirectMappedCache Plain({1024, 32, 1});
  VictimCache Victim({1024, 32, 1}, 1);
  for (int Round = 0; Round < 50; ++Round)
    for (Addr A : {0x0000u, 0x0400u})
      for (CacheSim *Cache :
           std::initializer_list<CacheSim *>{&Plain, &Victim}) {
        Cache->access(read4(A));
      }
  EXPECT_EQ(Plain.stats().Misses, 100u) << "plain cache must thrash";
  EXPECT_EQ(Victim.stats().Misses, 2u)
      << "only the two cold misses; the buffer holds the displaced block "
         "from the very first conflict";
  EXPECT_EQ(Victim.victimHits(), 98u);
}

TEST(VictimCacheTest, BufferIsLru) {
  // Three aliasing blocks against a 2-entry buffer: the working set fits
  // (main slot + 2 victims), so after warm-up everything hits.
  VictimCache Victim({1024, 32, 1}, 2);
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u})
      Victim.access(read4(A));
  EXPECT_EQ(Victim.stats().Misses, 3u);

  // Four aliasing blocks overflow it: cyclic access misses every time.
  VictimCache Small({1024, 32, 1}, 2);
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A : {0x0000u, 0x0400u, 0x0800u, 0x0c00u})
      Small.access(read4(A));
  EXPECT_EQ(Small.stats().Misses, 80u);
}

TEST(VictimCacheTest, NeverWorseThanPlainDirectMapped) {
  // Property: on an arbitrary stream, adding a victim buffer can only
  // remove misses (inclusion of the plain cache's contents).
  DirectMappedCache Plain({2048, 32, 1});
  VictimCache Victim({2048, 32, 1}, 4);
  uint64_t State = 424242;
  for (int I = 0; I < 50000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Addr A = static_cast<Addr>((State >> 24) & 0xFFFF) * 4;
    Plain.access(read4(A));
    Victim.access(read4(A));
  }
  EXPECT_LE(Victim.stats().Misses, Plain.stats().Misses);
  EXPECT_EQ(Victim.stats().Misses + Victim.victimHits(),
            Plain.stats().Misses)
      << "every absorbed miss must be a victim hit on this stream";
}

TEST(CacheBankTest, SimulatesManyGeometriesAtOnce) {
  CacheBank Bank;
  size_t Small = Bank.addCache({1024, 32, 1});
  size_t Large = Bank.addCache({8192, 32, 1});
  // Working set of 2 KB: thrashes the 1 KB cache, fits the 8 KB one.
  for (int Round = 0; Round < 20; ++Round)
    for (Addr A = 0; A < 2048; A += 32)
      Bank.access(read4(A));
  EXPECT_GT(Bank.cache(Small).stats().missRate(),
            Bank.cache(Large).stats().missRate());
  EXPECT_EQ(Bank.cache(Large).stats().Misses, 64u) << "cold misses only";
}

TEST(CacheBankDeathTest, RejectsDuplicateConfigurations) {
  // Regression: a duplicate geometry used to be silently accepted, double-
  // counting that config in every sweep table.
  CacheBank Bank;
  Bank.addCache({16 * 1024, 32, 1});
  Bank.addCache({64 * 1024, 32, 1});
  EXPECT_DEATH(Bank.addCache({16 * 1024, 32, 1}),
               "duplicate cache configuration");
}

TEST(CacheBankTest, PaperSweepShape) {
  std::vector<CacheConfig> Sweep = paperCacheSweep();
  ASSERT_EQ(Sweep.size(), 5u);
  EXPECT_EQ(Sweep.front().SizeBytes, 16u * 1024);
  EXPECT_EQ(Sweep.back().SizeBytes, 256u * 1024);
  for (const CacheConfig &Config : Sweep) {
    EXPECT_EQ(Config.BlockBytes, 32u);
    EXPECT_EQ(Config.Assoc, 1u);
    EXPECT_TRUE(Config.valid());
  }
}

TEST(StackSimTest, SweepShapeMatchesPaperFamily) {
  std::vector<CacheConfig> Sweep = stackCacheSweep();
  ASSERT_EQ(Sweep.size(), 5u);
  EXPECT_EQ(Sweep.front(), (CacheConfig{16 * 1024, 32, 1}))
      << "smallest member is the paper's direct-mapped config";
  EXPECT_EQ(Sweep.back(), (CacheConfig{256 * 1024, 32, 16}));
  for (const CacheConfig &Config : Sweep) {
    EXPECT_TRUE(Config.valid());
    EXPECT_EQ(Config.numSets(), 512u) << "one shared set count";
    EXPECT_EQ(Config.BlockBytes, 32u);
  }
  EXPECT_EQ(describeStackFamilyProblem(Sweep), "");
}

TEST(StackSimTest, DerivesPerMemberStatsFromOnePass) {
  // One-set family (64B two-way and 128B four-way share a single set at
  // 32B blocks): distances are directly checkable by hand.
  const std::vector<CacheConfig> Family = {CacheConfig{64, 32, 2},
                                           CacheConfig{128, 32, 4}};
  StackSim Stack(Family);
  // Blocks A B C A: A's reuse distance is 2 — a miss at assoc 2, a hit at
  // assoc 4. B C are cold-then-never-reused.
  for (Addr A : {0x00u, 0x40u, 0x80u, 0x00u})
    Stack.access({A, 4, AccessKind::Read, AccessSource::Application});
  EXPECT_EQ(Stack.statsFor(0).Accesses, 4u);
  EXPECT_EQ(Stack.statsFor(0).Misses, 4u) << "2-way: A evicted before reuse";
  EXPECT_EQ(Stack.statsFor(1).Accesses, 4u);
  EXPECT_EQ(Stack.statsFor(1).Misses, 3u) << "4-way: only the cold misses";
  EXPECT_EQ(Stack.statsFor(1).missesFrom(AccessSource::Application), 3u);

  Stack.reset();
  EXPECT_EQ(Stack.statsFor(0).Accesses, 0u);
  Stack.access({0x00, 4, AccessKind::Read, AccessSource::Allocator});
  EXPECT_EQ(Stack.statsFor(0).missesFrom(AccessSource::Allocator), 1u)
      << "reset must clear stack contents and per-source counters";
}

TEST(StackSimDeathTest, RejectsIllFormedFamilies) {
  EXPECT_DEATH({ StackSim Stack({}); }, "at least one cache configuration");
  // Mixed set counts (the paper sweep is all direct-mapped => sets vary).
  EXPECT_DEATH({ StackSim Stack(paperCacheSweep()); }, "one set count");
  // Mixed block sizes.
  EXPECT_DEATH(
      {
        StackSim Stack(
            {CacheConfig{16 * 1024, 32, 1}, CacheConfig{32 * 1024, 64, 2}});
      },
      "one block size");
  // Duplicates and invalid members funnel through the same validator.
  EXPECT_DEATH(
      {
        StackSim Stack(
            {CacheConfig{16 * 1024, 32, 1}, CacheConfig{16 * 1024, 32, 1}});
      },
      "duplicate cache configuration");
  EXPECT_DEATH({ StackSim Stack({CacheConfig{16 * 1024, 0, 1}}); },
               "invalid cache configuration");
}

TEST(CacheBankTest, MissRateMonotoneInCacheSizeForLoopWorkload) {
  // For a simple looping workload, bigger direct-mapped caches of the same
  // geometry should not miss more (no pathological aliasing here).
  CacheBank Bank;
  for (const CacheConfig &Config : paperCacheSweep())
    Bank.addCache(Config);
  for (int Round = 0; Round < 10; ++Round)
    for (Addr A = 0; A < 96 * 1024; A += 16)
      Bank.access(read4(0x10000000 + A));
  for (size_t I = 1; I < Bank.size(); ++I)
    EXPECT_LE(Bank.cache(I).stats().missRate(),
              Bank.cache(I - 1).stats().missRate() + 1e-12);
}
