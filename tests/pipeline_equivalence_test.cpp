//===- tests/pipeline_equivalence_test.cpp - Batched == scalar ------------===//
//
// The batched reference pipeline is a pure throughput optimization: the
// paper's methodology depends on bit-identical miss and fault counts across
// allocators, so batching is only admissible if it changes *nothing* but
// wall-clock time. This suite runs the same experiments twice — once with
// scalar delivery (capacity-1 batches, the historical bus semantics) and
// once with full batching — and requires every field of the results to be
// exactly equal: instruction splits, Table-2 reference tallies, per-cache
// per-source miss counts, page-fault curves, heap-check verdicts, and the
// serialized trace bytes.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"
#include "trace/RefTrace.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace allocsim;

namespace {

/// Field-by-field exact comparison of two RunResults. Doubles are compared
/// with ==: both runs execute the identical arithmetic on identical
/// integers, so even the derived rates must agree to the last bit.
void expectIdentical(const RunResult &Scalar, const RunResult &Batched,
                     const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Scalar.AppInstructions, Batched.AppInstructions);
  EXPECT_EQ(Scalar.AllocInstructions, Batched.AllocInstructions);
  EXPECT_EQ(Scalar.TotalRefs, Batched.TotalRefs);
  EXPECT_EQ(Scalar.AppRefs, Batched.AppRefs);
  EXPECT_EQ(Scalar.AllocRefs, Batched.AllocRefs);
  EXPECT_EQ(Scalar.TagRefs, Batched.TagRefs);

  EXPECT_EQ(Scalar.Alloc.MallocCalls, Batched.Alloc.MallocCalls);
  EXPECT_EQ(Scalar.Alloc.FreeCalls, Batched.Alloc.FreeCalls);
  EXPECT_EQ(Scalar.Alloc.BytesRequested, Batched.Alloc.BytesRequested);
  EXPECT_EQ(Scalar.Alloc.LiveBytes, Batched.Alloc.LiveBytes);
  EXPECT_EQ(Scalar.Alloc.MaxLiveBytes, Batched.Alloc.MaxLiveBytes);
  EXPECT_EQ(Scalar.HeapBytes, Batched.HeapBytes);
  EXPECT_EQ(Scalar.BlocksSearched, Batched.BlocksSearched);

  ASSERT_EQ(Scalar.Caches.size(), Batched.Caches.size());
  for (size_t I = 0; I != Scalar.Caches.size(); ++I) {
    SCOPED_TRACE("cache " + Scalar.Caches[I].Config.describe());
    const CacheStats &S = Scalar.Caches[I].Stats;
    const CacheStats &B = Batched.Caches[I].Stats;
    EXPECT_EQ(S.Accesses, B.Accesses);
    EXPECT_EQ(S.Misses, B.Misses);
    for (unsigned Source = 0; Source != NumAccessSources; ++Source) {
      EXPECT_EQ(S.AccessesBySource[Source], B.AccessesBySource[Source]);
      EXPECT_EQ(S.MissesBySource[Source], B.MissesBySource[Source]);
    }
    EXPECT_EQ(Scalar.Caches[I].Time.seconds(), Batched.Caches[I].Time.seconds());
  }

  ASSERT_EQ(Scalar.Paging.size(), Batched.Paging.size());
  for (size_t I = 0; I != Scalar.Paging.size(); ++I) {
    EXPECT_EQ(Scalar.Paging[I].MemoryKb, Batched.Paging[I].MemoryKb);
    EXPECT_EQ(Scalar.Paging[I].FaultsPerRef, Batched.Paging[I].FaultsPerRef);
  }
  EXPECT_EQ(Scalar.DistinctPages, Batched.DistinctPages);

  EXPECT_EQ(Scalar.CheckViolations, Batched.CheckViolations);
  EXPECT_EQ(Scalar.CheckWalks, Batched.CheckWalks);
  EXPECT_EQ(Scalar.CheckReports, Batched.CheckReports);
}

/// Runs \p Config under both delivery modes and requires identity.
void expectEquivalent(ExperimentConfig Config, const std::string &Label) {
  Config.BatchedDelivery = false;
  RunResult Scalar = runExperiment(Config);
  Config.BatchedDelivery = true;
  RunResult Batched = runExperiment(Config);
  expectIdentical(Scalar, Batched, Label);
}

ExperimentConfig paperConfig(WorkloadId Workload, AllocatorKind Allocator) {
  ExperimentConfig Config;
  Config.Workload = Workload;
  Config.Allocator = Allocator;
  Config.Engine.Scale = 128;
  Config.Engine.Seed = 1592932958;
  Config.Caches = paperCacheSweep();
  Config.PagingMemoryKb = {256, 1024};
  return Config;
}

} // namespace

TEST(PipelineEquivalenceTest, AllPaperAllocatorsOnEspresso) {
  for (AllocatorKind Kind : PaperAllocators)
    expectEquivalent(paperConfig(WorkloadId::Espresso, Kind),
                     std::string("espresso/") + allocatorKindName(Kind));
}

TEST(PipelineEquivalenceTest, AllPaperAllocatorsOnGsSmall) {
  // The Fig. 6-8 subject: the full multi-cache sweep on the ghostscript
  // workload, where the batched fast paths run hottest.
  for (AllocatorKind Kind : PaperAllocators)
    expectEquivalent(paperConfig(WorkloadId::GsSmall, Kind),
                     std::string("gs-small/") + allocatorKindName(Kind));
}

TEST(PipelineEquivalenceTest, BoundaryTagEmulationIdentical) {
  // Table 6: the tag-emulation reference stream (third access source) must
  // batch identically too.
  ExperimentConfig Config =
      paperConfig(WorkloadId::Espresso, AllocatorKind::GnuLocal);
  Config.EmulateBoundaryTags = true;
  expectEquivalent(Config, "espresso/GnuLocal+tags");
}

TEST(PipelineEquivalenceTest, HeapCheckFullIdentical) {
  // With --check=full the ShadowHeap validates every reference and the
  // invariant walkers run on the operation clock; batching must neither
  // change any verdict nor move a walk.
  for (AllocatorKind Kind :
       {AllocatorKind::FirstFit, AllocatorKind::Bsd, AllocatorKind::QuickFit}) {
    ExperimentConfig Config = paperConfig(WorkloadId::Espresso, Kind);
    Config.Engine.Scale = 256;
    Config.Check.Level = CheckLevel::Full;
    Config.Check.IntervalOps = 64;
    Config.Check.AbortOnViolation = false;
    expectEquivalent(Config,
                     std::string("check-full/") + allocatorKindName(Kind));
  }
}

TEST(PipelineEquivalenceTest, GoldenMatrixSerializesIdentically) {
  // The golden paper_small matrix (the allocsim-matrix-v1 snapshot slice):
  // the integer-only serialization of a scalar run and a batched run must
  // be byte-identical, which also pins the batched pipeline to the
  // committed tests/golden/paper_small.json history.
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::GsSmall};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
                     AllocatorKind::Bsd};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}};
  Spec.PagingMemoryKb = {256};
  Spec.Base.Engine.Scale = 128;
  Spec.Base.Engine.Seed = 1592932958;

  MatrixOptions Options;
  Options.Jobs = 2;

  Spec.Base.BatchedDelivery = false;
  ResultStore ScalarStore = runMatrix(Spec, Options);
  ASSERT_EQ(ScalarStore.failedCount(), 0u);
  Spec.Base.BatchedDelivery = true;
  ResultStore BatchedStore = runMatrix(Spec, Options);
  ASSERT_EQ(BatchedStore.failedCount(), 0u);

  std::ostringstream Scalar, Batched;
  ScalarStore.writeGoldenJson(Scalar);
  BatchedStore.writeGoldenJson(Batched);
  EXPECT_EQ(Scalar.str(), Batched.str());
}

TEST(PipelineEquivalenceTest, BinaryTraceBytesIdentical) {
  // The trace writer is a sink like any other: a batched capture must
  // serialize the very same bytes as a scalar capture.
  auto Capture = [](bool Batch) {
    std::ostringstream Out(std::ios::binary);
    BinaryTraceWriter Writer(Out);
    MemoryBus Bus;
    if (Batch)
      Bus.setBatchCapacity(AccessBatch::MaxCapacity);
    Bus.attach(&Writer);
    SimHeap Heap(Bus);
    CostModel Cost;
    std::unique_ptr<Allocator> Alloc =
        createAllocator(AllocatorKind::FirstFit, Heap, Cost);
    const AppProfile &Profile = getProfile(WorkloadId::Espresso);
    EngineOptions Options;
    Options.Scale = 512;
    WorkloadEngine Engine(Profile, Options);
    Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
    Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
    Bus.flush();
    return Out.str();
  };
  std::string Scalar = Capture(false);
  std::string Batched = Capture(true);
  ASSERT_FALSE(Scalar.empty());
  EXPECT_EQ(Scalar, Batched);
}

TEST(PipelineEquivalenceTest, PageSimRunSkipMatchesScalar) {
  // Direct unit-level check of the PageSim batch fast path, including
  // page-straddling records that must fall back to the scalar split.
  PageSim Scalar(4096), Batched(4096);
  std::vector<MemAccess> Stream;
  Addr Base = 0x1000'0000;
  for (uint32_t I = 0; I != 4000; ++I) {
    // Long same-page runs with periodic page changes and straddles.
    Addr A = Base + (I % 7 == 0 ? (I * 4096u) % (64 * 4096u) : (I * 4) % 4096);
    uint8_t Size = (I % 97 == 0) ? 16 : 4;
    if (I % 511 == 0)
      A = Base + 4094; // straddles into the next page
    Stream.push_back(MemAccess{A, Size, AccessKind::Read,
                               AccessSource::Application});
  }
  for (const MemAccess &Access : Stream)
    Scalar.access(Access);
  for (size_t I = 0; I < Stream.size(); I += 100)
    Batched.accessBatch(Stream.data() + I,
                        std::min<size_t>(100, Stream.size() - I));

  EXPECT_EQ(Scalar.references(), Batched.references());
  EXPECT_EQ(Scalar.distinctPages(), Batched.distinctPages());
  EXPECT_EQ(Scalar.zeroDistanceHits(), Batched.zeroDistanceHits());
  for (uint64_t Pages : {0u, 1u, 2u, 8u, 64u, 1024u})
    EXPECT_EQ(Scalar.faults(Pages), Batched.faults(Pages)) << Pages;
}
