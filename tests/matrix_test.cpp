//===- tests/matrix_test.cpp - MatrixRunner determinism & policy tests ----===//
//
// The determinism regression suite: the same MatrixSpec run with Jobs=1 and
// Jobs=8 must produce bit-identical RunResults in every cell — instruction
// splits, reference counts, per-cache CacheStats, paging points, allocator
// stats — because each cell's configuration (including its seed) is fixed
// during expansion, never by scheduling order. Plus the failed-cell policy:
// a failing cell is recorded with its coordinates and the rest of the sweep
// completes.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

using namespace allocsim;

namespace {

/// A small but non-trivial matrix: 2 workloads x 3 allocators x 2 penalties,
/// every cell observing two cache geometries and two paging points.
MatrixSpec smallSpec() {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::GsSmall, WorkloadId::Make};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
                     AllocatorKind::Bsd};
  Spec.PenaltiesCycles = {25, 100};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}, CacheConfig{64 * 1024, 32, 2}};
  Spec.PagingMemoryKb = {256, 1024};
  Spec.Base.Engine.Scale = 256;
  Spec.Base.Engine.Seed = 0x5EEDBA5Eu;
  return Spec;
}

void expectSameRunResult(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.AppInstructions, B.AppInstructions);
  EXPECT_EQ(A.AllocInstructions, B.AllocInstructions);
  EXPECT_EQ(A.TotalRefs, B.TotalRefs);
  EXPECT_EQ(A.AppRefs, B.AppRefs);
  EXPECT_EQ(A.AllocRefs, B.AllocRefs);
  EXPECT_EQ(A.TagRefs, B.TagRefs);
  EXPECT_EQ(A.Alloc.MallocCalls, B.Alloc.MallocCalls);
  EXPECT_EQ(A.Alloc.FreeCalls, B.Alloc.FreeCalls);
  EXPECT_EQ(A.Alloc.BytesRequested, B.Alloc.BytesRequested);
  EXPECT_EQ(A.Alloc.LiveBytes, B.Alloc.LiveBytes);
  EXPECT_EQ(A.Alloc.MaxLiveBytes, B.Alloc.MaxLiveBytes);
  EXPECT_EQ(A.HeapBytes, B.HeapBytes);
  EXPECT_EQ(A.BlocksSearched, B.BlocksSearched);
  EXPECT_EQ(A.DistinctPages, B.DistinctPages);
  EXPECT_EQ(A.CheckViolations, B.CheckViolations);
  EXPECT_EQ(A.CheckWalks, B.CheckWalks);
  EXPECT_EQ(A.CheckReports, B.CheckReports);

  ASSERT_EQ(A.Caches.size(), B.Caches.size());
  for (size_t I = 0; I != A.Caches.size(); ++I) {
    EXPECT_EQ(A.Caches[I].Config.SizeBytes, B.Caches[I].Config.SizeBytes);
    EXPECT_EQ(A.Caches[I].Config.BlockBytes, B.Caches[I].Config.BlockBytes);
    EXPECT_EQ(A.Caches[I].Config.Assoc, B.Caches[I].Config.Assoc);
    EXPECT_EQ(A.Caches[I].Stats.Accesses, B.Caches[I].Stats.Accesses);
    EXPECT_EQ(A.Caches[I].Stats.Misses, B.Caches[I].Stats.Misses);
    EXPECT_EQ(A.Caches[I].Stats.AccessesBySource,
              B.Caches[I].Stats.AccessesBySource);
    EXPECT_EQ(A.Caches[I].Stats.MissesBySource,
              B.Caches[I].Stats.MissesBySource);
    EXPECT_EQ(A.Caches[I].Time.Instructions, B.Caches[I].Time.Instructions);
    EXPECT_EQ(A.Caches[I].Time.DataRefs, B.Caches[I].Time.DataRefs);
    EXPECT_EQ(A.Caches[I].Time.MissRate, B.Caches[I].Time.MissRate);
    EXPECT_EQ(A.Caches[I].Time.MissPenalty, B.Caches[I].Time.MissPenalty);
  }

  ASSERT_EQ(A.Paging.size(), B.Paging.size());
  for (size_t I = 0; I != A.Paging.size(); ++I) {
    EXPECT_EQ(A.Paging[I].MemoryKb, B.Paging[I].MemoryKb);
    EXPECT_EQ(A.Paging[I].FaultsPerRef, B.Paging[I].FaultsPerRef);
  }
}

} // namespace

TEST(MatrixRunnerTest, ExpansionOrderAndSeeds) {
  MatrixSpec Spec = smallSpec();
  std::vector<MatrixCell> Cells = expandMatrix(Spec);
  ASSERT_EQ(Cells.size(), Spec.cellCount());
  ASSERT_EQ(Cells.size(), 12u);

  for (size_t I = 0; I != Cells.size(); ++I)
    EXPECT_EQ(Cells[I].Coord.Index, I);

  // Workload-major, then allocator, then penalty.
  EXPECT_EQ(Cells[0].Config.Workload, WorkloadId::GsSmall);
  EXPECT_EQ(Cells[0].Config.Allocator, AllocatorKind::FirstFit);
  EXPECT_EQ(Cells[0].Config.MissPenaltyCycles, 25u);
  EXPECT_EQ(Cells[1].Config.MissPenaltyCycles, 100u);
  EXPECT_EQ(Cells[2].Config.Allocator, AllocatorKind::QuickFit);
  EXPECT_EQ(Cells[6].Config.Workload, WorkloadId::Make);

  // Seeds: identical across allocators and penalties within a workload
  // (the paper's identical-request-stream control), decorrelated across
  // workloads, and derived from coordinates only.
  for (const MatrixCell &Cell : Cells) {
    EXPECT_EQ(Cell.Config.Engine.Seed,
              Cells[Cell.Coord.WorkloadIdx * 6].Config.Engine.Seed);
    EXPECT_EQ(Cell.Config.Caches.size(), 2u);
    EXPECT_EQ(Cell.Config.PagingMemoryKb.size(), 2u);
  }
  EXPECT_NE(Cells[0].Config.Engine.Seed, Cells[6].Config.Engine.Seed);

  Spec.SaltSeedPerWorkload = false;
  std::vector<MatrixCell> Unsalted = expandMatrix(Spec);
  for (const MatrixCell &Cell : Unsalted)
    EXPECT_EQ(Cell.Config.Engine.Seed, Spec.Base.Engine.Seed);
}

TEST(MatrixRunnerTest, ParallelResultsBitIdenticalToSerial) {
  MatrixSpec Spec = smallSpec();

  MatrixOptions Serial;
  Serial.Jobs = 1;
  ResultStore StoreSerial = runMatrix(Spec, Serial);

  MatrixOptions Parallel;
  Parallel.Jobs = 8;
  ResultStore StoreParallel = runMatrix(Spec, Parallel);

  ASSERT_EQ(StoreSerial.size(), StoreParallel.size());
  EXPECT_EQ(StoreSerial.failedCount(), 0u);
  EXPECT_EQ(StoreParallel.failedCount(), 0u);

  for (size_t I = 0; I != StoreSerial.size(); ++I) {
    const CellOutcome &A = StoreSerial.cell(I);
    const CellOutcome &B = StoreParallel.cell(I);
    ASSERT_TRUE(A.Ok) << "serial cell " << I << ": " << A.Error;
    ASSERT_TRUE(B.Ok) << "parallel cell " << I << ": " << B.Error;
    EXPECT_EQ(A.Workload, B.Workload);
    EXPECT_EQ(A.Allocator, B.Allocator);
    EXPECT_EQ(A.PenaltyCycles, B.PenaltyCycles);
    EXPECT_EQ(A.Seed, B.Seed);
    expectSameRunResult(A.Result, B.Result);
  }

  // Serialized forms agree byte-for-byte as well.
  std::ostringstream JsonSerial, JsonParallel;
  StoreSerial.writeJson(JsonSerial);
  StoreParallel.writeJson(JsonParallel);
  EXPECT_EQ(JsonSerial.str(), JsonParallel.str());

  std::ostringstream CsvSerial, CsvParallel;
  StoreSerial.writeCsv(CsvSerial);
  StoreParallel.writeCsv(CsvParallel);
  EXPECT_EQ(CsvSerial.str(), CsvParallel.str());
}

TEST(MatrixRunnerTest, ModernBackendsBitIdenticalAcrossJobs) {
  // The modern backends keep allocator-local mutable state (BitmapFit's
  // slab map and bucket lists, SpaceFit's sorted freelist); under the TSan
  // CI axis this test is where a hidden shared mutable would surface.
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::GsSmall, WorkloadId::Make};
  Spec.Allocators = {AllocatorKind::BitmapFit, AllocatorKind::SpaceFit};
  Spec.PenaltiesCycles = {25, 100};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}, CacheConfig{64 * 1024, 32, 2}};
  Spec.PagingMemoryKb = {256, 1024};
  Spec.Base.Engine.Scale = 256;
  Spec.Base.Engine.Seed = 0x5EEDBA5Eu;

  MatrixOptions Serial;
  Serial.Jobs = 1;
  ResultStore StoreSerial = runMatrix(Spec, Serial);

  MatrixOptions Parallel;
  Parallel.Jobs = 8;
  ResultStore StoreParallel = runMatrix(Spec, Parallel);

  ASSERT_EQ(StoreSerial.size(), StoreParallel.size());
  EXPECT_EQ(StoreSerial.failedCount(), 0u);
  EXPECT_EQ(StoreParallel.failedCount(), 0u);
  for (size_t I = 0; I != StoreSerial.size(); ++I) {
    const CellOutcome &A = StoreSerial.cell(I);
    const CellOutcome &B = StoreParallel.cell(I);
    ASSERT_TRUE(A.Ok) << "serial cell " << I << ": " << A.Error;
    ASSERT_TRUE(B.Ok) << "parallel cell " << I << ": " << B.Error;
    EXPECT_EQ(A.Allocator, B.Allocator);
    EXPECT_EQ(A.Seed, B.Seed);
    expectSameRunResult(A.Result, B.Result);
  }

  std::ostringstream JsonSerial, JsonParallel;
  StoreSerial.writeJson(JsonSerial);
  StoreParallel.writeJson(JsonParallel);
  EXPECT_EQ(JsonSerial.str(), JsonParallel.str());
}

TEST(MatrixRunnerTest, CoordinateLookupMatchesLinearOrder) {
  MatrixSpec Spec = smallSpec();
  MatrixOptions Options;
  Options.Jobs = 4;
  // Synthetic runner: encode the coordinates into counters so at() can be
  // checked without paying for real simulations.
  Options.CellRunner = [](const ExperimentConfig &Config) {
    RunResult Result;
    Result.TotalRefs = static_cast<uint64_t>(Config.Workload) * 10000 +
                       static_cast<uint64_t>(Config.Allocator) * 100 +
                       Config.MissPenaltyCycles;
    return Result;
  };
  ResultStore Store = runMatrix(Spec, Options);
  for (size_t W = 0; W != Spec.Workloads.size(); ++W)
    for (size_t A = 0; A != Spec.Allocators.size(); ++A)
      for (size_t P = 0; P != Spec.PenaltiesCycles.size(); ++P) {
        const CellOutcome &Cell = Store.at(W, A, P);
        EXPECT_EQ(Cell.Result.TotalRefs,
                  static_cast<uint64_t>(Spec.Workloads[W]) * 10000 +
                      static_cast<uint64_t>(Spec.Allocators[A]) * 100 +
                      Spec.PenaltiesCycles[P]);
      }
}

TEST(MatrixRunnerTest, FailedCellIsAttributedAndOthersComplete) {
  MatrixSpec Spec = smallSpec();
  MatrixOptions Options;
  Options.Jobs = 8;
  Options.CellRunner = [](const ExperimentConfig &Config) -> RunResult {
    if (Config.Workload == WorkloadId::Make &&
        Config.Allocator == AllocatorKind::QuickFit &&
        Config.MissPenaltyCycles == 100)
      throw std::runtime_error("injected cell failure");
    RunResult Result;
    Result.TotalRefs = 1;
    return Result;
  };
  ResultStore Store = runMatrix(Spec, Options);
  EXPECT_EQ(Store.failedCount(), 1u);

  size_t FailedSeen = 0;
  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    if (!Cell.Ok) {
      ++FailedSeen;
      // The error is attributed to the right cell.
      EXPECT_EQ(Cell.Workload, WorkloadId::Make);
      EXPECT_EQ(Cell.Allocator, AllocatorKind::QuickFit);
      EXPECT_EQ(Cell.PenaltyCycles, 100u);
      EXPECT_EQ(Cell.Error, "injected cell failure");
    } else {
      EXPECT_EQ(Cell.Result.TotalRefs, 1u);
      EXPECT_TRUE(Cell.Error.empty());
    }
  }
  EXPECT_EQ(FailedSeen, 1u);

  // The failed cell still serializes (with its error) instead of breaking
  // the export.
  std::ostringstream Json;
  Store.writeJson(Json);
  EXPECT_NE(Json.str().find("injected cell failure"), std::string::npos);
}

TEST(MatrixRunnerTest, FailedCellPreservesPartialTelemetry) {
  // Regression: a cell whose runner dies mid-run used to lose everything it
  // had measured. The runner seam now hands the worker a snapshot it can
  // fill before throwing, and the quarantine record keeps it.
  MatrixSpec Spec = smallSpec();
  MatrixOptions Options;
  Options.Jobs = 8;
  Options.CellRunnerEx = [](const ExperimentConfig &Config,
                            TelemetrySnapshot &Partial) -> RunResult {
    if (Config.Workload == WorkloadId::Make &&
        Config.Allocator == AllocatorKind::QuickFit &&
        Config.MissPenaltyCycles == 100) {
      Partial.Counters["alloc.malloc.calls"] = 4242;
      Partial.Counters["fault.oom.sbrk_denied"] = 7;
      throw std::runtime_error("worker crashed mid-run");
    }
    RunResult Result;
    Result.TotalRefs = 1;
    return Result;
  };
  ResultStore Store = runMatrix(Spec, Options);
  EXPECT_EQ(Store.failedCount(), 1u);

  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    if (!Cell.Ok) {
      // The partial counters survived the crash.
      EXPECT_EQ(Cell.PartialTelemetry.counterValue("alloc.malloc.calls"),
                4242u);
      EXPECT_EQ(Cell.PartialTelemetry.counterValue("fault.oom.sbrk_denied"),
                7u);
      EXPECT_EQ(Cell.Error, "worker crashed mid-run");
    } else {
      EXPECT_TRUE(Cell.PartialTelemetry.empty());
    }
  }

  // ... and they serialize: the telemetry export emits the partial snapshot
  // for the failed cell instead of an empty object.
  std::ostringstream Json;
  Store.writeTelemetryJson(Json);
  EXPECT_NE(Json.str().find("\"alloc.malloc.calls\": 4242"),
            std::string::npos);
}

TEST(MatrixRunnerTest, WorkerFaultsExhaustRetriesIntoQuarantine) {
  // cell:rate=1.0 kills every attempt of every cell: each cell burns
  // 1 + retry:limit attempts, records one error per attempt, and lands in
  // quarantine with the last attempt's error.
  MatrixSpec Spec = smallSpec();
  DiagEngine Diags;
  Spec.Base.Inject = parseFaultPlan("cell:rate=1.0;retry:limit=2;seed=7",
                                    Diags);
  ASSERT_EQ(Diags.errorCount(), 0u);
  ASSERT_TRUE(Spec.Base.Inject.enabled());

  MatrixOptions Options;
  Options.Jobs = 4;
  Options.CellRunner = [](const ExperimentConfig &) { return RunResult(); };
  ResultStore Store = runMatrix(Spec, Options);
  EXPECT_EQ(Store.failedCount(), Store.size());
  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    EXPECT_EQ(Cell.Attempts, 3u);
    ASSERT_EQ(Cell.AttemptErrors.size(), 3u);
    for (size_t A = 0; A != 3; ++A)
      EXPECT_EQ(Cell.AttemptErrors[A], "injected worker fault (attempt " +
                                           std::to_string(A + 1) + ")");
    EXPECT_EQ(Cell.Error, Cell.AttemptErrors.back());
  }

  // The quarantine section is first-class in the matrix JSON.
  std::ostringstream Json;
  Store.writeJson(Json);
  EXPECT_NE(Json.str().find("\"faults\""), std::string::npos);
  EXPECT_NE(Json.str().find("\"quarantine\""), std::string::npos);
}

TEST(MatrixRunnerTest, RetryOutcomesAreIdenticalAtAnyJobCount) {
  // A 50% worker-fault rate makes some cells retry and some quarantine.
  // Which ones is fixed by the per-cell fault seed at expansion, so the
  // complete retry history must be bit-identical at --jobs=1 and --jobs=8.
  MatrixSpec Spec = smallSpec();
  DiagEngine Diags;
  Spec.Base.Inject = parseFaultPlan("cell:rate=0.5;retry:limit=1;seed=99",
                                    Diags);
  ASSERT_EQ(Diags.errorCount(), 0u);

  MatrixOptions Serial, Parallel;
  Serial.Jobs = 1;
  Parallel.Jobs = 8;
  Serial.CellRunner = Parallel.CellRunner =
      [](const ExperimentConfig &) { return RunResult(); };
  ResultStore A = runMatrix(Spec, Serial);
  ResultStore B = runMatrix(Spec, Parallel);
  ASSERT_EQ(A.size(), B.size());

  size_t Retried = 0, Quarantined = 0;
  for (size_t I = 0; I != A.size(); ++I) {
    const CellOutcome &CA = A.cell(I);
    const CellOutcome &CB = B.cell(I);
    EXPECT_EQ(CA.Ok, CB.Ok);
    EXPECT_EQ(CA.Attempts, CB.Attempts);
    EXPECT_EQ(CA.AttemptErrors, CB.AttemptErrors);
    EXPECT_EQ(CA.Error, CB.Error);
    if (CA.Ok && CA.Attempts > 1)
      ++Retried;
    if (!CA.Ok)
      ++Quarantined;
    if (CA.Ok) {
      EXPECT_EQ(CA.AttemptErrors.size(), CA.Attempts - 1);
    }
  }
  // The 50% dice at this seed must actually exercise both paths; if this
  // ever fires the seed constant changed, not the scheduler.
  EXPECT_GT(Retried + Quarantined, 0u);
}

TEST(MatrixRunnerTest, NoPlanMeansNoFaultMachinery) {
  // Without --inject the retry loop collapses to one attempt and the JSON
  // carries no faults section — the bit-exactness guarantee for plan-free
  // runs rests on this.
  MatrixSpec Spec = smallSpec();
  ASSERT_FALSE(Spec.Base.Inject.enabled());
  MatrixOptions Options;
  Options.Jobs = 2;
  Options.CellRunner = [](const ExperimentConfig &) { return RunResult(); };
  ResultStore Store = runMatrix(Spec, Options);
  for (size_t I = 0; I != Store.size(); ++I) {
    EXPECT_EQ(Store.cell(I).Attempts, 1u);
    EXPECT_TRUE(Store.cell(I).AttemptErrors.empty());
  }
  std::ostringstream Json;
  Store.writeJson(Json);
  EXPECT_EQ(Json.str().find("\"faults\""), std::string::npos);
}

TEST(MatrixRunnerTest, InvalidGeometryFailsValidationNotTheProcess) {
  MatrixSpec Spec = smallSpec();
  Spec.Caches.push_back(CacheConfig{3000, 32, 1}); // not a power of two
  MatrixOptions Options;
  Options.Jobs = 2;
  bool RunnerCalled = false;
  Options.CellRunner = [&RunnerCalled](const ExperimentConfig &) {
    RunnerCalled = true;
    return RunResult();
  };
  ResultStore Store = runMatrix(Spec, Options);
  EXPECT_EQ(Store.failedCount(), Store.size());
  EXPECT_FALSE(RunnerCalled) << "validation must reject before running";
  for (size_t I = 0; I != Store.size(); ++I)
    EXPECT_NE(Store.cell(I).Error.find("invalid cache geometry"),
              std::string::npos);
}

TEST(MatrixRunnerTest, ProgressReportingCoversEveryCell) {
  MatrixSpec Spec = smallSpec();
  MatrixOptions Options;
  Options.Jobs = 8;
  Options.CellRunner = [](const ExperimentConfig &) { return RunResult(); };
  size_t Calls = 0, LastCompleted = 0;
  Options.Progress = [&](const MatrixProgress &Progress) {
    // The callback is serialized, so Completed must be strictly
    // monotonically increasing.
    EXPECT_EQ(Progress.Completed, LastCompleted + 1);
    EXPECT_EQ(Progress.Total, 12u);
    LastCompleted = Progress.Completed;
    ++Calls;
  };
  runMatrix(Spec, Options);
  EXPECT_EQ(Calls, 12u);
  EXPECT_EQ(LastCompleted, 12u);
}

TEST(MatrixRunnerTest, ParseMatrixSpecRoundTrip) {
  MatrixSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseMatrixSpec(
      "workloads=gs,espresso;allocators=FirstFit,BSD,QuickFit;"
      "caches=16,64:32:2;paging=512,1024;penalty=25,100",
      Spec, Error))
      << Error;
  ASSERT_EQ(Spec.Workloads.size(), 2u);
  EXPECT_EQ(Spec.Workloads[0], WorkloadId::Gs);
  EXPECT_EQ(Spec.Workloads[1], WorkloadId::Espresso);
  ASSERT_EQ(Spec.Allocators.size(), 3u);
  EXPECT_EQ(Spec.Allocators[1], AllocatorKind::Bsd);
  ASSERT_EQ(Spec.Caches.size(), 2u);
  EXPECT_EQ(Spec.Caches[0].SizeBytes, 16u * 1024);
  EXPECT_EQ(Spec.Caches[1].Assoc, 2u);
  ASSERT_EQ(Spec.PagingMemoryKb.size(), 2u);
  EXPECT_EQ(Spec.PagingMemoryKb[1], 1024u);
  ASSERT_EQ(Spec.PenaltiesCycles.size(), 2u);
  EXPECT_EQ(Spec.PenaltiesCycles[1], 100u);
  EXPECT_EQ(Spec.cellCount(), 12u);
}

TEST(MatrixRunnerTest, ParseMatrixSpecDiagnostics) {
  MatrixSpec Spec;
  std::string Error;

  EXPECT_FALSE(parseMatrixSpec("allocators=FirstFit", Spec, Error));
  EXPECT_NE(Error.find("at least one workload"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=gs", Spec, Error));
  EXPECT_NE(Error.find("at least one allocator"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=gs;allocators=NotAnAllocator",
                               Spec, Error));
  EXPECT_NE(Error.find("NotAnAllocator"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=quake;allocators=BSD", Spec,
                               Error));
  EXPECT_NE(Error.find("quake"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=gs;allocators=BSD;", Spec, Error));
  EXPECT_NE(Error.find("empty axis"), std::string::npos);

  EXPECT_FALSE(
      parseMatrixSpec("workloads=gs;allocators=BSD;planets=mars", Spec,
                      Error));
  EXPECT_NE(Error.find("unknown matrix axis"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=gs;allocators=BSD;caches=16,,64",
                               Spec, Error));
  EXPECT_NE(Error.find("empty item"), std::string::npos);

  EXPECT_FALSE(parseMatrixSpec("workloads=gs;allocators=BSD;caches=17",
                               Spec, Error));
  EXPECT_NE(Error.find("invalid cache geometry"), std::string::npos);
}

TEST(MatrixRunnerTest, ParseMatrixSpecEngineAxis) {
  MatrixSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseMatrixSpec(
      "workloads=gs;allocators=BSD;caches=16;engine=stackdist", Spec, Error))
      << Error;
  EXPECT_EQ(Spec.Base.CacheEngine, CacheEngineKind::StackDist);

  ASSERT_TRUE(parseMatrixSpec("workloads=gs;allocators=BSD;engine=percfg",
                              Spec, Error))
      << Error;
  EXPECT_EQ(Spec.Base.CacheEngine, CacheEngineKind::PerConfig);

  EXPECT_FALSE(parseMatrixSpec(
      "workloads=gs;allocators=BSD;engine=warpdrive", Spec, Error));
  EXPECT_NE(Error.find("engine=warpdrive"), std::string::npos);
}

TEST(MatrixRunnerTest, DegenerateCellConfigsFailGracefully) {
  // Duplicate geometries and stack-illegal families must surface as
  // recorded cell errors (the cache layer would abort), leaving the rest
  // of the matrix intact.
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso};
  Spec.Allocators = {AllocatorKind::FirstFit};
  Spec.Base.Engine.Scale = 512;
  Spec.Caches = {{16 * 1024, 32, 1}, {16 * 1024, 32, 1}};
  ResultStore Dup = runMatrix(Spec, {});
  EXPECT_FALSE(Dup.at(0, 0, 0).Ok);
  EXPECT_NE(Dup.at(0, 0, 0).Error.find("duplicate cache geometry"),
            std::string::npos);

  // paperCacheSweep varies the set count, which the stack engine cannot
  // serve from one pass per set.
  Spec.Caches = paperCacheSweep();
  Spec.Base.CacheEngine = CacheEngineKind::StackDist;
  ResultStore Stack = runMatrix(Spec, {});
  EXPECT_FALSE(Stack.at(0, 0, 0).Ok);
  EXPECT_NE(Stack.at(0, 0, 0).Error.find("engine=stackdist"),
            std::string::npos);

  // The same family is fine under the per-config engine.
  Spec.Base.CacheEngine = CacheEngineKind::PerConfig;
  ResultStore PerCfg = runMatrix(Spec, {});
  EXPECT_TRUE(PerCfg.at(0, 0, 0).Ok) << PerCfg.at(0, 0, 0).Error;
}
