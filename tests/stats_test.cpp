//===- tests/stats_test.cpp - Telemetry registry unit tests ---------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Property tests for the telemetry subsystem: the fixed bucket layout
// (power-of-two boundaries exact), saturating counters, and — the property
// MatrixRunner's determinism rests on — snapshot merge() being associative
// and commutative under random shuffles, so the merged matrix telemetry is
// identical at any --jobs count.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"
#include "stats/Telemetry.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

using namespace allocsim;

namespace {

//===----------------------------------------------------------------------===//
// Bucket layout
//===----------------------------------------------------------------------===//

TEST(TelemetryBucketsTest, ExactRangeIsIdentity) {
  for (uint64_t Value = 0; Value <= TelemetryBuckets::MaxExactValue; ++Value) {
    unsigned Index = TelemetryBuckets::indexFor(Value);
    EXPECT_EQ(Index, Value);
    EXPECT_EQ(TelemetryBuckets::lowerBound(Index), Value);
  }
}

TEST(TelemetryBucketsTest, PowersOfTwoAreBucketBoundaries) {
  // Every power of two must be the smallest value of its bucket: 2^k for
  // k <= 6 is an exact bucket; 2^k for k >= 7 starts a fresh log bucket
  // (so 2^k - 1 lands strictly below it).
  for (unsigned K = 0; K != 64; ++K) {
    uint64_t Pow = uint64_t(1) << K;
    unsigned Index = TelemetryBuckets::indexFor(Pow);
    if (Pow > TelemetryBuckets::MaxExactValue + 1) {
      EXPECT_EQ(TelemetryBuckets::lowerBound(Index), Pow) << "2^" << K;
    }
    EXPECT_NE(Index, TelemetryBuckets::indexFor(Pow - 1)) << "2^" << K;
  }
}

TEST(TelemetryBucketsTest, IndexIsMonotoneAndInRange) {
  std::vector<uint64_t> Probes;
  for (uint64_t Value = 0; Value <= 300; ++Value)
    Probes.push_back(Value);
  for (unsigned K = 6; K != 64; ++K) {
    Probes.push_back((uint64_t(1) << K) - 1);
    Probes.push_back(uint64_t(1) << K);
    Probes.push_back((uint64_t(1) << K) + 1);
  }
  Probes.push_back(UINT64_MAX);
  std::sort(Probes.begin(), Probes.end());
  unsigned Prev = 0;
  for (uint64_t Value : Probes) {
    unsigned Index = TelemetryBuckets::indexFor(Value);
    ASSERT_LT(Index, TelemetryBuckets::NumBuckets) << Value;
    EXPECT_GE(Index, Prev) << Value;
    EXPECT_LE(TelemetryBuckets::lowerBound(Index), Value) << Value;
    Prev = Index;
  }
  EXPECT_EQ(TelemetryBuckets::indexFor(UINT64_MAX),
            TelemetryBuckets::NumBuckets - 1);
}

TEST(TelemetryBucketsTest, LowerBoundRoundTrips) {
  for (unsigned Index = 0; Index != TelemetryBuckets::NumBuckets; ++Index)
    EXPECT_EQ(TelemetryBuckets::indexFor(TelemetryBuckets::lowerBound(Index)),
              Index);
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(TelemetryCounterTest, SaturatesInsteadOfWrapping) {
  TelemetryCounter Counter;
  Counter.add(UINT64_MAX - 1);
  EXPECT_EQ(Counter.value(), UINT64_MAX - 1);
  Counter.add(1);
  EXPECT_EQ(Counter.value(), UINT64_MAX);
  Counter.add(12345);
  EXPECT_EQ(Counter.value(), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(0, 0), 0u);
}

TEST(TelemetryHistogramTest, RecordTracksCountSumMinMax) {
  TelemetryHistogram Hist;
  for (uint64_t Value : {7u, 3u, 700u, 3u})
    Hist.record(Value);
  const HistogramSnapshot &Snap = Hist.snapshot();
  EXPECT_EQ(Snap.Count, 4u);
  EXPECT_EQ(Snap.Sum, 713u);
  EXPECT_EQ(Snap.Min, 3u);
  EXPECT_EQ(Snap.Max, 700u);
  EXPECT_EQ(Snap.Buckets[3], 2u);
  EXPECT_EQ(Snap.Buckets[7], 1u);
  EXPECT_EQ(Snap.Buckets[TelemetryBuckets::indexFor(700)], 1u);
  EXPECT_DOUBLE_EQ(Snap.mean(), 713.0 / 4.0);
}

TEST(TelemetryHistogramTest, BulkRecordEqualsRepeatedScalarRecord) {
  // The stack-distance engine flushes whole distance histograms at once via
  // record(Value, Times); the result must be indistinguishable from Times
  // scalar record(Value) calls.
  TelemetryHistogram Bulk, Scalar;
  const std::pair<uint64_t, uint64_t> Entries[] = {
      {0, 3}, {5, 1}, {42, 7}, {1 << 20, 2}};
  for (auto [Value, Times] : Entries) {
    Bulk.record(Value, Times);
    for (uint64_t I = 0; I != Times; ++I)
      Scalar.record(Value);
  }
  EXPECT_EQ(Bulk.snapshot(), Scalar.snapshot());
}

TEST(TelemetryHistogramTest, BulkRecordZeroTimesIsANoOp) {
  // Times == 0 must not disturb anything — in particular not Min/Max,
  // which a naive implementation would clobber with the unrecorded value.
  TelemetryHistogram Hist;
  Hist.record(10);
  Hist.record(3, 0);
  Hist.record(9999, 0);
  const HistogramSnapshot &Snap = Hist.snapshot();
  EXPECT_EQ(Snap.Count, 1u);
  EXPECT_EQ(Snap.Min, 10u);
  EXPECT_EQ(Snap.Max, 10u);

  TelemetryHistogram Empty;
  Empty.record(7, 0);
  EXPECT_EQ(Empty.snapshot(), HistogramSnapshot{});
}

TEST(TelemetryHistogramTest, BulkRecordSaturatesSumAndBuckets) {
  TelemetryHistogram Hist;
  Hist.record(UINT64_MAX / 2, 3); // weight overflows uint64
  const HistogramSnapshot &Snap = Hist.snapshot();
  EXPECT_EQ(Snap.Count, 3u);
  EXPECT_EQ(Snap.Sum, UINT64_MAX) << "overflowing weight must saturate";

  TelemetryHistogram Counts;
  Counts.record(1, UINT64_MAX);
  Counts.record(1, 5);
  EXPECT_EQ(Counts.snapshot().Count, UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// Registry levels
//===----------------------------------------------------------------------===//

TEST(TelemetryRegistryTest, LevelsGateInstrumentCreation) {
  Telemetry Off(TelemetryLevel::Off);
  EXPECT_EQ(Off.counter("x"), nullptr);
  EXPECT_EQ(Off.histogram("x"), nullptr);
  EXPECT_TRUE(Off.snapshot().empty());

  Telemetry Summary(TelemetryLevel::Summary);
  EXPECT_NE(Summary.counter("x"), nullptr);
  EXPECT_EQ(Summary.histogram("x"), nullptr);

  Telemetry Full(TelemetryLevel::Full);
  EXPECT_NE(Full.counter("x"), nullptr);
  EXPECT_NE(Full.histogram("x"), nullptr);
  // Same name -> same instrument (stable across repeated lookups).
  EXPECT_EQ(Full.counter("x"), Full.counter("x"));
  EXPECT_EQ(Full.histogram("x"), Full.histogram("x"));
}

TEST(TelemetryRegistryTest, LevelNamesRoundTrip) {
  for (TelemetryLevel Level : {TelemetryLevel::Off, TelemetryLevel::Summary,
                               TelemetryLevel::Full}) {
    TelemetryLevel Parsed;
    ASSERT_TRUE(tryParseTelemetryLevel(telemetryLevelName(Level), Parsed));
    EXPECT_EQ(Parsed, Level);
  }
  TelemetryLevel Ignored;
  EXPECT_FALSE(tryParseTelemetryLevel("verbose", Ignored));
  EXPECT_FALSE(tryParseTelemetryLevel("", Ignored));
}

//===----------------------------------------------------------------------===//
// Merge algebra
//===----------------------------------------------------------------------===//

/// Builds a pseudo-random snapshot from \p Rng: a handful of counters and
/// histograms over a small shared name pool, so merges exercise both the
/// name-overlap and name-union paths.
TelemetrySnapshot randomSnapshot(SplitMix64 &Rng) {
  static const char *const Names[] = {"a", "b", "c", "d", "e"};
  Telemetry Registry(TelemetryLevel::Full);
  for (const char *Name : Names)
    if (Rng.next() & 1)
      Registry.counter(Name)->add(Rng.next() % 1000);
  for (const char *Name : Names)
    if (Rng.next() & 1) {
      TelemetryHistogram *Hist = Registry.histogram(Name);
      size_t Records = Rng.next() % 8;
      for (size_t I = 0; I != Records; ++I)
        Hist->record(Rng.next() % 5000);
    }
  return Registry.snapshot();
}

TEST(TelemetryMergeTest, MergeIsCommutative) {
  SplitMix64 Rng(0xC0FFEE);
  for (int Trial = 0; Trial != 50; ++Trial) {
    TelemetrySnapshot A = randomSnapshot(Rng);
    TelemetrySnapshot B = randomSnapshot(Rng);
    TelemetrySnapshot AB = A;
    AB.merge(B);
    TelemetrySnapshot BA = B;
    BA.merge(A);
    EXPECT_EQ(AB, BA);
  }
}

TEST(TelemetryMergeTest, MergeIsAssociative) {
  SplitMix64 Rng(0xBEEF);
  for (int Trial = 0; Trial != 50; ++Trial) {
    TelemetrySnapshot A = randomSnapshot(Rng);
    TelemetrySnapshot B = randomSnapshot(Rng);
    TelemetrySnapshot C = randomSnapshot(Rng);
    // (A + B) + C
    TelemetrySnapshot Left = A;
    Left.merge(B);
    Left.merge(C);
    // A + (B + C)
    TelemetrySnapshot Right = B;
    Right.merge(C);
    TelemetrySnapshot Outer = A;
    Outer.merge(Right);
    EXPECT_EQ(Left, Outer);
  }
}

TEST(TelemetryMergeTest, AnyShuffleFoldsToTheSameSnapshot) {
  SplitMix64 Rng(0x5EED);
  std::vector<TelemetrySnapshot> Parts;
  for (int I = 0; I != 12; ++I)
    Parts.push_back(randomSnapshot(Rng));

  TelemetrySnapshot Reference;
  for (const TelemetrySnapshot &Part : Parts)
    Reference.merge(Part);

  std::vector<size_t> Order(Parts.size());
  std::iota(Order.begin(), Order.end(), 0);
  for (int Shuffle = 0; Shuffle != 20; ++Shuffle) {
    // Fisher-Yates with the deterministic RNG.
    for (size_t I = Order.size(); I > 1; --I)
      std::swap(Order[I - 1], Order[Rng.next() % I]);
    TelemetrySnapshot Folded;
    for (size_t Index : Order)
      Folded.merge(Parts[Index]);
    EXPECT_EQ(Folded, Reference);
  }
}

TEST(TelemetryMergeTest, MergePreservesTotalsAndExtrema) {
  TelemetryHistogram HistA, HistB;
  HistA.record(3);
  HistA.record(90);
  HistB.record(1);
  HistB.record(4000);
  HistogramSnapshot Merged = HistA.snapshot();
  Merged.merge(HistB.snapshot());
  EXPECT_EQ(Merged.Count, 4u);
  EXPECT_EQ(Merged.Sum, 3u + 90 + 1 + 4000);
  EXPECT_EQ(Merged.Min, 1u);
  EXPECT_EQ(Merged.Max, 4000u);
  // Merging an empty snapshot is the identity.
  HistogramSnapshot Identity = Merged;
  Identity.merge(HistogramSnapshot());
  EXPECT_EQ(Identity, Merged);
}

TEST(TelemetryMergeTest, MergedBucketsSaturate) {
  HistogramSnapshot A, B;
  A.Buckets[5] = UINT64_MAX - 2;
  A.Count = UINT64_MAX - 2;
  B.Buckets[5] = 10;
  B.Count = 10;
  A.merge(B);
  EXPECT_EQ(A.Buckets[5], UINT64_MAX);
  EXPECT_EQ(A.Count, UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// Snapshot lookups and JSON
//===----------------------------------------------------------------------===//

TEST(TelemetrySnapshotTest, MissingNamesReadAsEmpty) {
  TelemetrySnapshot Snap;
  EXPECT_EQ(Snap.counterValue("never"), 0u);
  EXPECT_EQ(Snap.histogram("never").Count, 0u);
}

TEST(TelemetrySnapshotTest, JsonListsOnlyNonzeroBuckets) {
  Telemetry Registry(TelemetryLevel::Full);
  Registry.counter("calls")->add(3);
  Registry.histogram("len")->record(2);
  Registry.histogram("len")->record(2);
  Registry.histogram("len")->record(100);
  std::ostringstream OS;
  Registry.snapshot().writeJson(OS, "");
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"calls\": 3"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"count\": 3, \"sum\": 104"), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("[2, 2]"), std::string::npos) << Json;
  // 100 lands in the 65..127 log bucket, whose lower bound is 65.
  EXPECT_NE(Json.find("[65, 1]"), std::string::npos) << Json;
  // No floating point anywhere in the snapshot form.
  EXPECT_EQ(Json.find('.'), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// End-to-end determinism through the matrix runner
//===----------------------------------------------------------------------===//

MatrixSpec smallTelemetrySpec() {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::Gs};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
                     AllocatorKind::Bsd};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}};
  Spec.Base.Engine.Scale = 512;
  Spec.Base.Telemetry = TelemetryLevel::Full;
  return Spec;
}

TEST(TelemetryMatrixTest, SnapshotsIdenticalAtAnyJobCount) {
  MatrixSpec Spec = smallTelemetrySpec();
  MatrixOptions Serial;
  Serial.Jobs = 1;
  MatrixOptions Parallel;
  Parallel.Jobs = 8;
  ResultStore One = runMatrix(Spec, Serial);
  ResultStore Eight = runMatrix(Spec, Parallel);
  ASSERT_EQ(One.failedCount(), 0u);
  ASSERT_EQ(Eight.failedCount(), 0u);

  for (size_t I = 0; I != One.size(); ++I)
    EXPECT_EQ(One.cell(I).Result.Telemetry, Eight.cell(I).Result.Telemetry)
        << "cell " << I;
  EXPECT_EQ(One.mergedTelemetry(), Eight.mergedTelemetry());

  std::ostringstream JsonOne, JsonEight;
  One.writeTelemetryJson(JsonOne);
  Eight.writeTelemetryJson(JsonEight);
  EXPECT_EQ(JsonOne.str(), JsonEight.str());
}

TEST(TelemetryMatrixTest, MergedEqualsFoldOfCells) {
  ResultStore Store = runMatrix(smallTelemetrySpec(), MatrixOptions{});
  ASSERT_EQ(Store.failedCount(), 0u);
  TelemetrySnapshot Expected;
  for (size_t I = 0; I != Store.size(); ++I)
    Expected.merge(Store.cell(I).Result.Telemetry);
  EXPECT_EQ(Store.mergedTelemetry(), Expected);
  EXPECT_FALSE(Expected.empty());
}

TEST(TelemetryMatrixTest, SpecParsesTelemetryAxis) {
  MatrixSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseMatrixSpec(
      "workloads=gs;allocators=FirstFit;telemetry=full", Spec, Error))
      << Error;
  EXPECT_EQ(Spec.Base.Telemetry, TelemetryLevel::Full);
  EXPECT_FALSE(parseMatrixSpec(
      "workloads=gs;allocators=FirstFit;telemetry=loud", Spec, Error));
  EXPECT_NE(Error.find("telemetry"), std::string::npos);
}

} // namespace
