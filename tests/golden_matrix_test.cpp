//===- tests/golden_matrix_test.cpp - Golden paper-number snapshot --------===//
//
// Re-runs a reduced allocator x workload matrix through the MatrixRunner
// and diffs its integer-only serialization against the checked-in snapshot
// tests/golden/paper_small.json with exact equality. Any allocator or
// workload-engine change that silently shifts the paper's numbers fails
// here instead of slipping into a figure.
//
// Updating the snapshot after an *intentional* behaviour change:
//
//   cmake --build build -j --target golden_matrix_test
//   ALLOCSIM_UPDATE_GOLDEN=1 ./build/tests/golden_matrix_test
//
// then review the diff of tests/golden/paper_small.json like any other
// code change — every shifted counter should be explainable by the change
// you made.
//
// The golden form (ResultStore::writeGoldenJson) contains only integer
// fields, so the comparison is exact on every platform; no doubles, no
// formatting tolerance.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace allocsim;

#ifndef ALLOCSIM_GOLDEN_FILE
#error "ALLOCSIM_GOLDEN_FILE must point at tests/golden/paper_small.json"
#endif

namespace {

/// The snapshot matrix: a reduced-but-representative slice of the paper's
/// study. Five allocators spanning the design space (sequential fit,
/// exact-size quick lists, power-of-two segregated storage, cache-line
/// bitmap slabs, size-sorted best fit), two workloads (interpreter-heavy
/// espresso, buffer-heavy GS-Small), the paper's 16K direct-mapped cache,
/// one paging point. Fixed scale and seed: the snapshot is a function of
/// nothing but the code.
MatrixSpec goldenSpec() {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::GsSmall};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
                     AllocatorKind::Bsd, AllocatorKind::BitmapFit,
                     AllocatorKind::SpaceFit};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}};
  Spec.PagingMemoryKb = {256};
  Spec.Base.Engine.Scale = 128;
  Spec.Base.Engine.Seed = 1592932958;
  return Spec;
}

} // namespace

TEST(GoldenMatrixTest, PaperSmallMatrixMatchesSnapshot) {
  MatrixOptions Options;
  Options.Jobs = 2;
  ResultStore Store = runMatrix(goldenSpec(), Options);
  ASSERT_EQ(Store.failedCount(), 0u);

  std::ostringstream Current;
  Store.writeGoldenJson(Current);

  if (std::getenv("ALLOCSIM_UPDATE_GOLDEN")) {
    std::ofstream Out(ALLOCSIM_GOLDEN_FILE);
    ASSERT_TRUE(Out) << "cannot write " << ALLOCSIM_GOLDEN_FILE;
    Out << Current.str();
    GTEST_SKIP() << "snapshot updated: " << ALLOCSIM_GOLDEN_FILE;
  }

  std::ifstream In(ALLOCSIM_GOLDEN_FILE);
  ASSERT_TRUE(In) << "missing snapshot " << ALLOCSIM_GOLDEN_FILE
                  << " (generate with ALLOCSIM_UPDATE_GOLDEN=1, see file "
                     "header)";
  std::ostringstream Golden;
  Golden << In.rdbuf();

  EXPECT_EQ(Current.str(), Golden.str())
      << "paper numbers shifted: if the change is intentional, regenerate "
         "the snapshot (ALLOCSIM_UPDATE_GOLDEN=1, see test header) and "
         "review its diff";
}
