//===- tests/sizeclass_test.cpp - Size-class mapping tests ----------------===//

#include "alloc/CustomAlloc.h"
#include "alloc/SizeClassMap.h"

#include <gtest/gtest.h>

using namespace allocsim;

TEST(SizeClassMapTest, PowerOfTwoPolicy) {
  SizeClassMap Map = SizeClassMap::powerOfTwo(1024);
  EXPECT_EQ(Map.maxSize(), 1024u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(1)), 4u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(5)), 8u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(24)), 32u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(33)), 64u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(1024)), 1024u);
}

TEST(SizeClassMapTest, WordMultiplePolicyIsExact) {
  // The QuickFit configuration: 4..32 in word steps.
  SizeClassMap Map = SizeClassMap::wordMultiple(4, 32);
  EXPECT_EQ(Map.numClasses(), 8u);
  for (uint32_t Size = 1; Size <= 32; ++Size) {
    uint32_t Rounded = (Size + 3) & ~3u;
    EXPECT_EQ(Map.classSize(Map.classIndexFor(Size)), Rounded);
  }
}

TEST(SizeClassMapTest, BoundedFragmentationRespectsBound) {
  // The paper's example: with 25% tolerated waste, requests of 12-16 bytes
  // round to 16.
  SizeClassMap Map = SizeClassMap::boundedFragmentation(0.25, 4096);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(12)), 16u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(16)), 16u);
  // Property: waste never exceeds the bound (for word-aligned requests,
  // where rounding-to-word is not itself waste).
  for (uint32_t Size = 4; Size <= 4096; Size += 4) {
    uint32_t ClassBytes = Map.classSize(Map.classIndexFor(Size));
    double Waste = double(ClassBytes - Size) / double(ClassBytes);
    EXPECT_LE(Waste, 0.25 + 1e-9) << "size " << Size;
  }
}

TEST(SizeClassMapTest, MappingTableMatchesSearch) {
  // Property: the Figure 9 table lookup equals the smallest covering class.
  SizeClassMap Map = SizeClassMap::boundedFragmentation(0.15, 2048);
  for (uint32_t Size = 1; Size <= 2048; ++Size) {
    uint32_t Idx = Map.classIndexFor(Size);
    EXPECT_GE(Map.classSize(Idx), Size);
    if (Idx > 0) {
      EXPECT_LT(Map.classSize(Idx - 1), ((Size + 3) & ~3u))
          << "not the smallest covering class for " << Size;
    }
  }
}

TEST(SizeClassMapTest, FromProfileHasExactClassesForHotSizes) {
  Histogram Profile;
  Profile.add(24, 1000);
  Profile.add(40, 500);
  Profile.add(120, 200);
  Profile.add(300, 10);
  SizeClassMap Map = SizeClassMap::fromProfile(Profile, 3, 1024);
  // The three hot sizes map exactly.
  EXPECT_EQ(Map.classSize(Map.classIndexFor(24)), 24u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(40)), 40u);
  EXPECT_EQ(Map.classSize(Map.classIndexFor(120)), 120u);
  // Coverage extends to MaxSize regardless.
  EXPECT_EQ(Map.maxSize(), 1024u);
  EXPECT_GE(Map.classSize(Map.classIndexFor(1000)), 1000u);
}

TEST(SizeClassMapTest, ExpectedWasteOrdersPolicies) {
  // On a skewed profile, the empirical map must waste no more than the
  // power-of-two map — the paper's argument for customization.
  Histogram Profile;
  Profile.add(20, 500);
  Profile.add(36, 300);
  Profile.add(72, 200);
  SizeClassMap Custom = SizeClassMap::fromProfile(Profile, 8, 1024);
  SizeClassMap Pow2 = SizeClassMap::powerOfTwo(1024);
  EXPECT_LT(Custom.expectedWaste(Profile), Pow2.expectedWaste(Profile));
  EXPECT_NEAR(Custom.expectedWaste(Profile), 0.0, 1e-9);
}

TEST(SizeClassMapTest, WasteForIsConsistent) {
  SizeClassMap Map = SizeClassMap::powerOfTwo(256);
  EXPECT_EQ(Map.wasteFor(33), 31u);
  EXPECT_EQ(Map.wasteFor(64), 0u);
}

TEST(CustomAllocTest, UsesMappingTableClasses) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  Histogram Profile;
  Profile.add(24, 100);
  Profile.add(100, 50);
  CustomAlloc Alloc(Heap, Cost, SizeClassMap::fromProfile(Profile, 4, 256));

  Addr A = Alloc.malloc(24);
  Alloc.free(A);
  EXPECT_EQ(Alloc.malloc(24), A) << "exact class LIFO reuse";
  EXPECT_EQ(Alloc.fastMallocs(), 2u);

  Alloc.malloc(4000);
  EXPECT_EQ(Alloc.slowMallocs(), 1u);
}

TEST(CustomAllocTest, HotSizePacksTightly) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  Histogram Profile;
  Profile.add(20, 100);
  CustomAlloc Alloc(Heap, Cost, SizeClassMap::fromProfile(Profile, 4, 256));
  // Exact 20-byte class: consecutive carves are 24 bytes apart (20 +
  // header), against 36 for a power-of-two allocator (32-byte class + 4).
  Addr A = Alloc.malloc(20);
  Addr B = Alloc.malloc(20);
  EXPECT_EQ(B, A + 24);
}

TEST(CustomAllocTest, DelegatedFreeRoutesToBackend) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  Histogram Profile;
  Profile.add(16, 10);
  CustomAlloc Alloc(Heap, Cost, SizeClassMap::fromProfile(Profile, 2, 64));
  Addr Big = Alloc.malloc(500);
  Alloc.free(Big);
  EXPECT_EQ(Alloc.malloc(500), Big);
}
