//===- tests/allocator_fuzz_test.cpp - Differential allocator fuzzing -----===//
//
// Seeded randomized differential fuzzing of the paper allocators through the
// batched reference pipeline. Each case synthesizes a random but
// well-formed malloc/free/touch script from a fixed SplitMix64 seed,
// replays it against every allocator with full heap checking enabled
// (ShadowHeap byte-state validation on every reference plus periodic
// invariant walks), and requires:
//
//   * zero heap-integrity violations — a violation here means either an
//     allocator bug or a batching bug that reordered references across an
//     allocator state transition;
//   * bit-identical bus tallies, cache statistics, and checker verdicts
//     between scalar and batched delivery of the same script — the
//     differential half of the test.
//
// Seeds are fixed so failures replay deterministically: rerun the one
// (seed, allocator) pair that fired, and the identical stream re-executes.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "check/HeapCheck.h"
#include "support/Rng.h"
#include "trace/AllocEvents.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace allocsim;

namespace {

/// Synthesizes a well-formed random event script: mallocs skewed toward the
/// small sizes the paper's programs request, frees of random live objects,
/// and word touches within live objects (the only ranges an application may
/// legally reference).
std::vector<AllocEvent> synthesizeScript(uint64_t Seed, size_t Operations) {
  SplitMix64 Rand(Seed);
  std::vector<AllocEvent> Events;
  std::vector<std::pair<uint32_t, uint32_t>> Live; // (id, words)
  uint32_t NextId = 1;

  for (size_t Op = 0; Op != Operations; ++Op) {
    uint64_t Roll = Rand.next() % 100;
    if (Live.empty() || Roll < 45) {
      // Malloc: 1..16 words mostly, with an occasional large object.
      uint32_t Size = 4 + static_cast<uint32_t>(Rand.next() % 64);
      if (Rand.next() % 16 == 0)
        Size = 64 + static_cast<uint32_t>(Rand.next() % 4096);
      Events.push_back(AllocEvent::makeMalloc(NextId, Size));
      Live.push_back({NextId, (Size + 3) / 4});
      ++NextId;
    } else if (Roll < 75) {
      // Touch a random live object, sometimes past its end (the driver
      // wraps, staying inside the object's words).
      auto [Id, Words] = Live[Rand.next() % Live.size()];
      uint32_t Touch = 1 + static_cast<uint32_t>(Rand.next() % (2 * Words));
      AccessKind Kind =
          (Rand.next() % 2) ? AccessKind::Write : AccessKind::Read;
      Events.push_back(AllocEvent::makeTouch(Id, Touch, Kind));
    } else if (Roll < 85) {
      Events.push_back(AllocEvent::makeStackTouch(
          1 + static_cast<uint32_t>(Rand.next() % 32),
          (Rand.next() % 2) ? AccessKind::Write : AccessKind::Read));
    } else {
      size_t Victim = Rand.next() % Live.size();
      Events.push_back(AllocEvent::makeFree(Live[Victim].first));
      Live[Victim] = Live.back();
      Live.pop_back();
    }
  }
  // Drain: free everything still live so end-of-run invariants see an empty
  // heap alongside whatever free-structure the allocator built.
  for (auto [Id, Words] : Live)
    Events.push_back(AllocEvent::makeFree(Id));
  return Events;
}

/// The observable outcome of one replay: everything the differential
/// comparison asserts on.
struct FuzzOutcome {
  uint64_t TotalRefs = 0;
  uint64_t AppRefs = 0;
  uint64_t AllocRefs = 0;
  uint64_t CacheAccesses = 0;
  uint64_t CacheMisses = 0;
  uint64_t PageReferences = 0;
  uint64_t DistinctPages = 0;
  uint64_t Violations = 0;
  uint64_t Walks = 0;
  uint64_t FailedMallocs = 0;
  uint64_t DroppedEvents = 0;
  std::vector<std::string> Reports;

  bool operator==(const FuzzOutcome &Other) const = default;
};

/// Replays \p Events against a fresh allocator of kind \p Kind with full
/// checking, under batched or scalar delivery. \p CapacityBytes, when not
/// UINT64_MAX, soft-limits heap growth past the allocator's static area so
/// the stream runs into graceful OOM mid-flight.
FuzzOutcome replay(const std::vector<AllocEvent> &Events, AllocatorKind Kind,
                   bool Batched, uint64_t CapacityBytes = UINT64_MAX) {
  MemoryBus Bus;
  if (Batched)
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);

  CacheBank Caches;
  Caches.addCache(CacheConfig{16 * 1024, 32, 1});
  Bus.attach(&Caches);
  PageSim Paging(4096);
  Bus.attach(&Paging);

  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc = createAllocator(Kind, Heap, Cost);

  CheckPolicy Policy;
  Policy.Level = CheckLevel::Full;
  Policy.IntervalOps = 32;
  Policy.AbortOnViolation = false;
  HeapCheck Check(Policy, Heap, Bus);
  Check.attachAllocator(*Alloc);

  if (CapacityBytes != UINT64_MAX)
    Heap.setSoftLimit(static_cast<uint64_t>(Heap.heapBytes()) +
                      CapacityBytes);

  Driver Drive(*Alloc, Bus, Cost, /*InstrPerRef=*/3.0);
  Drive.setHeapCheck(&Check);
  for (const AllocEvent &Event : Events)
    Drive.execute(Event);
  Bus.flush();
  Check.finalCheck();

  FuzzOutcome Outcome;
  Outcome.TotalRefs = Bus.totalAccesses();
  Outcome.AppRefs = Bus.accessesFrom(AccessSource::Application);
  Outcome.AllocRefs = Bus.accessesFrom(AccessSource::Allocator);
  Outcome.CacheAccesses = Caches.cache(0).stats().Accesses;
  Outcome.CacheMisses = Caches.cache(0).stats().Misses;
  Outcome.PageReferences = Paging.references();
  Outcome.DistinctPages = Paging.distinctPages();
  Outcome.Violations = Check.violationCount();
  Outcome.Walks = Check.walksRun();
  Outcome.FailedMallocs = Alloc->stats().FailedMallocs;
  Outcome.DroppedEvents = Drive.droppedEvents();
  for (const CheckViolation &V : Check.violations())
    Outcome.Reports.push_back(V.message());
  return Outcome;
}

/// The fixed fuzz corpus: deliberately arbitrary 64-bit constants so every
/// CI run executes the identical streams.
constexpr uint64_t FuzzSeeds[] = {
    0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL, 0x0123456789abcdefULL,
    0xa5a5a5a5a5a5a5a5ULL, 0x1592932958ULL,
};

} // namespace

TEST(AllocatorFuzzTest, ScriptsAreWellFormed) {
  for (uint64_t Seed : FuzzSeeds) {
    std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
    std::string WhyNot;
    EXPECT_TRUE(validateAllocEvents(Events, &WhyNot)) << WhyNot;
  }
}

TEST(AllocatorFuzzTest, NoViolationsUnderFullCheck) {
  for (AllocatorKind Kind : PaperAllocators) {
    for (uint64_t Seed : FuzzSeeds) {
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Outcome = replay(Events, Kind, /*Batched=*/true);
      EXPECT_EQ(Outcome.Violations, 0u)
          << (Outcome.Reports.empty() ? std::string("(no report)")
                                      : Outcome.Reports.front());
      EXPECT_GT(Outcome.Walks, 0u);
      EXPECT_GT(Outcome.TotalRefs, 0u);
    }
  }
}

TEST(AllocatorFuzzTest, BatchedMatchesScalarDifferentially) {
  // The differential core: the same stream under both delivery modes must
  // produce identical tallies, cache statistics, page behaviour, and
  // checker verdicts for every allocator.
  for (AllocatorKind Kind : PaperAllocators) {
    for (uint64_t Seed : FuzzSeeds) {
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true);
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false);
      EXPECT_EQ(Batched, Scalar);
    }
  }
}

TEST(AllocatorFuzzTest, CapacityLimitedRunsStayDifferential) {
  // FaultLab's OOM axis, fuzzed: the same stream replayed under a tight
  // heap capacity must (a) hit graceful malloc failures, (b) stay free of
  // integrity violations — a failed malloc may not corrupt what was already
  // built — and (c) remain bit-identical between batched and scalar
  // delivery, failed objects and dropped events included.
  for (AllocatorKind Kind : PaperAllocators) {
    bool SawFailures = false;
    for (uint64_t Seed : FuzzSeeds) {
      // A seed-derived onset past the static area: tight enough that the
      // 2000-op stream (live set tens of KB) runs out mid-flight.
      uint64_t Capacity = 8192 + (SplitMix64(Seed).next() % 32768);
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed) + "/capacity=" +
                   std::to_string(Capacity));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true, Capacity);
      EXPECT_EQ(Batched.Violations, 0u)
          << (Batched.Reports.empty() ? std::string("(no report)")
                                      : Batched.Reports.front());
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false, Capacity);
      EXPECT_EQ(Batched, Scalar);
      if (Batched.FailedMallocs > 0) {
        SawFailures = true;
        // Every failed object's later touches and its free are dropped,
        // so drops can only exist alongside failures.
        EXPECT_GT(Batched.DroppedEvents, 0u);
      } else {
        EXPECT_EQ(Batched.DroppedEvents, 0u);
      }
    }
    EXPECT_TRUE(SawFailures)
        << allocatorKindName(Kind)
        << ": no seed ran out of heap — capacities too generous";
  }
}

TEST(AllocatorFuzzTest, UnlimitedCapacityIsTheDefaultBehaviour) {
  // Passing an effectively-unlimited capacity must not perturb the run:
  // bit-identical to the no-limit replay, with zero failures.
  std::vector<AllocEvent> Events = synthesizeScript(FuzzSeeds[0], 2000);
  for (AllocatorKind Kind : PaperAllocators) {
    SCOPED_TRACE(allocatorKindName(Kind));
    FuzzOutcome Unlimited = replay(Events, Kind, /*Batched=*/true);
    FuzzOutcome Generous =
        replay(Events, Kind, /*Batched=*/true, uint64_t(1) << 40);
    EXPECT_EQ(Unlimited, Generous);
    EXPECT_EQ(Generous.FailedMallocs, 0u);
    EXPECT_EQ(Generous.DroppedEvents, 0u);
  }
}

namespace {

/// Loads every committed corpus script (tests/corpus/*.events) in sorted
/// order, so failures attribute to a stable file name.
std::vector<std::pair<std::string, std::vector<AllocEvent>>> loadCorpus() {
  std::vector<std::pair<std::string, std::vector<AllocEvent>>> Corpus;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ALLOCSIM_CORPUS_DIR)) {
    if (Entry.path().extension() != ".events")
      continue;
    std::ifstream In(Entry.path());
    EXPECT_TRUE(In.good()) << Entry.path();
    Corpus.emplace_back(Entry.path().filename().string(),
                        readAllocEvents(In));
  }
  std::sort(Corpus.begin(), Corpus.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  EXPECT_GE(Corpus.size(), 6u) << "corpus files missing from "
                               << ALLOCSIM_CORPUS_DIR;
  return Corpus;
}

} // namespace

TEST(AllocatorFuzzTest, CommittedCorpusIsWellFormed) {
  for (const auto &[Name, Events] : loadCorpus()) {
    std::string WhyNot;
    EXPECT_TRUE(validateAllocEvents(Events, &WhyNot)) << Name << ": " << WhyNot;
    EXPECT_FALSE(Events.empty()) << Name;
  }
}

TEST(AllocatorFuzzTest, CommittedCorpusReplaysClean) {
  // The committed streams replay against every allocator with full heap
  // checking and must stay differential-identical across delivery modes —
  // the same bar as the seeded cases, but pinned to the exact historical
  // bytes rather than to the generator.
  for (const auto &[Name, Events] : loadCorpus()) {
    for (AllocatorKind Kind : PaperAllocators) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true);
      EXPECT_EQ(Batched.Violations, 0u)
          << (Batched.Reports.empty() ? std::string("(no report)")
                                      : Batched.Reports.front());
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false);
      EXPECT_EQ(Batched, Scalar);
    }
  }
}

TEST(AllocatorFuzzTest, BestFitRidesAlong) {
  // BestFit is not one of the paper's five but shares the sequential-fit
  // machinery; keep it honest under the same corpus.
  std::vector<AllocEvent> Events = synthesizeScript(FuzzSeeds[0], 2000);
  FuzzOutcome Outcome = replay(Events, AllocatorKind::BestFit, true);
  EXPECT_EQ(Outcome.Violations, 0u);
}

namespace {

/// The modern CacheLab backends (PAPERS.md): fuzzed to the identical bar as
/// the paper five — every seed, every delivery mode, the OOM axis, and the
/// committed corpus.
constexpr AllocatorKind ModernKinds[] = {AllocatorKind::BitmapFit,
                                         AllocatorKind::SpaceFit};

} // namespace

TEST(AllocatorFuzzTest, ModernBackendsNoViolationsUnderFullCheck) {
  for (AllocatorKind Kind : ModernKinds) {
    for (uint64_t Seed : FuzzSeeds) {
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Outcome = replay(Events, Kind, /*Batched=*/true);
      EXPECT_EQ(Outcome.Violations, 0u)
          << (Outcome.Reports.empty() ? std::string("(no report)")
                                      : Outcome.Reports.front());
      EXPECT_GT(Outcome.Walks, 0u);
    }
  }
}

TEST(AllocatorFuzzTest, ModernBackendsStayDifferential) {
  for (AllocatorKind Kind : ModernKinds) {
    for (uint64_t Seed : FuzzSeeds) {
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true);
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false);
      EXPECT_EQ(Batched, Scalar);
    }
  }
}

TEST(AllocatorFuzzTest, ModernBackendsCapacityLimitedOom) {
  // BitmapFit's slab carves and map growth, and SpaceFit's chunk expansion,
  // must all fail soft at the capacity wall: graceful failed mallocs, no
  // integrity violations, and bit-identical across delivery modes.
  for (AllocatorKind Kind : ModernKinds) {
    bool SawFailures = false;
    for (uint64_t Seed : FuzzSeeds) {
      uint64_t Capacity = 8192 + (SplitMix64(Seed).next() % 32768);
      SCOPED_TRACE(std::string(allocatorKindName(Kind)) + "/seed=" +
                   std::to_string(Seed) + "/capacity=" +
                   std::to_string(Capacity));
      std::vector<AllocEvent> Events = synthesizeScript(Seed, 2000);
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true, Capacity);
      EXPECT_EQ(Batched.Violations, 0u)
          << (Batched.Reports.empty() ? std::string("(no report)")
                                      : Batched.Reports.front());
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false, Capacity);
      EXPECT_EQ(Batched, Scalar);
      if (Batched.FailedMallocs > 0) {
        SawFailures = true;
        EXPECT_GT(Batched.DroppedEvents, 0u);
      } else {
        EXPECT_EQ(Batched.DroppedEvents, 0u);
      }
    }
    EXPECT_TRUE(SawFailures)
        << allocatorKindName(Kind)
        << ": no seed ran out of heap — capacities too generous";
  }
}

TEST(AllocatorFuzzTest, ModernBackendsReplayCommittedCorpus) {
  // Every committed stream — oom_recovery.events included — replays clean
  // and differential under both new backends.
  for (const auto &[Name, Events] : loadCorpus()) {
    for (AllocatorKind Kind : ModernKinds) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      FuzzOutcome Batched = replay(Events, Kind, /*Batched=*/true);
      EXPECT_EQ(Batched.Violations, 0u)
          << (Batched.Reports.empty() ? std::string("(no report)")
                                      : Batched.Reports.front());
      FuzzOutcome Scalar = replay(Events, Kind, /*Batched=*/false);
      EXPECT_EQ(Batched, Scalar);
    }
  }
}
