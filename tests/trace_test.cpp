//===- tests/trace_test.cpp - Trace serialization tests -------------------===//

#include "trace/AllocEvents.h"
#include "trace/RefTrace.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace allocsim;

namespace {

std::vector<MemAccess> sampleAccesses() {
  return {
      {0x10000000, 4, AccessKind::Read, AccessSource::Application},
      {0x10000abc, 8, AccessKind::Write, AccessSource::Allocator},
      {0xfffffffc, 4, AccessKind::Read, AccessSource::TagEmulation},
      {0x00000000, 1, AccessKind::Write, AccessSource::Application},
  };
}

bool sameAccess(const MemAccess &A, const MemAccess &B) {
  return A.Address == B.Address && A.Size == B.Size && A.Kind == B.Kind &&
         A.Source == B.Source;
}

} // namespace

TEST(RefTraceTest, BinaryRoundTrip) {
  std::stringstream Buffer;
  {
    BinaryTraceWriter Writer(Buffer);
    for (const MemAccess &Access : sampleAccesses())
      Writer.access(Access);
    EXPECT_EQ(Writer.written(), 4u);
  }
  BinaryTraceReader Reader(Buffer);
  for (const MemAccess &Expected : sampleAccesses()) {
    MemAccess Got;
    ASSERT_TRUE(Reader.next(Got));
    EXPECT_TRUE(sameAccess(Expected, Got));
  }
  MemAccess Extra;
  EXPECT_FALSE(Reader.next(Extra));
}

TEST(RefTraceTest, TextRoundTrip) {
  std::stringstream Buffer;
  {
    TextTraceWriter Writer(Buffer);
    for (const MemAccess &Access : sampleAccesses())
      Writer.access(Access);
  }
  TextTraceReader Reader(Buffer);
  for (const MemAccess &Expected : sampleAccesses()) {
    MemAccess Got;
    ASSERT_TRUE(Reader.next(Got));
    EXPECT_TRUE(sameAccess(Expected, Got));
  }
}

TEST(RefTraceTest, BadMagicIsFatal) {
  std::stringstream Buffer("XXXXjunk");
  EXPECT_DEATH({ BinaryTraceReader Reader(Buffer); }, "magic");
}

TEST(RefTraceTest, ReplayIntoSink) {
  std::stringstream Buffer;
  {
    BinaryTraceWriter Writer(Buffer);
    for (const MemAccess &Access : sampleAccesses())
      Writer.access(Access);
  }
  BinaryTraceReader Reader(Buffer);
  CollectingSink Sink;
  EXPECT_EQ(replayTrace(Reader, Sink), 4u);
  EXPECT_EQ(Sink.records().size(), 4u);
}

TEST(AllocEventsTest, RoundTrip) {
  std::vector<AllocEvent> Events = {
      AllocEvent::makeMalloc(1, 24),
      AllocEvent::makeTouch(1, 6, AccessKind::Write),
      AllocEvent::makeStackTouch(12, AccessKind::Read),
      AllocEvent::makeTouch(1, 3, AccessKind::Read),
      AllocEvent::makeFree(1),
  };
  std::stringstream Buffer;
  writeAllocEvents(Buffer, Events);
  std::vector<AllocEvent> Read = readAllocEvents(Buffer);
  ASSERT_EQ(Read.size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I)
    EXPECT_EQ(Read[I], Events[I]) << "event " << I;
}

TEST(AllocEventsTest, ValidationAcceptsWellFormed) {
  std::vector<AllocEvent> Events = {
      AllocEvent::makeMalloc(1, 8),
      AllocEvent::makeTouch(1, 2, AccessKind::Read),
      AllocEvent::makeFree(1),
      AllocEvent::makeMalloc(1, 8), // id reuse after free is fine
  };
  std::string Why;
  EXPECT_TRUE(validateAllocEvents(Events, &Why)) << Why;
}

TEST(AllocEventsTest, ValidationRejectsDoubleFree) {
  std::vector<AllocEvent> Events = {
      AllocEvent::makeMalloc(1, 8),
      AllocEvent::makeFree(1),
      AllocEvent::makeFree(1),
  };
  std::string Why;
  EXPECT_FALSE(validateAllocEvents(Events, &Why));
  EXPECT_NE(Why.find("double free"), std::string::npos);
}

TEST(AllocEventsTest, ValidationRejectsTouchOfDead) {
  std::vector<AllocEvent> Events = {
      AllocEvent::makeTouch(9, 1, AccessKind::Read),
  };
  EXPECT_FALSE(validateAllocEvents(Events));
}

TEST(AllocEventsTest, ValidationRejectsLiveRemalloc) {
  std::vector<AllocEvent> Events = {
      AllocEvent::makeMalloc(1, 8),
      AllocEvent::makeMalloc(1, 8),
  };
  EXPECT_FALSE(validateAllocEvents(Events));
}

TEST(AllocEventsTest, ValidationRejectsZeroSizeMalloc) {
  std::vector<AllocEvent> Events = {AllocEvent::makeMalloc(1, 0)};
  EXPECT_FALSE(validateAllocEvents(Events));
}
