//===- tests/tracelint_test.cpp - TraceLint/SpecLint rule tests -----------===//
//
// Per-rule unit tests for the static analyses: every TraceLint rule id
// fires on a handcrafted bad script with the correct line (and column for
// syntax rules), every SpecLint rule fires on a handcrafted bad matrix
// spec, analysis is exhaustive (all defects reported, not just the first),
// and the lifetime IR and static predictions are exact on hand-computed
// examples. Rule ids are contract: a rename here is a breaking change for
// CI annotations and downstream automation.
//
//===----------------------------------------------------------------------===//

#include "analyze/LintReport.h"
#include "analyze/SpecLint.h"
#include "analyze/TraceLint.h"
#include "core/MatrixRunner.h"
#include "support/SpecParse.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace allocsim;

namespace {

/// Lints a script text; returns the engine (findings) via out-param and the
/// parsed events.
std::vector<LocatedAllocEvent> lintText(const std::string &Text,
                                        DiagEngine &Diags) {
  std::istringstream IS(Text);
  return lintTraceScript(IS, Diags);
}

/// True if a finding with \p Rule exists at \p Line (0 = any line).
bool hasRule(const DiagEngine &Diags, const std::string &Rule,
             uint32_t Line = 0, uint32_t Column = 0) {
  for (const Diag &D : Diags.diags()) {
    if (D.Rule != Rule)
      continue;
    if (Line != 0 && D.Loc.Line != Line)
      continue;
    if (Column != 0 && D.Loc.Column != Column)
      continue;
    return true;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Syntax rules
//===----------------------------------------------------------------------===//

TEST(TraceLintSyntaxTest, UnknownTag) {
  DiagEngine Diags;
  lintText("m 1 16\nq 1\nf 1\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-unknown-tag", 2, 1));
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST(TraceLintSyntaxTest, TruncatedRecord) {
  DiagEngine Diags;
  lintText("m 1\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-truncated-record", 1, 1));
}

TEST(TraceLintSyntaxTest, BadNumber) {
  DiagEngine Diags;
  lintText("m one 16\nm 2 -4\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-bad-number", 1, 3));
  EXPECT_TRUE(hasRule(Diags, "trace-bad-number", 2, 5));
}

TEST(TraceLintSyntaxTest, SizeOverflow) {
  // Sizes above 2^32-4 would wrap the driver's word rounding.
  DiagEngine Diags;
  lintText("m 1 4294967293\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-size-overflow", 1, 5));
  DiagEngine Ok;
  std::vector<LocatedAllocEvent> Events = lintText("m 1 4294967292\n", Ok);
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_FALSE(hasRule(Ok, "trace-size-overflow"));
}

TEST(TraceLintSyntaxTest, BadAccessMode) {
  DiagEngine Diags;
  lintText("m 1 16\nt 1 2 x\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-bad-access-mode", 2, 7));
}

TEST(TraceLintSyntaxTest, TrailingJunk) {
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Events = lintText("m 1 16 extra\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-trailing-junk", 1, 8));
  // The record itself was complete, so the event still parses.
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Event.Kind, AllocEventKind::Malloc);
}

TEST(TraceLintSyntaxTest, BlankLinesAndColumnsTracked) {
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Events =
      lintText("\nm 1 16\n\n  t 1 2 r\nf 1\n", Diags);
  EXPECT_TRUE(Diags.clean());
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Loc, (SourceLoc{2, 1}));
  EXPECT_EQ(Events[1].Loc, (SourceLoc{4, 3})); // indented record
  EXPECT_EQ(Events[2].Loc, (SourceLoc{5, 1}));
}

//===----------------------------------------------------------------------===//
// Semantic rules
//===----------------------------------------------------------------------===//

TEST(TraceLintSemanticTest, DoubleFree) {
  DiagEngine Diags;
  lintText("m 1 16\nf 1\nf 1\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-double-free", 3));
  EXPECT_EQ(Diags.errorCount(), 1u);
}

TEST(TraceLintSemanticTest, UseAfterFreeTouch) {
  DiagEngine Diags;
  lintText("m 1 16\nf 1\nt 1 4 w\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-touch-dead", 3));
}

TEST(TraceLintSemanticTest, UnknownIds) {
  DiagEngine Diags;
  lintText("f 7\nt 9 1 r\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-free-unknown", 1));
  EXPECT_TRUE(hasRule(Diags, "trace-touch-unknown", 2));
}

TEST(TraceLintSemanticTest, DoubleMalloc) {
  DiagEngine Diags;
  lintText("m 1 16\nm 1 32\nf 1\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-double-malloc", 2));
}

TEST(TraceLintSemanticTest, ZeroSize) {
  DiagEngine Diags;
  lintText("m 1 0\nf 1\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-zero-size", 1));
}

TEST(TraceLintSemanticTest, LeakReportedAtMalloc) {
  DiagEngine Diags;
  lintText("m 1 16\nm 2 32\nf 1\n", Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(hasRule(Diags, "trace-leak", 2));
  EXPECT_FALSE(hasRule(Diags, "trace-leak", 1));
}

TEST(TraceLintSemanticTest, EmptyTouchWarns) {
  DiagEngine Diags;
  lintText("m 1 16\nt 1 0 r\ns 0 w\nf 1\n", Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(hasRule(Diags, "trace-empty-touch", 2));
  EXPECT_TRUE(hasRule(Diags, "trace-empty-touch", 3));
}

TEST(TraceLintSemanticTest, ReportsEveryDefectNotJustTheFirst) {
  DiagEngine Diags;
  lintText("m 1 0\nf 1\nf 1\nt 1 2 r\nf 9\nm 3 8\n", Diags);
  EXPECT_TRUE(hasRule(Diags, "trace-zero-size", 1));
  EXPECT_TRUE(hasRule(Diags, "trace-double-free", 3));
  EXPECT_TRUE(hasRule(Diags, "trace-touch-dead", 4));
  EXPECT_TRUE(hasRule(Diags, "trace-free-unknown", 5));
  EXPECT_TRUE(hasRule(Diags, "trace-leak", 6));
  EXPECT_EQ(Diags.errorCount(), 4u);
  EXPECT_EQ(Diags.warningCount(), 1u);
}

TEST(TraceLintSemanticTest, BoolWrapperIgnoresWarnings) {
  // Leaks and empty touches are warnings; the replay engines run such
  // scripts fine, so the bool validation wrapper must keep accepting them.
  std::vector<AllocEvent> Leaky = {AllocEvent::makeMalloc(1, 16)};
  EXPECT_TRUE(validateAllocEvents(Leaky));
  std::vector<AllocEvent> Bad = {AllocEvent::makeFree(1)};
  std::string Why;
  EXPECT_FALSE(validateAllocEvents(Bad, &Why));
  EXPECT_FALSE(Why.empty());
}

//===----------------------------------------------------------------------===//
// Lifetime IR and predictions
//===----------------------------------------------------------------------===//

TEST(TraceModelTest, LiftsBirthDeathAndTouchSites) {
  DiagEngine Diags;
  TraceModel Model = buildTraceModel(
      lintText("m 1 16\nt 1 4 r\nm 2 8\nf 1\nt 2 2 w\n", Diags));
  EXPECT_EQ(Diags.errorCount(), 0u);
  ASSERT_EQ(Model.Objects.size(), 2u);

  const ObjectLifetime &First = Model.Objects[0];
  EXPECT_EQ(First.Id, 1u);
  EXPECT_EQ(First.Size, 16u);
  EXPECT_EQ(First.BirthIdx, 0u);
  ASSERT_TRUE(First.DeathIdx.has_value());
  EXPECT_EQ(*First.DeathIdx, 3u);
  EXPECT_EQ(First.lifetimeEvents(), 3u);
  EXPECT_EQ(First.TouchIdxs, (std::vector<size_t>{1}));
  EXPECT_EQ(First.BirthLoc, (SourceLoc{1, 1}));

  const ObjectLifetime &Second = Model.Objects[1];
  EXPECT_EQ(Second.Id, 2u);
  EXPECT_FALSE(Second.DeathIdx.has_value()); // leaks
  EXPECT_EQ(Second.TouchIdxs, (std::vector<size_t>{4}));
}

TEST(TraceModelTest, RemallocRebindsId) {
  DiagEngine Diags;
  TraceModel Model =
      buildTraceModel(lintText("m 1 16\nf 1\nm 1 32\nf 1\n", Diags));
  ASSERT_EQ(Model.Objects.size(), 2u);
  EXPECT_EQ(*Model.Objects[0].DeathIdx, 1u);
  EXPECT_EQ(*Model.Objects[1].DeathIdx, 3u);
  EXPECT_EQ(Model.Objects[1].Size, 32u);
}

TEST(TracePredictionsTest, HandComputedScript) {
  DiagEngine Diags;
  TraceModel Model = buildTraceModel(lintText(
      "m 1 100\nm 2 50\nt 1 30 r\nf 1\ns 5 w\nm 3 200\nt 3 8 w\nf 2\n",
      Diags));
  EXPECT_EQ(Diags.errorCount(), 0u);
  TracePredictions P = predictTrace(Model);

  EXPECT_EQ(P.Events, 8u);
  EXPECT_EQ(P.MallocCalls, 3u);
  EXPECT_EQ(P.FreeCalls, 2u);
  EXPECT_EQ(P.TouchEvents, 2u);
  EXPECT_EQ(P.StackTouchEvents, 1u);
  EXPECT_EQ(P.BytesRequested, 350u);
  EXPECT_EQ(P.MaxLiveBytes, 250u); // 1+2 live (150), then 2+3 live (250)
  EXPECT_EQ(P.FinalLiveBytes, 200u);
  EXPECT_EQ(P.MaxLiveObjects, 2u);
  EXPECT_EQ(P.FinalLiveObjects, 1u);
  EXPECT_EQ(P.AppRefs, 43u); // 30 + 5 + 8

  EXPECT_EQ(P.RequestSizes.Count, 3u);
  EXPECT_EQ(P.RequestSizes.Sum, 350u);
  EXPECT_EQ(P.RequestSizes.Min, 50u);
  EXPECT_EQ(P.RequestSizes.Max, 200u);
  // 50 is exact bucket 50; 100 and 200 land in log buckets.
  EXPECT_EQ(P.RequestSizes.Buckets[50], 1u);
  EXPECT_EQ(P.RequestSizes.Buckets[TelemetryBuckets::indexFor(100)], 1u);
  EXPECT_EQ(P.RequestSizes.Buckets[TelemetryBuckets::indexFor(200)], 1u);

  // Lifetimes: object 1 freed at event 3, born at 0 -> 3; object 2 freed
  // at 7, born at 1 -> 6; object 3 leaks -> unrecorded.
  EXPECT_EQ(P.Lifetimes.Count, 2u);
  EXPECT_EQ(P.Lifetimes.Buckets[3], 1u);
  EXPECT_EQ(P.Lifetimes.Buckets[6], 1u);
}

//===----------------------------------------------------------------------===//
// Spec structural parsing (support) and parseMatrixSpec tightening
//===----------------------------------------------------------------------===//

TEST(SpecKeyValuesTest, SplitsCleanSpec) {
  DiagEngine Diags;
  std::vector<SpecKeyValue> Axes =
      parseSpecKeyValues("workloads=gs;allocators=BSD", Diags);
  EXPECT_TRUE(Diags.clean());
  ASSERT_EQ(Axes.size(), 2u);
  EXPECT_EQ(Axes[0].Key, "workloads");
  EXPECT_EQ(Axes[0].Value, "gs");
  EXPECT_EQ(Axes[0].Offset, 0u);
  EXPECT_EQ(Axes[1].Key, "allocators");
  EXPECT_EQ(Axes[1].Offset, 13u);
}

TEST(SpecKeyValuesTest, StructuralRules) {
  DiagEngine Diags;
  parseSpecKeyValues("workloads=gs;;x;caches=;workloads=es", Diags);
  EXPECT_TRUE(hasRule(Diags, "spec-empty-axis", 1, 14));
  EXPECT_TRUE(hasRule(Diags, "spec-missing-equals", 1, 15));
  EXPECT_TRUE(hasRule(Diags, "spec-empty-value", 1, 17));
  EXPECT_TRUE(hasRule(Diags, "spec-duplicate-axis", 1, 25));
  EXPECT_EQ(Diags.errorCount(), 4u);
}

TEST(MatrixSpecParseTest, RejectsDuplicateAxis) {
  // The old parser silently accumulated duplicate list axes (and
  // last-write-won on scalar axes); both are now hard errors.
  MatrixSpec Spec;
  std::string Error;
  EXPECT_FALSE(parseMatrixSpec(
      "workloads=gs;allocators=BSD;workloads=espresso", Spec, Error));
  EXPECT_NE(Error.find("given twice"), std::string::npos);
  EXPECT_FALSE(parseMatrixSpec(
      "workloads=gs;allocators=BSD;telemetry=off;telemetry=full", Spec,
      Error));
}

TEST(MatrixSpecParseTest, RejectsEmptyAxisValue) {
  MatrixSpec Spec;
  std::string Error;
  EXPECT_FALSE(parseMatrixSpec("workloads=;allocators=BSD", Spec, Error));
  EXPECT_NE(Error.find("empty value"), std::string::npos);
}

TEST(MatrixSpecParseTest, CleanSpecStillParses) {
  MatrixSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseMatrixSpec(
      "workloads=gs,espresso;allocators=FirstFit,BSD;caches=16,64;"
      "penalty=25,100;telemetry=summary",
      Spec, Error))
      << Error;
  EXPECT_EQ(Spec.Workloads.size(), 2u);
  EXPECT_EQ(Spec.Allocators.size(), 2u);
  EXPECT_EQ(Spec.PenaltiesCycles.size(), 2u);
  EXPECT_EQ(Spec.Base.Telemetry, TelemetryLevel::Summary);
}

//===----------------------------------------------------------------------===//
// SpecLint
//===----------------------------------------------------------------------===//

TEST(SpecLintTest, CleanSpec) {
  DiagEngine Diags;
  lintMatrixSpec("workloads=gs;allocators=BSD,FirstFit;caches=16:32:2;"
                 "paging=512;penalty=25;telemetry=full;delivery=scalar",
                 Diags);
  EXPECT_TRUE(Diags.clean());
}

TEST(SpecLintTest, ReportsEveryProblem) {
  DiagEngine Diags;
  lintMatrixSpec("workloads=gs,bogus,gs;allocators=BSD;caches=17;"
                 "penalty=0;planets=mars;telemetry=loud",
                 Diags);
  EXPECT_TRUE(hasRule(Diags, "spec-unknown-workload", 1, 14));
  EXPECT_TRUE(hasRule(Diags, "spec-duplicate-value", 1, 20));
  EXPECT_TRUE(hasRule(Diags, "spec-bad-cache"));
  EXPECT_TRUE(hasRule(Diags, "spec-bad-number"));
  EXPECT_TRUE(hasRule(Diags, "spec-unknown-axis"));
  EXPECT_TRUE(hasRule(Diags, "spec-bad-value"));
  EXPECT_EQ(Diags.errorCount(), 5u);
  EXPECT_EQ(Diags.warningCount(), 1u);
}

TEST(SpecLintTest, MissingRequiredAxes) {
  DiagEngine Diags;
  lintMatrixSpec("caches=16", Diags);
  EXPECT_TRUE(hasRule(Diags, "spec-missing-workloads"));
  EXPECT_TRUE(hasRule(Diags, "spec-missing-allocators"));
}

TEST(SpecLintTest, EmptyCrossProductWhenNoNameSurvives) {
  DiagEngine Diags;
  lintMatrixSpec("workloads=bogus;allocators=BSD", Diags);
  EXPECT_TRUE(hasRule(Diags, "spec-unknown-workload"));
  EXPECT_TRUE(hasRule(Diags, "spec-missing-workloads"));
  EXPECT_FALSE(hasRule(Diags, "spec-missing-allocators"));
}

TEST(SpecLintTest, UnknownAllocator) {
  DiagEngine Diags;
  lintMatrixSpec("workloads=gs;allocators=BSD,NotReal", Diags);
  EXPECT_TRUE(hasRule(Diags, "spec-unknown-allocator", 1, 29));
}

TEST(SpecLintTest, AgreesWithParseMatrixSpec) {
  // A spec lints clean iff parseMatrixSpec accepts it.
  const char *Specs[] = {
      "workloads=gs;allocators=BSD",
      "workloads=gs,espresso;allocators=FirstFit,BSD;caches=16,64",
      "workloads=gs;allocators=BSD;workloads=es", // duplicate axis
      "workloads=gs",                             // missing allocators
      "workloads=gs;allocators=",                 // empty value
      "workloads=gs;allocators=BSD;caches=16,,64",
      "workloads=gs;allocators=BSD;junk=1",
  };
  for (const char *Text : Specs) {
    DiagEngine Diags;
    lintMatrixSpec(Text, Diags);
    MatrixSpec Spec;
    std::string Error;
    EXPECT_EQ(Diags.errorCount() == 0, parseMatrixSpec(Text, Spec, Error))
        << "disagreement on '" << Text << "': " << Error;
  }
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

TEST(LintReportTest, HumanOutputIsCompilerStyle) {
  LintInput Input;
  Input.Name = "bad.events";
  Input.Kind = "trace";
  DiagEngine Diags;
  lintText("f 1\n", Diags);
  Input.Diags = Diags;
  std::ostringstream OS;
  std::vector<LintInput> Inputs;
  Inputs.push_back(std::move(Input));
  printLintReport(OS, Inputs);
  EXPECT_NE(OS.str().find("bad.events:1:1: error:"), std::string::npos);
  EXPECT_NE(OS.str().find("[trace-free-unknown]"), std::string::npos);
  EXPECT_NE(OS.str().find("1 error, 0 warnings"), std::string::npos);
}

TEST(LintReportTest, JsonCarriesSchemaAndPredictions) {
  LintInput Input;
  Input.Name = "ok.events";
  Input.Kind = "trace";
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Events = lintText("m 1 16\nf 1\n", Diags);
  Input.Diags = Diags;
  Input.Predictions = predictTrace(buildTraceModel(std::move(Events)));
  std::ostringstream OS;
  std::vector<LintInput> Inputs;
  Inputs.push_back(std::move(Input));
  writeLintReportJson(OS, Inputs);
  const std::string Json = OS.str();
  EXPECT_NE(Json.find("\"schema\": \"allocsim-lint-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"trace\""), std::string::npos);
  EXPECT_NE(Json.find("\"predictions\": {"), std::string::npos);
  EXPECT_NE(Json.find("\"clean\": true"), std::string::npos);
}

TEST(LintReportTest, JsonEscapesMessages) {
  EXPECT_EQ(jsonEscaped("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(jsonEscaped(std::string(1, '\x01')), "\\u0001");
}
