//===- tests/tracelint_crosscheck_test.cpp - Static vs simulated ----------===//
//
// The exactness contract behind TraceLint's predictions: for every script
// in tests/corpus/, every statically predicted quantity must equal the
// corresponding simulator measurement *bit-exactly* — allocator statistics
// from the run, counters and full histograms from telemetry — across
// allocators with very different placement behavior (including QuickFit's
// nested backend delegation and Custom's profile-synthesized classes).
//
// A failure here means the analyzer and the simulator disagree about event
// semantics; neither side is trusted over the other, which is the point:
// the static model double-enters the simulator's books.
//
//===----------------------------------------------------------------------===//

#include "analyze/TraceLint.h"
#include "core/Lab.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

using namespace allocsim;

namespace {

std::vector<std::filesystem::path> corpusScripts() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ALLOCSIM_CORPUS_DIR))
    if (Entry.path().extension() == ".events")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

void checkScriptAgainstSimulator(const std::filesystem::path &Path,
                                 AllocatorKind Allocator) {
  SCOPED_TRACE(Path.filename().string() + " vs " +
               allocatorKindName(Allocator));

  std::ifstream In(Path);
  ASSERT_TRUE(In) << "cannot read " << Path;
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Located = lintTraceScript(In, Diags);
  ASSERT_EQ(Diags.errorCount(), 0u)
      << "corpus script must be sound: " << Diags.firstError();

  TracePredictions P = predictTrace(buildTraceModel(Located));

  std::vector<AllocEvent> Events;
  Events.reserve(Located.size());
  for (const LocatedAllocEvent &Event : Located)
    Events.push_back(Event.Event);

  ExperimentConfig Config;
  Config.Allocator = Allocator;
  Config.Telemetry = TelemetryLevel::Full;
  RunResult R = runScriptExperiment(Config, Events);

  // Allocator usage statistics.
  EXPECT_EQ(P.MallocCalls, R.Alloc.MallocCalls);
  EXPECT_EQ(P.FreeCalls, R.Alloc.FreeCalls);
  EXPECT_EQ(P.BytesRequested, R.Alloc.BytesRequested);
  EXPECT_EQ(P.MaxLiveBytes, R.Alloc.MaxLiveBytes);
  EXPECT_EQ(P.FinalLiveBytes, R.Alloc.LiveBytes);
  EXPECT_EQ(P.MaxLiveObjects, R.Alloc.MaxLiveObjects);
  EXPECT_EQ(P.FinalLiveObjects, R.Alloc.LiveObjects);

  // Reference volume and event counts.
  EXPECT_EQ(P.AppRefs, R.AppRefs);
  EXPECT_EQ(P.Events, R.Telemetry.counterValue("driver.events"));
  EXPECT_EQ(P.MallocCalls, R.Telemetry.counterValue("alloc.mallocs"));
  EXPECT_EQ(P.FreeCalls, R.Telemetry.counterValue("alloc.frees"));

  // Distributions, whole-snapshot equality: every bucket, count, sum, min
  // and max must match.
  EXPECT_EQ(P.RequestSizes, R.Telemetry.histogram("alloc.request_bytes"));
  EXPECT_EQ(P.Lifetimes, R.Telemetry.histogram("driver.obj_lifetime"));
}

} // namespace

TEST(TraceLintCrossCheckTest, CorpusHasScripts) {
  EXPECT_GE(corpusScripts().size(), 6u);
}

TEST(TraceLintCrossCheckTest, CorpusLintsClean) {
  // Corpus scripts seed the fuzzer and the replay tests; they must be
  // entirely clean — warnings included (no leaks, no empty touches).
  for (const auto &Path : corpusScripts()) {
    SCOPED_TRACE(Path.filename().string());
    std::ifstream In(Path);
    ASSERT_TRUE(In);
    DiagEngine Diags;
    lintTraceScript(In, Diags);
    EXPECT_TRUE(Diags.clean())
        << Diags.errorCount() << " errors, " << Diags.warningCount()
        << " warnings; first: "
        << (Diags.diags().empty() ? "" : Diags.diags().front().Message);
  }
}

TEST(TraceLintCrossCheckTest, PredictionsMatchFirstFit) {
  for (const auto &Path : corpusScripts())
    checkScriptAgainstSimulator(Path, AllocatorKind::FirstFit);
}

TEST(TraceLintCrossCheckTest, PredictionsMatchQuickFit) {
  // QuickFit forwards large requests to a nested GnuG++ backend whose own
  // probes live under "alloc.general.*"; the top-level request_bytes
  // histogram must still record every script malloc exactly once.
  for (const auto &Path : corpusScripts())
    checkScriptAgainstSimulator(Path, AllocatorKind::QuickFit);
}

TEST(TraceLintCrossCheckTest, PredictionsMatchBsd) {
  for (const auto &Path : corpusScripts())
    checkScriptAgainstSimulator(Path, AllocatorKind::Bsd);
}

TEST(TraceLintCrossCheckTest, PredictionsMatchCustom) {
  // Custom synthesizes its size classes from the script's own request
  // profile — the runScriptExperiment path TraceLint cross-checks must
  // drive that synthesis from the same malloc sizes the analyzer saw.
  for (const auto &Path : corpusScripts())
    checkScriptAgainstSimulator(Path, AllocatorKind::Custom);
}

TEST(TraceLintCrossCheckTest, PredictionsMatchSpaceFit) {
  for (const auto &Path : corpusScripts())
    checkScriptAgainstSimulator(Path, AllocatorKind::SpaceFit);
}

TEST(TraceLintCrossCheckTest, PredictionsMatchBitmapFit) {
  // BitmapFit dispatches on nothing but the requested size, so TraceLint
  // predicts its size-class traffic statically: class_hits/class_misses
  // split every script malloc, and the class_index histogram is the
  // line-granular demand profile — all bit-exact against telemetry.
  for (const auto &Path : corpusScripts()) {
    checkScriptAgainstSimulator(Path, AllocatorKind::BitmapFit);

    std::ifstream In(Path);
    ASSERT_TRUE(In);
    DiagEngine Diags;
    std::vector<LocatedAllocEvent> Located = lintTraceScript(In, Diags);
    ASSERT_EQ(Diags.errorCount(), 0u);
    TracePredictions P = predictTrace(buildTraceModel(Located));

    std::vector<AllocEvent> Events;
    for (const LocatedAllocEvent &Event : Located)
      Events.push_back(Event.Event);
    ExperimentConfig Config;
    Config.Allocator = AllocatorKind::BitmapFit;
    Config.Telemetry = TelemetryLevel::Full;
    RunResult R = runScriptExperiment(Config, Events);

    SCOPED_TRACE(Path.filename().string());
    EXPECT_EQ(P.LineClassMallocs, R.Telemetry.counterValue("alloc.class_hits"));
    EXPECT_EQ(P.DelegatedMallocs,
              R.Telemetry.counterValue("alloc.class_misses"));
    EXPECT_EQ(P.LineClassMallocs + P.DelegatedMallocs, P.MallocCalls);
    EXPECT_EQ(P.LineClassDemand, R.Telemetry.histogram("alloc.class_index"));
  }
}

TEST(TraceLintCrossCheckTest, PredictionsSeeThroughCaches) {
  // Attaching observers (caches) must not perturb any predicted quantity.
  std::vector<std::filesystem::path> Paths = corpusScripts();
  ASSERT_FALSE(Paths.empty());
  std::ifstream In(Paths.front());
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Located = lintTraceScript(In, Diags);
  ASSERT_EQ(Diags.errorCount(), 0u);
  TracePredictions P = predictTrace(buildTraceModel(Located));

  std::vector<AllocEvent> Events;
  for (const LocatedAllocEvent &Event : Located)
    Events.push_back(Event.Event);
  ExperimentConfig Config;
  Config.Allocator = AllocatorKind::GnuGxx;
  Config.Telemetry = TelemetryLevel::Full;
  Config.Caches = {CacheConfig{16 * 1024, 32, 1}};
  RunResult R = runScriptExperiment(Config, Events);
  EXPECT_EQ(P.AppRefs, R.AppRefs);
  EXPECT_EQ(P.MaxLiveBytes, R.Alloc.MaxLiveBytes);
  EXPECT_EQ(P.RequestSizes, R.Telemetry.histogram("alloc.request_bytes"));
}
