//===- tests/cache_engine_equivalence_test.cpp - StackSim vs CacheBank ----===//
//
// The exactness contract behind the stack-distance engine: for any cache
// family sharing block size and set count, StackSim's derived statistics —
// total and split by AccessSource — must equal per-config CacheBank
// simulation *bit-exactly*, at the sink level (synthesized streams, scalar
// and batched delivery) and end to end (corpus scripts and the full
// Figure 6-8 sweep across all seven allocator kinds, through
// runScriptExperiment/runExperiment with engine=percfg vs stackdist).
//
// A failure here means the one-pass engine and the reference simulators
// disagree about LRU semantics; neither side is trusted over the other —
// the stack engine double-enters the cache bank's books.
//
//===----------------------------------------------------------------------===//

#include "analyze/TraceLint.h"
#include "cache/StackSim.h"
#include "core/Lab.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

using namespace allocsim;

namespace {

/// The seven allocator kinds the acceptance contract quantifies over: the
/// paper's five plus the two modern CacheLab backends.
std::vector<AllocatorKind> sevenAllocators() {
  std::vector<AllocatorKind> Kinds(PaperAllocators, PaperAllocators + 5);
  Kinds.push_back(AllocatorKind::BitmapFit);
  Kinds.push_back(AllocatorKind::SpaceFit);
  return Kinds;
}

/// The three family shapes under test: the Figure 6-8 family (512 sets,
/// assoc 1..16), a fully-associative chain (1 set each — Assoc equals
/// numBlocks, the inclusion property in its purest form), and a deliberate
/// mixed-associativity family that shares sets but skips powers.
std::vector<CacheConfig> fullyAssocFamily() {
  return {CacheConfig{512, 32, 16}, CacheConfig{1024, 32, 32},
          CacheConfig{2048, 32, 64}};
}

std::vector<CacheConfig> sparseFamily() {
  return {CacheConfig{16 * 1024, 32, 1}, CacheConfig{64 * 1024, 32, 4},
          CacheConfig{256 * 1024, 32, 16}};
}

void expectStatsEqual(const CacheStats &Per, const CacheStats &Dist,
                      const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(Per.Accesses, Dist.Accesses);
  EXPECT_EQ(Per.Misses, Dist.Misses);
  for (unsigned S = 0; S != NumAccessSources; ++S) {
    EXPECT_EQ(Per.AccessesBySource[S], Dist.AccessesBySource[S])
        << "source " << S;
    EXPECT_EQ(Per.MissesBySource[S], Dist.MissesBySource[S])
        << "source " << S;
  }
}

/// Synthesizes a reference stream that exercises every dimension the frame
/// split and set mapping care about: all three sources, sizes that straddle
/// block boundaries, reuse at many distances, and addresses whose Size
/// extension wraps the 32-bit space (both engines must agree on the
/// degenerate empty frame range too).
std::vector<MemAccess> synthesizeStream(uint64_t Seed, size_t Count) {
  Rng R(Seed);
  std::vector<MemAccess> Stream;
  Stream.reserve(Count);
  // A handful of hot bases makes reuse distances realistic instead of
  // uniformly cold.
  const Addr Bases[] = {HeapBase, HeapBase + 4096, StackBase, 0xFFFFFFF0u};
  for (size_t I = 0; I != Count; ++I) {
    MemAccess Acc;
    const Addr Base = Bases[R.nextBelow(4)];
    Acc.Address = Base + static_cast<Addr>(R.nextBelow(32 * 1024));
    Acc.Size = static_cast<uint8_t>(1 + R.nextBelow(64));
    Acc.Kind = R.nextBool(0.3) ? AccessKind::Write : AccessKind::Read;
    Acc.Source = static_cast<AccessSource>(R.nextBelow(NumAccessSources));
    Stream.push_back(Acc);
  }
  return Stream;
}

/// Delivers \p Stream to both engines — scalar and batched — and asserts
/// member-by-member equality of every derived statistic.
void checkFamilyOnStream(const std::vector<CacheConfig> &Family,
                         const std::vector<MemAccess> &Stream,
                         const std::string &What) {
  ASSERT_EQ(describeStackFamilyProblem(Family), "");

  CacheBank ScalarBank, BatchedBank;
  for (const CacheConfig &Config : Family) {
    ScalarBank.addCache(Config);
    BatchedBank.addCache(Config);
  }
  StackSim ScalarStack(Family), BatchedStack(Family);

  for (const MemAccess &Acc : Stream) {
    ScalarBank.access(Acc);
    ScalarStack.access(Acc);
  }
  constexpr size_t Chunk = 256;
  for (size_t Offset = 0; Offset < Stream.size(); Offset += Chunk) {
    size_t Count = std::min(Chunk, Stream.size() - Offset);
    BatchedBank.accessBatch(Stream.data() + Offset, Count);
    BatchedStack.accessBatch(Stream.data() + Offset, Count);
  }

  for (size_t I = 0; I != Family.size(); ++I) {
    const std::string Member = What + ", member " + Family[I].describe();
    expectStatsEqual(ScalarBank.cache(I).stats(), ScalarStack.statsFor(I),
                     Member + " (scalar)");
    expectStatsEqual(BatchedBank.cache(I).stats(), BatchedStack.statsFor(I),
                     Member + " (batched)");
    // The two StackSim delivery paths must agree with each other too.
    expectStatsEqual(ScalarStack.statsFor(I), BatchedStack.statsFor(I),
                     Member + " (stack scalar vs batched)");
  }
}

std::vector<std::filesystem::path> corpusScripts() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ALLOCSIM_CORPUS_DIR))
    if (Entry.path().extension() == ".events")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::vector<AllocEvent> loadScript(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In) << "cannot read " << Path;
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Located = lintTraceScript(In, Diags);
  EXPECT_EQ(Diags.errorCount(), 0u)
      << "corpus script must be sound: " << Diags.firstError();
  std::vector<AllocEvent> Events;
  Events.reserve(Located.size());
  for (const LocatedAllocEvent &Event : Located)
    Events.push_back(Event.Event);
  return Events;
}

/// Runs the same experiment under both engines and asserts per-cache
/// bit-exactness of everything RunResult carries for a cache.
void checkRunPair(const ExperimentConfig &Base, const std::string &What,
                  const std::vector<AllocEvent> *Script = nullptr) {
  ExperimentConfig PerCfg = Base;
  PerCfg.CacheEngine = CacheEngineKind::PerConfig;
  ExperimentConfig Stack = Base;
  Stack.CacheEngine = CacheEngineKind::StackDist;

  RunResult Per = Script ? runScriptExperiment(PerCfg, *Script)
                         : runExperiment(PerCfg);
  RunResult Dist = Script ? runScriptExperiment(Stack, *Script)
                          : runExperiment(Stack);

  ASSERT_EQ(Per.Caches.size(), Dist.Caches.size());
  EXPECT_EQ(Per.TotalRefs, Dist.TotalRefs);
  for (size_t I = 0; I != Per.Caches.size(); ++I) {
    const std::string Member =
        What + ", member " + Per.Caches[I].Config.describe();
    EXPECT_EQ(Per.Caches[I].Config, Dist.Caches[I].Config);
    expectStatsEqual(Per.Caches[I].Stats, Dist.Caches[I].Stats, Member);
    EXPECT_EQ(Per.Caches[I].Time.totalCycles(), Dist.Caches[I].Time.totalCycles())
        << Member;
  }
}

} // namespace

TEST(CacheEngineEquivalenceTest, SynthesizedStreams) {
  const struct {
    const char *Name;
    std::vector<CacheConfig> Family;
  } Families[] = {
      {"fig678", stackCacheSweep()},
      {"fully-assoc", fullyAssocFamily()},
      {"sparse", sparseFamily()},
      {"single", {CacheConfig{16 * 1024, 32, 1}}},
  };
  for (const auto &Entry : Families)
    for (uint64_t Seed : {1u, 42u, 20260808u})
      checkFamilyOnStream(Entry.Family, synthesizeStream(Seed, 40000),
                          std::string(Entry.Name) + " seed " +
                              std::to_string(Seed));
}

TEST(CacheEngineEquivalenceTest, TinyStreamEdges) {
  // Empty stream, one access, and one whose frame range is empty because
  // the 32-bit address arithmetic wraps.
  const std::vector<CacheConfig> Family = stackCacheSweep();
  checkFamilyOnStream(Family, {}, "empty stream");
  checkFamilyOnStream(Family, {MemAccess{HeapBase, 4}}, "one access");
  MemAccess Wrap;
  Wrap.Address = 0xFFFFFFFFu;
  Wrap.Size = 8;
  checkFamilyOnStream(Family, {Wrap}, "wrapping access");
}

TEST(CacheEngineEquivalenceTest, CorpusScriptsAllAllocators) {
  for (const auto &Path : corpusScripts()) {
    std::vector<AllocEvent> Events = loadScript(Path);
    for (AllocatorKind Allocator : sevenAllocators()) {
      for (bool Batched : {false, true}) {
        SCOPED_TRACE(Path.filename().string() + " vs " +
                     allocatorKindName(Allocator) +
                     (Batched ? " (batched)" : " (scalar)"));
        ExperimentConfig Config;
        Config.Allocator = Allocator;
        Config.Caches = stackCacheSweep();
        Config.BatchedDelivery = Batched;
        checkRunPair(Config, Path.filename().string(), &Events);
      }
    }
  }
}

TEST(CacheEngineEquivalenceTest, Fig678SweepAllSevenAllocators) {
  // The acceptance sweep: the full Figure 6-8 family under every allocator
  // kind, through the real workload engine (reduced scale — the reference
  // mix is identical in kind, just shorter).
  for (AllocatorKind Allocator : sevenAllocators()) {
    SCOPED_TRACE(allocatorKindName(Allocator));
    ExperimentConfig Config;
    Config.Workload = WorkloadId::GsSmall;
    Config.Allocator = Allocator;
    Config.Engine.Scale = 64;
    Config.Caches = stackCacheSweep();
    checkRunPair(Config, allocatorKindName(Allocator));
  }
}

TEST(CacheEngineEquivalenceTest, FullyAssociativeEndToEnd) {
  // Assoc == numBlocks() members (one set each): the degenerate geometry
  // satellite meets the inclusion property head on.
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Espresso;
  Config.Engine.Scale = 64;
  Config.Caches = fullyAssocFamily();
  checkRunPair(Config, "fully-assoc end-to-end");
}

TEST(CacheEngineEquivalenceTest, SetMissTelemetryMatches) {
  // Under full telemetry both engines must surface identical
  // cache.<I>.set_misses histograms (and identical merged snapshots except
  // for the stack engine's own cache.stackdist.* additions).
  std::vector<AllocEvent> Events = loadScript(corpusScripts().front());
  ExperimentConfig Base;
  Base.Allocator = AllocatorKind::FirstFit;
  Base.Caches = stackCacheSweep();
  Base.Telemetry = TelemetryLevel::Full;

  ExperimentConfig PerCfg = Base;
  PerCfg.CacheEngine = CacheEngineKind::PerConfig;
  ExperimentConfig Stack = Base;
  Stack.CacheEngine = CacheEngineKind::StackDist;
  RunResult Per = runScriptExperiment(PerCfg, Events);
  RunResult Dist = runScriptExperiment(Stack, Events);

  for (size_t I = 0; I != Base.Caches.size(); ++I) {
    std::string Name = "cache." + std::to_string(I) + ".set_misses";
    EXPECT_EQ(Per.Telemetry.histogram(Name), Dist.Telemetry.histogram(Name))
        << Name;
  }
  // The stack engine's probes exist and are self-consistent: every frame
  // is either found at a finite distance or cold.
  uint64_t Frames = Dist.Telemetry.counterValue("cache.stackdist.frames");
  uint64_t Cold = Dist.Telemetry.counterValue("cache.stackdist.cold");
  EXPECT_EQ(Frames, Per.Caches[0].Stats.Accesses);
  EXPECT_EQ(Dist.Telemetry.counterValue("cache.stackdist.members"),
            Base.Caches.size());
  const HistogramSnapshot &Distances =
      Dist.Telemetry.histogram("cache.stackdist.distance");
  EXPECT_EQ(Distances.Count + Cold, Frames);
}

TEST(CacheEngineEquivalenceTest, FamilyProblemDiagnostics) {
  EXPECT_EQ(describeStackFamilyProblem({}), "");
  EXPECT_EQ(describeStackFamilyProblem(stackCacheSweep()), "");
  EXPECT_EQ(describeStackFamilyProblem(fullyAssocFamily()), "");

  // paperCacheSweep is all direct-mapped: set counts differ.
  EXPECT_NE(describeStackFamilyProblem(paperCacheSweep()), "");
  // Mixed block sizes.
  EXPECT_NE(describeStackFamilyProblem(
                {CacheConfig{16 * 1024, 32, 1}, CacheConfig{32 * 1024, 64, 2}}),
            "");
  // Duplicates.
  EXPECT_NE(describeStackFamilyProblem(
                {CacheConfig{16 * 1024, 32, 1}, CacheConfig{16 * 1024, 32, 1}}),
            "");
  // Invalid member.
  EXPECT_NE(describeStackFamilyProblem({CacheConfig{16 * 1024, 0, 1}}), "");
}
