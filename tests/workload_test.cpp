//===- tests/workload_test.cpp - Workload engine and driver tests ---------===//

#include "trace/RefTrace.h"
#include "workload/Driver.h"
#include "workload/Engine.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

EngineOptions testOptions(uint32_t Scale = 128) {
  EngineOptions Options;
  Options.Scale = Scale;
  Options.ClampScaleForLiveHeap = false;
  return Options;
}

} // namespace

TEST(ProfilesTest, RegistryCoversAllWorkloads) {
  for (WorkloadId Id :
       {WorkloadId::Espresso, WorkloadId::Gs, WorkloadId::Ptc,
        WorkloadId::Gawk, WorkloadId::Make, WorkloadId::GsSmall,
        WorkloadId::GsMedium, WorkloadId::Cfrac}) {
    const AppProfile &Profile = getProfile(Id);
    EXPECT_STREQ(Profile.Name, workloadName(Id));
    EXPECT_FALSE(Profile.SizeMix.empty());
    EXPECT_GT(Profile.meanRequestBytes(), 0.0);
    EXPECT_GT(Profile.refsPerAlloc(), 10.0);
    EXPECT_GT(Profile.instrPerRef(), 1.0);
    EXPECT_LE(Profile.freeFraction(), 1.0);
  }
}

TEST(ProfilesTest, NameParsingRoundTrips) {
  for (WorkloadId Id : PaperWorkloads)
    EXPECT_EQ(parseWorkload(workloadName(Id)), Id);
  EXPECT_EQ(parseWorkload("ghostscript"), WorkloadId::Gs);
}

TEST(ProfilesTest, Table2NumbersEncoded) {
  // Spot-check the transcription of the paper's Table 2.
  const AppProfile &Espresso = getProfile(WorkloadId::Espresso);
  EXPECT_EQ(Espresso.PaperObjectsAllocated, 1673000u);
  EXPECT_EQ(Espresso.PaperObjectsFreed, 1666000u);
  EXPECT_EQ(Espresso.PaperMaxHeapKb, 396u);
  const AppProfile &Ptc = getProfile(WorkloadId::Ptc);
  EXPECT_EQ(Ptc.PaperObjectsFreed, 0u) << "PTC never frees";
  const AppProfile &GsSmall = getProfile(WorkloadId::GsSmall);
  EXPECT_EQ(GsSmall.PaperObjectsAllocated, 109000u);
}

TEST(ProfilesTest, MeanSizeConsistentWithMaxHeap) {
  // Surviving objects times mean request size should land within a factor
  // of ~1.6 of the paper's live heap (allocator overhead explains the
  // rest) — the calibration invariant behind the size mixes.
  for (WorkloadId Id : PaperWorkloads) {
    const AppProfile &Profile = getProfile(Id);
    double Surviving = double(Profile.PaperObjectsAllocated) -
                       double(Profile.PaperObjectsFreed);
    double PredictedKb = Surviving * Profile.meanRequestBytes() / 1024.0;
    EXPECT_GT(PredictedKb, Profile.PaperMaxHeapKb * 0.6) << Profile.Name;
    EXPECT_LT(PredictedKb, Profile.PaperMaxHeapKb * 1.6) << Profile.Name;
  }
}

TEST(WorkloadEngineTest, DeterministicForSameSeed) {
  WorkloadEngine A(getProfile(WorkloadId::Espresso), testOptions());
  WorkloadEngine B(getProfile(WorkloadId::Espresso), testOptions());
  EXPECT_EQ(A.generateAll(), B.generateAll());
}

TEST(WorkloadEngineTest, DifferentSeedsDiffer) {
  EngineOptions Options = testOptions();
  WorkloadEngine A(getProfile(WorkloadId::Espresso), Options);
  Options.Seed = 999;
  WorkloadEngine B(getProfile(WorkloadId::Espresso), Options);
  EXPECT_NE(A.generateAll(), B.generateAll());
}

TEST(WorkloadEngineTest, StreamIsWellFormed) {
  for (WorkloadId Id : PaperWorkloads) {
    WorkloadEngine Engine(getProfile(Id), testOptions());
    std::vector<AllocEvent> Events = Engine.generateAll();
    std::string Why;
    EXPECT_TRUE(validateAllocEvents(Events, &Why))
        << workloadName(Id) << ": " << Why;
  }
}

TEST(WorkloadEngineTest, TotalsMatchScaledPaperCounts) {
  WorkloadEngine Engine(getProfile(WorkloadId::Espresso), testOptions(128));
  const AppProfile &Profile = getProfile(WorkloadId::Espresso);
  EXPECT_EQ(Engine.totalAllocations(), Profile.PaperObjectsAllocated / 128);

  uint64_t Mallocs = 0, Frees = 0;
  Engine.generate([&](const AllocEvent &Event) {
    Mallocs += Event.Kind == AllocEventKind::Malloc;
    Frees += Event.Kind == AllocEventKind::Free;
  });
  EXPECT_EQ(Mallocs, Engine.totalAllocations());
  EXPECT_EQ(Frees, Engine.totalFrees());
  // The run must end with the paper's surviving-object count.
  uint64_t Surviving =
      Profile.PaperObjectsAllocated - Profile.PaperObjectsFreed;
  EXPECT_EQ(Mallocs - Frees, Surviving);
}

TEST(WorkloadEngineTest, ScaleClampPreservesPtcHeap) {
  // PTC frees nothing: the clamp must force scale 1.
  EngineOptions Options;
  Options.Scale = 64;
  Options.ClampScaleForLiveHeap = true;
  WorkloadEngine Engine(getProfile(WorkloadId::Ptc), Options);
  EXPECT_EQ(Engine.effectiveScale(), 1u);
  EXPECT_EQ(Engine.totalAllocations(),
            getProfile(WorkloadId::Ptc).PaperObjectsAllocated);
}

TEST(WorkloadEngineTest, ReferenceVolumeTracksPaperRatio) {
  const AppProfile &Profile = getProfile(WorkloadId::Gawk);
  WorkloadEngine Engine(Profile, testOptions(64));
  uint64_t Words = 0, Mallocs = 0;
  Engine.generate([&](const AllocEvent &Event) {
    switch (Event.Kind) {
    case AllocEventKind::Touch:
    case AllocEventKind::StackTouch:
      Words += Event.Amount;
      break;
    case AllocEventKind::Malloc:
      ++Mallocs;
      break;
    case AllocEventKind::Free:
      break;
    }
  });
  double RefsPerAlloc = double(Words) / double(Mallocs);
  EXPECT_NEAR(RefsPerAlloc, Profile.refsPerAlloc(),
              Profile.refsPerAlloc() * 0.1)
      << "reference budget drifted from the Table 2 ratio";
}

TEST(WorkloadEngineTest, SizeProfileMatchesEventStream) {
  WorkloadEngine Engine(getProfile(WorkloadId::Make), testOptions(4));
  Histogram FromEvents;
  Engine.generate([&](const AllocEvent &Event) {
    if (Event.Kind == AllocEventKind::Malloc)
      FromEvents.add(Event.Amount);
  });
  Histogram Profiled = Engine.sizeProfile();
  EXPECT_EQ(Profiled.total(), FromEvents.total());
  for (const auto &[Size, Count] : Profiled)
    EXPECT_EQ(FromEvents.count(Size), Count) << "size " << Size;
}

TEST(WorkloadEngineTest, MeanDrawnSizeMatchesProfile) {
  const AppProfile &Profile = getProfile(WorkloadId::Gs);
  WorkloadEngine Engine(Profile, testOptions(16));
  Histogram Sizes = Engine.sizeProfile();
  double Sum = 0;
  for (const auto &[Size, Count] : Sizes)
    Sum += double(Size) * double(Count);
  double Mean = Sum / double(Sizes.total());
  EXPECT_NEAR(Mean, Profile.meanRequestBytes(),
              Profile.meanRequestBytes() * 0.15);
}

TEST(WorkloadEngineTest, DeathClustersFreeAdjacentObjects) {
  // A profile that always frees in clusters must emit runs of frees whose
  // object ids are consecutive in allocation order.
  AppProfile Profile = getProfile(WorkloadId::Gawk);
  Profile.ClusterDeathProb = 1.0;
  Profile.DieYoungProb = 0.0;
  WorkloadEngine Engine(Profile, testOptions(256));

  std::vector<uint32_t> Freed;
  Engine.generate([&](const AllocEvent &Event) {
    if (Event.Kind == AllocEventKind::Free)
      Freed.push_back(Event.Id);
  });
  ASSERT_GT(Freed.size(), 100u);

  // Count ascending-by-one adjacencies in the free order; cluster deaths
  // should make them dominant.
  size_t Adjacent = 0;
  for (size_t I = 1; I != Freed.size(); ++I)
    Adjacent += Freed[I] == Freed[I - 1] + 1;
  EXPECT_GT(Adjacent, Freed.size() / 2)
      << "death clusters are not freeing adjacent objects";
}

TEST(WorkloadEngineTest, ClusterProbZeroStillWellFormed) {
  AppProfile Profile = getProfile(WorkloadId::Espresso);
  Profile.ClusterDeathProb = 0.0;
  WorkloadEngine Engine(Profile, testOptions(256));
  std::string Why;
  EXPECT_TRUE(validateAllocEvents(Engine.generateAll(), &Why)) << Why;
}

TEST(WorkloadEngineTest, CfracExtensionProfileRuns) {
  WorkloadEngine Engine(getProfile(WorkloadId::Cfrac), testOptions(128));
  std::vector<AllocEvent> Events = Engine.generateAll();
  std::string Why;
  EXPECT_TRUE(validateAllocEvents(Events, &Why)) << Why;
  // cfrac frees nearly everything.
  EXPECT_GT(Engine.totalFrees(),
            Engine.totalAllocations() * 9 / 10);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

namespace {

struct DriverHarness {
  MemoryBus Bus;
  SimHeap Heap{Bus};
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::Bsd, Heap, Cost);
  Driver Drive{*Alloc, Bus, Cost, 4.0};
};

} // namespace

TEST(DriverTest, ExecutesLifecycle) {
  DriverHarness H;
  H.Drive.execute(AllocEvent::makeMalloc(1, 32));
  EXPECT_EQ(H.Drive.liveObjects(), 1u);
  Addr Ptr = H.Drive.addressOf(1);
  EXPECT_TRUE(H.Heap.contains(Ptr, 32));
  H.Drive.execute(AllocEvent::makeFree(1));
  EXPECT_EQ(H.Drive.liveObjects(), 0u);
}

TEST(DriverTest, TouchEmitsApplicationRefs) {
  DriverHarness H;
  H.Drive.execute(AllocEvent::makeMalloc(1, 32));
  uint64_t Before = H.Bus.accessesFrom(AccessSource::Application);
  H.Drive.execute(AllocEvent::makeTouch(1, 8, AccessKind::Write));
  EXPECT_EQ(H.Bus.accessesFrom(AccessSource::Application), Before + 8);
  EXPECT_EQ(H.Drive.appRefs(), 8u);
}

TEST(DriverTest, TouchWrapsWithinObject) {
  DriverHarness H;
  H.Drive.execute(AllocEvent::makeMalloc(1, 8)); // 2 words
  CollectingSink Sink;
  H.Bus.attach(&Sink);
  H.Drive.execute(AllocEvent::makeTouch(1, 5, AccessKind::Read));
  Addr Base = H.Drive.addressOf(1);
  ASSERT_EQ(Sink.records().size(), 5u);
  for (const MemAccess &Access : Sink.records()) {
    EXPECT_GE(Access.Address, Base);
    EXPECT_LT(Access.Address, Base + 8);
  }
}

TEST(DriverTest, StackTouchesStayInWindow) {
  DriverHarness H;
  CollectingSink Sink;
  H.Bus.attach(&Sink);
  H.Drive.execute(AllocEvent::makeStackTouch(2000, AccessKind::Read));
  ASSERT_EQ(Sink.records().size(), 2000u);
  for (const MemAccess &Access : Sink.records()) {
    EXPECT_GE(Access.Address, StackBase);
    EXPECT_LT(Access.Address, StackBase + 2048);
  }
}

TEST(DriverTest, ChargesInstructionsPerRef) {
  DriverHarness H;
  H.Drive.execute(AllocEvent::makeStackTouch(1000, AccessKind::Read));
  // 4.0 instructions per ref.
  EXPECT_EQ(H.Cost.appInstructions(), 4000u);
}

TEST(DriverTest, FractionalInstrPerRefAccumulates) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::Bsd, Heap, Cost);
  Driver Drive(*Alloc, Bus, Cost, 3.37);
  Drive.execute(AllocEvent::makeStackTouch(10000, AccessKind::Read));
  EXPECT_NEAR(double(Cost.appInstructions()), 33700.0, 2.0);
}

TEST(DriverTest, FreeOfUnknownIdIsFatal) {
  DriverHarness H;
  EXPECT_DEATH(H.Drive.execute(AllocEvent::makeFree(42)), "unknown");
}
