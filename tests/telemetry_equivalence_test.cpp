//===- tests/telemetry_equivalence_test.cpp - Probes never perturb --------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// The telemetry contract has two halves:
//
//  1. **Observation never perturbs.** Probes only read quantities the
//     simulation already computes; attaching a registry (at any level) must
//     leave every measurement bit-identical — RunResult fields, the golden
//     allocsim-matrix-v1 serialization, and the raw trace bytes — for all
//     five paper allocators, under batched and scalar delivery alike. This
//     is what lets telemetry=off stay byte-for-byte on the committed golden
//     history while telemetry=full is trustworthy: full sees the *same*
//     run, not a perturbed one.
//
//  2. **What the probes report is right.** The collected distributions are
//     cross-checked against independent sources: base counters against
//     AllocatorStats, search-length sums against blocksSearched(), per-set
//     conflict totals against cache miss counts, and the paper's Fig. 6-8
//     mechanism claim (FIRSTFIT's long freelist searches vs QUICKFIT's
//     exact-size reuse) against the actual means.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"
#include "trace/RefTrace.h"
#include "workload/Driver.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace allocsim;

namespace {

/// Field-by-field exact comparison of every *measurement* in two
/// RunResults (everything except the Telemetry snapshot itself). Doubles
/// compare with ==: identical integer inputs must give identical derived
/// values.
void expectMeasurementsIdentical(const RunResult &A, const RunResult &B,
                                 const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.AppInstructions, B.AppInstructions);
  EXPECT_EQ(A.AllocInstructions, B.AllocInstructions);
  EXPECT_EQ(A.TotalRefs, B.TotalRefs);
  EXPECT_EQ(A.AppRefs, B.AppRefs);
  EXPECT_EQ(A.AllocRefs, B.AllocRefs);
  EXPECT_EQ(A.TagRefs, B.TagRefs);

  EXPECT_EQ(A.Alloc.MallocCalls, B.Alloc.MallocCalls);
  EXPECT_EQ(A.Alloc.FreeCalls, B.Alloc.FreeCalls);
  EXPECT_EQ(A.Alloc.BytesRequested, B.Alloc.BytesRequested);
  EXPECT_EQ(A.Alloc.LiveBytes, B.Alloc.LiveBytes);
  EXPECT_EQ(A.Alloc.MaxLiveBytes, B.Alloc.MaxLiveBytes);
  EXPECT_EQ(A.HeapBytes, B.HeapBytes);
  EXPECT_EQ(A.BlocksSearched, B.BlocksSearched);

  ASSERT_EQ(A.Caches.size(), B.Caches.size());
  for (size_t I = 0; I != A.Caches.size(); ++I) {
    SCOPED_TRACE("cache " + A.Caches[I].Config.describe());
    const CacheStats &SA = A.Caches[I].Stats;
    const CacheStats &SB = B.Caches[I].Stats;
    EXPECT_EQ(SA.Accesses, SB.Accesses);
    EXPECT_EQ(SA.Misses, SB.Misses);
    for (unsigned Source = 0; Source != NumAccessSources; ++Source) {
      EXPECT_EQ(SA.AccessesBySource[Source], SB.AccessesBySource[Source]);
      EXPECT_EQ(SA.MissesBySource[Source], SB.MissesBySource[Source]);
    }
    EXPECT_EQ(A.Caches[I].Time.seconds(), B.Caches[I].Time.seconds());
  }

  ASSERT_EQ(A.Paging.size(), B.Paging.size());
  for (size_t I = 0; I != A.Paging.size(); ++I) {
    EXPECT_EQ(A.Paging[I].MemoryKb, B.Paging[I].MemoryKb);
    EXPECT_EQ(A.Paging[I].FaultsPerRef, B.Paging[I].FaultsPerRef);
  }
  EXPECT_EQ(A.DistinctPages, B.DistinctPages);
  EXPECT_EQ(A.CheckViolations, B.CheckViolations);
  EXPECT_EQ(A.CheckWalks, B.CheckWalks);
  EXPECT_EQ(A.CheckReports, B.CheckReports);
}

ExperimentConfig paperConfig(WorkloadId Workload, AllocatorKind Allocator) {
  ExperimentConfig Config;
  Config.Workload = Workload;
  Config.Allocator = Allocator;
  Config.Engine.Scale = 128;
  Config.Engine.Seed = 1592932958;
  Config.Caches = {CacheConfig{16 * 1024, 32, 1},
                   CacheConfig{64 * 1024, 32, 2}};
  Config.PagingMemoryKb = {256, 1024};
  return Config;
}

/// Runs \p Config at every telemetry level and requires the measurements to
/// be identical; returns the full-level result for content checks.
RunResult expectLevelsEquivalent(ExperimentConfig Config,
                                 const std::string &Label) {
  Config.Telemetry = TelemetryLevel::Off;
  RunResult Off = runExperiment(Config);
  EXPECT_TRUE(Off.Telemetry.empty());
  Config.Telemetry = TelemetryLevel::Summary;
  RunResult Summary = runExperiment(Config);
  Config.Telemetry = TelemetryLevel::Full;
  RunResult Full = runExperiment(Config);
  expectMeasurementsIdentical(Off, Summary, Label + "/off-vs-summary");
  expectMeasurementsIdentical(Off, Full, Label + "/off-vs-full");
  EXPECT_FALSE(Full.Telemetry.empty());
  return Full;
}

} // namespace

TEST(TelemetryEquivalenceTest, AllPaperAllocatorsBatchedAndScalar) {
  for (AllocatorKind Kind : PaperAllocators)
    for (bool Batched : {false, true}) {
      ExperimentConfig Config = paperConfig(WorkloadId::Espresso, Kind);
      Config.BatchedDelivery = Batched;
      expectLevelsEquivalent(Config,
                             std::string("espresso/") +
                                 allocatorKindName(Kind) +
                                 (Batched ? "/batched" : "/scalar"));
    }
}

TEST(TelemetryEquivalenceTest, BoundaryTagEmulationUnperturbed) {
  // Table 6 configuration: the tag-emulation stream plus the tag-touch
  // probes in the same code path must not interact.
  ExperimentConfig Config =
      paperConfig(WorkloadId::Espresso, AllocatorKind::GnuLocal);
  Config.EmulateBoundaryTags = true;
  expectLevelsEquivalent(Config, "espresso/GnuLocal+tags");
}

TEST(TelemetryEquivalenceTest, TelemetryItselfDeliveryIndependent) {
  // Stronger than measurement identity: the collected telemetry (per-set
  // conflict profiles, page-run lengths, everything) must also be identical
  // under scalar and batched delivery.
  for (AllocatorKind Kind : PaperAllocators) {
    ExperimentConfig Config = paperConfig(WorkloadId::GsSmall, Kind);
    Config.Telemetry = TelemetryLevel::Full;
    Config.BatchedDelivery = false;
    RunResult Scalar = runExperiment(Config);
    Config.BatchedDelivery = true;
    RunResult Batched = runExperiment(Config);
    EXPECT_EQ(Scalar.Telemetry, Batched.Telemetry)
        << allocatorKindName(Kind);
  }
}

TEST(TelemetryEquivalenceTest, GoldenMatrixBytesUnchangedByTelemetry) {
  // The committed golden history is written with telemetry off; a full-
  // telemetry run of the same matrix must serialize the very same bytes
  // (the telemetry snapshot lives in its own export, not in the matrix
  // forms).
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::GsSmall};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
                     AllocatorKind::Bsd};
  Spec.Caches = {CacheConfig{16 * 1024, 32, 1}};
  Spec.PagingMemoryKb = {256};
  Spec.Base.Engine.Scale = 128;
  Spec.Base.Engine.Seed = 1592932958;

  auto Serialize = [&](TelemetryLevel Level) {
    Spec.Base.Telemetry = Level;
    ResultStore Store = runMatrix(Spec, MatrixOptions{});
    EXPECT_EQ(Store.failedCount(), 0u);
    std::ostringstream Golden, Json, Csv;
    Store.writeGoldenJson(Golden);
    Store.writeJson(Json);
    Store.writeCsv(Csv);
    return Golden.str() + "\x1f" + Json.str() + "\x1f" + Csv.str();
  };
  std::string Off = Serialize(TelemetryLevel::Off);
  std::string Full = Serialize(TelemetryLevel::Full);
  EXPECT_EQ(Off, Full);
}

TEST(TelemetryEquivalenceTest, TraceBytesUnchangedByTelemetry) {
  // The reference stream itself — as serialized by the trace writer — must
  // not contain a single extra or reordered record when probes are live.
  auto Capture = [](TelemetryLevel Level) {
    std::ostringstream Out(std::ios::binary);
    BinaryTraceWriter Writer(Out);
    MemoryBus Bus;
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);
    Bus.attach(&Writer);
    SimHeap Heap(Bus);
    CostModel Cost;
    std::unique_ptr<Telemetry> Telem;
    if (Level != TelemetryLevel::Off)
      Telem = std::make_unique<Telemetry>(Level);
    Heap.attachTelemetry(Telem.get());
    std::unique_ptr<Allocator> Alloc =
        createAllocator(AllocatorKind::QuickFit, Heap, Cost);
    Alloc->attachTelemetry(Telem.get());
    const AppProfile &Profile = getProfile(WorkloadId::Espresso);
    EngineOptions Options;
    Options.Scale = 512;
    WorkloadEngine Engine(Profile, Options);
    Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
    Drive.attachTelemetry(Telem.get());
    Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
    Bus.flush();
    return Out.str();
  };
  std::string Off = Capture(TelemetryLevel::Off);
  std::string Full = Capture(TelemetryLevel::Full);
  ASSERT_FALSE(Off.empty());
  EXPECT_EQ(Off, Full);
}

//===----------------------------------------------------------------------===//
// Cross-checks: probe output vs independent measurements
//===----------------------------------------------------------------------===//

TEST(TelemetryCrossCheckTest, BaseCountersMatchAllocatorStats) {
  for (AllocatorKind Kind : PaperAllocators) {
    SCOPED_TRACE(allocatorKindName(Kind));
    ExperimentConfig Config = paperConfig(WorkloadId::Espresso, Kind);
    Config.Telemetry = TelemetryLevel::Full;
    RunResult Result = runExperiment(Config);
    const TelemetrySnapshot &T = Result.Telemetry;
    EXPECT_EQ(T.counterValue("alloc.mallocs"), Result.Alloc.MallocCalls);
    EXPECT_EQ(T.counterValue("alloc.frees"), Result.Alloc.FreeCalls);
    // Every malloc records one search-length sample, and the samples sum to
    // the independent BlocksExamined tally.
    EXPECT_EQ(T.histogram("alloc.search_len").Count,
              Result.Alloc.MallocCalls);
    EXPECT_EQ(T.histogram("alloc.search_len").Sum, Result.BlocksSearched);
    // Per-set conflict profiles partition each cache's misses.
    for (size_t C = 0; C != Result.Caches.size(); ++C)
      EXPECT_EQ(
          T.histogram("cache." + std::to_string(C) + ".set_misses").Sum,
          Result.Caches[C].Stats.Misses)
          << "cache " << C;
  }
}

TEST(TelemetryCrossCheckTest, QuickFitClassHitsPartitionMallocs) {
  // Every QUICKFIT malloc is either an exact-size fast hit or a miss routed
  // to the general backend — the two counters must partition the malloc
  // count exactly, and the backend's own malloc counter must equal the miss
  // count.
  ExperimentConfig Config =
      paperConfig(WorkloadId::GsSmall, AllocatorKind::QuickFit);
  Config.Telemetry = TelemetryLevel::Full;
  RunResult Result = runExperiment(Config);
  const TelemetrySnapshot &T = Result.Telemetry;
  uint64_t Hits = T.counterValue("alloc.class_hits");
  uint64_t Misses = T.counterValue("alloc.class_misses");
  EXPECT_GT(Hits, 0u);
  EXPECT_EQ(Hits + Misses, Result.Alloc.MallocCalls);
  EXPECT_EQ(T.counterValue("alloc.general.mallocs"), Misses);
}

TEST(TelemetryCrossCheckTest, FirstFitSearchesLongerThanQuickFit) {
  // The paper's Fig. 6-8 mechanism claim, checked on the small ghostscript
  // workload: FIRSTFIT walks a long freelist per malloc, QUICKFIT's
  // exact-size lists make most mallocs zero-search, so FIRSTFIT's mean
  // search length must be strictly larger.
  auto MeanSearchLen = [](AllocatorKind Kind) {
    ExperimentConfig Config = paperConfig(WorkloadId::GsSmall, Kind);
    Config.Telemetry = TelemetryLevel::Full;
    RunResult Result = runExperiment(Config);
    const HistogramSnapshot &Hist =
        Result.Telemetry.histogram("alloc.search_len");
    EXPECT_GT(Hist.Count, 0u);
    return Hist.mean();
  };
  double FirstFitMean = MeanSearchLen(AllocatorKind::FirstFit);
  double QuickFitMean = MeanSearchLen(AllocatorKind::QuickFit);
  EXPECT_GT(FirstFitMean, QuickFitMean);
  EXPECT_GT(FirstFitMean, 1.0);
}

TEST(TelemetryCrossCheckTest, SbrkProbesMatchHeapGrowth) {
  // The heap's sbrk telemetry must reconcile with the final heap size: the
  // chunk histogram's sum is exactly the number of bytes the break moved.
  ExperimentConfig Config =
      paperConfig(WorkloadId::Espresso, AllocatorKind::FirstFit);
  Config.Telemetry = TelemetryLevel::Full;
  RunResult Result = runExperiment(Config);
  const TelemetrySnapshot &T = Result.Telemetry;
  EXPECT_EQ(T.counterValue("mem.sbrk_bytes"), Result.HeapBytes);
  EXPECT_EQ(T.histogram("mem.sbrk_chunk").Sum, Result.HeapBytes);
  EXPECT_EQ(T.histogram("mem.sbrk_chunk").Count,
            T.counterValue("mem.sbrk_calls"));
}

TEST(TelemetryCrossCheckTest, DriverEventCountMatchesOpHistograms) {
  // The driver's per-op-kind instruction histograms must jointly account
  // for every executed event, and their total instruction mass must equal
  // the run's instruction split.
  ExperimentConfig Config =
      paperConfig(WorkloadId::Espresso, AllocatorKind::Bsd);
  Config.Telemetry = TelemetryLevel::Full;
  RunResult Result = runExperiment(Config);
  const TelemetrySnapshot &T = Result.Telemetry;
  uint64_t OpSamples = 0, OpInstr = 0;
  for (const char *Name : {"driver.malloc_instr", "driver.free_instr",
                           "driver.touch_instr", "driver.stack_instr"}) {
    OpSamples += T.histogram(Name).Count;
    OpInstr += T.histogram(Name).Sum;
  }
  EXPECT_EQ(OpSamples, T.counterValue("driver.events"));
  EXPECT_GT(OpSamples, 0u);
  // Every instruction is charged inside some driver-executed operation.
  EXPECT_EQ(OpInstr, Result.totalInstructions());
  EXPECT_EQ(T.histogram("driver.malloc_instr").Count,
            Result.Alloc.MallocCalls);
  EXPECT_EQ(T.histogram("driver.free_instr").Count, Result.Alloc.FreeCalls);
}
