//===- tests/lab_test.cpp - Experiment orchestration tests ----------------===//

#include "core/Lab.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

ExperimentConfig smallConfig(WorkloadId Workload, AllocatorKind Allocator) {
  ExperimentConfig Config;
  Config.Workload = Workload;
  Config.Allocator = Allocator;
  Config.Engine.Scale = 64;
  Config.Caches = {CacheConfig{16 * 1024, 32, 1},
                   CacheConfig{64 * 1024, 32, 1}};
  return Config;
}

} // namespace

TEST(LabTest, RunsEveryAllocatorOnEveryWorkload) {
  for (WorkloadId Workload : {WorkloadId::Espresso, WorkloadId::Gawk,
                              WorkloadId::Make, WorkloadId::GsSmall}) {
    for (AllocatorKind Allocator : PaperAllocators) {
      RunResult Result = runExperiment(smallConfig(Workload, Allocator));
      EXPECT_GT(Result.TotalRefs, 0u);
      EXPECT_GT(Result.AppInstructions, 0u);
      EXPECT_GT(Result.AllocInstructions, 0u);
      EXPECT_GT(Result.HeapBytes, 0u);
      ASSERT_EQ(Result.Caches.size(), 2u);
      for (const CacheResult &Cache : Result.Caches) {
        EXPECT_GT(Cache.Stats.Accesses, 0u);
        EXPECT_GE(Cache.Stats.missRate(), 0.0);
        EXPECT_LE(Cache.Stats.missRate(), 1.0);
      }
      EXPECT_GT(Result.allocInstrFraction(), 0.0);
      EXPECT_LT(Result.allocInstrFraction(), 0.9);
    }
  }
}

TEST(LabTest, ReferenceCountsAreConsistent) {
  RunResult Result =
      runExperiment(smallConfig(WorkloadId::Espresso, AllocatorKind::Bsd));
  EXPECT_EQ(Result.TotalRefs,
            Result.AppRefs + Result.AllocRefs + Result.TagRefs);
  EXPECT_EQ(Result.TagRefs, 0u);
  // Every reference reached the cache.
  EXPECT_GE(Result.Caches[0].Stats.Accesses, Result.TotalRefs);
}

TEST(LabTest, DeterministicAcrossRuns) {
  ExperimentConfig Config =
      smallConfig(WorkloadId::Gawk, AllocatorKind::QuickFit);
  RunResult A = runExperiment(Config);
  RunResult B = runExperiment(Config);
  EXPECT_EQ(A.TotalRefs, B.TotalRefs);
  EXPECT_EQ(A.AppInstructions, B.AppInstructions);
  EXPECT_EQ(A.AllocInstructions, B.AllocInstructions);
  EXPECT_EQ(A.Caches[0].Stats.Misses, B.Caches[0].Stats.Misses);
  EXPECT_EQ(A.HeapBytes, B.HeapBytes);
}

TEST(LabTest, IdenticalEventStreamAcrossAllocators) {
  // The methodological control: every allocator must see the same
  // application behaviour — identical app refs and app instructions.
  ExperimentConfig Base = smallConfig(WorkloadId::Make, AllocatorKind::Bsd);
  std::vector<RunResult> Results =
      runSweep(Base, {PaperAllocators, PaperAllocators + 5});
  for (const RunResult &Result : Results) {
    EXPECT_EQ(Result.AppRefs, Results[0].AppRefs);
    EXPECT_EQ(Result.AppInstructions, Results[0].AppInstructions);
    EXPECT_EQ(Result.Alloc.MallocCalls, Results[0].Alloc.MallocCalls);
    EXPECT_EQ(Result.Alloc.BytesRequested, Results[0].Alloc.BytesRequested);
  }
}

TEST(LabTest, PagingCurveIsMonotone) {
  ExperimentConfig Config =
      smallConfig(WorkloadId::GsSmall, AllocatorKind::FirstFit);
  Config.Caches.clear();
  Config.PagingMemoryKb = {64, 128, 256, 512, 1024, 2048};
  RunResult Result = runExperiment(Config);
  ASSERT_EQ(Result.Paging.size(), 6u);
  EXPECT_GT(Result.DistinctPages, 0u);
  for (size_t I = 1; I < Result.Paging.size(); ++I)
    EXPECT_LE(Result.Paging[I].FaultsPerRef,
              Result.Paging[I - 1].FaultsPerRef + 1e-12);
  EXPECT_GT(Result.Paging[0].FaultsPerRef, 0.0);
}

TEST(LabTest, TimeEstimateFollowsFormula) {
  RunResult Result =
      runExperiment(smallConfig(WorkloadId::Make, AllocatorKind::GnuGxx));
  const CacheResult &Cache = Result.Caches[0];
  double Expected =
      double(Result.totalInstructions()) +
      Cache.Stats.missRate() * 25.0 * double(Result.TotalRefs);
  EXPECT_NEAR(Cache.Time.totalCycles(), Expected, Expected * 1e-9);
  EXPECT_NEAR(Result.estimatedSeconds(0), Expected / 25e6, 1e-6);
}

TEST(LabTest, BoundaryTagEmulationProducesTagTraffic) {
  ExperimentConfig Config =
      smallConfig(WorkloadId::Espresso, AllocatorKind::GnuLocal);
  Config.EmulateBoundaryTags = true;
  RunResult Tagged = runExperiment(Config);
  Config.EmulateBoundaryTags = false;
  RunResult Plain = runExperiment(Config);

  EXPECT_GT(Tagged.TagRefs, 0u);
  EXPECT_EQ(Plain.TagRefs, 0u);
  // Tags occupy space: the tagged heap is at least as large.
  EXPECT_GE(Tagged.HeapBytes, Plain.HeapBytes);
}

TEST(LabTest, CustomAllocatorRuns) {
  ExperimentConfig Config =
      smallConfig(WorkloadId::Espresso, AllocatorKind::Custom);
  RunResult Result = runExperiment(Config);
  EXPECT_GT(Result.TotalRefs, 0u);
  // The synthesized allocator should be at least as instruction-lean as
  // the general-purpose GNU G++ on its own profile.
  Config.Allocator = AllocatorKind::GnuGxx;
  RunResult GnuGxx = runExperiment(Config);
  EXPECT_LT(Result.AllocInstructions, GnuGxx.AllocInstructions);
}

TEST(LabTest, SetAssociativeExtensionWorks) {
  ExperimentConfig Config =
      smallConfig(WorkloadId::Gawk, AllocatorKind::Bsd);
  Config.Caches = {CacheConfig{16 * 1024, 32, 1},
                   CacheConfig{16 * 1024, 32, 4}};
  RunResult Result = runExperiment(Config);
  // 4-way of equal size should not miss more on this workload.
  EXPECT_LE(Result.Caches[1].Stats.missRate(),
            Result.Caches[0].Stats.missRate() * 1.05);
}
