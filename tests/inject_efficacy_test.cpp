//===- tests/inject_efficacy_test.cpp - Detector efficacy under FaultLab --===//
//
// The detector-efficacy contract: FaultLab's injection log is ground truth
// for what was corrupted, so the heap checker can be graded against it.
//
//   * Under --check=full every injected corruption — memory-bus bit flips
//     and metadata smashes — must be detected: zero false negatives over
//     the committed corpus scripts, for every paper allocator.
//   * Under --check=off the same faults are injected at bit-identical
//     sites, nothing is detected, and the injected-but-undetected count is
//     recorded in telemetry (fault.undetected.*).
//
// Also covers the fault-plan grammar: accepted forms, diagnostics for
// malformed input, and the plan's enable/disable predicates.
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "inject/FaultInjector.h"
#include "trace/AllocEvents.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace allocsim;

namespace {

constexpr const char *CorruptionPlan =
    "flip:rate=0.01;smash:rate=0.01;seed=424242";

std::vector<std::pair<std::string, std::vector<AllocEvent>>> loadCorpus() {
  std::vector<std::pair<std::string, std::vector<AllocEvent>>> Corpus;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ALLOCSIM_CORPUS_DIR)) {
    if (Entry.path().extension() != ".events")
      continue;
    std::ifstream In(Entry.path());
    EXPECT_TRUE(In.good()) << Entry.path();
    Corpus.emplace_back(Entry.path().filename().string(),
                        readAllocEvents(In));
  }
  std::sort(Corpus.begin(), Corpus.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  EXPECT_GE(Corpus.size(), 6u) << "corpus files missing from "
                               << ALLOCSIM_CORPUS_DIR;
  return Corpus;
}

ExperimentConfig scriptConfig(AllocatorKind Kind, CheckLevel Level) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Espresso; // contributes instr/ref only
  Config.Allocator = Kind;
  Config.Check.Level = Level;

  DiagEngine Diags;
  Config.Inject = parseFaultPlan(CorruptionPlan, Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Config.Inject.corruptionEnabled());
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Plan grammar
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, ParsesFullGrammar) {
  DiagEngine Diags;
  FaultPlan Plan = parseFaultPlan(
      "oom:after=10000;flip:rate=1e-6;smash:rate=0.25;cell:rate=0.5;"
      "retry:limit=3;seed=77",
      Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Plan.enabled());
  EXPECT_TRUE(Plan.oomEnabled());
  EXPECT_TRUE(Plan.corruptionEnabled());
  EXPECT_EQ(Plan.OomAfterBytes, 10000u);
  EXPECT_DOUBLE_EQ(Plan.FlipRate, 1e-6);
  EXPECT_DOUBLE_EQ(Plan.SmashRate, 0.25);
  EXPECT_DOUBLE_EQ(Plan.CellRate, 0.5);
  EXPECT_EQ(Plan.RetryLimit, 3u);
  EXPECT_EQ(Plan.Seed, 77u);
  EXPECT_TRUE(Plan.SeedSet);
}

TEST(FaultPlanTest, EmptyTextIsInactive) {
  DiagEngine Diags;
  FaultPlan Plan = parseFaultPlan("", Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_FALSE(Plan.enabled());
  EXPECT_FALSE(Plan.oomEnabled());
  EXPECT_FALSE(Plan.corruptionEnabled());
  EXPECT_EQ(Plan, FaultPlan());
}

TEST(FaultPlanTest, OomOnlyPlanDisablesCorruption) {
  DiagEngine Diags;
  FaultPlan Plan = parseFaultPlan("oom:after=4096", Diags);
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Plan.enabled());
  EXPECT_TRUE(Plan.oomEnabled());
  EXPECT_FALSE(Plan.corruptionEnabled());
  EXPECT_FALSE(Plan.SeedSet);
}

TEST(FaultPlanTest, DiagnosesMalformedInput) {
  struct BadCase {
    const char *Text;
    const char *RuleId;
  };
  const BadCase Cases[] = {
      {"bogus:fault=1", "inject-unknown-fault"},
      {"flip:rate=notanumber", "inject-bad-value"},
      {"flip:rate=1.5", "inject-bad-value"},
      {"flip:rate=-0.5", "inject-bad-value"},
      {"oom:after=xyz", "inject-bad-value"},
      {"seed=", "spec-empty-value"},
      {"flip:rate", "spec-missing-equals"},
      {"flip:rate=0.1;flip:rate=0.2", "spec-duplicate-axis"},
  };
  for (const BadCase &Case : Cases) {
    SCOPED_TRACE(Case.Text);
    DiagEngine Diags;
    FaultPlan Plan = parseFaultPlan(Case.Text, Diags);
    EXPECT_GE(Diags.errorCount(), 1u);
    EXPECT_FALSE(Plan.enabled()) << "malformed plan must stay inactive";
    bool Found = false;
    for (const Diag &D : Diags.diags())
      Found = Found || D.Rule == Case.RuleId;
    EXPECT_TRUE(Found) << "expected rule " << Case.RuleId;
  }
}

//===----------------------------------------------------------------------===//
// Detector efficacy
//===----------------------------------------------------------------------===//

TEST(InjectEfficacyTest, FullCheckDetectsEveryCorruption) {
  // The acceptance matrix: every corpus script x every paper allocator,
  // every injected fault detected. The injection log is the oracle — a
  // single undetected record is a checker false negative.
  auto Corpus = loadCorpus();
  uint64_t TotalInjected = 0;
  for (const auto &[Name, Events] : Corpus) {
    for (AllocatorKind Kind : PaperAllocators) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      RunResult Result =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Full), Events);
      EXPECT_EQ(Result.FaultsInjected, Result.Faults.size());
      EXPECT_EQ(Result.FaultsDetected, Result.FaultsInjected);
      for (const FaultRecord &Fault : Result.Faults)
        EXPECT_TRUE(Fault.Detected)
            << faultKindName(Fault.Kind) << " at op " << Fault.OpIndex
            << ", addr " << Fault.Address << " escaped detection";
      // Detection surfaces as checker violations too.
      if (Result.FaultsInjected > 0) {
        EXPECT_GT(Result.CheckViolations, 0u);
      }
      TotalInjected += Result.FaultsInjected;
    }
  }
  // The matrix must actually exercise both fault classes.
  EXPECT_GT(TotalInjected, 0u) << "plan injected nothing — rates too low";
}

TEST(InjectEfficacyTest, BothFaultClassesAppearInTheMatrix) {
  auto Corpus = loadCorpus();
  uint64_t Flips = 0, Smashes = 0;
  for (const auto &[Name, Events] : Corpus)
    for (AllocatorKind Kind : PaperAllocators) {
      RunResult Result =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Full), Events);
      for (const FaultRecord &Fault : Result.Faults)
        (Fault.Kind == FaultKind::Flip ? Flips : Smashes) += 1;
    }
  EXPECT_GT(Flips, 0u);
  EXPECT_GT(Smashes, 0u);
}

TEST(InjectEfficacyTest, OffCheckRecordsUndetectedInTelemetry) {
  // Same plan, checking off: the faults still land (bit-identical sites),
  // nothing can detect them, and telemetry records the escape count.
  auto Corpus = loadCorpus();
  const auto &[Name, Events] = Corpus.front();
  for (AllocatorKind Kind : PaperAllocators) {
    SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
    ExperimentConfig Config = scriptConfig(Kind, CheckLevel::Off);
    Config.Telemetry = TelemetryLevel::Summary;
    RunResult Result = runScriptExperiment(Config, Events);

    EXPECT_EQ(Result.FaultsDetected, 0u);
    for (const FaultRecord &Fault : Result.Faults)
      EXPECT_FALSE(Fault.Detected);

    uint64_t Flips = 0, Smashes = 0;
    for (const FaultRecord &Fault : Result.Faults)
      (Fault.Kind == FaultKind::Flip ? Flips : Smashes) += 1;
    EXPECT_EQ(Result.Telemetry.counterValue("fault.injected.flip"), Flips);
    EXPECT_EQ(Result.Telemetry.counterValue("fault.injected.smash"), Smashes);
    EXPECT_EQ(Result.Telemetry.counterValue("fault.undetected.flip"), Flips);
    EXPECT_EQ(Result.Telemetry.counterValue("fault.undetected.smash"),
              Smashes);
    EXPECT_EQ(Result.Telemetry.counterValue("fault.detected.flip"), 0u);
    EXPECT_EQ(Result.Telemetry.counterValue("fault.detected.smash"), 0u);
  }
}

TEST(InjectEfficacyTest, FaultSitesAreCheckLevelInvariant) {
  // The determinism contract: (kind, op, address) per fault must be
  // bit-identical whether the real checker watches or not — only the
  // Detected verdicts may differ.
  auto Corpus = loadCorpus();
  for (const auto &[Name, Events] : Corpus) {
    for (AllocatorKind Kind : {AllocatorKind::Bsd, AllocatorKind::FirstFit,
                               AllocatorKind::GnuLocal}) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      RunResult Full =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Full), Events);
      RunResult Fast =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Fast), Events);
      RunResult Off =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Off), Events);
      ASSERT_EQ(Full.Faults.size(), Off.Faults.size());
      ASSERT_EQ(Full.Faults.size(), Fast.Faults.size());
      for (size_t I = 0; I != Full.Faults.size(); ++I) {
        EXPECT_EQ(Full.Faults[I].Kind, Off.Faults[I].Kind);
        EXPECT_EQ(Full.Faults[I].OpIndex, Off.Faults[I].OpIndex);
        EXPECT_EQ(Full.Faults[I].Address, Off.Faults[I].Address);
        EXPECT_EQ(Full.Faults[I].Kind, Fast.Faults[I].Kind);
        EXPECT_EQ(Full.Faults[I].OpIndex, Fast.Faults[I].OpIndex);
        EXPECT_EQ(Full.Faults[I].Address, Fast.Faults[I].Address);
      }
    }
  }
}

TEST(InjectEfficacyTest, FastCheckDetectsFlips) {
  // The shadow sanitizer alone (fast level) already catches bus bit flips —
  // they surface as illegal application references. Metadata smashes need
  // the full level's invariant walks, so fast leaves them undetected.
  auto Corpus = loadCorpus();
  const auto &[Name, Events] = Corpus.front();
  for (AllocatorKind Kind : PaperAllocators) {
    SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
    RunResult Result =
        runScriptExperiment(scriptConfig(Kind, CheckLevel::Fast), Events);
    for (const FaultRecord &Fault : Result.Faults) {
      if (Fault.Kind == FaultKind::Flip)
        EXPECT_TRUE(Fault.Detected) << "flip at op " << Fault.OpIndex;
      else
        EXPECT_FALSE(Fault.Detected)
            << "smash verdicts need full-level invariant walks";
    }
  }
}

TEST(InjectEfficacyTest, ModernBackendsDetectEveryCorruption) {
  // The new CacheLab backends are held to the same zero-false-negative bar:
  // BitmapFit's slab headers, bitmaps and slab map, and SpaceFit's sorted
  // boundary-tagged freelist, are all walker-covered metadata — every
  // injected fault must be detected under --check=full, over the whole
  // committed corpus.
  auto Corpus = loadCorpus();
  uint64_t TotalInjected = 0;
  for (const auto &[Name, Events] : Corpus) {
    for (AllocatorKind Kind :
         {AllocatorKind::BitmapFit, AllocatorKind::SpaceFit}) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      RunResult Result =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Full), Events);
      EXPECT_EQ(Result.FaultsInjected, Result.Faults.size());
      EXPECT_EQ(Result.FaultsDetected, Result.FaultsInjected);
      for (const FaultRecord &Fault : Result.Faults)
        EXPECT_TRUE(Fault.Detected)
            << faultKindName(Fault.Kind) << " at op " << Fault.OpIndex
            << ", addr " << Fault.Address << " escaped detection";
      if (Result.FaultsInjected > 0) {
        EXPECT_GT(Result.CheckViolations, 0u);
      }
      TotalInjected += Result.FaultsInjected;
    }
  }
  EXPECT_GT(TotalInjected, 0u) << "plan injected nothing — rates too low";
}

TEST(InjectEfficacyTest, ModernBackendFaultSitesAreCheckLevelInvariant) {
  auto Corpus = loadCorpus();
  for (const auto &[Name, Events] : Corpus) {
    for (AllocatorKind Kind :
         {AllocatorKind::BitmapFit, AllocatorKind::SpaceFit}) {
      SCOPED_TRACE(Name + "/" + allocatorKindName(Kind));
      RunResult Full =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Full), Events);
      RunResult Off =
          runScriptExperiment(scriptConfig(Kind, CheckLevel::Off), Events);
      ASSERT_EQ(Full.Faults.size(), Off.Faults.size());
      for (size_t I = 0; I != Full.Faults.size(); ++I) {
        EXPECT_EQ(Full.Faults[I].Kind, Off.Faults[I].Kind);
        EXPECT_EQ(Full.Faults[I].OpIndex, Off.Faults[I].OpIndex);
        EXPECT_EQ(Full.Faults[I].Address, Off.Faults[I].Address);
      }
    }
  }
}

TEST(InjectEfficacyTest, RepeatedRunsAreBitIdentical) {
  auto Corpus = loadCorpus();
  const auto &[Name, Events] = Corpus.front();
  ExperimentConfig Config =
      scriptConfig(AllocatorKind::GnuGxx, CheckLevel::Full);
  RunResult A = runScriptExperiment(Config, Events);
  RunResult B = runScriptExperiment(Config, Events);
  ASSERT_EQ(A.Faults.size(), B.Faults.size());
  for (size_t I = 0; I != A.Faults.size(); ++I)
    EXPECT_TRUE(A.Faults[I] == B.Faults[I]);
  EXPECT_EQ(A.FaultsDetected, B.FaultsDetected);
}
