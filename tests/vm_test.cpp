//===- tests/vm_test.cpp - Page-fault simulator tests ---------------------===//

#include "vm/PageSim.h"

#include <gtest/gtest.h>

#include <vector>

using namespace allocsim;

namespace {

void touchPage(PageSim &Sim, uint64_t Page) {
  Sim.access({static_cast<Addr>(Page * 4096), 4, AccessKind::Read,
              AccessSource::Application});
}

/// Reference LRU simulation: direct stack implementation.
uint64_t referenceLruFaults(const std::vector<uint64_t> &Pages,
                            uint64_t MemoryPages) {
  std::vector<uint64_t> Stack;
  uint64_t Faults = 0;
  for (uint64_t Page : Pages) {
    auto It = std::find(Stack.begin(), Stack.end(), Page);
    if (It == Stack.end()) {
      ++Faults;
    } else {
      auto Depth = static_cast<uint64_t>(It - Stack.begin());
      if (Depth >= MemoryPages)
        ++Faults;
      Stack.erase(It);
    }
    Stack.insert(Stack.begin(), Page);
  }
  return Faults;
}

} // namespace

TEST(PageSimTest, ColdFaultsOnly) {
  PageSim Sim;
  for (uint64_t Page = 0; Page < 10; ++Page)
    touchPage(Sim, Page);
  EXPECT_EQ(Sim.references(), 10u);
  EXPECT_EQ(Sim.distinctPages(), 10u);
  EXPECT_EQ(Sim.faults(10), 10u);
  EXPECT_EQ(Sim.faults(100), 10u);
}

TEST(PageSimTest, RepeatedPageHitsWithOnePage) {
  PageSim Sim;
  for (int I = 0; I < 5; ++I)
    touchPage(Sim, 7);
  EXPECT_EQ(Sim.faults(1), 1u);
}

TEST(PageSimTest, CyclicSweepThrashesSmallMemory) {
  // The classic LRU pathology: cycling over N+1 pages with N resident
  // faults on every reference.
  PageSim Sim;
  constexpr int Rounds = 10, Pages = 5;
  for (int Round = 0; Round < Rounds; ++Round)
    for (uint64_t Page = 0; Page < Pages; ++Page)
      touchPage(Sim, Page);
  EXPECT_EQ(Sim.faults(Pages - 1), uint64_t(Rounds * Pages));
  EXPECT_EQ(Sim.faults(Pages), uint64_t(Pages)) << "fits: cold only";
}

TEST(PageSimTest, StackDistanceDefinition) {
  PageSim Sim;
  touchPage(Sim, 1);
  touchPage(Sim, 2);
  touchPage(Sim, 3);
  touchPage(Sim, 1); // two distinct pages (2,3) since last touch of 1
  const Histogram &Hist = Sim.distanceHistogram();
  EXPECT_EQ(Hist.count(2), 1u);
  EXPECT_EQ(Hist.total(), 1u);
}

TEST(PageSimTest, MatchesReferenceLruOnRandomTrace) {
  // Property: Fenwick stack distances must agree with a brute-force LRU
  // stack at every memory size.
  std::vector<uint64_t> Pages;
  uint64_t State = 12345;
  for (int I = 0; I < 3000; ++I) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    Pages.push_back((State >> 33) % 40);
  }
  PageSim Sim;
  for (uint64_t Page : Pages)
    touchPage(Sim, Page);
  for (uint64_t Memory : {1u, 2u, 3u, 5u, 10u, 20u, 39u, 40u, 64u})
    EXPECT_EQ(Sim.faults(Memory), referenceLruFaults(Pages, Memory))
        << "memory=" << Memory;
}

TEST(PageSimTest, CompactionPreservesResults) {
  // Force many compactions with a tiny slot capacity and compare against a
  // same-trace simulator with a huge capacity.
  PageSim Small(4096, 64), Big(4096, 1 << 20);
  uint64_t State = 99;
  for (int I = 0; I < 20000; ++I) {
    State = State * 2862933555777941757ull + 3037000493ull;
    uint64_t Page = (State >> 33) % 25;
    touchPage(Small, Page);
    touchPage(Big, Page);
  }
  for (uint64_t Memory : {1u, 4u, 12u, 24u, 25u})
    EXPECT_EQ(Small.faults(Memory), Big.faults(Memory));
}

TEST(PageSimTest, InclusionProperty) {
  // Mattson: fault count is non-increasing in memory size.
  PageSim Sim;
  uint64_t State = 7;
  for (int I = 0; I < 5000; ++I) {
    State = State * 6364136223846793005ull + 1;
    touchPage(Sim, (State >> 30) % 100);
  }
  uint64_t Prev = ~0ull;
  for (uint64_t Memory = 1; Memory <= 110; ++Memory) {
    uint64_t Faults = Sim.faults(Memory);
    EXPECT_LE(Faults, Prev);
    Prev = Faults;
  }
  EXPECT_EQ(Sim.faults(110), Sim.distinctPages()) << "cold faults remain";
}

TEST(PageSimTest, FaultRatePerReference) {
  PageSim Sim;
  for (int I = 0; I < 4; ++I)
    touchPage(Sim, 0);
  EXPECT_DOUBLE_EQ(Sim.faultRate(1), 0.25);
  EXPECT_DOUBLE_EQ(Sim.faultRateForMemoryKb(4), 0.25);
}

TEST(PageSimTest, PageGranularityFromAddresses) {
  PageSim Sim; // 4 KB pages
  Sim.access({0x1000, 4, AccessKind::Read, AccessSource::Application});
  Sim.access({0x1ffc, 4, AccessKind::Write, AccessSource::Application});
  Sim.access({0x2000, 4, AccessKind::Read, AccessSource::Application});
  EXPECT_EQ(Sim.distinctPages(), 2u);
}

TEST(PageSimTest, ZeroDistanceFastPathCountsCorrectly) {
  PageSim Sim;
  // Ten consecutive touches of one page, then one of another, then back.
  for (int I = 0; I < 10; ++I)
    touchPage(Sim, 1);
  touchPage(Sim, 2);
  touchPage(Sim, 1);
  EXPECT_EQ(Sim.zeroDistanceHits(), 9u);
  EXPECT_EQ(Sim.references(), 12u);
  EXPECT_EQ(Sim.faults(1), 3u) << "cold 1, cold 2, re-fault on 1";
  EXPECT_EQ(Sim.faults(2), 2u) << "both pages resident";
}

TEST(PageSimTest, ZeroMemoryAlwaysFaults) {
  PageSim Sim;
  for (int I = 0; I < 8; ++I)
    touchPage(Sim, 3);
  EXPECT_EQ(Sim.faults(0), 8u);
}
