//===- tests/allocator_property_test.cpp - Randomized stress --------------===//
//
// Property tests run against every allocator (parameterized): random
// malloc/free sequences with a host-side shadow model checking the
// fundamental allocator contract — returned regions are aligned, in-heap,
// disjoint from all other live regions, and their contents survive
// arbitrary interleaved allocator activity.
//
//===----------------------------------------------------------------------===//

#include "alloc/BitmapFit.h"
#include "alloc/CustomAlloc.h"
#include "alloc/GnuLocal.h"
#include "alloc/SizeClassMap.h"
#include "alloc/SpaceFit.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace allocsim;

namespace {

/// Allocator variants under property test.
enum class Variant {
  FirstFit,
  GnuGxx,
  Bsd,
  GnuLocal,
  GnuLocalTagged,
  QuickFit,
  Custom,
  BitmapFit,
  SpaceFit,
};

std::string variantName(const testing::TestParamInfo<Variant> &Info) {
  switch (Info.param) {
  case Variant::FirstFit:
    return "FirstFit";
  case Variant::GnuGxx:
    return "GnuGxx";
  case Variant::Bsd:
    return "Bsd";
  case Variant::GnuLocal:
    return "GnuLocal";
  case Variant::GnuLocalTagged:
    return "GnuLocalTagged";
  case Variant::QuickFit:
    return "QuickFit";
  case Variant::Custom:
    return "Custom";
  case Variant::BitmapFit:
    return "BitmapFit";
  case Variant::SpaceFit:
    return "SpaceFit";
  }
  return "?";
}

class AllocatorPropertyTest : public testing::TestWithParam<Variant> {
protected:
  void SetUp() override {
    Heap = std::make_unique<SimHeap>(Bus);
    switch (GetParam()) {
    case Variant::FirstFit:
      Alloc = createAllocator(AllocatorKind::FirstFit, *Heap, Cost);
      break;
    case Variant::GnuGxx:
      Alloc = createAllocator(AllocatorKind::GnuGxx, *Heap, Cost);
      break;
    case Variant::Bsd:
      Alloc = createAllocator(AllocatorKind::Bsd, *Heap, Cost);
      break;
    case Variant::GnuLocal:
      Alloc = std::make_unique<GnuLocal>(*Heap, Cost, false);
      break;
    case Variant::GnuLocalTagged:
      Alloc = std::make_unique<GnuLocal>(*Heap, Cost, true);
      break;
    case Variant::QuickFit:
      Alloc = createAllocator(AllocatorKind::QuickFit, *Heap, Cost);
      break;
    case Variant::Custom: {
      Histogram Profile;
      for (uint64_t Size : {8, 16, 24, 32, 48, 64, 120, 256})
        Profile.add(Size, 100);
      Alloc = std::make_unique<CustomAlloc>(
          *Heap, Cost, SizeClassMap::fromProfile(Profile, 8, 512));
      break;
    }
    case Variant::BitmapFit:
      Alloc = createAllocator(AllocatorKind::BitmapFit, *Heap, Cost);
      break;
    case Variant::SpaceFit:
      Alloc = createAllocator(AllocatorKind::SpaceFit, *Heap, Cost);
      break;
    }
  }

  MemoryBus Bus;
  std::unique_ptr<SimHeap> Heap;
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc;
};

/// Shadow record of one live object.
struct Shadow {
  uint32_t Size;
  uint32_t Seed;
};

uint32_t fillWord(Addr Ptr, uint32_t Index, uint32_t Seed) {
  return (Ptr ^ Seed) + Index * 2654435761u;
}

} // namespace

TEST_P(AllocatorPropertyTest, RandomStressPreservesContract) {
  Rng R(0xC0FFEE);
  std::map<Addr, Shadow> Live;

  auto CheckDisjoint = [&](Addr Ptr, uint32_t Size) {
    auto Next = Live.lower_bound(Ptr);
    if (Next != Live.end()) {
      ASSERT_LE(Ptr + Size, Next->first) << "overlaps following object";
    }
    if (Next != Live.begin()) {
      auto Prev = std::prev(Next);
      ASSERT_LE(Prev->first + Prev->second.Size, Ptr)
          << "overlaps preceding object";
    }
  };

  constexpr int Operations = 4000;
  for (int Op = 0; Op != Operations; ++Op) {
    bool DoFree = !Live.empty() && (Live.size() > 300 || R.nextBool(0.45));
    if (!DoFree) {
      // Size mix: mostly small, occasionally multi-page.
      uint32_t Size;
      if (R.nextBool(0.85))
        Size = 4 + 4 * static_cast<uint32_t>(R.nextBelow(64));
      else
        Size = 256 + static_cast<uint32_t>(R.nextBelow(12000));
      Addr Ptr = Alloc->malloc(Size);

      ASSERT_NE(Ptr, 0u);
      ASSERT_EQ(Ptr % 4, 0u) << "misaligned object";
      ASSERT_TRUE(Heap->contains(Ptr, Size)) << "object outside heap";
      CheckDisjoint(Ptr, Size);

      auto Seed = static_cast<uint32_t>(R.next());
      for (uint32_t I = 0; I * 4 + 4 <= Size; ++I)
        Heap->poke32(Ptr + 4 * I, fillWord(Ptr, I, Seed));
      Live[Ptr] = Shadow{Size, Seed};
    } else {
      // Free a pseudo-random victim and verify its bytes first.
      auto It = Live.begin();
      std::advance(It, static_cast<long>(R.nextBelow(Live.size())));
      auto [Ptr, Info] = *It;
      for (uint32_t I = 0; I * 4 + 4 <= Info.Size; ++I)
        ASSERT_EQ(Heap->peek32(Ptr + 4 * I), fillWord(Ptr, I, Info.Seed))
            << "corruption in object at +" << 4 * I;
      Alloc->free(Ptr);
      Live.erase(It);
    }
  }

  // Verify and release every survivor.
  while (!Live.empty()) {
    auto [Ptr, Info] = *Live.begin();
    for (uint32_t I = 0; I * 4 + 4 <= Info.Size; ++I)
      ASSERT_EQ(Heap->peek32(Ptr + 4 * I), fillWord(Ptr, I, Info.Seed));
    Alloc->free(Ptr);
    Live.erase(Live.begin());
  }
  EXPECT_EQ(Alloc->stats().LiveBytes, 0u);
}

TEST_P(AllocatorPropertyTest, FullChurnDoesNotLeakUnboundedly) {
  // Allocating and freeing the same working set repeatedly must reach a
  // steady heap size: after a warm-up round, the heap stops growing by
  // more than a small slack (allocators may defer reuse across classes).
  Rng R(0xFEED);
  std::vector<uint32_t> Sizes;
  for (int I = 0; I < 120; ++I)
    Sizes.push_back(4 + 4 * static_cast<uint32_t>(R.nextBelow(100)));

  auto OneRound = [&] {
    std::vector<Addr> Ptrs;
    Ptrs.reserve(Sizes.size());
    for (uint32_t Size : Sizes)
      Ptrs.push_back(Alloc->malloc(Size));
    for (Addr Ptr : Ptrs)
      Alloc->free(Ptr);
  };

  for (int Warmup = 0; Warmup < 3; ++Warmup)
    OneRound();
  uint32_t HeapAfterWarmup = Alloc->heapBytes();
  for (int Round = 0; Round < 25; ++Round)
    OneRound();
  EXPECT_LE(Alloc->heapBytes(), HeapAfterWarmup + 8192)
      << "steady-state churn must not keep growing the heap";
}

TEST_P(AllocatorPropertyTest, LifoPairsReuseMemory) {
  // malloc/free pairs of one size must settle into reusing one region —
  // the paper's "rapid object re-use" property (trivially true even for
  // the sequential-fit allocators).
  Addr First = Alloc->malloc(48);
  Alloc->free(First);
  for (int I = 0; I < 50; ++I) {
    Addr Ptr = Alloc->malloc(48);
    EXPECT_EQ(Ptr, First) << "iteration " << I;
    Alloc->free(Ptr);
  }
}

TEST_P(AllocatorPropertyTest, ManySizesAlignAndDisjoint) {
  // Sweep every size 1..600: alignment and pairwise disjointness.
  std::map<Addr, uint32_t> Regions;
  for (uint32_t Size = 1; Size <= 600; ++Size) {
    Addr Ptr = Alloc->malloc(Size);
    ASSERT_EQ(Ptr % 4, 0u);
    auto Next = Regions.lower_bound(Ptr);
    if (Next != Regions.end()) {
      ASSERT_LE(Ptr + Size, Next->first);
    }
    if (Next != Regions.begin()) {
      auto Prev = std::prev(Next);
      ASSERT_LE(Prev->first + Prev->second, Ptr);
    }
    Regions[Ptr] = Size;
  }
  for (const auto &[Ptr, Size] : Regions)
    Alloc->free(Ptr);
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, AllocatorPropertyTest,
                         testing::Values(Variant::FirstFit, Variant::GnuGxx,
                                         Variant::Bsd, Variant::GnuLocal,
                                         Variant::GnuLocalTagged,
                                         Variant::QuickFit, Variant::Custom,
                                         Variant::BitmapFit,
                                         Variant::SpaceFit),
                         variantName);

//===----------------------------------------------------------------------===//
// Targeted properties of the modern backends' internal disciplines.
//===----------------------------------------------------------------------===//

TEST(BitmapFitPropertyTest, WordScanReturnsLowestFreeSlot) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  BitmapFit Alloc(Heap, Cost);

  // Same-bucket requests fill one slab's slots in ascending address order.
  std::vector<Addr> Slots;
  for (int I = 0; I != 40; ++I)
    Slots.push_back(Alloc.malloc(16));
  for (int I = 1; I != 40; ++I)
    ASSERT_EQ(Slots[I], Slots[I - 1] + BitmapFit::slotBytes(0))
        << "slot " << I;

  // Free out of order, across both bitmap words in play; the word-at-a-time
  // scan must hand back the lowest free slot every time.
  Alloc.free(Slots[37]);
  Alloc.free(Slots[7]);
  Alloc.free(Slots[20]);
  Alloc.free(Slots[3]);
  EXPECT_EQ(Alloc.malloc(16), Slots[3]);
  EXPECT_EQ(Alloc.malloc(16), Slots[7]);
  EXPECT_EQ(Alloc.malloc(16), Slots[20]);
  EXPECT_EQ(Alloc.malloc(16), Slots[37]);
}

TEST(BitmapFitPropertyTest, SlotsAreLineAlignedWithinTheHeap) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  BitmapFit Alloc(Heap, Cost);

  // Every slab-served object sits on a cache-line boundary relative to the
  // heap base — the property the whole design exists for.
  for (uint32_t Size = 1; Size <= BitmapFit::MaxSingleBytes; Size += 17) {
    Addr Ptr = Alloc.malloc(Size);
    ASSERT_NE(Ptr, 0u);
    EXPECT_EQ((Ptr - Heap.base()) % BitmapFit::LineBytes, 0u)
        << "size " << Size;
  }
}

TEST(BitmapFitPropertyTest, DelegationBoundaryIsMaxSingleBytes) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  BitmapFit Alloc(Heap, Cost);

  Addr Small = Alloc.malloc(BitmapFit::MaxSingleBytes);
  EXPECT_EQ(Alloc.generalBackend().stats().MallocCalls, 0u);
  Addr Large = Alloc.malloc(BitmapFit::MaxSingleBytes + 1);
  EXPECT_EQ(Alloc.generalBackend().stats().MallocCalls, 1u);

  // Frees route back to the owning side, and both sides drain to empty.
  Alloc.free(Large);
  Alloc.free(Small);
  EXPECT_EQ(Alloc.stats().LiveBytes, 0u);
  EXPECT_EQ(Alloc.generalBackend().stats().LiveBytes, 0u);
}

namespace {

/// Walks SpaceFit's circular size-sorted freelist, asserting the structural
/// invariants every split/coalesce must preserve: no block below
/// MinBlockBytes, sizes ascending, allocated bit clear, and header mirrored
/// in the boundary-tag footer.
void checkSpaceFitFreelist(SimHeap &Heap, const SpaceFit &Alloc) {
  Addr Sentinel = Alloc.freelistSentinel();
  uint32_t PrevSize = 0;
  size_t Steps = 0;
  for (Addr Node = Heap.peek32(Sentinel + 4); Node != Sentinel;
       Node = Heap.peek32(Node + 4)) {
    ASSERT_LT(Steps++, size_t(1) << 16) << "freelist does not terminate";
    uint32_t Header = Heap.peek32(Node);
    uint32_t Size = Header & ~1u;
    ASSERT_EQ(Header & 1u, 0u) << "allocated block on the freelist";
    ASSERT_GE(Size, CoalescingAllocator::MinBlockBytes)
        << "split produced a sub-minimum block";
    ASSERT_EQ(Heap.peek32(Node + Size - 4), Header)
        << "boundary-tag footer disagrees with header";
    ASSERT_GE(Size, PrevSize) << "size-sorted freelist out of order";
    PrevSize = Size;
  }
}

} // namespace

TEST(SpaceFitPropertyTest, PicksTheTightestFit) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  SpaceFit Alloc(Heap, Cost);

  // Two free holes of different sizes, fenced by live guards so they cannot
  // coalesce; a request that exactly fits the smaller one must reuse it,
  // and the next request the larger.
  Addr BigHole = Alloc.malloc(200);
  Addr Guard1 = Alloc.malloc(40);
  Addr SmallHole = Alloc.malloc(56);
  Addr Guard2 = Alloc.malloc(40);
  Alloc.free(BigHole);
  Alloc.free(SmallHole);

  EXPECT_EQ(Alloc.malloc(56), SmallHole);
  EXPECT_EQ(Alloc.malloc(200), BigHole);
  Alloc.free(Guard1);
  Alloc.free(Guard2);
}

TEST(SpaceFitPropertyTest, ChurnPreservesFreelistInvariants) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  SpaceFit Alloc(Heap, Cost);

  Rng R(0x5FACEF17);
  std::vector<std::pair<Addr, uint32_t>> Live;
  for (int Op = 0; Op != 2000; ++Op) {
    bool DoFree = !Live.empty() && (Live.size() > 200 || R.nextBool(0.45));
    if (!DoFree) {
      uint32_t Size = 4 + 4 * static_cast<uint32_t>(R.nextBelow(128));
      Addr Ptr = Alloc.malloc(Size);
      ASSERT_NE(Ptr, 0u);
      Live.emplace_back(Ptr, Size);
    } else {
      size_t Victim = R.nextBelow(Live.size());
      Alloc.free(Live[Victim].first);
      Live[Victim] = Live.back();
      Live.pop_back();
    }
    if (Op % 64 == 0)
      checkSpaceFitFreelist(Heap, Alloc);
  }
  for (auto [Ptr, Size] : Live)
    Alloc.free(Ptr);
  checkSpaceFitFreelist(Heap, Alloc);
  EXPECT_EQ(Alloc.stats().LiveBytes, 0u);
}
