//===- tests/conformance/metamorphic_test.cpp - Metamorphic invariants ----===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Drives the metamorphic invariant suite (conform/Metamorphic.h) at a
// reduced workload scale so the whole property set — jobs invariance,
// allocator-axis split/merge and permutation bit-identity, associativity-
// doubling miss monotonicity, object-id relabeling invariance — runs in
// seconds. The committed-configuration run (scale 64) is exercised by the
// `allocsim_cli --conform` gate; these tests check that the invariants are
// properties of the simulator, not of one scale or seed.
//
//===----------------------------------------------------------------------===//

#include "conform/Metamorphic.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace allocsim;

namespace {

void expectCleanSuite(const MetamorphicOptions &Options) {
  DiagEngine Diags;
  size_t Checked = runMetamorphicSuite(Options, Diags);
  // All five properties over the 2x5 base matrix: 2 jobs + 11 split/merge
  // + 10 permute + 20 assoc-inclusion + 5 relabel elementary checks. A
  // smaller count means a property silently skipped.
  EXPECT_GE(Checked, 48u);
  if (!Diags.clean()) {
    std::ostringstream OS;
    Diags.print(OS, "metamorphic");
    FAIL() << "metamorphic invariants violated:\n" << OS.str();
  }
}

TEST(MetamorphicSuite, HoldsAtTestScaleSerial) {
  MetamorphicOptions Options;
  Options.Scale = 256;
  Options.Jobs = 1;
  expectCleanSuite(Options);
}

TEST(MetamorphicSuite, HoldsWithParallelWorkers) {
  // The jobs-invariance property compares the serial leg against a wide
  // worker pool; the other properties all run at this job count too.
  MetamorphicOptions Options;
  Options.Scale = 256;
  Options.Jobs = 8;
  expectCleanSuite(Options);
}

TEST(MetamorphicSuite, HoldsAtADifferentSeed) {
  // The invariants are transformation properties, not golden values: any
  // seed must satisfy them.
  MetamorphicOptions Options;
  Options.Scale = 256;
  Options.Seed = 0xDEC0DE;
  Options.Jobs = 1;
  expectCleanSuite(Options);
}

} // namespace
