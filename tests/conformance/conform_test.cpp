//===- tests/conformance/conform_test.cpp - Conformance engine tests ------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Unit tests for the conformance engine's pieces in isolation: metric
// extraction, the declarative assertion checkers evaluated against
// *fabricated* result stores (via the MatrixRunner's CellRunner seam, so no
// simulation runs), the expectation-file round trip and band semantics, and
// the JSON reader those files depend on. The deliberate-break tests pin the
// core acceptance property: an inverted ordering or a broken monotone trend
// is reported, with the right rule id — the engine cannot silently pass.
//
//===----------------------------------------------------------------------===//

#include "conform/Conformance.h"
#include "conform/Expectations.h"
#include "conform/PaperPoints.h"
#include "conform/TrendCheck.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>

using namespace allocsim;

namespace {

//===----------------------------------------------------------------------===//
// Fabricated stores
//===----------------------------------------------------------------------===//

/// The shared fabricated matrix: 2 workloads x 3 allocators x 2 penalties,
/// 2 caches per cell.
MatrixSpec fabricatedSpec() {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  Spec.Allocators = {AllocatorKind::FirstFit, AllocatorKind::Bsd,
                     AllocatorKind::GnuLocal};
  Spec.PenaltiesCycles = {25, 100};
  Spec.Caches = {{16 * 1024, 32, 1}, {64 * 1024, 32, 1}};
  return Spec;
}

/// Deterministic synthetic measurements with known shape: miss count falls
/// with cache size, rises with the allocator's enum ordinal; FirstFit is
/// the only searcher.
RunResult fabricatedResult(const ExperimentConfig &Config) {
  RunResult Result;
  Result.AppInstructions = 9000;
  Result.AllocInstructions =
      1000 + 100 * static_cast<uint64_t>(Config.Allocator);
  Result.TotalRefs = 5000;
  Result.TagRefs = Config.EmulateBoundaryTags ? 400 : 0;
  Result.HeapBytes = 64 * 1024;
  Result.BlocksSearched =
      Config.Allocator == AllocatorKind::FirstFit ? 800 : 0;
  Result.Alloc.MallocCalls = 100;
  for (const CacheConfig &Cache : Config.Caches) {
    CacheResult Entry;
    Entry.Config = Cache;
    Entry.Stats.Accesses = 5000;
    Entry.Stats.Misses = (1000 + 50 * static_cast<uint64_t>(Config.Allocator))
                         / (Cache.SizeBytes / (16 * 1024));
    Entry.Time.Instructions = Result.AppInstructions +
                              Result.AllocInstructions;
    Entry.Time.DataRefs = Result.TotalRefs;
    Entry.Time.MissRate = Entry.Stats.missRate();
    Entry.Time.MissPenalty = Config.MissPenaltyCycles;
    Result.Caches.push_back(Entry);
  }
  return Result;
}

ResultStore fabricatedStore() {
  MatrixOptions Options;
  Options.Jobs = 1;
  Options.CellRunner = fabricatedResult;
  return runMatrix(fabricatedSpec(), Options);
}

//===----------------------------------------------------------------------===//
// Metric extraction
//===----------------------------------------------------------------------===//

TEST(ConformMetrics, NamesAreStable) {
  EXPECT_STREQ(conformMetricName(ConformMetric::MissRate), "miss_rate");
  EXPECT_STREQ(conformMetricName(ConformMetric::CacheMisses), "cache_misses");
  EXPECT_STREQ(conformMetricName(ConformMetric::EstSeconds), "est_seconds");
  EXPECT_STREQ(conformMetricName(ConformMetric::AllocFraction),
               "alloc_fraction");
  EXPECT_STREQ(conformMetricName(ConformMetric::SearchPerOp), "search_per_op");
  EXPECT_STREQ(conformMetricName(ConformMetric::HeapKb), "heap_kb");
  EXPECT_STREQ(conformMetricName(ConformMetric::TagRefs), "tag_refs");
}

TEST(ConformMetrics, CacheIndexedMetricsAreMarked) {
  EXPECT_TRUE(conformMetricUsesCache(ConformMetric::MissRate));
  EXPECT_TRUE(conformMetricUsesCache(ConformMetric::CacheMisses));
  EXPECT_TRUE(conformMetricUsesCache(ConformMetric::EstSeconds));
  EXPECT_FALSE(conformMetricUsesCache(ConformMetric::AllocFraction));
  EXPECT_FALSE(conformMetricUsesCache(ConformMetric::SearchPerOp));
  EXPECT_FALSE(conformMetricUsesCache(ConformMetric::HeapKb));
  EXPECT_FALSE(conformMetricUsesCache(ConformMetric::TagRefs));
}

TEST(ConformMetrics, ExtractionMatchesRunResult) {
  ExperimentConfig Config;
  Config.Allocator = AllocatorKind::FirstFit;
  Config.Caches = {{16 * 1024, 32, 1}, {64 * 1024, 32, 1}};
  RunResult Result = fabricatedResult(Config);

  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::MissRate, 0),
                   Result.Caches[0].Stats.missRate());
  EXPECT_DOUBLE_EQ(
      extractConformMetric(Result, ConformMetric::CacheMisses, 1),
      static_cast<double>(Result.Caches[1].Stats.Misses));
  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::EstSeconds, 0),
                   Result.Caches[0].Time.seconds());
  EXPECT_DOUBLE_EQ(
      extractConformMetric(Result, ConformMetric::AllocFraction, 0),
      Result.allocInstrFraction());
  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::SearchPerOp, 0),
                   8.0);
  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::HeapKb, 0),
                   64.0);
  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::TagRefs, 0),
                   0.0);
}

TEST(ConformMetrics, SearchPerOpGuardsZeroMallocs) {
  RunResult Result;
  Result.BlocksSearched = 123;
  Result.Alloc.MallocCalls = 0;
  EXPECT_DOUBLE_EQ(extractConformMetric(Result, ConformMetric::SearchPerOp, 0),
                   0.0);
}

TEST(ConformMetrics, KeyFormatIsStable) {
  MetricRef Ref;
  Ref.Matrix = "main";
  Ref.Workload = WorkloadId::GsSmall;
  Ref.Allocator = AllocatorKind::FirstFit;
  Ref.PenaltyCycles = 25;
  Ref.Metric = ConformMetric::MissRate;
  Ref.CacheIdx = 0;
  EXPECT_EQ(Ref.key(), "main/gs-small/FirstFit/p25/c0/miss_rate");
}

//===----------------------------------------------------------------------===//
// Assertion checkers on fabricated stores
//===----------------------------------------------------------------------===//

TEST(TrendCheck, ResolveMetricFindsFabricatedCell) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};
  DiagEngine Diags;

  MetricRef Ref;
  Ref.Workload = WorkloadId::Make;
  Ref.Allocator = AllocatorKind::Bsd;
  Ref.PenaltyCycles = 100;
  Ref.Metric = ConformMetric::CacheMisses;
  Ref.CacheIdx = 1;
  double Value = 0;
  ASSERT_TRUE(resolveMetric(Stores, Ref, Value, Diags));
  // Bsd ordinal is 2: (1000 + 50*2) / 4 = 275.
  EXPECT_DOUBLE_EQ(Value, 275.0);
  EXPECT_TRUE(Diags.clean());
}

TEST(TrendCheck, MissingMatrixAndCellAreDiagnosed) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};
  DiagEngine Diags;
  double Value = 0;

  MetricRef NoMatrix;
  NoMatrix.Matrix = "nonesuch";
  EXPECT_FALSE(resolveMetric(Stores, NoMatrix, Value, Diags));

  MetricRef NoCell;
  NoCell.Workload = WorkloadId::Gawk; // not an axis value
  EXPECT_FALSE(resolveMetric(Stores, NoCell, Value, Diags));

  MetricRef NoCache;
  NoCache.Workload = WorkloadId::Espresso;
  NoCache.Allocator = AllocatorKind::Bsd;
  NoCache.Metric = ConformMetric::MissRate;
  NoCache.CacheIdx = 7;
  EXPECT_FALSE(resolveMetric(Stores, NoCache, Value, Diags));

  ASSERT_EQ(Diags.errorCount(), 3u);
  for (const Diag &D : Diags.diags())
    EXPECT_EQ(D.Rule, "conform-missing-cell");
}

TEST(TrendCheck, OrderingPassesWhenShapeHolds) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};
  DiagEngine Diags;

  // Fabricated misses grow with the allocator ordinal: FirstFit(0) <
  // Bsd(2) < GnuLocal(3).
  OrderingAssert Assert;
  Assert.Note = "fabricated ordering";
  Assert.Base = {"main", WorkloadId::Espresso, AllocatorKind::FirstFit, 25,
                 ConformMetric::CacheMisses, 0};
  Assert.Ascending = {AllocatorKind::FirstFit, AllocatorKind::Bsd,
                      AllocatorKind::GnuLocal};
  EXPECT_EQ(checkOrdering(Stores, Assert, Diags), 2u);
  EXPECT_TRUE(Diags.clean());
}

TEST(TrendCheck, DeliberatelyInvertedOrderingFails) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};
  DiagEngine Diags;

  OrderingAssert Assert;
  Assert.Note = "deliberately inverted";
  Assert.Base = {"main", WorkloadId::Espresso, AllocatorKind::FirstFit, 25,
                 ConformMetric::CacheMisses, 0};
  Assert.Ascending = {AllocatorKind::GnuLocal, AllocatorKind::Bsd,
                      AllocatorKind::FirstFit};
  EXPECT_EQ(checkOrdering(Stores, Assert, Diags), 2u);
  ASSERT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.diags()[0].Rule, "conform-ordering");
  EXPECT_NE(Diags.diags()[0].Message.find("deliberately inverted"),
            std::string::npos);
}

TEST(TrendCheck, MonotoneAlongCacheSizePassesAndFails) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};

  MonotoneAssert Assert;
  Assert.Note = "misses fall with cache size";
  Assert.Base = {"main", WorkloadId::Espresso, AllocatorKind::Bsd, 25,
                 ConformMetric::CacheMisses, 0};
  Assert.Along = MonotoneAssert::Axis::CacheSize;
  Assert.Direction = MonotoneAssert::Dir::NonIncreasing;

  DiagEngine Pass;
  EXPECT_EQ(checkMonotone(Stores, Assert, Pass), 1u);
  EXPECT_TRUE(Pass.clean());

  // Deliberate break: demand the opposite direction.
  Assert.Direction = MonotoneAssert::Dir::NonDecreasing;
  DiagEngine Fail;
  EXPECT_EQ(checkMonotone(Stores, Assert, Fail), 1u);
  ASSERT_EQ(Fail.errorCount(), 1u);
  EXPECT_EQ(Fail.diags()[0].Rule, "conform-monotone");
}

TEST(TrendCheck, MonotoneAlongPenaltyUsesSpecOrder) {
  ResultStore Store = fabricatedStore();
  StoreMap Stores{{"main", &Store}};
  DiagEngine Diags;

  // Estimated seconds grow with the penalty (fabricated Time uses the
  // cell's penalty).
  MonotoneAssert Assert;
  Assert.Note = "time grows with penalty";
  Assert.Base = {"main", WorkloadId::Make, AllocatorKind::GnuLocal, 25,
                 ConformMetric::EstSeconds, 0};
  Assert.Along = MonotoneAssert::Axis::Penalty;
  Assert.Direction = MonotoneAssert::Dir::NonDecreasing;
  EXPECT_EQ(checkMonotone(Stores, Assert, Diags), 1u);
  EXPECT_TRUE(Diags.clean());
}

TEST(TrendCheck, PairComparesAcrossMatrices) {
  ResultStore Store = fabricatedStore();

  // A second store fabricated with boundary tags: TagRefs goes 0 -> 400.
  MatrixSpec Tagged = fabricatedSpec();
  Tagged.Base.EmulateBoundaryTags = true;
  MatrixOptions Options;
  Options.Jobs = 1;
  Options.CellRunner = fabricatedResult;
  ResultStore TaggedStore = runMatrix(Tagged, Options);

  StoreMap Stores{{"plain", &Store}, {"tagged", &TaggedStore}};
  DiagEngine Diags;

  PairAssert Assert;
  Assert.Note = "tags add tag refs";
  Assert.Left = {"tagged", WorkloadId::Espresso, AllocatorKind::Bsd, 25,
                 ConformMetric::TagRefs, 0};
  Assert.Right = {"plain", WorkloadId::Espresso, AllocatorKind::Bsd, 25,
                  ConformMetric::TagRefs, 0};
  Assert.Relation = PairAssert::Cmp::GT;
  EXPECT_EQ(checkPair(Stores, Assert, Diags), 1u);
  EXPECT_TRUE(Diags.clean());

  // Deliberate break: flip the relation.
  Assert.Relation = PairAssert::Cmp::LT;
  EXPECT_EQ(checkPair(Stores, Assert, Diags), 1u);
  ASSERT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diags()[0].Rule, "conform-pair");
}

//===----------------------------------------------------------------------===//
// Expectation files
//===----------------------------------------------------------------------===//

class TempFile {
public:
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + "/" + Name) {}
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

TEST(Expectations, RoundTripIsExact) {
  TempFile File("conform_roundtrip.json");
  ExpectationFile Out;
  Out.Suite = "unit";
  Out.Scale = 64;
  Out.Seed = 1592932958ULL;
  Out.BandPercent = 2.5;
  Out.Metrics["a/b/c0/miss_rate"] = 0.05854221029395002;
  Out.Metrics["a/b/c0/heap_kb"] = 580;
  Out.Metrics["a/b/c0/search_per_op"] = 0;

  std::string Error;
  ASSERT_TRUE(writeExpectationFile(File.path(), Out, Error)) << Error;
  ExpectationFile In;
  ASSERT_TRUE(readExpectationFile(File.path(), In, Error)) << Error;
  EXPECT_EQ(In.Suite, Out.Suite);
  EXPECT_EQ(In.Scale, Out.Scale);
  EXPECT_EQ(In.Seed, Out.Seed);
  EXPECT_DOUBLE_EQ(In.BandPercent, Out.BandPercent);
  ASSERT_EQ(In.Metrics.size(), Out.Metrics.size());
  for (const auto &[Key, Value] : Out.Metrics) {
    ASSERT_TRUE(In.Metrics.count(Key)) << Key;
    EXPECT_EQ(In.Metrics.at(Key), Value) << Key; // bit-exact round trip
  }
}

TEST(Expectations, ReaderRejectsBadFiles) {
  std::string Error;
  ExpectationFile File;
  EXPECT_FALSE(
      readExpectationFile("/nonexistent/conform.json", File, Error));

  TempFile Bad("conform_bad.json");
  std::ofstream(Bad.path()) << "{\"schema\": \"other-schema\"}";
  EXPECT_FALSE(readExpectationFile(Bad.path(), File, Error));
  EXPECT_NE(Error.find("schema"), std::string::npos);

  TempFile Junk("conform_junk.json");
  std::ofstream(Junk.path()) << "not json";
  EXPECT_FALSE(readExpectationFile(Junk.path(), File, Error));
}

TEST(Expectations, BandSemantics) {
  EXPECT_TRUE(withinBand(100.0, 101.9, 2.0));
  EXPECT_TRUE(withinBand(100.0, 98.1, 2.0));
  EXPECT_FALSE(withinBand(100.0, 102.1, 2.0));
  EXPECT_FALSE(withinBand(100.0, 97.9, 2.0));
  EXPECT_TRUE(withinBand(-100.0, -101.9, 2.0));
  // Zero expectations demand exact zero.
  EXPECT_TRUE(withinBand(0.0, 0.0, 2.0));
  EXPECT_FALSE(withinBand(0.0, 1e-9, 2.0));
  // Exact match always passes, even with a zero-width band.
  EXPECT_TRUE(withinBand(3.25, 3.25, 0.0));
}

TEST(Expectations, CheckReportsBandAndKeyFindings) {
  ExpectationFile File;
  File.Suite = "unit";
  File.Scale = 64;
  File.Seed = 7;
  File.BandPercent = 2.0;
  File.Metrics["kept"] = 100.0;
  File.Metrics["drifted"] = 100.0;
  File.Metrics["vanished"] = 1.0;

  std::map<std::string, double> Measured{
      {"kept", 100.5}, {"drifted", 110.0}, {"unrecorded", 5.0}};

  DiagEngine Diags;
  EXPECT_EQ(checkExpectations(File, Measured, 64, 7, Diags), 2u);
  EXPECT_EQ(Diags.errorCount(), 3u); // band + vanished + unrecorded
  size_t BandFindings = 0, KeyFindings = 0;
  for (const Diag &D : Diags.diags()) {
    if (D.Rule == "conform-expectation-band")
      ++BandFindings;
    else if (D.Rule == "conform-expectation-keys")
      ++KeyFindings;
  }
  EXPECT_EQ(BandFindings, 1u);
  EXPECT_EQ(KeyFindings, 2u);
}

TEST(Expectations, ScaleMismatchSkipsWithWarning) {
  ExpectationFile File;
  File.Suite = "unit";
  File.Scale = 64;
  File.Seed = 7;
  File.Metrics["m"] = 100.0;

  std::map<std::string, double> Measured{{"m", 500.0}}; // would fail band
  DiagEngine Diags;
  EXPECT_EQ(checkExpectations(File, Measured, 1, 7, Diags), 0u);
  EXPECT_EQ(Diags.errorCount(), 0u);
  ASSERT_EQ(Diags.warningCount(), 1u);
  EXPECT_EQ(Diags.diags()[0].Rule, "conform-expectation-scale");
}

TEST(Expectations, CommittedFilesLoadAndMatchSchema) {
  for (const char *Suite : {"missrate", "exectime", "tags"}) {
    std::string Path =
        std::string(ALLOCSIM_EXPECTATIONS_DIR) + "/" + Suite + ".json";
    ExpectationFile File;
    std::string Error;
    ASSERT_TRUE(readExpectationFile(Path, File, Error)) << Error;
    EXPECT_EQ(File.Suite, Suite);
    EXPECT_EQ(File.Scale, 64u);
    EXPECT_FALSE(File.Metrics.empty());
  }
}

//===----------------------------------------------------------------------===//
// The JSON reader
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalars) {
  JsonValue Value;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse("true", Value, Error));
  EXPECT_TRUE(Value.isBool());
  EXPECT_TRUE(Value.boolValue());

  ASSERT_TRUE(JsonValue::parse("null", Value, Error));
  EXPECT_TRUE(Value.isNull());

  ASSERT_TRUE(JsonValue::parse("-3.5e2", Value, Error));
  EXPECT_TRUE(Value.isNumber());
  EXPECT_FALSE(Value.isInteger());
  EXPECT_DOUBLE_EQ(Value.numberValue(), -350.0);

  ASSERT_TRUE(JsonValue::parse("18446744073709551615", Value, Error));
  EXPECT_TRUE(Value.isInteger());
  EXPECT_EQ(Value.uintValue(), UINT64_MAX);

  ASSERT_TRUE(JsonValue::parse("-42", Value, Error));
  EXPECT_TRUE(Value.isInteger());
  EXPECT_EQ(Value.intValue(), -42);

  ASSERT_TRUE(JsonValue::parse("\"a\\n\\\"b\\u0041\"", Value, Error));
  EXPECT_EQ(Value.stringValue(), "a\n\"bA");
}

TEST(Json, ParsesNestedStructures) {
  JsonValue Value;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(
      "{\"a\": [1, 2, {\"b\": false}], \"c\": {\"d\": \"e\"}}", Value,
      Error))
      << Error;
  ASSERT_TRUE(Value.isObject());
  const JsonValue *A = Value.get("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_EQ(A->array()[0].intValue(), 1);
  EXPECT_FALSE(A->array()[2].get("b")->boolValue());
  EXPECT_EQ(Value.get("c")->get("d")->stringValue(), "e");
  EXPECT_EQ(Value.get("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  JsonValue Value;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("", Value, Error));
  EXPECT_FALSE(JsonValue::parse("{", Value, Error));
  EXPECT_FALSE(JsonValue::parse("[1,]", Value, Error));
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}", Value, Error));
  EXPECT_FALSE(JsonValue::parse("tru", Value, Error));
  EXPECT_FALSE(JsonValue::parse("1 2", Value, Error));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", Value, Error));
  EXPECT_NE(Error.find("offset"), std::string::npos);
}

TEST(Json, RejectsPathologicalNesting) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  JsonValue Value;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse(Deep, Value, Error));
  EXPECT_NE(Error.find("deep"), std::string::npos);
}

TEST(Json, ParsesConformReportOutput) {
  // The conform JSON report must be readable by our own parser.
  ConformReport Report;
  Report.Scale = 64;
  Report.Seed = 1592932958ULL;
  ConformSuiteResult Suite;
  Suite.Name = "missrate";
  Suite.CellsRun = 12;
  Suite.ChecksRun = 122;
  Report.Suites.push_back(Suite);
  Report.Diags.error("conform-ordering", {}, "example \"quoted\" finding");

  std::ostringstream OS;
  writeConformReportJson(OS, Report);
  JsonValue Value;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(OS.str(), Value, Error)) << Error;
  EXPECT_EQ(Value.get("schema")->stringValue(), "allocsim-conform-v1");
  EXPECT_EQ(Value.get("suites")->array().size(), 1u);
  EXPECT_EQ(Value.get("errors")->uintValue(), 1u);
  EXPECT_FALSE(Value.get("passed")->boolValue());
  EXPECT_EQ(Value.get("diagnostics")->array().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Paper data points (moved to conform/PaperPoints.h; satellite coverage)
//===----------------------------------------------------------------------===//

TEST(PaperPoints, TablesAreInternallyConsistent) {
  for (int Row = 0; Row != 5; ++Row) {
    for (int Col = 0; Col != 5; ++Col) {
      for (const PaperTime &Entry :
           {PaperTable4[Row][Col], PaperTable5[Row][Col]}) {
        if (!Entry.known()) {
          // Scan-corrupted entries are wholly unknown, never half-known.
          EXPECT_LT(Entry.MissSeconds, 0.0);
          continue;
        }
        // Miss seconds are a share of total seconds.
        EXPECT_GE(Entry.MissSeconds, 0.0);
        EXPECT_LT(Entry.MissSeconds, Entry.TotalSeconds);
      }
    }
  }
}

TEST(PaperPoints, LargerCacheNeverSlowerInPaper) {
  // Table 5 (64K cache) total times are below Table 4's (16K cache)
  // wherever both survived the scan — the paper's own data obeys the
  // trend the conformance suites assert on the reproduction.
  for (int Row = 0; Row != 5; ++Row)
    for (int Col = 0; Col != 5; ++Col)
      if (PaperTable4[Row][Col].known() && PaperTable5[Row][Col].known()) {
        EXPECT_LT(PaperTable5[Row][Col].TotalSeconds,
                  PaperTable4[Row][Col].TotalSeconds)
            << "row " << Row << " col " << Col;
      }
}

TEST(PaperPoints, BsdIsFastestWhereTable4IsComplete) {
  // The espresso column (0) is complete in Table 4; BSD (row 3) is the
  // paper's fastest allocator there — the claim the exectime suite gates.
  for (int Row = 0; Row != 5; ++Row)
    if (Row != 3) {
      EXPECT_LT(PaperTable4[3][0].TotalSeconds,
                PaperTable4[Row][0].TotalSeconds)
          << "row " << Row;
    }
}

//===----------------------------------------------------------------------===//
// Suite registry
//===----------------------------------------------------------------------===//

TEST(Conformance, SuiteRegistryIsStable) {
  std::vector<std::string> Names = conformSuiteNames();
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names[0], "missrate");
  EXPECT_EQ(Names[1], "exectime");
  EXPECT_EQ(Names[2], "tags");
  EXPECT_EQ(Names[3], "metamorphic");
}

TEST(Conformance, UnknownSuiteIsReportedNotFatal) {
  ConformOptions Options;
  Options.Suites = {"nonesuch"};
  ConformReport Report = runConformance(Options);
  EXPECT_FALSE(Report.passed());
  ASSERT_EQ(Report.Diags.errorCount(), 1u);
  EXPECT_EQ(Report.Diags.diags()[0].Rule, "conform-unknown-suite");
  EXPECT_TRUE(Report.Suites.empty());
}

} // namespace
