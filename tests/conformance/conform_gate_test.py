#!/usr/bin/env python3
"""Pins `allocsim_cli --conform`'s command-line contract: exit codes (0 =
replication conforms, 1 = findings, 2 = usage error), the human PASS/FAIL
report, the allocsim-conform-v1 JSON schema, and the expectation-file gate
itself — a doctored committed value must fail the run, and a scale that
differs from the recorded one must skip band checks with a warning instead
of failing. CI's conform job and the weekly full-size replication run both
build on exactly these behaviors.

Registered in tests/conformance/CMakeLists.txt with the allocsim_cli binary
path as argv[1] and the committed expectations directory as argv[2]; run
through ctest (label: conform).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

CLI_BIN = None  # set from argv[1] in __main__
EXPECTATIONS_DIR = None  # set from argv[2] in __main__


def run_conform(*args):
    proc = subprocess.run(
        [CLI_BIN, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout


class FullRunTest(unittest.TestCase):
    def test_committed_expectations_pass(self):
        # The complete gate: every suite, committed scale and seed, band
        # checks armed. This is the invocation CI's conform job runs.
        code, out = run_conform(
            "--conform=true", "--expectations=%s" % EXPECTATIONS_DIR
        )
        self.assertEqual(code, 0, out)
        self.assertIn("conform: PASS", out)
        for suite in ("missrate", "exectime", "tags", "metamorphic"):
            self.assertIn("conform: suite %s:" % suite, out)
        self.assertIn(" 0 errors", out)


class CheapPathsTest(unittest.TestCase):
    """Contract points that only need the cheapest suite (tags) or no
    simulation at all."""

    def test_unknown_suite_fails_with_rule(self):
        code, out = run_conform(
            "--conform=true", "--conform-suite=bogus", "--expectations="
        )
        self.assertEqual(code, 1, out)
        self.assertIn("[conform-unknown-suite]", out)
        self.assertIn("conform: FAIL", out)

    def test_zero_scale_is_usage_error(self):
        code, _ = run_conform("--conform=true", "--conform-scale=0")
        self.assertEqual(code, 2)

    def test_doctored_expectation_fails_the_gate(self):
        # Perturb one committed value beyond the band: the run must exit 1
        # and name the conform-expectation-band rule. This pins the
        # acceptance property that a deliberate break cannot pass.
        with tempfile.TemporaryDirectory() as tmpdir:
            doctored = os.path.join(tmpdir, "tags.json")
            shutil.copy(os.path.join(EXPECTATIONS_DIR, "tags.json"), doctored)
            with open(doctored) as handle:
                data = json.load(handle)
            key = sorted(data["metrics"])[0]
            data["metrics"][key] *= 1.10  # default band is 2%
            with open(doctored, "w") as handle:
                json.dump(data, handle)

            code, out = run_conform(
                "--conform=true",
                "--conform-suite=tags",
                "--expectations=%s" % tmpdir,
            )
            self.assertEqual(code, 1, out)
            self.assertIn("[conform-expectation-band]", out)
            self.assertIn(key, out)
            self.assertIn("conform: FAIL", out)

    def test_scale_mismatch_skips_bands_with_warning(self):
        # The weekly full-size replication runs at a different scale: band
        # checks are recorded-at-64 only, so they must be skipped with a
        # warning while trend assertions still gate.
        code, out = run_conform(
            "--conform=true",
            "--conform-suite=tags",
            "--conform-scale=128",
            "--expectations=%s" % EXPECTATIONS_DIR,
        )
        self.assertEqual(code, 0, out)
        self.assertIn("[conform-expectation-scale]", out)
        self.assertIn("conform: PASS", out)
        self.assertIn(" 0 band checks", out)

    def test_missing_expectation_file_fails(self):
        with tempfile.TemporaryDirectory() as tmpdir:
            code, out = run_conform(
                "--conform=true",
                "--conform-suite=tags",
                "--expectations=%s" % tmpdir,
            )
            self.assertEqual(code, 1, out)
            self.assertIn("[conform-expectation-file]", out)

    def test_empty_expectations_dir_disables_bands(self):
        code, out = run_conform(
            "--conform=true", "--conform-suite=tags", "--expectations="
        )
        self.assertEqual(code, 0, out)
        self.assertIn(" 0 band checks", out)
        self.assertIn("conform: PASS", out)


class JsonReportTest(unittest.TestCase):
    def test_schema_and_shape(self):
        code, out = run_conform(
            "--conform-json=true",
            "--conform-suite=tags",
            "--expectations=%s" % EXPECTATIONS_DIR,
        )
        self.assertEqual(code, 0, out)
        report = json.loads(out)
        self.assertEqual(report["schema"], "allocsim-conform-v1")
        self.assertEqual(report["scale"], 64)
        self.assertEqual(report["seed"], 1592932958)
        self.assertTrue(report["passed"])
        self.assertEqual(report["errors"], 0)
        self.assertEqual(report["diagnostics"], [])
        (suite,) = report["suites"]
        self.assertEqual(suite["name"], "tags")
        self.assertGreater(suite["cells"], 0)
        self.assertGreater(suite["trend_checks"], 0)
        self.assertGreater(suite["band_checks"], 0)
        self.assertEqual(suite["errors"], 0)

    def test_failing_run_reports_diagnostics(self):
        code, out = run_conform(
            "--conform-json=true", "--conform-suite=bogus"
        )
        self.assertEqual(code, 1, out)
        report = json.loads(out)
        self.assertFalse(report["passed"])
        (diag,) = report["diagnostics"]
        self.assertEqual(diag["rule"], "conform-unknown-suite")
        self.assertEqual(diag["severity"], "error")


if __name__ == "__main__":
    if len(sys.argv) < 3:
        sys.exit(
            "usage: conform_gate_test.py <path-to-allocsim_cli> "
            "<expectations-dir> [...]"
        )
    CLI_BIN = sys.argv.pop(1)
    EXPECTATIONS_DIR = sys.argv.pop(1)
    unittest.main(verbosity=2)
