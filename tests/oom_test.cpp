//===- tests/oom_test.cpp - Graceful heap-exhaustion degradation ----------===//
//
// FaultLab's OOM contract, held for every allocator: when the simulated heap
// hits its soft capacity limit, malloc returns null — it never aborts and
// never corrupts the structures it already built. The suite sweeps the
// capacity from zero to "everything fits" and, after every failed malloc,
// runs the allocator's full invariant walk and re-checks the live-byte
// accounting against an independently tracked model.
//
//===----------------------------------------------------------------------===//

#include "alloc/CustomAlloc.h"
#include "alloc/GnuLocal.h"
#include "check/HeapCheck.h"
#include "core/Lab.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

using namespace allocsim;

namespace {

/// Every allocator the OOM contract covers: the paper's five plus the
/// extensions (BestFit, Custom, tag-emulating GnuLocal).
struct OomSubject {
  const char *Name;
  std::function<std::unique_ptr<Allocator>(SimHeap &, CostModel &)> Build;
};

SizeClassMap testClasses() {
  Histogram Sizes;
  for (uint32_t Size : {8u, 16u, 24u, 40u, 64u, 120u, 256u})
    for (int I = 0; I != 8; ++I)
      Sizes.add(Size);
  return SizeClassMap::fromProfile(Sizes, 6, 256);
}

std::vector<OomSubject> subjects() {
  std::vector<OomSubject> Subjects;
  for (AllocatorKind Kind : PaperAllocators)
    Subjects.push_back({allocatorKindName(Kind),
                        [Kind](SimHeap &Heap, CostModel &Cost) {
                          return createAllocator(Kind, Heap, Cost);
                        }});
  Subjects.push_back({"BestFit", [](SimHeap &Heap, CostModel &Cost) {
                        return createAllocator(AllocatorKind::BestFit, Heap,
                                               Cost);
                      }});
  Subjects.push_back({"Custom", [](SimHeap &Heap, CostModel &Cost) {
                        return std::make_unique<CustomAlloc>(Heap, Cost,
                                                             testClasses());
                      }});
  Subjects.push_back({"GnuLocalTagged", [](SimHeap &Heap, CostModel &Cost) {
                        return std::make_unique<GnuLocal>(
                            Heap, Cost, /*EmulateBoundaryTags=*/true);
                      }});
  // The modern CacheLab backends: BitmapFit must fail soft through slab
  // carves and slab-map growth, SpaceFit through chunk expansion.
  Subjects.push_back({"BitmapFit", [](SimHeap &Heap, CostModel &Cost) {
                        return createAllocator(AllocatorKind::BitmapFit, Heap,
                                               Cost);
                      }});
  Subjects.push_back({"SpaceFit", [](SimHeap &Heap, CostModel &Cost) {
                        return createAllocator(AllocatorKind::SpaceFit, Heap,
                                               Cost);
                      }});
  return Subjects;
}

/// One capacity-limited run: a deterministic malloc/free mix against the
/// soft-limited heap, with an invariant walk and exact live accounting
/// asserted after every failed malloc.
void runCapacityTrial(const OomSubject &Subject, uint64_t CapacityBytes,
                      uint64_t &FailedOut, uint64_t &SucceededOut) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc = Subject.Build(Heap, Cost);

  CheckPolicy Policy;
  Policy.Level = CheckLevel::Full;
  Policy.AbortOnViolation = false;
  HeapCheck Check(Policy, Heap, Bus);
  Check.attachAllocator(*Alloc);

  // The limit applies to growth past the allocator's static area, so even
  // capacity 0 exercises a fully constructed allocator.
  Heap.setSoftLimit(static_cast<uint64_t>(Heap.heapBytes()) + CapacityBytes);

  Rng Rand(0x00D0FEED ^ CapacityBytes);
  std::vector<std::pair<Addr, uint32_t>> Live; // (ptr, requested size)
  uint64_t LiveBytes = 0, Failed = 0, Succeeded = 0;

  for (int Op = 0; Op != 400; ++Op) {
    if (Live.empty() || Rand.nextBelow(100) < 60) {
      uint32_t Size = 4 + static_cast<uint32_t>(Rand.nextBelow(120));
      if (Rand.nextBelow(12) == 0)
        Size = 512 + static_cast<uint32_t>(Rand.nextBelow(4096));
      Addr Ptr = Alloc->malloc(Size);
      Bus.flush();
      if (Ptr == 0) {
        ++Failed;
        // The failed call must leave every structure walkable and must not
        // have touched the live accounting.
        uint64_t Before = Check.violationCount();
        Check.runWalk();
        ASSERT_EQ(Check.violationCount(), Before)
            << Subject.Name << ": invariant walk failed after OOM at capacity "
            << CapacityBytes;
      } else {
        ++Succeeded;
        Live.push_back({Ptr, Size});
        LiveBytes += Size;
      }
      const AllocatorStats &Stats = Alloc->stats();
      ASSERT_EQ(Stats.FailedMallocs, Failed) << Subject.Name;
      ASSERT_EQ(Stats.LiveObjects, Live.size()) << Subject.Name;
      ASSERT_EQ(Stats.LiveBytes, LiveBytes) << Subject.Name;
      ASSERT_EQ(Stats.MallocCalls, Failed + Succeeded) << Subject.Name;
    } else {
      size_t Victim = Rand.nextBelow(Live.size());
      Alloc->free(Live[Victim].first);
      Bus.flush();
      LiveBytes -= Live[Victim].second;
      Live[Victim] = Live.back();
      Live.pop_back();
      ASSERT_EQ(Alloc->stats().LiveBytes, LiveBytes) << Subject.Name;
    }
  }

  // Frees still succeed after exhaustion, and the drained heap walks clean.
  for (auto [Ptr, Size] : Live)
    Alloc->free(Ptr);
  Bus.flush();
  Check.finalCheck();
  EXPECT_EQ(Check.violationCount(), 0u) << Subject.Name;
  EXPECT_EQ(Alloc->stats().LiveBytes, 0u) << Subject.Name;
  EXPECT_EQ(Alloc->stats().LiveObjects, 0u) << Subject.Name;

  FailedOut = Failed;
  SucceededOut = Succeeded;
}

} // namespace

TEST(OomTest, NullNeverAbortsAcrossCapacitySweep) {
  // 0 → tight → generous → effectively unlimited; every allocator must
  // degrade with null returns at the tight end and see zero failures at
  // the unlimited end.
  const uint64_t Capacities[] = {0,     2048,    8192,   32768,
                                 65536, 1 << 20, 1 << 28};
  for (const OomSubject &Subject : subjects()) {
    bool SawFailures = false;
    for (uint64_t Capacity : Capacities) {
      SCOPED_TRACE(std::string(Subject.Name) + "/capacity=" +
                   std::to_string(Capacity));
      uint64_t Failed = 0, Succeeded = 0;
      runCapacityTrial(Subject, Capacity, Failed, Succeeded);
      if (Failed > 0)
        SawFailures = true;
      if (Capacity == 0) {
        EXPECT_EQ(Succeeded, 0u) << Subject.Name;
      }
      if (Capacity >= (1u << 28)) {
        EXPECT_EQ(Failed, 0u) << Subject.Name;
      }
    }
    EXPECT_TRUE(SawFailures)
        << Subject.Name << ": sweep never triggered an OOM";
  }
}

TEST(OomTest, SbrkDeniedCountsEveryRefusal) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.setSoftLimit(4096);
  EXPECT_EQ(Heap.softLimit(), 4096u);

  Addr Old = 0;
  ASSERT_TRUE(Heap.trySbrk(4096, Old));
  EXPECT_EQ(Old, Heap.base());
  EXPECT_EQ(Heap.sbrkDenied(), 0u);

  EXPECT_FALSE(Heap.trySbrk(4, Old));
  EXPECT_FALSE(Heap.trySbrk(1, Old));
  EXPECT_EQ(Heap.sbrkDenied(), 2u);
  EXPECT_EQ(Heap.heapBytes(), 4096u);

  // Raising the limit un-wedges growth.
  Heap.setSoftLimit(8192);
  EXPECT_TRUE(Heap.trySbrk(4096, Old));
  EXPECT_EQ(Heap.heapBytes(), 8192u);
}

TEST(OomTest, DriverDegradesGracefullyOnFailedObjects) {
  // Through the full experiment rig: a tight oom plan drops the failed
  // object's malloc and all of its later touches/frees, and the run still
  // completes with exact fault accounting in the result.
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Espresso;
  Config.Allocator = AllocatorKind::Bsd;
  Config.Engine.Scale = 64;
  Config.Check.Level = CheckLevel::Full;

  DiagEngine Diags;
  Config.Inject = parseFaultPlan("oom:after=16384", Diags);
  ASSERT_EQ(Diags.errorCount(), 0u);
  ASSERT_TRUE(Config.Inject.oomEnabled());

  RunResult Result = runExperiment(Config);
  EXPECT_GT(Result.SbrkDenied, 0u);
  EXPECT_GT(Result.DroppedEvents, 0u);
  EXPECT_GT(Result.Alloc.FailedMallocs, 0u);
  EXPECT_EQ(Result.CheckViolations, 0u);
  EXPECT_LE(Result.HeapBytes, 16384u + 4096u); // static area + capacity

  // Same plan, no plan: the unlimited run drops nothing.
  ExperimentConfig Clean = Config;
  Clean.Inject = FaultPlan();
  RunResult CleanResult = runExperiment(Clean);
  EXPECT_EQ(CleanResult.SbrkDenied, 0u);
  EXPECT_EQ(CleanResult.DroppedEvents, 0u);
  EXPECT_EQ(CleanResult.Alloc.FailedMallocs, 0u);
}

TEST(OomTest, OomRunsAreDeterministic) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Gs;
  Config.Allocator = AllocatorKind::QuickFit;
  Config.Engine.Scale = 64;

  DiagEngine Diags;
  Config.Inject = parseFaultPlan("oom:after=32768", Diags);
  ASSERT_EQ(Diags.errorCount(), 0u);

  RunResult A = runExperiment(Config);
  RunResult B = runExperiment(Config);
  EXPECT_EQ(A.SbrkDenied, B.SbrkDenied);
  EXPECT_EQ(A.DroppedEvents, B.DroppedEvents);
  EXPECT_EQ(A.Alloc.FailedMallocs, B.Alloc.FailedMallocs);
  EXPECT_EQ(A.TotalRefs, B.TotalRefs);
  EXPECT_EQ(A.totalInstructions(), B.totalInstructions());
}
