//===- tests/check_test.cpp - Heap-integrity checking tests ---------------===//
//
// Each corruption class the HeapCheck subsystem claims to catch is injected
// deliberately — a clobbered link word, a forged boundary tag, a double
// free, a skipped coalesce, metadata/user overlap — and the test asserts
// the precise diagnostic: kind, offending allocator, and address.
//
//===----------------------------------------------------------------------===//

#include "check/HeapCheck.h"

#include "alloc/BitmapFit.h"
#include "alloc/Bsd.h"
#include "alloc/FirstFit.h"
#include "alloc/GnuLocal.h"
#include "alloc/QuickFit.h"
#include "alloc/SpaceFit.h"
#include "core/Lab.h"

#include <gtest/gtest.h>

using namespace allocsim;

namespace {

CheckPolicy recordingPolicy() {
  CheckPolicy Policy;
  Policy.Level = CheckLevel::Full;
  Policy.IntervalOps = 0; // tests run walks explicitly
  Policy.AbortOnViolation = false;
  return Policy;
}

/// Bus + heap + recording HeapCheck; allocators are attached per test.
struct CheckHarness {
  MemoryBus Bus;
  SimHeap Heap{Bus};
  CostModel Cost;
  HeapCheck Check{recordingPolicy(), Heap, Bus};

  const CheckViolation *find(ViolationKind Kind) const {
    for (const CheckViolation &V : Check.violations())
      if (V.Kind == Kind)
        return &V;
    return nullptr;
  }
  bool has(ViolationKind Kind) const { return find(Kind) != nullptr; }
};

/// First node of a coalescing allocator's freelist; asserts non-empty.
Addr firstFreeNode(const SimHeap &Heap, Addr Sentinel) {
  Addr Node = Heap.peek32(Sentinel + 4);
  EXPECT_NE(Node, Sentinel) << "freelist unexpectedly empty";
  return Node;
}

} // namespace

//===----------------------------------------------------------------------===//
// Policy plumbing
//===----------------------------------------------------------------------===//

TEST(CheckPolicyTest, LevelNamesRoundTrip) {
  EXPECT_EQ(parseCheckLevel("off"), CheckLevel::Off);
  EXPECT_EQ(parseCheckLevel("fast"), CheckLevel::Fast);
  EXPECT_EQ(parseCheckLevel("FULL"), CheckLevel::Full);
  for (CheckLevel Level :
       {CheckLevel::Off, CheckLevel::Fast, CheckLevel::Full})
    EXPECT_EQ(parseCheckLevel(checkLevelName(Level)), Level);
}

TEST(CheckPolicyDeathTest, UnknownLevelIsFatal) {
  EXPECT_DEATH(parseCheckLevel("paranoid"), "unknown check level");
}

//===----------------------------------------------------------------------===//
// Shadow state transitions
//===----------------------------------------------------------------------===//

TEST(ShadowHeapTest, TracksObjectLifeCycle) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16);
  EXPECT_EQ(H.Check.shadow().byteState(A), ByteState::UserLive);
  EXPECT_EQ(H.Check.shadow().byteState(A + 15), ByteState::UserLive);
  // The block header the allocator wrote through the bus is metadata, as
  // is the statically poked freelist sentinel.
  EXPECT_EQ(H.Check.shadow().byteState(A - 4), ByteState::Metadata);
  EXPECT_EQ(H.Check.shadow().byteState(Alloc.freelistSentinel()),
            ByteState::Metadata);

  Alloc.free(A);
  // Free-ing rewrites link words through the bus; bytes not reused for
  // bookkeeping keep the freed marking.
  EXPECT_EQ(H.Check.shadow().byteState(A + 8), ByteState::UserFreed);
  EXPECT_TRUE(H.Check.violations().empty());
}

TEST(ShadowHeapTest, CleanRunStaysClean) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  std::vector<Addr> Ptrs;
  for (uint32_t I = 1; I <= 40; ++I)
    Ptrs.push_back(Alloc.malloc(8 * I));
  for (size_t I = 0; I < Ptrs.size(); I += 2)
    Alloc.free(Ptrs[I]);
  H.Check.runWalk();
  for (size_t I = 1; I < Ptrs.size(); I += 2)
    Alloc.free(Ptrs[I]);
  H.Check.runWalk();
  EXPECT_EQ(H.Check.violationCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Injected corruption: the five headline classes
//===----------------------------------------------------------------------===//

TEST(CheckCorruptionTest, ClobberedLinkWordIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(32);
  Alloc.malloc(32); // keep a neighbor allocated
  Alloc.free(A);

  Addr Node = firstFreeNode(H.Heap, Alloc.freelistSentinel());
  H.Heap.poke32(Node + 4, 0xDEADBEEF); // misaligned, outside the heap
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::FreelistCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "FirstFit");
  EXPECT_EQ(V->Address, Node);
  EXPECT_NE(V->message().find("FirstFit"), std::string::npos);
  EXPECT_NE(V->message().find("corrupt freelist link"), std::string::npos);
}

TEST(CheckCorruptionTest, ForgedBoundaryTagIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(48);
  Alloc.malloc(48);
  Alloc.free(A);

  Addr Node = firstFreeNode(H.Heap, Alloc.freelistSentinel());
  uint32_t Tag = H.Heap.peek32(Node);
  uint32_t Size = CoalescingAllocator::tagSize(Tag);
  H.Heap.poke32(Node + Size - 4, Tag ^ 0x100); // footer disagrees now
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::BoundaryTagMismatch);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "FirstFit");
  EXPECT_EQ(V->Address, Node);
}

TEST(CheckCorruptionTest, DoubleFreeIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(24);
  Alloc.free(A);
  Alloc.free(A); // recorded, not fatal, and the free is skipped

  const CheckViolation *V = H.find(ViolationKind::DoubleFree);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "FirstFit");
  EXPECT_EQ(V->Address, A);
  EXPECT_NE(V->message().find("double free"), std::string::npos);
  EXPECT_EQ(Alloc.stats().FreeCalls, 1u);
}

TEST(CheckCorruptionTest, InvalidFreeIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Alloc.malloc(24);
  Alloc.free(HeapBase + 0x400); // never an object
  const CheckViolation *V = H.find(ViolationKind::InvalidFree);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Address, HeapBase + 0x400);
}

TEST(CheckCorruptionTest, SkippedCoalesceIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(32);
  Alloc.malloc(32);
  Alloc.free(A);

  Addr Node = firstFreeNode(H.Heap, Alloc.freelistSentinel());
  uint32_t Size = CoalescingAllocator::tagSize(H.Heap.peek32(Node));
  // Make the following block look free without putting it on the list —
  // exactly the state a skipped coalesce leaves behind.
  Addr NextHeader = Node + Size;
  H.Heap.poke32(NextHeader, H.Heap.peek32(NextHeader) & ~1u);
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::MissedCoalesce);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "FirstFit");
  EXPECT_EQ(V->Address, Node);
}

TEST(CheckCorruptionTest, MetadataStoreIntoLiveObjectIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(32);
  // A buggy allocator writing bookkeeping into a live object.
  H.Heap.store32(A + 8, 0x12345678, AccessSource::Allocator);

  const CheckViolation *V = H.find(ViolationKind::MetadataUserOverlap);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Address, A + 8);
  EXPECT_NE(V->message().find("live user data"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bus-level sanitizer checks
//===----------------------------------------------------------------------===//

TEST(CheckBusTest, UseAfterFreeIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(32);
  H.Bus.emit(A + 8, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_TRUE(H.Check.violations().empty()) << "live touch is legal";

  Alloc.free(A);
  H.Bus.emit(A + 8, 4, AccessKind::Read, AccessSource::Application);
  const CheckViolation *V = H.find(ViolationKind::UseAfterFree);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Address, A + 8);
  EXPECT_EQ(V->Source, AccessSource::Application);
}

TEST(CheckBusTest, ApplicationTouchOfMetadataIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Alloc.malloc(32);
  // An application load from a freelist sentinel word.
  H.Bus.emit(Alloc.freelistSentinel(), 4, AccessKind::Read,
             AccessSource::Application);
  const CheckViolation *V = H.find(ViolationKind::MetadataUserOverlap);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Address, Alloc.freelistSentinel());
}

TEST(CheckBusTest, WildAccessIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Alloc.malloc(16);
  // Interior of the never-allocated tail free block: within the segment
  // but neither object nor bookkeeping.
  Addr Tail = firstFreeNode(H.Heap, Alloc.freelistSentinel());
  H.Bus.emit(Tail + 16, 4, AccessKind::Write, AccessSource::Application);
  EXPECT_TRUE(H.has(ViolationKind::WildAccess));
}

TEST(CheckBusTest, OutOfSegmentAccessIsCaught) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Alloc.malloc(16);
  Addr Past = H.Heap.brk() + 64;
  H.Bus.emit(Past, 4, AccessKind::Read, AccessSource::Application);
  const CheckViolation *V = H.find(ViolationKind::OutOfSegment);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Address, Past);
}

TEST(CheckBusTest, StackAccessesAreIgnored) {
  CheckHarness H;
  FirstFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);
  H.Bus.emit(StackBase, 4, AccessKind::Write, AccessSource::Application);
  H.Bus.emit(StackBase + 512, 4, AccessKind::Read,
             AccessSource::Application);
  EXPECT_TRUE(H.Check.violations().empty());
}

//===----------------------------------------------------------------------===//
// Per-allocator walkers beyond the coalescing family
//===----------------------------------------------------------------------===//

TEST(CheckWalkerTest, BsdChainCorruptionIsCaught) {
  CheckHarness H;
  Bsd Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(20);
  Alloc.free(A);
  Addr Node = A - 4; // freed block heads its bucket's LIFO chain
  H.Heap.poke32(Node, 0xDEADBEEF); // clobber the next-free link
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::FreelistCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "BSD");
}

TEST(CheckWalkerTest, QuickFitHeaderForgeryIsCaught) {
  CheckHarness H;
  QuickFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(8);
  Alloc.free(A);
  Addr Node = A - 4;
  // Forge the persistent class header of the free fast block.
  H.Heap.poke32(Node, QuickFit::fastHeader(5));
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::SizeClassMismatch);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "QuickFit");
  EXPECT_EQ(V->Address, Node);
}

TEST(CheckWalkerTest, QuickFitDelegationStaysClean) {
  CheckHarness H;
  QuickFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  // Large requests delegate to the GNU G++ backend; the duplicate user
  // range annotations from the nested malloc/free must stay idempotent.
  Addr Big = Alloc.malloc(400);
  Addr Small = Alloc.malloc(12);
  Alloc.free(Big);
  Alloc.free(Small);
  Alloc.malloc(400);
  H.Check.runWalk();
  EXPECT_EQ(H.Check.violationCount(), 0u);
}

TEST(CheckWalkerTest, GnuLocalDescriptorCorruptionIsCaught) {
  CheckHarness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16); // a fragment; its block becomes Fragmented
  uint32_t Index = (A - H.Heap.base()) >> GnuLocal::BlockShift;
  Addr Desc = Alloc.descTableAddr() + 16 * Index;
  ASSERT_EQ(H.Heap.peek32(Desc), GnuLocal::TypeFragmented);
  H.Heap.poke32(Desc, 9); // unknown descriptor type
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::DescriptorCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "GnuLocal");
  EXPECT_EQ(V->Address, Desc);
}

TEST(CheckWalkerTest, GnuLocalFragmentAccountingIsCaught) {
  CheckHarness H;
  GnuLocal Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16);
  uint32_t Index = (A - H.Heap.base()) >> GnuLocal::BlockShift;
  Addr Desc = Alloc.descTableAddr() + 16 * Index;
  // Walk is clean before the descriptor's free count is tampered with.
  H.Check.runWalk();
  ASSERT_EQ(H.Check.violationCount(), 0u);
  H.Heap.poke32(Desc + 8, H.Heap.peek32(Desc + 8) - 1);
  H.Check.runWalk();
  EXPECT_TRUE(H.has(ViolationKind::AccountingMismatch));
}

TEST(CheckWalkerTest, BitmapFitAccountingTamperIsCaught) {
  CheckHarness H;
  BitmapFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16); // slot 0 of bucket 0's first slab
  Addr Slab = A - BitmapFit::SlabHeaderBytes;
  // Clear the live slot's occupancy bit: the bitmap population no longer
  // matches the used count (and the "free" slot overlaps a live object).
  H.Heap.poke32(Slab + 16, H.Heap.peek32(Slab + 16) & ~1u);
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::AccountingMismatch);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "BitmapFit");
}

TEST(CheckWalkerTest, BitmapFitHeaderForgeryIsCaught) {
  CheckHarness H;
  BitmapFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16);
  Addr Slab = A - BitmapFit::SlabHeaderBytes;
  // The slab map says bucket 0; a header claiming another bucket is forged.
  H.Heap.poke32(Slab, BitmapFit::slabHeaderWord(3));
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::DescriptorCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "BitmapFit");
}

TEST(CheckWalkerTest, BitmapFitTrailingBitClearIsCaught) {
  CheckHarness H;
  BitmapFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  // Bucket 15 has only 7 real slots; bits 7..31 are permanently set.
  Addr A = Alloc.malloc(512);
  Addr Slab = A - BitmapFit::SlabHeaderBytes;
  H.Heap.poke32(Slab + 16, H.Heap.peek32(Slab + 16) & ~(1u << 31));
  H.Check.runWalk();
  EXPECT_TRUE(H.has(ViolationKind::DescriptorCorrupt));
}

TEST(CheckWalkerTest, BitmapFitSlabListClobberIsCaught) {
  CheckHarness H;
  BitmapFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(16);
  Addr Slab = A - BitmapFit::SlabHeaderBytes;
  H.Heap.poke32(Slab + 8, 0x1234); // garbage next-slab link
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::FreelistCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "BitmapFit");
}

TEST(CheckWalkerTest, SpaceFitLinkClobberIsCaught) {
  CheckHarness H;
  SpaceFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(40);
  Alloc.free(A);
  Addr Node = firstFreeNode(H.Heap, Alloc.freelistSentinel());
  H.Heap.poke32(Node + 4, 0xDEADBEEF); // clobber the next link
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::FreelistCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "SpaceFit");
}

TEST(CheckWalkerTest, SpaceFitOrderViolationIsCaught) {
  CheckHarness H;
  SpaceFit Alloc(H.Heap, H.Cost);
  H.Check.attachAllocator(Alloc);

  // Two coalescing-fenced holes of different sizes plus the chunk tail:
  // at least three free blocks, sorted ascending.
  Addr Big = Alloc.malloc(200);
  Addr Guard1 = Alloc.malloc(40);
  Addr Small = Alloc.malloc(56);
  Addr Guard2 = Alloc.malloc(40);
  (void)Guard1;
  (void)Guard2;
  Alloc.free(Big);
  Alloc.free(Small);
  H.Check.runWalk();
  ASSERT_EQ(H.Check.violationCount(), 0u);

  // Swap the first two nodes: the list stays a perfectly well-formed
  // circular doubly-linked chain, but the size order is broken — only the
  // SpaceFit-specific sortedness invariant can see it.
  Addr S = Alloc.freelistSentinel();
  Addr N1 = H.Heap.peek32(S + 4);
  Addr N2 = H.Heap.peek32(N1 + 4);
  Addr N3 = H.Heap.peek32(N2 + 4);
  ASSERT_NE(N2, S);
  ASSERT_NE(N3, S);
  H.Heap.poke32(S + 4, N2);
  H.Heap.poke32(N2 + 8, S);
  H.Heap.poke32(N2 + 4, N1);
  H.Heap.poke32(N1 + 8, N2);
  H.Heap.poke32(N1 + 4, N3);
  H.Heap.poke32(N3 + 8, N1);
  H.Check.runWalk();

  const CheckViolation *V = H.find(ViolationKind::FreelistCorrupt);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AllocatorName, "SpaceFit");
}

//===----------------------------------------------------------------------===//
// Abort mode
//===----------------------------------------------------------------------===//

TEST(CheckAbortDeathTest, FirstViolationIsFatalByDefault) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  CheckPolicy Policy;
  Policy.Level = CheckLevel::Fast;
  HeapCheck Check(Policy, Heap, Bus);
  FirstFit Alloc(Heap, Cost);
  Check.attachAllocator(Alloc);

  Addr A = Alloc.malloc(24);
  Alloc.free(A);
  EXPECT_DEATH(Alloc.free(A), "double free");
}

//===----------------------------------------------------------------------===//
// Lab integration: full workloads, every allocator, zero violations
//===----------------------------------------------------------------------===//

TEST(CheckLabTest, FullCheckCleanForEveryAllocator) {
  for (AllocatorKind Kind :
       {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
        AllocatorKind::GnuGxx, AllocatorKind::Bsd, AllocatorKind::GnuLocal,
        AllocatorKind::BestFit, AllocatorKind::Custom,
        AllocatorKind::BitmapFit, AllocatorKind::SpaceFit}) {
    ExperimentConfig Config;
    Config.Workload = WorkloadId::Espresso;
    Config.Allocator = Kind;
    Config.Engine.Scale = 256;
    Config.Check.Level = CheckLevel::Full;
    Config.Check.IntervalOps = 64;
    RunResult Result = runExperiment(Config);
    EXPECT_EQ(Result.CheckViolations, 0u)
        << allocatorKindName(Kind) << ": "
        << (Result.CheckReports.empty() ? "" : Result.CheckReports.front());
    EXPECT_GT(Result.CheckWalks, 1u) << allocatorKindName(Kind);
  }
}

TEST(CheckLabTest, CheckingLeavesMeasurementsBitIdentical) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Cfrac;
  Config.Allocator = AllocatorKind::GnuGxx;
  Config.Engine.Scale = 128;
  Config.Caches.push_back({16 * 1024, 32, 1});
  RunResult Off = runExperiment(Config);

  Config.Check.Level = CheckLevel::Full;
  Config.Check.IntervalOps = 32;
  RunResult Full = runExperiment(Config);

  EXPECT_EQ(Off.TotalRefs, Full.TotalRefs);
  EXPECT_EQ(Off.AppRefs, Full.AppRefs);
  EXPECT_EQ(Off.AllocRefs, Full.AllocRefs);
  EXPECT_EQ(Off.AppInstructions, Full.AppInstructions);
  EXPECT_EQ(Off.AllocInstructions, Full.AllocInstructions);
  EXPECT_EQ(Off.HeapBytes, Full.HeapBytes);
  ASSERT_EQ(Off.Caches.size(), Full.Caches.size());
  EXPECT_EQ(Off.Caches[0].Stats.Misses, Full.Caches[0].Stats.Misses);
  EXPECT_EQ(Off.Caches[0].Stats.Accesses, Full.Caches[0].Stats.Accesses);
  EXPECT_GT(Full.CheckWalks, 0u);
}
