//===- tests/metrics_test.cpp - Cost model and time estimate tests --------===//

#include "metrics/CostModel.h"

#include <gtest/gtest.h>

using namespace allocsim;

TEST(CostModelTest, SplitsAppAndAllocator) {
  CostModel Cost;
  Cost.chargeApp(700);
  Cost.chargeAlloc(300);
  EXPECT_EQ(Cost.appInstructions(), 700u);
  EXPECT_EQ(Cost.allocInstructions(), 300u);
  EXPECT_EQ(Cost.totalInstructions(), 1000u);
  EXPECT_DOUBLE_EQ(Cost.allocFraction(), 0.3);
}

TEST(CostModelTest, EmptyFractionIsZero) {
  CostModel Cost;
  EXPECT_DOUBLE_EQ(Cost.allocFraction(), 0.0);
}

TEST(CostModelTest, ResetClears) {
  CostModel Cost;
  Cost.chargeApp(5);
  Cost.chargeAlloc(5);
  Cost.reset();
  EXPECT_EQ(Cost.totalInstructions(), 0u);
}

TEST(TimeEstimateTest, PaperFormula) {
  // T = I + (M x P) x D: 1e6 instructions, 5e5 refs at 2% misses and a
  // 25-cycle penalty -> 1e6 + 0.02 * 25 * 5e5 = 1.25e6 cycles.
  TimeEstimate Time;
  Time.Instructions = 1000000;
  Time.DataRefs = 500000;
  Time.MissRate = 0.02;
  Time.MissPenalty = 25;
  EXPECT_DOUBLE_EQ(Time.missCycles(), 250000.0);
  EXPECT_DOUBLE_EQ(Time.totalCycles(), 1250000.0);
}

TEST(TimeEstimateTest, SecondsAtPaperClock) {
  // The paper's DECstation 5000/120 runs at 25 MHz: 25e6 cycles = 1 s.
  TimeEstimate Time;
  Time.Instructions = 25000000;
  Time.DataRefs = 0;
  Time.MissRate = 0.0;
  EXPECT_DOUBLE_EQ(Time.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(Time.missSeconds(), 0.0);
}

TEST(TimeEstimateTest, PenaltyScalesMissCyclesLinearly) {
  TimeEstimate Time;
  Time.Instructions = 0;
  Time.DataRefs = 1000;
  Time.MissRate = 0.1;
  Time.MissPenalty = 25;
  double At25 = Time.missCycles();
  Time.MissPenalty = 100;
  EXPECT_DOUBLE_EQ(Time.missCycles(), 4.0 * At25);
}

TEST(TimeEstimateTest, ZeroMissRateCostsNothing) {
  TimeEstimate Time;
  Time.Instructions = 42;
  Time.DataRefs = 1u << 30;
  Time.MissRate = 0.0;
  EXPECT_DOUBLE_EQ(Time.totalCycles(), 42.0);
}
