//===- tests/cli_matrix_test.cpp - Spec parsing & CLI contract tests ------===//
//
// Covers the strict --caches/--paging/--matrix parsing (the old splitList
// silently swallowed empty items, trailing commas, and other malformed
// specs) at two levels: the parse functions directly, and the installed
// allocsim_cli binary as a subprocess — bad specs must exit nonzero with a
// diagnostic, good specs must run and emit valid JSON.
//
//===----------------------------------------------------------------------===//

#include "core/MatrixRunner.h"
#include "support/SpecParse.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace allocsim;

#ifndef ALLOCSIM_CLI_PATH
#error "ALLOCSIM_CLI_PATH must point at the allocsim_cli binary"
#endif

namespace {

/// Runs the CLI with \p Args, discarding output; returns the exit status.
int runCli(const std::string &Args) {
  std::string Command =
      std::string(ALLOCSIM_CLI_PATH) + " " + Args + " >/dev/null 2>&1";
  int Status = std::system(Command.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Runs the CLI and captures combined stdout+stderr.
int runCliCapture(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string(ALLOCSIM_CLI_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  char Buffer[512];
  Output.clear();
  while (std::fgets(Buffer, sizeof(Buffer), Pipe))
    Output += Buffer;
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parse-layer coverage
//===----------------------------------------------------------------------===//

TEST(SpecParseTest, SplitKeepsEmptyItems) {
  EXPECT_EQ(splitSpecList("", ',').size(), 0u);
  EXPECT_EQ(splitSpecList("16", ',').size(), 1u);
  EXPECT_EQ(splitSpecList("16,64", ',').size(), 2u);
  // The point of the fix: malformed lists stay visible.
  EXPECT_EQ(splitSpecList("16,,64", ',').size(), 3u);
  EXPECT_EQ(splitSpecList("16,", ',').size(), 2u);
  EXPECT_EQ(splitSpecList(",16", ',').size(), 2u);
}

TEST(SpecParseTest, UnsignedDiagnostics) {
  uint32_t Value = 0;
  std::string Error;
  EXPECT_TRUE(parseSpecUnsigned("512", "memory size (KB)", Value, Error));
  EXPECT_EQ(Value, 512u);

  EXPECT_FALSE(parseSpecUnsigned("", "memory size (KB)", Value, Error));
  EXPECT_NE(Error.find("missing"), std::string::npos);

  EXPECT_FALSE(parseSpecUnsigned("12abc", "memory size (KB)", Value, Error));
  EXPECT_NE(Error.find("12abc"), std::string::npos);

  EXPECT_FALSE(parseSpecUnsigned("0", "memory size (KB)", Value, Error));
  EXPECT_NE(Error.find("positive"), std::string::npos);

  EXPECT_FALSE(
      parseSpecUnsigned("99999999999", "memory size (KB)", Value, Error));
  EXPECT_NE(Error.find("out of range"), std::string::npos);
}

TEST(SpecParseTest, UnsignedListDiagnostics) {
  std::vector<uint32_t> Values;
  std::string Error;
  EXPECT_TRUE(parseSpecUnsignedList("", "KB", Values, Error));
  EXPECT_TRUE(Values.empty());
  EXPECT_TRUE(parseSpecUnsignedList("512,1024,2048", "KB", Values, Error));
  EXPECT_EQ(Values.size(), 3u);

  EXPECT_FALSE(parseSpecUnsignedList("512,,1024", "KB", Values, Error));
  EXPECT_NE(Error.find("empty item"), std::string::npos);
  EXPECT_FALSE(parseSpecUnsignedList("512,", "KB", Values, Error));
  EXPECT_NE(Error.find("empty item"), std::string::npos);
  EXPECT_FALSE(parseSpecUnsignedList("512,slow", "KB", Values, Error));
  EXPECT_NE(Error.find("slow"), std::string::npos);
}

TEST(SpecParseTest, CacheSpecDiagnostics) {
  CacheConfig Config;
  std::string Error;
  EXPECT_TRUE(parseCacheSpec("16", Config, Error));
  EXPECT_EQ(Config.SizeBytes, 16u * 1024);
  EXPECT_EQ(Config.BlockBytes, 32u);
  EXPECT_EQ(Config.Assoc, 1u);
  EXPECT_TRUE(parseCacheSpec("64:16:4", Config, Error));
  EXPECT_EQ(Config.BlockBytes, 16u);
  EXPECT_EQ(Config.Assoc, 4u);

  EXPECT_FALSE(parseCacheSpec("16:32:4:9", Config, Error));
  EXPECT_NE(Error.find("expected sizeKB"), std::string::npos);
  EXPECT_FALSE(parseCacheSpec("16KB", Config, Error));
  EXPECT_NE(Error.find("not a number"), std::string::npos);
  // Power-of-two geometry violations are caught at parse time.
  EXPECT_FALSE(parseCacheSpec("17", Config, Error));
  EXPECT_NE(Error.find("invalid cache geometry"), std::string::npos);
  EXPECT_FALSE(parseCacheSpec("16:33", Config, Error));
  EXPECT_NE(Error.find("invalid cache geometry"), std::string::npos);

  std::vector<CacheConfig> Caches;
  EXPECT_TRUE(parseCacheList("", Caches, Error));
  EXPECT_TRUE(Caches.empty());
  EXPECT_TRUE(parseCacheList("16,64:32:2", Caches, Error));
  EXPECT_EQ(Caches.size(), 2u);
  EXPECT_FALSE(parseCacheList("16,", Caches, Error));
  EXPECT_NE(Error.find("empty item"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CLI contract: exit codes and diagnostics
//===----------------------------------------------------------------------===//

TEST(CliMatrixTest, MalformedSpecsExitNonzeroWithDiagnostic) {
  struct BadInvocation {
    const char *Args;
    const char *ExpectInMessage;
  };
  const BadInvocation Bad[] = {
      {"--caches 16,,64", "empty item"},
      {"--caches 16,", "empty item"},
      {"--caches 16KB", "not a number"},
      {"--caches 17", "invalid cache geometry"},
      {"--paging 512,", "empty item"},
      {"--paging 512,slow", "not a number"},
      {"--paging 0", "positive"},
      {"--workload quake", "unknown workload"},
      {"--allocators FirstFit,Nope", "unknown allocator"},
      {"--matrix workloads=gs", "at least one allocator"},
      {"--matrix \"workloads=gs;allocators=BSD;caches=16,\"", "empty item"},
  };
  for (const BadInvocation &Invocation : Bad) {
    std::string Output;
    int Exit = runCliCapture(Invocation.Args, Output);
    EXPECT_EQ(Exit, 2) << Invocation.Args << "\n" << Output;
    EXPECT_NE(Output.find("allocsim_cli: error:"), std::string::npos)
        << Invocation.Args << "\n" << Output;
    EXPECT_NE(Output.find(Invocation.ExpectInMessage), std::string::npos)
        << Invocation.Args << "\n" << Output;
  }
}

TEST(CliMatrixTest, GoodRunEmitsParseableJsonAndExitsZero) {
  std::string JsonPath = testing::TempDir() + "cli_matrix_test_out.json";
  int Exit = runCli(
      "--matrix \"workloads=espresso;allocators=FirstFit,BSD;caches=16\" "
      "--scale 512 --jobs 2 --out-json " +
      JsonPath);
  EXPECT_EQ(Exit, 0);

  std::ifstream In(JsonPath);
  ASSERT_TRUE(In) << "CLI did not write " << JsonPath;
  std::ostringstream Content;
  Content << In.rdbuf();
  std::string Json = Content.str();
  EXPECT_NE(Json.find("\"schema\": \"allocsim-matrix-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"allocator\": \"BSD\""), std::string::npos);
  // Structural sanity: balanced braces/brackets, object at top level.
  long Braces = 0, Brackets = 0;
  bool InString = false;
  for (size_t I = 0; I != Json.size(); ++I) {
    char C = Json[I];
    if (C == '"' && (I == 0 || Json[I - 1] != '\\'))
      InString = !InString;
    if (InString)
      continue;
    Braces += C == '{' ? 1 : C == '}' ? -1 : 0;
    Brackets += C == '[' ? 1 : C == ']' ? -1 : 0;
  }
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
  EXPECT_EQ(Json.front(), '{');
  std::remove(JsonPath.c_str());
}

TEST(CliMatrixTest, LegacySingleWorkloadFlagsStillWork) {
  int Exit = runCli("--workload make --allocators QuickFit --caches 16 "
                    "--scale 512");
  EXPECT_EQ(Exit, 0);
}
