//===- tests/benchcommon_test.cpp - Bench harness + paper-data tests ------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Coverage for the shared benchmark harness (bench/BenchCommon): the common
// flag parsing, the PaperData transcription the benches print beside
// measured values, and — via death tests — runBenchMatrix's fatal paths,
// which previously had no test exercising them: a failed cell must die with
// the cell's coordinates in the message, and an unwritable --out-json path
// must die naming the path.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "PaperData.h"

#include "support/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace allocsim;

namespace {

std::optional<BenchOptions> parseArgs(std::vector<const char *> Argv) {
  Argv.insert(Argv.begin(), "bench_test");
  CommandLine Cli;
  return parseBenchOptions(static_cast<int>(Argv.size()), Argv.data(), Cli);
}

//===----------------------------------------------------------------------===//
// Common flag parsing
//===----------------------------------------------------------------------===//

TEST(BenchOptionsTest, DefaultsMatchDocumentation) {
  std::optional<BenchOptions> Options = parseArgs({});
  ASSERT_TRUE(Options.has_value());
  EXPECT_EQ(Options->Scale, 8u);
  EXPECT_EQ(Options->Seed, 1592932958u);
  EXPECT_FALSE(Options->Csv);
  EXPECT_EQ(Options->Jobs, 0u);
  EXPECT_TRUE(Options->OutJson.empty());
  EXPECT_EQ(Options->Telemetry, TelemetryLevel::Off);
  EXPECT_TRUE(Options->OutTelemetryJson.empty());
}

TEST(BenchOptionsTest, FlagsOverrideDefaults) {
  std::optional<BenchOptions> Options =
      parseArgs({"--scale=16", "--seed=7", "--csv=true", "--jobs=2",
                 "--out-json=matrix.json", "--telemetry=summary",
                 "--out-telemetry-json=telemetry.json"});
  ASSERT_TRUE(Options.has_value());
  EXPECT_EQ(Options->Scale, 16u);
  EXPECT_EQ(Options->Seed, 7u);
  EXPECT_TRUE(Options->Csv);
  EXPECT_EQ(Options->Jobs, 2u);
  EXPECT_EQ(Options->OutJson, "matrix.json");
  EXPECT_EQ(Options->Telemetry, TelemetryLevel::Summary);
  EXPECT_EQ(Options->OutTelemetryJson, "telemetry.json");
}

TEST(BenchOptionsTest, BadTelemetryLevelIsRejected) {
  EXPECT_FALSE(parseArgs({"--telemetry=verbose"}).has_value());
}

TEST(BenchOptionsTest, HelpExitsWithoutOptions) {
  EXPECT_FALSE(parseArgs({"--help"}).has_value());
}

TEST(BenchOptionsTest, BaseConfigCarriesTheCommonKnobs) {
  std::optional<BenchOptions> Options =
      parseArgs({"--scale=32", "--seed=99", "--telemetry=full"});
  ASSERT_TRUE(Options.has_value());
  ExperimentConfig Config = baseConfig(WorkloadId::Gawk, *Options);
  EXPECT_EQ(Config.Workload, WorkloadId::Gawk);
  EXPECT_EQ(Config.Engine.Scale, 32u);
  EXPECT_EQ(Config.Engine.Seed, 99u);
  EXPECT_EQ(Config.Telemetry, TelemetryLevel::Full);
}

TEST(BenchOptionsTest, FormatRateUsesScientificNotation) {
  EXPECT_EQ(formatRate(0.00123), "1.230e-03");
  EXPECT_EQ(formatRate(0.0), "0.000e+00");
}

//===----------------------------------------------------------------------===//
// The PaperData transcription (Tables 4 and 5)
//===----------------------------------------------------------------------===//

TEST(PaperDataTest, ScanGapsAreExactlyWhereDocumented) {
  // Table 4 lost FIRSTFIT's ptc/gawk/make entries to the scan; Table 5
  // lost FIRSTFIT's gs entry. Everything else is transcribed. Pinning the
  // exact gap set means a transcription edit cannot silently drop a value.
  size_t Unknown4 = 0, Unknown5 = 0;
  for (int Row = 0; Row != 5; ++Row)
    for (int Col = 0; Col != 5; ++Col) {
      Unknown4 += PaperTable4[Row][Col].known() ? 0 : 1;
      Unknown5 += PaperTable5[Row][Col].known() ? 0 : 1;
    }
  EXPECT_EQ(Unknown4, 3u);
  EXPECT_EQ(Unknown5, 1u);
  EXPECT_FALSE(PaperTable4[0][2].known()); // ptc
  EXPECT_FALSE(PaperTable4[0][3].known()); // gawk
  EXPECT_FALSE(PaperTable4[0][4].known()); // make
  EXPECT_FALSE(PaperTable5[0][1].known()); // gs
}

TEST(PaperDataTest, MissSecondsAreASubsetOfTotalSeconds) {
  for (int Row = 0; Row != 5; ++Row)
    for (int Col = 0; Col != 5; ++Col)
      for (const PaperTime &Entry :
           {PaperTable4[Row][Col], PaperTable5[Row][Col]})
        if (Entry.known()) {
          EXPECT_GT(Entry.TotalSeconds, 0.0);
          EXPECT_GE(Entry.MissSeconds, 0.0);
          EXPECT_LT(Entry.MissSeconds, Entry.TotalSeconds);
        }
}

TEST(PaperDataTest, SpotCheckAgainstThePublishedTables) {
  // Corner values straight from the paper: Table 4 espresso/FIRSTFIT
  // 199.67/43.01 and Table 5 make/GNU-local 3.60/0.05.
  EXPECT_DOUBLE_EQ(PaperTable4[0][0].TotalSeconds, 199.67);
  EXPECT_DOUBLE_EQ(PaperTable4[0][0].MissSeconds, 43.01);
  EXPECT_DOUBLE_EQ(PaperTable5[4][4].TotalSeconds, 3.60);
  EXPECT_DOUBLE_EQ(PaperTable5[4][4].MissSeconds, 0.05);
}

//===----------------------------------------------------------------------===//
// runBenchMatrix: the happy path and both fatal paths
//===----------------------------------------------------------------------===//

BenchOptions tinyRunOptions() {
  BenchOptions Options;
  Options.Scale = 1024; // the smallest run the harness supports
  Options.Jobs = 1;
  return Options;
}

TEST(RunBenchMatrixTest, RunsAllPaperAllocatorsAndExportsJson) {
  std::string OutPath = ::testing::TempDir() + "/benchcommon_matrix.json";
  BenchOptions Options = tinyRunOptions();
  Options.OutJson = OutPath;

  ResultStore Store = runBenchMatrix({WorkloadId::Make}, {}, Options);
  EXPECT_EQ(Store.size(), 5u);
  EXPECT_EQ(Store.failedCount(), 0u);
  EXPECT_EQ(Store.spec().Allocators.size(), 5u);

  std::ifstream In(OutPath);
  ASSERT_TRUE(In.good());
  std::ostringstream Text;
  Text << In.rdbuf();
  JsonValue Root;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Text.str(), Root, Error)) << Error;
  ASSERT_NE(Root.get("schema"), nullptr);
  EXPECT_EQ(Root.get("schema")->stringValue(), "allocsim-matrix-v1");
  std::remove(OutPath.c_str());
}

TEST(RunBenchMatrixTest, FailedCellDiesWithCellAttribution) {
  BenchOptions Options = tinyRunOptions();
  Options.Scale = 0; // fails cell validation: scale must be positive
  EXPECT_DEATH(runBenchMatrix({WorkloadId::Make}, {}, Options),
               "bench matrix cell failed: workload make, allocator "
               "FirstFit: engine scale must be positive");
}

TEST(RunBenchMatrixTest, UnwritableJsonExportDiesNamingThePath) {
  BenchOptions Options = tinyRunOptions();
  Options.OutJson = "/nonexistent-dir/matrix.json";
  EXPECT_DEATH(runBenchMatrix({WorkloadId::Make}, {}, Options),
               "cannot write '/nonexistent-dir/matrix.json'");
}

TEST(RunBenchMatrixTest, UnwritableTelemetryExportDiesNamingThePath) {
  BenchOptions Options = tinyRunOptions();
  Options.OutTelemetryJson = "/nonexistent-dir/telemetry.json";
  EXPECT_DEATH(runBenchMatrix({WorkloadId::Make}, {}, Options),
               "cannot write '/nonexistent-dir/telemetry.json'");
}

} // namespace
