//===- tests/integration_test.cpp - Cross-module integration tests --------===//

#include "core/Lab.h"
#include "trace/RefTrace.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace allocsim;

TEST(IntegrationTest, CapturedTraceReplaysToIdenticalCacheResults) {
  // Execution-driven and trace-driven simulation must agree exactly: run a
  // workload once writing a binary trace, then replay the trace into a
  // fresh cache and compare miss counts.
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;

  DirectMappedCache LiveCache({16 * 1024, 32, 1});
  std::stringstream TraceBuffer;
  BinaryTraceWriter Writer(TraceBuffer);
  Bus.attach(&LiveCache);
  Bus.attach(&Writer);

  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::GnuGxx, Heap, Cost);
  const AppProfile &Profile = getProfile(WorkloadId::Make);
  EngineOptions Options;
  Options.Scale = 4;
  WorkloadEngine Engine(Profile, Options);
  Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
  Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });

  ASSERT_GT(Writer.written(), 100000u);

  DirectMappedCache ReplayCache({16 * 1024, 32, 1});
  BinaryTraceReader Reader(TraceBuffer);
  uint64_t Replayed = replayTrace(Reader, ReplayCache);

  EXPECT_EQ(Replayed, Writer.written());
  EXPECT_EQ(ReplayCache.stats().Accesses, LiveCache.stats().Accesses);
  EXPECT_EQ(ReplayCache.stats().Misses, LiveCache.stats().Misses);
}

TEST(IntegrationTest, EventScriptReplayGivesIdenticalAllocatorState) {
  // Capturing the event stream to its text form and replaying it against a
  // fresh allocator must reproduce the heap exactly.
  const AppProfile &Profile = getProfile(WorkloadId::Gawk);
  EngineOptions Options;
  Options.Scale = 256;
  Options.ClampScaleForLiveHeap = false;
  WorkloadEngine Engine(Profile, Options);
  std::vector<AllocEvent> Events = Engine.generateAll();

  std::stringstream Script;
  writeAllocEvents(Script, Events);
  std::vector<AllocEvent> Reloaded = readAllocEvents(Script);
  ASSERT_EQ(Reloaded, Events);

  auto RunEvents = [&](const std::vector<AllocEvent> &Stream) {
    MemoryBus Bus;
    SimHeap Heap(Bus);
    CostModel Cost;
    std::unique_ptr<Allocator> Alloc =
        createAllocator(AllocatorKind::FirstFit, Heap, Cost);
    Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
    for (const AllocEvent &Event : Stream)
      Drive.execute(Event);
    return std::pair<uint32_t, uint64_t>(Alloc->heapBytes(),
                                         Bus.totalAccesses());
  };
  EXPECT_EQ(RunEvents(Events), RunEvents(Reloaded));
}

TEST(IntegrationTest, CacheAndPagingObserveSameStream) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Make;
  Config.Allocator = AllocatorKind::Bsd;
  Config.Engine.Scale = 4;
  Config.Caches = {CacheConfig{64 * 1024, 32, 1}};
  Config.PagingMemoryKb = {4096};
  RunResult Result = runExperiment(Config);
  // Word-sized accesses never straddle: cache accesses == bus refs, and
  // the page simulator saw the same stream.
  EXPECT_EQ(Result.Caches[0].Stats.Accesses, Result.TotalRefs);
  EXPECT_GT(Result.DistinctPages, 10u);
  // With memory as large as the whole address space used, only cold
  // faults remain: faults/ref <= distinct pages / refs.
  EXPECT_LE(Result.Paging[0].FaultsPerRef,
            double(Result.DistinctPages) / double(Result.TotalRefs) + 1e-12);
}

TEST(IntegrationTest, PaperShapeFirstFitHasWorstLocality) {
  // The paper's headline, at reduced scale: FIRSTFIT's miss rate exceeds
  // every segregated-storage allocator's on the fragmentation-heavy
  // GhostScript workload.
  ExperimentConfig Config;
  Config.Workload = WorkloadId::GsSmall;
  Config.Allocator = AllocatorKind::FirstFit;
  Config.Engine.Scale = 8;
  Config.Caches = {CacheConfig{16 * 1024, 32, 1}};
  RunResult FirstFit = runExperiment(Config);

  for (AllocatorKind Kind : {AllocatorKind::QuickFit, AllocatorKind::Bsd,
                             AllocatorKind::GnuLocal}) {
    Config.Allocator = Kind;
    RunResult Other = runExperiment(Config);
    EXPECT_GT(FirstFit.Caches[0].Stats.missRate(),
              Other.Caches[0].Stats.missRate())
        << allocatorKindName(Kind);
  }
}

TEST(IntegrationTest, PaperShapeBsdIsInstructionLeanest) {
  // Figure 1: BSD spends the smallest fraction of instructions in
  // malloc/free; GNU LOCAL the largest among the segregated allocators.
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Espresso;
  Config.Engine.Scale = 32;
  std::vector<RunResult> Results =
      runSweep(Config, {PaperAllocators, PaperAllocators + 5});
  // PaperAllocators order: FirstFit, QuickFit, GnuGxx, Bsd, GnuLocal.
  const RunResult &Bsd = Results[3];
  for (size_t I = 0; I != Results.size(); ++I) {
    if (I != 3) {
      EXPECT_LT(Bsd.allocInstrFraction(), Results[I].allocInstrFraction());
    }
  }
  const RunResult &GnuLocal = Results[4];
  EXPECT_GT(GnuLocal.allocInstrFraction(),
            Results[1].allocInstrFraction()); // vs QuickFit
  EXPECT_GT(GnuLocal.allocInstrFraction(),
            Results[3].allocInstrFraction()); // vs BSD
}

TEST(IntegrationTest, PaperShapeBoundaryTagsCostLittle) {
  // Table 6: emulated boundary tags on GNU LOCAL raise the miss penalty's
  // share of execution time by a small amount (0.1% - ~2%).
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Espresso;
  Config.Allocator = AllocatorKind::GnuLocal;
  Config.Engine.Scale = 16;
  Config.Caches = {CacheConfig{64 * 1024, 32, 1}};

  RunResult Plain = runExperiment(Config);
  Config.EmulateBoundaryTags = true;
  RunResult Tagged = runExperiment(Config);

  double PlainSeconds = Plain.estimatedSeconds(0);
  double TaggedSeconds = Tagged.estimatedSeconds(0);
  EXPECT_GT(TaggedSeconds, PlainSeconds) << "tags must not be free";
  EXPECT_LT(TaggedSeconds, PlainSeconds * 1.08)
      << "tags must stay a minor cost, as in Table 6";
}

TEST(IntegrationTest, BiggerCachesNeverHurtAcrossAllocators) {
  ExperimentConfig Config;
  Config.Workload = WorkloadId::Gawk;
  Config.Engine.Scale = 64;
  Config.Caches = paperCacheSweep();
  for (AllocatorKind Kind : PaperAllocators) {
    Config.Allocator = Kind;
    RunResult Result = runExperiment(Config);
    for (size_t I = 1; I < Result.Caches.size(); ++I)
      EXPECT_LE(Result.Caches[I].Stats.missRate(),
                Result.Caches[I - 1].Stats.missRate() * 1.02)
          << allocatorKindName(Kind) << " cache " << I;
  }
}
