//===- tests/support_test.cpp - Support library tests ---------------------===//

#include "support/CommandLine.h"
#include "support/Histogram.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace allocsim;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng R(9);
  bool Seen[5] = {};
  for (int I = 0; I < 500; ++I)
    Seen[R.nextBelow(5)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(11);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng R(13);
  double Sum = 0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.nextExponential(8.0);
  EXPECT_NEAR(Sum / N, 8.0, 0.3);
}

TEST(RngTest, BoolProbability) {
  Rng R(17);
  int True = 0;
  for (int I = 0; I < 10000; ++I)
    True += R.nextBool(0.3);
  EXPECT_NEAR(True / 10000.0, 0.3, 0.02);
}

//===----------------------------------------------------------------------===//
// DiscreteDistribution
//===----------------------------------------------------------------------===//

TEST(DiscreteDistributionTest, MatchesWeights) {
  DiscreteDistribution Dist({1.0, 3.0, 6.0});
  Rng R(23);
  int Counts[3] = {};
  constexpr int N = 60000;
  for (int I = 0; I < N; ++I)
    ++Counts[Dist.sample(R)];
  EXPECT_NEAR(Counts[0] / double(N), 0.1, 0.01);
  EXPECT_NEAR(Counts[1] / double(N), 0.3, 0.015);
  EXPECT_NEAR(Counts[2] / double(N), 0.6, 0.015);
}

TEST(DiscreteDistributionTest, SingleBucket) {
  DiscreteDistribution Dist({5.0});
  Rng R(1);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Dist.sample(R), 0u);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  DiscreteDistribution Dist({1.0, 0.0, 1.0});
  Rng R(3);
  for (int I = 0; I < 2000; ++I)
    EXPECT_NE(Dist.sample(R), 1u);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, CountsAndTotal) {
  Histogram H;
  H.add(8, 3);
  H.add(16);
  H.add(8);
  EXPECT_EQ(H.count(8), 4u);
  EXPECT_EQ(H.count(16), 1u);
  EXPECT_EQ(H.count(99), 0u);
  EXPECT_EQ(H.total(), 5u);
  EXPECT_EQ(H.distinct(), 2u);
}

TEST(HistogramTest, TopKeysOrdersByFrequencyThenKey) {
  Histogram H;
  H.add(24, 10);
  H.add(8, 10);
  H.add(16, 30);
  H.add(32, 1);
  std::vector<uint64_t> Top = H.topKeys(3);
  ASSERT_EQ(Top.size(), 3u);
  EXPECT_EQ(Top[0], 16u);
  EXPECT_EQ(Top[1], 8u);  // ties break toward smaller keys
  EXPECT_EQ(Top[2], 24u);
}

TEST(HistogramTest, TopKeysClampsToDistinct) {
  Histogram H;
  H.add(1);
  EXPECT_EQ(H.topKeys(10).size(), 1u);
}

TEST(HistogramTest, QuantileKey) {
  Histogram H;
  H.add(10, 50);
  H.add(20, 40);
  H.add(30, 10);
  EXPECT_EQ(H.quantileKey(0.5), 10u);
  EXPECT_EQ(H.quantileKey(0.9), 20u);
  EXPECT_EQ(H.quantileKey(1.0), 30u);
}

TEST(HistogramTest, IterationIsSortedByKey) {
  Histogram H;
  H.add(30);
  H.add(10);
  H.add(20);
  uint64_t Prev = 0;
  for (const auto &[Key, Count] : H) {
    EXPECT_GT(Key, Prev);
    Prev = Key;
  }
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersAlignedText) {
  Table T({"name", "value"});
  T.beginRow();
  T.cell("a");
  T.num(uint64_t(42));
  T.beginRow();
  T.cell("longer");
  T.num(3.14159, 2);
  std::ostringstream OS;
  T.renderText(OS, "title");
  std::string Out = OS.str();
  EXPECT_NE(Out.find("title"), std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("42"), std::string::npos);
  EXPECT_NE(Out.find("3.14"), std::string::npos);
}

TEST(TableTest, RendersCsv) {
  Table T({"a", "b"});
  T.beginRow();
  T.num(uint64_t(1));
  T.num(uint64_t(2));
  std::ostringstream OS;
  T.renderCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(formatDouble(1.25, 1), "1.2");
  EXPECT_EQ(formatDouble(0.5, 3), "0.500");
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, ParsesFlagsAndPositional) {
  CommandLine Cli;
  Cli.addFlag("alpha", "1", "");
  Cli.addFlag("beta", "x", "");
  const char *Argv[] = {"prog", "--alpha=7", "pos1", "--beta", "hello"};
  ASSERT_TRUE(Cli.parse(5, Argv));
  EXPECT_EQ(Cli.getInt("alpha"), 7);
  EXPECT_EQ(Cli.getString("beta"), "hello");
  ASSERT_EQ(Cli.positional().size(), 1u);
  EXPECT_EQ(Cli.positional()[0], "pos1");
}

TEST(CommandLineTest, DefaultsApply) {
  CommandLine Cli;
  Cli.addFlag("gamma", "2.5", "");
  const char *Argv[] = {"prog"};
  ASSERT_TRUE(Cli.parse(1, Argv));
  EXPECT_DOUBLE_EQ(Cli.getDouble("gamma"), 2.5);
}

TEST(CommandLineTest, UnknownFlagFails) {
  CommandLine Cli;
  Cli.addFlag("known", "", "");
  const char *Argv[] = {"prog", "--unknown=1"};
  EXPECT_FALSE(Cli.parse(2, Argv));
}

TEST(CommandLineTest, BoolParsing) {
  CommandLine Cli;
  Cli.addFlag("flag", "false", "");
  const char *Argv[] = {"prog", "--flag=true"};
  ASSERT_TRUE(Cli.parse(2, Argv));
  EXPECT_TRUE(Cli.getBool("flag"));
}

TEST(CommandLineTest, HelpReturnsFalse) {
  CommandLine Cli;
  const char *Argv[] = {"prog", "--help"};
  EXPECT_FALSE(Cli.parse(2, Argv));
}
