//===- tests/mem_test.cpp - SimHeap / MemoryBus tests ---------------------===//

#include "mem/SimHeap.h"
#include "trace/RefTrace.h"

#include <gtest/gtest.h>

using namespace allocsim;

TEST(MemoryBusTest, CountsBySourceAndKind) {
  MemoryBus Bus;
  Bus.emit(0x1000, 4, AccessKind::Read, AccessSource::Application);
  Bus.emit(0x1004, 4, AccessKind::Write, AccessSource::Allocator);
  Bus.emit(0x1008, 4, AccessKind::Read, AccessSource::Allocator);
  Bus.emit(0x100c, 4, AccessKind::Write, AccessSource::TagEmulation);

  EXPECT_EQ(Bus.totalAccesses(), 4u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::Application), 1u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::Allocator), 2u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::TagEmulation), 1u);
  EXPECT_EQ(Bus.reads(), 2u);
  EXPECT_EQ(Bus.writes(), 2u);
}

TEST(MemoryBusTest, FansOutToAllSinks) {
  MemoryBus Bus;
  CollectingSink A, B;
  Bus.attach(&A);
  Bus.attach(&B);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
  EXPECT_EQ(B.records().size(), 1u);
  EXPECT_EQ(A.records()[0].Address, 0x2000u);
}

TEST(MemoryBusTest, DetachStopsDelivery) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  Bus.detach(&A);
  Bus.emit(0x2004, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
}

TEST(MemoryBusTest, DuplicateAttachDeliversOnce) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
}

TEST(MemoryBusTest, ResetCountersKeepsSinks) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  Bus.resetCounters();
  EXPECT_EQ(Bus.totalAccesses(), 0u);
  Bus.emit(0x2004, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 2u);
}

TEST(SimHeapTest, SbrkGrowsAndZeroFills) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  EXPECT_EQ(Heap.base(), HeapBase);
  EXPECT_EQ(Heap.brk(), HeapBase);

  Addr First = Heap.sbrk(64);
  EXPECT_EQ(First, HeapBase);
  EXPECT_EQ(Heap.heapBytes(), 64u);
  for (Addr A = First; A < First + 64; A += 4)
    EXPECT_EQ(Heap.peek32(A), 0u);

  Addr Second = Heap.sbrk(32);
  EXPECT_EQ(Second, HeapBase + 64);
  EXPECT_EQ(Heap.heapBytes(), 96u);
}

TEST(SimHeapTest, ContainsChecksBounds) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(32);
  EXPECT_TRUE(Heap.contains(HeapBase, 32));
  EXPECT_TRUE(Heap.contains(HeapBase + 28, 4));
  EXPECT_FALSE(Heap.contains(HeapBase + 28, 8));
  EXPECT_FALSE(Heap.contains(HeapBase - 4, 4));
}

TEST(SimHeapTest, PokePeekRoundTrip) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(16);
  Heap.poke32(HeapBase + 8, 0xDEADBEEF);
  EXPECT_EQ(Heap.peek32(HeapBase + 8), 0xDEADBEEFu);
  EXPECT_EQ(Bus.totalAccesses(), 0u) << "poke/peek must be untraced";
}

TEST(SimHeapTest, TracedAccessesEmitOnBus) {
  MemoryBus Bus;
  CollectingSink Sink;
  Bus.attach(&Sink);
  SimHeap Heap(Bus);
  Heap.sbrk(16);

  Heap.store32(HeapBase + 4, 77, AccessSource::Allocator);
  uint32_t Value = Heap.load32(HeapBase + 4, AccessSource::Application);
  EXPECT_EQ(Value, 77u);

  ASSERT_EQ(Sink.records().size(), 2u);
  EXPECT_EQ(Sink.records()[0].Kind, AccessKind::Write);
  EXPECT_EQ(Sink.records()[0].Source, AccessSource::Allocator);
  EXPECT_EQ(Sink.records()[1].Kind, AccessKind::Read);
  EXPECT_EQ(Sink.records()[1].Source, AccessSource::Application);
  EXPECT_EQ(Sink.records()[1].Address, HeapBase + 4);
}

TEST(SimHeapTest, SbrkPastLimitIsFatal) {
  MemoryBus Bus;
  SimHeap Heap(Bus, HeapBase, 4096);
  Heap.sbrk(4096);
  EXPECT_DEATH(Heap.sbrk(4), "heap limit");
}

TEST(SimHeapTest, CustomBase) {
  MemoryBus Bus;
  SimHeap Heap(Bus, 0x2000'0000, 1 << 20);
  EXPECT_EQ(Heap.sbrk(8), 0x2000'0000u);
}

TEST(SimHeapDeathTest, SegmentWrappingAddressSpaceIsFatal) {
  MemoryBus Bus;
  EXPECT_DEATH({ SimHeap Heap(Bus, 0xFFFF'F000, 0x10000); },
               "wraps the 32-bit address space");
}

TEST(SimHeapDeathTest, MisalignedAccessesAreRejected) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(64);
  EXPECT_DEATH(Heap.load32(HeapBase + 2, AccessSource::Application),
               "misaligned");
  EXPECT_DEATH(Heap.store32(HeapBase + 6, 1, AccessSource::Allocator),
               "misaligned");
}

TEST(SimHeapTest, ContainsRejectsRangesWrappingTheAddressSpace) {
  MemoryBus Bus;
  // A segment deliberately placed at the top of the 32-bit space.
  SimHeap Heap(Bus, 0xFFFF'0000, 0xF000);
  Heap.sbrk(0xF000);
  EXPECT_TRUE(Heap.contains(0xFFFF'0000, 0xF000));
  EXPECT_TRUE(Heap.contains(0xFFFF'EFFC, 4));
  // Address + Size wraps past zero: must be rejected, not accepted via the
  // wrapped comparison.
  EXPECT_FALSE(Heap.contains(0xFFFF'E000, 0x3000));
  EXPECT_FALSE(Heap.contains(0xFFFF'EFFC, 0x2000));
}
