//===- tests/mem_test.cpp - SimHeap / MemoryBus tests ---------------------===//

#include "cache/CacheSim.h"
#include "mem/SimHeap.h"
#include "trace/RefTrace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

using namespace allocsim;

TEST(MemoryBusTest, CountsBySourceAndKind) {
  MemoryBus Bus;
  Bus.emit(0x1000, 4, AccessKind::Read, AccessSource::Application);
  Bus.emit(0x1004, 4, AccessKind::Write, AccessSource::Allocator);
  Bus.emit(0x1008, 4, AccessKind::Read, AccessSource::Allocator);
  Bus.emit(0x100c, 4, AccessKind::Write, AccessSource::TagEmulation);

  EXPECT_EQ(Bus.totalAccesses(), 4u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::Application), 1u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::Allocator), 2u);
  EXPECT_EQ(Bus.accessesFrom(AccessSource::TagEmulation), 1u);
  EXPECT_EQ(Bus.reads(), 2u);
  EXPECT_EQ(Bus.writes(), 2u);
}

TEST(MemoryBusTest, FansOutToAllSinks) {
  MemoryBus Bus;
  CollectingSink A, B;
  Bus.attach(&A);
  Bus.attach(&B);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
  EXPECT_EQ(B.records().size(), 1u);
  EXPECT_EQ(A.records()[0].Address, 0x2000u);
}

TEST(MemoryBusTest, DetachStopsDelivery) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  Bus.detach(&A);
  Bus.emit(0x2004, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
}

TEST(MemoryBusTest, DuplicateAttachDeliversOnce) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 1u);
}

TEST(MemoryBusTest, ResetCountersKeepsSinks) {
  MemoryBus Bus;
  CollectingSink A;
  Bus.attach(&A);
  Bus.emit(0x2000, 4, AccessKind::Read, AccessSource::Application);
  Bus.resetCounters();
  EXPECT_EQ(Bus.totalAccesses(), 0u);
  Bus.emit(0x2004, 4, AccessKind::Read, AccessSource::Application);
  EXPECT_EQ(A.records().size(), 2u);
}

TEST(SimHeapTest, SbrkGrowsAndZeroFills) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  EXPECT_EQ(Heap.base(), HeapBase);
  EXPECT_EQ(Heap.brk(), HeapBase);

  Addr First = Heap.sbrk(64);
  EXPECT_EQ(First, HeapBase);
  EXPECT_EQ(Heap.heapBytes(), 64u);
  for (Addr A = First; A < First + 64; A += 4)
    EXPECT_EQ(Heap.peek32(A), 0u);

  Addr Second = Heap.sbrk(32);
  EXPECT_EQ(Second, HeapBase + 64);
  EXPECT_EQ(Heap.heapBytes(), 96u);
}

TEST(SimHeapTest, ContainsChecksBounds) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(32);
  EXPECT_TRUE(Heap.contains(HeapBase, 32));
  EXPECT_TRUE(Heap.contains(HeapBase + 28, 4));
  EXPECT_FALSE(Heap.contains(HeapBase + 28, 8));
  EXPECT_FALSE(Heap.contains(HeapBase - 4, 4));
}

TEST(SimHeapTest, PokePeekRoundTrip) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(16);
  Heap.poke32(HeapBase + 8, 0xDEADBEEF);
  EXPECT_EQ(Heap.peek32(HeapBase + 8), 0xDEADBEEFu);
  EXPECT_EQ(Bus.totalAccesses(), 0u) << "poke/peek must be untraced";
}

TEST(SimHeapTest, TracedAccessesEmitOnBus) {
  MemoryBus Bus;
  CollectingSink Sink;
  Bus.attach(&Sink);
  SimHeap Heap(Bus);
  Heap.sbrk(16);

  Heap.store32(HeapBase + 4, 77, AccessSource::Allocator);
  uint32_t Value = Heap.load32(HeapBase + 4, AccessSource::Application);
  EXPECT_EQ(Value, 77u);

  ASSERT_EQ(Sink.records().size(), 2u);
  EXPECT_EQ(Sink.records()[0].Kind, AccessKind::Write);
  EXPECT_EQ(Sink.records()[0].Source, AccessSource::Allocator);
  EXPECT_EQ(Sink.records()[1].Kind, AccessKind::Read);
  EXPECT_EQ(Sink.records()[1].Source, AccessSource::Application);
  EXPECT_EQ(Sink.records()[1].Address, HeapBase + 4);
}

TEST(SimHeapTest, SbrkPastLimitIsFatal) {
  MemoryBus Bus;
  SimHeap Heap(Bus, HeapBase, 4096);
  Heap.sbrk(4096);
  EXPECT_DEATH(Heap.sbrk(4), "heap limit");
}

TEST(SimHeapTest, CustomBase) {
  MemoryBus Bus;
  SimHeap Heap(Bus, 0x2000'0000, 1 << 20);
  EXPECT_EQ(Heap.sbrk(8), 0x2000'0000u);
}

TEST(SimHeapDeathTest, SegmentWrappingAddressSpaceIsFatal) {
  MemoryBus Bus;
  EXPECT_DEATH({ SimHeap Heap(Bus, 0xFFFF'F000, 0x10000); },
               "wraps the 32-bit address space");
}

TEST(SimHeapDeathTest, MisalignedAccessesAreRejected) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  Heap.sbrk(64);
  EXPECT_DEATH(Heap.load32(HeapBase + 2, AccessSource::Application),
               "misaligned");
  EXPECT_DEATH(Heap.store32(HeapBase + 6, 1, AccessSource::Allocator),
               "misaligned");
}

TEST(SimHeapTest, ContainsRejectsRangesWrappingTheAddressSpace) {
  MemoryBus Bus;
  // A segment deliberately placed at the top of the 32-bit space.
  SimHeap Heap(Bus, 0xFFFF'0000, 0xF000);
  Heap.sbrk(0xF000);
  EXPECT_TRUE(Heap.contains(0xFFFF'0000, 0xF000));
  EXPECT_TRUE(Heap.contains(0xFFFF'EFFC, 4));
  // Address + Size wraps past zero: must be rejected, not accepted via the
  // wrapped comparison.
  EXPECT_FALSE(Heap.contains(0xFFFF'E000, 0x3000));
  EXPECT_FALSE(Heap.contains(0xFFFF'EFFC, 0x2000));
}

//===----------------------------------------------------------------------===//
// Batched delivery: staging, flush points, and fan-out re-entrancy.
//===----------------------------------------------------------------------===//

namespace {

/// Sink that records deliveries and runs an arbitrary action on its first
/// batch — the vehicle for attach/detach-during-fan-out tests.
class ActingSink : public AccessSink {
public:
  std::function<void()> OnFirstBatch;

  void access(const MemAccess &Access) override {
    Collected.push_back(Access);
  }

  void accessBatch(const MemAccess *Batch, size_t Count) override {
    Collected.insert(Collected.end(), Batch, Batch + Count);
    if (OnFirstBatch) {
      auto Action = std::move(OnFirstBatch);
      OnFirstBatch = nullptr;
      Action();
    }
  }

  const std::vector<MemAccess> &records() const { return Collected; }

private:
  std::vector<MemAccess> Collected;
};

void emitN(MemoryBus &Bus, size_t Count, Addr Start = 0x2000) {
  for (size_t I = 0; I != Count; ++I)
    Bus.emit(Start + 4 * I, 4, AccessKind::Read, AccessSource::Application);
}

} // namespace

TEST(MemoryBusBatchTest, StagesUntilCapacityThenDeliversWholeBatch) {
  MemoryBus Bus;
  Bus.setBatchCapacity(4);
  EXPECT_EQ(Bus.batchCapacity(), 4u);
  CollectingSink A;
  Bus.attach(&A);

  emitN(Bus, 3);
  // Counters are exact at emit time even while delivery is pending.
  EXPECT_EQ(Bus.totalAccesses(), 3u);
  EXPECT_EQ(Bus.pendingAccesses(), 3u);
  EXPECT_TRUE(A.records().empty());

  emitN(Bus, 1, 0x3000);
  EXPECT_EQ(Bus.pendingAccesses(), 0u);
  ASSERT_EQ(A.records().size(), 4u);
  EXPECT_EQ(A.records()[3].Address, 0x3000u);
}

TEST(MemoryBusBatchTest, ExplicitFlushDeliversPartialBatch) {
  MemoryBus Bus;
  Bus.setBatchCapacity(8);
  CollectingSink A;
  Bus.attach(&A);
  emitN(Bus, 5);
  EXPECT_TRUE(A.records().empty());
  Bus.flush();
  EXPECT_EQ(A.records().size(), 5u);
  EXPECT_EQ(Bus.pendingAccesses(), 0u);
  Bus.flush(); // idempotent on an empty batch
  EXPECT_EQ(A.records().size(), 5u);
}

TEST(MemoryBusBatchTest, CapacityClampsToRingBounds) {
  MemoryBus Bus;
  Bus.setBatchCapacity(0);
  EXPECT_EQ(Bus.batchCapacity(), 1u);
  Bus.setBatchCapacity(AccessBatch::MaxCapacity * 10);
  EXPECT_EQ(Bus.batchCapacity(), AccessBatch::MaxCapacity);
}

TEST(MemoryBusBatchTest, ShrinkingCapacityFlushesStagedRecords) {
  MemoryBus Bus;
  Bus.setBatchCapacity(16);
  CollectingSink A;
  Bus.attach(&A);
  emitN(Bus, 7);
  Bus.setBatchCapacity(1); // must not strand the 7 staged records
  EXPECT_EQ(A.records().size(), 7u);
  EXPECT_EQ(Bus.pendingAccesses(), 0u);
}

TEST(MemoryBusBatchTest, CounterResetMidBatchStillDeliversStagedRecords) {
  // resetCounters zeroes the tallies but the staged references are real
  // history: they must still reach every sink on the next flush.
  MemoryBus Bus;
  Bus.setBatchCapacity(8);
  CollectingSink A;
  Bus.attach(&A);
  emitN(Bus, 3);
  Bus.resetCounters();
  EXPECT_EQ(Bus.totalAccesses(), 0u);
  emitN(Bus, 1, 0x4000);
  Bus.flush();
  EXPECT_EQ(A.records().size(), 4u);
  EXPECT_EQ(Bus.totalAccesses(), 1u);
}

TEST(MemoryBusBatchTest, AttachDuringFanOutSeesNextBatchNotCurrent) {
  MemoryBus Bus;
  Bus.setBatchCapacity(4);
  ActingSink Trigger;
  CollectingSink Late;
  Trigger.OnFirstBatch = [&] { Bus.attach(&Late); };
  Bus.attach(&Trigger);

  emitN(Bus, 4); // flush fires; Late attaches mid-fan-out
  EXPECT_EQ(Trigger.records().size(), 4u);
  EXPECT_TRUE(Late.records().empty()) << "attach must defer to next batch";

  emitN(Bus, 4, 0x5000);
  EXPECT_EQ(Trigger.records().size(), 8u);
  EXPECT_EQ(Late.records().size(), 4u);
}

TEST(MemoryBusBatchTest, DetachDuringFanOutStopsDeliveryImmediately) {
  MemoryBus Bus;
  Bus.setBatchCapacity(4);
  ActingSink Trigger;
  CollectingSink Victim;
  Trigger.OnFirstBatch = [&] { Bus.detach(&Victim); };
  Bus.attach(&Trigger); // fan-out order: Trigger first, Victim second
  Bus.attach(&Victim);

  emitN(Bus, 4);
  EXPECT_EQ(Trigger.records().size(), 4u);
  EXPECT_TRUE(Victim.records().empty())
      << "detach mid-fan-out must stop delivery for the current batch";

  emitN(Bus, 4, 0x5000);
  EXPECT_EQ(Victim.records().size(), 0u);
  EXPECT_EQ(Trigger.records().size(), 8u);
}

TEST(MemoryBusBatchTest, SelfDetachDuringFanOutIsSafe) {
  MemoryBus Bus;
  Bus.setBatchCapacity(2);
  ActingSink Quitter;
  CollectingSink Stayer;
  Quitter.OnFirstBatch = [&] { Bus.detach(&Quitter); };
  Bus.attach(&Quitter);
  Bus.attach(&Stayer);

  emitN(Bus, 2);
  emitN(Bus, 2, 0x6000);
  EXPECT_EQ(Quitter.records().size(), 2u);
  EXPECT_EQ(Stayer.records().size(), 4u);
}

TEST(MemoryBusBatchTest, ReplayBusBatchDelivery) {
  // MemoryBus is itself a sink (trace replay pipes one bus into another);
  // a batch arriving at the bus must recount and restage correctly.
  MemoryBus Upstream, Downstream;
  Upstream.setBatchCapacity(4);
  Downstream.setBatchCapacity(2);
  CollectingSink A;
  Downstream.attach(&A);
  Upstream.attach(&Downstream);

  emitN(Upstream, 4);
  Downstream.flush();
  EXPECT_EQ(Downstream.totalAccesses(), 4u);
  EXPECT_EQ(A.records().size(), 4u);
}

//===----------------------------------------------------------------------===//
// CacheSim edge cases through the batch path.
//===----------------------------------------------------------------------===//

TEST(CacheBatchTest, StraddlingAccessTouchesBothBlocks) {
  CacheConfig Config{/*SizeBytes=*/1024, /*BlockBytes=*/32, /*Assoc=*/1};
  DirectMappedCache Scalar(Config), Batched(Config);
  // 8 bytes starting 4 bytes before a block boundary: two block frames.
  MemAccess Straddle{0x101c, 8, AccessKind::Read, AccessSource::Application};
  Scalar.access(Straddle);
  Batched.accessBatch(&Straddle, 1);
  EXPECT_EQ(Scalar.stats().Accesses, 2u);
  EXPECT_EQ(Scalar.stats().Misses, 2u);
  EXPECT_EQ(Batched.stats().Accesses, Scalar.stats().Accesses);
  EXPECT_EQ(Batched.stats().Misses, Scalar.stats().Misses);
}

TEST(CacheBatchTest, MaxSizeAccessSpansManyBlocks) {
  CacheConfig Config{1024, 32, 1};
  DirectMappedCache Scalar(Config), Batched(Config);
  // The widest encodable access (Size is uint8_t): 255 bytes from a block
  // start covers exactly ceil(255/32) = 8 block frames.
  MemAccess Wide{0x2000, 255, AccessKind::Write, AccessSource::Allocator};
  Scalar.access(Wide);
  Batched.accessBatch(&Wide, 1);
  EXPECT_EQ(Scalar.stats().Accesses, 8u);
  EXPECT_EQ(Batched.stats().Accesses, 8u);
  EXPECT_EQ(Batched.stats().Misses, Scalar.stats().Misses);
  EXPECT_EQ(Batched.stats().AccessesBySource[static_cast<size_t>(
                AccessSource::Allocator)],
            8u);
}

TEST(CacheBatchTest, SingleLineCacheThrashesAndHits) {
  // Degenerate geometry: one 32-byte line. Alternating blocks always miss;
  // re-touching the same block always hits.
  CacheConfig Config{32, 32, 1};
  ASSERT_TRUE(Config.valid());
  DirectMappedCache Cache(Config);
  std::vector<MemAccess> Thrash;
  for (int I = 0; I != 10; ++I)
    Thrash.push_back(MemAccess{I % 2 ? 0x1020u : 0x1000u, 4, AccessKind::Read,
                               AccessSource::Application});
  Cache.accessBatch(Thrash.data(), Thrash.size());
  EXPECT_EQ(Cache.stats().Accesses, 10u);
  EXPECT_EQ(Cache.stats().Misses, 10u);

  std::vector<MemAccess> Stay(10, MemAccess{0x1000, 4, AccessKind::Read,
                                            AccessSource::Application});
  Cache.accessBatch(Stay.data(), Stay.size());
  EXPECT_EQ(Cache.stats().Accesses, 20u);
  EXPECT_EQ(Cache.stats().Misses, 11u) << "first touch misses, rest hit";
}

TEST(CacheBatchTest, RandomStreamMatchesScalarAcrossGeometries) {
  // Property check over a pseudorandom stream: for direct-mapped and
  // set-associative geometries, chunked batch delivery must equal
  // record-at-a-time delivery exactly.
  std::vector<MemAccess> Stream;
  uint64_t State = 0x243f6a8885a308d3ULL;
  for (int I = 0; I != 20000; ++I) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    Addr A = 0x10000 + ((State >> 16) & 0xffff) * 4;
    uint8_t Size = (State >> 33) % 3 == 0 ? 8 : 4;
    AccessKind Kind = (State >> 40) % 4 == 0 ? AccessKind::Write
                                             : AccessKind::Read;
    AccessSource Source = (State >> 45) % 3 == 0
                              ? AccessSource::Allocator
                              : AccessSource::Application;
    Stream.push_back(MemAccess{A, Size, Kind, Source});
  }

  for (CacheConfig Config : {CacheConfig{4 * 1024, 32, 1},
                             CacheConfig{4 * 1024, 16, 2},
                             CacheConfig{2 * 1024, 64, 4}}) {
    SCOPED_TRACE(Config.describe());
    CacheBank ScalarBank, BatchedBank;
    ScalarBank.addCache(Config);
    BatchedBank.addCache(Config);
    for (const MemAccess &Access : Stream)
      ScalarBank.access(Access);
    for (size_t I = 0; I < Stream.size(); I += 193) // deliberately odd chunk
      BatchedBank.accessBatch(Stream.data() + I,
                              std::min<size_t>(193, Stream.size() - I));
    const CacheStats &S = ScalarBank.cache(0).stats();
    const CacheStats &B = BatchedBank.cache(0).stats();
    EXPECT_EQ(S.Accesses, B.Accesses);
    EXPECT_EQ(S.Misses, B.Misses);
    for (unsigned Source = 0; Source != NumAccessSources; ++Source) {
      EXPECT_EQ(S.AccessesBySource[Source], B.AccessesBySource[Source]);
      EXPECT_EQ(S.MissesBySource[Source], B.MissesBySource[Source]);
    }
  }
}
