//===- tools/allocsim_cli.cpp - General experiment runner -----------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// A command-line front end over the MatrixRunner for ad-hoc experiment
// matrices beyond the canned paper benchmarks: any set of workloads and
// allocators, any list of cache geometries, optional page-fault curve and
// penalty sweep, executed across a worker pool with deterministic results
// (parallel output is bit-identical to --jobs=1).
//
// Examples:
//   allocsim_cli --workload gs --allocators FirstFit,BSD --caches 16,64
//   allocsim_cli --workload gawk --caches 64:32:4 --penalty 100
//   allocsim_cli --matrix "workloads=gs,espresso;allocators=FirstFit,BSD;
//                caches=16,64;penalty=25,100" --jobs=8 --out-json=out.json
//
// Cache syntax: sizeKB[:blockBytes[:assoc]], comma separated. Malformed
// specs (empty items, trailing commas, non-numeric fields) are rejected
// with a diagnostic and a nonzero exit, never silently dropped.
//
// --lint / --lint-json check the --matrix spec exhaustively (every problem
// reported, not just the first) and exit without running anything: 0 when
// the spec is clean, 1 when findings were reported, 2 on bad usage.
//
// Exit status: 0 on success, 1 if any matrix cell failed, 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "analyze/LintReport.h"
#include "analyze/SpecLint.h"
#include "conform/Conformance.h"
#include "core/MatrixRunner.h"
#include "inject/FaultPlan.h"
#include "support/CommandLine.h"
#include "support/SpecParse.h"
#include "support/Table.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace allocsim;

namespace {

/// Prints a usage diagnostic and returns the tool's usage-error exit code.
int usageError(const std::string &Message) {
  std::cerr << "allocsim_cli: error: " << Message << "\n";
  return 2;
}

bool writeStoreFile(const ResultStore &Store, const std::string &Path,
                    bool Csv) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "allocsim_cli: error: cannot write '" << Path << "'\n";
    return false;
  }
  if (Csv)
    Store.writeCsv(Out);
  else
    Store.writeJson(Out);
  return true;
}

bool writeTelemetryFile(const ResultStore &Store, const std::string &Path,
                        bool Csv) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "allocsim_cli: error: cannot write '" << Path << "'\n";
    return false;
  }
  if (Csv)
    Store.writeTelemetryCsv(Out);
  else
    Store.writeTelemetryJson(Out);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "workload name (espresso/gs/ptc/...)");
  Cli.addFlag("allocators", "FirstFit,QuickFit,GnuG++,BSD,GnuLocal",
              "comma-separated allocator names (also BestFit, Custom)");
  Cli.addFlag("caches", "16,64", "cache specs: sizeKB[:block[:assoc]]");
  Cli.addFlag("paging", "", "memory sizes (KB) for the page-fault curve");
  Cli.addFlag("penalty", "25", "cache miss penalties in cycles (list ok)");
  Cli.addFlag("matrix", "",
              "full experiment matrix, e.g. \"workloads=gs,espresso;"
              "allocators=FirstFit,BSD;caches=16,64;paging=512;"
              "penalty=25,100\"; overrides the single-axis flags above");
  Cli.addFlag("jobs", "0",
              "worker threads for the matrix (0 = all hardware threads); "
              "results are bit-identical at any job count");
  Cli.addFlag("out-json", "", "write the full matrix as JSON to this path");
  Cli.addFlag("out-csv", "", "write the full matrix as CSV to this path");
  Cli.addFlag("progress", "false", "report progress/ETA on stderr");
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("seed", "1592932958", "workload RNG seed");
  Cli.addFlag("tags", "false", "emulate boundary tags on GnuLocal");
  Cli.addFlag("check", "off",
              "heap integrity checking: off, fast (shadow sanitizer), or "
              "full (shadow + periodic invariant walks)");
  Cli.addFlag("check-interval", "64",
              "operations between invariant walks with --check=full");
  Cli.addFlag("delivery", "batched",
              "reference delivery to the simulators: batched (default) or "
              "scalar; results are bit-identical, scalar exists for "
              "equivalence checks and as the throughput baseline");
  Cli.addFlag("engine", "percfg",
              "cache sweep engine: percfg (default; one simulator per "
              "config) or stackdist (one stack-distance pass over a family "
              "sharing block size and set count); results are bit-identical "
              "where both apply");
  Cli.addFlag("telemetry", "off",
              "telemetry probes: off (default; zero overhead, bit-identical "
              "results), summary (counters) or full (counters + histograms)");
  Cli.addFlag("out-telemetry-json", "",
              "write per-cell + merged telemetry snapshots as JSON "
              "(schema allocsim-telemetry-v1) to this path");
  Cli.addFlag("out-telemetry-csv", "",
              "write long-form telemetry (one row per cell x instrument) "
              "as CSV to this path");
  Cli.addFlag("inject", "",
              "FaultLab fault plan, e.g. \"oom:after=65536;flip:rate=1e-4;"
              "smash:rate=1e-4;cell:rate=0.2;retry:limit=2;seed=7\"; fault "
              "sites are deterministic per seed and bit-identical at any "
              "--jobs count (defaults seed to --seed when unset)");
  Cli.addFlag("csv", "false", "emit the summary table as CSV");
  Cli.addFlag("lint", "false",
              "lint the --matrix spec exhaustively and exit without "
              "running (0 clean, 1 findings, 2 usage error)");
  Cli.addFlag("lint-json", "false",
              "like --lint, but emit the allocsim-lint-v1 JSON report");
  Cli.addFlag("conform", "false",
              "run the paper-replication conformance suites and exit "
              "without running a matrix (0 pass, 1 findings, 2 usage "
              "error); set ALLOCSIM_UPDATE_CONFORMANCE=1 to re-record the "
              "expectation files instead of checking them");
  Cli.addFlag("conform-json", "false",
              "like --conform, but emit the allocsim-conform-v1 JSON "
              "report");
  Cli.addFlag("conform-suite", "",
              "comma-separated conformance suites to run (missrate, "
              "exectime, tags, metamorphic); empty runs all");
  Cli.addFlag("conform-scale", "64",
              "workload scale divisor for the conformance suites; the "
              "committed expectations are recorded at 64, other scales "
              "run trend assertions only");
  Cli.addFlag("expectations", "tests/conformance/expectations",
              "directory of committed conformance expectation files; "
              "empty disables value-band checks");
  if (!Cli.parse(Argc, Argv))
    return 2;

  if (Cli.getBool("conform") || Cli.getBool("conform-json")) {
    ConformOptions Conform;
    for (const std::string &Name :
         splitSpecList(Cli.getString("conform-suite"), ','))
      Conform.Suites.push_back(Name);
    Conform.Scale = static_cast<uint32_t>(Cli.getInt("conform-scale"));
    if (Conform.Scale == 0)
      return usageError("--conform-scale must be positive");
    Conform.Seed = static_cast<uint64_t>(Cli.getInt("seed"));
    Conform.Jobs = static_cast<unsigned>(Cli.getInt("jobs"));
    Conform.ExpectationsDir = Cli.getString("expectations");
    const char *Update = std::getenv("ALLOCSIM_UPDATE_CONFORMANCE");
    Conform.UpdateExpectations = Update && *Update && *Update != '0';
    ConformReport Report = runConformance(Conform);
    if (Cli.getBool("conform-json"))
      writeConformReportJson(std::cout, Report);
    else
      printConformReport(std::cout, Report);
    return Report.passed() ? 0 : 1;
  }

  if (Cli.getBool("lint") || Cli.getBool("lint-json")) {
    if (Cli.getString("matrix").empty())
      return usageError("--lint needs a --matrix spec to check");
    LintInput Input;
    Input.Name = "--matrix";
    Input.Kind = "matrix-spec";
    lintMatrixSpec(Cli.getString("matrix"), Input.Diags);
    std::vector<LintInput> Inputs;
    Inputs.push_back(std::move(Input));
    if (Cli.getBool("lint-json"))
      writeLintReportJson(std::cout, Inputs);
    else
      printLintReport(std::cout, Inputs);
    return summarizeLint(Inputs).clean() ? 0 : 1;
  }

  std::string Error;
  MatrixSpec Spec;
  Spec.Base.Engine.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Spec.Base.Engine.Seed = static_cast<uint64_t>(Cli.getInt("seed"));
  Spec.Base.EmulateBoundaryTags = Cli.getBool("tags");
  Spec.Base.Check.Level = parseCheckLevel(Cli.getString("check"));
  Spec.Base.Check.IntervalOps =
      static_cast<uint32_t>(Cli.getInt("check-interval"));
  if (Cli.getString("delivery") == "batched")
    Spec.Base.BatchedDelivery = true;
  else if (Cli.getString("delivery") == "scalar")
    Spec.Base.BatchedDelivery = false;
  else
    return usageError("bad --delivery '" + Cli.getString("delivery") +
                      "' (expected batched or scalar)");
  if (std::optional<CacheEngineKind> Engine =
          tryParseCacheEngine(Cli.getString("engine")))
    Spec.Base.CacheEngine = *Engine;
  else
    return usageError("bad --engine '" + Cli.getString("engine") +
                      "' (expected percfg or stackdist)");
  if (!tryParseTelemetryLevel(Cli.getString("telemetry"),
                              Spec.Base.Telemetry))
    return usageError("bad --telemetry '" + Cli.getString("telemetry") +
                      "' (expected off, summary or full)");
  if (!Cli.getString("inject").empty()) {
    DiagEngine Diags;
    Spec.Base.Inject = parseFaultPlan(Cli.getString("inject"), Diags);
    if (Diags.errorCount() != 0) {
      Diags.print(std::cerr, "--inject");
      return 2;
    }
    if (!Spec.Base.Inject.SeedSet)
      Spec.Base.Inject.Seed = Spec.Base.Engine.Seed;
  }

  if (!Cli.getString("matrix").empty()) {
    if (!parseMatrixSpec(Cli.getString("matrix"), Spec, Error))
      return usageError(Error);
  } else {
    WorkloadId Workload;
    if (!tryParseWorkload(Cli.getString("workload"), Workload))
      return usageError("unknown workload '" + Cli.getString("workload") +
                        "'");
    Spec.Workloads = {Workload};
    for (const std::string &Name :
         splitSpecList(Cli.getString("allocators"), ',')) {
      AllocatorKind Kind;
      if (!tryParseAllocatorKind(Name, Kind))
        return usageError("unknown allocator '" + Name + "'");
      Spec.Allocators.push_back(Kind);
    }
    if (Spec.Allocators.empty())
      return usageError("--allocators must name at least one allocator");
    if (!parseCacheList(Cli.getString("caches"), Spec.Caches, Error))
      return usageError(Error);
    if (!parseSpecUnsignedList(Cli.getString("paging"),
                               "paging memory size (KB)",
                               Spec.PagingMemoryKb, Error))
      return usageError(Error);
    if (!parseSpecUnsignedList(Cli.getString("penalty"),
                               "miss penalty (cycles)", Spec.PenaltiesCycles,
                               Error))
      return usageError(Error);
    if (Spec.PenaltiesCycles.empty())
      return usageError("--penalty must list at least one value");
  }

  MatrixOptions Options;
  Options.Jobs = static_cast<unsigned>(Cli.getInt("jobs"));
  if (Cli.getBool("progress"))
    Options.Progress = [](const MatrixProgress &Progress) {
      std::cerr << "matrix: " << Progress.Completed << "/" << Progress.Total
                << " cells";
      if (Progress.Failed)
        std::cerr << " (" << Progress.Failed << " failed)";
      char Eta[48];
      std::snprintf(Eta, sizeof(Eta), ", %.1fs elapsed, ~%.1fs left",
                    Progress.ElapsedSeconds, Progress.EtaSeconds);
      std::cerr << Eta << "\n";
    };

  ResultStore Store = runMatrix(Spec, Options);

  if (Spec.Base.Inject.enabled()) {
    uint64_t Injected = 0, Detected = 0, SbrkDenied = 0, Dropped = 0;
    for (size_t I = 0; I != Store.size(); ++I) {
      const CellOutcome &Cell = Store.cell(I);
      if (!Cell.Ok)
        continue;
      Injected += Cell.Result.FaultsInjected;
      Detected += Cell.Result.FaultsDetected;
      SbrkDenied += Cell.Result.SbrkDenied;
      Dropped += Cell.Result.DroppedEvents;
    }
    std::cerr << "fault injection: " << Injected << " injected, " << Detected
              << " detected, " << SbrkDenied << " sbrk denials, " << Dropped
              << " events dropped, " << Store.failedCount()
              << " cells quarantined\n";
  }

  if (!Cli.getString("out-json").empty() &&
      !writeStoreFile(Store, Cli.getString("out-json"), /*Csv=*/false))
    return 2;
  if (!Cli.getString("out-csv").empty() &&
      !writeStoreFile(Store, Cli.getString("out-csv"), /*Csv=*/true))
    return 2;
  if (!Cli.getString("out-telemetry-json").empty() &&
      !writeTelemetryFile(Store, Cli.getString("out-telemetry-json"),
                          /*Csv=*/false))
    return 2;
  if (!Cli.getString("out-telemetry-csv").empty() &&
      !writeTelemetryFile(Store, Cli.getString("out-telemetry-csv"),
                          /*Csv=*/true))
    return 2;

  bool ManyPenalties = Spec.PenaltiesCycles.size() > 1;
  std::vector<std::string> Headers = {"workload", "allocator"};
  if (ManyPenalties)
    Headers.push_back("penalty");
  Headers.insert(Headers.end(),
                 {"refs(M)", "instr(M)", "malloc+free %", "heap KB",
                  "scan/op"});
  for (const CacheConfig &Cache : Spec.Caches) {
    Headers.push_back("miss% " + std::to_string(Cache.SizeBytes / 1024) +
                      "K" + (Cache.Assoc > 1
                                 ? ":" + std::to_string(Cache.Assoc) + "w"
                                 : ""));
    Headers.push_back("est.sec");
  }
  for (uint32_t MemoryKb : Spec.PagingMemoryKb)
    Headers.push_back("flt/ref@" + std::to_string(MemoryKb) + "K");
  Table Out(Headers);

  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    if (!Cell.Ok) {
      std::cerr << "allocsim_cli: cell failed: workload "
                << workloadName(Cell.Workload) << ", allocator "
                << allocatorKindName(Cell.Allocator) << ", penalty "
                << Cell.PenaltyCycles << ": " << Cell.Error << "\n";
      continue;
    }
    const RunResult &Result = Cell.Result;
    if (Spec.Base.Check.Level != CheckLevel::Off)
      std::cerr << "heap check [" << allocatorKindName(Cell.Allocator)
                << "]: " << Result.CheckViolations << " violations ("
                << Result.CheckWalks << " invariant walks)\n";

    Out.beginRow();
    Out.cell(workloadName(Cell.Workload));
    Out.cell(allocatorKindName(Cell.Allocator));
    if (ManyPenalties)
      Out.num(uint64_t(Cell.PenaltyCycles));
    Out.num(double(Result.TotalRefs) / 1e6, 1);
    Out.num(double(Result.totalInstructions()) / 1e6, 1);
    Out.num(100.0 * Result.allocInstrFraction(), 1);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(Result.Alloc.MallocCalls
                ? double(Result.BlocksSearched) /
                      double(Result.Alloc.MallocCalls)
                : 0.0,
            1);
    for (const CacheResult &Cache : Result.Caches) {
      Out.num(100.0 * Cache.Stats.missRate(), 2);
      Out.num(Cache.Time.seconds(), 2);
    }
    for (const PagingPoint &Point : Result.Paging) {
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%.3e", Point.FaultsPerRef);
      Out.cell(Buffer);
    }
  }

  if (Cli.getBool("csv"))
    Out.renderCsv(std::cout);
  else
    Out.renderText(std::cout,
                   Store.failedCount()
                       ? "experiment matrix (" +
                             std::to_string(Store.failedCount()) +
                             " cells FAILED, see stderr)"
                       : "experiment matrix");
  return Store.failedCount() == 0 ? 0 : 1;
}
