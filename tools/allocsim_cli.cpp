//===- tools/allocsim_cli.cpp - General experiment runner -----------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// A command-line front end over the Lab API for ad-hoc experiments beyond
// the canned paper benchmarks: any workload, any subset of allocators, any
// list of cache geometries, optional page-fault curve, text or CSV output.
//
// Examples:
//   allocsim_cli --workload gs --allocators FirstFit,BSD --caches 16,64
//   allocsim_cli --workload gawk --caches 64:32:4 --penalty 100
//   allocsim_cli --workload ptc --paging 512,1024,2048,4096 --csv true
//
// Cache syntax: sizeKB[:blockBytes[:assoc]], comma separated.
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Table.h"

#include <iostream>
#include <sstream>

using namespace allocsim;

namespace {

std::vector<std::string> splitList(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Part;
  std::istringstream Stream(Text);
  while (std::getline(Stream, Part, Sep))
    if (!Part.empty())
      Parts.push_back(Part);
  return Parts;
}

uint32_t parseUnsigned(const std::string &Text, const char *What) {
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || Value == 0)
    reportFatalError(std::string("bad ") + What + ": '" + Text + "'");
  return static_cast<uint32_t>(Value);
}

CacheConfig parseCache(const std::string &Spec) {
  std::vector<std::string> Parts = splitList(Spec, ':');
  if (Parts.empty() || Parts.size() > 3)
    reportFatalError("bad cache spec '" + Spec + "'");
  CacheConfig Config;
  Config.SizeBytes = parseUnsigned(Parts[0], "cache size (KB)") * 1024;
  Config.BlockBytes = Parts.size() > 1
                          ? parseUnsigned(Parts[1], "block bytes")
                          : 32;
  Config.Assoc =
      Parts.size() > 2 ? parseUnsigned(Parts[2], "associativity") : 1;
  if (!Config.valid())
    reportFatalError("invalid cache geometry '" + Spec + "'");
  return Config;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "workload name (espresso/gs/ptc/...)");
  Cli.addFlag("allocators", "FirstFit,QuickFit,GnuG++,BSD,GnuLocal",
              "comma-separated allocator names (also BestFit, Custom)");
  Cli.addFlag("caches", "16,64", "cache specs: sizeKB[:block[:assoc]]");
  Cli.addFlag("paging", "", "memory sizes (KB) for the page-fault curve");
  Cli.addFlag("penalty", "25", "cache miss penalty in cycles");
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("seed", "1592932958", "workload RNG seed");
  Cli.addFlag("tags", "false", "emulate boundary tags on GnuLocal");
  Cli.addFlag("check", "off",
              "heap integrity checking: off, fast (shadow sanitizer), or "
              "full (shadow + periodic invariant walks)");
  Cli.addFlag("check-interval", "64",
              "operations between invariant walks with --check=full");
  Cli.addFlag("csv", "false", "emit CSV");
  if (!Cli.parse(Argc, Argv))
    return 1;

  ExperimentConfig Base;
  Base.Workload = parseWorkload(Cli.getString("workload"));
  Base.Engine.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Base.Engine.Seed = static_cast<uint64_t>(Cli.getInt("seed"));
  Base.MissPenaltyCycles = static_cast<uint32_t>(Cli.getInt("penalty"));
  Base.EmulateBoundaryTags = Cli.getBool("tags");
  Base.Check.Level = parseCheckLevel(Cli.getString("check"));
  Base.Check.IntervalOps =
      static_cast<uint32_t>(Cli.getInt("check-interval"));
  for (const std::string &Spec : splitList(Cli.getString("caches"), ','))
    Base.Caches.push_back(parseCache(Spec));
  for (const std::string &Kb : splitList(Cli.getString("paging"), ','))
    Base.PagingMemoryKb.push_back(parseUnsigned(Kb, "memory size (KB)"));

  std::vector<std::string> Headers = {
      "allocator", "refs(M)", "instr(M)", "malloc+free %", "heap KB",
      "scan/op"};
  for (const CacheConfig &Cache : Base.Caches) {
    Headers.push_back("miss% " + std::to_string(Cache.SizeBytes / 1024) +
                      "K" + (Cache.Assoc > 1
                                 ? ":" + std::to_string(Cache.Assoc) + "w"
                                 : ""));
    Headers.push_back("est.sec");
  }
  for (uint32_t MemoryKb : Base.PagingMemoryKb)
    Headers.push_back("flt/ref@" + std::to_string(MemoryKb) + "K");
  Table Out(Headers);

  for (const std::string &Name :
       splitList(Cli.getString("allocators"), ',')) {
    ExperimentConfig Config = Base;
    Config.Allocator = parseAllocatorKind(Name);
    RunResult Result = runExperiment(Config);
    if (Config.Check.Level != CheckLevel::Off)
      std::cerr << "heap check [" << allocatorKindName(Config.Allocator)
                << "]: " << Result.CheckViolations << " violations ("
                << Result.CheckWalks << " invariant walks)\n";

    Out.beginRow();
    Out.cell(allocatorKindName(Config.Allocator));
    Out.num(double(Result.TotalRefs) / 1e6, 1);
    Out.num(double(Result.totalInstructions()) / 1e6, 1);
    Out.num(100.0 * Result.allocInstrFraction(), 1);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(Result.Alloc.MallocCalls
                ? double(Result.BlocksSearched) /
                      double(Result.Alloc.MallocCalls)
                : 0.0,
            1);
    for (const CacheResult &Cache : Result.Caches) {
      Out.num(100.0 * Cache.Stats.missRate(), 2);
      Out.num(Cache.Time.seconds(), 2);
    }
    for (const PagingPoint &Point : Result.Paging) {
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%.3e", Point.FaultsPerRef);
      Out.cell(Buffer);
    }
  }

  if (Cli.getBool("csv"))
    Out.renderCsv(std::cout);
  else
    Out.renderText(std::cout,
                   "workload: " + std::string(workloadName(Base.Workload)));
  return 0;
}
