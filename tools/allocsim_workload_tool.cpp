//===- tools/allocsim_workload_tool.cpp - Event-script generation/replay --===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Utility over the allocation-event script format (the allocator-agnostic
// record of a program's malloc/free/touch behaviour):
//
//   allocsim_workload_tool gen <workload> <script-out> [scale]
//       synthesize a workload and save its event script
//   allocsim_workload_tool check <script>
//       validate a script's well-formedness and summarize it
//   allocsim_workload_tool run <script> <allocator> [cacheKB...]
//       replay a script against an allocator and report miss rates
//
// Scripts let one captured behaviour be replayed against every allocator —
// the same control the paper got by tracing one execution per application.
//
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"
#include "cache/CacheSim.h"
#include "support/Error.h"
#include "support/Table.h"
#include "trace/AllocEvents.h"
#include "workload/Driver.h"
#include "workload/Engine.h"

#include <fstream>
#include <iostream>

using namespace allocsim;

namespace {

int usage() {
  std::cerr
      << "usage: allocsim_workload_tool gen <workload> <script-out> [scale]\n"
         "       allocsim_workload_tool check <script>\n"
         "       allocsim_workload_tool run <script> <allocator> [KB...]\n";
  return 1;
}

std::vector<AllocEvent> loadScript(const std::string &Path) {
  std::ifstream File(Path);
  if (!File)
    reportFatalError("cannot open script '" + Path + "'");
  return readAllocEvents(File);
}

int runGen(const std::string &Workload, const std::string &OutPath,
           uint32_t Scale) {
  EngineOptions Options;
  Options.Scale = Scale;
  WorkloadEngine Engine(getProfile(parseWorkload(Workload)), Options);

  std::ofstream OutFile(OutPath);
  if (!OutFile)
    reportFatalError("cannot write '" + OutPath + "'");
  uint64_t Count = 0;
  Engine.generate([&](const AllocEvent &Event) {
    writeAllocEvents(OutFile, {Event});
    ++Count;
  });
  std::cerr << "wrote " << Count << " events ("
            << Engine.totalAllocations() << " allocations, scale 1/"
            << Engine.effectiveScale() << ") to " << OutPath << "\n";
  return 0;
}

int runCheck(const std::string &Path) {
  std::vector<AllocEvent> Events = loadScript(Path);
  std::string Why;
  if (!validateAllocEvents(Events, &Why)) {
    std::cerr << "INVALID: " << Why << "\n";
    return 1;
  }
  uint64_t Mallocs = 0, Frees = 0, TouchWords = 0, StackWords = 0;
  uint64_t Bytes = 0;
  for (const AllocEvent &Event : Events) {
    switch (Event.Kind) {
    case AllocEventKind::Malloc:
      ++Mallocs;
      Bytes += Event.Amount;
      break;
    case AllocEventKind::Free:
      ++Frees;
      break;
    case AllocEventKind::Touch:
      TouchWords += Event.Amount;
      break;
    case AllocEventKind::StackTouch:
      StackWords += Event.Amount;
      break;
    }
  }
  std::cout << "valid script: " << Events.size() << " events\n"
            << "  mallocs:      " << Mallocs << " (" << Bytes << " bytes)\n"
            << "  frees:        " << Frees << "\n"
            << "  surviving:    " << Mallocs - Frees << "\n"
            << "  touch words:  " << TouchWords << "\n"
            << "  stack words:  " << StackWords << "\n";
  return 0;
}

int runScript(const std::string &Path, const std::string &AllocName,
              const std::vector<uint32_t> &SizesKb) {
  std::vector<AllocEvent> Events = loadScript(Path);

  MemoryBus Bus;
  Bus.setBatchCapacity(AccessBatch::MaxCapacity);
  CacheBank Bank;
  for (uint32_t SizeKb : SizesKb)
    Bank.addCache(CacheConfig{SizeKb * 1024, 32, 1});
  Bus.attach(&Bank);
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(parseAllocatorKind(AllocName), Heap, Cost);
  Driver Drive(*Alloc, Bus, Cost, /*InstrPerRef=*/3.5);
  for (const AllocEvent &Event : Events)
    Drive.execute(Event);
  Bus.flush();

  std::cout << "allocator " << Alloc->name() << ": "
            << Alloc->stats().MallocCalls << " mallocs, heap "
            << Alloc->heapBytes() / 1024 << " KB, "
            << Bus.totalAccesses() << " refs, malloc+free "
            << formatDouble(100.0 * Cost.allocFraction(), 1)
            << "% of instructions\n\n";
  Table Out({"cache", "miss rate %"});
  for (size_t I = 0; I != Bank.size(); ++I) {
    Out.beginRow();
    Out.cell(Bank.cache(I).config().describe());
    Out.num(100.0 * Bank.cache(I).stats().missRate(), 3);
  }
  Out.renderText(std::cout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Command = Argv[1];
  if (Command == "gen") {
    if (Argc < 4)
      return usage();
    uint32_t Scale = Argc > 4
                         ? static_cast<uint32_t>(std::atoi(Argv[4]))
                         : 64;
    return runGen(Argv[2], Argv[3], Scale == 0 ? 64 : Scale);
  }
  if (Command == "check")
    return runCheck(Argv[2]);
  if (Command == "run") {
    if (Argc < 4)
      return usage();
    std::vector<uint32_t> SizesKb;
    for (int I = 4; I < Argc; ++I)
      SizesKb.push_back(static_cast<uint32_t>(std::atoi(Argv[I])));
    if (SizesKb.empty())
      SizesKb = {16, 64};
    return runScript(Argv[2], Argv[3], SizesKb);
  }
  return usage();
}
