#!/usr/bin/env python3
"""Line-coverage ratchet gate for the test suite.

Compares a gcovr JSON summary report (``gcovr --json-summary``) against the
committed ratchet (COVERAGE.json at the repo root). The gate is a *floor*,
not a target: the build fails when line coverage drops below the committed
floor, and the floor is only ever moved up, by committing a new ratchet
after coverage has genuinely improved:

    gcovr --root . --filter 'src/' --filter 'tools/' \
          --json-summary-pretty -o coverage.json
    python3 tools/check_coverage.py coverage.json COVERAGE.json --suggest

Exit status: 0 = pass, 1 = coverage below floor or malformed report,
2 = bad usage.
"""

import argparse
import json
import sys


def load_json(path, what):
    """Loads one JSON file; dies with attribution on malformation."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_coverage: cannot read {what} {path}: {err}")


def line_percent(summary, path):
    """Extracts the aggregate line-coverage percentage from a gcovr JSON
    summary, recomputing from raw counts when both are present (the percent
    field is rounded; the counts are exact)."""
    covered = summary.get("line_covered")
    total = summary.get("line_total")
    if isinstance(covered, (int, float)) and isinstance(total, (int, float)):
        if total <= 0:
            sys.exit(f"check_coverage: {path}: no measurable lines")
        return 100.0 * covered / total
    percent = summary.get("line_percent")
    if not isinstance(percent, (int, float)):
        sys.exit(
            f"check_coverage: {path}: neither line_covered/line_total nor "
            "line_percent present — not a gcovr --json-summary report?"
        )
    return float(percent)


def load_floor(path):
    ratchet = load_json(path, "ratchet")
    floor = ratchet.get("line_percent_floor")
    if not isinstance(floor, (int, float)) or not 0 <= floor <= 100:
        sys.exit(
            f"check_coverage: {path}: line_percent_floor missing or out of "
            "[0, 100]"
        )
    return float(floor)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("summary", help="gcovr --json-summary report")
    parser.add_argument("ratchet", help="committed COVERAGE.json floor")
    parser.add_argument(
        "--suggest",
        action="store_true",
        help="print a suggested new floor when coverage has headroom",
    )
    args = parser.parse_args()

    floor = load_floor(args.ratchet)
    current = line_percent(load_json(args.summary, "summary"), args.summary)

    print(
        f"check_coverage: line coverage {current:.2f}% "
        f"(committed floor {floor:.2f}%)"
    )
    if current < floor:
        print(
            f"check_coverage: coverage fell below the committed floor — "
            f"add tests or (only with a reviewed justification) lower "
            f"{args.ratchet}",
            file=sys.stderr,
        )
        return 1
    # Ratchet hint: suggest raising the floor once there are >2 points of
    # headroom, keeping a 2-point slack so unrelated PRs don't flake.
    if args.suggest and current - floor > 2.0:
        print(
            f"check_coverage: headroom available — consider raising "
            f"line_percent_floor to {current - 2.0:.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
