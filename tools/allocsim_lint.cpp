//===- tools/allocsim_lint.cpp - Static script/spec linter ----------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// TraceLint's command-line front end: lints allocation-event scripts and
// matrix specs without running a single simulated instruction, reporting
// every finding (not just the first) with file:line:column and a stable
// rule id.
//
// Usage:
//   allocsim_lint [options] [script.events ...]
//
//   --matrix "<spec>"  also lint a --matrix experiment spec
//   --json             emit the allocsim-lint-v1 JSON report on stdout
//                      (includes static predictions for clean scripts)
//   --predictions      with the human output, print each clean script's
//                      static predictions as JSON
//
// Exit status mirrors allocsim_cli's contract:
//   0  every input linted clean
//   1  at least one finding (error or warning) was reported
//   2  usage error or unreadable input
//
// CI runs this over tests/corpus/ and the golden matrix specs; corpus
// scripts must lint clean so every downstream consumer (fuzzer seeds,
// cross-check tests, replay examples) can assume sound lifetimes.
//
//===----------------------------------------------------------------------===//

#include "analyze/LintReport.h"
#include "analyze/SpecLint.h"
#include "analyze/TraceLint.h"
#include "support/CommandLine.h"

#include <fstream>
#include <iostream>

using namespace allocsim;

namespace {

int usageError(const std::string &Message) {
  std::cerr << "allocsim_lint: error: " << Message << "\n";
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("matrix", "", "experiment matrix spec to lint");
  Cli.addFlag("json", "false",
              "emit the allocsim-lint-v1 JSON report on stdout");
  Cli.addFlag("predictions", "false",
              "print static predictions for clean scripts (human output)");
  if (!Cli.parse(Argc, Argv))
    return 2;

  if (Cli.positional().empty() && Cli.getString("matrix").empty())
    return usageError(
        "nothing to lint: name event-script files and/or --matrix \"...\"");

  std::vector<LintInput> Inputs;
  for (const std::string &Path : Cli.positional()) {
    std::ifstream In(Path);
    if (!In)
      return usageError("cannot read '" + Path + "'");
    LintInput Input;
    Input.Name = Path;
    Input.Kind = "trace";
    std::vector<LocatedAllocEvent> Events =
        lintTraceScript(In, Input.Diags);
    if (Input.Diags.errorCount() == 0)
      Input.Predictions = predictTrace(buildTraceModel(std::move(Events)));
    Inputs.push_back(std::move(Input));
  }
  if (!Cli.getString("matrix").empty()) {
    LintInput Input;
    Input.Name = "--matrix";
    Input.Kind = "matrix-spec";
    lintMatrixSpec(Cli.getString("matrix"), Input.Diags);
    Inputs.push_back(std::move(Input));
  }

  if (Cli.getBool("json")) {
    writeLintReportJson(std::cout, Inputs);
  } else {
    printLintReport(std::cout, Inputs);
    if (Cli.getBool("predictions"))
      for (const LintInput &Input : Inputs)
        if (Input.Predictions) {
          std::cout << Input.Name << ": predictions: ";
          writeTracePredictionsJson(std::cout, *Input.Predictions, "");
          std::cout << "\n";
        }
  }
  return summarizeLint(Inputs).clean() ? 0 : 1;
}
