//===- tools/allocsim_trace_tool.cpp - Trace inspection and replay --------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Utility over the reference-trace formats:
//
//   allocsim_trace_tool stats <trace>          summarize a binary trace
//   allocsim_trace_tool dump <trace>           convert binary -> text (stdout)
//   allocsim_trace_tool pack <text> <trace>    convert text -> binary
//   allocsim_trace_tool sim <trace> [sizeKB..] replay into caches + paging
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "support/Error.h"
#include "support/Table.h"
#include "trace/RefTrace.h"
#include "vm/PageSim.h"

#include <fstream>
#include <iostream>
#include <map>

using namespace allocsim;

namespace {

int usage() {
  std::cerr << "usage: allocsim_trace_tool stats|dump <trace>\n"
               "       allocsim_trace_tool pack <text-in> <trace-out>\n"
               "       allocsim_trace_tool sim <trace> [cacheKB ...]\n";
  return 1;
}

std::ifstream openBinary(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    reportFatalError("cannot open trace file '" + Path + "'");
  return File;
}

int runStats(const std::string &Path) {
  std::ifstream File = openBinary(Path);
  BinaryTraceReader Reader(File);

  uint64_t Total = 0, Reads = 0;
  uint64_t BySource[NumAccessSources] = {};
  Addr Low = ~Addr(0), High = 0;
  std::map<uint64_t, uint64_t> PageCounts;
  MemAccess Access;
  while (Reader.next(Access)) {
    ++Total;
    Reads += Access.Kind == AccessKind::Read;
    ++BySource[unsigned(Access.Source)];
    Low = std::min(Low, Access.Address);
    High = std::max(High, Access.Address);
    ++PageCounts[Access.Address >> 12];
  }
  if (Total == 0) {
    std::cout << "empty trace\n";
    return 0;
  }
  std::cout << "records:        " << Total << "\n"
            << "reads/writes:   " << Reads << " / " << (Total - Reads)
            << "\n"
            << "app refs:       "
            << BySource[unsigned(AccessSource::Application)] << "\n"
            << "allocator refs: "
            << BySource[unsigned(AccessSource::Allocator)] << "\n"
            << "tag refs:       "
            << BySource[unsigned(AccessSource::TagEmulation)] << "\n"
            << "address range:  " << std::hex << Low << "..." << High
            << std::dec << "\n"
            << "distinct pages: " << PageCounts.size() << " (4 KB)\n";
  return 0;
}

int runDump(const std::string &Path) {
  std::ifstream File = openBinary(Path);
  BinaryTraceReader Reader(File);
  TextTraceWriter Writer(std::cout);
  replayTrace(Reader, Writer);
  return 0;
}

int runPack(const std::string &TextPath, const std::string &OutPath) {
  std::ifstream TextFile(TextPath);
  if (!TextFile)
    reportFatalError("cannot open text trace '" + TextPath + "'");
  std::ofstream OutFile(OutPath, std::ios::binary);
  if (!OutFile)
    reportFatalError("cannot write '" + OutPath + "'");
  TextTraceReader Reader(TextFile);
  BinaryTraceWriter Writer(OutFile);
  uint64_t Count = replayTrace(Reader, Writer);
  std::cerr << "packed " << Count << " records\n";
  return 0;
}

int runSim(const std::string &Path, const std::vector<uint32_t> &SizesKb) {
  std::ifstream File = openBinary(Path);
  BinaryTraceReader Reader(File);

  CacheBank Bank;
  for (uint32_t SizeKb : SizesKb)
    Bank.addCache(CacheConfig{SizeKb * 1024, 32, 1});
  PageSim Paging;

  MemAccess Access;
  uint64_t Total = 0;
  while (Reader.next(Access)) {
    Bank.access(Access);
    Paging.access(Access);
    ++Total;
  }

  std::cout << "replayed " << Total << " references\n\n";
  Table Caches({"cache", "miss rate %"});
  for (size_t I = 0; I != Bank.size(); ++I) {
    Caches.beginRow();
    Caches.cell(Bank.cache(I).config().describe());
    Caches.num(100.0 * Bank.cache(I).stats().missRate(), 3);
  }
  Caches.renderText(std::cout);

  std::cout << "\n";
  Table Faults({"memory KB", "faults/ref"});
  for (uint64_t MemoryKb = 64;
       MemoryKb / 4 <= 2 * Paging.distinctPages(); MemoryKb *= 2) {
    Faults.beginRow();
    Faults.num(MemoryKb);
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%.3e",
                  Paging.faultRateForMemoryKb(MemoryKb));
    Faults.cell(Buffer);
  }
  Faults.renderText(std::cout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Command = Argv[1];
  if (Command == "stats")
    return runStats(Argv[2]);
  if (Command == "dump")
    return runDump(Argv[2]);
  if (Command == "pack") {
    if (Argc < 4)
      return usage();
    return runPack(Argv[2], Argv[3]);
  }
  if (Command == "sim") {
    std::vector<uint32_t> SizesKb;
    for (int I = 3; I < Argc; ++I)
      SizesKb.push_back(static_cast<uint32_t>(std::atoi(Argv[I])));
    if (SizesKb.empty())
      SizesKb = {16, 64, 256};
    return runSim(Argv[2], SizesKb);
  }
  return usage();
}
