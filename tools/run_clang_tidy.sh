#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library, tool, and test
# sources using the build tree's compile database.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Exits 0 with a notice when clang-tidy is not installed, so the script can
# sit in local hooks without making LLVM a hard dependency; CI installs
# clang-tidy and gets the real pass.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping." >&2
  echo "run_clang_tidy: install clang-tidy (LLVM) to enable this check." >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $BUILD_DIR" >&2
  exit 1
fi

FILES=$(git ls-files 'src/*.cpp' 'src/**/*.cpp' 'tools/*.cpp' 'tests/*.cpp')
# shellcheck disable=SC2086
clang-tidy -p "$BUILD_DIR" --quiet $FILES
