#!/usr/bin/env python3
"""Perf-regression gate for the batched reference pipeline.

Compares a fresh bench_pipeline_throughput report against the committed
baseline (BENCH_pipeline.json at the repo root). The comparison is on the
*speedup ratios* (batched refs/sec over scalar refs/sec, measured on the
same machine within the same run), which is hardware-independent: CI boxes
are slower than the machine that produced the baseline, but the ratio
between the two delivery modes should hold anywhere. Absolute refs/sec are
never compared.

A config regresses when its current speedup falls below the baseline
speedup by more than the tolerance (default 30%). Exit status: 0 = pass,
1 = regression or malformed report, 2 = bad usage.

Refreshing the baseline after an intentional pipeline change:

    build/bench/bench_pipeline_throughput --out=BENCH_pipeline.json

then commit the new file (see DESIGN.md section 10).
"""

import argparse
import json
import sys

SCHEMA = "allocsim-bench-pipeline-v1"


def load_report(path):
    """Loads and structurally validates one report; dies on malformation."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_perf_baseline: cannot read {path}: {err}")
    if report.get("schema") != SCHEMA:
        sys.exit(
            f"check_perf_baseline: {path}: schema "
            f"{report.get('schema')!r}, expected {SCHEMA!r}"
        )
    configs = report.get("configs")
    if not isinstance(configs, list) or not configs:
        sys.exit(f"check_perf_baseline: {path}: empty or missing configs")
    for config in configs:
        for key in ("name", "scalar_refs_per_sec", "batched_refs_per_sec",
                    "speedup"):
            if key not in config:
                sys.exit(
                    f"check_perf_baseline: {path}: config missing {key!r}"
                )
        if config["scalar_refs_per_sec"] <= 0 or config["speedup"] <= 0:
            sys.exit(
                f"check_perf_baseline: {path}: non-positive rate in "
                f"config {config['name']!r}"
            )
    return {config["name"]: config for config in configs}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_pipeline.json")
    parser.add_argument("current", help="freshly measured report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup drop before failing (default 0.30)",
    )
    args = parser.parse_args()
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")

    baseline = load_report(args.baseline)
    current = load_report(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        sys.exit(
            "check_perf_baseline: current report lacks baseline configs: "
            + ", ".join(missing)
        )

    failed = False
    ratios = []
    for name, base in sorted(baseline.items()):
        cur = current[name]
        floor = base["speedup"] * (1 - args.tolerance)
        ratio = cur["speedup"] / base["speedup"]
        ratios.append(ratio)
        verdict = "ok" if cur["speedup"] >= floor else "REGRESSED"
        failed |= verdict == "REGRESSED"
        print(
            f"{name:14s} baseline speedup {base['speedup']:.3f}  "
            f"current {cur['speedup']:.3f}  floor {floor:.3f}  "
            f"ratio {ratio:.3f}  {verdict}"
        )

    if failed:
        print(
            "check_perf_baseline: batched/scalar speedup regressed beyond "
            f"{args.tolerance:.0%} of the committed baseline",
            file=sys.stderr,
        )
        return 1
    print(
        "check_perf_baseline: all configs within tolerance "
        f"(measured/baseline ratio min {min(ratios):.3f}, "
        f"max {max(ratios):.3f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
