#!/usr/bin/env python3
"""Perf-regression gate for the measurement hot paths.

Compares fresh bench reports against the committed baselines at the repo
root, given as one or more (baseline, current) path pairs:

    check_perf_baseline.py BENCH_pipeline.json perf_current.json \\
        [BENCH_cache_engines.json engines_current.json ...]

Two report schemas are understood, both shaped as {"schema": ...,
"configs": [{"name": ..., "<slow>_refs_per_sec": ..., "<fast>_refs_per_sec":
..., "speedup": ...}, ...]}:

  * allocsim-bench-pipeline-v1 (bench_pipeline_throughput): speedup is
    batched over scalar delivery;
  * allocsim-bench-engines-v1 (bench_cache_engines): speedup is the
    stack-distance engine over per-config simulation.

The comparison is on the *speedup ratios*, measured on the same machine
within the same run, which is hardware-independent: CI boxes are slower
than the machine that produced the baseline, but the ratio between the two
modes should hold anywhere. Absolute refs/sec are never compared. A config
regresses when its current speedup falls below the baseline speedup by more
than the tolerance (default 30%). A baseline config may additionally carry
a "min_speedup" key: an absolute floor the current speedup must meet
regardless of tolerance (this is how the >= 5x stack-engine claim on the
multi-config sweeps is pinned).

Exit status: 0 = pass; 1 = regression, or a malformed/missing *current*
report (the thing being tested); 2 = bad usage, or a malformed/missing
*baseline* (the gate itself is broken and must not pass vacuously).

Refreshing a baseline after an intentional change:

    build/bench/bench_pipeline_throughput --out=BENCH_pipeline.json
    build/bench/bench_cache_engines --out=BENCH_cache_engines.json

then restore any min_speedup keys and commit (DESIGN.md sections 10, 17).
"""

import argparse
import json
import sys

# schema name -> the two rate keys every config row must carry.
SCHEMAS = {
    "allocsim-bench-pipeline-v1": (
        "scalar_refs_per_sec",
        "batched_refs_per_sec",
    ),
    "allocsim-bench-engines-v1": (
        "percfg_refs_per_sec",
        "stackdist_refs_per_sec",
    ),
}

PASS, FAIL, BROKEN_GATE = 0, 1, 2


class ReportError(Exception):
    """Structural problem in one report file."""


def load_report(path):
    """Loads and structurally validates one report.

    Returns (schema, {name: config}); raises ReportError on malformation.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise ReportError(f"cannot read {path}: {err}") from err
    schema = report.get("schema") if isinstance(report, dict) else None
    if schema not in SCHEMAS:
        raise ReportError(
            f"{path}: schema {schema!r}, expected one of "
            + ", ".join(sorted(SCHEMAS))
        )
    configs = report.get("configs")
    if not isinstance(configs, list) or not configs:
        raise ReportError(f"{path}: empty or missing configs")
    for config in configs:
        if not isinstance(config, dict):
            raise ReportError(f"{path}: non-object config entry")
        for key in ("name",) + SCHEMAS[schema] + ("speedup",):
            if key not in config:
                raise ReportError(f"{path}: config missing {key!r}")
        if config[SCHEMAS[schema][0]] <= 0 or config["speedup"] <= 0:
            raise ReportError(
                f"{path}: non-positive rate in config {config['name']!r}"
            )
    return schema, {config["name"]: config for config in configs}


def check_pair(baseline_path, current_path, tolerance):
    """Gates one (baseline, current) pair; returns PASS/FAIL/BROKEN_GATE."""
    try:
        base_schema, baseline = load_report(baseline_path)
    except ReportError as err:
        print(f"check_perf_baseline: bad baseline: {err}", file=sys.stderr)
        return BROKEN_GATE
    try:
        cur_schema, current = load_report(current_path)
    except ReportError as err:
        print(f"check_perf_baseline: {err}", file=sys.stderr)
        return FAIL
    if base_schema != cur_schema:
        print(
            f"check_perf_baseline: schema mismatch: {baseline_path} is "
            f"{base_schema}, {current_path} is {cur_schema}",
            file=sys.stderr,
        )
        return FAIL

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(
            "check_perf_baseline: current report lacks baseline configs: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return FAIL

    failed = False
    ratios = []
    for name, base in sorted(baseline.items()):
        cur = current[name]
        floor = base["speedup"] * (1 - tolerance)
        min_speedup = base.get("min_speedup")
        if min_speedup is not None:
            floor = max(floor, min_speedup)
        ratio = cur["speedup"] / base["speedup"]
        ratios.append(ratio)
        verdict = "ok" if cur["speedup"] >= floor else "REGRESSED"
        failed |= verdict == "REGRESSED"
        floor_note = (
            f"floor {floor:.3f}"
            if min_speedup is None
            else f"floor {floor:.3f} (min_speedup {min_speedup:.3f})"
        )
        print(
            f"{name:14s} baseline speedup {base['speedup']:.3f}  "
            f"current {cur['speedup']:.3f}  {floor_note}  "
            f"ratio {ratio:.3f}  {verdict}"
        )

    if failed:
        print(
            f"check_perf_baseline: {current_path}: speedup fell below the "
            f"committed floor ({base_schema})",
            file=sys.stderr,
        )
        return FAIL
    print(
        f"check_perf_baseline: {current_path}: all configs within tolerance "
        f"(measured/baseline ratio min {min(ratios):.3f}, "
        f"max {max(ratios):.3f})"
    )
    return PASS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "reports",
        nargs="+",
        metavar="baseline current",
        help="one or more (committed baseline, fresh report) path pairs",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup drop before failing (default 0.30)",
    )
    args = parser.parse_args()
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")
    if len(args.reports) % 2 != 0:
        parser.error(
            "reports must come in (baseline, current) pairs, got "
            f"{len(args.reports)} paths"
        )

    worst = PASS
    for i in range(0, len(args.reports), 2):
        result = check_pair(
            args.reports[i], args.reports[i + 1], args.tolerance
        )
        worst = max(worst, result)
    return worst


if __name__ == "__main__":
    sys.exit(main())
