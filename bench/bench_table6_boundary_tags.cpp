//===- bench/bench_table6_boundary_tags.cpp - Paper Table 6 ---------------===//
//
// Regenerates Table 6: the effect of boundary tags on execution time in the
// GNU LOCAL allocator with a 64-kilobyte direct-mapped cache. GNU LOCAL has
// no per-object tags; the tagged variant pads every object by 8 bytes and
// touches the tag words, "emulating the effect of cache pollution by the
// boundary tags without otherwise influencing the DSA implementation".
//
// Paper result: tags raise the miss rate slightly and cost 0.1%-1.1% of
// total execution time — real but minor.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Table 6: boundary-tag cache pollution in GNU LOCAL, 64K "
              "direct-mapped cache",
              *Options);

  // Paper's Table 6 reference rows (miss rate %, miss penalty % of time).
  const double PaperTaggedMiss[5] = {0.880, 0.580, 0.600, 0.250, 0.240};
  const double PaperTaggedPenalty[5] = {5.27, 4.51, 4.91, 1.99, 1.78};
  const double PaperPlainMiss[5] = {0.680, 0.560, 0.500, 0.210, 0.200};
  const double PaperPlainPenalty[5] = {4.14, 4.37, 4.53, 1.68, 1.49};

  Table Out({"metric", "espresso", "gs", "ptc", "gawk", "make"});
  std::vector<RunResult> Tagged, Plain;
  for (WorkloadId Workload : PaperWorkloads) {
    ExperimentConfig Config = baseConfig(Workload, *Options);
    Config.Allocator = AllocatorKind::GnuLocal;
    Config.Caches = {CacheConfig{64 * 1024, 32, 1}};
    Config.EmulateBoundaryTags = true;
    Tagged.push_back(runExperiment(Config));
    Config.EmulateBoundaryTags = false;
    Plain.push_back(runExperiment(Config));
  }

  auto MissPct = [](const RunResult &Run) {
    return 100.0 * Run.Caches[0].Stats.missRate();
  };
  auto PenaltyPct = [](const RunResult &Run) {
    return 100.0 * Run.Caches[0].Time.missCycles() /
           Run.Caches[0].Time.totalCycles();
  };

  auto EmitRow = [&](const std::string &Label, auto Value) {
    Out.beginRow();
    Out.cell(Label);
    for (size_t I = 0; I != 5; ++I)
      Out.num(Value(I), 3);
  };

  EmitRow("tags: miss rate %", [&](size_t I) { return MissPct(Tagged[I]); });
  EmitRow("tags: miss rate % (paper)",
          [&](size_t I) { return PaperTaggedMiss[I]; });
  EmitRow("tags: miss penalty % of time",
          [&](size_t I) { return PenaltyPct(Tagged[I]); });
  EmitRow("tags: penalty % (paper)",
          [&](size_t I) { return PaperTaggedPenalty[I]; });
  EmitRow("no tags: miss rate %",
          [&](size_t I) { return MissPct(Plain[I]); });
  EmitRow("no tags: miss rate % (paper)",
          [&](size_t I) { return PaperPlainMiss[I]; });
  EmitRow("no tags: miss penalty % of time",
          [&](size_t I) { return PenaltyPct(Plain[I]); });
  EmitRow("no tags: penalty % (paper)",
          [&](size_t I) { return PaperPlainPenalty[I]; });
  EmitRow("tag cost (% of exec time)", [&](size_t I) {
    double TaggedCycles = Tagged[I].Caches[0].Time.totalCycles();
    double PlainCycles = Plain[I].Caches[0].Time.totalCycles();
    return 100.0 * (TaggedCycles - PlainCycles) / PlainCycles;
  });
  EmitRow("tag cost % (paper)", [&](size_t I) {
    const double PaperCost[5] = {1.13, 0.14, 0.78, 0.31, 0.29};
    return PaperCost[I];
  });
  renderTable(Out, *Options);

  std::cout << "Note: the paper's absolute miss rates are lower because "
               "its trace volume per\nlive-heap byte is ~8x ours at the "
               "default scale; the tag *delta* is the\ncomparable "
               "quantity.\n";
  return 0;
}
