//===- bench/bench_cache_engines.cpp - Per-config vs stack-distance -------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Measures cache-simulation throughput (refs/sec delivered into the sink)
// of the per-config engine (CacheBank: one simulator per geometry) against
// the one-pass stack-distance engine (StackSim) on the same pre-captured
// reference stream, for three sweep shapes:
//
//   fig678     the Figure 6-8 family: 16K..256K at 512 sets (5 members)
//   dense      every power-of-two size 2K..256K at 64 sets (8 members) —
//              the "much denser sweeps" the stack engine enables
//   single16k  the paper's lone 16K config (1 member; sanity row — one
//              pass over one cache has nothing to amortize)
//
// The stream is captured once (gs-small under FirstFit, the experiment hot
// path's own reference mix) and replayed in AccessBatch-sized chunks, so
// the timed region is pure sink work — exactly what the engine choice
// changes. After every measurement the two engines' statistics are
// compared member by member, total and by source; any difference is fatal,
// making each bench run an equivalence check at production scale.
//
// Emits JSON (schema allocsim-bench-engines-v1) for the cache-engines CI
// job. The committed baseline (BENCH_cache_engines.json) is compared by
// tools/check_perf_baseline.py on the speedup ratios — stackdist over
// percfg on the same machine and run — plus per-config "min_speedup"
// absolute floors (the >= 5x multi-config claim). To refresh after an
// intentional engine change:
//
//   build/bench/bench_cache_engines --out BENCH_cache_engines.json
//
// then restore the min_speedup keys and commit (see DESIGN.md section 17).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/StackSim.h"
#include "mem/AccessBatch.h"
#include "support/Error.h"
#include "workload/Driver.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

using namespace allocsim;

namespace {

/// Records the full reference stream for later replay.
class StreamRecorder final : public AccessSink {
public:
  void access(const MemAccess &Acc) override { Stream.push_back(Acc); }
  void accessBatch(const MemAccess *Batch, size_t Count) override {
    Stream.insert(Stream.end(), Batch, Batch + Count);
  }
  std::vector<MemAccess> Stream;
};

/// One sweep shape under test.
struct EngineConfig {
  std::string Name;
  std::vector<CacheConfig> Family;
};

/// One percfg-vs-stackdist measurement.
struct Measurement {
  std::string Name;
  uint64_t Refs = 0;
  double PercfgRefsPerSec = 0;
  double StackdistRefsPerSec = 0;
  double speedup() const {
    return PercfgRefsPerSec > 0 ? StackdistRefsPerSec / PercfgRefsPerSec : 0;
  }
};

/// Captures the gs-small/FirstFit reference stream once; both engines
/// replay exactly these records.
std::vector<MemAccess> captureStream(const BenchOptions &Options) {
  MemoryBus Bus;
  Bus.setBatchCapacity(AccessBatch::MaxCapacity);
  StreamRecorder Recorder;
  Bus.attach(&Recorder);

  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::FirstFit, Heap, Cost);
  const AppProfile &Profile = getProfile(WorkloadId::GsSmall);
  EngineOptions EngineOpts;
  EngineOpts.Scale = Options.Scale;
  EngineOpts.Seed = Options.Seed;
  WorkloadEngine Engine(Profile, EngineOpts);
  Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
  Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
  Bus.flush();
  return std::move(Recorder.Stream);
}

/// Delivers the stream to \p Sink in AccessBatch-sized chunks and returns
/// the wall seconds of the sink work alone.
double replayInto(AccessSink &Sink, const std::vector<MemAccess> &Stream) {
  auto Start = std::chrono::steady_clock::now();
  size_t Offset = 0;
  while (Offset != Stream.size()) {
    size_t Count = std::min(AccessBatch::MaxCapacity, Stream.size() - Offset);
    Sink.accessBatch(Stream.data() + Offset, Count);
    Offset += Count;
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Asserts bit-exact agreement between the two engines' statistics for
/// every family member, total and by source.
void checkAgreement(const CacheBank &Bank, const StackSim &Stack,
                    const std::string &Name) {
  for (size_t I = 0; I != Bank.size(); ++I) {
    const CacheStats &Per = Bank.cache(I).stats();
    const CacheStats Dist = Stack.statsFor(I);
    bool Equal = Per.Accesses == Dist.Accesses && Per.Misses == Dist.Misses;
    for (unsigned S = 0; S != NumAccessSources; ++S)
      Equal = Equal && Per.AccessesBySource[S] == Dist.AccessesBySource[S] &&
              Per.MissesBySource[S] == Dist.MissesBySource[S];
    if (!Equal)
      reportFatalError("engine disagreement on '" + Name + "' member " +
                       std::to_string(I) + " (" +
                       Bank.cache(I).config().describe() + "): percfg " +
                       std::to_string(Per.Misses) + "/" +
                       std::to_string(Per.Accesses) + " vs stackdist " +
                       std::to_string(Dist.Misses) + "/" +
                       std::to_string(Dist.Accesses));
  }
}

/// Best-of-N timing of both engines on the same stream, with the
/// equivalence assertion run on the first repetition's final state.
Measurement measure(const EngineConfig &Config,
                    const std::vector<MemAccess> &Stream, unsigned Reps) {
  Measurement Result;
  Result.Name = Config.Name;
  Result.Refs = Stream.size();
  double PercfgBest = 0, StackdistBest = 0;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    CacheBank Bank;
    for (const CacheConfig &CacheConf : Config.Family)
      Bank.addCache(CacheConf);
    StackSim Stack(Config.Family);
    double PercfgSec = replayInto(Bank, Stream);
    double StackdistSec = replayInto(Stack, Stream);
    if (Rep == 0)
      checkAgreement(Bank, Stack, Config.Name);
    PercfgBest = std::max(PercfgBest, double(Stream.size()) / PercfgSec);
    StackdistBest =
        std::max(StackdistBest, double(Stream.size()) / StackdistSec);
  }
  Result.PercfgRefsPerSec = PercfgBest;
  Result.StackdistRefsPerSec = StackdistBest;
  return Result;
}

/// The dense family: 64 sets, 32B blocks, associativity 1..128 — every
/// power-of-two capacity from 2K to 256K out of one pass.
std::vector<CacheConfig> denseFamily() {
  std::vector<CacheConfig> Family;
  for (uint32_t Assoc = 1; Assoc <= 128; Assoc *= 2)
    Family.push_back(CacheConfig{64 * 32 * Assoc, 32, Assoc});
  return Family;
}

void writeJson(std::ostream &OS, const std::vector<Measurement> &Rows,
               bool Quick, const BenchOptions &Options) {
  OS << "{\n";
  OS << "  \"schema\": \"allocsim-bench-engines-v1\",\n";
  OS << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
  OS << "  \"scale\": " << Options.Scale << ",\n";
  OS << "  \"seed\": " << Options.Seed << ",\n";
  OS << "  \"workload\": \"gs-small\",\n";
  OS << "  \"configs\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Measurement &Row = Rows[I];
    char Buffer[256];
    std::snprintf(Buffer, sizeof(Buffer),
                  "    {\"name\": \"%s\", \"refs\": %llu, "
                  "\"percfg_refs_per_sec\": %.0f, "
                  "\"stackdist_refs_per_sec\": %.0f, \"speedup\": %.3f}",
                  Row.Name.c_str(),
                  static_cast<unsigned long long>(Row.Refs),
                  Row.PercfgRefsPerSec, Row.StackdistRefsPerSec,
                  Row.speedup());
    OS << Buffer << (I + 1 == Rows.size() ? "\n" : ",\n");
  }
  OS << "  ]\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("quick", "false",
              "CI mode: fewer repetitions at a smaller scale");
  Cli.addFlag("out", "",
              "write the JSON report here ('-' or empty = stdout only)");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 0;
  bool Quick = Cli.getBool("quick");
  if (Quick && Options->Scale == 8)
    Options->Scale = 16; // smaller run, same machinery
  unsigned Reps = Quick ? 2 : 4;

  printBanner("cache-engine throughput: per-config vs one-pass "
              "stack-distance on a captured stream (gs-small, FirstFit)",
              *Options);

  const std::vector<MemAccess> Stream = captureStream(*Options);
  const EngineConfig Configs[] = {
      {"fig678", stackCacheSweep()},
      {"dense", denseFamily()},
      {"single16k", {CacheConfig{16 * 1024, 32, 1}}},
  };

  std::vector<Measurement> Rows;
  for (const EngineConfig &Config : Configs)
    Rows.push_back(measure(Config, Stream, Reps));

  Table Out({"config", "refs(M)", "percfg Mref/s", "stackdist Mref/s",
             "speedup"});
  for (const Measurement &Row : Rows) {
    Out.beginRow();
    Out.cell(Row.Name);
    Out.num(double(Row.Refs) / 1e6, 1);
    Out.num(Row.PercfgRefsPerSec / 1e6, 1);
    Out.num(Row.StackdistRefsPerSec / 1e6, 1);
    Out.num(Row.speedup(), 2);
  }
  renderTable(Out, *Options);

  std::string OutPath = Cli.getString("out");
  if (!OutPath.empty() && OutPath != "-") {
    std::ofstream File(OutPath);
    if (!File) {
      std::cerr << "bench_cache_engines: cannot write '" << OutPath << "'\n";
      return 1;
    }
    writeJson(File, Rows, Quick, *Options);
  } else {
    writeJson(std::cout, Rows, Quick, *Options);
  }
  return 0;
}
