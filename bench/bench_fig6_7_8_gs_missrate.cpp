//===- bench/bench_fig6_7_8_gs_missrate.cpp - Paper Figures 6, 7, 8 -------===//
//
// Regenerates Figures 6, 7 and 8: data-cache miss rate for GhostScript's
// three input sets (GS-Small, GS-Medium, GS-Large) as the direct-mapped
// cache grows from 16K to 256K, for all five allocators.
//
// Shapes to reproduce: FIRSTFIT's miss rate is the highest for every input
// set and cache size, with GNU G++ second; the rest form a close cluster
// whose internal order shifts with the input set; differences are muted for
// the small input.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figures 6/7/8: GhostScript data-cache miss rate vs cache "
              "size (direct-mapped, 32B blocks)",
              *Options);

  struct Input {
    WorkloadId Workload;
    const char *Figure;
  };
  const Input Inputs[] = {{WorkloadId::GsSmall, "Figure 6 (GS-Small)"},
                          {WorkloadId::GsMedium, "Figure 7 (GS-Medium)"},
                          {WorkloadId::Gs, "Figure 8 (GS-Large)"}};

  for (const Input &In : Inputs) {
    ExperimentConfig Config = baseConfig(In.Workload, *Options);
    Config.Caches = paperCacheSweep();
    std::vector<RunResult> Results =
        runSweep(Config, {PaperAllocators, PaperAllocators + 5});

    std::vector<std::string> Headers = {"cache KB"};
    for (AllocatorKind Allocator : PaperAllocators)
      Headers.emplace_back(allocatorKindName(Allocator));
    Table Out(Headers);
    for (size_t CacheIdx = 0; CacheIdx != Config.Caches.size(); ++CacheIdx) {
      Out.beginRow();
      Out.num(uint64_t(Config.Caches[CacheIdx].SizeBytes / 1024));
      for (const RunResult &Result : Results)
        Out.num(100.0 * Result.Caches[CacheIdx].Stats.missRate(), 2);
    }
    renderTable(Out, *Options,
                std::string(In.Figure) + ": miss rate (%)");
  }
  return 0;
}
