//===- bench/bench_fig6_7_8_gs_missrate.cpp - Paper Figures 6, 7, 8 -------===//
//
// Regenerates Figures 6, 7 and 8: data-cache miss rate for GhostScript's
// three input sets (GS-Small, GS-Medium, GS-Large) as the direct-mapped
// cache grows from 16K to 256K, for all five allocators.
//
// The whole 3-input x 5-allocator study runs as one MatrixRunner sweep
// (--jobs workers; results are bit-identical at any job count) and exports
// to JSON with --out-json.
//
// Shapes to reproduce: FIRSTFIT's miss rate is the highest for every input
// set and cache size, with GNU G++ second; the rest form a close cluster
// whose internal order shifts with the input set; differences are muted for
// the small input.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/StackSim.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  const bool StackEngine = Options->Engine == CacheEngineKind::StackDist;
  printBanner(StackEngine
                  ? "Figures 6/7/8: GhostScript data-cache miss rate vs "
                    "cache size (stack-distance family, 512 sets, 32B "
                    "blocks, one pass)"
                  : "Figures 6/7/8: GhostScript data-cache miss rate vs "
                    "cache size (direct-mapped, 32B blocks)",
              *Options);

  struct Input {
    WorkloadId Workload;
    const char *Figure;
  };
  const Input Inputs[] = {{WorkloadId::GsSmall, "Figure 6 (GS-Small)"},
                          {WorkloadId::GsMedium, "Figure 7 (GS-Medium)"},
                          {WorkloadId::Gs, "Figure 8 (GS-Large)"}};

  // The stack engine needs the sweep to share its set-indexing function,
  // so it swaps the paper's all-direct-mapped sweep for the same capacities
  // at a fixed 512 sets (16K member identical to the paper's).
  const std::vector<CacheConfig> Caches =
      StackEngine ? stackCacheSweep() : paperCacheSweep();
  ResultStore Store = runBenchMatrix(
      {Inputs[0].Workload, Inputs[1].Workload, Inputs[2].Workload}, Caches,
      *Options);

  for (size_t In = 0; In != 3; ++In) {
    std::vector<std::string> Headers = {"cache KB"};
    for (AllocatorKind Allocator : PaperAllocators)
      Headers.emplace_back(allocatorKindName(Allocator));
    Table Out(Headers);
    for (size_t CacheIdx = 0; CacheIdx != Caches.size(); ++CacheIdx) {
      Out.beginRow();
      Out.num(uint64_t(Caches[CacheIdx].SizeBytes / 1024));
      for (size_t A = 0; A != 5; ++A)
        Out.num(100.0 * Store.at(In, A).Result.Caches[CacheIdx].Stats
                            .missRate(),
                2);
    }
    renderTable(Out, *Options,
                std::string(Inputs[In].Figure) + ": miss rate (%)");
  }
  return 0;
}
