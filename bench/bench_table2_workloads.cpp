//===- bench/bench_table2_workloads.cpp - Paper Tables 1 and 2 ------------===//
//
// Regenerates Table 2 ("Test Program Performance Information"): for each of
// the five applications under the FIRSTFIT baseline allocator — exactly the
// configuration the paper's table reports — the instruction count, data
// reference count, maximum heap size, and object counts, next to the
// paper's published values.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Table 2: test program performance information "
              "(FirstFit baseline)",
              *Options);

  Table Out({"program", "instr(M)", "paper", "refs(M)", "paper", "heap KB",
             "paper", "alloc'd(K)", "paper", "freed(K)", "paper", "scale"});
  for (WorkloadId Workload : PaperWorkloads) {
    const AppProfile &Profile = getProfile(Workload);
    ExperimentConfig Config = baseConfig(Workload, *Options);
    Config.Allocator = AllocatorKind::FirstFit;
    RunResult Result = runExperiment(Config);

    WorkloadEngine Engine(Profile, Config.Engine);
    double Scale = Engine.effectiveScale();

    Out.beginRow();
    Out.cell(Profile.Name);
    // Scale measured totals back up for apples-to-apples comparison.
    Out.num(double(Result.totalInstructions()) * Scale / 1e6, 0);
    Out.num(Profile.PaperInstrMillions, 0);
    Out.num(double(Result.TotalRefs) * Scale / 1e6, 0);
    Out.num(Profile.PaperDataRefsMillions, 0);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(uint64_t(Profile.PaperMaxHeapKb));
    Out.num(double(Result.Alloc.MallocCalls) * Scale / 1e3, 0);
    Out.num(Profile.PaperObjectsAllocated / 1e3, 0);
    Out.num(double(Result.Alloc.FreeCalls) * Scale / 1e3, 0);
    Out.num(Profile.PaperObjectsFreed / 1e3, 0);
    Out.cell("1/" + std::to_string(Engine.effectiveScale()));
  }
  renderTable(Out, *Options);

  std::cout
      << "Notes: instr/refs/object counts are measured at the run's scale "
         "and multiplied\nback up; heap KB is not scaled (live heaps are "
         "preserved by design, so it is\ndirectly comparable to the paper's "
         "Max Heap column). Scaled frees are chosen\nto end with the "
         "paper's surviving-object count, so freed(K) re-scaled "
         "slightly\novershoots the paper for scaled runs.\n";
  return 0;
}
