//===- bench/bench_fig4_exectime_16k.cpp - Paper Figure 4 -----------------===//
//
// Regenerates Figure 4: normalized program execution time with a 16K
// direct-mapped cache and a 25-cycle miss penalty, overlaid on normalized
// execution time ignoring the memory hierarchy. All values are normalized
// to FIRSTFIT within each application, exactly as the paper plots them.
//
// Shape to reproduce: cache misses add up to ~25% to execution time, and
// the addition differs sharply by allocator (FIRSTFIT worst).
//
// The 5-workload x 5-allocator study runs as one MatrixRunner sweep
// (--jobs workers; results are bit-identical at any job count) and exports
// to JSON with --out-json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figure 4: normalized execution time, 16K direct-mapped "
              "cache, 25-cycle penalty",
              *Options);
  emitNormalizedTimeStudy(16, *Options);
  return 0;
}
