//===- bench/bench_fig5_exectime_64k.cpp - Paper Figure 5 -----------------===//
//
// Regenerates Figure 5: normalized execution time with a 64K direct-mapped
// cache and 25-cycle miss penalty (same presentation as Figure 4).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figure 5: normalized execution time, 64K direct-mapped "
              "cache, 25-cycle penalty",
              *Options);
  emitNormalizedTimeStudy(64, *Options);
  return 0;
}
