//===- bench/bench_fig9_sizeclass_ablation.cpp - Paper Figure 9 -----------===//
//
// Figure 9 shows the size-mapping array that makes an arbitrary
// request-size-to-size-class mapping O(1). This benchmark exercises that
// machinery as the paper's Section 4.4 proposes: the same QuickFit-style
// allocator (CustomAlloc) run with size classes chosen by each policy the
// paper names —
//
//   * powers of two           (the BSD policy: "easy to compute"),
//   * word multiples          (the QuickFit policy),
//   * bounded fragmentation   (DeTreville's 25% rule),
//   * empirical profile       (the CustoMalloc policy the paper advocates),
//
// reporting internal fragmentation, heap size, allocator instructions and
// cache miss rate for each. The trade-off the paper describes — "merging
// sizes enhances rapid object re-use but wastes storage" vs. "many distinct
// size freelists reduce object re-use but eliminate internal fragmentation"
// — appears directly in these columns.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workload/Engine.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "espresso", "application profile to run");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  printBanner("Figure 9 / Section 4.4: size-class policy ablation on " +
                  std::string(workloadName(Workload)),
              *Options);

  constexpr uint32_t MaxFast = 1024;
  ExperimentConfig Base = baseConfig(Workload, *Options);
  WorkloadEngine Engine(getProfile(Workload), Base.Engine);
  Histogram Profile = Engine.sizeProfile();

  struct Policy {
    const char *Name;
    SizeClassMap Map;
  };
  const Policy Policies[] = {
      {"power-of-two (BSD-like)", SizeClassMap::powerOfTwo(MaxFast)},
      {"word multiples", SizeClassMap::wordMultiple(4, MaxFast)},
      {"bounded frag 25%",
       SizeClassMap::boundedFragmentation(0.25, MaxFast)},
      {"empirical (CustoMalloc)",
       SizeClassMap::fromProfile(Profile, 12, MaxFast)},
  };

  Table Out({"policy", "classes", "frag waste %", "heap KB", "alloc instr(M)",
             "miss % 16K", "miss % 64K", "est. seconds 64K"});
  for (const Policy &P : Policies) {
    ExperimentConfig Config = Base;
    Config.Allocator = AllocatorKind::Custom;
    Config.CustomClasses = P.Map;
    Config.Caches = {CacheConfig{16 * 1024, 32, 1},
                     CacheConfig{64 * 1024, 32, 1}};
    RunResult Result = runExperiment(Config);

    Out.beginRow();
    Out.cell(P.Name);
    Out.num(uint64_t(P.Map.numClasses()));
    Out.num(100.0 * P.Map.expectedWaste(Profile), 1);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(double(Result.AllocInstructions) / 1e6, 1);
    Out.num(100.0 * Result.Caches[0].Stats.missRate(), 2);
    Out.num(100.0 * Result.Caches[1].Stats.missRate(), 2);
    Out.num(Result.estimatedSeconds(1), 2);
  }
  renderTable(Out, *Options);
  return 0;
}
