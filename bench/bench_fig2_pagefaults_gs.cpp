//===- bench/bench_fig2_pagefaults_gs.cpp - Paper Figure 2 ----------------===//
//
// Regenerates Figure 2: page fault rate for GhostScript as a function of
// physical memory size, for all five allocators (4 KB pages, LRU).
//
// Shape to reproduce: the sequential-fit allocators (especially FIRSTFIT)
// degrade far faster as memory shrinks; BSD needs more total memory; the
// segregated-storage allocators are the most "resilient".
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figure 2: page fault rate vs memory size, GhostScript",
              *Options);
  runPageFaultFigure(WorkloadId::Gs,
                     {256, 512, 768, 1024, 1536, 2048, 2560, 3072, 3584,
                      4096, 5120, 6144, 8192},
                     *Options);
  return 0;
}
