//===- bench/bench_ext_penalty_sweep.cpp - Miss-penalty extension ---------===//
//
// Extension of the paper's Section 4.4 remark: "In the future, if cache
// miss penalties increase dramatically, the added CPU overhead required to
// obtain the marginal increase in locality [GNU LOCAL's] may then be
// warranted." (Jouppi's projection of 100+-cycle misses is cited in the
// introduction.)
//
// This benchmark sweeps the miss penalty from 10 to 200 cycles on one
// workload with a 64K cache and reports each allocator's estimated
// execution time, exposing the crossover where GNU LOCAL's low miss rate
// overtakes the instruction-lean allocators.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "application profile to run");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  printBanner("Extension: estimated seconds vs miss penalty on " +
                  std::string(workloadName(Workload)) + ", 64K cache",
              *Options);

  ExperimentConfig Config = baseConfig(Workload, *Options);
  Config.Caches = {CacheConfig{64 * 1024, 32, 1}};
  std::vector<RunResult> Results =
      runSweep(Config, {PaperAllocators, PaperAllocators + 5});

  std::vector<std::string> Headers = {"penalty (cycles)"};
  for (AllocatorKind Allocator : PaperAllocators)
    Headers.emplace_back(allocatorKindName(Allocator));
  Table Out(Headers);
  for (uint32_t Penalty : {10u, 25u, 50u, 100u, 150u, 200u}) {
    Out.beginRow();
    Out.num(uint64_t(Penalty));
    for (const RunResult &Result : Results) {
      TimeEstimate Time = Result.Caches[0].Time;
      Time.MissPenalty = Penalty;
      Out.num(Time.seconds(), 2);
    }
  }
  renderTable(Out, *Options, "estimated seconds at run scale");
  return 0;
}
