//===- bench/bench_table5_time_64k.cpp - Paper Table 5 --------------------===//
//
// Regenerates Table 5: total estimated execution time and time waiting for
// cache misses with a 64-kilobyte direct-mapped cache.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "PaperData.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Table 5: estimated execution seconds, 64K direct-mapped "
              "cache ('?' = illegible in the scanned paper)",
              *Options);
  emitTimeTable(64, PaperTable5, *Options);
  return 0;
}
