//===- bench/bench_pipeline_throughput.cpp - Batched pipeline speed -------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Measures end-to-end reference-pipeline throughput (refs/sec: workload
// synthesis + allocator simulation + sink delivery, the whole experiment
// hot path) under scalar and batched delivery, for the sink configurations
// the paper's studies actually run:
//
//   multicache    the Figure 6-8 sweep: every paper cache geometry at once
//   cache+paging  one 16K cache plus the page-fault simulator (Fig 4/5 +
//                 Fig 2/3 shape)
//   paging        the page simulator alone (Figure 2-3)
//   trace         a binary trace writer to a discarding stream
//   bare          no sinks: counter-only upper bound on the event engine
//
// Emits the summary as JSON (schema allocsim-bench-pipeline-v1) for the
// perf-smoke CI job. The committed baseline at the repo root
// (BENCH_pipeline.json) is compared by tools/check_perf_baseline.py on the
// *speedup ratios* — batched over scalar on the same machine and run —
// which is the hardware-independent signal; absolute refs/sec are recorded
// for human eyes only. To refresh the baseline after an intentional
// pipeline change:
//
//   build/bench/bench_pipeline_throughput --out BENCH_pipeline.json
//
// and commit the result (see DESIGN.md section 10).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Error.h"
#include "trace/RefTrace.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <vector>

using namespace allocsim;

namespace {

/// Discards everything written to it; lets the trace-writer configuration
/// measure serialization cost without filesystem noise.
class NullStreamBuf : public std::streambuf {
protected:
  int overflow(int Ch) override { return Ch; }
  std::streamsize xsputn(const char *, std::streamsize Count) override {
    return Count;
  }
};

/// One sink configuration under test.
struct PipelineConfig {
  std::string Name;
  bool MultiCache = false;
  bool SingleCache = false;
  bool Paging = false;
  bool Trace = false;
};

/// One scalar-vs-batched measurement.
struct Measurement {
  std::string Name;
  uint64_t Refs = 0;
  double ScalarRefsPerSec = 0;
  double BatchedRefsPerSec = 0;
  double speedup() const {
    return ScalarRefsPerSec > 0 ? BatchedRefsPerSec / ScalarRefsPerSec : 0;
  }
};

/// Runs the full pipeline once and returns (refs, seconds). The timed
/// region covers everything an experiment's hot loop does: event
/// synthesis, allocator execution, reference emission, and sink delivery.
std::pair<uint64_t, double> runOnce(const PipelineConfig &Config,
                                    bool Batched,
                                    const BenchOptions &Options) {
  MemoryBus Bus;
  if (Batched)
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);

  CacheBank Caches;
  if (Config.MultiCache)
    for (const CacheConfig &CacheConf : paperCacheSweep())
      Caches.addCache(CacheConf);
  if (Config.SingleCache)
    Caches.addCache(CacheConfig{16 * 1024, 32, 1});
  if (!Caches.empty())
    Bus.attach(&Caches);

  std::unique_ptr<PageSim> Paging;
  if (Config.Paging) {
    Paging = std::make_unique<PageSim>(4096);
    Bus.attach(Paging.get());
  }

  NullStreamBuf NullBuf;
  std::ostream NullStream(&NullBuf);
  std::unique_ptr<BinaryTraceWriter> Writer;
  if (Config.Trace) {
    Writer = std::make_unique<BinaryTraceWriter>(NullStream);
    Bus.attach(Writer.get());
  }

  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(AllocatorKind::FirstFit, Heap, Cost);
  const AppProfile &Profile = getProfile(WorkloadId::GsSmall);
  EngineOptions EngineOpts;
  EngineOpts.Scale = Options.Scale;
  EngineOpts.Seed = Options.Seed;
  WorkloadEngine Engine(Profile, EngineOpts);
  Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());

  auto Start = std::chrono::steady_clock::now();
  Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
  Bus.flush();
  auto End = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(End - Start).count();
  return {Bus.totalAccesses(), Seconds};
}

/// Best-of-N timing: the minimum wall time is the least-noisy estimate of
/// the pipeline's actual cost.
Measurement measure(const PipelineConfig &Config, unsigned Reps,
                    const BenchOptions &Options) {
  Measurement Result;
  Result.Name = Config.Name;
  double ScalarBest = 0, BatchedBest = 0;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    auto [Refs, ScalarSec] = runOnce(Config, /*Batched=*/false, Options);
    auto [RefsB, BatchedSec] = runOnce(Config, /*Batched=*/true, Options);
    if (Refs != RefsB)
      reportFatalError("batched run emitted a different reference count");
    Result.Refs = Refs;
    double Scalar = double(Refs) / ScalarSec;
    double Batched = double(Refs) / BatchedSec;
    ScalarBest = std::max(ScalarBest, Scalar);
    BatchedBest = std::max(BatchedBest, Batched);
  }
  Result.ScalarRefsPerSec = ScalarBest;
  Result.BatchedRefsPerSec = BatchedBest;
  return Result;
}

void writeJson(std::ostream &OS, const std::vector<Measurement> &Rows,
               bool Quick, const BenchOptions &Options) {
  OS << "{\n";
  OS << "  \"schema\": \"allocsim-bench-pipeline-v1\",\n";
  OS << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
  OS << "  \"scale\": " << Options.Scale << ",\n";
  OS << "  \"seed\": " << Options.Seed << ",\n";
  OS << "  \"workload\": \"gs-small\",\n";
  OS << "  \"configs\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Measurement &Row = Rows[I];
    char Buffer[256];
    std::snprintf(Buffer, sizeof(Buffer),
                  "    {\"name\": \"%s\", \"refs\": %llu, "
                  "\"scalar_refs_per_sec\": %.0f, "
                  "\"batched_refs_per_sec\": %.0f, \"speedup\": %.3f}",
                  Row.Name.c_str(),
                  static_cast<unsigned long long>(Row.Refs),
                  Row.ScalarRefsPerSec, Row.BatchedRefsPerSec,
                  Row.speedup());
    OS << Buffer << (I + 1 == Rows.size() ? "\n" : ",\n");
  }
  OS << "  ]\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("quick", "false",
              "CI mode: fewer repetitions at a smaller scale");
  Cli.addFlag("out", "",
              "write the JSON report here ('-' or empty = stdout only)");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 0;
  bool Quick = Cli.getBool("quick");
  if (Quick && Options->Scale == 8)
    Options->Scale = 16; // smaller run, same machinery
  unsigned Reps = Quick ? 2 : 4;

  printBanner("reference-pipeline throughput: scalar vs batched delivery "
              "(gs-small, FirstFit)",
              *Options);

  const PipelineConfig Configs[] = {
      {"multicache", /*MultiCache=*/true, false, false, false},
      {"cache+paging", false, /*SingleCache=*/true, /*Paging=*/true, false},
      {"paging", false, false, /*Paging=*/true, false},
      {"trace", false, false, false, /*Trace=*/true},
      {"bare", false, false, false, false},
  };

  std::vector<Measurement> Rows;
  for (const PipelineConfig &Config : Configs)
    Rows.push_back(measure(Config, Reps, *Options));

  Table Out({"config", "refs(M)", "scalar Mref/s", "batched Mref/s",
             "speedup"});
  for (const Measurement &Row : Rows) {
    Out.beginRow();
    Out.cell(Row.Name);
    Out.num(double(Row.Refs) / 1e6, 1);
    Out.num(Row.ScalarRefsPerSec / 1e6, 1);
    Out.num(Row.BatchedRefsPerSec / 1e6, 1);
    Out.num(Row.speedup(), 2);
  }
  renderTable(Out, *Options);

  std::string OutPath = Cli.getString("out");
  if (!OutPath.empty() && OutPath != "-") {
    std::ofstream File(OutPath);
    if (!File) {
      std::cerr << "bench_pipeline_throughput: cannot write '" << OutPath
                << "'\n";
      return 1;
    }
    writeJson(File, Rows, Quick, *Options);
  } else {
    writeJson(std::cout, Rows, Quick, *Options);
  }
  return 0;
}
