//===- bench/bench_micro_allocators.cpp - Allocator micro-benchmarks ------===//
//
// google-benchmark microbenchmarks of the five allocator implementations:
// steady-state malloc/free pairs and batch churn inside the simulated
// heap. Two counters are reported per benchmark:
//
//   simInstr   simulated 1993-MIPS instructions per operation (the paper's
//              cost metric, from the CostModel), and
//   simRefs    simulated memory references per operation.
//
// Host wall-clock time measures this library's simulation throughput, not
// 1993 hardware.
//
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace allocsim;

namespace {

AllocatorKind kindForIndex(int64_t Index) {
  return PaperAllocators[static_cast<size_t>(Index)];
}

/// Steady-state malloc/free pair of one hot size.
void BM_MallocFreePair(benchmark::State &State) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(kindForIndex(State.range(0)), Heap, Cost);
  auto Size = static_cast<uint32_t>(State.range(1));

  // Warm the allocator's structures.
  Alloc->free(Alloc->malloc(Size));

  for (auto _ : State) {
    Addr Ptr = Alloc->malloc(Size);
    benchmark::DoNotOptimize(Ptr);
    Alloc->free(Ptr);
  }

  double Ops = 2.0 * static_cast<double>(State.iterations());
  State.counters["simInstr"] =
      benchmark::Counter(static_cast<double>(Cost.allocInstructions()) / Ops);
  State.counters["simRefs"] =
      benchmark::Counter(static_cast<double>(Bus.totalAccesses()) / Ops);
  State.SetLabel(Alloc->name());
}

/// Churn of a mixed working set: allocate a batch of varied sizes, free
/// half (LIFO), allocate again, free everything.
void BM_MixedChurn(benchmark::State &State) {
  MemoryBus Bus;
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      createAllocator(kindForIndex(State.range(0)), Heap, Cost);

  const uint32_t Sizes[] = {8, 24, 24, 32, 48, 24, 16, 96, 24, 256};
  std::vector<Addr> Ptrs;
  Ptrs.reserve(64);
  uint64_t Ops = 0;

  for (auto _ : State) {
    for (int Round = 0; Round < 3; ++Round) {
      for (uint32_t Size : Sizes)
        Ptrs.push_back(Alloc->malloc(Size));
      while (Ptrs.size() > 15) {
        Alloc->free(Ptrs.back());
        Ptrs.pop_back();
      }
    }
    while (!Ptrs.empty()) {
      Alloc->free(Ptrs.back());
      Ptrs.pop_back();
    }
    Ops += 2 * 30;
  }

  State.counters["simInstr"] = benchmark::Counter(
      static_cast<double>(Cost.allocInstructions()) / double(Ops));
  State.counters["simRefs"] =
      benchmark::Counter(static_cast<double>(Bus.totalAccesses()) /
                         double(Ops));
  State.SetLabel(Alloc->name());
}

void pairArgs(benchmark::internal::Benchmark *Bench) {
  for (int64_t AllocIdx = 0; AllocIdx != 5; ++AllocIdx)
    for (int64_t Size : {24, 256, 8192})
      Bench->Args({AllocIdx, Size});
}

BENCHMARK(BM_MallocFreePair)->Apply(pairArgs);
BENCHMARK(BM_MixedChurn)->DenseRange(0, 4, 1);

} // namespace

BENCHMARK_MAIN();
