//===- bench/bench_ext_modern_allocators.cpp - Modern-backend cells -------===//
//
// Extension of the paper's Figures 6-8 and Tables 4-5 with the two modern
// CacheLab backends from PAPERS.md:
//
//   * BITMAPFIT — cache-line-bucketed bitmap allocator (Matani & Menghani
//     2021): same-class objects pack into aligned 4K slabs whose only
//     metadata is one header line, searched a word at a time;
//   * SPACEFIT — head-first best fit over a size-sorted freelist with
//     space-fitting splits (Hakarsa 2024): space-optimal placement at full
//     sequential-fit search cost.
//
// Part one regenerates the Figure 6/7-style miss-rate-vs-cache-size cells
// for GhostScript's small and medium inputs; part two the Table 4/5-style
// estimated execution seconds for the allocation-heavy espresso and make at
// 16K and 64K caches. The paper's five allocators run alongside as the
// reference columns, out of the same MatrixRunner sweep (--jobs workers;
// bit-identical at any job count; --out-json exports every cell).
//
// Shapes to reproduce: BITMAPFIT clusters with the segregated allocators
// (below both sequential fits at every cache size) and searches an order of
// magnitude fewer blocks than SPACEFIT; SPACEFIT requests the smallest heap
// of the sequential family but pays for its sorted-list walks in
// instruction share and estimated seconds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/StackSim.h"
#include "support/Error.h"

#include <fstream>

using namespace allocsim;

namespace {

std::vector<AllocatorKind> modernSweepAllocators() {
  std::vector<AllocatorKind> Kinds(PaperAllocators, PaperAllocators + 5);
  Kinds.push_back(AllocatorKind::BitmapFit);
  Kinds.push_back(AllocatorKind::SpaceFit);
  return Kinds;
}

ResultStore runModernMatrix(const std::vector<WorkloadId> &Workloads,
                            const std::vector<CacheConfig> &Caches,
                            const BenchOptions &Options,
                            const std::string &OutJson) {
  MatrixSpec Spec;
  Spec.Workloads = Workloads;
  Spec.Allocators = modernSweepAllocators();
  Spec.Caches = Caches;
  Spec.Base = baseConfig(Workloads.front(), Options);

  MatrixOptions Run;
  Run.Jobs = Options.Jobs;
  ResultStore Store = runMatrix(Spec, Run);
  for (size_t I = 0; I != Store.size(); ++I)
    if (!Store.cell(I).Ok)
      reportFatalError(std::string("bench matrix cell failed: workload ") +
                       workloadName(Store.cell(I).Workload) + ", allocator " +
                       allocatorKindName(Store.cell(I).Allocator) + ": " +
                       Store.cell(I).Error);
  if (!OutJson.empty()) {
    std::ofstream Out(OutJson);
    if (!Out)
      reportFatalError("cannot write '" + OutJson + "'");
    Store.writeJson(Out);
  }
  return Store;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Extension: modern backends (BITMAPFIT, SPACEFIT) in the "
              "paper's miss-rate and execution-time studies",
              *Options);

  const std::vector<AllocatorKind> Allocators = modernSweepAllocators();

  // Part one: Figure 6/7-style miss-rate columns, GS small and medium
  // inputs, 16K..256K — direct-mapped per config, or the shared-set-count
  // family when the stack-distance engine runs the sweep in one pass.
  const bool StackEngine = Options->Engine == CacheEngineKind::StackDist;
  const std::vector<CacheConfig> Sweep =
      StackEngine ? stackCacheSweep() : paperCacheSweep();
  ResultStore MissStore = runModernMatrix(
      {WorkloadId::GsSmall, WorkloadId::GsMedium}, Sweep, *Options,
      Options->OutJson.empty() ? "" : Options->OutJson + ".missrate.json");
  const char *Figures[] = {"Figure 6 + moderns (GS-Small)",
                           "Figure 7 + moderns (GS-Medium)"};
  for (size_t In = 0; In != 2; ++In) {
    std::vector<std::string> Headers = {"cache KB"};
    for (AllocatorKind Allocator : Allocators)
      Headers.emplace_back(allocatorKindName(Allocator));
    Table Out(Headers);
    for (size_t CacheIdx = 0; CacheIdx != Sweep.size(); ++CacheIdx) {
      Out.beginRow();
      Out.num(uint64_t(Sweep[CacheIdx].SizeBytes / 1024));
      for (size_t A = 0; A != Allocators.size(); ++A)
        Out.num(100.0 *
                    MissStore.at(In, A).Result.Caches[CacheIdx].Stats
                        .missRate(),
                2);
    }
    renderTable(Out, *Options,
                std::string(Figures[In]) + ": miss rate (%)");
  }

  // Part two: Table 4/5-style estimated seconds at 16K and 64K, plus the
  // allocation-policy costs that explain them.
  // Under the stack engine the 16K/64K pair becomes a 512-set family (64K
  // at 4-way) so it, too, is one pass.
  ResultStore TimeStore = runModernMatrix(
      {WorkloadId::Espresso, WorkloadId::Make},
      StackEngine ? std::vector<CacheConfig>{CacheConfig{16 * 1024, 32, 1},
                                             CacheConfig{64 * 1024, 32, 4}}
                  : std::vector<CacheConfig>{CacheConfig{16 * 1024, 32, 1},
                                             CacheConfig{64 * 1024, 32, 1}},
      *Options,
      Options->OutJson.empty() ? "" : Options->OutJson + ".exectime.json");
  const WorkloadId TimeWorkloads[] = {WorkloadId::Espresso, WorkloadId::Make};
  for (size_t W = 0; W != 2; ++W) {
    WorkloadEngine Engine(getProfile(TimeWorkloads[W]),
                          baseConfig(TimeWorkloads[W], *Options).Engine);
    double Scale = Engine.effectiveScale();
    Table Out({"allocator", "sec 16K (total/miss)", "sec 64K (total/miss)",
               "scan/op", "malloc+free %", "heap KB"});
    for (size_t A = 0; A != Allocators.size(); ++A) {
      const RunResult &Run = TimeStore.at(W, A).Result;
      Out.beginRow();
      Out.cell(allocatorKindName(Allocators[A]));
      for (size_t CacheIdx = 0; CacheIdx != 2; ++CacheIdx)
        Out.cell(
            formatDouble(Run.Caches[CacheIdx].Time.seconds() * Scale, 2) +
            "/" +
            formatDouble(Run.Caches[CacheIdx].Time.missSeconds() * Scale,
                         2));
      Out.num(double(Run.BlocksSearched) / double(Run.Alloc.MallocCalls), 1);
      Out.num(100.0 * Run.allocInstrFraction(), 1);
      Out.num(uint64_t(Run.HeapBytes / 1024));
    }
    renderTable(Out, *Options,
                std::string("Tables 4-5 + moderns (") +
                    workloadName(TimeWorkloads[W]) +
                    "): estimated seconds, 25 MHz, scaled to paper volume");
  }
  return 0;
}
