//===- bench/bench_ext_sequential_fit.cpp - Sequential-fit ablation -------===//
//
// Extension of the paper's conclusion that "allocators based on
// sequential-fit methods, such as first-fit, best-fit, etc, have poor
// reference locality": the paper measures only the roving first fit; this
// benchmark runs the whole sequential-fit family —
//
//   * first fit with the paper's roving pointer,
//   * first fit with LIFO insertion (scan from the head),
//   * first fit with an address-ordered freelist (the discipline whose
//     cost the paper's Section 4.1 calls out),
//   * exhaustive best fit,
//
// against BSD as the segregated-storage reference, reporting search
// lengths, instruction share, heap size and miss rate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "application profile to run");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  printBanner("Extension: the sequential-fit family on " +
                  std::string(workloadName(Workload)) + ", 16K/64K caches",
              *Options);

  struct Variant {
    const char *Name;
    AllocatorKind Kind;
    FirstFitPolicy Policy;
  };
  const Variant Variants[] = {
      {"first fit (roving, paper)", AllocatorKind::FirstFit,
       FirstFitPolicy::Roving},
      {"first fit (LIFO)", AllocatorKind::FirstFit, FirstFitPolicy::Lifo},
      {"first fit (address-ordered)", AllocatorKind::FirstFit,
       FirstFitPolicy::AddressOrdered},
      {"best fit", AllocatorKind::BestFit, FirstFitPolicy::Roving},
      {"BSD (segregated reference)", AllocatorKind::Bsd,
       FirstFitPolicy::Roving},
  };

  Table Out({"variant", "scan/op", "malloc+free %", "heap KB", "miss % 16K",
             "miss % 64K"});
  for (const Variant &V : Variants) {
    ExperimentConfig Config = baseConfig(Workload, *Options);
    Config.Allocator = V.Kind;
    Config.FirstFitDiscipline = V.Policy;
    Config.Caches = {CacheConfig{16 * 1024, 32, 1},
                     CacheConfig{64 * 1024, 32, 1}};
    RunResult Result = runExperiment(Config);

    Out.beginRow();
    Out.cell(V.Name);
    Out.num(double(Result.BlocksSearched) /
                double(Result.Alloc.MallocCalls),
            1);
    Out.num(100.0 * Result.allocInstrFraction(), 1);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(100.0 * Result.Caches[0].Stats.missRate(), 2);
    Out.num(100.0 * Result.Caches[1].Stats.missRate(), 2);
  }
  renderTable(Out, *Options);
  return 0;
}
