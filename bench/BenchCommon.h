//===- bench/BenchCommon.h - Shared benchmark harness pieces ----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag handling and formatting shared by the per-table/per-figure
/// benchmark binaries. Every binary accepts:
///
///   --scale N      divide the paper's allocation counts by N (default 8;
///                  workloads that cannot be scaled without shrinking their
///                  live heap, like PTC, are clamped automatically)
///   --seed S       workload RNG seed
///   --csv          emit CSV instead of aligned text
///   --jobs N       MatrixRunner worker threads for the sweep benches
///                  (0 = all hardware threads; results are bit-identical
///                  at any job count)
///   --out-json P   also export the full experiment matrix as JSON to P
///
/// and prints the paper artifact it regenerates, alongside the paper's
/// published values where the scanned text preserves them.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_BENCH_BENCHCOMMON_H
#define ALLOCSIM_BENCH_BENCHCOMMON_H

#include "core/Lab.h"
#include "core/MatrixRunner.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <optional>
#include <string>

namespace allocsim {

/// Parsed common flags.
struct BenchOptions {
  uint32_t Scale = 8;
  uint64_t Seed = 0x5EEDBA5E;
  bool Csv = false;
  /// MatrixRunner worker threads (0 = all hardware threads).
  uint32_t Jobs = 0;
  /// When non-empty, matrix-backed benches also export their full
  /// ResultStore as JSON to this path.
  std::string OutJson;
  /// Telemetry probe level for every run (off keeps the paper numbers
  /// bit-identical; summary/full add counters/histograms to the export).
  TelemetryLevel Telemetry = TelemetryLevel::Off;
  /// When non-empty, matrix-backed benches also export per-cell + merged
  /// telemetry ("allocsim-telemetry-v1") to this path.
  std::string OutTelemetryJson;
  /// Cache sweep engine for every run. Under StackDist the sweep benches
  /// substitute stackCacheSweep()-style families (same capacities, shared
  /// set count) for their direct-mapped sweeps, since a stack-distance
  /// family must share its set-indexing function.
  CacheEngineKind Engine = CacheEngineKind::PerConfig;
};

/// Registers and parses the common flags (plus any caller-registered ones
/// through \p Cli). Returns nullopt if the program should exit.
std::optional<BenchOptions> parseBenchOptions(int Argc, const char *const *Argv,
                                              CommandLine &Cli);

/// Prints a title banner and the scale note.
void printBanner(const std::string &Title, const BenchOptions &Options);

/// Renders \p Out per the --csv choice.
void renderTable(const Table &Out, const BenchOptions &Options,
                 const std::string &Title = "");

/// Builds the base experiment configuration for a workload under the
/// common options (no caches or paging attached).
ExperimentConfig baseConfig(WorkloadId Workload, const BenchOptions &Options);

/// Formats a fault rate the way the paper's log-scale figures label it.
std::string formatRate(double Value);

/// Runs \p Workloads x PaperAllocators through the MatrixRunner at
/// Options.Jobs workers, with every cell observing all of \p Caches.
/// Exports the matrix to Options.OutJson when set, and dies with the
/// cell's attribution if any cell fails (the paper sweeps have no
/// legitimately failing cells). Index the store with at(W, A).
ResultStore runBenchMatrix(const std::vector<WorkloadId> &Workloads,
                           const std::vector<CacheConfig> &Caches,
                           const BenchOptions &Options);

/// Runs the Figure 4/5 and Table 4/5 study: every paper workload under
/// every paper allocator with one direct-mapped cache of \p CacheKb,
/// through the MatrixRunner (parallel across cells, deterministic).
/// Returns Results[workload][allocator] in PaperWorkloads/PaperAllocators
/// order.
std::vector<std::vector<RunResult>> runTimeStudy(uint32_t CacheKb,
                                                 const BenchOptions &Options);

/// Emits the Figure 4/5 artifact: per-application execution time
/// normalized to FirstFit, base (instructions only) and total (with the
/// 25-cycle miss penalty), plus the miss share of execution time.
void emitNormalizedTimeStudy(uint32_t CacheKb, const BenchOptions &Options);

/// Paper reference entry for emitTimeTable (see PaperData.h).
struct PaperTime;

/// Emits the Table 4/5 artifact: estimated total seconds and miss seconds
/// per application and allocator, next to the paper's published values.
void emitTimeTable(uint32_t CacheKb, const PaperTime Paper[5][5],
                   const BenchOptions &Options);

/// Runs a Figure 2/3-style page-fault study: one workload under all five
/// allocators, printing faults-per-reference at each memory size, plus the
/// per-allocator total heap ("total amount of memory requested by the
/// program", the paper's x-axis end symbols).
void runPageFaultFigure(WorkloadId Workload,
                        const std::vector<uint32_t> &MemoryKb,
                        const BenchOptions &Options);

} // namespace allocsim

#endif // ALLOCSIM_BENCH_BENCHCOMMON_H
