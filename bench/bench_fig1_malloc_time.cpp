//===- bench/bench_fig1_malloc_time.cpp - Paper Figure 1 ------------------===//
//
// Regenerates Figure 1 ("Percent of Time in Malloc and Free"): for each
// application and allocator, the percentage of executed instructions spent
// in the allocator, counting instructions only ("assuming no cache miss
// penalty", as the paper does for this figure).
//
// The paper's reading: BSD is uniformly the leanest; QuickFit close behind;
// FIRSTFIT's scans and GNU LOCAL's bookkeeping make them the most
// expensive, ranging "from a few percent to ~30%" depending on the
// application.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figure 1: percent of execution time in malloc/free "
              "(instruction counts, no cache penalty)",
              *Options);

  std::vector<std::string> Headers = {"allocator"};
  for (WorkloadId Workload : PaperWorkloads)
    Headers.push_back(workloadName(Workload));
  Table Out(Headers);

  for (AllocatorKind Allocator : PaperAllocators) {
    Out.beginRow();
    Out.cell(allocatorKindName(Allocator));
    for (WorkloadId Workload : PaperWorkloads) {
      ExperimentConfig Config = baseConfig(Workload, *Options);
      Config.Allocator = Allocator;
      RunResult Result = runExperiment(Config);
      Out.num(100.0 * Result.allocInstrFraction(), 1);
    }
  }
  renderTable(Out, *Options, "% of instructions in malloc/free");
  return 0;
}
