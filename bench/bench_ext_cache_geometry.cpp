//===- bench/bench_ext_cache_geometry.cpp - Cache geometry extension ------===//
//
// Extension beyond the paper's fixed geometry (direct-mapped, 32-byte
// blocks): sweeps block size and associativity for one workload. The paper
// motivates both axes — multi-word lines are its "hardware prefetching"
// (Smith's block-size study is cited), and associativity is raised in the
// related GC-locality work it discusses.
//
// Expected shapes: larger blocks help the dense allocators most (spatial
// locality from packed same-size objects) and help FIRSTFIT least (its
// scattered scans drag in useless neighbours); modest associativity
// removes conflict misses for everyone but does not change the ordering.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "espresso", "application profile to run");
  Cli.addFlag("cache-kb", "64", "cache size in KB");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  auto CacheKb = static_cast<uint32_t>(Cli.getInt("cache-kb"));
  printBanner("Extension: cache geometry sweep on " +
                  std::string(workloadName(Workload)) + ", " +
                  std::to_string(CacheKb) + "K cache",
              *Options);

  std::vector<CacheConfig> Configs;
  for (uint32_t BlockBytes : {16u, 32u, 64u, 128u})
    Configs.push_back(CacheConfig{CacheKb * 1024, BlockBytes, 1});
  for (uint32_t Assoc : {2u, 4u, 8u})
    Configs.push_back(CacheConfig{CacheKb * 1024, 32, Assoc});

  ExperimentConfig Base = baseConfig(Workload, *Options);
  Base.Caches = Configs;
  std::vector<RunResult> Results =
      runSweep(Base, {PaperAllocators, PaperAllocators + 5});

  std::vector<std::string> Headers = {"geometry"};
  for (AllocatorKind Allocator : PaperAllocators)
    Headers.emplace_back(allocatorKindName(Allocator));
  Table Out(Headers);
  for (size_t CacheIdx = 0; CacheIdx != Configs.size(); ++CacheIdx) {
    Out.beginRow();
    Out.cell(Configs[CacheIdx].describe());
    for (const RunResult &Result : Results)
      Out.num(100.0 * Result.Caches[CacheIdx].Stats.missRate(), 2);
  }
  renderTable(Out, *Options, "miss rate (%)");
  return 0;
}
