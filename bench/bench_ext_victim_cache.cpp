//===- bench/bench_ext_victim_cache.cpp - Victim-cache extension ----------===//
//
// Extension motivated by the paper's introduction, which cites Jouppi's
// victim-cache work as the architecture community's response to rising
// miss penalties: how much of each allocator's miss rate on a direct-
// mapped cache is *conflict* structure that a tiny fully-associative
// victim buffer absorbs?
//
// Expected shape: the buffer helps every allocator but cannot rescue
// FIRSTFIT, whose misses are capacity/scatter misses from freelist scans
// rather than conflicts; the dense allocators (GnuLocal, BSD) lose a
// larger *fraction* of their misses to the buffer.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workload/Driver.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "espresso", "application profile to run");
  Cli.addFlag("cache-kb", "16", "main-array size in KB");
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  auto CacheKb = static_cast<uint32_t>(Cli.getInt("cache-kb"));
  printBanner("Extension: victim buffers (Jouppi) on " +
                  std::string(workloadName(Workload)) + ", " +
                  std::to_string(CacheKb) + "K direct-mapped main array",
              *Options);

  const uint32_t BufferSizes[] = {1, 4, 15};
  Table Out({"allocator", "plain miss %", "+1 entry", "+4 entries",
             "+15 entries", "absorbed % (4)"});

  for (AllocatorKind Kind : PaperAllocators) {
    // One execution observed by the plain cache and all buffer variants.
    MemoryBus Bus;
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);
    CacheConfig MainArray{CacheKb * 1024, 32, 1};
    DirectMappedCache Plain(MainArray);
    Bus.attach(&Plain);
    std::vector<std::unique_ptr<VictimCache>> Buffered;
    for (uint32_t Entries : BufferSizes) {
      Buffered.push_back(std::make_unique<VictimCache>(MainArray, Entries));
      Bus.attach(Buffered.back().get());
    }

    SimHeap Heap(Bus);
    CostModel Cost;
    std::unique_ptr<Allocator> Alloc = createAllocator(Kind, Heap, Cost);
    const AppProfile &Profile = getProfile(Workload);
    EngineOptions EngineOpts;
    EngineOpts.Scale = Options->Scale;
    EngineOpts.Seed = Options->Seed;
    WorkloadEngine Engine(Profile, EngineOpts);
    Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
    Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
    Bus.flush();

    Out.beginRow();
    Out.cell(allocatorKindName(Kind));
    Out.num(100.0 * Plain.stats().missRate(), 2);
    for (const auto &Cache : Buffered)
      Out.num(100.0 * Cache->stats().missRate(), 2);
    double Absorbed =
        Plain.stats().Misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(Buffered[1]->victimHits()) /
                  static_cast<double>(Plain.stats().Misses);
    Out.num(Absorbed, 1);
  }
  renderTable(Out, *Options, "miss rate (%) with victim buffers");
  return 0;
}
