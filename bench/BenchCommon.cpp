//===- bench/BenchCommon.cpp - Shared benchmark harness pieces ------------===//

#include "BenchCommon.h"

#include "PaperData.h"

#include "support/Error.h"

#include <cstdio>
#include <fstream>
#include <iostream>

using namespace allocsim;

std::optional<BenchOptions>
allocsim::parseBenchOptions(int Argc, const char *const *Argv,
                            CommandLine &Cli) {
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("seed", "1592932958", "workload RNG seed");
  Cli.addFlag("csv", "false", "emit CSV instead of aligned text");
  Cli.addFlag("jobs", "0",
              "matrix worker threads (0 = all hardware threads)");
  Cli.addFlag("out-json", "",
              "export the full experiment matrix as JSON to this path");
  Cli.addFlag("telemetry", "off",
              "telemetry probes: off (default; bit-identical paper numbers), "
              "summary or full");
  Cli.addFlag("out-telemetry-json", "",
              "export per-cell + merged telemetry as JSON to this path "
              "(matrix-backed benches only)");
  Cli.addFlag("engine", "percfg",
              "cache sweep engine: percfg (one simulator per config) or "
              "stackdist (one stack-distance pass; sweep benches switch to "
              "a shared-set-count family of the same capacities)");
  if (!Cli.parse(Argc, Argv))
    return std::nullopt;
  BenchOptions Options;
  Options.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Options.Seed = static_cast<uint64_t>(Cli.getInt("seed"));
  Options.Csv = Cli.getBool("csv");
  Options.Jobs = static_cast<uint32_t>(Cli.getInt("jobs"));
  Options.OutJson = Cli.getString("out-json");
  if (!tryParseTelemetryLevel(Cli.getString("telemetry"),
                              Options.Telemetry)) {
    std::cerr << "error: bad --telemetry '" << Cli.getString("telemetry")
              << "' (expected off, summary or full)\n";
    return std::nullopt;
  }
  Options.OutTelemetryJson = Cli.getString("out-telemetry-json");
  if (std::optional<CacheEngineKind> Engine =
          tryParseCacheEngine(Cli.getString("engine"))) {
    Options.Engine = *Engine;
  } else {
    std::cerr << "error: bad --engine '" << Cli.getString("engine")
              << "' (expected percfg or stackdist)\n";
    return std::nullopt;
  }
  return Options;
}

void allocsim::printBanner(const std::string &Title,
                           const BenchOptions &Options) {
  std::cout << "=== " << Title << " ===\n"
            << "(workloads at 1/" << Options.Scale
            << " of the paper's allocation counts; live heaps kept at paper "
               "scale;\n unscalable workloads clamped; seed "
            << Options.Seed << ")\n\n";
}

void allocsim::renderTable(const Table &Out, const BenchOptions &Options,
                           const std::string &Title) {
  if (Options.Csv)
    Out.renderCsv(std::cout);
  else
    Out.renderText(std::cout, Title);
  std::cout << "\n";
}

ExperimentConfig allocsim::baseConfig(WorkloadId Workload,
                                      const BenchOptions &Options) {
  ExperimentConfig Config;
  Config.Workload = Workload;
  Config.Engine.Scale = Options.Scale;
  Config.Engine.Seed = Options.Seed;
  Config.Telemetry = Options.Telemetry;
  Config.CacheEngine = Options.Engine;
  return Config;
}

std::string allocsim::formatRate(double Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.3e", Value);
  return Buffer;
}

ResultStore allocsim::runBenchMatrix(const std::vector<WorkloadId> &Workloads,
                                     const std::vector<CacheConfig> &Caches,
                                     const BenchOptions &Options) {
  MatrixSpec Spec;
  Spec.Workloads = Workloads;
  Spec.Allocators.assign(PaperAllocators, PaperAllocators + 5);
  Spec.Caches = Caches;
  Spec.Base = baseConfig(Workloads.front(), Options);

  MatrixOptions Run;
  Run.Jobs = Options.Jobs;
  ResultStore Store = runMatrix(Spec, Run);

  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    if (!Cell.Ok)
      reportFatalError(std::string("bench matrix cell failed: workload ") +
                       workloadName(Cell.Workload) + ", allocator " +
                       allocatorKindName(Cell.Allocator) + ": " +
                       Cell.Error);
  }

  if (!Options.OutJson.empty()) {
    std::ofstream Out(Options.OutJson);
    if (!Out)
      reportFatalError("cannot write '" + Options.OutJson + "'");
    Store.writeJson(Out);
  }
  if (!Options.OutTelemetryJson.empty()) {
    std::ofstream Out(Options.OutTelemetryJson);
    if (!Out)
      reportFatalError("cannot write '" + Options.OutTelemetryJson + "'");
    Store.writeTelemetryJson(Out);
  }
  return Store;
}

std::vector<std::vector<RunResult>>
allocsim::runTimeStudy(uint32_t CacheKb, const BenchOptions &Options) {
  ResultStore Store = runBenchMatrix(
      {PaperWorkloads, PaperWorkloads + 5},
      {CacheConfig{CacheKb * 1024, 32, 1}}, Options);
  std::vector<std::vector<RunResult>> Results;
  for (size_t W = 0; W != 5; ++W) {
    Results.emplace_back();
    for (size_t A = 0; A != 5; ++A)
      Results.back().push_back(Store.at(W, A).Result);
  }
  return Results;
}

void allocsim::emitNormalizedTimeStudy(uint32_t CacheKb,
                                       const BenchOptions &Options) {
  std::vector<std::vector<RunResult>> Results =
      runTimeStudy(CacheKb, Options);

  std::vector<std::string> Headers = {"allocator"};
  for (WorkloadId Workload : PaperWorkloads)
    Headers.push_back(std::string(workloadName(Workload)) + " base/total");
  Table Out(Headers);

  for (size_t AllocIdx = 0; AllocIdx != 5; ++AllocIdx) {
    Out.beginRow();
    Out.cell(allocatorKindName(PaperAllocators[AllocIdx]));
    for (size_t AppIdx = 0; AppIdx != 5; ++AppIdx) {
      const RunResult &Run = Results[AppIdx][AllocIdx];
      const RunResult &FirstFit = Results[AppIdx][0];
      double BaseNorm = double(Run.totalInstructions()) /
                        double(FirstFit.totalInstructions());
      double TotalNorm = Run.Caches[0].Time.totalCycles() /
                         FirstFit.Caches[0].Time.totalCycles();
      Out.cell(formatDouble(BaseNorm, 3) + "/" + formatDouble(TotalNorm, 3));
    }
  }
  renderTable(Out, Options,
              "execution time normalized to FirstFit "
              "(base = instructions only; total = with cache penalty)");

  Table Share({"allocator", "espresso", "gs", "ptc", "gawk", "make"});
  for (size_t AllocIdx = 0; AllocIdx != 5; ++AllocIdx) {
    Share.beginRow();
    Share.cell(allocatorKindName(PaperAllocators[AllocIdx]));
    for (size_t AppIdx = 0; AppIdx != 5; ++AppIdx) {
      const RunResult &Run = Results[AppIdx][AllocIdx];
      Share.num(100.0 * Run.Caches[0].Time.missCycles() /
                    Run.Caches[0].Time.totalCycles(),
                1);
    }
  }
  renderTable(Share, Options, "cache-miss share of execution time (%)");
}

void allocsim::emitTimeTable(uint32_t CacheKb, const PaperTime Paper[5][5],
                             const BenchOptions &Options) {
  std::vector<std::vector<RunResult>> Results =
      runTimeStudy(CacheKb, Options);

  auto FormatPaper = [](const PaperTime &Entry) -> std::string {
    if (Entry.TotalSeconds < 0)
      return "?";
    return formatDouble(Entry.TotalSeconds, 2) + "/" +
           formatDouble(Entry.MissSeconds, 2);
  };

  std::vector<std::string> Headers = {"allocator"};
  for (WorkloadId Workload : PaperWorkloads) {
    Headers.push_back(std::string(workloadName(Workload)));
    Headers.push_back("paper");
  }
  Table Out(Headers);

  for (size_t AllocIdx = 0; AllocIdx != 5; ++AllocIdx) {
    Out.beginRow();
    Out.cell(allocatorKindName(PaperAllocators[AllocIdx]));
    for (size_t AppIdx = 0; AppIdx != 5; ++AppIdx) {
      const RunResult &Run = Results[AppIdx][AllocIdx];
      WorkloadEngine Engine(getProfile(PaperWorkloads[AppIdx]),
                            baseConfig(PaperWorkloads[AppIdx], Options)
                                .Engine);
      // Seconds at the run's scale multiplied back to paper scale; live
      // heaps are unscaled so the miss *rate* is directly comparable.
      double Scale = Engine.effectiveScale();
      double Total = Run.Caches[0].Time.seconds() * Scale;
      double Miss = Run.Caches[0].Time.missSeconds() * Scale;
      Out.cell(formatDouble(Total, 2) + "/" + formatDouble(Miss, 2));
      Out.cell(FormatPaper(Paper[AllocIdx][AppIdx]));
    }
  }
  renderTable(Out, Options,
              "estimated total seconds / seconds waiting on " +
                  std::to_string(CacheKb) +
                  "K-cache misses (25 MHz, scaled back to paper volume)");
}

void allocsim::runPageFaultFigure(WorkloadId Workload,
                                  const std::vector<uint32_t> &MemoryKb,
                                  const BenchOptions &Options) {
  std::vector<RunResult> Results;
  for (AllocatorKind Allocator : PaperAllocators) {
    ExperimentConfig Config = baseConfig(Workload, Options);
    Config.Allocator = Allocator;
    Config.PagingMemoryKb = MemoryKb;
    Results.push_back(runExperiment(Config));
  }

  std::vector<std::string> Headers = {"memory KB"};
  for (AllocatorKind Allocator : PaperAllocators)
    Headers.emplace_back(allocatorKindName(Allocator));
  Table Out(Headers);
  for (size_t Row = 0; Row != MemoryKb.size(); ++Row) {
    Out.beginRow();
    Out.num(uint64_t(MemoryKb[Row]));
    for (const RunResult &Result : Results)
      Out.cell(formatRate(Result.Paging[Row].FaultsPerRef));
  }
  renderTable(Out, Options, "page faults per memory reference (4 KB pages)");

  Table Heap({"allocator", "total heap KB", "distinct pages"});
  for (size_t I = 0; I != Results.size(); ++I) {
    Heap.beginRow();
    Heap.cell(allocatorKindName(PaperAllocators[I]));
    Heap.num(uint64_t(Results[I].HeapBytes / 1024));
    Heap.num(Results[I].DistinctPages);
  }
  renderTable(Heap, Options,
              "memory requested per allocator (the figure's x-axis ends)");
}
