//===- bench/PaperData.h - Published values from the paper ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility shim: the paper's published data points moved to
/// src/conform/PaperPoints.h so the conformance engine (which gates on the
/// claims those points encode) and the benchmark binaries (which print them
/// next to measured values) share one transcription. Benches keep including
/// this header.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_BENCH_PAPERDATA_H
#define ALLOCSIM_BENCH_PAPERDATA_H

#include "conform/PaperPoints.h"

#endif // ALLOCSIM_BENCH_PAPERDATA_H
