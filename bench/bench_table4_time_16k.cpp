//===- bench/bench_table4_time_16k.cpp - Paper Table 4 --------------------===//
//
// Regenerates Table 4: total estimated execution time and time waiting for
// cache misses with a 16-kilobyte direct-mapped cache, in all five
// allocation-intensive programs, next to the paper's published seconds.
//
// The 5-workload x 5-allocator study runs as one MatrixRunner sweep
// (--jobs workers; results are bit-identical at any job count) and exports
// to JSON with --out-json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "PaperData.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Table 4: estimated execution seconds, 16K direct-mapped "
              "cache ('?' = illegible in the scanned paper)",
              *Options);
  emitTimeTable(16, PaperTable4, *Options);
  return 0;
}
