//===- bench/bench_fig3_pagefaults_ptc.cpp - Paper Figure 3 ---------------===//
//
// Regenerates Figure 3: page fault rate for PTC (Pascal-to-C) as a function
// of physical memory size. PTC never frees, so differences between
// allocators come from per-object overhead and rounding policies — the
// paper finds "little effective difference" here apart from BSD's extra
// space.
//
// Note: PTC cannot be scaled without shrinking its heap (it frees nothing),
// so this benchmark always runs PTC's full 103K allocations.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Figure 3: page fault rate vs memory size, PTC", *Options);
  runPageFaultFigure(WorkloadId::Ptc,
                     {128, 256, 512, 768, 1024, 1536, 2048, 2560, 3072,
                      3584, 4096, 5120},
                     *Options);
  return 0;
}
