//===- bench/bench_table3_gs_inputs.cpp - Paper Table 3 -------------------===//
//
// Regenerates Table 3 ("Characteristics of Different Input Sets for
// GhostScript"): GS-Small / GS-Medium / GS-Large under the FIRSTFIT
// baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  std::optional<BenchOptions> Options = parseBenchOptions(Argc, Argv, Cli);
  if (!Options)
    return 1;
  printBanner("Table 3: GhostScript input sets (FirstFit baseline)",
              *Options);

  Table Out({"input", "instr(M)", "paper", "refs(M)", "paper", "heap KB",
             "paper", "alloc'd(K)", "paper", "freed(K)", "paper"});
  for (WorkloadId Workload :
       {WorkloadId::GsSmall, WorkloadId::GsMedium, WorkloadId::Gs}) {
    const AppProfile &Profile = getProfile(Workload);
    ExperimentConfig Config = baseConfig(Workload, *Options);
    Config.Allocator = AllocatorKind::FirstFit;
    RunResult Result = runExperiment(Config);
    WorkloadEngine Engine(Profile, Config.Engine);
    double Scale = Engine.effectiveScale();

    Out.beginRow();
    Out.cell(Profile.Name);
    Out.num(double(Result.totalInstructions()) * Scale / 1e6, 0);
    Out.num(Profile.PaperInstrMillions, 0);
    Out.num(double(Result.TotalRefs) * Scale / 1e6, 0);
    Out.num(Profile.PaperDataRefsMillions, 0);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(uint64_t(Profile.PaperMaxHeapKb));
    Out.num(double(Result.Alloc.MallocCalls) * Scale / 1e3, 0);
    Out.num(Profile.PaperObjectsAllocated / 1e3, 0);
    Out.num(double(Result.Alloc.FreeCalls) * Scale / 1e3, 0);
    Out.num(Profile.PaperObjectsFreed / 1e3, 0);
  }
  renderTable(Out, *Options);
  return 0;
}
