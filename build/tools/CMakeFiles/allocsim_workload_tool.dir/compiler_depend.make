# Empty compiler generated dependencies file for allocsim_workload_tool.
# This may be replaced when dependencies are built.
