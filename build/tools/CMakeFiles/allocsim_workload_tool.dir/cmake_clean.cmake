file(REMOVE_RECURSE
  "CMakeFiles/allocsim_workload_tool.dir/allocsim_workload_tool.cpp.o"
  "CMakeFiles/allocsim_workload_tool.dir/allocsim_workload_tool.cpp.o.d"
  "allocsim_workload_tool"
  "allocsim_workload_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_workload_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
