# Empty dependencies file for allocsim_trace_tool.
# This may be replaced when dependencies are built.
