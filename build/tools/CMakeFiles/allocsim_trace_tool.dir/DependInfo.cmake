
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/allocsim_trace_tool.cpp" "tools/CMakeFiles/allocsim_trace_tool.dir/allocsim_trace_tool.cpp.o" "gcc" "tools/CMakeFiles/allocsim_trace_tool.dir/allocsim_trace_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/allocsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/allocsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/allocsim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/allocsim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/allocsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
