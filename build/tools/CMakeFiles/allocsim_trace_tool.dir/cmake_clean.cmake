file(REMOVE_RECURSE
  "CMakeFiles/allocsim_trace_tool.dir/allocsim_trace_tool.cpp.o"
  "CMakeFiles/allocsim_trace_tool.dir/allocsim_trace_tool.cpp.o.d"
  "allocsim_trace_tool"
  "allocsim_trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
