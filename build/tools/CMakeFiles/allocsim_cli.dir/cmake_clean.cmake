file(REMOVE_RECURSE
  "CMakeFiles/allocsim_cli.dir/allocsim_cli.cpp.o"
  "CMakeFiles/allocsim_cli.dir/allocsim_cli.cpp.o.d"
  "allocsim_cli"
  "allocsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
