# Empty dependencies file for allocsim_cli.
# This may be replaced when dependencies are built.
