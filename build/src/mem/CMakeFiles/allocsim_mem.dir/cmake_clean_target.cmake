file(REMOVE_RECURSE
  "liballocsim_mem.a"
)
