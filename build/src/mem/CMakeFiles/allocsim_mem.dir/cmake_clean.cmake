file(REMOVE_RECURSE
  "CMakeFiles/allocsim_mem.dir/MemoryBus.cpp.o"
  "CMakeFiles/allocsim_mem.dir/MemoryBus.cpp.o.d"
  "CMakeFiles/allocsim_mem.dir/SimHeap.cpp.o"
  "CMakeFiles/allocsim_mem.dir/SimHeap.cpp.o.d"
  "liballocsim_mem.a"
  "liballocsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
