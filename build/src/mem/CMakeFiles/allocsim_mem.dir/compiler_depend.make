# Empty compiler generated dependencies file for allocsim_mem.
# This may be replaced when dependencies are built.
