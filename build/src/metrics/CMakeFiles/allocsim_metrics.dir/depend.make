# Empty dependencies file for allocsim_metrics.
# This may be replaced when dependencies are built.
