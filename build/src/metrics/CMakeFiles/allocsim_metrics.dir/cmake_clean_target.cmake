file(REMOVE_RECURSE
  "liballocsim_metrics.a"
)
