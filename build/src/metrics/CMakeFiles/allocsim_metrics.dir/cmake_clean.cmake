file(REMOVE_RECURSE
  "CMakeFiles/allocsim_metrics.dir/CostModel.cpp.o"
  "CMakeFiles/allocsim_metrics.dir/CostModel.cpp.o.d"
  "liballocsim_metrics.a"
  "liballocsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
