file(REMOVE_RECURSE
  "CMakeFiles/allocsim_core.dir/Lab.cpp.o"
  "CMakeFiles/allocsim_core.dir/Lab.cpp.o.d"
  "liballocsim_core.a"
  "liballocsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
