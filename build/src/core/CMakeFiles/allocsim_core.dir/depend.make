# Empty dependencies file for allocsim_core.
# This may be replaced when dependencies are built.
