file(REMOVE_RECURSE
  "liballocsim_core.a"
)
