# Empty dependencies file for allocsim_workload.
# This may be replaced when dependencies are built.
