file(REMOVE_RECURSE
  "CMakeFiles/allocsim_workload.dir/Driver.cpp.o"
  "CMakeFiles/allocsim_workload.dir/Driver.cpp.o.d"
  "CMakeFiles/allocsim_workload.dir/Engine.cpp.o"
  "CMakeFiles/allocsim_workload.dir/Engine.cpp.o.d"
  "CMakeFiles/allocsim_workload.dir/Profiles.cpp.o"
  "CMakeFiles/allocsim_workload.dir/Profiles.cpp.o.d"
  "liballocsim_workload.a"
  "liballocsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
