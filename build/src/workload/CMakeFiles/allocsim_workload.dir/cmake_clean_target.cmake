file(REMOVE_RECURSE
  "liballocsim_workload.a"
)
