file(REMOVE_RECURSE
  "CMakeFiles/allocsim_cache.dir/CacheSim.cpp.o"
  "CMakeFiles/allocsim_cache.dir/CacheSim.cpp.o.d"
  "liballocsim_cache.a"
  "liballocsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
