file(REMOVE_RECURSE
  "liballocsim_cache.a"
)
