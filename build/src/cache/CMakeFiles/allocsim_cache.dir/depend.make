# Empty dependencies file for allocsim_cache.
# This may be replaced when dependencies are built.
