file(REMOVE_RECURSE
  "CMakeFiles/allocsim_support.dir/CommandLine.cpp.o"
  "CMakeFiles/allocsim_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/allocsim_support.dir/Error.cpp.o"
  "CMakeFiles/allocsim_support.dir/Error.cpp.o.d"
  "CMakeFiles/allocsim_support.dir/Histogram.cpp.o"
  "CMakeFiles/allocsim_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/allocsim_support.dir/Table.cpp.o"
  "CMakeFiles/allocsim_support.dir/Table.cpp.o.d"
  "liballocsim_support.a"
  "liballocsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
