file(REMOVE_RECURSE
  "liballocsim_support.a"
)
