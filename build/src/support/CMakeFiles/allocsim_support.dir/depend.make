# Empty dependencies file for allocsim_support.
# This may be replaced when dependencies are built.
