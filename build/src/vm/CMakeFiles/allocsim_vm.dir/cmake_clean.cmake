file(REMOVE_RECURSE
  "CMakeFiles/allocsim_vm.dir/PageSim.cpp.o"
  "CMakeFiles/allocsim_vm.dir/PageSim.cpp.o.d"
  "liballocsim_vm.a"
  "liballocsim_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
