# Empty compiler generated dependencies file for allocsim_vm.
# This may be replaced when dependencies are built.
