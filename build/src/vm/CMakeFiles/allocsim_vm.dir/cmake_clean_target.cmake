file(REMOVE_RECURSE
  "liballocsim_vm.a"
)
