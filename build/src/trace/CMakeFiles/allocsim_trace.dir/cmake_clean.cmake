file(REMOVE_RECURSE
  "CMakeFiles/allocsim_trace.dir/AllocEvents.cpp.o"
  "CMakeFiles/allocsim_trace.dir/AllocEvents.cpp.o.d"
  "CMakeFiles/allocsim_trace.dir/RefTrace.cpp.o"
  "CMakeFiles/allocsim_trace.dir/RefTrace.cpp.o.d"
  "liballocsim_trace.a"
  "liballocsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
