# Empty dependencies file for allocsim_trace.
# This may be replaced when dependencies are built.
