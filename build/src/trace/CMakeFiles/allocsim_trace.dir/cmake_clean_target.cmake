file(REMOVE_RECURSE
  "liballocsim_trace.a"
)
