
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/Allocator.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/Allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/Allocator.cpp.o.d"
  "/root/repo/src/alloc/BestFit.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/BestFit.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/BestFit.cpp.o.d"
  "/root/repo/src/alloc/Bsd.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/Bsd.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/Bsd.cpp.o.d"
  "/root/repo/src/alloc/CoalescingAllocator.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/CoalescingAllocator.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/CoalescingAllocator.cpp.o.d"
  "/root/repo/src/alloc/CustomAlloc.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/CustomAlloc.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/CustomAlloc.cpp.o.d"
  "/root/repo/src/alloc/FirstFit.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/FirstFit.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/FirstFit.cpp.o.d"
  "/root/repo/src/alloc/GnuGxx.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/GnuGxx.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/GnuGxx.cpp.o.d"
  "/root/repo/src/alloc/GnuLocal.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/GnuLocal.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/GnuLocal.cpp.o.d"
  "/root/repo/src/alloc/QuickFit.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/QuickFit.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/QuickFit.cpp.o.d"
  "/root/repo/src/alloc/SizeClassMap.cpp" "src/alloc/CMakeFiles/allocsim_alloc.dir/SizeClassMap.cpp.o" "gcc" "src/alloc/CMakeFiles/allocsim_alloc.dir/SizeClassMap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/allocsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/allocsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/allocsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
