# Empty compiler generated dependencies file for allocsim_alloc.
# This may be replaced when dependencies are built.
