file(REMOVE_RECURSE
  "CMakeFiles/allocsim_alloc.dir/Allocator.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/Allocator.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/BestFit.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/BestFit.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/Bsd.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/Bsd.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/CoalescingAllocator.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/CoalescingAllocator.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/CustomAlloc.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/CustomAlloc.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/FirstFit.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/FirstFit.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/GnuGxx.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/GnuGxx.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/GnuLocal.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/GnuLocal.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/QuickFit.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/QuickFit.cpp.o.d"
  "CMakeFiles/allocsim_alloc.dir/SizeClassMap.cpp.o"
  "CMakeFiles/allocsim_alloc.dir/SizeClassMap.cpp.o.d"
  "liballocsim_alloc.a"
  "liballocsim_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocsim_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
