file(REMOVE_RECURSE
  "liballocsim_alloc.a"
)
