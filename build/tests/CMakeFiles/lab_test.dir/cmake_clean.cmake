file(REMOVE_RECURSE
  "CMakeFiles/lab_test.dir/lab_test.cpp.o"
  "CMakeFiles/lab_test.dir/lab_test.cpp.o.d"
  "lab_test"
  "lab_test.pdb"
  "lab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
