# Empty compiler generated dependencies file for lab_test.
# This may be replaced when dependencies are built.
