file(REMOVE_RECURSE
  "CMakeFiles/sequentialfit_test.dir/sequentialfit_test.cpp.o"
  "CMakeFiles/sequentialfit_test.dir/sequentialfit_test.cpp.o.d"
  "sequentialfit_test"
  "sequentialfit_test.pdb"
  "sequentialfit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequentialfit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
