# Empty compiler generated dependencies file for sequentialfit_test.
# This may be replaced when dependencies are built.
