# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_property_test[1]_include.cmake")
include("/root/repo/build/tests/sizeclass_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/lab_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sequentialfit_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/cache_reference_test[1]_include.cmake")
