# Empty dependencies file for allocator_anatomy.
# This may be replaced when dependencies are built.
