file(REMOVE_RECURSE
  "CMakeFiles/allocator_anatomy.dir/allocator_anatomy.cpp.o"
  "CMakeFiles/allocator_anatomy.dir/allocator_anatomy.cpp.o.d"
  "allocator_anatomy"
  "allocator_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
