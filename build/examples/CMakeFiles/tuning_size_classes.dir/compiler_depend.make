# Empty compiler generated dependencies file for tuning_size_classes.
# This may be replaced when dependencies are built.
