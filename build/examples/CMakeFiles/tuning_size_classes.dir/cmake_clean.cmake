file(REMOVE_RECURSE
  "CMakeFiles/tuning_size_classes.dir/tuning_size_classes.cpp.o"
  "CMakeFiles/tuning_size_classes.dir/tuning_size_classes.cpp.o.d"
  "tuning_size_classes"
  "tuning_size_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_size_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
