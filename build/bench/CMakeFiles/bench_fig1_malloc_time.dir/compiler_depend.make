# Empty compiler generated dependencies file for bench_fig1_malloc_time.
# This may be replaced when dependencies are built.
