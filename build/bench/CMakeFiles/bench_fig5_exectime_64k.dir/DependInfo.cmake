
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_exectime_64k.cpp" "bench/CMakeFiles/bench_fig5_exectime_64k.dir/bench_fig5_exectime_64k.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_exectime_64k.dir/bench_fig5_exectime_64k.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/allocsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/allocsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/allocsim_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/allocsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/allocsim_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/allocsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/allocsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/allocsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/allocsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
