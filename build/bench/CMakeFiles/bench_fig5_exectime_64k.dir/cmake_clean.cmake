file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_exectime_64k.dir/bench_fig5_exectime_64k.cpp.o"
  "CMakeFiles/bench_fig5_exectime_64k.dir/bench_fig5_exectime_64k.cpp.o.d"
  "bench_fig5_exectime_64k"
  "bench_fig5_exectime_64k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_exectime_64k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
