# Empty compiler generated dependencies file for bench_fig5_exectime_64k.
# This may be replaced when dependencies are built.
