# Empty dependencies file for bench_ext_victim_cache.
# This may be replaced when dependencies are built.
