# Empty dependencies file for bench_fig6_7_8_gs_missrate.
# This may be replaced when dependencies are built.
