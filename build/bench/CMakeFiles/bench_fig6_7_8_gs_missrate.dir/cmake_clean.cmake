file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_8_gs_missrate.dir/bench_fig6_7_8_gs_missrate.cpp.o"
  "CMakeFiles/bench_fig6_7_8_gs_missrate.dir/bench_fig6_7_8_gs_missrate.cpp.o.d"
  "bench_fig6_7_8_gs_missrate"
  "bench_fig6_7_8_gs_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_8_gs_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
