# Empty compiler generated dependencies file for bench_ext_penalty_sweep.
# This may be replaced when dependencies are built.
