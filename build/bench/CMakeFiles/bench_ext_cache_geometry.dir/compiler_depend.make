# Empty compiler generated dependencies file for bench_ext_cache_geometry.
# This may be replaced when dependencies are built.
