# Empty compiler generated dependencies file for bench_fig9_sizeclass_ablation.
# This may be replaced when dependencies are built.
