# Empty dependencies file for bench_fig4_exectime_16k.
# This may be replaced when dependencies are built.
