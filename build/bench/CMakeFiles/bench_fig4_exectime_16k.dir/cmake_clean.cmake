file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_exectime_16k.dir/bench_fig4_exectime_16k.cpp.o"
  "CMakeFiles/bench_fig4_exectime_16k.dir/bench_fig4_exectime_16k.cpp.o.d"
  "bench_fig4_exectime_16k"
  "bench_fig4_exectime_16k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_exectime_16k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
