file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_time_64k.dir/bench_table5_time_64k.cpp.o"
  "CMakeFiles/bench_table5_time_64k.dir/bench_table5_time_64k.cpp.o.d"
  "bench_table5_time_64k"
  "bench_table5_time_64k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_time_64k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
