# Empty dependencies file for bench_table5_time_64k.
# This may be replaced when dependencies are built.
