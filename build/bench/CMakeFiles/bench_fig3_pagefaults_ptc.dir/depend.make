# Empty dependencies file for bench_fig3_pagefaults_ptc.
# This may be replaced when dependencies are built.
