file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pagefaults_ptc.dir/bench_fig3_pagefaults_ptc.cpp.o"
  "CMakeFiles/bench_fig3_pagefaults_ptc.dir/bench_fig3_pagefaults_ptc.cpp.o.d"
  "bench_fig3_pagefaults_ptc"
  "bench_fig3_pagefaults_ptc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pagefaults_ptc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
