# Empty compiler generated dependencies file for bench_table4_time_16k.
# This may be replaced when dependencies are built.
