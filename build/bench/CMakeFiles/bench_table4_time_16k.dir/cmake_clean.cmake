file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_time_16k.dir/bench_table4_time_16k.cpp.o"
  "CMakeFiles/bench_table4_time_16k.dir/bench_table4_time_16k.cpp.o.d"
  "bench_table4_time_16k"
  "bench_table4_time_16k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_time_16k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
