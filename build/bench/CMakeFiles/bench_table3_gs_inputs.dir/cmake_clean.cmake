file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gs_inputs.dir/bench_table3_gs_inputs.cpp.o"
  "CMakeFiles/bench_table3_gs_inputs.dir/bench_table3_gs_inputs.cpp.o.d"
  "bench_table3_gs_inputs"
  "bench_table3_gs_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gs_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
