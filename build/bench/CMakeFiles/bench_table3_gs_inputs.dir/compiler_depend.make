# Empty compiler generated dependencies file for bench_table3_gs_inputs.
# This may be replaced when dependencies are built.
