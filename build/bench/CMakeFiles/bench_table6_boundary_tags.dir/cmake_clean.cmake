file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_boundary_tags.dir/bench_table6_boundary_tags.cpp.o"
  "CMakeFiles/bench_table6_boundary_tags.dir/bench_table6_boundary_tags.cpp.o.d"
  "bench_table6_boundary_tags"
  "bench_table6_boundary_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_boundary_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
