# Empty compiler generated dependencies file for bench_table6_boundary_tags.
# This may be replaced when dependencies are built.
