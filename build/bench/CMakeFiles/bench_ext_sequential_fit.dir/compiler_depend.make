# Empty compiler generated dependencies file for bench_ext_sequential_fit.
# This may be replaced when dependencies are built.
