file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sequential_fit.dir/bench_ext_sequential_fit.cpp.o"
  "CMakeFiles/bench_ext_sequential_fit.dir/bench_ext_sequential_fit.cpp.o.d"
  "bench_ext_sequential_fit"
  "bench_ext_sequential_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sequential_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
