file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_allocators.dir/bench_micro_allocators.cpp.o"
  "CMakeFiles/bench_micro_allocators.dir/bench_micro_allocators.cpp.o.d"
  "bench_micro_allocators"
  "bench_micro_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
