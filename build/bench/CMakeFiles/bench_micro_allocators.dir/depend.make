# Empty dependencies file for bench_micro_allocators.
# This may be replaced when dependencies are built.
