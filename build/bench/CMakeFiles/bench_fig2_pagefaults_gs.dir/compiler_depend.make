# Empty compiler generated dependencies file for bench_fig2_pagefaults_gs.
# This may be replaced when dependencies are built.
