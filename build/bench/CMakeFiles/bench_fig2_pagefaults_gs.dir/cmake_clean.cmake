file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pagefaults_gs.dir/bench_fig2_pagefaults_gs.cpp.o"
  "CMakeFiles/bench_fig2_pagefaults_gs.dir/bench_fig2_pagefaults_gs.cpp.o.d"
  "bench_fig2_pagefaults_gs"
  "bench_fig2_pagefaults_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pagefaults_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
