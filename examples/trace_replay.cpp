//===- examples/trace_replay.cpp - Trace-driven simulation ----------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// The paper's methodology is trace-driven simulation. This example shows
// both halves of that pipeline with the library's trace formats:
//
//   1. capture: run a workload against an allocator, writing the complete
//      data-reference trace to a binary file (PIXIE's role);
//   2. replay:  feed the trace file to cache simulators of several sizes
//      without re-running the program (TYCHO's role).
//
// Usage: trace_replay [--workload make] [--allocator BSD] [--scale 8]
//                     [--trace /tmp/allocsim.trace]
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "trace/RefTrace.h"
#include "workload/Driver.h"

#include <fstream>
#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "make", "application profile to capture");
  Cli.addFlag("allocator", "BSD", "allocator to run it against");
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("trace", "/tmp/allocsim.trace", "trace file path");
  if (!Cli.parse(Argc, Argv))
    return 1;

  const std::string TracePath = Cli.getString("trace");
  const AppProfile &Profile =
      getProfile(parseWorkload(Cli.getString("workload")));

  // --- capture ------------------------------------------------------------
  {
    std::ofstream TraceFile(TracePath, std::ios::binary);
    if (!TraceFile) {
      std::cerr << "error: cannot write " << TracePath << "\n";
      return 1;
    }
    BinaryTraceWriter Writer(TraceFile);

    MemoryBus Bus;
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);
    Bus.attach(&Writer);
    SimHeap Heap(Bus);
    CostModel Cost;
    std::unique_ptr<Allocator> Alloc = createAllocator(
        parseAllocatorKind(Cli.getString("allocator")), Heap, Cost);

    EngineOptions Options;
    Options.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
    WorkloadEngine Engine(Profile, Options);
    Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
    Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
    Bus.flush();

    std::cout << "captured " << Writer.written() << " references from "
              << Profile.Name << " under " << Alloc->name() << " to "
              << TracePath << "\n\n";
  }

  // --- replay -------------------------------------------------------------
  CacheBank Bank;
  for (const CacheConfig &Config : paperCacheSweep())
    Bank.addCache(Config);

  std::ifstream TraceFile(TracePath, std::ios::binary);
  BinaryTraceReader Reader(TraceFile);
  uint64_t Replayed = replayTrace(Reader, Bank);
  std::cout << "replayed " << Replayed << " references into "
            << Bank.size() << " cache configurations\n\n";

  Table Out({"cache", "miss rate %"});
  for (size_t I = 0; I != Bank.size(); ++I) {
    Out.beginRow();
    Out.cell(Bank.cache(I).config().describe());
    Out.num(100.0 * Bank.cache(I).stats().missRate(), 3);
  }
  Out.renderText(std::cout);
  return 0;
}
