//===- examples/custom_workload.cpp - Defining your own workload ----------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// AppProfile is a public extension point: any allocation-intensive program
// can be modeled by filling in its statistics and size mix. This example
// defines a workload from scratch — a hypothetical JSON-ish parser that
// builds a large document tree (many small nodes, string buffers, rare big
// arrays; most nodes live until whole subtrees are dropped) — and runs it
// through the standard allocator comparison without touching the library.
//
// It also demonstrates the built-in extension workload "cfrac" (the sixth
// program of the authors' companion study).
//
// Usage: custom_workload [--scale 8]
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "workload/Driver.h"

#include <iostream>

using namespace allocsim;

namespace {

/// A user-defined profile: nothing about it is known to the library.
AppProfile jsonParserProfile() {
  AppProfile Profile;
  Profile.Name = "json-parser";
  // Invent the program's vital statistics the way a user would measure
  // them with an allocator hook: ~600M instructions, ~170M data refs,
  // 2 MB document tree, 800K allocations of which 700K are freed when
  // subtrees are discarded.
  Profile.PaperInstrMillions = 600;
  Profile.PaperDataRefsMillions = 170;
  Profile.PaperMaxHeapKb = 2048;
  Profile.PaperObjectsAllocated = 800000;
  Profile.PaperObjectsFreed = 700000;
  Profile.PaperSeconds = 24.0;
  Profile.SizeMix = {
      {16, 16, 0.30},        // value nodes
      {24, 24, 0.25},        // object entries
      {32, 32, 0.15},        // array headers
      {40, 120, 0.22, 8},    // short strings
      {256, 2048, 0.07, 256}, // long strings
      {4096, 16384, 0.01, 4096}, // scratch buffers
  };
  Profile.DieYoungProb = 0.55;      // scratch dies young...
  Profile.ClusterDeathProb = 0.60;  // ...subtrees die together
  Profile.StackRefShare = 0.50;
  Profile.TraverseWriteShare = 0.20;
  return Profile;
}

/// Runs one profile against an allocator and returns the headline numbers.
struct Headline {
  double AllocPct;
  double MissPct;
  uint32_t HeapKb;
};

Headline runOne(const AppProfile &Profile, AllocatorKind Kind,
                uint32_t Scale) {
  MemoryBus Bus;
  Bus.setBatchCapacity(AccessBatch::MaxCapacity);
  DirectMappedCache Cache({64 * 1024, 32, 1});
  Bus.attach(&Cache);
  SimHeap Heap(Bus);
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc = createAllocator(Kind, Heap, Cost);

  EngineOptions Options;
  Options.Scale = Scale;
  WorkloadEngine Engine(Profile, Options);
  Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
  Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
  Bus.flush();

  return {100.0 * Cost.allocFraction(), 100.0 * Cache.stats().missRate(),
          Alloc->heapBytes() / 1024};
}

void runSuite(const AppProfile &Profile, uint32_t Scale) {
  std::cout << "--- " << Profile.Name << " (mean request "
            << static_cast<int>(Profile.meanRequestBytes())
            << " B, free fraction "
            << formatDouble(Profile.freeFraction(), 2) << ") ---\n";
  Table Out({"allocator", "malloc+free %", "miss % 64K", "heap KB"});
  for (AllocatorKind Kind : PaperAllocators) {
    Headline Result = runOne(Profile, Kind, Scale);
    Out.beginRow();
    Out.cell(allocatorKindName(Kind));
    Out.num(Result.AllocPct, 1);
    Out.num(Result.MissPct, 2);
    Out.num(uint64_t(Result.HeapKb));
  }
  Out.renderText(std::cout);
  std::cout << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("scale", "8", "divide workload allocation counts by this");
  if (!Cli.parse(Argc, Argv))
    return 1;
  auto Scale = static_cast<uint32_t>(Cli.getInt("scale"));

  runSuite(jsonParserProfile(), Scale);
  runSuite(getProfile(WorkloadId::Cfrac), Scale);
  return 0;
}
