//===- examples/tuning_size_classes.cpp - CustoMalloc-style tuning --------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Walks through the allocator-synthesis flow the paper's conclusions
// advocate (their CustoMalloc work):
//
//   1. profile a program's allocation-request sizes,
//   2. synthesize size classes from the profile (exact classes for the hot
//      sizes, bounded-fragmentation filler elsewhere, all behind the
//      Figure 9 mapping array),
//   3. run the synthesized allocator and compare it with the five stock
//      allocators on the same program.
//
// Usage: tuning_size_classes [--workload gawk] [--scale 8] [--classes 12]
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gawk", "application profile to tune for");
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("classes", "12", "exact size classes to synthesize");
  if (!Cli.parse(Argc, Argv))
    return 1;

  WorkloadId Workload = parseWorkload(Cli.getString("workload"));
  ExperimentConfig Config;
  Config.Workload = Workload;
  Config.Engine.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Config.CustomExactClasses = static_cast<size_t>(Cli.getInt("classes"));
  Config.Caches = {CacheConfig{64 * 1024, 32, 1}};

  // Step 1-2: show what the synthesis pass discovers.
  WorkloadEngine Engine(getProfile(Workload), Config.Engine);
  Histogram Profile = Engine.sizeProfile();
  std::cout << "profiled " << Profile.total() << " requests, "
            << Profile.distinct() << " distinct sizes; hottest:";
  for (uint64_t Size : Profile.topKeys(Config.CustomExactClasses))
    std::cout << " " << Size;
  std::cout << "\n(the paper: \"most allocation requests were for one of a "
               "few different object sizes\")\n\n";

  // Step 3: synthesized allocator vs the stock five.
  Table Out({"allocator", "malloc+free %", "miss rate %", "heap KB",
             "est. seconds"});
  auto EmitRow = [&](AllocatorKind Kind) {
    Config.Allocator = Kind;
    RunResult Result = runExperiment(Config);
    Out.beginRow();
    Out.cell(allocatorKindName(Kind));
    Out.num(100.0 * Result.allocInstrFraction(), 1);
    Out.num(100.0 * Result.Caches[0].Stats.missRate(), 2);
    Out.num(uint64_t(Result.HeapBytes / 1024));
    Out.num(Result.estimatedSeconds(0), 2);
  };
  for (AllocatorKind Kind : PaperAllocators)
    EmitRow(Kind);
  EmitRow(AllocatorKind::Custom);
  Out.renderText(std::cout);

  std::cout << "\nThe synthesized allocator pairs BSD-class speed with "
               "QuickFit-class space:\nexact classes give rapid re-use "
               "without power-of-two waste.\n";
  return 0;
}
