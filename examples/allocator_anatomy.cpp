//===- examples/allocator_anatomy.cpp - Where do the misses come from? ----===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// The paper stresses that allocator-induced cache misses are "spread over
// all program sections that reference heap allocated objects, belying the
// true influence of the DSA algorithm". This example de-mystifies them:
// for one workload and cache it splits references and misses by source
// (application vs. allocator bookkeeping), and prints the reference-stream
// volume and heap telemetry per allocator.
//
// Usage: allocator_anatomy [--workload gs] [--scale 8] [--cache-kb 16]
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "application profile to run");
  Cli.addFlag("scale", "8", "divide paper allocation counts by this");
  Cli.addFlag("cache-kb", "16", "direct-mapped cache size in KB");
  if (!Cli.parse(Argc, Argv))
    return 1;

  ExperimentConfig Config;
  Config.Workload = parseWorkload(Cli.getString("workload"));
  Config.Engine.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Config.Caches = {CacheConfig{
      static_cast<uint32_t>(Cli.getInt("cache-kb")) * 1024, 32, 1}};

  std::cout << "workload: " << workloadName(Config.Workload) << ", cache: "
            << Config.Caches[0].describe() << "\n\n";

  Table Out({"allocator", "refs(M)", "alloc refs %", "app miss %",
             "alloc miss %", "overall miss %", "heap KB", "scan/op"});
  for (AllocatorKind Kind : PaperAllocators) {
    Config.Allocator = Kind;
    RunResult Result = runExperiment(Config);
    const CacheStats &Stats = Result.Caches[0].Stats;

    auto SourceMissPct = [&](AccessSource Source) {
      uint64_t Accesses = Stats.accessesFrom(Source);
      return Accesses == 0 ? 0.0
                           : 100.0 * static_cast<double>(
                                         Stats.missesFrom(Source)) /
                                 static_cast<double>(Accesses);
    };

    Out.beginRow();
    Out.cell(allocatorKindName(Kind));
    Out.num(static_cast<double>(Result.TotalRefs) / 1e6, 1);
    Out.num(100.0 * static_cast<double>(Result.AllocRefs) /
                static_cast<double>(Result.TotalRefs),
            1);
    Out.num(SourceMissPct(AccessSource::Application), 2);
    Out.num(SourceMissPct(AccessSource::Allocator), 2);
    Out.num(100.0 * Stats.missRate(), 2);
    Out.num(static_cast<uint64_t>(Result.HeapBytes / 1024));
    Out.num(static_cast<double>(Result.BlocksSearched) /
            static_cast<double>(Result.Alloc.MallocCalls), 1);
  }
  Out.renderText(std::cout);

  std::cout << "\nAllocator bookkeeping references are a small share of the "
               "stream, but a\nsequential-fit allocator raises the miss rate "
               "of the *application's* own\nreferences as well, by scattering "
               "its objects — the paper's key insight.\n";
  return 0;
}
