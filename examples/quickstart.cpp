//===- examples/quickstart.cpp - First steps with allocsim ----------------===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
// Runs one application workload (GhostScript by default) against all five
// of the paper's allocators with a 64K direct-mapped cache and prints the
// headline comparison: instructions spent in malloc/free, data-cache miss
// rate, heap size, and the paper's estimated execution time.
//
// Usage: quickstart [--workload gs] [--scale 64] [--cache-kb 64]
//
//===----------------------------------------------------------------------===//

#include "core/Lab.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <iostream>

using namespace allocsim;

int main(int Argc, char **Argv) {
  CommandLine Cli;
  Cli.addFlag("workload", "gs", "application profile to run");
  Cli.addFlag("scale", "64", "divide paper allocation counts by this");
  Cli.addFlag("cache-kb", "64", "direct-mapped cache size in KB");
  if (!Cli.parse(Argc, Argv))
    return 1;

  ExperimentConfig Config;
  Config.Workload = parseWorkload(Cli.getString("workload"));
  Config.Engine.Scale = static_cast<uint32_t>(Cli.getInt("scale"));
  Config.Caches = {CacheConfig{
      static_cast<uint32_t>(Cli.getInt("cache-kb")) * 1024, 32, 1}};

  std::cout << "workload: " << workloadName(Config.Workload)
            << "  (1/" << Config.Engine.Scale << " of paper scale)\n\n";

  Table Out({"allocator", "malloc+free %", "miss rate %", "heap KB",
             "est. seconds"});
  for (AllocatorKind Kind : PaperAllocators) {
    Config.Allocator = Kind;
    RunResult Result = runExperiment(Config);
    Out.beginRow();
    Out.cell(allocatorKindName(Kind));
    Out.num(100.0 * Result.allocInstrFraction(), 1);
    Out.num(100.0 * Result.Caches[0].Stats.missRate(), 2);
    Out.num(static_cast<uint64_t>(Result.HeapBytes / 1024));
    Out.num(Result.estimatedSeconds(0), 2);
  }
  Out.renderText(std::cout);

  std::cout << "\n(The shape to look for: FirstFit worst on misses, BSD and "
               "QuickFit\n fastest overall, GnuLocal low-miss but "
               "instruction-heavy.)\n";
  return 0;
}
