//===- core/MatrixRunner.h - Parallel experiment-matrix engine --*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every paper figure and table is a matrix of allocator x workload x
/// cache-geometry experiments whose cells are fully independent. The
/// MatrixRunner expands a declarative MatrixSpec into ExperimentConfig cells
/// and executes them across a worker pool with per-cell isolation: each cell
/// builds its own SimHeap / MemoryBus / WorkloadEngine inside runExperiment,
/// and each cell's configuration — including its RNG seed — is fixed during
/// expansion, *before* any scheduling happens. Parallel results are
/// therefore bit-identical to serial ones by construction.
///
/// Seeding: a cell's workload seed is derived from (base seed, workload
/// ordinal) with SplitMix64. Streams are decorrelated across workloads but
/// identical across allocators and penalties within one workload — the
/// paper's methodological control (every allocator replays the identical
/// request sequence) — and never depend on completion order.
///
/// Failure policy: a cell that fails validation or whose runner throws is
/// recorded (error text attributed to the cell's coordinates) and the sweep
/// keeps going; callers inspect ResultStore::failedCount() and exit nonzero.
///
/// Typical use:
/// \code
///   MatrixSpec Spec;
///   Spec.Workloads = {WorkloadId::Gs, WorkloadId::Espresso};
///   Spec.Allocators = {PaperAllocators, PaperAllocators + 5};
///   Spec.Caches = paperCacheSweep();
///   MatrixOptions Options;
///   Options.Jobs = 8;
///   ResultStore Store = runMatrix(Spec, Options);
///   Store.writeJson(OutFile);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CORE_MATRIXRUNNER_H
#define ALLOCSIM_CORE_MATRIXRUNNER_H

#include "core/Lab.h"

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace allocsim {

/// Declarative description of an experiment matrix. Cells are the cross
/// product Workloads x Allocators x PenaltiesCycles; every cell observes
/// all of Caches and PagingMemoryKb simultaneously (the CacheBank and
/// PageSim measure many geometries from one reference stream, so splitting
/// them into separate cells would only redo simulation work).
struct MatrixSpec {
  std::vector<WorkloadId> Workloads;
  std::vector<AllocatorKind> Allocators;
  /// Miss-penalty axis; affects only the time estimate, but sweeping it is
  /// how the paper's Section 4.3 sensitivity analysis is produced.
  std::vector<uint32_t> PenaltiesCycles = {25};
  std::vector<CacheConfig> Caches;
  std::vector<uint32_t> PagingMemoryKb;

  /// Everything else a cell inherits: engine scale/seed, boundary-tag
  /// emulation, heap checking, ... (Workload/Allocator/Caches/Paging/
  /// MissPenaltyCycles fields of Base are overwritten per cell.)
  ExperimentConfig Base;

  /// Derive each cell's engine seed from (Base seed, workload ordinal).
  /// When false every cell uses Base.Engine.Seed verbatim.
  bool SaltSeedPerWorkload = true;

  size_t cellCount() const {
    return Workloads.size() * Allocators.size() * PenaltiesCycles.size();
  }
};

/// Position of one cell in the matrix. Index is the deterministic linear
/// order: workload-major, then allocator, then penalty.
struct CellCoord {
  size_t Index = 0;
  size_t WorkloadIdx = 0;
  size_t AllocatorIdx = 0;
  size_t PenaltyIdx = 0;
};

/// One expanded cell: coordinates plus the fully-resolved configuration.
struct MatrixCell {
  CellCoord Coord;
  ExperimentConfig Config;
};

/// Expands \p Spec into cells in deterministic linear order, resolving each
/// cell's complete ExperimentConfig (including its seed) up front.
std::vector<MatrixCell> expandMatrix(const MatrixSpec &Spec);

/// What happened to one cell.
struct CellOutcome {
  CellCoord Coord;
  WorkloadId Workload = WorkloadId::Espresso;
  AllocatorKind Allocator = AllocatorKind::FirstFit;
  uint32_t PenaltyCycles = 25;
  uint64_t Seed = 0;
  bool Ok = false;
  /// Failure description; empty when Ok. When retries ran this is the last
  /// attempt's error (AttemptErrors holds every attempt's).
  std::string Error;
  /// Valid only when Ok.
  RunResult Result;

  /// Attempts consumed (1 without faults; up to 1 + FaultPlan::RetryLimit
  /// under a fault plan). 0 only when the cell failed validation.
  uint32_t Attempts = 0;
  /// One error per failed attempt, in attempt order (seed-stable).
  std::vector<std::string> AttemptErrors;
  /// Telemetry accumulated before the last failed attempt died; empty for
  /// ok cells (their full snapshot is in Result.Telemetry) and for cells
  /// whose runner never captured partial state. Serialized into the
  /// quarantine record so a crashed cell does not lose its counters.
  TelemetrySnapshot PartialTelemetry;
};

/// Aggregated matrix results, always in deterministic cell order regardless
/// of which worker finished first.
class ResultStore {
public:
  ResultStore() = default;
  explicit ResultStore(const MatrixSpec &Spec);

  const MatrixSpec &spec() const { return Spec; }
  size_t size() const { return Cells.size(); }
  const CellOutcome &cell(size_t Index) const { return Cells.at(Index); }
  /// Coordinate lookup.
  const CellOutcome &at(size_t WorkloadIdx, size_t AllocatorIdx,
                        size_t PenaltyIdx = 0) const;

  size_t failedCount() const;

  /// Full matrix serialization (schema "allocsim-matrix-v1"): axes, engine
  /// options, and per-cell counters, miss rates and time estimates.
  void writeJson(std::ostream &OS) const;

  /// Long-form CSV: one row per (cell, cache); cells without caches emit
  /// one row with empty cache columns.
  void writeCsv(std::ostream &OS) const;

  /// Integer-only serialization for golden-result tests: every field is an
  /// exact integer (no doubles), so snapshots diff with exact equality on
  /// any platform.
  void writeGoldenJson(std::ostream &OS) const;

  /// Folds every ok cell's telemetry snapshot into one. merge() is
  /// associative and commutative, so the result is identical at any
  /// --jobs count and in any completion order.
  TelemetrySnapshot mergedTelemetry() const;

  /// Telemetry serialization (schema "allocsim-telemetry-v1"): the run's
  /// telemetry level, one snapshot per cell, and the merged snapshot.
  /// Integer-only, like the golden matrix form.
  void writeTelemetryJson(std::ostream &OS) const;

  /// Long-form telemetry CSV: one row per (cell, instrument). Counter rows
  /// fill the value column; histogram rows fill count/sum/min/max/mean.
  void writeTelemetryCsv(std::ostream &OS) const;

  /// Filled by runMatrix; Index must match the expansion order.
  void put(size_t Index, CellOutcome Outcome);

private:
  MatrixSpec Spec;
  std::vector<CellOutcome> Cells;
};

/// Progress snapshot passed to the reporting callback.
struct MatrixProgress {
  size_t Completed = 0;
  size_t Total = 0;
  size_t Failed = 0;
  double ElapsedSeconds = 0;
  /// Naive remaining-time estimate; 0 until the first cell completes.
  double EtaSeconds = 0;
};

/// Execution knobs.
struct MatrixOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned Jobs = 0;
  /// Invoked (serialized under the runner's lock) after every cell.
  std::function<void(const MatrixProgress &)> Progress;
  /// Cell execution seam; defaults to runExperiment. Tests inject throwing
  /// runners to exercise the failure policy.
  std::function<RunResult(const ExperimentConfig &)> CellRunner;
  /// Like CellRunner, but the runner may fill the snapshot with partial
  /// telemetry before throwing (the default runExperiment path does).
  /// Takes precedence over CellRunner when both are set.
  std::function<RunResult(const ExperimentConfig &, TelemetrySnapshot &)>
      CellRunnerEx;
};

/// Executes every cell of \p Spec and returns the populated store.
ResultStore runMatrix(const MatrixSpec &Spec,
                      const MatrixOptions &Options = {});

/// Parses a cache spec "sizeKB[:blockBytes[:assoc]]" with diagnostics.
bool parseCacheSpec(const std::string &Spec, CacheConfig &Config,
                    std::string &Error);

/// Parses a comma-separated cache-spec list; empty text yields an empty
/// list; empty items and malformed geometries are errors.
bool parseCacheList(const std::string &Text, std::vector<CacheConfig> &Out,
                    std::string &Error);

/// Parses the --matrix axis string:
///
///   workloads=gs,espresso;allocators=FirstFit,BSD;caches=16,64:32:2;
///   paging=512,1024;penalty=25,100
///
/// Axes are ';'-separated key=value pairs; workloads and allocators are
/// required, caches/paging default to empty, penalty defaults to {25}.
/// The scalar keys telemetry=off|summary|full, delivery=batched|scalar and
/// engine=percfg|stackdist set the corresponding Spec.Base fields. Workload
/// engine options (scale/seed/...) stay in Spec.Base and are not part of
/// the axis string. Returns false with a diagnostic on malformed input.
bool parseMatrixSpec(const std::string &Text, MatrixSpec &Spec,
                     std::string &Error);

} // namespace allocsim

#endif // ALLOCSIM_CORE_MATRIXRUNNER_H
