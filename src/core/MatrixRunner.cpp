//===- core/MatrixRunner.cpp - Parallel experiment-matrix engine ----------===//

#include "core/MatrixRunner.h"

#include "cache/StackSim.h"
#include "support/Rng.h"
#include "support/SpecParse.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <thread>

using namespace allocsim;

//===----------------------------------------------------------------------===//
// Expansion
//===----------------------------------------------------------------------===//

namespace {

/// Seed for workload ordinal \p WorkloadIdx: decorrelated across workloads,
/// identical across allocators and penalties, independent of scheduling.
uint64_t cellSeed(const MatrixSpec &Spec, size_t WorkloadIdx) {
  if (!Spec.SaltSeedPerWorkload)
    return Spec.Base.Engine.Seed;
  SplitMix64 Mix(Spec.Base.Engine.Seed +
                 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(WorkloadIdx));
  return Mix.next();
}

/// Returns a description of what makes \p Config unrunnable, or "" if it is
/// sound. Validation failures become recorded cell errors, not aborts.
std::string validateCellConfig(const ExperimentConfig &Config) {
  for (const CacheConfig &Cache : Config.Caches)
    if (!Cache.valid())
      return "invalid cache geometry '" + Cache.describe() + "'";
  // Duplicate geometries would double-count in sweep output; the cache
  // layer treats them as fatal, so diagnose here where a cell can fail
  // gracefully instead.
  for (size_t I = 0; I != Config.Caches.size(); ++I)
    for (size_t J = 0; J != I; ++J)
      if (Config.Caches[J] == Config.Caches[I])
        return "duplicate cache geometry '" + Config.Caches[I].describe() +
               "'";
  if (Config.CacheEngine == CacheEngineKind::StackDist) {
    std::string Problem = describeStackFamilyProblem(Config.Caches);
    if (!Problem.empty())
      return "engine=stackdist: " + Problem;
  }
  if (Config.MissPenaltyCycles == 0)
    return "miss penalty must be positive";
  if (Config.Engine.Scale == 0)
    return "engine scale must be positive";
  for (uint32_t MemoryKb : Config.PagingMemoryKb)
    if (MemoryKb == 0)
      return "paging memory size must be positive";
  return "";
}

} // namespace

std::vector<MatrixCell> allocsim::expandMatrix(const MatrixSpec &Spec) {
  std::vector<MatrixCell> Cells;
  Cells.reserve(Spec.cellCount());
  for (size_t W = 0; W != Spec.Workloads.size(); ++W)
    for (size_t A = 0; A != Spec.Allocators.size(); ++A)
      for (size_t P = 0; P != Spec.PenaltiesCycles.size(); ++P) {
        MatrixCell Cell;
        Cell.Coord = {Cells.size(), W, A, P};
        Cell.Config = Spec.Base;
        Cell.Config.Workload = Spec.Workloads[W];
        Cell.Config.Allocator = Spec.Allocators[A];
        Cell.Config.MissPenaltyCycles = Spec.PenaltiesCycles[P];
        Cell.Config.Caches = Spec.Caches;
        Cell.Config.PagingMemoryKb = Spec.PagingMemoryKb;
        Cell.Config.Engine.Seed = cellSeed(Spec, W);
        if (Spec.Base.Inject.enabled()) {
          // Per-cell fault seed, fixed at expansion from the linear index:
          // fault sites are decorrelated across cells yet bit-identical at
          // any job count, like the workload seeds above.
          SplitMix64 Mix(Spec.Base.Inject.Seed +
                         0x9e3779b97f4a7c15ULL *
                             static_cast<uint64_t>(Cell.Coord.Index));
          Cell.Config.Inject.Seed = Mix.next();
        }
        Cells.push_back(std::move(Cell));
      }
  return Cells;
}

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

ResultStore::ResultStore(const MatrixSpec &StoreSpec)
    : Spec(StoreSpec), Cells(StoreSpec.cellCount()) {}

const CellOutcome &ResultStore::at(size_t WorkloadIdx, size_t AllocatorIdx,
                                   size_t PenaltyIdx) const {
  size_t Index = (WorkloadIdx * Spec.Allocators.size() + AllocatorIdx) *
                     Spec.PenaltiesCycles.size() +
                 PenaltyIdx;
  return Cells.at(Index);
}

size_t ResultStore::failedCount() const {
  size_t Failed = 0;
  for (const CellOutcome &Cell : Cells)
    if (!Cell.Ok)
      ++Failed;
  return Failed;
}

void ResultStore::put(size_t Index, CellOutcome Outcome) {
  Cells.at(Index) = std::move(Outcome);
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string jsonDouble(double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  return Buffer;
}

void writeCacheConfigJson(std::ostream &OS, const CacheConfig &Config) {
  OS << "{\"size_kb\": " << Config.SizeBytes / 1024
     << ", \"block_bytes\": " << Config.BlockBytes
     << ", \"assoc\": " << Config.Assoc << "}";
}

/// Shared body for writeJson / writeGoldenJson; \p WithDoubles controls
/// whether derived floating-point values (miss rates, time estimates,
/// fault rates) are included — the golden form is integers only so exact
/// equality is meaningful on every platform.
void writeMatrixJson(std::ostream &OS, const MatrixSpec &Spec,
                     const std::vector<CellOutcome> &Cells,
                     bool WithDoubles) {
  OS << "{\n";
  OS << "  \"schema\": \"allocsim-matrix-v1\",\n";
  OS << "  \"golden\": " << (WithDoubles ? "false" : "true") << ",\n";

  OS << "  \"axes\": {\n    \"workloads\": [";
  for (size_t I = 0; I != Spec.Workloads.size(); ++I)
    OS << (I ? ", " : "") << '"' << workloadName(Spec.Workloads[I]) << '"';
  OS << "],\n    \"allocators\": [";
  for (size_t I = 0; I != Spec.Allocators.size(); ++I)
    OS << (I ? ", " : "") << '"' << allocatorKindName(Spec.Allocators[I])
       << '"';
  OS << "],\n    \"penalties_cycles\": [";
  for (size_t I = 0; I != Spec.PenaltiesCycles.size(); ++I)
    OS << (I ? ", " : "") << Spec.PenaltiesCycles[I];
  OS << "],\n    \"caches\": [";
  for (size_t I = 0; I != Spec.Caches.size(); ++I) {
    OS << (I ? ", " : "");
    writeCacheConfigJson(OS, Spec.Caches[I]);
  }
  OS << "],\n    \"paging_memory_kb\": [";
  for (size_t I = 0; I != Spec.PagingMemoryKb.size(); ++I)
    OS << (I ? ", " : "") << Spec.PagingMemoryKb[I];
  OS << "]\n  },\n";

  // The cache_engine key appears only for the non-default engine, so
  // default-engine output stays byte-identical to pre-StackSim runs.
  OS << "  \"engine\": {\"scale\": " << Spec.Base.Engine.Scale
     << ", \"seed\": " << Spec.Base.Engine.Seed
     << ", \"salt_seed_per_workload\": "
     << (Spec.SaltSeedPerWorkload ? "true" : "false");
  if (Spec.Base.CacheEngine != CacheEngineKind::PerConfig)
    OS << ", \"cache_engine\": \"" << cacheEngineName(Spec.Base.CacheEngine)
       << "\"";
  OS << "},\n";

  // The faults section (plan echo, totals, quarantine) exists only under a
  // fault plan: plan-free output stays byte-identical to pre-FaultLab runs.
  if (Spec.Base.Inject.enabled()) {
    const FaultPlan &Plan = Spec.Base.Inject;
    uint64_t Injected = 0, Detected = 0, SbrkDenied = 0, Dropped = 0;
    for (const CellOutcome &Cell : Cells)
      if (Cell.Ok) {
        Injected += Cell.Result.FaultsInjected;
        Detected += Cell.Result.FaultsDetected;
        SbrkDenied += Cell.Result.SbrkDenied;
        Dropped += Cell.Result.DroppedEvents;
      }
    OS << "  \"faults\": {\n";
    OS << "    \"plan\": \"" << jsonEscape(Plan.Spec) << "\",\n";
    OS << "    \"seed\": " << Plan.Seed
       << ", \"retry_limit\": " << Plan.RetryLimit << ",\n";
    OS << "    \"injected\": " << Injected << ", \"detected\": " << Detected
       << ", \"sbrk_denied\": " << SbrkDenied
       << ", \"dropped_events\": " << Dropped << ",\n";
    OS << "    \"quarantine\": [";
    bool First = true;
    for (const CellOutcome &Cell : Cells) {
      if (Cell.Ok)
        continue;
      OS << (First ? "\n" : ",\n") << "      {\"workload\": \""
         << workloadName(Cell.Workload) << "\", \"allocator\": \""
         << allocatorKindName(Cell.Allocator)
         << "\", \"penalty_cycles\": " << Cell.PenaltyCycles
         << ", \"attempts\": " << Cell.Attempts << ", \"errors\": [";
      for (size_t E = 0; E != Cell.AttemptErrors.size(); ++E)
        OS << (E ? ", " : "") << '"' << jsonEscape(Cell.AttemptErrors[E])
           << '"';
      OS << "]}";
      First = false;
    }
    OS << (First ? "" : "\n    ") << "]\n  },\n";
  }

  OS << "  \"cells\": [";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const CellOutcome &Cell = Cells[I];
    OS << (I ? ",\n" : "\n") << "    {";
    OS << "\"workload\": \"" << workloadName(Cell.Workload) << "\", ";
    OS << "\"allocator\": \"" << allocatorKindName(Cell.Allocator) << "\", ";
    OS << "\"penalty_cycles\": " << Cell.PenaltyCycles << ", ";
    OS << "\"seed\": " << Cell.Seed << ", ";
    OS << "\"ok\": " << (Cell.Ok ? "true" : "false");
    if (!Cell.Ok) {
      OS << ", \"error\": \"" << jsonEscape(Cell.Error) << "\"}";
      continue;
    }
    const RunResult &R = Cell.Result;
    OS << ",\n     \"app_instructions\": " << R.AppInstructions
       << ", \"alloc_instructions\": " << R.AllocInstructions
       << ",\n     \"total_refs\": " << R.TotalRefs
       << ", \"app_refs\": " << R.AppRefs
       << ", \"alloc_refs\": " << R.AllocRefs
       << ", \"tag_refs\": " << R.TagRefs
       << ",\n     \"malloc_calls\": " << R.Alloc.MallocCalls
       << ", \"free_calls\": " << R.Alloc.FreeCalls
       << ", \"bytes_requested\": " << R.Alloc.BytesRequested
       << ", \"max_live_bytes\": " << R.Alloc.MaxLiveBytes
       << ",\n     \"heap_bytes\": " << R.HeapBytes
       << ", \"blocks_searched\": " << R.BlocksSearched
       << ", \"distinct_pages\": " << R.DistinctPages
       << ", \"check_violations\": " << R.CheckViolations;

    if (Spec.Base.Inject.enabled()) {
      OS << ",\n     \"attempts\": " << Cell.Attempts
         << ", \"faults_injected\": " << R.FaultsInjected
         << ", \"faults_detected\": " << R.FaultsDetected
         << ", \"sbrk_denied\": " << R.SbrkDenied
         << ", \"dropped_events\": " << R.DroppedEvents
         << ",\n     \"fault_sites\": [";
      for (size_t F = 0; F != R.Faults.size(); ++F)
        OS << (F ? ", " : "") << "{\"kind\": \""
           << faultKindName(R.Faults[F].Kind)
           << "\", \"op\": " << R.Faults[F].OpIndex
           << ", \"addr\": " << R.Faults[F].Address << ", \"detected\": "
           << (R.Faults[F].Detected ? "true" : "false") << "}";
      OS << "]";
    }

    OS << ",\n     \"caches\": [";
    for (size_t C = 0; C != R.Caches.size(); ++C) {
      const CacheResult &Cache = R.Caches[C];
      OS << (C ? ", " : "") << "{\"size_kb\": "
         << Cache.Config.SizeBytes / 1024
         << ", \"accesses\": " << Cache.Stats.Accesses
         << ", \"misses\": " << Cache.Stats.Misses;
      for (unsigned S = 0; S != NumAccessSources; ++S)
        OS << ", \"misses_" << accessSourceName(AccessSource(S))
           << "\": " << Cache.Stats.MissesBySource[S];
      if (WithDoubles)
        OS << ", \"miss_rate\": " << jsonDouble(Cache.Stats.missRate())
           << ", \"est_seconds\": " << jsonDouble(Cache.Time.seconds());
      OS << "}";
    }
    OS << "]";

    OS << ", \"paging\": [";
    for (size_t P = 0; P != R.Paging.size(); ++P) {
      OS << (P ? ", " : "") << "{\"memory_kb\": " << R.Paging[P].MemoryKb;
      if (WithDoubles)
        OS << ", \"faults_per_ref\": "
           << jsonDouble(R.Paging[P].FaultsPerRef);
      OS << "}";
    }
    OS << "]}";
  }
  OS << "\n  ]\n}\n";
}

} // namespace

void ResultStore::writeJson(std::ostream &OS) const {
  writeMatrixJson(OS, Spec, Cells, /*WithDoubles=*/true);
}

void ResultStore::writeGoldenJson(std::ostream &OS) const {
  writeMatrixJson(OS, Spec, Cells, /*WithDoubles=*/false);
}

void ResultStore::writeCsv(std::ostream &OS) const {
  // Fault columns appear only under a fault plan, keeping plan-free CSV
  // byte-identical to pre-FaultLab output.
  bool WithFaults = Spec.Base.Inject.enabled();
  OS << "workload,allocator,penalty_cycles,ok,error,seed,"
        "app_instructions,alloc_instructions,total_refs,app_refs,"
        "alloc_refs,tag_refs,malloc_calls,free_calls,heap_bytes,"
        "blocks_searched,distinct_pages,";
  if (WithFaults)
    OS << "attempts,faults_injected,faults_detected,sbrk_denied,"
          "dropped_events,";
  OS << "cache_kb,cache_block_bytes,cache_assoc,cache_accesses,"
     << "cache_misses,cache_miss_rate,est_seconds\n";
  for (const CellOutcome &Cell : Cells) {
    std::string Prefix;
    {
      std::string ErrorField = Cell.Error;
      for (char &C : ErrorField)
        if (C == ',' || C == '\n')
          C = ' ';
      const RunResult &R = Cell.Result;
      Prefix = std::string(workloadName(Cell.Workload)) + "," +
               allocatorKindName(Cell.Allocator) + "," +
               std::to_string(Cell.PenaltyCycles) + "," +
               (Cell.Ok ? "1" : "0") + "," + ErrorField + "," +
               std::to_string(Cell.Seed) + "," +
               std::to_string(R.AppInstructions) + "," +
               std::to_string(R.AllocInstructions) + "," +
               std::to_string(R.TotalRefs) + "," + std::to_string(R.AppRefs) +
               "," + std::to_string(R.AllocRefs) + "," +
               std::to_string(R.TagRefs) + "," +
               std::to_string(R.Alloc.MallocCalls) + "," +
               std::to_string(R.Alloc.FreeCalls) + "," +
               std::to_string(R.HeapBytes) + "," +
               std::to_string(R.BlocksSearched) + "," +
               std::to_string(R.DistinctPages);
      if (WithFaults)
        Prefix += "," + std::to_string(Cell.Attempts) + "," +
                  std::to_string(R.FaultsInjected) + "," +
                  std::to_string(R.FaultsDetected) + "," +
                  std::to_string(R.SbrkDenied) + "," +
                  std::to_string(R.DroppedEvents);
    }
    if (!Cell.Ok || Cell.Result.Caches.empty()) {
      OS << Prefix << ",,,,,,,\n";
      continue;
    }
    for (const CacheResult &Cache : Cell.Result.Caches)
      OS << Prefix << "," << Cache.Config.SizeBytes / 1024 << ","
         << Cache.Config.BlockBytes << "," << Cache.Config.Assoc << ","
         << Cache.Stats.Accesses << "," << Cache.Stats.Misses << ","
         << jsonDouble(Cache.Stats.missRate()) << ","
         << jsonDouble(Cache.Time.seconds()) << "\n";
  }
}

TelemetrySnapshot ResultStore::mergedTelemetry() const {
  TelemetrySnapshot Merged;
  for (const CellOutcome &Cell : Cells)
    if (Cell.Ok)
      Merged.merge(Cell.Result.Telemetry);
  return Merged;
}

void ResultStore::writeTelemetryJson(std::ostream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": \"allocsim-telemetry-v1\",\n";
  OS << "  \"level\": \"" << telemetryLevelName(Spec.Base.Telemetry)
     << "\",\n";
  OS << "  \"cells\": [";
  for (size_t I = 0; I != Cells.size(); ++I) {
    const CellOutcome &Cell = Cells[I];
    OS << (I ? ",\n" : "\n") << "    {";
    OS << "\"workload\": \"" << workloadName(Cell.Workload) << "\", ";
    OS << "\"allocator\": \"" << allocatorKindName(Cell.Allocator) << "\", ";
    OS << "\"penalty_cycles\": " << Cell.PenaltyCycles << ", ";
    OS << "\"ok\": " << (Cell.Ok ? "true" : "false") << ",\n";
    OS << "     \"telemetry\":\n";
    // Failed cells serialize whatever partial telemetry their last attempt
    // flushed before dying, instead of silently dropping it.
    (Cell.Ok ? Cell.Result.Telemetry : Cell.PartialTelemetry)
        .writeJson(OS, "      ");
    OS << "}";
  }
  OS << "\n  ],\n";
  OS << "  \"merged\":\n";
  mergedTelemetry().writeJson(OS, "    ");
  OS << "\n}\n";
}

void ResultStore::writeTelemetryCsv(std::ostream &OS) const {
  OS << "workload,allocator,penalty_cycles,kind,name,value,count,sum,min,"
        "max,mean\n";
  for (const CellOutcome &Cell : Cells) {
    if (!Cell.Ok)
      continue;
    std::string Prefix = std::string(workloadName(Cell.Workload)) + "," +
                         allocatorKindName(Cell.Allocator) + "," +
                         std::to_string(Cell.PenaltyCycles) + ",";
    const TelemetrySnapshot &Telem = Cell.Result.Telemetry;
    for (const auto &[Name, Value] : Telem.Counters)
      OS << Prefix << "counter," << Name << "," << Value << ",,,,,\n";
    for (const auto &[Name, Hist] : Telem.Histograms) {
      OS << Prefix << "histogram," << Name << ",," << Hist.Count << ","
         << Hist.Sum << ",";
      if (Hist.Count != 0)
        OS << Hist.Min << "," << Hist.Max << "," << jsonDouble(Hist.mean());
      else
        OS << ",,";
      OS << "\n";
    }
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

CellOutcome runCell(const MatrixCell &Cell, const MatrixOptions &Options) {
  CellOutcome Outcome;
  Outcome.Coord = Cell.Coord;
  Outcome.Workload = Cell.Config.Workload;
  Outcome.Allocator = Cell.Config.Allocator;
  Outcome.PenaltyCycles = Cell.Config.MissPenaltyCycles;
  Outcome.Seed = Cell.Config.Engine.Seed;

  std::string Invalid = validateCellConfig(Cell.Config);
  if (!Invalid.empty()) {
    Outcome.Error = Invalid;
    return Outcome;
  }

  // Graceful degradation: under a fault plan each cell gets RetryLimit
  // extra attempts. The worker-fault dice are seeded from the cell's own
  // fault seed (fixed at expansion), so which attempts die — and therefore
  // every retry outcome — is identical at any job count.
  const FaultPlan &Plan = Cell.Config.Inject;
  unsigned MaxAttempts = 1 + (Plan.enabled() ? Plan.RetryLimit : 0);
  Rng WorkerDice(Plan.Seed ^ 0x77666175u /* "wfau" */);
  for (unsigned Attempt = 1; Attempt <= MaxAttempts; ++Attempt) {
    Outcome.Attempts = Attempt;
    if (Plan.enabled() && Plan.CellRate > 0 &&
        WorkerDice.nextDouble() < Plan.CellRate) {
      // Simulated worker fault: the attempt dies before the run starts.
      Outcome.AttemptErrors.push_back("injected worker fault (attempt " +
                                      std::to_string(Attempt) + ")");
      continue;
    }
    TelemetrySnapshot Partial;
    try {
      Outcome.Result = Options.CellRunnerEx
                           ? Options.CellRunnerEx(Cell.Config, Partial)
                       : Options.CellRunner
                           ? Options.CellRunner(Cell.Config)
                           : runExperiment(Cell.Config, &Partial);
      Outcome.Ok = true;
      return Outcome;
    } catch (const std::exception &E) {
      Outcome.AttemptErrors.push_back(E.what());
    } catch (...) {
      Outcome.AttemptErrors.push_back("unknown exception");
    }
    // A failed attempt's partial telemetry feeds the quarantine record;
    // keep the last attempt's (retries overwrite).
    Outcome.PartialTelemetry = std::move(Partial);
  }
  Outcome.Error = Outcome.AttemptErrors.back();
  return Outcome;
}

} // namespace

ResultStore allocsim::runMatrix(const MatrixSpec &Spec,
                                const MatrixOptions &Options) {
  std::vector<MatrixCell> Cells = expandMatrix(Spec);
  ResultStore Store(Spec);

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  if (Jobs > Cells.size())
    Jobs = static_cast<unsigned>(Cells.size());

  auto Start = std::chrono::steady_clock::now();
  std::atomic<size_t> NextCell{0};
  std::mutex ProgressMutex;
  size_t Completed = 0, Failed = 0;

  auto FinishCell = [&](size_t Index, CellOutcome Outcome) {
    bool Ok = Outcome.Ok;
    Store.put(Index, std::move(Outcome));
    std::lock_guard<std::mutex> Lock(ProgressMutex);
    ++Completed;
    if (!Ok)
      ++Failed;
    if (Options.Progress) {
      MatrixProgress Progress;
      Progress.Completed = Completed;
      Progress.Total = Cells.size();
      Progress.Failed = Failed;
      Progress.ElapsedSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      Progress.EtaSeconds =
          Completed == 0
              ? 0.0
              : Progress.ElapsedSeconds *
                    static_cast<double>(Cells.size() - Completed) /
                    static_cast<double>(Completed);
      Options.Progress(Progress);
    }
  };

  auto Worker = [&] {
    for (;;) {
      size_t Index = NextCell.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Cells.size())
        return;
      FinishCell(Index, runCell(Cells[Index], Options));
    }
  };

  if (Jobs <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Jobs);
    for (unsigned I = 0; I != Jobs; ++I)
      Threads.emplace_back(Worker);
    for (std::thread &T : Threads)
      T.join();
  }
  return Store;
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

bool allocsim::parseCacheSpec(const std::string &Spec, CacheConfig &Config,
                              std::string &Error) {
  std::vector<std::string> Parts = splitSpecList(Spec, ':');
  if (Parts.empty() || Parts.size() > 3) {
    Error = "bad cache spec '" + Spec +
            "': expected sizeKB[:blockBytes[:assoc]]";
    return false;
  }
  uint32_t SizeKb = 0;
  if (!parseSpecUnsigned(Parts[0], "cache size (KB)", SizeKb, Error))
    return false;
  Config.SizeBytes = SizeKb * 1024;
  Config.BlockBytes = 32;
  Config.Assoc = 1;
  if (Parts.size() > 1 &&
      !parseSpecUnsigned(Parts[1], "cache block bytes", Config.BlockBytes,
                         Error))
    return false;
  if (Parts.size() > 2 &&
      !parseSpecUnsigned(Parts[2], "cache associativity", Config.Assoc,
                         Error))
    return false;
  if (!Config.valid()) {
    Error = "invalid cache geometry '" + Spec +
            "': sizes must be powers of two and consistent";
    return false;
  }
  return true;
}

bool allocsim::parseCacheList(const std::string &Text,
                              std::vector<CacheConfig> &Out,
                              std::string &Error) {
  Out.clear();
  for (const std::string &Item : splitSpecList(Text, ',')) {
    if (Item.empty()) {
      Error = "bad cache list '" + Text +
              "': empty item (stray or trailing comma)";
      return false;
    }
    CacheConfig Config;
    if (!parseCacheSpec(Item, Config, Error))
      return false;
    Out.push_back(Config);
  }
  return true;
}

bool allocsim::parseMatrixSpec(const std::string &Text, MatrixSpec &Spec,
                               std::string &Error) {
  Spec.Workloads.clear();
  Spec.Allocators.clear();
  Spec.PenaltiesCycles = {25};
  Spec.Caches.clear();
  Spec.PagingMemoryKb.clear();

  // Structural pass: axis shape, duplicate keys, empty values. The old
  // parser silently accumulated duplicate list axes but last-write-won on
  // scalar axes; both are now hard errors.
  DiagEngine Diags;
  std::vector<SpecKeyValue> Axes = parseSpecKeyValues(Text, Diags);
  if (Diags.errorCount() != 0) {
    Error = "bad matrix spec: " + Diags.firstError();
    return false;
  }

  for (const SpecKeyValue &Axis : Axes) {
    const std::string &Key = Axis.Key;
    const std::string &Value = Axis.Value;
    if (Key == "workloads") {
      for (const std::string &Name : splitSpecList(Value, ',')) {
        WorkloadId Id;
        if (!tryParseWorkload(Name, Id)) {
          Error = "unknown workload '" + Name + "' in matrix spec";
          return false;
        }
        Spec.Workloads.push_back(Id);
      }
    } else if (Key == "allocators") {
      for (const std::string &Name : splitSpecList(Value, ',')) {
        AllocatorKind Kind;
        if (!tryParseAllocatorKind(Name, Kind)) {
          Error = "unknown allocator '" + Name + "' in matrix spec";
          return false;
        }
        Spec.Allocators.push_back(Kind);
      }
    } else if (Key == "caches") {
      if (!parseCacheList(Value, Spec.Caches, Error))
        return false;
    } else if (Key == "paging") {
      if (!parseSpecUnsignedList(Value, "paging memory size (KB)",
                                 Spec.PagingMemoryKb, Error))
        return false;
    } else if (Key == "penalty") {
      if (!parseSpecUnsignedList(Value, "miss penalty (cycles)",
                                 Spec.PenaltiesCycles, Error))
        return false;
      if (Spec.PenaltiesCycles.empty()) {
        Error = "matrix axis 'penalty' must list at least one value";
        return false;
      }
    } else if (Key == "telemetry") {
      if (!tryParseTelemetryLevel(Value, Spec.Base.Telemetry)) {
        Error = "bad matrix value 'telemetry=" + Value +
                "' (expected off, summary or full)";
        return false;
      }
    } else if (Key == "delivery") {
      if (Value == "batched")
        Spec.Base.BatchedDelivery = true;
      else if (Value == "scalar")
        Spec.Base.BatchedDelivery = false;
      else {
        Error = "bad matrix value 'delivery=" + Value +
                "' (expected batched or scalar; results are bit-identical, "
                "scalar exists for equivalence checks)";
        return false;
      }
    } else if (Key == "engine") {
      if (std::optional<CacheEngineKind> Engine = tryParseCacheEngine(Value))
        Spec.Base.CacheEngine = *Engine;
      else {
        Error = "bad matrix value 'engine=" + Value +
                "' (expected percfg or stackdist; results are bit-identical, "
                "stackdist simulates a shared-set-count cache family in one "
                "pass)";
        return false;
      }
    } else {
      Error = "unknown matrix axis '" + Key +
              "' (expected workloads/allocators/caches/paging/penalty/"
              "telemetry/delivery/engine)";
      return false;
    }
  }
  if (Spec.Workloads.empty()) {
    Error = "matrix spec must name at least one workload "
            "(workloads=gs,espresso,...)";
    return false;
  }
  if (Spec.Allocators.empty()) {
    Error = "matrix spec must name at least one allocator "
            "(allocators=FirstFit,BSD,...)";
    return false;
  }
  return true;
}
