//===- core/Lab.h - Experiment orchestration --------------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facade of allocsim: configure one experiment — an application
/// workload run against one allocator, observed by any set of cache
/// configurations and optionally by the page-fault simulator — and run it,
/// collecting everything the paper's figures and tables need: instruction
/// splits (Figure 1), fault-rate curves (Figures 2-3), miss rates (Figures
/// 6-8), time estimates (Figures 4-5, Tables 4-5), and per-source miss
/// attribution (Table 6).
///
/// Typical use:
/// \code
///   ExperimentConfig Config;
///   Config.Workload = WorkloadId::Gs;
///   Config.Allocator = AllocatorKind::QuickFit;
///   Config.Caches = paperCacheSweep();
///   RunResult Result = runExperiment(Config);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CORE_LAB_H
#define ALLOCSIM_CORE_LAB_H

#include "alloc/Allocator.h"
#include "alloc/FirstFit.h"
#include "alloc/SizeClassMap.h"
#include "cache/CacheSim.h"
#include "check/HeapCheck.h"
#include "inject/FaultPlan.h"
#include "metrics/CostModel.h"
#include "stats/Telemetry.h"
#include "workload/Engine.h"
#include "workload/Workload.h"

#include <optional>
#include <string>
#include <vector>

namespace allocsim {

/// Full description of one run.
struct ExperimentConfig {
  WorkloadId Workload = WorkloadId::Espresso;
  AllocatorKind Allocator = AllocatorKind::FirstFit;

  /// Workload scaling/seeding (see EngineOptions).
  EngineOptions Engine;

  /// Cache geometries to observe (may be empty). Entries must be unique —
  /// a duplicate would double-count in sweep output and is fatal in the
  /// cache layer (MatrixRunner diagnoses it per cell instead).
  std::vector<CacheConfig> Caches;

  /// How the cache sweep is simulated. PerConfig (the default) runs one
  /// CacheSim per entry and accepts arbitrary mixed geometries. StackDist
  /// runs the whole sweep in one stack-distance pass (cache/StackSim.h) —
  /// the entries must then share block size and set count (vary only
  /// associativity). Every reported number is bit-identical between the
  /// engines where both apply; StackDist just gets there in one pass
  /// instead of size() passes.
  CacheEngineKind CacheEngine = CacheEngineKind::PerConfig;

  /// Memory sizes (KB) at which to sample the page-fault-rate curve; the
  /// page simulator runs only if non-empty.
  std::vector<uint32_t> PagingMemoryKb;
  uint32_t PageBytes = 4096;

  /// Cache miss penalty in cycles (the paper's "modest" value is 25).
  uint32_t MissPenaltyCycles = 25;

  /// Run GnuLocal with emulated 8-byte boundary tags (Table 6).
  bool EmulateBoundaryTags = false;

  /// Free-list discipline when Allocator == FirstFit (extension ablation;
  /// the paper's measured configuration is Roving).
  FirstFitPolicy FirstFitDiscipline = FirstFitPolicy::Roving;

  /// Size-class budget when Allocator == Custom (classes are synthesized
  /// from this same workload's request-size profile).
  size_t CustomExactClasses = 12;
  uint32_t CustomMaxFastBytes = 1024;
  /// Explicit class map for Allocator == Custom, overriding the profile
  /// synthesis (used by the size-class policy ablation).
  std::optional<SizeClassMap> CustomClasses;

  /// Heap-integrity checking (off by default; the checker observes through
  /// untraced accessors only, so enabling it leaves every measurement
  /// bit-identical).
  CheckPolicy Check;

  /// FaultLab fault-injection plan (inactive by default — see
  /// inject/FaultPlan.h for the spec grammar). With a corruption plan the
  /// check policy's AbortOnViolation is forced off so injected damage is
  /// recorded rather than fatal; with an OOM plan the heap gets a soft
  /// capacity limit and the driver degrades gracefully on failed mallocs.
  FaultPlan Inject;

  /// Telemetry probe level. Off (the default) leaves every probe pointer
  /// null — nothing on any measurement path reads or writes telemetry
  /// state, so results are bit-identical to a build without the subsystem
  /// (tests/telemetry_equivalence_test.cpp holds it there). Summary enables
  /// counters; Full adds histograms (search lengths, per-set cache
  /// conflicts, page-run lengths, per-op instruction costs).
  TelemetryLevel Telemetry = TelemetryLevel::Off;

  /// Deliver the reference stream to the sinks in batches of
  /// AccessBatch::MaxCapacity (the measurement default) instead of one
  /// record at a time. Every result is bit-identical either way —
  /// tests/pipeline_equivalence_test.cpp holds both paths to that — so this
  /// knob exists for the equivalence suite and the throughput benchmark,
  /// not for correctness tuning.
  bool BatchedDelivery = true;
};

/// Miss statistics and derived time estimate for one cache geometry.
struct CacheResult {
  CacheConfig Config;
  CacheStats Stats;
  TimeEstimate Time;
};

/// One point of the fault-rate curve.
struct PagingPoint {
  uint32_t MemoryKb = 0;
  double FaultsPerRef = 0;
};

/// Everything measured in one run.
struct RunResult {
  /// Instruction split (QP's role; Figure 1).
  uint64_t AppInstructions = 0;
  uint64_t AllocInstructions = 0;
  double allocInstrFraction() const {
    uint64_t Total = AppInstructions + AllocInstructions;
    return Total == 0 ? 0.0
                      : static_cast<double>(AllocInstructions) /
                            static_cast<double>(Total);
  }
  uint64_t totalInstructions() const {
    return AppInstructions + AllocInstructions;
  }

  /// Reference-stream volume (PIXIE's role; Table 2).
  uint64_t TotalRefs = 0;
  uint64_t AppRefs = 0;
  uint64_t AllocRefs = 0;
  uint64_t TagRefs = 0;

  /// Allocator usage (Table 2 heap/object columns).
  AllocatorStats Alloc;
  uint32_t HeapBytes = 0;
  /// Free-structure nodes examined (sequential-fit allocators only).
  uint64_t BlocksSearched = 0;

  /// Per-cache results, in config order.
  std::vector<CacheResult> Caches;

  /// Fault-rate curve samples, in config order.
  std::vector<PagingPoint> Paging;
  uint64_t DistinctPages = 0;

  /// Merged telemetry snapshot (empty when ExperimentConfig::Telemetry is
  /// Off). Integer-only and derived solely from simulated state, so it is
  /// deterministic across hosts and job counts.
  TelemetrySnapshot Telemetry;

  /// Heap-integrity findings (zero when checking is off or the heap is
  /// sound). Messages are the retained CheckViolation::message() strings.
  uint64_t CheckViolations = 0;
  uint64_t CheckWalks = 0;
  std::vector<std::string> CheckReports;

  /// FaultLab results (all zero/empty unless ExperimentConfig::Inject is
  /// enabled). Faults lists every injected corruption site in event order;
  /// the sites are bit-identical across job counts and check levels, only
  /// each record's Detected flag depends on the check level.
  uint64_t FaultsInjected = 0;
  uint64_t FaultsDetected = 0;
  std::vector<FaultRecord> Faults;
  /// Soft-limit sbrk denials and stream events dropped on failed objects.
  uint64_t SbrkDenied = 0;
  uint64_t DroppedEvents = 0;

  /// Estimated execution seconds on the paper's 25 MHz test vehicle using
  /// cache \p CacheIndex.
  double estimatedSeconds(size_t CacheIndex) const {
    return Caches.at(CacheIndex).Time.seconds();
  }
};

/// Runs one experiment.
RunResult runExperiment(const ExperimentConfig &Config);

/// Like runExperiment, but if the run throws mid-stream and \p
/// PartialOnError is non-null, the telemetry accumulated up to the failure
/// point is snapshotted into it before the exception propagates (the
/// MatrixRunner's quarantine records are built from this).
RunResult runExperiment(const ExperimentConfig &Config,
                        TelemetrySnapshot *PartialOnError);

/// Runs one experiment whose event stream is \p Events (a parsed allocation
/// script) instead of a synthesized workload. The rig — caches, paging,
/// allocator, driver, telemetry, checking — is identical to runExperiment's;
/// Config.Workload contributes only its instructions-per-reference ratio.
/// For AllocatorKind::Custom without explicit classes, the size profile is
/// synthesized from the script's own malloc sizes. \p Events must validate
/// (see validateAllocEvents); the driver dies on unknown-object frees and
/// touches. This is the replay half of TraceLint's cross-check: the
/// analyzer's static predictions are asserted against this run's telemetry.
RunResult runScriptExperiment(const ExperimentConfig &Config,
                              const std::vector<AllocEvent> &Events);

/// Runs the same workload over each allocator in \p Allocators (shared
/// configuration otherwise), in order.
std::vector<RunResult> runSweep(const ExperimentConfig &Base,
                                const std::vector<AllocatorKind> &Allocators);

} // namespace allocsim

#endif // ALLOCSIM_CORE_LAB_H
