//===- core/Lab.cpp - Experiment orchestration ----------------------------===//

#include "core/Lab.h"

#include "alloc/CustomAlloc.h"
#include "alloc/GnuLocal.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"

#include <memory>

using namespace allocsim;

namespace {

std::unique_ptr<Allocator> buildAllocator(const ExperimentConfig &Config,
                                          SimHeap &Heap, CostModel &Cost,
                                          const WorkloadEngine &Engine) {
  if (Config.Allocator == AllocatorKind::Custom) {
    if (Config.CustomClasses)
      return std::make_unique<CustomAlloc>(Heap, Cost,
                                           *Config.CustomClasses);
    // Synthesize size classes from this workload's own request profile —
    // the CustoMalloc flow the paper's conclusions advocate.
    SizeClassMap Classes = SizeClassMap::fromProfile(
        Engine.sizeProfile(), Config.CustomExactClasses,
        Config.CustomMaxFastBytes);
    return std::make_unique<CustomAlloc>(Heap, Cost, std::move(Classes));
  }
  if (Config.Allocator == AllocatorKind::GnuLocal)
    return std::make_unique<GnuLocal>(Heap, Cost,
                                      Config.EmulateBoundaryTags);
  if (Config.Allocator == AllocatorKind::FirstFit)
    return std::make_unique<FirstFit>(Heap, Cost,
                                      Config.FirstFitDiscipline);
  return createAllocator(Config.Allocator, Heap, Cost);
}

} // namespace

RunResult allocsim::runExperiment(const ExperimentConfig &Config) {
  const AppProfile &Profile = getProfile(Config.Workload);

  MemoryBus Bus;
  if (Config.BatchedDelivery)
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);

  CacheBank Caches;
  for (const CacheConfig &CacheConf : Config.Caches)
    Caches.addCache(CacheConf);
  if (Caches.size() != 0)
    Bus.attach(&Caches);

  std::unique_ptr<PageSim> Paging;
  if (!Config.PagingMemoryKb.empty()) {
    Paging = std::make_unique<PageSim>(Config.PageBytes);
    Bus.attach(Paging.get());
  }

  SimHeap Heap(Bus);
  CostModel Cost;
  WorkloadEngine Engine(Profile, Config.Engine);
  std::unique_ptr<Allocator> Alloc =
      buildAllocator(Config, Heap, Cost, Engine);

  std::unique_ptr<HeapCheck> Check;
  if (Config.Check.Level != CheckLevel::Off) {
    Check = std::make_unique<HeapCheck>(Config.Check, Heap, Bus);
    Check->attachAllocator(*Alloc);
  }

  Driver Drive(*Alloc, Bus, Cost, Profile.instrPerRef());
  Drive.setHeapCheck(Check.get());
  Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
  // End-of-run flush point: every sink has consumed the complete stream
  // before statistics are read or the final invariant walk runs.
  Bus.flush();
  if (Check)
    Check->finalCheck();

  RunResult Result;
  Result.AppInstructions = Cost.appInstructions();
  Result.AllocInstructions = Cost.allocInstructions();
  Result.TotalRefs = Bus.totalAccesses();
  Result.AppRefs = Bus.accessesFrom(AccessSource::Application);
  Result.AllocRefs = Bus.accessesFrom(AccessSource::Allocator);
  Result.TagRefs = Bus.accessesFrom(AccessSource::TagEmulation);
  Result.Alloc = Alloc->stats();
  Result.HeapBytes = Alloc->heapBytes();
  Result.BlocksSearched = Alloc->blocksSearched();

  for (size_t I = 0; I != Caches.size(); ++I) {
    const CacheSim &Cache = Caches.cache(I);
    TimeEstimate Time;
    Time.Instructions = Cost.totalInstructions();
    Time.DataRefs = Bus.totalAccesses();
    Time.MissRate = Cache.stats().missRate();
    Time.MissPenalty = Config.MissPenaltyCycles;
    Result.Caches.push_back({Cache.config(), Cache.stats(), Time});
  }

  if (Paging) {
    Result.DistinctPages = Paging->distinctPages();
    for (uint32_t MemoryKb : Config.PagingMemoryKb)
      Result.Paging.push_back(
          {MemoryKb, Paging->faultRateForMemoryKb(MemoryKb)});
  }

  if (Check) {
    Result.CheckViolations = Check->violationCount();
    Result.CheckWalks = Check->walksRun();
    for (const CheckViolation &V : Check->violations())
      Result.CheckReports.push_back(V.message());
  }
  return Result;
}

std::vector<RunResult>
allocsim::runSweep(const ExperimentConfig &Base,
                   const std::vector<AllocatorKind> &Allocators) {
  std::vector<RunResult> Results;
  Results.reserve(Allocators.size());
  for (AllocatorKind Kind : Allocators) {
    ExperimentConfig Config = Base;
    Config.Allocator = Kind;
    Results.push_back(runExperiment(Config));
  }
  return Results;
}
