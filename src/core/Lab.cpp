//===- core/Lab.cpp - Experiment orchestration ----------------------------===//

#include "core/Lab.h"

#include "alloc/CustomAlloc.h"
#include "alloc/GnuLocal.h"
#include "cache/StackSim.h"
#include "inject/FaultInjector.h"
#include "vm/PageSim.h"
#include "workload/Driver.h"

#include <functional>
#include <memory>

using namespace allocsim;

namespace {

/// \p SizeProfile is only invoked for AllocatorKind::Custom without explicit
/// classes — lazily, because computing a request profile costs a full pass
/// over the workload's request sequence (or the script's events).
std::unique_ptr<Allocator>
buildAllocator(const ExperimentConfig &Config, SimHeap &Heap, CostModel &Cost,
               const std::function<Histogram()> &SizeProfile) {
  if (Config.Allocator == AllocatorKind::Custom) {
    if (Config.CustomClasses)
      return std::make_unique<CustomAlloc>(Heap, Cost,
                                           *Config.CustomClasses);
    // Synthesize size classes from this workload's own request profile —
    // the CustoMalloc flow the paper's conclusions advocate.
    SizeClassMap Classes = SizeClassMap::fromProfile(
        SizeProfile(), Config.CustomExactClasses, Config.CustomMaxFastBytes);
    return std::make_unique<CustomAlloc>(Heap, Cost, std::move(Classes));
  }
  if (Config.Allocator == AllocatorKind::GnuLocal)
    return std::make_unique<GnuLocal>(Heap, Cost,
                                      Config.EmulateBoundaryTags);
  if (Config.Allocator == AllocatorKind::FirstFit)
    return std::make_unique<FirstFit>(Heap, Cost,
                                      Config.FirstFitDiscipline);
  return createAllocator(Config.Allocator, Heap, Cost);
}

/// The shared rig: builds the bus/cache/paging/heap/allocator/driver stack,
/// lets \p Feed push an event stream through the driver, and harvests the
/// RunResult. runExperiment feeds from a WorkloadEngine, runScriptExperiment
/// from a parsed event script — everything downstream of the event source is
/// identical by construction.
RunResult runWithDriver(const ExperimentConfig &Config, double InstrPerRef,
                        const std::function<Histogram()> &SizeProfile,
                        const std::function<void(Driver &)> &Feed,
                        TelemetrySnapshot *PartialOnError = nullptr) {
  // One registry per run: no locks, no sharing. Null when telemetry is off,
  // which leaves every probe pointer below null as well.
  std::unique_ptr<Telemetry> Telem;
  if (Config.Telemetry != TelemetryLevel::Off)
    Telem = std::make_unique<Telemetry>(Config.Telemetry);

  MemoryBus Bus;
  if (Config.BatchedDelivery)
    Bus.setBatchCapacity(AccessBatch::MaxCapacity);

  // Cache engine selection: PerConfig builds one CacheSim per geometry in
  // a CacheBank; StackDist simulates the whole family in one stack-distance
  // pass. Exactly one of the two is attached; every number harvested below
  // is bit-identical between them (the engine-equivalence suite holds both
  // to that).
  CacheBank Caches;
  std::unique_ptr<StackSim> Stack;
  if (!Config.Caches.empty() &&
      Config.CacheEngine == CacheEngineKind::StackDist)
    Stack = std::make_unique<StackSim>(Config.Caches);
  for (const CacheConfig &CacheConf : Config.Caches)
    if (!Stack)
      Caches.addCache(CacheConf);
  if (Stack)
    Bus.attach(Stack.get());
  else if (!Caches.empty())
    Bus.attach(&Caches);
  // Per-set conflict profiles are histogram-grade data, so only the full
  // level pays for the per-set counter arrays.
  if (Telem && Telem->level() == TelemetryLevel::Full) {
    if (Stack)
      Stack->enableSetProfile();
    for (size_t I = 0; I != Caches.size(); ++I)
      Caches.cache(I).enableSetProfile();
  }

  std::unique_ptr<PageSim> Paging;
  if (!Config.PagingMemoryKb.empty()) {
    Paging = std::make_unique<PageSim>(Config.PageBytes);
    Paging->attachTelemetry(Telem.get());
    Bus.attach(Paging.get());
  }

  SimHeap Heap(Bus);
  Heap.attachTelemetry(Telem.get());
  CostModel Cost;
  std::unique_ptr<Allocator> Alloc =
      buildAllocator(Config, Heap, Cost, SizeProfile);
  Alloc->attachTelemetry(Telem.get());

  std::unique_ptr<HeapCheck> Check;
  if (Config.Check.Level != CheckLevel::Off) {
    // Under a corruption plan injected damage must be recorded, not fatal:
    // the detector-efficacy contract is "the checker reports it", and an
    // abort would also kill the graceful-degradation path.
    CheckPolicy CheckPol = Config.Check;
    if (Config.Inject.corruptionEnabled())
      CheckPol.AbortOnViolation = false;
    Check = std::make_unique<HeapCheck>(CheckPol, Heap, Bus);
    Check->attachAllocator(*Alloc);
  }

  // The injector interposes after the checker so its observer tee forwards
  // allocator state notes to the real shadow (when one exists) while its
  // private shadow stays current at every check level.
  std::unique_ptr<FaultInjector> Inj;
  if (Config.Inject.corruptionEnabled()) {
    Inj = std::make_unique<FaultInjector>(Config.Inject, Heap);
    Inj->attachAllocator(*Alloc, Check ? &Check->shadow() : nullptr);
  }

  // The soft capacity limit starts counting after the allocator's static
  // area: "oom:after=N" means N heap bytes of growth room from here on.
  if (Config.Inject.oomEnabled())
    Heap.setSoftLimit(static_cast<uint64_t>(Heap.heapBytes()) +
                      Config.Inject.OomAfterBytes);

  Driver Drive(*Alloc, Bus, Cost, InstrPerRef);
  Drive.setHeapCheck(Check.get());
  Drive.setFaultInjector(Inj.get());
  Drive.attachTelemetry(Telem.get());
  if (PartialOnError) {
    try {
      Feed(Drive);
    } catch (...) {
      // Quarantine support: hand the caller whatever telemetry the run
      // accumulated before dying, then let the failure propagate.
      if (Telem)
        *PartialOnError = Telem->snapshot();
      throw;
    }
  } else {
    Feed(Drive);
  }
  // End-of-run flush point: every sink has consumed the complete stream
  // before statistics are read or the final invariant walk runs.
  Bus.flush();
  if (Check)
    Check->finalCheck();

  RunResult Result;
  Result.AppInstructions = Cost.appInstructions();
  Result.AllocInstructions = Cost.allocInstructions();
  Result.TotalRefs = Bus.totalAccesses();
  Result.AppRefs = Bus.accessesFrom(AccessSource::Application);
  Result.AllocRefs = Bus.accessesFrom(AccessSource::Allocator);
  Result.TagRefs = Bus.accessesFrom(AccessSource::TagEmulation);
  Result.Alloc = Alloc->stats();
  Result.HeapBytes = Alloc->heapBytes();
  Result.BlocksSearched = Alloc->blocksSearched();

  const size_t NumCaches = Stack ? Stack->size() : Caches.size();
  for (size_t I = 0; I != NumCaches; ++I) {
    const CacheConfig &CacheConf =
        Stack ? Stack->config(I) : Caches.cache(I).config();
    const CacheStats Stats = Stack ? Stack->statsFor(I)
                                   : Caches.cache(I).stats();
    TimeEstimate Time;
    Time.Instructions = Cost.totalInstructions();
    Time.DataRefs = Bus.totalAccesses();
    Time.MissRate = Stats.missRate();
    Time.MissPenalty = Config.MissPenaltyCycles;
    Result.Caches.push_back({CacheConf, Stats, Time});
  }

  if (Paging) {
    Result.DistinctPages = Paging->distinctPages();
    for (uint32_t MemoryKb : Config.PagingMemoryKb)
      Result.Paging.push_back(
          {MemoryKb, Paging->faultRateForMemoryKb(MemoryKb)});
  }

  if (Check) {
    Result.CheckViolations = Check->violationCount();
    Result.CheckWalks = Check->walksRun();
    for (const CheckViolation &V : Check->violations())
      Result.CheckReports.push_back(V.message());
  }

  if (Config.Inject.enabled()) {
    Result.SbrkDenied = Heap.sbrkDenied();
    Result.DroppedEvents = Drive.droppedEvents();
    if (Inj) {
      Result.Faults = Inj->records();
      Result.FaultsInjected = Inj->injectedTotal();
      Result.FaultsDetected = Inj->detectedTotal();
    }
    // fault.* probes exist only under a plan, so plan-free telemetry
    // snapshots stay byte-identical to builds without FaultLab.
    if (Telem) {
      Telem->counter("fault.oom.sbrk_denied")->add(Heap.sbrkDenied());
      Telem->counter("fault.oom.failed_mallocs")
          ->add(Alloc->stats().FailedMallocs);
      Telem->counter("fault.oom.dropped_events")->add(Drive.droppedEvents());
      if (Inj)
        for (FaultKind Kind : {FaultKind::Flip, FaultKind::Smash}) {
          std::string Name = faultKindName(Kind);
          uint64_t Injected = Inj->injected(Kind);
          uint64_t Detected = Inj->detected(Kind);
          Telem->counter("fault.injected." + Name)->add(Injected);
          Telem->counter("fault.detected." + Name)->add(Detected);
          Telem->counter("fault.undetected." + Name)
              ->add(Injected - Detected);
        }
    }
  }

  if (Telem) {
    if (Paging)
      Paging->flushRunTelemetry();
    if (Stack) {
      // Stack-engine probes: how one pass served the whole family. The
      // counters ride at summary level; the reuse-distance distribution is
      // histogram-grade and waits for full.
      Telem->counter("cache.stackdist.frames")->add(Stack->totalFrames());
      Telem->counter("cache.stackdist.cold")->add(Stack->coldMisses());
      Telem->counter("cache.stackdist.members")->add(Stack->size());
      if (Telem->level() == TelemetryLevel::Full) {
        TelemetryHistogram *Dist =
            Telem->histogram("cache.stackdist.distance");
        const std::vector<uint64_t> Totals = Stack->distanceTotals();
        for (size_t D = 0; D != Totals.size(); ++D)
          Dist->record(D, Totals[D]);
      }
    }
    if (Telem->level() == TelemetryLevel::Full) {
      // Fold each cache's per-set miss counts into a conflict histogram:
      // one record per set, valued at that set's miss count. A heavy tail
      // here is the figure-6-to-8 conflict story in distribution form.
      // Both engines surface the same cache.<I>.set_misses names with the
      // same counts.
      for (size_t I = 0; I != NumCaches; ++I) {
        const std::vector<uint64_t> &Profile =
            Stack ? Stack->setMissProfile(I)
                  : Caches.cache(I).setMissProfile();
        if (Profile.empty())
          continue;
        TelemetryHistogram *Hist = Telem->histogram(
            "cache." + std::to_string(I) + ".set_misses");
        for (uint64_t Misses : Profile)
          Hist->record(Misses);
      }
    }
    Result.Telemetry = Telem->snapshot();
  }
  return Result;
}

} // namespace

RunResult allocsim::runExperiment(const ExperimentConfig &Config) {
  return runExperiment(Config, nullptr);
}

RunResult allocsim::runExperiment(const ExperimentConfig &Config,
                                  TelemetrySnapshot *PartialOnError) {
  const AppProfile &Profile = getProfile(Config.Workload);
  WorkloadEngine Engine(Profile, Config.Engine);
  return runWithDriver(
      Config, Profile.instrPerRef(),
      [&Engine] { return Engine.sizeProfile(); },
      [&Engine](Driver &Drive) {
        Engine.generate([&](const AllocEvent &Event) { Drive.execute(Event); });
      },
      PartialOnError);
}

RunResult
allocsim::runScriptExperiment(const ExperimentConfig &Config,
                              const std::vector<AllocEvent> &Events) {
  const AppProfile &Profile = getProfile(Config.Workload);
  return runWithDriver(
      Config, Profile.instrPerRef(),
      [&Events] {
        Histogram Sizes;
        for (const AllocEvent &Event : Events)
          if (Event.Kind == AllocEventKind::Malloc)
            Sizes.add(Event.Amount);
        return Sizes;
      },
      [&Events](Driver &Drive) {
        for (const AllocEvent &Event : Events)
          Drive.execute(Event);
      });
}

std::vector<RunResult>
allocsim::runSweep(const ExperimentConfig &Base,
                   const std::vector<AllocatorKind> &Allocators) {
  std::vector<RunResult> Results;
  Results.reserve(Allocators.size());
  for (AllocatorKind Kind : Allocators) {
    ExperimentConfig Config = Base;
    Config.Allocator = Kind;
    Results.push_back(runExperiment(Config));
  }
  return Results;
}
