//===- inject/FaultPlan.cpp - Parsed fault-injection plan -----------------===//

#include "inject/FaultPlan.h"

#include "support/SpecParse.h"

#include <cerrno>
#include <cstdlib>

using namespace allocsim;

const char *allocsim::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::Flip:
    return "flip";
  case FaultKind::Smash:
    return "smash";
  }
  return "?";
}

namespace {

SourceLoc locAt(size_t Offset) {
  return SourceLoc{1, static_cast<uint32_t>(Offset + 1)};
}

/// Parses a full-width unsigned decimal; false on anything else.
bool parseUnsigned64(const std::string &Text, uint64_t &Value) {
  if (Text.empty() || Text[0] == '-' || Text[0] == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Text.c_str(), &End, 10);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  Value = Parsed;
  return true;
}

/// Parses a probability: any strtod-accepted literal in [0, 1] (so both
/// "0.25" and the scientific "1e-6" of the documented grammar work).
bool parseRate(const std::string &Text, double &Value) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double Parsed = std::strtod(Text.c_str(), &End);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  if (!(Parsed >= 0.0 && Parsed <= 1.0))
    return false;
  Value = Parsed;
  return true;
}

} // namespace

FaultPlan allocsim::parseFaultPlan(const std::string &Text,
                                   DiagEngine &Diags) {
  FaultPlan Plan;
  Plan.Spec = Text;
  if (Text.empty())
    return Plan;

  size_t ErrorsBefore = Diags.errorCount();
  for (const SpecKeyValue &Axis : parseSpecKeyValues(Text, Diags)) {
    SourceLoc Loc = locAt(Axis.Offset);
    auto badValue = [&](const std::string &Expected) {
      Diags.error("inject-bad-value", Loc,
                  "fault parameter '" + Axis.Key + "' expects " + Expected +
                      ", got '" + Axis.Value + "'");
    };
    if (Axis.Key == "oom:after") {
      uint64_t Bytes = 0;
      if (!parseUnsigned64(Axis.Value, Bytes))
        badValue("a byte count");
      else
        Plan.OomAfterBytes = Bytes;
    } else if (Axis.Key == "flip:rate") {
      if (!parseRate(Axis.Value, Plan.FlipRate))
        badValue("a probability in [0, 1]");
    } else if (Axis.Key == "smash:rate") {
      if (!parseRate(Axis.Value, Plan.SmashRate))
        badValue("a probability in [0, 1]");
    } else if (Axis.Key == "cell:rate") {
      if (!parseRate(Axis.Value, Plan.CellRate))
        badValue("a probability in [0, 1]");
    } else if (Axis.Key == "retry:limit") {
      uint64_t Limit = 0;
      if (!parseUnsigned64(Axis.Value, Limit) || Limit > 64)
        badValue("a retry count (at most 64)");
      else
        Plan.RetryLimit = static_cast<uint32_t>(Limit);
    } else if (Axis.Key == "seed") {
      uint64_t Seed = 0;
      if (!parseUnsigned64(Axis.Value, Seed)) {
        badValue("an unsigned seed");
      } else {
        Plan.Seed = Seed;
        Plan.SeedSet = true;
      }
    } else {
      Diags.error("inject-unknown-fault", Loc,
                  "unknown fault class or parameter '" + Axis.Key +
                      "' (known: oom:after, flip:rate, smash:rate, "
                      "cell:rate, retry:limit, seed)");
    }
  }

  Plan.Active = Diags.errorCount() == ErrorsBefore;
  return Plan;
}
