//===- inject/FaultInjector.h - Deterministic fault injection ---*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FaultLab's corruption engine: injects memory-bus bit flips (stray
/// application references) and allocator-metadata smashes between the
/// allocator and the ShadowHeap, at seed-derived deterministic sites, and
/// records whether the run's HeapCheck caught each one — the injection log
/// is the ground-truth oracle for detector efficacy.
///
/// The determinism contract: for a fixed plan and seed, the injected fault
/// sites (kind, operation index, address) are bit-identical across job
/// counts *and* check levels. To make site selection independent of the
/// check configuration, the injector keeps its own private ShadowHeap
/// (attached to the same bus, fed by the same allocator hooks through an
/// observer tee) and its own private invariant walker:
///
///  * Flip targets are words whose private-shadow state is not UserLive —
///    exactly the states for which the real shadow, when present, must
///    report an application access. Detection at fast/full is guaranteed
///    by construction, never probabilistic.
///  * Smash targets are Metadata-state words whose poisoning the private
///    walker provably detects: the injector pokes the poison, runs its own
///    walker into a scratch log, and unpicks + retries (bounded) when the
///    walk stays clean. Only verified-detectable smashes are recorded, so
///    "full check missed an injected smash" is always a detector bug, not
///    an injection artifact. The poison is reverted right after the live
///    walk: the allocator never operates on a corrupted structure.
///
/// The injector emits real bus traffic for flips (they perturb cache and
/// paging stats, as real faults would) but never charges CostModel
/// instructions; with no plan attached nothing here exists and every output
/// byte is identical to a build without FaultLab.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_INJECT_FAULTINJECTOR_H
#define ALLOCSIM_INJECT_FAULTINJECTOR_H

#include "check/HeapCheck.h"
#include "check/HeapChecker.h"
#include "check/HeapStateObserver.h"
#include "check/ShadowHeap.h"
#include "inject/FaultPlan.h"
#include "support/Rng.h"

#include <memory>
#include <vector>

namespace allocsim {

class Allocator;

/// One experiment's fault-injection engine. Construct, attach the
/// allocator, then let the driver call onEvent after every executed event.
class FaultInjector final : public HeapStateObserver {
public:
  /// \p Plan must have corruption enabled; \p Heap is the experiment heap.
  FaultInjector(const FaultPlan &Plan, SimHeap &Heap);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Interposes this injector between \p Alloc and \p Downstream (the real
  /// shadow, or null at --check=off): the private shadow taps the bus and
  /// receives every state annotation, and the private walker is built.
  /// Call after HeapCheck::attachAllocator so the tee wraps the real shadow.
  void attachAllocator(Allocator &Alloc, HeapStateObserver *Downstream);

  /// Driver hook, called after event \p OpOrdinal completes (and after the
  /// periodic heap check ran): rolls the per-event fault dice and injects.
  /// \p Check is the run's checker (null at --check=off) — used only for
  /// detection accounting, never for site selection.
  void onEvent(uint64_t OpOrdinal, HeapCheck *Check);

  /// The injection log, in injection order.
  const std::vector<FaultRecord> &records() const { return Records; }
  uint64_t injected(FaultKind Kind) const;
  uint64_t detected(FaultKind Kind) const;
  uint64_t injectedTotal() const { return Records.size(); }
  uint64_t detectedTotal() const;

  /// HeapStateObserver tee: every annotation feeds the private shadow and
  /// is forwarded to the downstream (real) shadow when one is attached.
  void noteUserRange(const Allocator &Alloc, Addr Address,
                     uint32_t Size) override;
  void noteFreedRange(const Allocator &Alloc, Addr Address,
                      uint32_t Size) override;
  void noteMetadataRange(const Allocator &Alloc, Addr Address,
                         uint32_t Size) override;
  bool noteInvalidFree(const Allocator &Alloc, Addr Address) override;

private:
  void injectFlip(uint64_t OpOrdinal, HeapCheck *Check);
  void injectSmash(uint64_t OpOrdinal, HeapCheck *Check);
  /// Picks a word whose private-shadow state guarantees a violation for an
  /// application access (in-segment non-UserLive, else past the break).
  Addr pickFlipTarget();
  /// Runs the private walker over the current (poisoned) heap into a
  /// scratch log; true when the poison is detectable.
  bool walkerDetects(uint64_t OpOrdinal);

  FaultPlan Plan;
  SimHeap &Heap;
  Rng Rand;
  /// Private mirror: never aborts, retains nothing (counts are enough).
  ViolationLog PrivLog{/*AbortOnFirst=*/false, /*RecordCap=*/0};
  ShadowHeap Priv;
  Allocator *Alloc = nullptr;
  HeapStateObserver *Downstream = nullptr;
  std::unique_ptr<HeapChecker> Walker;
  std::vector<FaultRecord> Records;
};

} // namespace allocsim

#endif // ALLOCSIM_INJECT_FAULTINJECTOR_H
