//===- inject/FaultPlan.h - Parsed fault-injection plan ---------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FaultLab plan: which fault classes to inject, at what rates, under
/// which seed. Parsed from the `--inject` spec string — the same
/// `key=value;key=value` surface as `--matrix`, diagnosed exhaustively via
/// support/Diag so a typo'd plan is a usage error, never a silently
/// fault-free run. Grammar (every key optional; an empty spec is a disabled
/// plan):
///
///   oom:after=<bytes>   allow only <bytes> of further sbrk growth once the
///                       experiment rig is built, then deny (null-on-OOM)
///   flip:rate=<p>       per-event probability of a stray application
///                       reference (an address-line bit flip) on the bus
///   smash:rate=<p>      per-event probability of a one-word corruption of
///                       allocator-private metadata (boundary tag, freelist
///                       link, descriptor)
///   cell:rate=<p>       per-attempt probability that a MatrixRunner worker
///                       "crashes" a cell before it runs
///   retry:limit=<n>     bounded retries per failed matrix cell (default 2)
///   seed=<n>            fault-site RNG seed (cells re-derive per-cell
///                       seeds from it at matrix-expansion time)
///
/// Rates are probabilities in [0, 1]. Rule ids: inject-unknown-fault,
/// inject-bad-value, plus the structural spec-* rules of parseSpecKeyValues.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_INJECT_FAULTPLAN_H
#define ALLOCSIM_INJECT_FAULTPLAN_H

#include "mem/MemAccess.h"
#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace allocsim {

/// The corruption classes FaultLab injects between allocator and ShadowHeap.
enum class FaultKind : uint8_t {
  /// Stray application reference to an address that is not live user data.
  Flip,
  /// One-word smash of allocator-private metadata, verified detectable by
  /// the allocator's own invariant walker before it is counted.
  Smash,
};

const char *faultKindName(FaultKind Kind);

/// One injected fault site — the injection log entry the efficacy tests use
/// as their oracle. (Kind, OpIndex, Address) identify the site and must be
/// bit-identical across job counts and check levels for a fixed plan+seed;
/// Detected records whether the live HeapCheck flagged it.
struct FaultRecord {
  FaultKind Kind = FaultKind::Flip;
  /// Driver event ordinal after which the fault was injected.
  uint64_t OpIndex = 0;
  /// Simulated address the fault targeted.
  Addr Address = 0;
  /// True when the run's HeapCheck reported it (always false at --check=off).
  bool Detected = false;

  bool operator==(const FaultRecord &Other) const = default;
};

/// A parsed, validated fault plan. Default-constructed plans are disabled
/// and inject nothing — the no-`--inject` path never consults one.
struct FaultPlan {
  /// The original spec text (echoed into the matrix `faults` section).
  std::string Spec;
  /// True once a non-empty spec parsed cleanly; gates every injection hook.
  bool Active = false;
  /// Fault-site RNG seed (`seed=`); when unset, tools default it to the
  /// experiment seed so plans are reproducible without extra flags.
  uint64_t Seed = 0;
  bool SeedSet = false;
  /// `oom:after=` — additional sbrk growth allowed after rig construction.
  /// UINT64_MAX means unlimited (OOM class disabled).
  uint64_t OomAfterBytes = UINT64_MAX;
  /// `flip:rate=` / `smash:rate=` — per-driver-event probabilities.
  double FlipRate = 0.0;
  double SmashRate = 0.0;
  /// `cell:rate=` — per-attempt worker-fault probability in MatrixRunner.
  double CellRate = 0.0;
  /// `retry:limit=` — bounded retries per failed matrix cell.
  uint32_t RetryLimit = 2;

  bool enabled() const { return Active; }
  bool oomEnabled() const { return Active && OomAfterBytes != UINT64_MAX; }
  bool corruptionEnabled() const {
    return Active && (FlipRate > 0.0 || SmashRate > 0.0);
  }

  bool operator==(const FaultPlan &Other) const = default;
};

/// Parses \p Text into a plan, reporting every problem into \p Diags (rules
/// inject-unknown-fault, inject-bad-value, spec-*). The returned plan is
/// Active only when \p Text is non-empty and \p Diags gained no errors.
FaultPlan parseFaultPlan(const std::string &Text, DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_INJECT_FAULTPLAN_H
