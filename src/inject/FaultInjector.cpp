//===- inject/FaultInjector.cpp - Deterministic fault injection -----------===//

#include "inject/FaultInjector.h"

#include "alloc/Allocator.h"

using namespace allocsim;

namespace {

/// Attempts per injection at finding a suitable (and, for smashes,
/// provably detectable) target word before the injection is skipped.
constexpr int MaxTargetTries = 16;

/// XOR poison for metadata smashes: flips bits in every byte, so the
/// smashed word always differs from the original.
constexpr uint32_t SmashPoison = 0xDEADBEEFu;

} // namespace

FaultInjector::FaultInjector(const FaultPlan &InjectPlan, SimHeap &SimHeap)
    : Plan(InjectPlan), Heap(SimHeap), Rand(Plan.Seed), Priv(Heap, PrivLog) {}

FaultInjector::~FaultInjector() {
  Heap.bus().detach(&Priv);
  if (Alloc)
    Alloc->attachShadow(Downstream);
}

void FaultInjector::attachAllocator(Allocator &OuterAlloc,
                                    HeapStateObserver *RealShadow) {
  Alloc = &OuterAlloc;
  Downstream = RealShadow;
  Priv.setAllocatorName(OuterAlloc.name());
  Priv.setFlushBus(&Heap.bus());
  Heap.bus().attach(&Priv);
  Walker = createHeapChecker(OuterAlloc);
  // Re-attaching routes the allocator's annotations through the tee; the
  // onShadowAttached re-annotation of static metadata is idempotent for the
  // downstream shadow and primes the private one.
  OuterAlloc.attachShadow(this);
}

void FaultInjector::onEvent(uint64_t OpOrdinal, HeapCheck *Check) {
  // Both dice roll on every event, whatever happened on this one: the RNG
  // stream — and with it every fault site — depends only on the plan seed
  // and the (deterministic) simulated heap state.
  bool RollFlip = Plan.FlipRate > 0.0 && Rand.nextBool(Plan.FlipRate);
  bool RollSmash = Plan.SmashRate > 0.0 && Rand.nextBool(Plan.SmashRate);
  if (RollFlip)
    injectFlip(OpOrdinal, Check);
  if (RollSmash)
    injectSmash(OpOrdinal, Check);
}

Addr FaultInjector::pickFlipTarget() {
  uint32_t Span = Heap.heapBytes();
  if (Span >= 4) {
    for (int Try = 0; Try != MaxTargetTries; ++Try) {
      Addr Target =
          Heap.base() + 4 * static_cast<Addr>(Rand.nextBelow(Span / 4));
      if (Priv.byteState(Target) != ByteState::UserLive)
        return Target;
    }
  }
  // Fallback: a reference past the segment break is always out-of-segment.
  return Heap.brk() + 4 * static_cast<Addr>(Rand.nextBelow(1024));
}

void FaultInjector::injectFlip(uint64_t OpOrdinal, HeapCheck *Check) {
  MemoryBus &Bus = Heap.bus();
  // Deliver the legitimate stream first: target selection needs a current
  // private mirror, and the detection delta must cover only our access.
  Bus.flush();
  Addr Target = pickFlipTarget();
  uint64_t Before = Check ? Check->violationCount() : 0;
  Bus.emit(Target, 4, AccessKind::Write, AccessSource::Application);
  Bus.flush();
  bool Detected = Check && Check->violationCount() > Before;
  Records.push_back({FaultKind::Flip, OpOrdinal, Target, Detected});
}

bool FaultInjector::walkerDetects(uint64_t OpOrdinal) {
  ViolationLog Scratch(/*AbortOnFirst=*/false, /*RecordCap=*/0);
  CheckContext Ctx{Heap, &Priv, Scratch, OpOrdinal};
  Walker->check(Ctx);
  return Scratch.count() > 0;
}

void FaultInjector::injectSmash(uint64_t OpOrdinal, HeapCheck *Check) {
  MemoryBus &Bus = Heap.bus();
  Bus.flush();
  uint32_t Span = Heap.heapBytes();
  if (Span < 4)
    return;
  for (int Try = 0; Try != MaxTargetTries; ++Try) {
    Addr Target =
        Heap.base() + 4 * static_cast<Addr>(Rand.nextBelow(Span / 4));
    if (Priv.byteState(Target) != ByteState::Metadata)
      continue;
    uint32_t Saved = Heap.peek32(Target);
    Heap.poke32(Target, Saved ^ SmashPoison);
    if (!walkerDetects(OpOrdinal)) {
      // This word does not participate in a walked invariant (padding,
      // stale tag): unpick and try another so only provably detectable
      // corruption enters the log.
      Heap.poke32(Target, Saved);
      continue;
    }
    bool Detected = false;
    if (Check && Check->policy().Level == CheckLevel::Full) {
      uint64_t Before = Check->violationCount();
      Check->runWalk();
      Detected = Check->violationCount() > Before;
    }
    // Unpick before the allocator runs again: FaultLab measures whether the
    // detectors see the corruption, not how the allocator dies on it.
    Heap.poke32(Target, Saved);
    Records.push_back({FaultKind::Smash, OpOrdinal, Target, Detected});
    return;
  }
}

uint64_t FaultInjector::injected(FaultKind Kind) const {
  uint64_t Count = 0;
  for (const FaultRecord &Record : Records)
    Count += Record.Kind == Kind;
  return Count;
}

uint64_t FaultInjector::detected(FaultKind Kind) const {
  uint64_t Count = 0;
  for (const FaultRecord &Record : Records)
    Count += Record.Kind == Kind && Record.Detected;
  return Count;
}

uint64_t FaultInjector::detectedTotal() const {
  uint64_t Count = 0;
  for (const FaultRecord &Record : Records)
    Count += Record.Detected;
  return Count;
}

void FaultInjector::noteUserRange(const Allocator &NotingAlloc, Addr Address,
                                  uint32_t Size) {
  Priv.noteUserRange(NotingAlloc, Address, Size);
  if (Downstream)
    Downstream->noteUserRange(NotingAlloc, Address, Size);
}

void FaultInjector::noteFreedRange(const Allocator &NotingAlloc, Addr Address,
                                   uint32_t Size) {
  Priv.noteFreedRange(NotingAlloc, Address, Size);
  if (Downstream)
    Downstream->noteFreedRange(NotingAlloc, Address, Size);
}

void FaultInjector::noteMetadataRange(const Allocator &NotingAlloc,
                                      Addr Address, uint32_t Size) {
  Priv.noteMetadataRange(NotingAlloc, Address, Size);
  if (Downstream)
    Downstream->noteMetadataRange(NotingAlloc, Address, Size);
}

bool FaultInjector::noteInvalidFree(const Allocator &NotingAlloc,
                                    Addr Address) {
  Priv.noteInvalidFree(NotingAlloc, Address);
  return Downstream ? Downstream->noteInvalidFree(NotingAlloc, Address)
                    : false;
}
