//===- vm/PageSim.h - LRU stack-distance page simulator ---------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass LRU page-fault simulation, the role VMSIM plays in the paper
/// ("a fast implementation of a stack simulation algorithm"). Mattson's
/// inclusion property for LRU means a single pass that records the stack
/// distance of every reference yields the page-fault count for *every*
/// memory size at once — which is how the paper draws fault-rate-vs-memory
/// curves (Figures 2 and 3).
///
/// Stack distances are computed with a Fenwick tree over access-time slots
/// (O(log n) per reference) with periodic slot compaction so memory stays
/// proportional to the number of distinct pages, not the trace length.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_VM_PAGESIM_H
#define ALLOCSIM_VM_PAGESIM_H

#include "mem/AccessSink.h"
#include "support/Histogram.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace allocsim {

class Telemetry;
class TelemetryHistogram;

/// LRU page-fault simulator over the reference stream.
class PageSim final : public AccessSink {
public:
  /// \p PageBytes must be a power of two; the paper uses 4 KB pages.
  /// \p SlotCapacity bounds the Fenwick tree between compactions; the
  /// default suits production traces, tests shrink it to exercise
  /// compaction.
  explicit PageSim(uint32_t PageBytes = 4096,
                   uint32_t SlotCapacity = 1u << 21);

  void access(const MemAccess &Access) override;

  /// Batch fast path: a run of consecutive records falling wholly inside
  /// the most recently used page is a run of zero-stack-distance hits, so
  /// the whole run collapses to two counter additions — no hash lookup, no
  /// Fenwick work. Records that leave the page (or straddle one) fall back
  /// to the scalar path one at a time. Bit-identical to scalar delivery:
  /// the scalar fast path makes exactly the same per-record decision.
  void accessBatch(const MemAccess *Batch, size_t Count) override;

  /// Number of references processed.
  uint64_t references() const { return References; }

  /// Number of distinct pages ever touched.
  uint64_t distinctPages() const { return LastSlot.size(); }

  /// Number of page faults for an LRU-managed memory of \p MemoryPages
  /// resident pages. Cold (first-touch) faults are always included.
  uint64_t faults(uint64_t MemoryPages) const;

  /// Fault rate (faults per reference) for the given resident-set size in
  /// pages.
  double faultRate(uint64_t MemoryPages) const;

  /// Fault rate with memory expressed in kilobytes, as the paper's figures
  /// plot it.
  double faultRateForMemoryKb(uint64_t MemoryKb) const;

  /// The stack-distance histogram for distances >= 1 (distance = number of
  /// distinct pages referenced since the previous reference to the same
  /// page). Zero-distance re-references are counted separately.
  const Histogram &distanceHistogram() const { return DistanceHist; }

  /// Re-references to the most recently used page (stack distance zero).
  uint64_t zeroDistanceHits() const { return ZeroDistanceHits; }

  uint32_t pageBytes() const { return PageBytes; }

  /// Attaches (or detaches, with nullptr) a telemetry registry; at full
  /// level a "vm.page_run_len" histogram then records the length of every
  /// maximal run of consecutive page-touches to one page. Runs are tracked
  /// at the per-reference level in both the scalar and batched paths (and
  /// persist across batch boundaries), so the histogram is delivery-mode
  /// independent. Call flushRunTelemetry before reading the snapshot to
  /// close the trailing run.
  void attachTelemetry(Telemetry *Registry);

  /// Records the still-open trailing run, if any.
  void flushRunTelemetry();

private:
  /// Per-page-touch run tracking for the run-length histogram.
  void noteRunPage(uint64_t Page, uint64_t Touches);

  void fenwickAdd(uint32_t Slot, int Delta);
  uint32_t fenwickPrefix(uint32_t Slot) const;
  void compact();

  uint32_t PageBytes;
  uint32_t PageShift;

  /// page-number -> most recent slot (1-based).
  std::unordered_map<uint64_t, uint32_t> LastSlot;
  /// Fenwick tree over slots; Tree[i] covers active-slot counts.
  std::vector<uint32_t> Tree;
  uint32_t NextSlot = 1;
  uint32_t ActiveSlots = 0;

  Histogram DistanceHist;
  uint64_t ColdFaults = 0;
  uint64_t References = 0;
  uint64_t ZeroDistanceHits = 0;
  uint64_t MostRecentPage = 0;
  bool HaveRecent = false;

  /// Run-length telemetry; RunLenHist null when telemetry is off.
  TelemetryHistogram *RunLenHist = nullptr;
  uint64_t CurrentRunPage = 0;
  uint64_t CurrentRunLen = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_VM_PAGESIM_H
