//===- vm/PageSim.cpp - LRU stack-distance page simulator -----------------===//

#include "vm/PageSim.h"

#include "stats/Telemetry.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

PageSim::PageSim(uint32_t SimPageBytes, uint32_t SlotCapacity)
    : PageBytes(SimPageBytes) {
  if (PageBytes == 0 || (PageBytes & (PageBytes - 1)) != 0)
    reportFatalError("page size must be a power of two");
  if (SlotCapacity < 16)
    reportFatalError("slot capacity too small");
  PageShift = static_cast<uint32_t>(__builtin_ctz(PageBytes));
  Tree.assign(SlotCapacity + 1, 0);
}

void PageSim::fenwickAdd(uint32_t Slot, int Delta) {
  for (uint32_t I = Slot; I < Tree.size(); I += I & (~I + 1))
    Tree[I] = static_cast<uint32_t>(static_cast<int64_t>(Tree[I]) + Delta);
}

uint32_t PageSim::fenwickPrefix(uint32_t Slot) const {
  uint32_t Sum = 0;
  for (uint32_t I = Slot; I != 0; I -= I & (~I + 1))
    Sum += Tree[I];
  return Sum;
}

void PageSim::compact() {
  // Renumber active slots 1..P preserving order.
  std::vector<std::pair<uint32_t, uint64_t>> Order;
  Order.reserve(LastSlot.size());
  for (const auto &[Page, Slot] : LastSlot)
    Order.emplace_back(Slot, Page);
  std::sort(Order.begin(), Order.end());

  // If the working set approaches the slot capacity, compaction alone
  // cannot free enough slots; grow the tree.
  if (2 * (Order.size() + 16) > Tree.size())
    Tree.resize(2 * (Order.size() + 16));

  std::fill(Tree.begin(), Tree.end(), 0);
  uint32_t Slot = 0;
  for (const auto &[OldSlot, Page] : Order) {
    ++Slot;
    LastSlot[Page] = Slot;
    fenwickAdd(Slot, 1);
  }
  NextSlot = Slot + 1;
  assert(ActiveSlots == Slot && "active slot count diverged");
}

void PageSim::attachTelemetry(Telemetry *Registry) {
  RunLenHist = Registry ? Registry->histogram("vm.page_run_len") : nullptr;
}

void PageSim::noteRunPage(uint64_t Page, uint64_t Touches) {
  if (CurrentRunLen != 0 && Page == CurrentRunPage) {
    CurrentRunLen += Touches;
    return;
  }
  if (CurrentRunLen != 0)
    RunLenHist->record(CurrentRunLen);
  CurrentRunPage = Page;
  CurrentRunLen = Touches;
}

void PageSim::flushRunTelemetry() {
  if (RunLenHist && CurrentRunLen != 0)
    RunLenHist->record(CurrentRunLen);
  CurrentRunLen = 0;
}

void PageSim::access(const MemAccess &Acc) {
  // A multi-byte access that straddles a page boundary touches both pages;
  // with 4 KB pages and word accesses this is effectively never taken, but
  // correctness is cheap.
  uint64_t FirstPage = Acc.Address >> PageShift;
  uint64_t LastPage =
      (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1) >> PageShift;
  for (uint64_t Page = FirstPage; Page <= LastPage; ++Page) {
    ++References;
    if (RunLenHist)
      noteRunPage(Page, 1);
    // Fast path: a re-reference to the most recent page has stack distance
    // zero and leaves the LRU order unchanged. This covers the bulk of a
    // program's references (object sweeps, stack traffic).
    if (HaveRecent && Page == MostRecentPage) {
      ++ZeroDistanceHits;
      continue;
    }
    if (NextSlot >= Tree.size())
      compact();

    auto [It, Inserted] = LastSlot.try_emplace(Page, 0);
    if (Inserted) {
      ++ColdFaults;
    } else {
      uint32_t OldSlot = It->second;
      // Distance = number of distinct pages referenced after this page's
      // previous access = active slots beyond OldSlot.
      uint32_t Distance = ActiveSlots - fenwickPrefix(OldSlot);
      DistanceHist.add(Distance);
      fenwickAdd(OldSlot, -1);
      --ActiveSlots;
    }
    uint32_t Slot = NextSlot++;
    It->second = Slot;
    fenwickAdd(Slot, 1);
    ++ActiveSlots;
    MostRecentPage = Page;
    HaveRecent = true;
  }
}

void PageSim::accessBatch(const MemAccess *Batch, size_t Count) {
  size_t I = 0;
  while (I != Count) {
    if (HaveRecent) {
      // Run-length skip: count records wholly inside the MRU page. Checking
      // First and Last against the same page also routes straddling
      // accesses to the scalar path, where they split per page as always.
      const uint64_t Recent = MostRecentPage;
      const uint32_t Shift = PageShift;
      const size_t RunStart = I;
      while (I != Count) {
        const MemAccess &Acc = Batch[I];
        const uint64_t First = Acc.Address >> Shift;
        const uint64_t Last =
            (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1) >> Shift;
        if (First != Recent || Last != Recent)
          break;
        ++I;
      }
      const uint64_t Run = I - RunStart;
      References += Run;
      ZeroDistanceHits += Run;
      // Same decision the scalar path makes per record: every record in the
      // skipped run is one page-touch of the MRU page.
      if (RunLenHist && Run != 0)
        noteRunPage(Recent, Run);
      if (I == Count)
        return;
    }
    access(Batch[I]);
    ++I;
  }
}

uint64_t PageSim::faults(uint64_t MemoryPages) const {
  // LRU hit iff stack distance < resident pages. A memory of zero pages
  // faults on every reference.
  if (MemoryPages == 0)
    return References;
  // Zero-distance re-references always hit for MemoryPages >= 1.
  uint64_t Faults = ColdFaults;
  for (const auto &[Distance, Count] : DistanceHist)
    if (Distance >= MemoryPages)
      Faults += Count;
  return Faults;
}

double PageSim::faultRate(uint64_t MemoryPages) const {
  if (References == 0)
    return 0.0;
  return static_cast<double>(faults(MemoryPages)) /
         static_cast<double>(References);
}

double PageSim::faultRateForMemoryKb(uint64_t MemoryKb) const {
  return faultRate(MemoryKb * 1024 / PageBytes);
}
