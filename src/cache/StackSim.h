//===- cache/StackSim.h - One-pass stack-distance cache engine --*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass stack-distance simulation in the Mattson et al. lineage that
/// TYCHO (and through it the paper's simulator) descends from. LRU caches
/// that share a set-indexing function satisfy the *inclusion property*: the
/// contents of an A-way set are always a superset of the contents of the
/// same set at any smaller associativity. StackSim exploits this to derive
/// exact miss counts for an entire family of cache sizes from a single pass
/// over the reference stream: it maintains one LRU stack per set, records
/// the depth (stack distance) at which each block frame is found, and reads
/// off Misses(A) = #{references with distance >= A} afterwards.
///
/// The family must therefore share the set-indexing function: same block
/// size and same set count, varying only associativity (so capacities are
/// S * B, 2*S*B, 4*S*B, ...). Within that contract the counts — total and
/// split by AccessSource — are bit-exactly what per-config CacheBank
/// simulation produces, which the engine-equivalence suite enforces.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CACHE_STACKSIM_H
#define ALLOCSIM_CACHE_STACKSIM_H

#include "cache/CacheSim.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace allocsim {

/// Checks whether \p Family can be simulated in one stack-distance pass:
/// every member valid, all members sharing block size and set count, no
/// duplicate geometries. Returns an empty string when the family is fine
/// (an empty family is trivially fine), else a human-readable description
/// of the first problem. MatrixRunner uses this to fail a cell gracefully
/// before the StackSim constructor would reportFatalError on the same input.
std::string describeStackFamilyProblem(const std::vector<CacheConfig> &Family);

/// One-pass multi-configuration LRU simulator over a cache family sharing
/// block size and set count (see file comment). Attachable to the memory
/// bus wherever a CacheBank would go; statsFor(I) afterwards yields exactly
/// what CacheBank::cache(I).stats() would have been.
class StackSim final : public AccessSink {
public:
  /// \p Family must pass describeStackFamilyProblem and be non-empty;
  /// violations are fatal (callers wanting a diagnosis instead call the
  /// checker first).
  explicit StackSim(const std::vector<CacheConfig> &Family);

  size_t size() const { return Family.size(); }
  const CacheConfig &config(size_t Index) const { return Family[Index]; }

  /// Derives the member's hit/miss counters from the distance histogram:
  /// a reference found at 0-based stack depth D hits every member with
  /// Assoc > D and misses the rest; cold/overflow references miss everyone.
  CacheStats statsFor(size_t Index) const;

  void access(const MemAccess &Access) override;

  /// Batch fast path with the stack storage, set mask and block shift
  /// hoisted out of the record loop — same frame split and same stack
  /// update as the scalar path, so the counts are bit-identical.
  void accessBatch(const MemAccess *Batch, size_t Count) override;

  /// Empties every stack and zeroes all counters.
  void reset();

  /// Enables per-member per-set miss profiles (telemetry full level),
  /// mirroring CacheSim::enableSetProfile so both engines surface the same
  /// cache.<I>.set_misses telemetry. Costs size() * numSets() counters and
  /// one extra loop per frame; disabled (zero cost) by default.
  void enableSetProfile();

  /// Per-set miss counts of member \p Index; empty unless enableSetProfile
  /// was called.
  const std::vector<uint64_t> &setMissProfile(size_t Index) const {
    return SetMisses[Index];
  }

  // Telemetry accessors (cache.stackdist.* probes).

  /// Block frames simulated (== the Accesses count of every member).
  uint64_t totalFrames() const;
  /// Frames never seen before or found below every member's reach (the
  /// "infinite distance" bucket; a lower bound on every member's misses).
  uint64_t coldMisses() const;
  /// Finite-distance histogram summed over sources: element D counts frames
  /// found at 0-based stack depth D, for D in [0, maxAssoc()).
  std::vector<uint64_t> distanceTotals() const;
  /// Deepest stack kept per set == the family's largest associativity.
  uint32_t maxAssoc() const { return MaxAssoc; }
  /// Shared set count of the family.
  uint32_t numSets() const { return NumSets; }

private:
  /// Searches the frame's per-set LRU stack and returns the 0-based depth
  /// it was found at, or MaxAssoc for cold/overflow; repositions the frame
  /// at MRU either way.
  uint32_t stackDepthOf(uint64_t Frame);

  std::vector<CacheConfig> Family;
  uint32_t NumSets = 1;
  uint32_t SetMask = 0;
  uint32_t BlockShift = 0;
  /// Largest member associativity; stacks deeper than this are truncated,
  /// which is exact: a frame at depth >= MaxAssoc misses in every member,
  /// indistinguishable from a cold frame.
  uint32_t MaxAssoc = 1;
  /// NumSets stacks of MaxAssoc entries each, MRU first, tag-plus-one
  /// encoded (0 = empty), flattened row-major.
  std::vector<uint64_t> Stacks;
  /// Frames counted per source (== AccessesBySource of every member).
  std::array<uint64_t, NumAccessSources> FramesBySource{};
  /// Finite-distance histograms: DistBySource[S][D] counts source-S frames
  /// found at 0-based depth D.
  std::array<std::vector<uint64_t>, NumAccessSources> DistBySource;
  /// Cold/overflow frames per source (distance "infinity").
  std::array<uint64_t, NumAccessSources> InfBySource{};
  /// Per-member associativity, hoisted for the set-profile loop.
  std::vector<uint32_t> MemberAssoc;
  /// Per-member per-set miss counts; inner vectors empty unless the profile
  /// is enabled.
  std::vector<std::vector<uint64_t>> SetMisses;
  bool ProfileEnabled = false;
};

/// The stack-engine analogue of paperCacheSweep(): 16K..256K with 32-byte
/// blocks as one legal family — 512 sets throughout, associativity 1, 2,
/// ..., 16. The 16K member coincides with the paper's direct-mapped
/// configuration; the larger members trade the paper's direct mapping for
/// LRU associativity so the whole sweep comes out of one pass.
std::vector<CacheConfig> stackCacheSweep();

} // namespace allocsim

#endif // ALLOCSIM_CACHE_STACKSIM_H
