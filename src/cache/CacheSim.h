//===- cache/CacheSim.h - Data-cache simulators -----------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-cache simulators in the mold of TYCHO (Hill), which the paper
/// modified for execution-driven simulation. The paper's configuration is a
/// direct-mapped cache with 32-byte blocks; we additionally provide
/// set-associative LRU caches as an extension, and a CacheBank that
/// simulates many configurations from one reference stream in a single pass
/// (how the paper produced its miss-rate-vs-cache-size curves).
///
/// Misses are counted for both reads and writes (write-allocate); only the
/// data stream is modeled — the paper assumes a 0% instruction-cache miss
/// rate. Statistics are split by access source so that allocator-induced
/// and tag-induced misses can be attributed (Table 6).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CACHE_CACHESIM_H
#define ALLOCSIM_CACHE_CACHESIM_H

#include "mem/AccessSink.h"

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace allocsim {

/// Geometry of one cache.
struct CacheConfig {
  /// Total capacity in bytes; must be a power of two.
  uint32_t SizeBytes = 16 * 1024;
  /// Block (line) size in bytes; must be a power of two. The paper uses 32.
  uint32_t BlockBytes = 32;
  /// Associativity; 1 = direct-mapped (the paper's configuration).
  uint32_t Assoc = 1;

  /// Capacity in blocks; 0 for the degenerate BlockBytes == 0 geometry
  /// (which valid() rejects) rather than dividing by zero.
  uint32_t numBlocks() const {
    return BlockBytes == 0 ? 0 : SizeBytes / BlockBytes;
  }
  /// Number of sets; 0 for degenerate geometries (Assoc == 0 or
  /// BlockBytes == 0) rather than dividing by zero.
  uint32_t numSets() const { return Assoc == 0 ? 0 : numBlocks() / Assoc; }

  /// True if sizes are powers of two and the geometry is consistent.
  bool valid() const;

  /// E.g. "64K direct-mapped, 32B blocks"; sub-1K capacities print in
  /// bytes ("512B 16-way, 32B blocks"). Must stay total: it is called on
  /// configurations that already failed valid() to build the fatal-error
  /// message.
  std::string describe() const;

  bool operator==(const CacheConfig &Other) const = default;
};

/// How an experiment simulates its cache sweep.
enum class CacheEngineKind : uint8_t {
  /// One CacheSim per configuration (CacheBank): every reference probes
  /// every cache. Supports arbitrary mixed geometries.
  PerConfig,
  /// One-pass stack-distance engine (StackSim, see cache/StackSim.h): one
  /// capped LRU stack per set serves the whole family in a single pass.
  /// Requires the configurations to share block size and set count (vary
  /// only associativity); bit-exact with PerConfig where both apply.
  StackDist,
};

/// "percfg" / "stackdist".
const char *cacheEngineName(CacheEngineKind Engine);

/// Parses a cacheEngineName spelling; std::nullopt on anything else.
std::optional<CacheEngineKind> tryParseCacheEngine(std::string_view Name);

/// Hit/miss counters, split by access source.
struct CacheStats {
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  std::array<uint64_t, NumAccessSources> AccessesBySource{};
  std::array<uint64_t, NumAccessSources> MissesBySource{};

  double missRate() const {
    return Accesses == 0 ? 0.0
                         : static_cast<double>(Misses) /
                               static_cast<double>(Accesses);
  }

  uint64_t accessesFrom(AccessSource Source) const {
    return AccessesBySource[static_cast<unsigned>(Source)];
  }
  uint64_t missesFrom(AccessSource Source) const {
    return MissesBySource[static_cast<unsigned>(Source)];
  }
};

/// Common interface: a cache is an AccessSink with stats.
class CacheSim : public AccessSink {
public:
  explicit CacheSim(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }
  const CacheStats &stats() const { return Stats; }

  /// Empties the cache and zeroes statistics.
  virtual void reset() = 0;

  /// Splits an access into the block frames it covers and calls probe() for
  /// each; updates statistics.
  void access(const MemAccess &Access) final;

  /// Enables the per-set miss profile (telemetry full level): misses are
  /// additionally counted per cache set, exposing the conflict structure
  /// behind the aggregate miss rate. Costs one counter array of numSets()
  /// entries; disabled (empty, zero cost on the probe paths) by default.
  void enableSetProfile() { SetMisses.assign(Config.numSets(), 0); }

  /// Per-set miss counts; empty unless enableSetProfile was called.
  const std::vector<uint64_t> &setMissProfile() const { return SetMisses; }

protected:
  /// Folds batch-local counters into Stats (shared by the subclasses'
  /// accessBatch loops, which accumulate into registers first).
  void foldBatchStats(uint64_t Accesses, uint64_t Misses,
                      const uint64_t AccessesBySource[NumAccessSources],
                      const uint64_t MissesBySource[NumAccessSources]);

  /// Returns true on hit; updates replacement state.
  virtual bool probe(uint64_t BlockFrame) = 0;

  /// Set index a frame maps to (for the per-set miss profile).
  virtual uint32_t setIndexOf(uint64_t BlockFrame) const = 0;

  CacheConfig Config;
  CacheStats Stats;
  uint32_t BlockShift = 0;
  /// Per-set miss counts; empty when the set profile is disabled.
  std::vector<uint64_t> SetMisses;
};

/// Direct-mapped cache: one tag per set. This is the paper's model.
class DirectMappedCache final : public CacheSim {
public:
  explicit DirectMappedCache(const CacheConfig &Config);

  void reset() override;

  /// Batch fast path: one pass over the records with the block shift, index
  /// mask and tag array hoisted out of the loop and probe() inlined —
  /// bit-identical to the scalar path by construction (the equivalence
  /// suite enforces it).
  void accessBatch(const MemAccess *Batch, size_t Count) override;

private:
  bool probe(uint64_t BlockFrame) override;
  uint32_t setIndexOf(uint64_t BlockFrame) const override {
    return static_cast<uint32_t>(BlockFrame) & IndexMask;
  }

  uint32_t IndexMask;
  /// Tag-plus-one per set; 0 means invalid.
  std::vector<uint64_t> Tags;
};

/// N-way set-associative cache with true-LRU replacement (extension beyond
/// the paper's direct-mapped study).
class SetAssocCache final : public CacheSim {
public:
  explicit SetAssocCache(const CacheConfig &Config);

  void reset() override;

private:
  bool probe(uint64_t BlockFrame) override;
  uint32_t setIndexOf(uint64_t BlockFrame) const override {
    return static_cast<uint32_t>(BlockFrame % NumSets);
  }

  uint32_t NumSets;
  /// Ways for each set, most-recently-used first; 0 means invalid.
  std::vector<uint64_t> Ways;
};

/// Direct-mapped cache augmented with a small fully-associative victim
/// buffer (Jouppi 1990, cited in the paper's introduction as the era's
/// answer to rising miss costs). A block evicted from the main array drops
/// into the victim buffer; a main-array miss that hits the buffer swaps
/// the two blocks and counts as a hit. Extension beyond the paper's
/// direct-mapped study: it shows how much of each allocator's miss rate is
/// conflict structure a tiny buffer can absorb.
class VictimCache final : public CacheSim {
public:
  /// \p Config must be direct-mapped; \p VictimEntries is the buffer size
  /// in blocks (Jouppi studied 1-15).
  VictimCache(const CacheConfig &Config, uint32_t VictimEntries);

  void reset() override;

  /// Main-array misses that the victim buffer absorbed.
  uint64_t victimHits() const { return VictimHits; }

private:
  bool probe(uint64_t BlockFrame) override;
  uint32_t setIndexOf(uint64_t BlockFrame) const override {
    return static_cast<uint32_t>(BlockFrame) & IndexMask;
  }

  uint32_t IndexMask;
  /// Tag-plus-one per set; 0 means invalid.
  std::vector<uint64_t> Tags;
  /// Victim buffer, most-recently-inserted first; 0 means invalid.
  std::vector<uint64_t> Victims;
  uint64_t VictimHits = 0;
};

/// Simulates several cache configurations simultaneously from one stream.
class CacheBank final : public AccessSink {
public:
  /// Adds a cache (direct-mapped if Assoc==1, else set-associative) and
  /// returns its index. A configuration equal to one already in the bank
  /// is fatal: a duplicate would silently double-count in sweep output, so
  /// callers building banks from user input must dedupe (or diagnose)
  /// first.
  size_t addCache(const CacheConfig &Config);

  void access(const MemAccess &Access) override;

  /// Delivers the whole batch to each cache in turn (rather than each
  /// access to every cache), so one cache's tag array stays hot for
  /// hundreds of probes before the next cache's is touched.
  void accessBatch(const MemAccess *Batch, size_t Count) override;

  size_t size() const { return Caches.size(); }
  bool empty() const { return Caches.empty(); }
  const CacheSim &cache(size_t Index) const { return *Caches[Index]; }
  CacheSim &cache(size_t Index) { return *Caches[Index]; }

  void resetAll();

private:
  std::vector<std::unique_ptr<CacheSim>> Caches;
};

/// Builds the paper's sweep: direct-mapped caches of 16K, 32K, ..., 256K
/// with 32-byte blocks.
std::vector<CacheConfig> paperCacheSweep();

} // namespace allocsim

#endif // ALLOCSIM_CACHE_CACHESIM_H
