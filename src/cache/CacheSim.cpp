//===- cache/CacheSim.cpp - Data-cache simulators -------------------------===//

#include "cache/CacheSim.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

namespace {

bool isPowerOfTwo(uint32_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

uint32_t log2Exact(uint32_t Value) {
  assert(isPowerOfTwo(Value) && "log2Exact of non-power-of-two");
  return static_cast<uint32_t>(__builtin_ctz(Value));
}

} // namespace

bool CacheConfig::valid() const {
  return isPowerOfTwo(SizeBytes) && isPowerOfTwo(BlockBytes) &&
         isPowerOfTwo(Assoc) && BlockBytes >= 4 && SizeBytes >= BlockBytes &&
         Assoc <= numBlocks();
}

std::string CacheConfig::describe() const {
  // Print sub-1K capacities in bytes instead of a misleading "0K" — this
  // runs on configs that already failed valid(), and also on legal tiny
  // fully-associative ones (e.g. 512B 16-way).
  std::string Result = SizeBytes >= 1024
                           ? std::to_string(SizeBytes / 1024) + "K "
                           : std::to_string(SizeBytes) + "B ";
  Result += Assoc == 1 ? "direct-mapped" : (std::to_string(Assoc) + "-way");
  Result += ", " + std::to_string(BlockBytes) + "B blocks";
  return Result;
}

const char *allocsim::cacheEngineName(CacheEngineKind Engine) {
  switch (Engine) {
  case CacheEngineKind::PerConfig:
    return "percfg";
  case CacheEngineKind::StackDist:
    return "stackdist";
  }
  return "?";
}

std::optional<CacheEngineKind>
allocsim::tryParseCacheEngine(std::string_view Name) {
  if (Name == "percfg")
    return CacheEngineKind::PerConfig;
  if (Name == "stackdist")
    return CacheEngineKind::StackDist;
  return std::nullopt;
}

CacheSim::CacheSim(const CacheConfig &SimConfig) : Config(SimConfig) {
  // Validate before deriving the block shift: log2Exact on a zero or
  // non-power-of-two block size is undefined behavior, and degenerate
  // geometries must reach reportFatalError with a printable describe().
  if (!Config.valid())
    reportFatalError("invalid cache configuration: " + Config.describe());
  BlockShift = log2Exact(Config.BlockBytes);
}

void CacheSim::access(const MemAccess &Acc) {
  uint64_t First = Acc.Address >> BlockShift;
  uint64_t Last = (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1)
                  >> BlockShift;
  // An access straddling a block boundary counts once per block touched,
  // like a trace with one entry per word.
  for (uint64_t Frame = First; Frame <= Last; ++Frame) {
    ++Stats.Accesses;
    ++Stats.AccessesBySource[static_cast<unsigned>(Acc.Source)];
    if (!probe(Frame)) {
      ++Stats.Misses;
      ++Stats.MissesBySource[static_cast<unsigned>(Acc.Source)];
      if (!SetMisses.empty())
        ++SetMisses[setIndexOf(Frame)];
    }
  }
}

void CacheSim::foldBatchStats(uint64_t Accesses, uint64_t Misses,
                              const uint64_t AccBySource[NumAccessSources],
                              const uint64_t MissBySource[NumAccessSources]) {
  Stats.Accesses += Accesses;
  Stats.Misses += Misses;
  for (unsigned S = 0; S != NumAccessSources; ++S) {
    Stats.AccessesBySource[S] += AccBySource[S];
    Stats.MissesBySource[S] += MissBySource[S];
  }
}

DirectMappedCache::DirectMappedCache(const CacheConfig &SimConfig)
    : CacheSim(SimConfig), IndexMask(SimConfig.numSets() - 1),
      Tags(SimConfig.numSets(), 0) {
  assert(Config.Assoc == 1 && "direct-mapped cache requires Assoc == 1");
}

void DirectMappedCache::reset() {
  std::fill(Tags.begin(), Tags.end(), 0);
  std::fill(SetMisses.begin(), SetMisses.end(), 0);
  Stats = CacheStats();
}

void DirectMappedCache::accessBatch(const MemAccess *Batch, size_t Count) {
  // Hoist everything loop-invariant: the tag array, index mask and block
  // shift live in registers for the whole batch, and statistics accumulate
  // into locals folded back once. Same frame split and same tag update as
  // the scalar access()/probe() pair, so the counts are bit-identical.
  uint64_t *TagArray = Tags.data();
  const uint32_t Mask = IndexMask;
  const uint32_t Shift = BlockShift;
  uint64_t *SetMissArray = SetMisses.empty() ? nullptr : SetMisses.data();
  uint64_t Accesses = 0, Misses = 0;
  uint64_t AccBySource[NumAccessSources] = {};
  uint64_t MissBySource[NumAccessSources] = {};
  for (size_t I = 0; I != Count; ++I) {
    const MemAccess &Acc = Batch[I];
    const unsigned Source = static_cast<unsigned>(Acc.Source);
    const uint64_t First = Acc.Address >> Shift;
    const uint64_t Last =
        (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1) >> Shift;
    for (uint64_t Frame = First; Frame <= Last; ++Frame) {
      ++Accesses;
      ++AccBySource[Source];
      const uint64_t TagPlusOne = Frame + 1;
      const uint32_t Set = static_cast<uint32_t>(Frame) & Mask;
      uint64_t &Slot = TagArray[Set];
      if (Slot != TagPlusOne) {
        Slot = TagPlusOne;
        ++Misses;
        ++MissBySource[Source];
        if (SetMissArray)
          ++SetMissArray[Set];
      }
    }
  }
  foldBatchStats(Accesses, Misses, AccBySource, MissBySource);
}

bool DirectMappedCache::probe(uint64_t BlockFrame) {
  uint32_t Set = static_cast<uint32_t>(BlockFrame) & IndexMask;
  uint64_t TagPlusOne = BlockFrame + 1;
  if (Tags[Set] == TagPlusOne)
    return true;
  Tags[Set] = TagPlusOne;
  return false;
}

SetAssocCache::SetAssocCache(const CacheConfig &SimConfig)
    : CacheSim(SimConfig), NumSets(SimConfig.numSets()),
      Ways(static_cast<size_t>(SimConfig.numSets()) * SimConfig.Assoc, 0) {}

void SetAssocCache::reset() {
  std::fill(Ways.begin(), Ways.end(), 0);
  std::fill(SetMisses.begin(), SetMisses.end(), 0);
  Stats = CacheStats();
}

bool SetAssocCache::probe(uint64_t BlockFrame) {
  uint32_t Set = static_cast<uint32_t>(BlockFrame % NumSets);
  uint64_t TagPlusOne = BlockFrame + 1;
  uint64_t *SetWays = &Ways[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t Way = 0; Way != Config.Assoc; ++Way) {
    if (SetWays[Way] != TagPlusOne)
      continue;
    // Hit: move to MRU position.
    for (uint32_t J = Way; J != 0; --J)
      SetWays[J] = SetWays[J - 1];
    SetWays[0] = TagPlusOne;
    return true;
  }
  // Miss: evict LRU (last way), shift, insert at MRU.
  for (uint32_t J = Config.Assoc - 1; J != 0; --J)
    SetWays[J] = SetWays[J - 1];
  SetWays[0] = TagPlusOne;
  return false;
}

VictimCache::VictimCache(const CacheConfig &SimConfig,
                         uint32_t VictimEntries)
    : CacheSim(SimConfig), IndexMask(SimConfig.numSets() - 1),
      Tags(SimConfig.numSets(), 0), Victims(VictimEntries, 0) {
  if (SimConfig.Assoc != 1)
    reportFatalError("victim cache requires a direct-mapped main array");
  if (VictimEntries == 0)
    reportFatalError("victim cache needs at least one buffer entry");
}

void VictimCache::reset() {
  std::fill(Tags.begin(), Tags.end(), 0);
  std::fill(Victims.begin(), Victims.end(), 0);
  std::fill(SetMisses.begin(), SetMisses.end(), 0);
  Stats = CacheStats();
  VictimHits = 0;
}

bool VictimCache::probe(uint64_t BlockFrame) {
  uint32_t Set = static_cast<uint32_t>(BlockFrame) & IndexMask;
  uint64_t TagPlusOne = BlockFrame + 1;
  if (Tags[Set] == TagPlusOne)
    return true;

  // Main-array miss: search the victim buffer.
  for (size_t I = 0; I != Victims.size(); ++I) {
    if (Victims[I] != TagPlusOne)
      continue;
    // Swap: the requested block returns to the main array, the displaced
    // main block takes its buffer slot (promoted to most recent).
    uint64_t Displaced = Tags[Set];
    Tags[Set] = TagPlusOne;
    for (size_t J = I; J != 0; --J)
      Victims[J] = Victims[J - 1];
    Victims[0] = Displaced;
    ++VictimHits;
    return true;
  }

  // Full miss: displaced main block enters the buffer (LRU evict).
  uint64_t Displaced = Tags[Set];
  Tags[Set] = TagPlusOne;
  if (Displaced != 0) {
    for (size_t J = Victims.size() - 1; J != 0; --J)
      Victims[J] = Victims[J - 1];
    Victims[0] = Displaced;
  }
  return false;
}

size_t CacheBank::addCache(const CacheConfig &SimConfig) {
  for (size_t I = 0; I != Caches.size(); ++I)
    if (Caches[I]->config() == SimConfig)
      reportFatalError("duplicate cache configuration (already at index " +
                       std::to_string(I) +
                       "): " + SimConfig.describe() +
                       " — a duplicate would double-count in sweep output");
  if (SimConfig.Assoc == 1)
    Caches.push_back(std::make_unique<DirectMappedCache>(SimConfig));
  else
    Caches.push_back(std::make_unique<SetAssocCache>(SimConfig));
  return Caches.size() - 1;
}

void CacheBank::access(const MemAccess &Acc) {
  for (auto &Cache : Caches)
    Cache->access(Acc);
}

void CacheBank::accessBatch(const MemAccess *Batch, size_t Count) {
  for (auto &Cache : Caches)
    Cache->accessBatch(Batch, Count);
}

void CacheBank::resetAll() {
  for (auto &Cache : Caches)
    Cache->reset();
}

std::vector<CacheConfig> allocsim::paperCacheSweep() {
  std::vector<CacheConfig> Configs;
  for (uint32_t Kb = 16; Kb <= 256; Kb *= 2)
    Configs.push_back(CacheConfig{Kb * 1024, 32, 1});
  return Configs;
}
