//===- cache/StackSim.cpp - One-pass stack-distance cache engine ----------===//

#include "cache/StackSim.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

namespace {

uint32_t log2Exact(uint32_t Value) {
  assert(Value != 0 && (Value & (Value - 1)) == 0 &&
         "log2Exact of non-power-of-two");
  return static_cast<uint32_t>(__builtin_ctz(Value));
}

} // namespace

std::string
allocsim::describeStackFamilyProblem(const std::vector<CacheConfig> &Family) {
  for (const CacheConfig &Config : Family)
    if (!Config.valid())
      return "invalid cache configuration: " + Config.describe();
  if (Family.empty())
    return "";
  const CacheConfig &First = Family.front();
  for (size_t I = 1; I != Family.size(); ++I) {
    const CacheConfig &Config = Family[I];
    if (Config.BlockBytes != First.BlockBytes)
      return "stack-distance family must share one block size: " +
             First.describe() + " vs " + Config.describe();
    if (Config.numSets() != First.numSets())
      return "stack-distance family must share one set count (vary only "
             "associativity): " +
             First.describe() + " has " + std::to_string(First.numSets()) +
             " sets, " + Config.describe() + " has " +
             std::to_string(Config.numSets());
    for (size_t J = 0; J != I; ++J)
      if (Family[J] == Config)
        return "duplicate cache configuration: " + Config.describe();
  }
  return "";
}

StackSim::StackSim(const std::vector<CacheConfig> &SimFamily)
    : Family(SimFamily) {
  if (Family.empty())
    reportFatalError("stack-distance engine needs at least one cache "
                     "configuration");
  std::string Problem = describeStackFamilyProblem(Family);
  if (!Problem.empty())
    reportFatalError("stack-distance engine: " + Problem);

  NumSets = Family.front().numSets();
  SetMask = NumSets - 1;
  BlockShift = log2Exact(Family.front().BlockBytes);
  MemberAssoc.reserve(Family.size());
  for (const CacheConfig &Config : Family) {
    MemberAssoc.push_back(Config.Assoc);
    MaxAssoc = std::max(MaxAssoc, Config.Assoc);
  }
  Stacks.assign(static_cast<size_t>(NumSets) * MaxAssoc, 0);
  for (auto &Dist : DistBySource)
    Dist.assign(MaxAssoc, 0);
  SetMisses.resize(Family.size());
}

CacheStats StackSim::statsFor(size_t Index) const {
  const uint32_t Assoc = Family[Index].Assoc;
  CacheStats Stats;
  for (unsigned S = 0; S != NumAccessSources; ++S) {
    uint64_t Misses = InfBySource[S];
    for (uint32_t D = Assoc; D < MaxAssoc; ++D)
      Misses += DistBySource[S][D];
    Stats.AccessesBySource[S] = FramesBySource[S];
    Stats.MissesBySource[S] = Misses;
    Stats.Accesses += FramesBySource[S];
    Stats.Misses += Misses;
  }
  return Stats;
}

uint32_t StackSim::stackDepthOf(uint64_t Frame) {
  const uint32_t Set = static_cast<uint32_t>(Frame) & SetMask;
  const uint64_t TagPlusOne = Frame + 1;
  uint64_t *Stack = &Stacks[static_cast<size_t>(Set) * MaxAssoc];
  // MRU fast path: most frames re-reference the most recent block of
  // their set, and a depth-0 hit moves nothing.
  uint64_t Prev = Stack[0];
  if (Prev == TagPlusOne)
    return 0;
  // Search and reposition in one pass: slide each entry down while
  // scanning for the tag. A hit at depth D has shifted exactly [0..D); a
  // cold/overflow frame has shifted the whole stack, dropping the LRU tag
  // (exact — an entry at depth >= MaxAssoc misses in every member, which
  // is indistinguishable from never having been cached).
  Stack[0] = TagPlusOne;
  for (uint32_t D = 1; D != MaxAssoc; ++D) {
    const uint64_t Cur = Stack[D];
    Stack[D] = Prev;
    if (Cur == TagPlusOne)
      return D;
    Prev = Cur;
  }
  return MaxAssoc;
}

void StackSim::access(const MemAccess &Acc) {
  const unsigned Source = static_cast<unsigned>(Acc.Source);
  uint64_t First = Acc.Address >> BlockShift;
  uint64_t Last = (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1)
                  >> BlockShift;
  // Same frame split as CacheSim::access: an access straddling a block
  // boundary counts once per block touched.
  for (uint64_t Frame = First; Frame <= Last; ++Frame) {
    ++FramesBySource[Source];
    const uint32_t Depth = stackDepthOf(Frame);
    if (Depth == MaxAssoc)
      ++InfBySource[Source];
    else
      ++DistBySource[Source][Depth];
    if (ProfileEnabled) {
      const uint32_t Set = static_cast<uint32_t>(Frame) & SetMask;
      for (size_t M = 0; M != MemberAssoc.size(); ++M)
        if (MemberAssoc[M] <= Depth)
          ++SetMisses[M][Set];
    }
  }
}

void StackSim::accessBatch(const MemAccess *Batch, size_t Count) {
  // Hoist everything loop-invariant, as DirectMappedCache::accessBatch
  // does: stack storage, mask, shift and depth cap live in registers for
  // the whole batch; the small per-source totals fold back once.
  uint64_t *StackData = Stacks.data();
  const uint32_t Mask = SetMask;
  const uint32_t Shift = BlockShift;
  const uint32_t Depths = MaxAssoc;
  uint64_t Frames[NumAccessSources] = {};
  uint64_t Cold[NumAccessSources] = {};
  for (size_t I = 0; I != Count; ++I) {
    const MemAccess &Acc = Batch[I];
    const unsigned Source = static_cast<unsigned>(Acc.Source);
    const uint64_t First = Acc.Address >> Shift;
    const uint64_t Last =
        (Acc.Address + std::max<uint32_t>(Acc.Size, 1) - 1) >> Shift;
    for (uint64_t Frame = First; Frame <= Last; ++Frame) {
      ++Frames[Source];
      const uint32_t Set = static_cast<uint32_t>(Frame) & Mask;
      const uint64_t TagPlusOne = Frame + 1;
      uint64_t *Stack = StackData + static_cast<size_t>(Set) * Depths;
      // MRU fast path: a depth-0 hit moves nothing and (Assoc >= 1 in
      // every valid config) misses in no member.
      uint64_t Prev = Stack[0];
      if (Prev == TagPlusOne) {
        ++DistBySource[Source][0];
        continue;
      }
      // Search and reposition in one pass, as stackDepthOf does.
      Stack[0] = TagPlusOne;
      uint32_t Depth = Depths;
      for (uint32_t D = 1; D != Depths; ++D) {
        const uint64_t Cur = Stack[D];
        Stack[D] = Prev;
        if (Cur == TagPlusOne) {
          Depth = D;
          break;
        }
        Prev = Cur;
      }
      if (Depth == Depths)
        ++Cold[Source];
      else
        ++DistBySource[Source][Depth];
      if (ProfileEnabled)
        for (size_t M = 0; M != MemberAssoc.size(); ++M)
          if (MemberAssoc[M] <= Depth)
            ++SetMisses[M][Set];
    }
  }
  for (unsigned S = 0; S != NumAccessSources; ++S) {
    FramesBySource[S] += Frames[S];
    InfBySource[S] += Cold[S];
  }
}

void StackSim::reset() {
  std::fill(Stacks.begin(), Stacks.end(), 0);
  FramesBySource.fill(0);
  InfBySource.fill(0);
  for (auto &Dist : DistBySource)
    std::fill(Dist.begin(), Dist.end(), 0);
  for (auto &Profile : SetMisses)
    std::fill(Profile.begin(), Profile.end(), 0);
}

void StackSim::enableSetProfile() {
  ProfileEnabled = true;
  for (auto &Profile : SetMisses)
    Profile.assign(NumSets, 0);
}

uint64_t StackSim::totalFrames() const {
  uint64_t Total = 0;
  for (uint64_t Frames : FramesBySource)
    Total += Frames;
  return Total;
}

uint64_t StackSim::coldMisses() const {
  uint64_t Total = 0;
  for (uint64_t Cold : InfBySource)
    Total += Cold;
  return Total;
}

std::vector<uint64_t> StackSim::distanceTotals() const {
  std::vector<uint64_t> Totals(MaxAssoc, 0);
  for (const auto &Dist : DistBySource)
    for (uint32_t D = 0; D != MaxAssoc; ++D)
      Totals[D] += Dist[D];
  return Totals;
}

std::vector<CacheConfig> allocsim::stackCacheSweep() {
  std::vector<CacheConfig> Configs;
  uint32_t Assoc = 1;
  for (uint32_t Kb = 16; Kb <= 256; Kb *= 2, Assoc *= 2)
    Configs.push_back(CacheConfig{Kb * 1024, 32, Assoc});
  return Configs;
}
