//===- conform/TrendCheck.cpp - Declarative trend assertions --------------===//

#include "conform/TrendCheck.h"

#include <cstdio>

using namespace allocsim;

const char *allocsim::conformMetricName(ConformMetric Metric) {
  switch (Metric) {
  case ConformMetric::MissRate:
    return "miss_rate";
  case ConformMetric::CacheMisses:
    return "cache_misses";
  case ConformMetric::EstSeconds:
    return "est_seconds";
  case ConformMetric::AllocFraction:
    return "alloc_fraction";
  case ConformMetric::SearchPerOp:
    return "search_per_op";
  case ConformMetric::HeapKb:
    return "heap_kb";
  case ConformMetric::TagRefs:
    return "tag_refs";
  }
  return "unknown";
}

bool allocsim::conformMetricUsesCache(ConformMetric Metric) {
  switch (Metric) {
  case ConformMetric::MissRate:
  case ConformMetric::CacheMisses:
  case ConformMetric::EstSeconds:
    return true;
  case ConformMetric::AllocFraction:
  case ConformMetric::SearchPerOp:
  case ConformMetric::HeapKb:
  case ConformMetric::TagRefs:
    return false;
  }
  return false;
}

double allocsim::extractConformMetric(const RunResult &Result,
                                      ConformMetric Metric, size_t CacheIdx) {
  switch (Metric) {
  case ConformMetric::MissRate:
    return Result.Caches.at(CacheIdx).Stats.missRate();
  case ConformMetric::CacheMisses:
    return static_cast<double>(Result.Caches.at(CacheIdx).Stats.Misses);
  case ConformMetric::EstSeconds:
    return Result.Caches.at(CacheIdx).Time.seconds();
  case ConformMetric::AllocFraction:
    return Result.allocInstrFraction();
  case ConformMetric::SearchPerOp:
    return Result.Alloc.MallocCalls == 0
               ? 0.0
               : static_cast<double>(Result.BlocksSearched) /
                     static_cast<double>(Result.Alloc.MallocCalls);
  case ConformMetric::HeapKb:
    return static_cast<double>(Result.HeapBytes) / 1024.0;
  case ConformMetric::TagRefs:
    return static_cast<double>(Result.TagRefs);
  }
  return 0;
}

std::string MetricRef::key() const {
  return Matrix + "/" + workloadName(Workload) + "/" +
         allocatorKindName(Allocator) + "/p" +
         std::to_string(PenaltyCycles) + "/c" + std::to_string(CacheIdx) +
         "/" + conformMetricName(Metric);
}

namespace {

/// Finds the coordinate indices a MetricRef names within one spec; returns
/// false when any coordinate value is absent from the corresponding axis.
bool findCell(const MatrixSpec &Spec, const MetricRef &Ref, size_t &W,
              size_t &A, size_t &P) {
  bool FoundW = false, FoundA = false, FoundP = false;
  for (size_t I = 0; I != Spec.Workloads.size(); ++I)
    if (Spec.Workloads[I] == Ref.Workload) {
      W = I;
      FoundW = true;
      break;
    }
  for (size_t I = 0; I != Spec.Allocators.size(); ++I)
    if (Spec.Allocators[I] == Ref.Allocator) {
      A = I;
      FoundA = true;
      break;
    }
  for (size_t I = 0; I != Spec.PenaltiesCycles.size(); ++I)
    if (Spec.PenaltiesCycles[I] == Ref.PenaltyCycles) {
      P = I;
      FoundP = true;
      break;
    }
  return FoundW && FoundA && FoundP;
}

std::string formatMetric(double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.6g", Value);
  return Buffer;
}

} // namespace

bool allocsim::resolveMetric(const StoreMap &Stores, const MetricRef &Ref,
                             double &Value, DiagEngine &Diags) {
  auto StoreIt = Stores.find(Ref.Matrix);
  if (StoreIt == Stores.end() || StoreIt->second == nullptr) {
    Diags.error("conform-missing-cell", {},
                "no matrix named '" + Ref.Matrix + "' for metric " +
                    Ref.key());
    return false;
  }
  const ResultStore &Store = *StoreIt->second;
  size_t W = 0, A = 0, P = 0;
  if (!findCell(Store.spec(), Ref, W, A, P)) {
    Diags.error("conform-missing-cell", {},
                "matrix '" + Ref.Matrix + "' has no cell for metric " +
                    Ref.key());
    return false;
  }
  const CellOutcome &Cell = Store.at(W, A, P);
  if (!Cell.Ok) {
    Diags.error("conform-missing-cell", {},
                "cell for metric " + Ref.key() + " failed: " + Cell.Error);
    return false;
  }
  if (conformMetricUsesCache(Ref.Metric) &&
      Ref.CacheIdx >= Cell.Result.Caches.size()) {
    Diags.error("conform-missing-cell", {},
                "cache index out of range for metric " + Ref.key());
    return false;
  }
  Value = extractConformMetric(Cell.Result, Ref.Metric, Ref.CacheIdx);
  return true;
}

size_t allocsim::checkOrdering(const StoreMap &Stores,
                               const OrderingAssert &Assert,
                               DiagEngine &Diags) {
  size_t Checked = 0;
  for (size_t I = 0; I + 1 < Assert.Ascending.size(); ++I) {
    MetricRef Lo = Assert.Base, Hi = Assert.Base;
    Lo.Allocator = Assert.Ascending[I];
    Hi.Allocator = Assert.Ascending[I + 1];
    double LoValue = 0, HiValue = 0;
    if (!resolveMetric(Stores, Lo, LoValue, Diags) ||
        !resolveMetric(Stores, Hi, HiValue, Diags))
      continue;
    ++Checked;
    if (!(LoValue < HiValue))
      Diags.error("conform-ordering", {},
                  "ordering inverted: " + Lo.key() + " = " +
                      formatMetric(LoValue) + " should be < " + Hi.key() +
                      " = " + formatMetric(HiValue) + " (" + Assert.Note +
                      ")");
  }
  return Checked;
}

size_t allocsim::checkMonotone(const StoreMap &Stores,
                               const MonotoneAssert &Assert,
                               DiagEngine &Diags) {
  auto StoreIt = Stores.find(Assert.Base.Matrix);
  if (StoreIt == Stores.end() || StoreIt->second == nullptr) {
    Diags.error("conform-missing-cell", {},
                "no matrix named '" + Assert.Base.Matrix +
                    "' for monotone check " + Assert.Base.key());
    return 0;
  }
  const MatrixSpec &Spec = StoreIt->second->spec();

  // Materialize the series of refs along the chosen axis, in spec order.
  std::vector<MetricRef> Series;
  if (Assert.Along == MonotoneAssert::Axis::CacheSize) {
    for (size_t C = 0; C != Spec.Caches.size(); ++C) {
      MetricRef Ref = Assert.Base;
      Ref.CacheIdx = C;
      Series.push_back(Ref);
    }
  } else {
    for (uint32_t Penalty : Spec.PenaltiesCycles) {
      MetricRef Ref = Assert.Base;
      Ref.PenaltyCycles = Penalty;
      Series.push_back(Ref);
    }
  }

  size_t Checked = 0;
  double Prev = 0;
  bool HavePrev = false;
  std::string PrevKey;
  for (const MetricRef &Ref : Series) {
    double Value = 0;
    if (!resolveMetric(Stores, Ref, Value, Diags)) {
      HavePrev = false;
      continue;
    }
    if (HavePrev) {
      ++Checked;
      bool Ok = Assert.Direction == MonotoneAssert::Dir::NonIncreasing
                    ? Value <= Prev
                    : Value >= Prev;
      if (!Ok)
        Diags.error(
            "conform-monotone", {},
            std::string("monotone trend broken (") +
                (Assert.Direction == MonotoneAssert::Dir::NonIncreasing
                     ? "expected non-increasing"
                     : "expected non-decreasing") +
                " along " +
                (Assert.Along == MonotoneAssert::Axis::CacheSize
                     ? "cache size"
                     : "penalty") +
                "): " + PrevKey + " = " + formatMetric(Prev) + " then " +
                Ref.key() + " = " + formatMetric(Value) + " (" + Assert.Note +
                ")");
    }
    Prev = Value;
    PrevKey = Ref.key();
    HavePrev = true;
  }
  return Checked;
}

const char *allocsim::pairCmpName(PairAssert::Cmp Relation) {
  switch (Relation) {
  case PairAssert::Cmp::LT:
    return "<";
  case PairAssert::Cmp::LE:
    return "<=";
  case PairAssert::Cmp::GT:
    return ">";
  case PairAssert::Cmp::GE:
    return ">=";
  }
  return "?";
}

size_t allocsim::checkPair(const StoreMap &Stores, const PairAssert &Assert,
                           DiagEngine &Diags) {
  double Left = 0, Right = 0;
  if (!resolveMetric(Stores, Assert.Left, Left, Diags) ||
      !resolveMetric(Stores, Assert.Right, Right, Diags))
    return 0;
  bool Ok = false;
  switch (Assert.Relation) {
  case PairAssert::Cmp::LT:
    Ok = Left < Right;
    break;
  case PairAssert::Cmp::LE:
    Ok = Left <= Right;
    break;
  case PairAssert::Cmp::GT:
    Ok = Left > Right;
    break;
  case PairAssert::Cmp::GE:
    Ok = Left >= Right;
    break;
  }
  if (!Ok)
    Diags.error("conform-pair", {},
                "comparison failed: " + Assert.Left.key() + " = " +
                    formatMetric(Left) + " should be " +
                    pairCmpName(Assert.Relation) + " " + Assert.Right.key() +
                    " = " + formatMetric(Right) + " (" + Assert.Note + ")");
  return 1;
}
