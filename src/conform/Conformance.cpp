//===- conform/Conformance.cpp - Paper-replication conformance ------------===//

#include "conform/Conformance.h"

#include "conform/Metamorphic.h"
#include "conform/TrendCheck.h"
#include "core/MatrixRunner.h"

#include <algorithm>
#include <map>
#include <ostream>

using namespace allocsim;

namespace {

/// Everything one suite accumulates: the stores it ran (owned here, exposed
/// to TrendCheck by name), every measured metric keyed by MetricRef::key(),
/// and check counters.
struct SuiteRun {
  std::map<std::string, ResultStore> Stores;
  std::map<std::string, double> Measured;
  size_t Cells = 0;
  size_t Checks = 0;

  StoreMap storeMap() const {
    StoreMap Map;
    for (const auto &[Name, Store] : Stores)
      Map[Name] = &Store;
    return Map;
  }
};

/// Runs one matrix under the run's engine configuration and registers it.
void runSuiteMatrix(SuiteRun &Run, const std::string &Name, MatrixSpec Spec,
                    const ConformOptions &Options, DiagEngine &Diags) {
  Spec.Base.Engine.Scale = Options.Scale;
  Spec.Base.Engine.Seed = Options.Seed;
  MatrixOptions RunOptions;
  RunOptions.Jobs = Options.Jobs;
  ResultStore Store = runMatrix(Spec, RunOptions);
  Run.Cells += Store.size();
  if (Store.failedCount() != 0)
    Diags.error("conform-missing-cell", {},
                "matrix '" + Name + "' had " +
                    std::to_string(Store.failedCount()) + " failed cells");
  Run.Stores.emplace(Name, std::move(Store));
}

/// Records every metric of every ok cell into the measured map — the value
/// set the expectation files pin. Cache-indexed metrics are recorded per
/// cache; scalar metrics once per cell.
void harvestMetrics(SuiteRun &Run, const std::string &Name) {
  const ResultStore &Store = Run.Stores.at(Name);
  const MatrixSpec &Spec = Store.spec();
  for (size_t I = 0; I != Store.size(); ++I) {
    const CellOutcome &Cell = Store.cell(I);
    if (!Cell.Ok)
      continue;
    MetricRef Ref;
    Ref.Matrix = Name;
    Ref.Workload = Cell.Workload;
    Ref.Allocator = Cell.Allocator;
    Ref.PenaltyCycles = Cell.PenaltyCycles;
    for (ConformMetric Metric :
         {ConformMetric::MissRate, ConformMetric::EstSeconds,
          ConformMetric::AllocFraction, ConformMetric::SearchPerOp,
          ConformMetric::HeapKb, ConformMetric::TagRefs}) {
      Ref.Metric = Metric;
      if (conformMetricUsesCache(Metric)) {
        for (size_t C = 0; C != Spec.Caches.size(); ++C) {
          Ref.CacheIdx = C;
          Run.Measured[Ref.key()] =
              extractConformMetric(Cell.Result, Metric, C);
        }
      } else {
        Ref.CacheIdx = 0;
        Run.Measured[Ref.key()] = extractConformMetric(Cell.Result, Metric, 0);
      }
    }
  }
}

/// Convenience builder for a cache-indexed pair assertion within one matrix
/// and workload, comparing two allocators on one metric.
PairAssert allocPair(const std::string &Note, const std::string &Matrix,
                     WorkloadId Workload, AllocatorKind Left,
                     AllocatorKind Right, ConformMetric Metric,
                     size_t CacheIdx, PairAssert::Cmp Relation,
                     uint32_t Penalty = 25) {
  PairAssert Assert;
  Assert.Note = Note;
  Assert.Left = {Matrix, Workload, Left, Penalty, Metric, CacheIdx};
  Assert.Right = {Matrix, Workload, Right, Penalty, Metric, CacheIdx};
  Assert.Relation = Relation;
  return Assert;
}

/// missrate: Figs. 6-8 (miss rate vs cache size), Fig. 1 (instruction
/// fractions) and §3.3 (search lengths) on the GhostScript input-set pair.
void runMissRateSuite(SuiteRun &Run, const ConformOptions &Options,
                      DiagEngine &Diags) {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::GsSmall, WorkloadId::GsMedium};
  Spec.Allocators = {AllocatorKind::FirstFit,  AllocatorKind::QuickFit,
                     AllocatorKind::GnuGxx,    AllocatorKind::Bsd,
                     AllocatorKind::GnuLocal,  AllocatorKind::Custom,
                     AllocatorKind::BitmapFit, AllocatorKind::SpaceFit};
  Spec.Caches = {{16 * 1024, 32, 1},
                 {32 * 1024, 32, 1},
                 {64 * 1024, 32, 1},
                 {128 * 1024, 32, 1},
                 {256 * 1024, 32, 1}};
  runSuiteMatrix(Run, "missrate", std::move(Spec), Options, Diags);
  harvestMetrics(Run, "missrate");

  StoreMap Stores = Run.storeMap();
  const ResultStore &Store = Run.Stores.at("missrate");

  // Figs. 6-8: miss rate falls (weakly) as the cache grows, for every
  // allocator and workload.
  for (WorkloadId Workload : Store.spec().Workloads) {
    for (AllocatorKind Allocator : Store.spec().Allocators) {
      MonotoneAssert Monotone;
      Monotone.Note = "Figs. 6-8: miss rate falls as the cache grows";
      Monotone.Base = {"missrate", Workload, Allocator, 25,
                       ConformMetric::MissRate, 0};
      Monotone.Along = MonotoneAssert::Axis::CacheSize;
      Monotone.Direction = MonotoneAssert::Dir::NonIncreasing;
      Run.Checks += checkMonotone(Stores, Monotone, Diags);
    }

    // Figs. 6-8: FIRSTFIT's scattered freelist gives it the worst miss rate
    // at the small-to-medium cache sizes (the orderings compress into the
    // noise at 128K+, so only the first three sizes are asserted).
    for (size_t CacheIdx = 0; CacheIdx != 3; ++CacheIdx)
      for (AllocatorKind Other :
           {AllocatorKind::QuickFit, AllocatorKind::GnuGxx,
            AllocatorKind::Bsd, AllocatorKind::GnuLocal,
            AllocatorKind::Custom})
        Run.Checks += checkPair(
            Stores,
            allocPair("Figs. 6-8: FIRSTFIT has the worst miss rate",
                      "missrate", Workload, Other, AllocatorKind::FirstFit,
                      ConformMetric::MissRate, CacheIdx, PairAssert::Cmp::LT),
            Diags);

    // §4.1: GNU Local's page-chunk segregation is the locality winner at
    // the paper's 16K cache.
    for (AllocatorKind Other :
         {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
          AllocatorKind::GnuGxx, AllocatorKind::Bsd})
      Run.Checks += checkPair(
          Stores,
          allocPair("§4.1: GNU Local has the best 16K miss rate", "missrate",
                    Workload, AllocatorKind::GnuLocal, Other,
                    ConformMetric::MissRate, 0, PairAssert::Cmp::LT),
          Diags);

    // Fig. 1: BSD spends the smallest instruction fraction in malloc/free
    // among the paper five, GNU Local the largest; the synthesized Custom
    // allocator undercuts them all (§4.4).
    for (AllocatorKind Other :
         {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
          AllocatorKind::GnuGxx, AllocatorKind::GnuLocal})
      Run.Checks += checkPair(
          Stores,
          allocPair("Fig. 1: BSD has the smallest allocation fraction",
                    "missrate", Workload, AllocatorKind::Bsd, Other,
                    ConformMetric::AllocFraction, 0, PairAssert::Cmp::LT),
          Diags);
    for (AllocatorKind Other :
         {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
          AllocatorKind::GnuGxx, AllocatorKind::Bsd})
      Run.Checks += checkPair(
          Stores,
          allocPair("Fig. 1: GNU Local has the largest allocation fraction",
                    "missrate", Workload, Other, AllocatorKind::GnuLocal,
                    ConformMetric::AllocFraction, 0, PairAssert::Cmp::LT),
          Diags);
    for (AllocatorKind Other :
         {AllocatorKind::FirstFit, AllocatorKind::QuickFit,
          AllocatorKind::GnuGxx, AllocatorKind::Bsd,
          AllocatorKind::GnuLocal})
      Run.Checks += checkPair(
          Stores,
          allocPair("§4.4: CustomAlloc beats every paper allocator on "
                    "allocation overhead",
                    "missrate", Workload, AllocatorKind::Custom, Other,
                    ConformMetric::AllocFraction, 0, PairAssert::Cmp::LT),
          Diags);

    // §3.3: sequential first fit examines many blocks per request; the
    // segregated allocators examine none.
    for (AllocatorKind Other :
         {AllocatorKind::QuickFit, AllocatorKind::GnuGxx,
          AllocatorKind::Bsd, AllocatorKind::GnuLocal,
          AllocatorKind::Custom})
      Run.Checks += checkPair(
          Stores,
          allocPair("§3.3: FIRSTFIT searches the most blocks per malloc",
                    "missrate", Workload, Other, AllocatorKind::FirstFit,
                    ConformMetric::SearchPerOp, 0, PairAssert::Cmp::LT),
          Diags);

    // PAPERS.md moderns: BitmapFit packs same-class objects into aligned
    // slabs with one metadata line each, so it beats both sequential fits
    // on locality at the small-to-medium cache sizes; its word-at-a-time
    // bitmap scan touches only slab header lines, while SpaceFit pays best
    // fit's ordered-list walks in full, in search traffic and in
    // instruction fraction.
    for (size_t CacheIdx = 0; CacheIdx != 3; ++CacheIdx)
      for (AllocatorKind Sequential :
           {AllocatorKind::FirstFit, AllocatorKind::SpaceFit})
        Run.Checks += checkPair(
            Stores,
            allocPair("moderns: BitmapFit beats the sequential fits on "
                      "miss rate",
                      "missrate", Workload, AllocatorKind::BitmapFit,
                      Sequential, ConformMetric::MissRate, CacheIdx,
                      PairAssert::Cmp::LT),
            Diags);
    Run.Checks += checkPair(
        Stores,
        allocPair("moderns: BitmapFit's header-line scan searches fewer "
                  "blocks than SpaceFit's ordered walk",
                  "missrate", Workload, AllocatorKind::BitmapFit,
                  AllocatorKind::SpaceFit, ConformMetric::SearchPerOp, 0,
                  PairAssert::Cmp::LT),
        Diags);
    Run.Checks += checkPair(
        Stores,
        allocPair("moderns: SpaceFit's sorted-list maintenance dominates "
                  "its allocation fraction",
                  "missrate", Workload, AllocatorKind::BitmapFit,
                  AllocatorKind::SpaceFit, ConformMetric::AllocFraction, 0,
                  PairAssert::Cmp::LT),
        Diags);
  }
}

/// exectime: Tables 4-5 / Figs. 4-5 (estimated time) and §4.3 (penalty
/// sensitivity) on the espresso/make pair.
void runExecTimeSuite(SuiteRun &Run, const ConformOptions &Options,
                      DiagEngine &Diags) {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  Spec.Allocators.assign(std::begin(PaperAllocators),
                         std::end(PaperAllocators));
  Spec.Allocators.push_back(AllocatorKind::BitmapFit);
  Spec.Allocators.push_back(AllocatorKind::SpaceFit);
  Spec.PenaltiesCycles = {25, 100};
  Spec.Caches = {{16 * 1024, 32, 1}, {64 * 1024, 32, 1}};
  runSuiteMatrix(Run, "exectime", std::move(Spec), Options, Diags);
  harvestMetrics(Run, "exectime");

  StoreMap Stores = Run.storeMap();
  const ResultStore &Store = Run.Stores.at("exectime");

  for (WorkloadId Workload : Store.spec().Workloads) {
    for (AllocatorKind Allocator : Store.spec().Allocators) {
      // §4.3: a larger miss penalty can only slow the estimate down.
      for (size_t CacheIdx = 0; CacheIdx != 2; ++CacheIdx) {
        MonotoneAssert Penalty;
        Penalty.Note = "§4.3: estimated time grows with the miss penalty";
        Penalty.Base = {"exectime", Workload, Allocator, 25,
                        ConformMetric::EstSeconds, CacheIdx};
        Penalty.Along = MonotoneAssert::Axis::Penalty;
        Penalty.Direction = MonotoneAssert::Dir::NonDecreasing;
        Run.Checks += checkMonotone(Stores, Penalty, Diags);
      }
      // Figs. 6-8 shape again, on this suite's two sizes.
      MonotoneAssert Sizes;
      Sizes.Note = "Figs. 6-8: miss rate falls as the cache grows";
      Sizes.Base = {"exectime", Workload, Allocator, 25,
                    ConformMetric::MissRate, 0};
      Sizes.Along = MonotoneAssert::Axis::CacheSize;
      Sizes.Direction = MonotoneAssert::Dir::NonIncreasing;
      Run.Checks += checkMonotone(Stores, Sizes, Diags);
    }

    // Tables 4-5: BSD's low CPU overhead makes it the estimated-time
    // winner against the search-heavy and CPU-heavy extremes. (The full
    // five-way ordering is input-dependent in the paper too, so only the
    // robust comparisons gate.)
    for (size_t CacheIdx = 0; CacheIdx != 2; ++CacheIdx) {
      for (AllocatorKind Slower :
           {AllocatorKind::FirstFit, AllocatorKind::GnuLocal,
            AllocatorKind::SpaceFit})
        Run.Checks += checkPair(
            Stores,
            allocPair("Tables 4-5: BSD is faster than the overhead-heavy "
                      "allocators",
                      "exectime", Workload, AllocatorKind::Bsd, Slower,
                      ConformMetric::EstSeconds, CacheIdx,
                      PairAssert::Cmp::LT),
            Diags);
      // PAPERS.md moderns: the bitmap scan's near-constant paths beat the
      // sorted freelist's walks end to end.
      Run.Checks += checkPair(
          Stores,
          allocPair("moderns: BitmapFit is faster than SpaceFit",
                    "exectime", Workload, AllocatorKind::BitmapFit,
                    AllocatorKind::SpaceFit, ConformMetric::EstSeconds,
                    CacheIdx, PairAssert::Cmp::LT),
          Diags);
    }

    // §4.2: GNU Local's locality advantage is cancelled by CPU overhead —
    // best 16K miss rate (asserted in missrate) yet not the best time.
    Run.Checks += checkPair(
        Stores,
        allocPair("§4.2: GNU Local's CPU overhead cancels its locality win",
                  "exectime", Workload, AllocatorKind::Bsd,
                  AllocatorKind::GnuLocal, ConformMetric::EstSeconds, 0,
                  PairAssert::Cmp::LT),
        Diags);
  }
}

/// tags: Table 6 — GNU Local with emulated boundary tags against the plain
/// run: tags add reference traffic and cost time, but only a little.
void runTagsSuite(SuiteRun &Run, const ConformOptions &Options,
                  DiagEngine &Diags) {
  MatrixSpec Plain;
  Plain.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  Plain.Allocators = {AllocatorKind::GnuLocal};
  Plain.Caches = {{16 * 1024, 32, 1}};
  MatrixSpec Tagged = Plain;
  Tagged.Base.EmulateBoundaryTags = true;
  runSuiteMatrix(Run, "tags-plain", std::move(Plain), Options, Diags);
  runSuiteMatrix(Run, "tags-emulated", std::move(Tagged), Options, Diags);
  harvestMetrics(Run, "tags-plain");
  harvestMetrics(Run, "tags-emulated");

  StoreMap Stores = Run.storeMap();
  for (WorkloadId Workload : {WorkloadId::Espresso, WorkloadId::Make}) {
    PairAssert TagTraffic;
    TagTraffic.Note = "Table 6: boundary-tag emulation adds tag references";
    TagTraffic.Left = {"tags-emulated", Workload, AllocatorKind::GnuLocal,
                       25, ConformMetric::TagRefs, 0};
    TagTraffic.Right = {"tags-plain", Workload, AllocatorKind::GnuLocal, 25,
                        ConformMetric::TagRefs, 0};
    TagTraffic.Relation = PairAssert::Cmp::GT;
    Run.Checks += checkPair(Stores, TagTraffic, Diags);

    PairAssert CostsTime;
    CostsTime.Note = "Table 6: tag traffic is not free";
    CostsTime.Left = {"tags-emulated", Workload, AllocatorKind::GnuLocal, 25,
                      ConformMetric::EstSeconds, 0};
    CostsTime.Right = {"tags-plain", Workload, AllocatorKind::GnuLocal, 25,
                       ConformMetric::EstSeconds, 0};
    CostsTime.Relation = PairAssert::Cmp::GE;
    Run.Checks += checkPair(Stores, CostsTime, Diags);
  }
}

} // namespace

std::vector<std::string> allocsim::conformSuiteNames() {
  return {"missrate", "exectime", "tags", "metamorphic"};
}

size_t ConformReport::totalChecks() const {
  size_t Total = 0;
  for (const ConformSuiteResult &Suite : Suites)
    Total += Suite.ChecksRun + Suite.BandChecks;
  return Total;
}

ConformReport allocsim::runConformance(const ConformOptions &Options) {
  ConformReport Report;
  Report.Scale = Options.Scale;
  Report.Seed = Options.Seed;

  std::vector<std::string> Known = conformSuiteNames();
  std::vector<std::string> Selected =
      Options.Suites.empty() ? Known : Options.Suites;

  for (const std::string &Name : Selected) {
    if (std::find(Known.begin(), Known.end(), Name) == Known.end()) {
      Report.Diags.error("conform-unknown-suite", {},
                         "unknown conformance suite '" + Name +
                             "' (known: missrate, exectime, tags, "
                             "metamorphic)");
      continue;
    }

    ConformSuiteResult Result;
    Result.Name = Name;
    size_t ErrorsBefore = Report.Diags.errorCount();
    size_t DiagsBefore = Report.Diags.diags().size();

    SuiteRun Run;
    if (Name == "missrate") {
      runMissRateSuite(Run, Options, Report.Diags);
    } else if (Name == "exectime") {
      runExecTimeSuite(Run, Options, Report.Diags);
    } else if (Name == "tags") {
      runTagsSuite(Run, Options, Report.Diags);
    } else { // metamorphic
      MetamorphicOptions Meta;
      Meta.Scale = Options.Scale;
      Meta.Seed = Options.Seed;
      Meta.Jobs = Options.Jobs;
      Run.Checks += runMetamorphicSuite(Meta, Report.Diags);
    }
    Result.CellsRun = Run.Cells;
    Result.ChecksRun = Run.Checks;

    // Value pinning: the metamorphic suite is self-checking; the matrix
    // suites compare (or re-record) their full measured-metric maps.
    if (!Run.Measured.empty() && !Options.ExpectationsDir.empty()) {
      std::string Path = Options.ExpectationsDir + "/" + Name + ".json";
      std::string Error;
      if (Options.UpdateExpectations) {
        ExpectationFile File;
        File.Suite = Name;
        File.Scale = Options.Scale;
        File.Seed = Options.Seed;
        File.Metrics = Run.Measured;
        if (!writeExpectationFile(Path, File, Error))
          Report.Diags.error("conform-expectation-file", {}, Error);
      } else {
        ExpectationFile File;
        if (!readExpectationFile(Path, File, Error))
          Report.Diags.error("conform-expectation-file", {}, Error);
        else
          Result.BandChecks = checkExpectations(
              File, Run.Measured, Options.Scale, Options.Seed, Report.Diags);
      }
    }

    Result.Errors = Report.Diags.errorCount() - ErrorsBefore;
    Result.Warnings = (Report.Diags.diags().size() - DiagsBefore) -
                      Result.Errors;
    Report.Suites.push_back(std::move(Result));
  }
  return Report;
}

void allocsim::printConformReport(std::ostream &OS,
                                  const ConformReport &Report) {
  for (const ConformSuiteResult &Suite : Report.Suites)
    OS << "conform: suite " << Suite.Name << ": " << Suite.CellsRun
       << " cells, " << Suite.ChecksRun << " trend checks, "
       << Suite.BandChecks << " band checks, " << Suite.Errors << " errors, "
       << Suite.Warnings << " warnings\n";
  Report.Diags.print(OS, "--conform");
  OS << "conform: " << (Report.passed() ? "PASS" : "FAIL") << " ("
     << Report.totalChecks() << " checks, " << Report.Diags.errorCount()
     << " errors, " << Report.Diags.warningCount() << " warnings)\n";
}

void allocsim::writeConformReportJson(std::ostream &OS,
                                      const ConformReport &Report) {
  OS << "{\n";
  OS << "  \"schema\": \"" << ConformReportSchema << "\",\n";
  OS << "  \"scale\": " << Report.Scale << ",\n";
  OS << "  \"seed\": " << Report.Seed << ",\n";
  OS << "  \"suites\": [";
  for (size_t I = 0; I != Report.Suites.size(); ++I) {
    const ConformSuiteResult &Suite = Report.Suites[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "    {\"name\": \"" << jsonEscaped(Suite.Name)
       << "\", \"cells\": " << Suite.CellsRun
       << ", \"trend_checks\": " << Suite.ChecksRun
       << ", \"band_checks\": " << Suite.BandChecks
       << ", \"errors\": " << Suite.Errors
       << ", \"warnings\": " << Suite.Warnings << "}";
  }
  OS << (Report.Suites.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"diagnostics\": ";
  Report.Diags.writeJson(OS, "  ");
  OS << ",\n";
  OS << "  \"errors\": " << Report.Diags.errorCount() << ",\n";
  OS << "  \"warnings\": " << Report.Diags.warningCount() << ",\n";
  OS << "  \"passed\": " << (Report.passed() ? "true" : "false") << "\n";
  OS << "}\n";
}
