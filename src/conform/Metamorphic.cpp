//===- conform/Metamorphic.cpp - Metamorphic invariant suite --------------===//

#include "conform/Metamorphic.h"

#include "core/MatrixRunner.h"
#include "trace/AllocEvents.h"

#include <algorithm>
#include <sstream>

using namespace allocsim;

namespace {

/// All allocators the metamorphic properties quantify over: the five paper
/// allocators plus the PAPERS.md modern extensions. The invariants are
/// policy-independent, so every backend must satisfy them.
std::vector<AllocatorKind> metamorphicAllocators() {
  std::vector<AllocatorKind> Kinds(std::begin(PaperAllocators),
                                   std::end(PaperAllocators));
  Kinds.push_back(AllocatorKind::BitmapFit);
  Kinds.push_back(AllocatorKind::SpaceFit);
  return Kinds;
}

/// The shared base matrix every matrix-level property transforms: two
/// workloads (one heavy churner, one light), every allocator, two cache
/// geometries, telemetry on so merged-snapshot equality is exercised.
MatrixSpec baseSpec(const MetamorphicOptions &Options) {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  Spec.Allocators = metamorphicAllocators();
  Spec.Caches = {{16 * 1024, 32, 1}, {64 * 1024, 32, 1}};
  Spec.Base.Engine.Scale = Options.Scale;
  Spec.Base.Engine.Seed = Options.Seed;
  Spec.Base.Telemetry = TelemetryLevel::Summary;
  return Spec;
}

std::string goldenOf(const ResultStore &Store) {
  std::ostringstream OS;
  Store.writeGoldenJson(OS);
  return OS.str();
}

/// Exact-integer fingerprint of one cell outcome; two outcomes with equal
/// fingerprints and equal telemetry snapshots measured the same run.
std::string cellFingerprint(const CellOutcome &Cell) {
  std::ostringstream OS;
  OS << (Cell.Ok ? "ok" : Cell.Error) << " seed=" << Cell.Seed
     << " app=" << Cell.Result.AppInstructions
     << " alloc=" << Cell.Result.AllocInstructions
     << " refs=" << Cell.Result.TotalRefs << " tag=" << Cell.Result.TagRefs
     << " heap=" << Cell.Result.HeapBytes
     << " searched=" << Cell.Result.BlocksSearched
     << " mallocs=" << Cell.Result.Alloc.MallocCalls;
  for (const CacheResult &Cache : Cell.Result.Caches)
    OS << " c" << Cache.Config.SizeBytes << "/" << Cache.Config.Assoc << "="
       << Cache.Stats.Misses << "/" << Cache.Stats.Accesses;
  return OS.str();
}

std::string cellName(const ResultStore &Store, size_t W, size_t A, size_t P) {
  const MatrixSpec &Spec = Store.spec();
  return std::string(workloadName(Spec.Workloads[W])) + "/" +
         allocatorKindName(Spec.Allocators[A]) + "/p" +
         std::to_string(Spec.PenaltiesCycles[P]);
}

/// conform-meta-jobs: serial and parallel runs of the same spec are
/// bit-identical, both in the golden serialization and in the merged
/// telemetry fold.
size_t checkJobsInvariance(const MatrixSpec &Spec,
                           const MetamorphicOptions &Options,
                           DiagEngine &Diags) {
  MatrixOptions Serial;
  Serial.Jobs = 1;
  MatrixOptions Parallel;
  Parallel.Jobs = Options.Jobs > 1 ? Options.Jobs : 8;

  ResultStore SerialStore = runMatrix(Spec, Serial);
  ResultStore ParallelStore = runMatrix(Spec, Parallel);

  if (goldenOf(SerialStore) != goldenOf(ParallelStore))
    Diags.error("conform-meta-jobs", {},
                "golden serialization differs between --jobs=1 and --jobs=" +
                    std::to_string(Parallel.Jobs));
  if (!(SerialStore.mergedTelemetry() == ParallelStore.mergedTelemetry()))
    Diags.error("conform-meta-jobs", {},
                "merged telemetry differs between --jobs=1 and --jobs=" +
                    std::to_string(Parallel.Jobs));
  return 2;
}

/// conform-meta-split: an allocator-axis split reassembles to the unsplit
/// matrix, cell for cell, and the two halves' telemetry folds to the whole.
size_t checkSplitMerge(const MatrixSpec &Spec, const ResultStore &Whole,
                       const MatrixOptions &RunOptions, DiagEngine &Diags) {
  size_t Half = Spec.Allocators.size() / 2;
  MatrixSpec Lo = Spec, Hi = Spec;
  Lo.Allocators.assign(Spec.Allocators.begin(),
                       Spec.Allocators.begin() + Half);
  Hi.Allocators.assign(Spec.Allocators.begin() + Half,
                       Spec.Allocators.end());

  ResultStore LoStore = runMatrix(Lo, RunOptions);
  ResultStore HiStore = runMatrix(Hi, RunOptions);

  size_t Checked = 0;
  for (size_t W = 0; W != Spec.Workloads.size(); ++W) {
    for (size_t A = 0; A != Spec.Allocators.size(); ++A) {
      for (size_t P = 0; P != Spec.PenaltiesCycles.size(); ++P) {
        const CellOutcome &Expect = Whole.at(W, A, P);
        const CellOutcome &Got = A < Half ? LoStore.at(W, A, P)
                                          : HiStore.at(W, A - Half, P);
        ++Checked;
        if (cellFingerprint(Expect) != cellFingerprint(Got) ||
            !(Expect.Result.Telemetry == Got.Result.Telemetry))
          Diags.error("conform-meta-split", {},
                      "allocator-axis split changed cell " +
                          cellName(Whole, W, A, P) + ": [" +
                          cellFingerprint(Expect) + "] became [" +
                          cellFingerprint(Got) + "]");
      }
    }
  }

  TelemetrySnapshot Folded = LoStore.mergedTelemetry();
  Folded.merge(HiStore.mergedTelemetry());
  ++Checked;
  if (!(Folded == Whole.mergedTelemetry()))
    Diags.error("conform-meta-split", {},
                "telemetry of the two halves does not fold to the unsplit "
                "matrix's merged snapshot");
  return Checked;
}

/// conform-meta-permute: reversing the allocator axis permutes cells and
/// changes nothing else.
size_t checkPermutation(const MatrixSpec &Spec, const ResultStore &Whole,
                        const MatrixOptions &RunOptions, DiagEngine &Diags) {
  MatrixSpec Reversed = Spec;
  std::reverse(Reversed.Allocators.begin(), Reversed.Allocators.end());
  ResultStore ReversedStore = runMatrix(Reversed, RunOptions);

  size_t Checked = 0;
  size_t NumAlloc = Spec.Allocators.size();
  for (size_t W = 0; W != Spec.Workloads.size(); ++W) {
    for (size_t A = 0; A != NumAlloc; ++A) {
      for (size_t P = 0; P != Spec.PenaltiesCycles.size(); ++P) {
        const CellOutcome &Expect = Whole.at(W, A, P);
        const CellOutcome &Got = ReversedStore.at(W, NumAlloc - 1 - A, P);
        ++Checked;
        if (cellFingerprint(Expect) != cellFingerprint(Got))
          Diags.error("conform-meta-permute", {},
                      "allocator-axis permutation changed cell " +
                          cellName(Whole, W, A, P) + ": [" +
                          cellFingerprint(Expect) + "] became [" +
                          cellFingerprint(Got) + "]");
      }
    }
  }
  return Checked;
}

/// conform-meta-assoc: with the set count held fixed, doubling
/// associativity (so capacity doubles too) can never increase LRU misses —
/// the stack inclusion property — for the given \p Caches chain, ordered
/// narrowest first.
size_t checkAssocInclusionFamily(const std::vector<CacheConfig> &Caches,
                                 const MetamorphicOptions &Options,
                                 const MatrixOptions &RunOptions,
                                 DiagEngine &Diags) {
  MatrixSpec Spec;
  Spec.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  Spec.Allocators = metamorphicAllocators();
  Spec.Caches = Caches;
  Spec.Base.Engine.Scale = Options.Scale;
  Spec.Base.Engine.Seed = Options.Seed;

  ResultStore Store = runMatrix(Spec, RunOptions);
  size_t Checked = 0;
  for (size_t W = 0; W != Spec.Workloads.size(); ++W) {
    for (size_t A = 0; A != Spec.Allocators.size(); ++A) {
      const CellOutcome &Cell = Store.at(W, A, 0);
      if (!Cell.Ok) {
        Diags.error("conform-meta-assoc", {},
                    "cell " + cellName(Store, W, A, 0) +
                        " failed: " + Cell.Error);
        continue;
      }
      for (size_t C = 0; C + 1 < Cell.Result.Caches.size(); ++C) {
        ++Checked;
        uint64_t Narrow = Cell.Result.Caches[C].Stats.Misses;
        uint64_t Wide = Cell.Result.Caches[C + 1].Stats.Misses;
        if (Wide > Narrow)
          Diags.error(
              "conform-meta-assoc", {},
              "LRU inclusion violated for " + cellName(Store, W, A, 0) +
                  ": " + Cell.Result.Caches[C].Config.describe() + " had " +
                  std::to_string(Narrow) + " misses but " +
                  Cell.Result.Caches[C + 1].Config.describe() + " had " +
                  std::to_string(Wide));
      }
    }
  }
  return Checked;
}

/// The two conform-meta-assoc chains: 16K direct-mapped, 32K 2-way and 64K
/// 4-way with 32-byte blocks all have 512 sets; the fully-associative chain
/// (one set each, Assoc == numBlocks) is the pure stack property.
size_t checkAssocInclusion(const MetamorphicOptions &Options,
                           const MatrixOptions &RunOptions,
                           DiagEngine &Diags) {
  size_t Checked = 0;
  Checked += checkAssocInclusionFamily(
      {{16 * 1024, 32, 1}, {32 * 1024, 32, 2}, {64 * 1024, 32, 4}}, Options,
      RunOptions, Diags);
  Checked += checkAssocInclusionFamily({{512, 32, 16}, {1024, 32, 32}},
                                       Options, RunOptions, Diags);
  return Checked;
}

/// conform-meta-engine: switching the cache sweep engine from per-config
/// simulation to the one-pass stack-distance engine on a stack-legal family
/// changes no measurement — every cell fingerprint (instruction splits,
/// reference volumes, per-cache miss counts) is bit-identical. Telemetry is
/// off here: the stack engine adds its own probes (cache.stackdist.*), so
/// the snapshots legitimately differ while the measurements must not.
size_t checkEngineEquivalence(const MetamorphicOptions &Options,
                              const MatrixOptions &RunOptions,
                              DiagEngine &Diags) {
  MatrixSpec PerCfg;
  PerCfg.Workloads = {WorkloadId::Espresso, WorkloadId::Make};
  PerCfg.Allocators = metamorphicAllocators();
  PerCfg.Caches = {{16 * 1024, 32, 1}, {32 * 1024, 32, 2}, {64 * 1024, 32, 4}};
  PerCfg.Base.Engine.Scale = Options.Scale;
  PerCfg.Base.Engine.Seed = Options.Seed;
  PerCfg.Base.CacheEngine = CacheEngineKind::PerConfig;
  MatrixSpec Stack = PerCfg;
  Stack.Base.CacheEngine = CacheEngineKind::StackDist;

  ResultStore PerStore = runMatrix(PerCfg, RunOptions);
  ResultStore StackStore = runMatrix(Stack, RunOptions);

  size_t Checked = 0;
  for (size_t W = 0; W != PerCfg.Workloads.size(); ++W) {
    for (size_t A = 0; A != PerCfg.Allocators.size(); ++A) {
      for (size_t P = 0; P != PerCfg.PenaltiesCycles.size(); ++P) {
        ++Checked;
        const CellOutcome &Per = PerStore.at(W, A, P);
        const CellOutcome &Dist = StackStore.at(W, A, P);
        if (cellFingerprint(Per) != cellFingerprint(Dist))
          Diags.error("conform-meta-engine", {},
                      "cache engine changed cell " +
                          cellName(PerStore, W, A, P) + ": percfg [" +
                          cellFingerprint(Per) + "] vs stackdist [" +
                          cellFingerprint(Dist) + "]");
      }
    }
  }
  return Checked;
}

/// Deterministic scripted workload for the relabel property: interleaved
/// allocate/touch/free traffic over a few hundred objects with mixed sizes
/// and lifetimes. Pure function of the seed (SplitMix64 locally, no global
/// RNG), so both relabeled and plain runs replay the identical sequence.
std::vector<AllocEvent> synthesizeScript(uint64_t Seed) {
  auto Next = [State = Seed]() mutable {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  };

  struct LiveObject {
    uint32_t Id;
    uint32_t Words;
  };
  std::vector<AllocEvent> Events;
  std::vector<LiveObject> Live;
  uint32_t NextId = 1;
  for (unsigned I = 0; I != 2000; ++I) {
    uint64_t Roll = Next();
    if (Live.empty() || Roll % 100 < 45) {
      uint32_t Size = 8u + static_cast<uint32_t>(Next() % 24) * 8u;
      Events.push_back(AllocEvent::makeMalloc(NextId, Size));
      Live.push_back({NextId, Size / 4});
      ++NextId;
    } else if (Roll % 100 < 80) {
      const LiveObject &Victim = Live[Next() % Live.size()];
      uint32_t Words = 1u + static_cast<uint32_t>(Next() % Victim.Words);
      Events.push_back(AllocEvent::makeTouch(
          Victim.Id, Words,
          Next() % 2 ? AccessKind::Write : AccessKind::Read));
    } else {
      size_t Idx = Next() % Live.size();
      Events.push_back(AllocEvent::makeFree(Live[Idx].Id));
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Idx));
    }
  }
  for (const LiveObject &Object : Live)
    Events.push_back(AllocEvent::makeFree(Object.Id));
  return Events;
}

/// conform-meta-relabel: mapping every object id through a bijection (an
/// odd multiplier is invertible mod 2^32) must leave every measurement of a
/// scripted run unchanged for every allocator.
size_t checkRelabelInvariance(const MetamorphicOptions &Options,
                              DiagEngine &Diags) {
  std::vector<AllocEvent> Plain = synthesizeScript(Options.Seed);
  std::vector<AllocEvent> Relabeled = Plain;
  for (AllocEvent &Event : Relabeled)
    if (Event.Kind != AllocEventKind::StackTouch)
      Event.Id = Event.Id * 2654435761u;

  size_t Checked = 0;
  for (AllocatorKind Kind : metamorphicAllocators()) {
    ExperimentConfig Config;
    Config.Workload = WorkloadId::Espresso;
    Config.Allocator = Kind;
    Config.Caches = {{16 * 1024, 32, 1}};
    RunResult PlainResult = runScriptExperiment(Config, Plain);
    RunResult RelabeledResult = runScriptExperiment(Config, Relabeled);
    ++Checked;
    bool Same =
        PlainResult.TotalRefs == RelabeledResult.TotalRefs &&
        PlainResult.AllocInstructions == RelabeledResult.AllocInstructions &&
        PlainResult.HeapBytes == RelabeledResult.HeapBytes &&
        PlainResult.BlocksSearched == RelabeledResult.BlocksSearched &&
        PlainResult.Caches[0].Stats.Misses ==
            RelabeledResult.Caches[0].Stats.Misses &&
        PlainResult.Caches[0].Stats.Accesses ==
            RelabeledResult.Caches[0].Stats.Accesses;
    if (!Same)
      Diags.error("conform-meta-relabel", {},
                  std::string("object-id relabeling changed ") +
                      allocatorKindName(Kind) + " measurements: misses " +
                      std::to_string(PlainResult.Caches[0].Stats.Misses) +
                      " became " +
                      std::to_string(RelabeledResult.Caches[0].Stats.Misses) +
                      ", heap " + std::to_string(PlainResult.HeapBytes) +
                      " became " +
                      std::to_string(RelabeledResult.HeapBytes));
  }
  return Checked;
}

} // namespace

size_t allocsim::runMetamorphicSuite(const MetamorphicOptions &Options,
                                     DiagEngine &Diags) {
  MatrixOptions RunOptions;
  RunOptions.Jobs = Options.Jobs;

  MatrixSpec Spec = baseSpec(Options);
  ResultStore Whole = runMatrix(Spec, RunOptions);

  size_t Checked = 0;
  Checked += checkJobsInvariance(Spec, Options, Diags);
  Checked += checkSplitMerge(Spec, Whole, RunOptions, Diags);
  Checked += checkPermutation(Spec, Whole, RunOptions, Diags);
  Checked += checkAssocInclusion(Options, RunOptions, Diags);
  Checked += checkEngineEquivalence(Options, RunOptions, Diags);
  Checked += checkRelabelInvariance(Options, Diags);
  return Checked;
}
