//===- conform/TrendCheck.h - Declarative trend assertions ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assertion layer of the conformance engine: declarative claims about
/// an experiment matrix — "this allocator's miss rate is strictly below that
/// one's", "this metric falls monotonically along the cache-size axis" —
/// evaluated against MatrixRunner ResultStores and reported exhaustively
/// through the DiagEngine, exactly like TraceLint findings. Rule ids
/// (conform-ordering, conform-monotone, conform-pair, conform-missing-cell)
/// are part of the tool contract.
///
/// Every assertion is pure data referencing cells by coordinate value
/// (workload, allocator, penalty) rather than index, so suites stay readable
/// and resolution failures are diagnosed instead of silently misindexing.
/// Metrics are extracted from RunResult; all extraction is deterministic
/// (integer counters or fixed IEEE arithmetic over them), so assertions use
/// exact comparisons — a strict ordering that holds, holds bit-for-bit on
/// every platform and at every --jobs count.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CONFORM_TRENDCHECK_H
#define ALLOCSIM_CONFORM_TRENDCHECK_H

#include "core/MatrixRunner.h"
#include "support/Diag.h"

#include <map>
#include <string>
#include <vector>

namespace allocsim {

/// What to measure in one cell.
enum class ConformMetric : uint8_t {
  MissRate,      ///< Cache miss rate (per cache index).
  CacheMisses,   ///< Raw miss count (per cache index; exact integer).
  EstSeconds,    ///< Estimated execution seconds (per cache index).
  AllocFraction, ///< Fraction of instructions spent in malloc/free.
  SearchPerOp,   ///< Free-list blocks examined per malloc call.
  HeapKb,        ///< Heap obtained from the (simulated) OS, in KB.
  TagRefs,       ///< Boundary-tag references (Table 6's extra traffic).
};

/// Stable snake_case name used in reports and expectation keys.
const char *conformMetricName(ConformMetric Metric);

/// True when the metric is indexed by a cache configuration.
bool conformMetricUsesCache(ConformMetric Metric);

/// Extracts one metric from a run. \p CacheIdx is consulted only for
/// cache-indexed metrics and must be in range then.
double extractConformMetric(const RunResult &Result, ConformMetric Metric,
                            size_t CacheIdx);

/// Names one measured value: a matrix (suites may run several, e.g. Table
/// 6's plain vs boundary-tag runs), a cell by coordinate value, a metric
/// and its cache index.
struct MetricRef {
  std::string Matrix = "main";
  WorkloadId Workload = WorkloadId::Espresso;
  AllocatorKind Allocator = AllocatorKind::FirstFit;
  uint32_t PenaltyCycles = 25;
  ConformMetric Metric = ConformMetric::MissRate;
  size_t CacheIdx = 0;

  /// Deterministic expectation/report key, e.g.
  /// "main/gs-small/FirstFit/p25/c0/miss_rate".
  std::string key() const;
};

/// The named stores a suite produced, keyed by MetricRef::Matrix.
using StoreMap = std::map<std::string, const ResultStore *>;

/// Looks up the value a MetricRef names. Returns false (and reports
/// conform-missing-cell into \p Diags) when the matrix, cell or cache index
/// does not exist or the cell failed.
bool resolveMetric(const StoreMap &Stores, const MetricRef &Ref,
                   double &Value, DiagEngine &Diags);

/// Asserts a strict ordering of one metric across allocators within one
/// workload: value(Allocators[i]) < value(Allocators[i+1]) for every link.
/// Allocators are listed best (lowest) to worst (highest).
struct OrderingAssert {
  /// The paper claim this encodes; quoted in findings.
  std::string Note;
  MetricRef Base;
  std::vector<AllocatorKind> Ascending;
};

/// Asserts that one metric is monotone for a fixed (workload, allocator)
/// cell along one matrix axis.
struct MonotoneAssert {
  enum class Axis : uint8_t {
    CacheSize, ///< Across the cell's cache configurations, in spec order.
    Penalty,   ///< Across the spec's penalty values, in spec order.
  };
  enum class Dir : uint8_t { NonIncreasing, NonDecreasing };

  std::string Note;
  /// Fixed coordinates; CacheIdx is the fixed cache when Along==Penalty,
  /// PenaltyCycles the fixed penalty when Along==CacheSize.
  MetricRef Base;
  Axis Along = Axis::CacheSize;
  Dir Direction = Dir::NonIncreasing;
};

/// Asserts a comparison between two arbitrary measured values (possibly in
/// different matrices — how Table 6's "tags cost little but not nothing"
/// claim compares the tagged run against the plain one).
struct PairAssert {
  enum class Cmp : uint8_t { LT, LE, GT, GE };

  std::string Note;
  MetricRef Left;
  MetricRef Right;
  Cmp Relation = Cmp::LT;
};

/// Renders "left < right"-style text for findings.
const char *pairCmpName(PairAssert::Cmp Relation);

/// Evaluation: each returns the number of elementary comparisons checked
/// and reports every violation into \p Diags (rule conform-ordering /
/// conform-monotone / conform-pair; resolution failures are
/// conform-missing-cell). Nothing aborts: a suite reports all findings.
size_t checkOrdering(const StoreMap &Stores, const OrderingAssert &Assert,
                     DiagEngine &Diags);
size_t checkMonotone(const StoreMap &Stores, const MonotoneAssert &Assert,
                     DiagEngine &Diags);
size_t checkPair(const StoreMap &Stores, const PairAssert &Assert,
                 DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_CONFORM_TRENDCHECK_H
