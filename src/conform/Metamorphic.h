//===- conform/Metamorphic.h - Metamorphic invariant suite ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metamorphic testing for the simulator: instead of pinning outputs to
/// known values, each property transforms an experiment in a way that
/// provably must not change (or can only improve) the measurement, runs
/// both versions, and diagnoses any divergence. These catch whole classes
/// of bugs golden files cannot — a scheduler that leaks completion order
/// into results, a cache that violates LRU inclusion, an allocator whose
/// placement depends on object-id *values* rather than request order.
///
/// Properties (each reported under its own stable rule id):
///
///  * conform-meta-jobs: the full golden serialization and the merged
///    telemetry of a matrix are bit-identical at --jobs=1 and --jobs=N.
///  * conform-meta-split: splitting a matrix along the allocator axis into
///    two sub-matrices and merging yields every cell bit-identical to the
///    unsplit run, including the folded telemetry (allocator-axis splits
///    leave per-cell seeds untouched; workload-axis splits would not).
///  * conform-meta-permute: permuting the allocator axis permutes the cells
///    and changes nothing else.
///  * conform-meta-assoc: growing a cache from (S sets, k-way) to (S sets,
///    2k-way) under LRU never increases misses on any trace (the inclusion
///    property, Mattson et al. 1970) — asserted with sets held fixed, i.e.
///    size and associativity doubled together; checked both on a 512-set
///    chain and on a fully-associative one (a single set, Assoc ==
///    numBlocks), where inclusion is the pure stack property.
///  * conform-meta-engine: switching the cache sweep engine from per-config
///    simulation (CacheBank) to the one-pass stack-distance engine
///    (StackSim) on a stack-legal family leaves every cell measurement
///    bit-identical. Run with telemetry off: the stack engine adds its own
///    probes (cache.stackdist.*), so measurements must agree while the
///    probe inventories legitimately differ.
///  * conform-meta-relabel: renaming every object id through a bijection
///    leaves a scripted run's reference stream and miss counts unchanged —
///    allocation is driven by request order and sizes, never by the names.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CONFORM_METAMORPHIC_H
#define ALLOCSIM_CONFORM_METAMORPHIC_H

#include "support/Diag.h"

#include <cstdint>

namespace allocsim {

/// Knobs for the metamorphic suite. The defaults match the committed
/// conformance configuration; tests shrink Scale to run in milliseconds.
struct MetamorphicOptions {
  /// Workload scale divisor handed to EngineOptions.
  uint32_t Scale = 64;
  /// Base engine seed.
  uint64_t Seed = 1592932958ULL;
  /// Worker count for the parallel leg of the jobs property and for every
  /// other matrix run; 1 keeps the whole suite serial.
  unsigned Jobs = 1;
};

/// Runs every metamorphic property across all five paper allocators,
/// reporting violations into \p Diags (rules conform-meta-*). Returns the
/// number of elementary equalities/inequalities checked.
size_t runMetamorphicSuite(const MetamorphicOptions &Options,
                           DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_CONFORM_METAMORPHIC_H
