//===- conform/Expectations.h - Committed expectation files -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tolerance-band layer of the conformance engine. Trend assertions
/// (TrendCheck.h) pin the *shape* of the replication; expectation files pin
/// the *values*: every metric a suite measures is recorded in a committed
/// JSON file (schema "allocsim-conform-expectations-v1") and later runs must
/// land within a relative band of the recorded value. Because the simulator
/// is deterministic, the committed values reproduce exactly on every
/// platform and at every --jobs count — the band exists to flag *intentional*
/// behavior drifts (an allocator change that moves miss rates) so they are
/// re-recorded consciously rather than absorbed silently.
///
/// Update protocol: run with ALLOCSIM_UPDATE_CONFORMANCE=1 (mirroring the
/// golden-matrix tests' ALLOCSIM_UPDATE_GOLDEN) to regenerate the files,
/// then review the diff like any other golden change.
///
/// Scale independence: recorded values are only meaningful at the scale and
/// seed they were recorded at. When a run's scale or seed differs (the
/// weekly full-size replication run), band checks are skipped with a note
/// and only the trend assertions gate.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CONFORM_EXPECTATIONS_H
#define ALLOCSIM_CONFORM_EXPECTATIONS_H

#include "support/Diag.h"

#include <cstdint>
#include <map>
#include <string>

namespace allocsim {

/// Schema identifier written into every expectation file.
inline constexpr const char *ConformExpectationsSchema =
    "allocsim-conform-expectations-v1";

/// Default relative tolerance band, in percent.
inline constexpr double ConformDefaultBandPercent = 2.0;

/// One committed expectation file: the run configuration it was recorded at
/// and every metric value, keyed by MetricRef::key().
struct ExpectationFile {
  std::string Suite;
  uint32_t Scale = 0;
  uint64_t Seed = 0;
  double BandPercent = ConformDefaultBandPercent;
  std::map<std::string, double> Metrics;
};

/// Reads and validates an expectation file. Returns false with a diagnostic
/// in \p Error on I/O failure, parse failure, or schema mismatch.
bool readExpectationFile(const std::string &Path, ExpectationFile &Out,
                         std::string &Error);

/// Writes \p File deterministically (sorted keys, fixed number formatting,
/// trailing newline) so regenerated files diff cleanly. Returns false with
/// a diagnostic in \p Error when the path cannot be written.
bool writeExpectationFile(const std::string &Path, const ExpectationFile &File,
                          std::string &Error);

/// True when \p Measured lies within \p File's relative band of
/// \p Expected. Exact-zero expectations require exact-zero measurements
/// (a relative band around zero is degenerate).
bool withinBand(double Expected, double Measured, double BandPercent);

/// Compares measured metrics against a committed file. When \p Scale or
/// \p Seed differ from the file's recorded values, reports one
/// conform-expectation-scale warning and checks nothing (trend assertions
/// still gate such runs). Otherwise reports conform-expectation-band errors
/// for out-of-band values and conform-expectation-keys errors for key-set
/// mismatches in either direction. Returns the number of band comparisons
/// performed.
size_t checkExpectations(const ExpectationFile &File,
                         const std::map<std::string, double> &Measured,
                         uint32_t Scale, uint64_t Seed, DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_CONFORM_EXPECTATIONS_H
