//===- conform/Conformance.h - Paper-replication conformance ----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance engine: scaled-down versions of the paper's experiment
/// matrices run through MatrixRunner and gated on (a) the qualitative claims
/// the paper makes about their shape — allocator orderings, monotone trends
/// (TrendCheck.h) — and (b) tolerance bands around committed expectation
/// values (Expectations.h), plus a metamorphic suite of transformation
/// invariants (Metamorphic.h). This is what `allocsim_cli --conform` runs
/// and what CI's conform job gates on: "the replication still replicates".
///
/// Suites:
///   * missrate:    Figs. 6-8 at reduced scale — miss-rate orderings and
///                  cache-size monotonicity, plus Fig. 1's instruction-
///                  fraction orderings and §3.3's search-length claim.
///   * exectime:    Tables 4-5 / Figs. 4-5 — estimated-time orderings and
///                  §4.3's penalty-sensitivity monotonicity.
///   * tags:        Table 6 — boundary-tag emulation adds tag traffic and
///                  costs time, but little of it.
///   * metamorphic: transformation invariants (see Metamorphic.h).
///
/// Assertions encode only claims that hold *in this simulator at the
/// committed scale and seed* — each was verified by measurement before
/// being committed, and the cases where the reproduction's shape diverges
/// from the paper's exact figures (e.g. orderings that invert at 256K
/// caches) are deliberately not asserted. EXPERIMENTS.md documents the
/// distinction.
///
/// Findings flow through the DiagEngine, human output mirrors --lint, and
/// the JSON report uses schema "allocsim-conform-v1".
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CONFORM_CONFORMANCE_H
#define ALLOCSIM_CONFORM_CONFORMANCE_H

#include "conform/Expectations.h"
#include "support/Diag.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace allocsim {

/// Schema identifier of the JSON conformance report.
inline constexpr const char *ConformReportSchema = "allocsim-conform-v1";

/// The suite names runConformance knows, in run order.
std::vector<std::string> conformSuiteNames();

/// Configuration of one conformance run.
struct ConformOptions {
  /// Suites to run; empty means all of conformSuiteNames().
  std::vector<std::string> Suites;
  /// Workload scale divisor. The committed expectations are recorded at the
  /// default; other scales run trend assertions only.
  uint32_t Scale = 64;
  /// Base engine seed (salted per workload by the MatrixRunner as usual).
  uint64_t Seed = 1592932958ULL;
  /// Worker threads per matrix; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Directory of committed expectation files; empty disables value-band
  /// checking (trend assertions still run).
  std::string ExpectationsDir;
  /// Rewrite the expectation files from this run's measurements instead of
  /// checking against them (the ALLOCSIM_UPDATE_CONFORMANCE protocol).
  bool UpdateExpectations = false;
};

/// Outcome of one suite.
struct ConformSuiteResult {
  std::string Name;
  /// Matrix cells executed (0 for the metamorphic suite's scripted runs).
  size_t CellsRun = 0;
  /// Elementary trend/invariant comparisons evaluated.
  size_t ChecksRun = 0;
  /// Expectation band comparisons evaluated.
  size_t BandChecks = 0;
  size_t Errors = 0;
  size_t Warnings = 0;
};

/// Outcome of one conformance run.
struct ConformReport {
  uint32_t Scale = 0;
  uint64_t Seed = 0;
  std::vector<ConformSuiteResult> Suites;
  DiagEngine Diags;

  bool passed() const { return Diags.errorCount() == 0; }
  size_t totalChecks() const;
};

/// Runs the selected suites. Unknown suite names are reported (rule
/// conform-unknown-suite) and skipped. Never throws on assertion failures —
/// every finding lands in the report's DiagEngine.
ConformReport runConformance(const ConformOptions &Options);

/// Human rendering: per-suite summary lines, then the findings in compiler
/// style (prefixed `--conform`, matching the --lint convention), then a
/// PASS/FAIL verdict line.
void printConformReport(std::ostream &OS, const ConformReport &Report);

/// JSON rendering, schema "allocsim-conform-v1": run configuration,
/// per-suite counters, the diagnostics array, and the verdict.
void writeConformReportJson(std::ostream &OS, const ConformReport &Report);

} // namespace allocsim

#endif // ALLOCSIM_CONFORM_CONFORMANCE_H
