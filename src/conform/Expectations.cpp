//===- conform/Expectations.cpp - Committed expectation files -------------===//

#include "conform/Expectations.h"

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace allocsim;

namespace {

/// Shortest-round-trip formatting: %.17g always round-trips a double, but
/// prefer the shorter %.15g form when it already does, so files stay
/// readable for the common case of few significant digits.
std::string formatDouble(double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.15g", Value);
  if (std::strtod(Buffer, nullptr) != Value)
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  return Buffer;
}

} // namespace

bool allocsim::readExpectationFile(const std::string &Path,
                                   ExpectationFile &Out, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Text;
  Text << In.rdbuf();

  JsonValue Root;
  if (!JsonValue::parse(Text.str(), Root, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  if (!Root.isObject()) {
    Error = Path + ": expected a JSON object";
    return false;
  }
  const JsonValue *Schema = Root.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->stringValue() != ConformExpectationsSchema) {
    Error = Path + ": missing or unexpected schema (want '" +
            std::string(ConformExpectationsSchema) + "')";
    return false;
  }

  Out = ExpectationFile();
  const JsonValue *Suite = Root.get("suite");
  if (!Suite || !Suite->isString()) {
    Error = Path + ": missing string field 'suite'";
    return false;
  }
  Out.Suite = Suite->stringValue();

  const JsonValue *Scale = Root.get("scale");
  if (!Scale || !Scale->isInteger()) {
    Error = Path + ": missing integer field 'scale'";
    return false;
  }
  Out.Scale = static_cast<uint32_t>(Scale->uintValue());

  const JsonValue *Seed = Root.get("seed");
  if (!Seed || !Seed->isInteger()) {
    Error = Path + ": missing integer field 'seed'";
    return false;
  }
  Out.Seed = Seed->uintValue();

  const JsonValue *Band = Root.get("band_percent");
  if (!Band || !Band->isNumber()) {
    Error = Path + ": missing numeric field 'band_percent'";
    return false;
  }
  Out.BandPercent = Band->numberValue();
  if (!(Out.BandPercent >= 0)) {
    Error = Path + ": band_percent must be non-negative";
    return false;
  }

  const JsonValue *Metrics = Root.get("metrics");
  if (!Metrics || !Metrics->isObject()) {
    Error = Path + ": missing object field 'metrics'";
    return false;
  }
  for (const auto &[Key, Value] : Metrics->object()) {
    if (!Value.isNumber()) {
      Error = Path + ": metric '" + Key + "' is not a number";
      return false;
    }
    Out.Metrics[Key] = Value.numberValue();
  }
  return true;
}

bool allocsim::writeExpectationFile(const std::string &Path,
                                    const ExpectationFile &File,
                                    std::string &Error) {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  Out << "{\n";
  Out << "  \"schema\": \"" << ConformExpectationsSchema << "\",\n";
  Out << "  \"suite\": \"" << jsonEscaped(File.Suite) << "\",\n";
  Out << "  \"scale\": " << File.Scale << ",\n";
  Out << "  \"seed\": " << File.Seed << ",\n";
  Out << "  \"band_percent\": " << formatDouble(File.BandPercent) << ",\n";
  Out << "  \"metrics\": {";
  bool First = true;
  for (const auto &[Key, Value] : File.Metrics) {
    Out << (First ? "\n" : ",\n");
    First = false;
    Out << "    \"" << jsonEscaped(Key) << "\": " << formatDouble(Value);
  }
  Out << (First ? "}\n" : "\n  }\n");
  Out << "}\n";
  Out.flush();
  if (!Out) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  return true;
}

bool allocsim::withinBand(double Expected, double Measured,
                          double BandPercent) {
  if (Expected == 0.0)
    return Measured == 0.0;
  double Relative = std::fabs(Measured - Expected) / std::fabs(Expected);
  return Relative <= BandPercent / 100.0;
}

size_t allocsim::checkExpectations(const ExpectationFile &File,
                                   const std::map<std::string, double>
                                       &Measured,
                                   uint32_t Scale, uint64_t Seed,
                                   DiagEngine &Diags) {
  if (Scale != File.Scale || Seed != File.Seed) {
    Diags.warning("conform-expectation-scale", {},
                  "suite '" + File.Suite + "' ran at scale " +
                      std::to_string(Scale) + " seed " + std::to_string(Seed) +
                      " but expectations were recorded at scale " +
                      std::to_string(File.Scale) + " seed " +
                      std::to_string(File.Seed) +
                      "; value-band checks skipped (trend assertions still "
                      "gate)");
    return 0;
  }

  size_t Checked = 0;
  for (const auto &[Key, Expected] : File.Metrics) {
    auto It = Measured.find(Key);
    if (It == Measured.end()) {
      Diags.error("conform-expectation-keys", {},
                  "expectation '" + Key +
                      "' was not measured by suite '" + File.Suite +
                      "' (stale expectation file? regenerate with "
                      "ALLOCSIM_UPDATE_CONFORMANCE=1)");
      continue;
    }
    ++Checked;
    if (!withinBand(Expected, It->second, File.BandPercent))
      Diags.error("conform-expectation-band", {},
                  "metric '" + Key + "' = " + formatDouble(It->second) +
                      " is outside the " + formatDouble(File.BandPercent) +
                      "% band around the committed value " +
                      formatDouble(Expected));
  }
  for (const auto &[Key, Value] : Measured) {
    (void)Value;
    if (!File.Metrics.count(Key))
      Diags.error("conform-expectation-keys", {},
                  "measured metric '" + Key +
                      "' has no committed expectation (regenerate with "
                      "ALLOCSIM_UPDATE_CONFORMANCE=1)");
  }
  return Checked;
}
