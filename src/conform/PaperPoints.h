//===- conform/PaperPoints.h - Published values from the paper --*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's published data points, shared by the benchmark binaries that
/// print them next to measured values (bench/bench_table4_time_16k and
/// friends, via bench/PaperData.h) and by the conformance engine that gates
/// on the qualitative claims derived from them. One definition: a bench that
/// renders Table 4 and a conformance suite that asserts Table 4's ordering
/// must read the same transcription.
///
/// Numeric points: Tables 4 and 5 (total estimated execution seconds /
/// seconds waiting on cache misses, DECstation 5000/120), transcribed from
/// the scanned text. Entries the scan corrupted beyond recovery are recorded
/// as -1 and printed as "?".
///
/// Row order matches PaperAllocators (FirstFit, QuickFit, GnuG++, BSD,
/// GnuLocal); column order matches PaperWorkloads (espresso, gs, ptc, gawk,
/// make).
///
/// Qualitative claims (the shapes the conformance suites assert; section
/// references are to the paper):
///   * §4.1/Figs. 6-8: FIRSTFIT's miss rate is the highest at every cache
///     size; miss rate falls monotonically as the cache grows.
///   * §4.2/Tables 4-5: BSD is the fastest in estimated total time; GNU
///     Local's locality gain is cancelled by its CPU overhead.
///   * Fig. 1: BSD spends the smallest fraction of instructions in
///     malloc/free, GNU Local the largest.
///   * §3.3: sequential first fit searches many blocks per request; the
///     segregated allocators search none.
///   * Table 6: boundary-tag emulation adds tag references but costs little
///     total time.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CONFORM_PAPERPOINTS_H
#define ALLOCSIM_CONFORM_PAPERPOINTS_H

namespace allocsim {

/// One Table 4/5 entry: estimated total execution seconds and the share of
/// them spent waiting on cache misses. Negative values mean the scan of the
/// paper corrupted the entry beyond recovery.
struct PaperTime {
  double TotalSeconds;
  double MissSeconds;

  bool known() const { return TotalSeconds >= 0; }
};

/// Table 4: 16-kilobyte direct-mapped cache.
inline constexpr PaperTime PaperTable4[5][5] = {
    // espresso        gs               ptc            gawk           make
    {{199.67, 43.01}, {113.13, 29.11}, {-1, -1},      {-1, -1},      {-1, -1}},
    {{192.16, 41.85}, {90.18, 12.22},  {24.84, 2.62}, {72.02, 12.12}, {3.57, 0.21}},
    {{188.14, 34.94}, {91.38, 15.09},  {25.50, 2.82}, {77.25, 14.87}, {3.70, 0.27}},
    {{184.80, 34.39}, {89.65, 14.65},  {24.93, 2.62}, {70.35, 10.14}, {3.55, 0.18}},
    {{213.07, 35.40}, {100.74, 16.44}, {25.36, 2.57}, {89.25, 13.84}, {3.67, 0.13}},
};

/// Table 5: 64-kilobyte direct-mapped cache.
inline constexpr PaperTime PaperTable5[5][5] = {
    {{164.74, 8.08},  {-1, -1},       {24.16, 1.21}, {79.18, 3.27}, {3.69, 0.14}},
    {{159.16, 8.85},  {81.29, 3.32},  {23.27, 1.04}, {61.83, 1.92}, {3.45, 0.08}},
    {{163.74, 10.55}, {82.96, 6.67},  {23.83, 1.16}, {65.20, 2.82}, {3.53, 0.09}},
    {{163.14, 12.72}, {78.95, 3.95},  {23.45, 1.15}, {62.40, 2.19}, {3.43, 0.06}},
    {{185.33, 7.67},  {88.15, 3.85},  {23.77, 0.98}, {76.70, 1.29}, {3.60, 0.05}},
};

} // namespace allocsim

#endif // ALLOCSIM_CONFORM_PAPERPOINTS_H
