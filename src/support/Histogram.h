//===- support/Histogram.h - Integer-keyed histogram ------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A histogram over 64-bit integer keys. Used for allocation-size profiles
/// (feeding the CustomAlloc synthesis pass) and for stack-distance counts in
/// the page-fault simulator.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_HISTOGRAM_H
#define ALLOCSIM_SUPPORT_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace allocsim {

/// Sparse histogram over uint64_t keys with deterministic (sorted-key)
/// iteration order.
class Histogram {
public:
  void add(uint64_t Key, uint64_t Count = 1) { Counts[Key] += Count; }

  /// Returns the count recorded for \p Key (0 if never added).
  uint64_t count(uint64_t Key) const {
    auto It = Counts.find(Key);
    return It == Counts.end() ? 0 : It->second;
  }

  /// Total of all counts.
  uint64_t total() const {
    uint64_t Sum = 0;
    for (const auto &[Key, Count] : Counts)
      Sum += Count;
    return Sum;
  }

  /// Number of distinct keys.
  size_t distinct() const { return Counts.size(); }

  bool empty() const { return Counts.empty(); }

  /// Returns the keys holding the top \p N counts, most frequent first.
  /// Ties break toward smaller keys for determinism.
  std::vector<uint64_t> topKeys(size_t N) const;

  /// Smallest key K such that the cumulative count of keys <= K reaches
  /// \p Fraction of the total. Requires a non-empty histogram and
  /// 0 < Fraction <= 1.
  uint64_t quantileKey(double Fraction) const;

  using const_iterator = std::map<uint64_t, uint64_t>::const_iterator;
  const_iterator begin() const { return Counts.begin(); }
  const_iterator end() const { return Counts.end(); }

private:
  std::map<uint64_t, uint64_t> Counts;
};

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_HISTOGRAM_H
