//===- support/Diag.cpp - Exhaustive diagnostics engine -------------------===//

#include "support/Diag.h"

#include <cstdio>
#include <ostream>

using namespace allocsim;

const char *allocsim::diagSeverityName(DiagSeverity Severity) {
  return Severity == DiagSeverity::Error ? "error" : "warning";
}

void DiagEngine::report(std::string Rule, DiagSeverity Severity,
                        SourceLoc Loc, std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++Errors;
  Diags.push_back({std::move(Rule), Severity, Loc, std::move(Message)});
}

std::string DiagEngine::firstError() const {
  for (const Diag &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      return D.Message;
  return "";
}

void DiagEngine::print(std::ostream &OS, const std::string &Name) const {
  for (const Diag &D : Diags) {
    OS << Name;
    if (D.Loc.Line != 0) {
      OS << ":" << D.Loc.Line;
      if (D.Loc.Column != 0)
        OS << ":" << D.Loc.Column;
    }
    OS << ": " << diagSeverityName(D.Severity) << ": " << D.Message << " ["
       << D.Rule << "]\n";
  }
}

void DiagEngine::writeJson(std::ostream &OS,
                           const std::string &Indent) const {
  OS << "[";
  for (size_t I = 0; I != Diags.size(); ++I) {
    const Diag &D = Diags[I];
    OS << (I ? ",\n" : "\n") << Indent << " {\"rule\": \""
       << jsonEscaped(D.Rule) << "\", \"severity\": \""
       << diagSeverityName(D.Severity) << "\", \"line\": " << D.Loc.Line
       << ", \"column\": " << D.Loc.Column << ", \"message\": \""
       << jsonEscaped(D.Message) << "\"}";
  }
  if (!Diags.empty())
    OS << "\n" << Indent;
  OS << "]";
}

std::string allocsim::jsonEscaped(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
