//===- support/Table.h - Aligned text table / CSV emitter ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small table builder used by the benchmark harnesses to print the
/// paper's tables and figure series in aligned text or CSV form.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_TABLE_H
#define ALLOCSIM_SUPPORT_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace allocsim {

/// Collects rows of string cells and renders them either as an aligned text
/// table (for humans) or CSV (for plotting).
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Starts a new row. Cells are appended with cell()/num() until the next
  /// beginRow() or render.
  void beginRow();

  /// Appends a string cell to the current row.
  void cell(std::string Value);

  /// Appends a formatted floating-point cell with \p Digits fraction digits.
  void num(double Value, int Digits = 3);

  /// Appends an integer cell.
  void num(uint64_t Value);

  /// Renders with space-padded columns, a header underline, and a leading
  /// title line if \p Title is non-empty.
  void renderText(std::ostream &OS, const std::string &Title = "") const;

  /// Renders as CSV (no title).
  void renderCsv(std::ostream &OS) const;

  size_t rowCount() const { return Rows.size(); }
  size_t columnCount() const { return Headers.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with fixed fraction digits (helper shared with benches).
std::string formatDouble(double Value, int Digits);

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_TABLE_H
