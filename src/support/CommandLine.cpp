//===- support/CommandLine.cpp - Tiny flag parser -------------------------===//

#include "support/CommandLine.h"

#include "support/Error.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace allocsim;

void CommandLine::addFlag(const std::string &Name, const std::string &Default,
                          const std::string &Help) {
  assert(!Flags.count(Name) && "flag registered twice");
  Flags[Name] = Flag{Default, Default, Help};
}

bool CommandLine::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp(Argv[0]);
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name, Value;
    auto Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Name = Arg.substr(2, Eq - 2);
      Value = Arg.substr(Eq + 1);
    } else {
      Name = Arg.substr(2);
      auto It = Flags.find(Name);
      if (It == Flags.end()) {
        std::fprintf(stderr, "error: unknown flag --%s\n", Name.c_str());
        printHelp(Argv[0]);
        return false;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag --%s needs a value\n", Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    auto It = Flags.find(Name);
    if (It == Flags.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", Name.c_str());
      printHelp(Argv[0]);
      return false;
    }
    It->second.Value = Value;
  }
  return true;
}

const std::string &CommandLine::getString(const std::string &Name) const {
  auto It = Flags.find(Name);
  if (It == Flags.end())
    reportFatalError("unregistered flag queried: " + Name);
  return It->second.Value;
}

int64_t CommandLine::getInt(const std::string &Name) const {
  const std::string &Value = getString(Name);
  char *End = nullptr;
  int64_t Result = std::strtoll(Value.c_str(), &End, 0);
  if (End == Value.c_str() || *End != '\0')
    reportFatalError("flag --" + Name + " expects an integer, got '" + Value +
                     "'");
  return Result;
}

double CommandLine::getDouble(const std::string &Name) const {
  const std::string &Value = getString(Name);
  char *End = nullptr;
  double Result = std::strtod(Value.c_str(), &End);
  if (End == Value.c_str() || *End != '\0')
    reportFatalError("flag --" + Name + " expects a number, got '" + Value +
                     "'");
  return Result;
}

bool CommandLine::getBool(const std::string &Name) const {
  const std::string &Value = getString(Name);
  if (Value == "true" || Value == "1" || Value == "yes")
    return true;
  if (Value == "false" || Value == "0" || Value == "no")
    return false;
  reportFatalError("flag --" + Name + " expects a boolean, got '" + Value +
                   "'");
}

void CommandLine::printHelp(const char *Program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", Program);
  for (const auto &[Name, F] : Flags)
    std::fprintf(stderr, "  --%-20s %s (default: %s)\n", Name.c_str(),
                 F.Help.c_str(), F.Default.c_str());
}
