//===- support/Json.h - Minimal JSON reader ---------------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the documents this repository
/// itself emits and commits (conformance expectation files, exported matrix
/// snapshots). The writers in this codebase build JSON by hand with stable
/// formatting; this is the matching read side, so committed artifacts can be
/// loaded back and compared without an external dependency.
///
/// Scope: the JSON subset our emitters produce — objects, arrays, strings
/// with the escapes jsonEscaped() writes, integers, doubles, booleans and
/// null. Numbers are parsed with strtod and additionally kept as int64/uint64
/// when the text is an exact integer, because most committed values are
/// integer counters that must round-trip exactly.
///
/// Errors are reported by position ("offset N: message") through the bool
/// return + error string convention used by the spec parsers, not by
/// exception.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_JSON_H
#define ALLOCSIM_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace allocsim {

/// One parsed JSON value. Objects preserve no duplicate keys (last write
/// wins, matching every mainstream reader); object iteration is sorted by
/// key, which is also the order our emitters write.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return ValueKind; }
  bool isNull() const { return ValueKind == Kind::Null; }
  bool isBool() const { return ValueKind == Kind::Bool; }
  bool isNumber() const { return ValueKind == Kind::Number; }
  bool isString() const { return ValueKind == Kind::String; }
  bool isArray() const { return ValueKind == Kind::Array; }
  bool isObject() const { return ValueKind == Kind::Object; }

  bool boolValue() const { return Bool; }
  /// The number as a double (always valid for numbers).
  double numberValue() const { return Number; }
  /// True when the source text was an exact (in-range) integer.
  bool isInteger() const { return IsInteger; }
  int64_t intValue() const { return Int; }
  uint64_t uintValue() const { return Uint; }
  const std::string &stringValue() const { return Str; }

  const std::vector<JsonValue> &array() const { return Array; }
  const std::map<std::string, JsonValue> &object() const { return Object; }

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue *get(const std::string &Key) const;

  /// Parses \p Text entirely (trailing non-space input is an error).
  /// Returns false with a positioned message in \p Error on failure.
  static bool parse(const std::string &Text, JsonValue &Out,
                    std::string &Error);

private:
  friend class JsonParser;

  Kind ValueKind = Kind::Null;
  bool Bool = false;
  double Number = 0;
  bool IsInteger = false;
  int64_t Int = 0;
  uint64_t Uint = 0;
  std::string Str;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;
};

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_JSON_H
