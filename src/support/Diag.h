//===- support/Diag.h - Exhaustive diagnostics engine -----------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostics engine shared by the static analyses (TraceLint over
/// allocation-event scripts, the matrix-spec linter). Unlike the fatal
/// reporting in support/Error.h — which is the right tool once a simulation
/// is running on input that was promised to be sound — an analysis pass
/// must report *every* problem it can find, with a stable machine-matchable
/// rule id and a precise source location, and let the caller decide what an
/// error is worth.
///
/// A Diag is (rule id, severity, line:column, message). DiagEngine collects
/// them in report order and renders them two ways:
///
///  * human:   `<name>:<line>:<col>: error: <message> [<rule>]`
///    (the compiler-style format editors and CI annotators understand);
///  * machine: a JSON array of diagnostic objects, the "diagnostics" field
///    of the `allocsim-lint-v1` schema (see analyze/TraceLint.h).
///
/// Rule ids are part of the tool contract: tests and downstream automation
/// match on them, so renaming one is a breaking change.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_DIAG_H
#define ALLOCSIM_SUPPORT_DIAG_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace allocsim {

/// How bad a finding is. Errors make the input unusable (the simulator
/// would die or wedge on it); warnings flag suspicious-but-runnable
/// constructs (leaked objects, empty touches, duplicate matrix cells).
enum class DiagSeverity : uint8_t { Warning, Error };

/// Display name ("warning", "error").
const char *diagSeverityName(DiagSeverity Severity);

/// 1-based position in the analyzed text; 0 means "not attributable to a
/// location" (e.g. a missing required axis).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool operator==(const SourceLoc &Other) const = default;
};

/// One finding.
struct Diag {
  /// Stable kebab-case rule id, e.g. "trace-double-free".
  std::string Rule;
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects findings exhaustively, never aborting: an analysis reports
/// everything it sees and the caller inspects errorCount() afterwards.
class DiagEngine {
public:
  void report(std::string Rule, DiagSeverity Severity, SourceLoc Loc,
              std::string Message);
  void error(std::string Rule, SourceLoc Loc, std::string Message) {
    report(std::move(Rule), DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(std::string Rule, SourceLoc Loc, std::string Message) {
    report(std::move(Rule), DiagSeverity::Warning, Loc, std::move(Message));
  }

  const std::vector<Diag> &diags() const { return Diags; }
  bool clean() const { return Diags.empty(); }
  size_t errorCount() const { return Errors; }
  size_t warningCount() const { return Diags.size() - Errors; }

  /// First error's message, or "" when error-free (the fatal/bool wrappers
  /// retrofit old one-shot interfaces onto the exhaustive engine).
  std::string firstError() const;

  /// Compiler-style rendering, one line per finding, prefixed with \p Name
  /// (the analyzed file or a pseudo-name like "--matrix").
  void print(std::ostream &OS, const std::string &Name) const;

  /// JSON array of diagnostic objects: {"rule", "severity", "line",
  /// "column", "message"}. \p Indent prefixes every emitted line.
  void writeJson(std::ostream &OS, const std::string &Indent) const;

private:
  std::vector<Diag> Diags;
  size_t Errors = 0;
};

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// emitters that build documents by hand, as this codebase's writers do.
std::string jsonEscaped(const std::string &Text);

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_DIAG_H
