//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of allocsim, a reproduction of Grunwald, Zorn & Henderson,
// "Improving the Cache Locality of Memory Allocation" (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used throughout the
/// simulator. All experiments are seeded explicitly so that runs are exactly
/// reproducible; the paper's tools were deterministic for the same reason
/// ("our experiments did not require statistically averaging multiple runs").
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_RNG_H
#define ALLOCSIM_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace allocsim {

/// SplitMix64 generator; used both directly and to seed Xoshiro256.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** — fast, high-quality 64-bit generator. This is the only
/// generator used by workload synthesis.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    SplitMix64 Seeder(Seed);
    for (auto &Word : State)
      Word = Seeder.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a value uniform in [0, Bound). Requires Bound > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Rejection-free multiply-shift (Lemire); slight bias is irrelevant for
    // workload synthesis but we keep the wide-multiply form for quality.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a double uniform in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Returns an exponentially distributed value with the given mean.
  double nextExponential(double Mean) {
    assert(Mean > 0 && "exponential mean must be positive");
    double U = nextDouble();
    // Guard against log(0).
    if (U <= 0.0)
      U = 0x1.0p-53;
    return -Mean * std::log(U);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

/// Samples indices from a fixed discrete distribution in O(1) using Walker's
/// alias method. Used to draw allocation-request sizes from per-program size
/// histograms.
class DiscreteDistribution {
public:
  /// Builds the alias table from (possibly unnormalized) non-negative
  /// weights. Requires at least one strictly positive weight.
  explicit DiscreteDistribution(const std::vector<double> &Weights);

  /// Draws an index in [0, size()).
  size_t sample(Rng &R) const {
    size_t I = static_cast<size_t>(R.nextBelow(Prob.size()));
    return R.nextDouble() < Prob[I] ? I : Alias[I];
  }

  size_t size() const { return Prob.size(); }

private:
  std::vector<double> Prob;
  std::vector<size_t> Alias;
};

inline DiscreteDistribution::DiscreteDistribution(
    const std::vector<double> &Weights) {
  assert(!Weights.empty() && "distribution needs at least one weight");
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "weights must be non-negative");
    Total += W;
  }
  assert(Total > 0 && "at least one weight must be positive");

  size_t N = Weights.size();
  Prob.assign(N, 0.0);
  Alias.assign(N, 0);

  std::vector<double> Scaled(N);
  for (size_t I = 0; I != N; ++I)
    Scaled[I] = Weights[I] * static_cast<double>(N) / Total;

  std::vector<size_t> Small, Large;
  for (size_t I = 0; I != N; ++I)
    (Scaled[I] < 1.0 ? Small : Large).push_back(I);

  while (!Small.empty() && !Large.empty()) {
    size_t S = Small.back();
    Small.pop_back();
    size_t L = Large.back();
    Large.pop_back();
    Prob[S] = Scaled[S];
    Alias[S] = L;
    Scaled[L] = (Scaled[L] + Scaled[S]) - 1.0;
    (Scaled[L] < 1.0 ? Small : Large).push_back(L);
  }
  for (size_t I : Large)
    Prob[I] = 1.0;
  for (size_t I : Small)
    Prob[I] = 1.0;
}

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_RNG_H
