//===- support/SpecParse.cpp - Diagnostic list/number parsing -------------===//

#include "support/SpecParse.h"

#include <cstdlib>

using namespace allocsim;

std::vector<std::string> allocsim::splitSpecList(const std::string &Text,
                                                 char Sep) {
  std::vector<std::string> Parts;
  if (Text.empty())
    return Parts;
  std::string::size_type Start = 0;
  for (;;) {
    std::string::size_type End = Text.find(Sep, Start);
    if (End == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
}

bool allocsim::parseSpecUnsigned(const std::string &Text,
                                 const std::string &What, uint32_t &Value,
                                 std::string &Error) {
  if (Text.empty()) {
    Error = "missing " + What;
    return false;
  }
  char *End = nullptr;
  unsigned long Parsed = std::strtoul(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0') {
    Error = "bad " + What + ": '" + Text + "' is not a number";
    return false;
  }
  if (Parsed == 0) {
    Error = "bad " + What + ": must be positive, got '" + Text + "'";
    return false;
  }
  if (Parsed > 0xFFFFFFFFul) {
    Error = "bad " + What + ": '" + Text + "' is out of range";
    return false;
  }
  Value = static_cast<uint32_t>(Parsed);
  return true;
}

std::vector<SpecKeyValue> allocsim::parseSpecKeyValues(const std::string &Text,
                                                       DiagEngine &Diags) {
  std::vector<SpecKeyValue> Axes;
  size_t Offset = 0;
  for (const std::string &Axis : splitSpecList(Text, ';')) {
    SourceLoc Loc{1, static_cast<uint32_t>(Offset + 1)};
    // The next axis starts after this one and its ';'.
    size_t AxisOffset = Offset;
    Offset += Axis.size() + 1;

    if (Axis.empty()) {
      Diags.error("spec-empty-axis", Loc,
                  "empty axis (stray or trailing ';')");
      continue;
    }
    std::string::size_type Eq = Axis.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      Diags.error("spec-missing-equals", Loc,
                  "bad axis '" + Axis + "': expected key=value");
      continue;
    }
    SpecKeyValue KV{Axis.substr(0, Eq), Axis.substr(Eq + 1), AxisOffset};
    if (KV.Value.empty()) {
      Diags.error("spec-empty-value", Loc,
                  "axis '" + KV.Key + "' has an empty value");
      continue;
    }
    bool Duplicate = false;
    for (const SpecKeyValue &Seen : Axes)
      if (Seen.Key == KV.Key) {
        Diags.error("spec-duplicate-axis", Loc,
                    "axis '" + KV.Key + "' given twice (first at column " +
                        std::to_string(Seen.Offset + 1) + ")");
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Axes.push_back(std::move(KV));
  }
  return Axes;
}

bool allocsim::parseSpecUnsignedList(const std::string &Text,
                                     const std::string &What,
                                     std::vector<uint32_t> &Values,
                                     std::string &Error) {
  Values.clear();
  for (const std::string &Item : splitSpecList(Text, ',')) {
    if (Item.empty()) {
      Error = "bad " + What + " list '" + Text +
              "': empty item (stray or trailing comma)";
      return false;
    }
    uint32_t Value = 0;
    if (!parseSpecUnsigned(Item, What, Value, Error))
      return false;
    Values.push_back(Value);
  }
  return true;
}
