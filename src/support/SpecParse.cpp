//===- support/SpecParse.cpp - Diagnostic list/number parsing -------------===//

#include "support/SpecParse.h"

#include <cstdlib>

using namespace allocsim;

std::vector<std::string> allocsim::splitSpecList(const std::string &Text,
                                                 char Sep) {
  std::vector<std::string> Parts;
  if (Text.empty())
    return Parts;
  std::string::size_type Start = 0;
  for (;;) {
    std::string::size_type End = Text.find(Sep, Start);
    if (End == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
}

bool allocsim::parseSpecUnsigned(const std::string &Text,
                                 const std::string &What, uint32_t &Value,
                                 std::string &Error) {
  if (Text.empty()) {
    Error = "missing " + What;
    return false;
  }
  char *End = nullptr;
  unsigned long Parsed = std::strtoul(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0') {
    Error = "bad " + What + ": '" + Text + "' is not a number";
    return false;
  }
  if (Parsed == 0) {
    Error = "bad " + What + ": must be positive, got '" + Text + "'";
    return false;
  }
  if (Parsed > 0xFFFFFFFFul) {
    Error = "bad " + What + ": '" + Text + "' is out of range";
    return false;
  }
  Value = static_cast<uint32_t>(Parsed);
  return true;
}

bool allocsim::parseSpecUnsignedList(const std::string &Text,
                                     const std::string &What,
                                     std::vector<uint32_t> &Values,
                                     std::string &Error) {
  Values.clear();
  for (const std::string &Item : splitSpecList(Text, ',')) {
    if (Item.empty()) {
      Error = "bad " + What + " list '" + Text +
              "': empty item (stray or trailing comma)";
      return false;
    }
    uint32_t Value = 0;
    if (!parseSpecUnsigned(Item, What, Value, Error))
      return false;
    Values.push_back(Value);
  }
  return true;
}
