//===- support/Table.cpp - Aligned text table / CSV emitter ---------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace allocsim;

std::string allocsim::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

Table::Table(std::vector<std::string> TableHeaders)
    : Headers(std::move(TableHeaders)) {
  assert(!Headers.empty() && "table needs at least one column");
}

void Table::beginRow() {
  assert((Rows.empty() || Rows.back().size() == Headers.size()) &&
         "previous row has wrong arity");
  Rows.emplace_back();
}

void Table::cell(std::string Value) {
  assert(!Rows.empty() && "cell() before beginRow()");
  assert(Rows.back().size() < Headers.size() && "too many cells in row");
  Rows.back().push_back(std::move(Value));
}

void Table::num(double Value, int Digits) {
  cell(formatDouble(Value, Digits));
}

void Table::num(uint64_t Value) { cell(std::to_string(Value)); }

void Table::renderText(std::ostream &OS, const std::string &Title) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  if (!Title.empty())
    OS << Title << "\n";

  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        OS << "  ";
      OS << Cells[I];
      // Right-pad all but the last column.
      if (I + 1 != Cells.size())
        OS << std::string(Widths[I] - Cells[I].size(), ' ');
    }
    OS << "\n";
  };

  EmitRow(Headers);
  size_t Total = 0;
  for (size_t I = 0; I != Widths.size(); ++I)
    Total += Widths[I] + (I == 0 ? 0 : 2);
  OS << std::string(Total, '-') << "\n";
  for (const auto &Row : Rows)
    EmitRow(Row);
}

void Table::renderCsv(std::ostream &OS) const {
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        OS << ",";
      OS << Cells[I];
    }
    OS << "\n";
  };
  EmitRow(Headers);
  for (const auto &Row : Rows)
    EmitRow(Row);
}
