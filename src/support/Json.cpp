//===- support/Json.cpp - Minimal JSON reader -----------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace allocsim;

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (ValueKind != Kind::Object)
    return nullptr;
  auto It = Object.find(Key);
  return It == Object.end() ? nullptr : &It->second;
}

namespace allocsim {

/// Recursive-descent parser over the whole input string.
class JsonParser {
public:
  JsonParser(const std::string &ParseText, std::string &ErrorOut)
      : Text(ParseText), Error(ErrorOut) {}

  bool run(JsonValue &Out) {
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing input after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Message) {
    Error = "offset " + std::to_string(Pos) + ": " + Message;
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C, const char *What) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool parseLiteral(const char *Literal, JsonValue &Out, JsonValue::Kind Kind,
                    bool BoolValue) {
    size_t Len = std::char_traits<char>::length(Literal);
    if (Text.compare(Pos, Len, Literal) != 0)
      return fail("bad literal");
    Pos += Len;
    Out.ValueKind = Kind;
    Out.Bool = BoolValue;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "'\"'"))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // Our emitters only \u-escape control bytes; encode the code point
        // as UTF-8 for completeness.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    std::string Token = Text.substr(Start, Pos - Start);
    if (Token.empty() || Token == "-")
      return fail("bad number");
    errno = 0;
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || errno == ERANGE)
      return fail("bad number '" + Token + "'");
    Out.ValueKind = JsonValue::Kind::Number;
    Out.Number = Value;
    // Exact-integer sidecar: counters must round-trip without a double trip.
    if (Token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      if (Token[0] == '-') {
        long long I = std::strtoll(Token.c_str(), &End, 10);
        if (End == Token.c_str() + Token.size() && errno != ERANGE) {
          Out.IsInteger = true;
          Out.Int = I;
          Out.Uint = 0;
        }
      } else {
        unsigned long long U = std::strtoull(Token.c_str(), &End, 10);
        if (End == Token.c_str() + Token.size() && errno != ERANGE) {
          Out.IsInteger = true;
          Out.Uint = U;
          Out.Int = U <= static_cast<uint64_t>(INT64_MAX)
                        ? static_cast<int64_t>(U)
                        : 0;
        }
      }
    }
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    bool Ok = [&] {
      switch (Text[Pos]) {
      case '{': {
        ++Pos;
        Out.ValueKind = JsonValue::Kind::Object;
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        for (;;) {
          std::string Key;
          skipSpace();
          if (!parseString(Key))
            return false;
          if (!consume(':', "':'"))
            return false;
          JsonValue Member;
          if (!parseValue(Member))
            return false;
          Out.Object[Key] = std::move(Member);
          skipSpace();
          if (Pos < Text.size() && Text[Pos] == ',') {
            ++Pos;
            continue;
          }
          return consume('}', "',' or '}'");
        }
      }
      case '[': {
        ++Pos;
        Out.ValueKind = JsonValue::Kind::Array;
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        for (;;) {
          JsonValue Element;
          if (!parseValue(Element))
            return false;
          Out.Array.push_back(std::move(Element));
          skipSpace();
          if (Pos < Text.size() && Text[Pos] == ',') {
            ++Pos;
            continue;
          }
          return consume(']', "',' or ']'");
        }
      }
      case '"':
        Out.ValueKind = JsonValue::Kind::String;
        return parseString(Out.Str);
      case 't':
        return parseLiteral("true", Out, JsonValue::Kind::Bool, true);
      case 'f':
        return parseLiteral("false", Out, JsonValue::Kind::Bool, false);
      case 'n':
        return parseLiteral("null", Out, JsonValue::Kind::Null, false);
      default:
        return parseNumber(Out);
      }
    }();
    --Depth;
    return Ok;
  }

  static constexpr unsigned MaxDepth = 64;

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace allocsim

bool JsonValue::parse(const std::string &Text, JsonValue &Out,
                      std::string &Error) {
  Out = JsonValue();
  JsonParser Parser(Text, Error);
  return Parser.run(Out);
}
