//===- support/Error.cpp - Fatal error reporting --------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace allocsim;

void allocsim::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "allocsim fatal error: %s\n", Message.c_str());
  std::abort();
}

void allocsim::unreachable(const char *Message) {
  std::fprintf(stderr, "allocsim unreachable: %s\n", Message);
  std::abort();
}
