//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting helpers. The library does not use exceptions; API
/// misuse is a programmatic error handled with assertions, and unrecoverable
/// environmental failures (e.g. an unreadable trace file in tool code) call
/// reportFatalError.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_ERROR_H
#define ALLOCSIM_SUPPORT_ERROR_H

#include <string>

namespace allocsim {

/// Prints "allocsim fatal error: <Message>" to stderr and aborts. Never
/// returns.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in control flow that must be unreachable if program
/// invariants hold. Aborts with the message.
[[noreturn]] void unreachable(const char *Message);

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_ERROR_H
