//===- support/SpecParse.h - Diagnostic list/number parsing -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict, diagnostic-returning parsers for the comma/colon-separated spec
/// strings the tools accept (--caches, --paging, --matrix). Unlike the old
/// ad-hoc splitting, empty items are *kept*, so malformed specs such as
/// "16,,64" or a trailing comma surface as errors instead of being silently
/// swallowed. Nothing here aborts: every parser reports failure through a
/// bool + error message so tools can print a usage-friendly diagnostic and
/// exit nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_SPECPARSE_H
#define ALLOCSIM_SUPPORT_SPECPARSE_H

#include <cstdint>
#include <string>
#include <vector>

namespace allocsim {

/// Splits \p Text on \p Sep, keeping empty items (so validation can reject
/// them with a precise message). An empty \p Text yields an empty list, not
/// a list with one empty item.
std::vector<std::string> splitSpecList(const std::string &Text, char Sep);

/// Parses a positive decimal integer. On failure, returns false and sets
/// \p Error to a message naming \p What and the offending text.
bool parseSpecUnsigned(const std::string &Text, const std::string &What,
                       uint32_t &Value, std::string &Error);

/// Parses a comma-separated list of positive integers (e.g. the --paging
/// memory sizes). An empty \p Text yields an empty list. Empty items,
/// trailing separators, and non-numeric items are errors.
bool parseSpecUnsignedList(const std::string &Text, const std::string &What,
                           std::vector<uint32_t> &Values, std::string &Error);

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_SPECPARSE_H
