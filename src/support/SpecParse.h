//===- support/SpecParse.h - Diagnostic list/number parsing -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict, diagnostic-returning parsers for the comma/colon-separated spec
/// strings the tools accept (--caches, --paging, --matrix). Unlike the old
/// ad-hoc splitting, empty items are *kept*, so malformed specs such as
/// "16,,64" or a trailing comma surface as errors instead of being silently
/// swallowed. Nothing here aborts: every parser reports failure through a
/// bool + error message so tools can print a usage-friendly diagnostic and
/// exit nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_SPECPARSE_H
#define ALLOCSIM_SUPPORT_SPECPARSE_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace allocsim {

/// Splits \p Text on \p Sep, keeping empty items (so validation can reject
/// them with a precise message). An empty \p Text yields an empty list, not
/// a list with one empty item.
std::vector<std::string> splitSpecList(const std::string &Text, char Sep);

/// Parses a positive decimal integer. On failure, returns false and sets
/// \p Error to a message naming \p What and the offending text.
bool parseSpecUnsigned(const std::string &Text, const std::string &What,
                       uint32_t &Value, std::string &Error);

/// Parses a comma-separated list of positive integers (e.g. the --paging
/// memory sizes). An empty \p Text yields an empty list. Empty items,
/// trailing separators, and non-numeric items are errors.
bool parseSpecUnsignedList(const std::string &Text, const std::string &What,
                           std::vector<uint32_t> &Values, std::string &Error);

/// One `key=value` axis of a semicolon-separated spec such as --matrix,
/// with where its key starts in the original text (0-based; diagnostics
/// render it as column Offset+1 on line 1 — specs are one-liners).
struct SpecKeyValue {
  std::string Key;
  std::string Value;
  size_t Offset = 0;
};

/// Splits a `key=value;key=value` spec into its axes, reporting every
/// structural problem into \p Diags and continuing past each one:
///
///   spec-empty-axis      (error) empty axis (stray or trailing ';')
///   spec-missing-equals  (error) axis without '=' or with an empty key
///   spec-duplicate-axis  (error) key given twice (the old parser's
///                                behavior was silently inconsistent:
///                                list axes accumulated, scalar axes took
///                                the last write — now both are rejected)
///   spec-empty-value     (error) axis with an empty value ("workloads=")
///
/// Axes that parse cleanly (first occurrence on duplicates) are returned in
/// spec order. Key *meaning* — known axis names, value syntax — is the
/// caller's to check; parseMatrixSpec stops at the first error, the
/// matrix-spec linter (analyze/SpecLint.h) reports all of them.
std::vector<SpecKeyValue> parseSpecKeyValues(const std::string &Text,
                                             DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_SPECPARSE_H
