//===- support/Histogram.cpp - Integer-keyed histogram --------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

std::vector<uint64_t> Histogram::topKeys(size_t N) const {
  std::vector<std::pair<uint64_t, uint64_t>> Entries(Counts.begin(),
                                                     Counts.end());
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const auto &A, const auto &B) {
                     if (A.second != B.second)
                       return A.second > B.second;
                     return A.first < B.first;
                   });
  if (Entries.size() > N)
    Entries.resize(N);
  std::vector<uint64_t> Keys;
  Keys.reserve(Entries.size());
  for (const auto &[Key, Count] : Entries)
    Keys.push_back(Key);
  return Keys;
}

uint64_t Histogram::quantileKey(double Fraction) const {
  assert(!Counts.empty() && "quantile of empty histogram");
  assert(Fraction > 0 && Fraction <= 1 && "fraction must be in (0, 1]");
  uint64_t Target =
      static_cast<uint64_t>(Fraction * static_cast<double>(total()));
  if (Target == 0)
    Target = 1;
  uint64_t Seen = 0;
  for (const auto &[Key, Count] : Counts) {
    Seen += Count;
    if (Seen >= Target)
      return Key;
  }
  return Counts.rbegin()->first;
}
