//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal --flag=value / --flag value parser for the benchmark and example
/// binaries. Unknown flags are fatal (they usually indicate a typo in an
/// experiment script).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_SUPPORT_COMMANDLINE_H
#define ALLOCSIM_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace allocsim {

/// Parses argv into string-valued flags plus positional arguments.
class CommandLine {
public:
  /// Registers a flag with a default value and help text. Must be called for
  /// every flag before parse(); parse() rejects unregistered flags.
  void addFlag(const std::string &Name, const std::string &Default,
               const std::string &Help);

  /// Parses argv. Returns false (after printing usage) if --help was given
  /// or parsing failed.
  bool parse(int Argc, const char *const *Argv);

  /// Flag accessors; the flag must have been registered.
  const std::string &getString(const std::string &Name) const;
  int64_t getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  bool getBool(const std::string &Name) const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// Prints usage to stderr.
  void printHelp(const char *Program) const;

private:
  struct Flag {
    std::string Value;
    std::string Default;
    std::string Help;
  };
  std::map<std::string, Flag> Flags;
  std::vector<std::string> Positional;
};

} // namespace allocsim

#endif // ALLOCSIM_SUPPORT_COMMANDLINE_H
