//===- metrics/CostModel.h - Instruction accounting -------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction-count accounting, standing in for the paper's QP utility.
/// The simulated application and the allocators charge instruction costs as
/// they execute; the split between application and allocator instructions
/// reproduces the paper's Figure 1 ("percent of time in malloc and free"),
/// and the totals feed the execution-time estimate
///
///     T = I + (M x P) x D
///
/// (instructions + missRate x missPenalty x dataRefs, all instructions
/// single-cycle), which is exactly the paper's Section 4.2 model.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_METRICS_COSTMODEL_H
#define ALLOCSIM_METRICS_COSTMODEL_H

#include <cstdint>

namespace allocsim {

/// Accumulates instruction counts attributed to the application program and
/// to the storage allocator.
class CostModel {
public:
  void chargeApp(uint64_t Instructions) { AppInstr += Instructions; }
  void chargeAlloc(uint64_t Instructions) { AllocInstr += Instructions; }

  uint64_t appInstructions() const { return AppInstr; }
  uint64_t allocInstructions() const { return AllocInstr; }
  uint64_t totalInstructions() const { return AppInstr + AllocInstr; }

  /// Fraction of all instructions spent in malloc/free (Figure 1).
  double allocFraction() const {
    uint64_t Total = totalInstructions();
    return Total == 0 ? 0.0
                      : static_cast<double>(AllocInstr) /
                            static_cast<double>(Total);
  }

  void reset() { AppInstr = AllocInstr = 0; }

private:
  uint64_t AppInstr = 0;
  uint64_t AllocInstr = 0;
};

/// The paper's execution-time estimate (in cycles; 1 instruction = 1 cycle).
struct TimeEstimate {
  uint64_t Instructions = 0;
  uint64_t DataRefs = 0;
  double MissRate = 0.0;
  uint32_t MissPenalty = 25;

  /// Total estimated cycles: I + (M * P) * D.
  double totalCycles() const {
    return static_cast<double>(Instructions) + missCycles();
  }

  /// Cycles spent waiting on cache misses: (M * P) * D.
  double missCycles() const {
    return MissRate * static_cast<double>(MissPenalty) *
           static_cast<double>(DataRefs);
  }

  /// Converts cycles to seconds for a given clock (the paper's DECstation
  /// 5000/120 runs at 25 MHz).
  double seconds(double ClockHz = 25.0e6) const {
    return totalCycles() / ClockHz;
  }

  double missSeconds(double ClockHz = 25.0e6) const {
    return missCycles() / ClockHz;
  }
};

} // namespace allocsim

#endif // ALLOCSIM_METRICS_COSTMODEL_H
