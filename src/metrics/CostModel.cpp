//===- metrics/CostModel.cpp - Instruction accounting ---------------------===//

// CostModel and TimeEstimate are header-only; this file anchors the library.

#include "metrics/CostModel.h"

namespace allocsim {
// Intentionally empty.
} // namespace allocsim
