//===- check/ShadowHeap.cpp - Byte-state shadow sanitizer -----------------===//

#include "check/ShadowHeap.h"

#include "alloc/Allocator.h"

#include <sstream>

using namespace allocsim;

namespace {

/// Word-rounded extent of a user range: allocators hand out word-aligned
/// storage and the driver touches objects word by word.
uint32_t roundToWords(uint32_t Size) { return (Size + 3) & ~3u; }

std::string hexAddr(Addr Address) {
  std::ostringstream Out;
  Out << "0x" << std::hex << Address;
  return Out.str();
}

} // namespace

const char *allocsim::byteStateName(ByteState State) {
  switch (State) {
  case ByteState::Unallocated:
    return "unallocated";
  case ByteState::UserLive:
    return "user-live";
  case ByteState::UserFreed:
    return "user-freed";
  case ByteState::Metadata:
    return "metadata";
  }
  return "?";
}

ShadowHeap::ShadowHeap(const SimHeap &ShadowedHeap, ViolationLog &ShadowLog)
    : Heap(ShadowedHeap), Log(ShadowLog) {}

uint32_t ShadowHeap::syncToBreak() {
  uint32_t Span = Heap.heapBytes();
  if (States.size() < Span)
    States.resize(Span, ByteState::Unallocated);
  return Span;
}

ByteState ShadowHeap::byteState(Addr Address) const {
  if (Address < Heap.base())
    return ByteState::Unallocated;
  uint64_t Offset = Address - Heap.base();
  return Offset < States.size() ? States[Offset] : ByteState::Unallocated;
}

bool ShadowHeap::rangeHas(Addr Address, uint32_t Size,
                          ByteState State) const {
  for (uint32_t I = 0; I != Size; ++I)
    if (byteState(Address + I) == State)
      return true;
  return false;
}

void ShadowHeap::setRange(Addr Address, uint32_t Size, ByteState State) {
  uint32_t Span = syncToBreak();
  for (uint32_t I = 0; I != Size; ++I) {
    uint64_t Offset = uint64_t(Address) + I - Heap.base();
    if (Offset < Span)
      States[Offset] = State;
  }
}

void ShadowHeap::reportViolation(ViolationKind Kind, std::string AllocName,
                                 Addr Address, AccessSource Source,
                                 std::string Detail) {
  CheckViolation V;
  V.Kind = Kind;
  V.AllocatorName = std::move(AllocName);
  V.Address = Address;
  V.Source = Source;
  V.OpIndex = OpIndex;
  V.Detail = std::move(Detail);
  Log.report(std::move(V));
}

void ShadowHeap::access(const MemAccess &Access) {
  // Other segments (stack/static) are outside the allocators' domain.
  if (Access.Address < Heap.base())
    return;

  uint32_t Span = syncToBreak();
  uint64_t Offset = uint64_t(Access.Address) - Heap.base();
  if (Offset + Access.Size > Span) {
    reportViolation(ViolationKind::OutOfSegment, BusAllocName,
                    Access.Address, Access.Source,
                    "reference past the segment break " +
                        hexAddr(Heap.brk()));
    return;
  }

  if (Access.Source == AccessSource::Application) {
    // The application may touch only its own live objects.
    for (uint32_t I = 0; I != Access.Size; ++I) {
      ByteState State = States[Offset + I];
      if (State == ByteState::UserLive)
        continue;
      ViolationKind Kind = State == ByteState::UserFreed
                               ? ViolationKind::UseAfterFree
                               : State == ByteState::Metadata
                                     ? ViolationKind::MetadataUserOverlap
                                     : ViolationKind::WildAccess;
      reportViolation(Kind, BusAllocName, Access.Address + I, Access.Source,
                      std::string("application ") +
                          (Access.Kind == AccessKind::Write ? "write"
                                                            : "read") +
                          " of " + byteStateName(State) + " byte");
      return;
    }
    return;
  }

  // Allocator (and tag-emulation) stores create metadata; storing into a
  // live object is corruption. Reads are unconstrained: allocators
  // legitimately read fresh sbrk storage and their own bookkeeping.
  if (Access.Kind == AccessKind::Write) {
    for (uint32_t I = 0; I != Access.Size; ++I) {
      if (States[Offset + I] == ByteState::UserLive) {
        reportViolation(ViolationKind::MetadataUserOverlap, BusAllocName,
                        Access.Address + I, Access.Source,
                        "allocator store into live user data");
        break;
      }
    }
    for (uint32_t I = 0; I != Access.Size; ++I)
      States[Offset + I] = ByteState::Metadata;
  }
}

void ShadowHeap::noteUserRange(const Allocator &Alloc, Addr Address,
                               uint32_t Size) {
  drainPending();
  uint32_t Extent = roundToWords(Size);
  auto Existing = LiveRanges.find(Address);
  if (Existing != LiveRanges.end()) {
    // Nested delegation (QuickFit/Custom -> GNU G++ backend) annotates the
    // same object twice; the identical range is idempotent.
    if (roundToWords(Existing->second) == Extent)
      return;
    reportViolation(ViolationKind::OverlappingAlloc, Alloc.name(), Address,
                    AccessSource::Allocator,
                    "allocation of " + std::to_string(Size) +
                        " bytes at an address already live with " +
                        std::to_string(Existing->second) + " bytes");
    return;
  }
  for (uint32_t I = 0; I != Extent; ++I) {
    if (byteState(Address + I) == ByteState::UserLive) {
      reportViolation(ViolationKind::OverlappingAlloc, Alloc.name(),
                      Address + I, AccessSource::Allocator,
                      "new object [" + hexAddr(Address) + ", " +
                          hexAddr(Address + Extent) +
                          ") overlaps a live object");
      break;
    }
  }
  setRange(Address, Extent, ByteState::UserLive);
  LiveRanges.emplace(Address, Size);
  FreedBases.erase(Address);
}

void ShadowHeap::noteFreedRange(const Allocator &Alloc, Addr Address,
                                uint32_t Size) {
  drainPending();
  (void)Alloc;
  // The nested backend re-announces frees the outer allocator already
  // processed; only the first annotation transitions the range.
  if (LiveRanges.erase(Address) == 0)
    return;
  setRange(Address, roundToWords(Size), ByteState::UserFreed);
  FreedBases.insert(Address);
}

void ShadowHeap::noteMetadataRange(const Allocator &Alloc, Addr Address,
                                   uint32_t Size) {
  drainPending();
  for (uint32_t I = 0; I != Size; ++I) {
    if (byteState(Address + I) == ByteState::UserLive) {
      reportViolation(ViolationKind::MetadataUserOverlap, Alloc.name(),
                      Address + I, AccessSource::Allocator,
                      "metadata annotation over live user data");
      break;
    }
  }
  setRange(Address, Size, ByteState::Metadata);
}

bool ShadowHeap::noteInvalidFree(const Allocator &Alloc, Addr Address) {
  drainPending();
  if (FreedBases.count(Address))
    reportViolation(ViolationKind::DoubleFree, Alloc.name(), Address,
                    AccessSource::Application,
                    "object was already freed and not reallocated");
  else
    reportViolation(ViolationKind::InvalidFree, Alloc.name(), Address,
                    AccessSource::Application,
                    std::string("address is ") +
                        byteStateName(byteState(Address)));
  return true;
}
