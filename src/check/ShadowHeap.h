//===- check/ShadowHeap.h - Byte-state shadow sanitizer ---------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ShadowHeap mirrors every byte of the simulated heap segment with a
/// semantic state, the same technique shadow-memory sanitizers use for real
/// allocators. State transitions come from two feeds:
///
///  * Allocator hooks (HeapStateObserver): malloc marks the returned range
///    UserLive, free marks it UserFreed, and allocators annotate statically
///    carved metadata (sentinels, freelist-head arrays, mapping tables).
///  * The memory bus (AccessSink): allocator and tag-emulation stores mark
///    their targets Metadata, since in this simulator the allocator only
///    ever writes bookkeeping into the heap.
///
/// Every bus reference is validated against the mirror before the state is
/// updated, which catches use-after-free, wild accesses, metadata/user
/// overlap, double frees, and references past the segment break — each
/// reported with the offending allocator, address, and access source. The
/// shadow is a pure observer: it emits no bus traffic and charges no
/// CostModel instructions, so enabling it cannot perturb a measurement.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CHECK_SHADOWHEAP_H
#define ALLOCSIM_CHECK_SHADOWHEAP_H

#include "check/HeapStateObserver.h"
#include "check/Violation.h"
#include "mem/SimHeap.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace allocsim {

/// Semantic state of one simulated heap byte.
enum class ByteState : uint8_t {
  /// Obtained from sbrk but never handed out or written by the allocator.
  Unallocated,
  /// Inside an object currently owned by the application.
  UserLive,
  /// Inside an object that was freed and not yet reallocated.
  UserFreed,
  /// Allocator bookkeeping: tags, links, headers, tables, sentinels.
  Metadata,
};

const char *byteStateName(ByteState State);

/// Shadow mirror of a SimHeap; validates the reference stream.
class ShadowHeap final : public AccessSink, public HeapStateObserver {
public:
  ShadowHeap(const SimHeap &Heap, ViolationLog &Log);

  /// AccessSink: validates one bus reference, then folds it into the
  /// mirror (allocator writes become Metadata).
  void access(const MemAccess &Access) override;

  /// HeapStateObserver hooks (see HeapStateObserver.h). Ranges are rounded
  /// up to whole words: every allocator hands out word-aligned storage and
  /// the driver touches objects at word granularity.
  void noteUserRange(const Allocator &Alloc, Addr Address,
                     uint32_t Size) override;
  void noteFreedRange(const Allocator &Alloc, Addr Address,
                      uint32_t Size) override;
  void noteMetadataRange(const Allocator &Alloc, Addr Address,
                         uint32_t Size) override;
  bool noteInvalidFree(const Allocator &Alloc, Addr Address) override;

  /// Current state of one byte (Unallocated for bytes beyond the break).
  ByteState byteState(Addr Address) const;

  /// True if any byte of [Address, Address+Size) has state \p State.
  bool rangeHas(Addr Address, uint32_t Size, ByteState State) const;

  /// Sets the malloc/free operation index stamped onto diagnostics.
  void setOpIndex(uint64_t Index) { OpIndex = Index; }

  /// Display name used for bus-level diagnostics (the experiment's outer
  /// allocator; hook-level reports name the exact allocator instead).
  void setAllocatorName(std::string Name) { BusAllocName = std::move(Name); }

  /// Registers the bus to drain before every state transition. The shadow's
  /// verdict on a reference depends only on the interleaving of references
  /// and state transitions (the note* hooks); flushing the bus at the top
  /// of every hook delivers all staged references under the *pre-transition*
  /// state — exactly where the scalar bus delivered them — so batched
  /// delivery is violation-for-violation identical to scalar delivery.
  /// (HeapCheck wires this automatically; null disables draining.)
  void setFlushBus(MemoryBus *Bus) { FlushBus = Bus; }

private:
  /// Delivers staged bus references before a state transition.
  void drainPending() {
    if (FlushBus)
      FlushBus->flush();
  }

  void reportViolation(ViolationKind Kind, std::string AllocName,
                       Addr Address, AccessSource Source,
                       std::string Detail);
  void setRange(Addr Address, uint32_t Size, ByteState State);
  /// Grows the mirror to the current break; returns the mirror span.
  uint32_t syncToBreak();

  const SimHeap &Heap;
  ViolationLog &Log;
  std::vector<ByteState> States;
  /// Live ranges by base address, to keep nested-delegation annotations
  /// (QuickFit/Custom forwarding to their GNU G++ backend) idempotent and
  /// to distinguish re-annotation from genuine overlap.
  std::unordered_map<Addr, uint32_t> LiveRanges;
  /// Base addresses freed and not since reallocated; distinguishes a double
  /// free from a free of a never-allocated address even after the allocator
  /// reuses the object's first words for links.
  std::unordered_set<Addr> FreedBases;
  std::string BusAllocName = "?";
  uint64_t OpIndex = 0;
  /// Drained before every state transition; null when the shadow is used
  /// standalone (tests) or the bus delivers scalar anyway.
  MemoryBus *FlushBus = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_CHECK_SHADOWHEAP_H
