//===- check/HeapChecker.h - Per-allocator invariant walkers ----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant walkers: one per AllocatorKind, each traversing the
/// allocator's in-heap data structures between operations and verifying
/// the invariants that allocator's algorithm maintains —
///
///  * FirstFit / BestFit / GNU G++: freelist acyclicity and doubly-linked
///    symmetry, boundary-tag front/back agreement, no allocated blocks on
///    the list, coalescing completeness (no two adjacent free blocks),
///    address order under the sorted discipline, rover validity, bin
///    membership for the segregated bins.
///  * BSD / QuickFit / Custom: segregated-list integrity, no block on two
///    lists, exact-size-class header agreement, and (with a shadow
///    attached) no freelist entry inside live user data.
///  * GnuLocal: descriptor-table type validity, address-ordered free-run
///    list linkage and run coalescing, fragment-class membership, and
///    fragment free-count agreement between descriptors and class lists.
///
/// Walkers read the heap exclusively through the untraced peek accessors:
/// a check pass adds no bus traffic and no CostModel charges, so checked
/// and unchecked runs produce bit-identical measurements.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CHECK_HEAPCHECKER_H
#define ALLOCSIM_CHECK_HEAPCHECKER_H

#include "check/ShadowHeap.h"
#include "check/Violation.h"

#include <memory>

namespace allocsim {

class Allocator;

/// Everything a walker needs for one pass.
struct CheckContext {
  const SimHeap &Heap;
  /// Optional cross-checking against the shadow mirror.
  const ShadowHeap *Shadow = nullptr;
  ViolationLog &Log;
  /// Operation index stamped onto diagnostics.
  uint64_t OpIndex = 0;
};

/// One allocator's invariant walker.
class HeapChecker {
public:
  virtual ~HeapChecker();

  /// Walks the allocator's heap structures, reporting violations to
  /// \p Ctx.Log. Must not emit bus traffic or charge instruction cost.
  virtual void check(CheckContext &Ctx) const = 0;

  /// Display name of the allocator this walker covers.
  virtual const char *allocatorName() const = 0;
};

/// Builds the walker matching \p Alloc's dynamic kind (including the
/// nested general-backend walkers of QuickFit and Custom).
std::unique_ptr<HeapChecker> createHeapChecker(const Allocator &Alloc);

} // namespace allocsim

#endif // ALLOCSIM_CHECK_HEAPCHECKER_H
