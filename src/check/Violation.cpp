//===- check/Violation.cpp - Heap-integrity violation records -------------===//

#include "check/Violation.h"

#include "support/Error.h"

#include <sstream>

using namespace allocsim;

const char *allocsim::violationKindName(ViolationKind Kind) {
  switch (Kind) {
  case ViolationKind::FreelistCorrupt:
    return "corrupt freelist link";
  case ViolationKind::BoundaryTagMismatch:
    return "boundary-tag mismatch";
  case ViolationKind::MissedCoalesce:
    return "adjacent free blocks not coalesced";
  case ViolationKind::AllocatedOnFreelist:
    return "allocated block on freelist";
  case ViolationKind::SizeClassMismatch:
    return "size-class membership violation";
  case ViolationKind::DescriptorCorrupt:
    return "corrupt block descriptor";
  case ViolationKind::AccountingMismatch:
    return "bookkeeping mismatch";
  case ViolationKind::DoubleFree:
    return "double free";
  case ViolationKind::InvalidFree:
    return "free of unknown address";
  case ViolationKind::UseAfterFree:
    return "use after free";
  case ViolationKind::WildAccess:
    return "access to unallocated heap";
  case ViolationKind::MetadataUserOverlap:
    return "metadata/user overlap";
  case ViolationKind::OverlappingAlloc:
    return "overlapping allocation";
  case ViolationKind::OutOfSegment:
    return "out-of-segment access";
  }
  return "unknown violation";
}

std::string CheckViolation::message() const {
  std::ostringstream Out;
  Out << "HeapCheck[" << AllocatorName << "] " << violationKindName(Kind)
      << " at 0x" << std::hex << Address << std::dec;
  if (!Detail.empty())
    Out << ": " << Detail;
  Out << " (op " << OpIndex << ", source " << accessSourceName(Source)
      << ")";
  return Out.str();
}

void ViolationLog::report(CheckViolation V) {
  ++Count;
  if (AbortOnViolation)
    reportFatalError(V.message());
  if (Records.size() < MaxRecorded)
    Records.push_back(std::move(V));
}
