//===- check/HeapStateObserver.h - Allocator state-annotation hooks -*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hook interface through which allocators annotate the semantic state
/// of heap bytes for the HeapCheck subsystem. The interface is header-only
/// so src/alloc can depend on it without linking against allocsim_check;
/// ShadowHeap is the production implementation.
///
/// Allocators call these hooks from the Allocator base class (user ranges,
/// freed ranges, invalid frees) and from per-allocator onShadowAttached
/// overrides (statically carved metadata such as freelist-head arrays and
/// sentinels that were initialized with untraced pokes). Metadata written
/// through the traced store helpers is annotated automatically by the
/// shadow's bus tap and needs no explicit hook call.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CHECK_HEAPSTATEOBSERVER_H
#define ALLOCSIM_CHECK_HEAPSTATEOBSERVER_H

#include "mem/MemAccess.h"

#include <cstdint>

namespace allocsim {

class Allocator;

/// Receiver of allocator state annotations (implemented by ShadowHeap).
class HeapStateObserver {
public:
  virtual ~HeapStateObserver() = default;

  /// [Address, Address+Size) was just handed to the application by
  /// \p Alloc. Size is the requested (unrounded) size.
  virtual void noteUserRange(const Allocator &Alloc, Addr Address,
                             uint32_t Size) = 0;

  /// The live object at [Address, Address+Size) was just released by the
  /// application (called before the allocator recycles the storage).
  virtual void noteFreedRange(const Allocator &Alloc, Addr Address,
                              uint32_t Size) = 0;

  /// [Address, Address+Size) holds allocator metadata (freelist heads,
  /// sentinels, mapping tables) that was or will be written untraced.
  virtual void noteMetadataRange(const Allocator &Alloc, Addr Address,
                                 uint32_t Size) = 0;

  /// The application freed \p Address, which is not a live object (double
  /// free or wild free). Returns true if the event was recorded and the
  /// caller should skip the free; false to fall back to a fatal error.
  virtual bool noteInvalidFree(const Allocator &Alloc, Addr Address) = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_CHECK_HEAPSTATEOBSERVER_H
