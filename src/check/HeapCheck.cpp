//===- check/HeapCheck.cpp - Heap-integrity checking bundle ---------------===//

#include "check/HeapCheck.h"

#include "alloc/Allocator.h"
#include "mem/MemoryBus.h"
#include "support/Error.h"

#include <algorithm>
#include <cctype>

using namespace allocsim;

const char *allocsim::checkLevelName(CheckLevel Level) {
  switch (Level) {
  case CheckLevel::Off:
    return "off";
  case CheckLevel::Fast:
    return "fast";
  case CheckLevel::Full:
    return "full";
  }
  unreachable("unknown check level");
}

CheckLevel allocsim::parseCheckLevel(const std::string &Name) {
  std::string Lower = Name;
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "off")
    return CheckLevel::Off;
  if (Lower == "fast")
    return CheckLevel::Fast;
  if (Lower == "full")
    return CheckLevel::Full;
  reportFatalError("unknown check level '" + Name +
                   "' (expected off, fast, or full)");
}

HeapCheck::HeapCheck(const CheckPolicy &CheckedPolicy, SimHeap &CheckedHeap,
                     MemoryBus &TapBus)
    : Policy(CheckedPolicy), Bus(TapBus), Heap(CheckedHeap),
      Log(Policy.AbortOnViolation, Policy.MaxViolations), Shadow(Heap, Log) {
  assert(Policy.Level != CheckLevel::Off &&
         "HeapCheck constructed with checking disabled");
  Bus.attach(&Shadow);
  // Under batched delivery the shadow drains the bus before every state
  // transition, which keeps its verdicts identical to scalar delivery (see
  // ShadowHeap::setFlushBus).
  Shadow.setFlushBus(&Bus);
}

HeapCheck::~HeapCheck() { Bus.detach(&Shadow); }

void HeapCheck::attachAllocator(Allocator &Alloc) {
  Checkers.push_back(createHeapChecker(Alloc));
  Shadow.setAllocatorName(Alloc.name());
  Alloc.attachShadow(&Shadow);
}

void HeapCheck::onOperation() {
  // The operation boundary is a flush point: references emitted during the
  // completed malloc/free must reach the shadow stamped with *this*
  // operation's index, and a due invariant walk must observe a fully
  // delivered stream.
  Bus.flush();
  ++Ops;
  Shadow.setOpIndex(Ops);
  if (Policy.Level == CheckLevel::Full && Policy.IntervalOps != 0 &&
      Ops % Policy.IntervalOps == 0)
    runWalk();
}

void HeapCheck::runWalk() {
  Bus.flush();
  ++Walks;
  CheckContext Ctx{Heap, &Shadow, Log, Ops};
  for (const std::unique_ptr<HeapChecker> &Checker : Checkers)
    Checker->check(Ctx);
}

void HeapCheck::finalCheck() {
  if (Policy.Level == CheckLevel::Full)
    runWalk();
}
