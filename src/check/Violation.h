//===- check/Violation.h - Heap-integrity violation records -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The violation record every HeapCheck detector produces: which invariant
/// broke, in which allocator, at which simulated address, and from which
/// access source — precise enough to act on without rerunning. ViolationLog
/// collects records and, in abort mode, turns the first one into a fatal
/// error so corrupted experiments can never silently produce figures.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CHECK_VIOLATION_H
#define ALLOCSIM_CHECK_VIOLATION_H

#include "mem/MemAccess.h"

#include <string>
#include <vector>

namespace allocsim {

/// The invariant classes HeapCheck distinguishes.
enum class ViolationKind {
  /// Freelist link is off-heap, misaligned, asymmetric, or cyclic.
  FreelistCorrupt,
  /// Boundary-tag header and footer of a block disagree.
  BoundaryTagMismatch,
  /// Two adjacent free blocks were not coalesced.
  MissedCoalesce,
  /// A block marked allocated appears on a free structure.
  AllocatedOnFreelist,
  /// A free structure entry violates its size class / bin / fragment class.
  SizeClassMismatch,
  /// A GnuLocal block descriptor is malformed.
  DescriptorCorrupt,
  /// Free-structure bookkeeping disagrees with itself (e.g. fragment
  /// counts vs. list membership).
  AccountingMismatch,
  /// free() of an address whose bytes are already freed.
  DoubleFree,
  /// free() of an address that was never returned by malloc.
  InvalidFree,
  /// Application access to freed bytes.
  UseAfterFree,
  /// Application access to bytes never handed out.
  WildAccess,
  /// Allocator metadata and live user data overlap (allocator write into a
  /// live object, metadata annotation over a live object, or application
  /// access to metadata).
  MetadataUserOverlap,
  /// New allocation overlaps an existing live allocation.
  OverlappingAlloc,
  /// Access to heap-segment addresses beyond the current break.
  OutOfSegment,
};

const char *violationKindName(ViolationKind Kind);

/// One detected integrity violation.
struct CheckViolation {
  ViolationKind Kind = ViolationKind::FreelistCorrupt;
  /// Display name of the offending allocator ("FirstFit", "BSD", ...).
  std::string AllocatorName;
  /// Simulated address the violation concerns.
  Addr Address = 0;
  /// Source of the offending access, where one exists.
  AccessSource Source = AccessSource::Allocator;
  /// Malloc/free operation index at detection time.
  uint64_t OpIndex = 0;
  /// Human-readable specifics (expected/actual values, list identity...).
  std::string Detail;

  /// Full one-line diagnostic.
  std::string message() const;
};

/// Collects violations; optionally escalates the first to a fatal error.
class ViolationLog {
public:
  explicit ViolationLog(bool AbortOnFirst = true, size_t RecordCap = 256)
      : AbortOnViolation(AbortOnFirst), MaxRecorded(RecordCap) {}

  /// Records \p V (up to MaxRecorded full records; the count is exact
  /// regardless). In abort mode the first report is fatal.
  void report(CheckViolation V);

  const std::vector<CheckViolation> &violations() const { return Records; }
  uint64_t count() const { return Count; }
  bool empty() const { return Count == 0; }

private:
  bool AbortOnViolation;
  size_t MaxRecorded;
  std::vector<CheckViolation> Records;
  uint64_t Count = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_CHECK_VIOLATION_H
