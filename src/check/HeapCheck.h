//===- check/HeapCheck.h - Heap-integrity checking bundle -------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HeapCheck bundles the two integrity layers into one switchable facility:
///
///  * fast — the ShadowHeap sanitizer taps the memory bus and the allocator
///    state hooks, validating every reference as it happens.
///  * full — fast, plus the per-allocator invariant walkers run over the
///    complete heap structure every CheckPolicy::IntervalOps operations and
///    once more at the end of the run.
///
/// Both layers observe through untraced accessors only: with checking
/// enabled the traced reference stream and the CostModel instruction counts
/// are bit-identical to an unchecked run.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_CHECK_HEAPCHECK_H
#define ALLOCSIM_CHECK_HEAPCHECK_H

#include "check/HeapChecker.h"
#include "check/ShadowHeap.h"
#include "check/Violation.h"

#include <memory>
#include <string>
#include <vector>

namespace allocsim {

class Allocator;
class MemoryBus;

/// How much integrity checking to run.
enum class CheckLevel {
  Off,  ///< No checking (the measurement default).
  Fast, ///< ShadowHeap sanitizer on every reference.
  Full, ///< Fast + periodic invariant walks.
};

const char *checkLevelName(CheckLevel Level);

/// Parses "off" / "fast" / "full" (case-insensitive); fatal on anything else.
CheckLevel parseCheckLevel(const std::string &Name);

/// Configuration for a HeapCheck instance.
struct CheckPolicy {
  CheckLevel Level = CheckLevel::Off;
  /// Run the invariant walkers every this many malloc/free operations
  /// (Full only; 0 disables the periodic walks, leaving the final walk).
  uint32_t IntervalOps = 64;
  /// Abort with a fatal error on the first violation (the default for
  /// interactive use); tests and tooling record instead.
  bool AbortOnViolation = true;
  /// Violations retained verbatim when recording.
  size_t MaxViolations = 256;
};

/// The checking facility for one experiment: owns the violation log and the
/// shadow, taps the bus, and drives the walkers.
class HeapCheck {
public:
  /// Constructs the facility and taps \p Bus. Policy.Level must not be Off —
  /// callers skip construction entirely when checking is disabled.
  HeapCheck(const CheckPolicy &Policy, SimHeap &Heap, MemoryBus &Bus);
  ~HeapCheck();

  HeapCheck(const HeapCheck &) = delete;
  HeapCheck &operator=(const HeapCheck &) = delete;

  /// Attaches the shadow to \p Alloc and builds its invariant walker. The
  /// allocator must not be used (malloc/free/runWalk) after this HeapCheck
  /// is destroyed without first calling Alloc.attachShadow(nullptr).
  void attachAllocator(Allocator &Alloc);

  /// Called by the driver after every malloc/free operation; advances the
  /// operation clock and runs a periodic walk when one is due.
  void onOperation();

  /// Runs every attached allocator's invariant walker now.
  void runWalk();

  /// End-of-run hook: the final invariant walk (Full only).
  void finalCheck();

  ShadowHeap &shadow() { return Shadow; }
  const CheckPolicy &policy() const { return Policy; }
  uint64_t violationCount() const { return Log.count(); }
  const std::vector<CheckViolation> &violations() const {
    return Log.violations();
  }
  uint64_t operations() const { return Ops; }
  uint64_t walksRun() const { return Walks; }

private:
  CheckPolicy Policy;
  MemoryBus &Bus;
  SimHeap &Heap;
  ViolationLog Log;
  ShadowHeap Shadow;
  std::vector<std::unique_ptr<HeapChecker>> Checkers;
  uint64_t Ops = 0;
  uint64_t Walks = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_CHECK_HEAPCHECK_H
