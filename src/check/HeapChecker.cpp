//===- check/HeapChecker.cpp - Per-allocator invariant walkers ------------===//

#include "check/HeapChecker.h"

#include "alloc/BestFit.h"
#include "alloc/BitmapFit.h"
#include "alloc/Bsd.h"
#include "alloc/CustomAlloc.h"
#include "alloc/FirstFit.h"
#include "alloc/GnuGxx.h"
#include "alloc/GnuLocal.h"
#include "alloc/QuickFit.h"
#include "alloc/SpaceFit.h"
#include "support/Error.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace allocsim;

HeapChecker::~HeapChecker() = default;

namespace {

/// Hard bound on any list traversal: a walker must terminate even when the
/// structure it walks has been corrupted into a lasso that bypasses its
/// sentinel.
constexpr uint64_t MaxWalkSteps = 1u << 20;

std::string hexAddr(Addr Address) {
  std::ostringstream Out;
  Out << "0x" << std::hex << Address;
  return Out.str();
}

void reportTo(CheckContext &Ctx, const char *AllocName, ViolationKind Kind,
              Addr Address, std::string Detail) {
  CheckViolation V;
  V.Kind = Kind;
  V.AllocatorName = AllocName;
  V.Address = Address;
  V.Source = AccessSource::Allocator;
  V.OpIndex = Ctx.OpIndex;
  V.Detail = std::move(Detail);
  Ctx.Log.report(std::move(V));
}

/// Reports when the shadow says [Address, Address+Size) intersects live
/// user data — a free-structure node must never sit inside a live object.
void checkNotLive(CheckContext &Ctx, const char *AllocName, Addr Address,
                  uint32_t Size, const char *What) {
  if (Ctx.Shadow && Ctx.Shadow->rangeHas(Address, Size, ByteState::UserLive))
    reportTo(Ctx, AllocName, ViolationKind::MetadataUserOverlap, Address,
             std::string(What) + " overlaps live user data");
}

//===----------------------------------------------------------------------===//
// Boundary-tag freelists (FirstFit, BestFit, GNU G++)
//===----------------------------------------------------------------------===//

/// Walks one circular doubly-linked freelist, verifying link geometry,
/// boundary tags, and coalescing completeness. Collects the nodes in list
/// order into \p Visited / \p Nodes (Visited is shared across the bins of
/// one allocator so a block listed twice is caught wherever it recurs).
class FreeListWalk {
public:
  FreeListWalk(CheckContext &WalkCtx, const SimHeap &WalkHeap,
               const char *AllocName, std::unordered_set<Addr> &VisitedSet)
      : Ctx(WalkCtx), Heap(WalkHeap), Name(AllocName), Visited(VisitedSet) {}

  /// Nodes of the most recent walk, in list order.
  const std::vector<Addr> &nodes() const { return Nodes; }

  void walk(Addr Sentinel, const std::string &Label) {
    Nodes.clear();
    Addr Node = Heap.peek32(Sentinel + 4);
    uint64_t Steps = 0;
    while (Node != Sentinel) {
      if (++Steps > MaxWalkSteps) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Sentinel,
                 Label + ": traversal exceeded " +
                     std::to_string(MaxWalkSteps) +
                     " steps without closing the circle");
        return;
      }
      if (!validBlockAddr(Node)) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                 Label + ": link points outside the heap or is misaligned");
        return;
      }
      if (!Visited.insert(Node).second) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                 Label + ": block reached twice (cycle or double listing)");
        return;
      }

      Addr Next = Heap.peek32(Node + 4);
      if (Next != Sentinel && !validBlockAddr(Next)) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                 Label + ": forward link " + hexAddr(Next) +
                     " points outside the heap or is misaligned");
        return;
      }
      if (Heap.peek32(Next + 8) != Node) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                 Label + ": successor " + hexAddr(Next) +
                     " does not link back");
        return;
      }

      checkBlock(Node, Label);
      checkNotLive(Ctx, Name, Node, 12, "freelist node");
      Nodes.push_back(Node);
      Node = Next;
    }
  }

private:
  bool validBlockAddr(Addr Node) const {
    return (Node & 3) == 0 &&
           Heap.contains(Node, CoalescingAllocator::MinBlockBytes);
  }

  void checkBlock(Addr Node, const std::string &Label) {
    uint32_t Tag = Heap.peek32(Node);
    if (CoalescingAllocator::tagAllocated(Tag)) {
      reportTo(Ctx, Name, ViolationKind::AllocatedOnFreelist, Node,
               Label + ": header " + hexAddr(Tag) +
                   " carries the allocated bit");
      return;
    }
    uint32_t Size = CoalescingAllocator::tagSize(Tag);
    if (Size < CoalescingAllocator::MinBlockBytes ||
        !Heap.contains(Node, Size)) {
      reportTo(Ctx, Name, ViolationKind::BoundaryTagMismatch, Node,
               Label + ": implausible block size " + std::to_string(Size));
      return;
    }
    uint32_t Footer = Heap.peek32(Node + Size - 4);
    if (Footer != Tag) {
      reportTo(Ctx, Name, ViolationKind::BoundaryTagMismatch, Node,
               Label + ": header " + hexAddr(Tag) + " != footer " +
                   hexAddr(Footer));
      return;
    }
    // Coalescing completeness: both neighbours must be allocated (region
    // fenceposts are allocated guard words, so the reads stay in bounds).
    if (Heap.contains(Node + Size, 4) &&
        !CoalescingAllocator::tagAllocated(Heap.peek32(Node + Size)))
      reportTo(Ctx, Name, ViolationKind::MissedCoalesce, Node,
               Label + ": following block " + hexAddr(Node + Size) +
                   " is also free");
    if (Heap.contains(Node - 4, 4) &&
        !CoalescingAllocator::tagAllocated(Heap.peek32(Node - 4)))
      reportTo(Ctx, Name, ViolationKind::MissedCoalesce, Node,
               Label + ": preceding block is also free");
  }

  CheckContext &Ctx;
  const SimHeap &Heap;
  const char *Name;
  std::unordered_set<Addr> &Visited;
  std::vector<Addr> Nodes;
};

class FirstFitChecker final : public HeapChecker {
public:
  explicit FirstFitChecker(const FirstFit &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    std::unordered_set<Addr> Visited;
    FreeListWalk Walk(Ctx, Alloc.heap(), Alloc.name(), Visited);
    Walk.walk(Alloc.freelistSentinel(), "freelist");

    Addr Rover = Alloc.roverPosition();
    if (Rover != Alloc.freelistSentinel() && Visited.count(Rover) == 0)
      reportTo(Ctx, Alloc.name(), ViolationKind::FreelistCorrupt, Rover,
               "roving pointer is not on the freelist");

    if (Alloc.policy() == FirstFitPolicy::AddressOrdered &&
        !std::is_sorted(Walk.nodes().begin(), Walk.nodes().end()))
      reportTo(Ctx, Alloc.name(), ViolationKind::FreelistCorrupt,
               Alloc.freelistSentinel(),
               "address-ordered freelist is out of order");
  }

private:
  const FirstFit &Alloc;
};

class BestFitChecker final : public HeapChecker {
public:
  explicit BestFitChecker(const BestFit &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    std::unordered_set<Addr> Visited;
    FreeListWalk Walk(Ctx, Alloc.heap(), Alloc.name(), Visited);
    Walk.walk(Alloc.freelistSentinel(), "freelist");
  }

private:
  const BestFit &Alloc;
};

class SpaceFitChecker final : public HeapChecker {
public:
  explicit SpaceFitChecker(const SpaceFit &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    std::unordered_set<Addr> Visited;
    FreeListWalk Walk(Ctx, Alloc.heap(), Alloc.name(), Visited);
    Walk.walk(Alloc.freelistSentinel(), "freelist");

    // The space-fitting discipline: the list is totally ordered by
    // (size, address), so the head is always the smallest free block and
    // findFit's first sufficient node is the tightest fit. The walk above
    // already validated every listed node's tags.
    const SimHeap &Heap = Alloc.heap();
    uint32_t PrevSize = 0;
    Addr PrevNode = 0;
    for (Addr Node : Walk.nodes()) {
      uint32_t Size = CoalescingAllocator::tagSize(Heap.peek32(Node));
      if (Size < PrevSize || (Size == PrevSize && Node < PrevNode)) {
        reportTo(Ctx, Alloc.name(), ViolationKind::FreelistCorrupt, Node,
                 "size-sorted freelist is out of order: block of " +
                     std::to_string(Size) + " bytes at " + hexAddr(Node) +
                     " follows block of " + std::to_string(PrevSize) +
                     " bytes at " + hexAddr(PrevNode));
        break;
      }
      PrevSize = Size;
      PrevNode = Node;
    }
  }

private:
  const SpaceFit &Alloc;
};

class GnuGxxChecker final : public HeapChecker {
public:
  explicit GnuGxxChecker(const GnuGxx &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    const SimHeap &Heap = Alloc.heap();
    std::unordered_set<Addr> Visited;
    FreeListWalk Walk(Ctx, Heap, Alloc.name(), Visited);
    for (unsigned Bin = 0; Bin != GnuGxx::NumBins; ++Bin) {
      Walk.walk(Alloc.binSentinel(Bin), "bin " + std::to_string(Bin));
      for (Addr Node : Walk.nodes()) {
        uint32_t Tag = Heap.peek32(Node);
        if (CoalescingAllocator::tagAllocated(Tag))
          continue; // already reported by the walk
        uint32_t Size = CoalescingAllocator::tagSize(Tag);
        if (Size < CoalescingAllocator::MinBlockBytes)
          continue;
        unsigned Want = GnuGxx::binFor(Size);
        if (Want != Bin)
          reportTo(Ctx, Alloc.name(), ViolationKind::SizeClassMismatch,
                   Node,
                   "block of " + std::to_string(Size) + " bytes in bin " +
                       std::to_string(Bin) + ", belongs in bin " +
                       std::to_string(Want));
      }
    }
  }

private:
  const GnuGxx &Alloc;
};

//===----------------------------------------------------------------------===//
// Segregated LIFO chains (BSD, QuickFit, Custom)
//===----------------------------------------------------------------------===//

/// Walks one null-terminated LIFO chain whose link word lives at
/// \p LinkOffset inside each block. Returns the chain's nodes; stops with
/// a diagnostic on any malformed link.
std::vector<Addr> walkChain(CheckContext &Ctx, const SimHeap &Heap,
                            const char *Name, Addr HeadSlot,
                            uint32_t BlockBytes, uint32_t LinkOffset,
                            const std::string &Label,
                            std::unordered_set<Addr> &Visited) {
  std::vector<Addr> Nodes;
  Addr Node = Heap.peek32(HeadSlot);
  uint64_t Steps = 0;
  while (Node != 0) {
    if (++Steps > MaxWalkSteps) {
      reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, HeadSlot,
               Label + ": traversal exceeded " +
                   std::to_string(MaxWalkSteps) + " steps (cyclic chain)");
      break;
    }
    if ((Node & 3) != 0 || !Heap.contains(Node, BlockBytes)) {
      reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
               Label + ": link points outside the heap or is misaligned");
      break;
    }
    if (!Visited.insert(Node).second) {
      reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
               Label + ": block reached twice (cycle or double listing)");
      break;
    }
    checkNotLive(Ctx, Name, Node, BlockBytes, "free block");
    Nodes.push_back(Node);
    Node = Heap.peek32(Node + LinkOffset);
  }
  return Nodes;
}

class BsdChecker final : public HeapChecker {
public:
  explicit BsdChecker(const Bsd &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    std::unordered_set<Addr> Visited;
    for (unsigned Bucket = 0; Bucket != Bsd::NumBuckets; ++Bucket)
      walkChain(Ctx, Alloc.heap(), Alloc.name(),
                Alloc.freelistSlot(Bucket), Bsd::bucketBytes(Bucket),
                /*LinkOffset=*/0, "bucket " + std::to_string(Bucket),
                Visited);
  }

private:
  const Bsd &Alloc;
};

class QuickFitChecker final : public HeapChecker {
public:
  explicit QuickFitChecker(const QuickFit &A)
      : Alloc(A), GeneralChecker(A.generalBackend()) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    const SimHeap &Heap = Alloc.heap();
    std::unordered_set<Addr> Visited;
    for (unsigned Class = 0; Class != QuickFit::NumFastLists; ++Class) {
      uint32_t BlockBytes = (Class + 1) * 4 + 4;
      std::vector<Addr> Nodes = walkChain(
          Ctx, Heap, Alloc.name(), Alloc.freelistSlot(Class), BlockBytes,
          /*LinkOffset=*/4, "fast list " + std::to_string(Class), Visited);
      // Exact-size membership: a free fast block keeps the header of its
      // class for its whole life.
      for (Addr Node : Nodes) {
        uint32_t Header = Heap.peek32(Node);
        if (Header != QuickFit::fastHeader(Class))
          reportTo(Ctx, Alloc.name(), ViolationKind::SizeClassMismatch,
                   Node,
                   "free fast block of class " + std::to_string(Class) +
                       " has header " + hexAddr(Header) + ", expected " +
                       hexAddr(QuickFit::fastHeader(Class)));
      }
    }
    GeneralChecker.check(Ctx);
  }

private:
  const QuickFit &Alloc;
  GnuGxxChecker GeneralChecker;
};

class CustomChecker final : public HeapChecker {
public:
  explicit CustomChecker(const CustomAlloc &A)
      : Alloc(A), GeneralChecker(A.generalBackend()) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    const SimHeap &Heap = Alloc.heap();
    const SizeClassMap &Map = Alloc.classes();

    // The Figure 9 mapping array in simulated memory must still agree with
    // the synthesized host-side map.
    const std::vector<uint32_t> &Table = Map.table();
    for (uint32_t I = 0; I != Table.size(); ++I) {
      uint32_t Got = Heap.peek32(Alloc.tableSlot(I));
      if (Got != Table[I]) {
        reportTo(Ctx, Alloc.name(), ViolationKind::SizeClassMismatch,
                 Alloc.tableSlot(I),
                 "mapping array entry for size " + std::to_string(4 * I) +
                     " reads " + std::to_string(Got) + ", expected " +
                     std::to_string(Table[I]));
        break;
      }
    }

    std::unordered_set<Addr> Visited;
    for (uint32_t Class = 0; Class != Map.numClasses(); ++Class) {
      uint32_t BlockBytes = Map.classSize(Class) + 4;
      std::vector<Addr> Nodes = walkChain(
          Ctx, Heap, Alloc.name(), Alloc.freelistSlot(Class), BlockBytes,
          /*LinkOffset=*/4, "class list " + std::to_string(Class), Visited);
      for (Addr Node : Nodes) {
        uint32_t Header = Heap.peek32(Node);
        if (Header != CustomAlloc::fastHeader(Class))
          reportTo(Ctx, Alloc.name(), ViolationKind::SizeClassMismatch,
                   Node,
                   "free block of class " + std::to_string(Class) +
                       " has header " + hexAddr(Header));
      }
    }
    GeneralChecker.check(Ctx);
  }

private:
  const CustomAlloc &Alloc;
  GnuGxxChecker GeneralChecker;
};

//===----------------------------------------------------------------------===//
// GnuLocal descriptor table
//===----------------------------------------------------------------------===//

class GnuLocalChecker final : public HeapChecker {
public:
  explicit GnuLocalChecker(const GnuLocal &A) : Alloc(A) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    const SimHeap &Heap = Alloc.heap();
    const char *Name = Alloc.name();
    Addr Table = Alloc.descTableAddr();
    auto DescOf = [&](uint32_t Index) { return Table + 16 * Index; };

    uint32_t Covered =
        (Heap.brk() - Heap.base() + GnuLocal::BlockBytes - 1) >>
        GnuLocal::BlockShift;
    if (Covered > Alloc.descTableCapacity()) {
      reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, Table,
               "descriptor table covers " +
                   std::to_string(Alloc.descTableCapacity()) +
                   " blocks but the heap spans " + std::to_string(Covered));
      Covered = Alloc.descTableCapacity();
    }

    // Descriptor sanity sweep.
    for (uint32_t I = 0; I != Covered; ++I) {
      uint32_t Type = Heap.peek32(DescOf(I));
      if (Type > GnuLocal::TypeFreeInterior) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, DescOf(I),
                 "block " + std::to_string(I) +
                     " has unknown descriptor type " + std::to_string(Type));
        continue;
      }
      if (Type == GnuLocal::TypeFragmented) {
        uint32_t FragLog = Heap.peek32(DescOf(I) + 4);
        if (FragLog < GnuLocal::MinFragLog ||
            FragLog > GnuLocal::MaxFragLog) {
          reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt,
                   DescOf(I) + 4,
                   "block " + std::to_string(I) +
                       " has fragment class 2^" + std::to_string(FragLog));
          continue;
        }
        uint32_t PerBlock = GnuLocal::BlockBytes >> FragLog;
        uint32_t NFree = Heap.peek32(DescOf(I) + 8);
        if (NFree >= PerBlock)
          reportTo(Ctx, Name, ViolationKind::AccountingMismatch,
                   DescOf(I) + 8,
                   "block " + std::to_string(I) + " counts " +
                       std::to_string(NFree) +
                       " free fragments of at most " +
                       std::to_string(PerBlock) +
                       " (a fully free block must be reclaimed)");
      }
    }

    checkRunList(Ctx, Covered, DescOf);
    checkFragLists(Ctx, Covered, DescOf);
  }

private:
  template <typename DescFn>
  void checkRunList(CheckContext &Ctx, uint32_t Covered,
                    DescFn DescOf) const {
    const SimHeap &Heap = Alloc.heap();
    const char *Name = Alloc.name();
    uint32_t PrevIndex = 0;
    uint32_t PrevEnd = 0;
    uint64_t Steps = 0;
    uint32_t Current = Heap.peek32(Alloc.runListHeadSlot());
    while (Current != 0) {
      if (++Steps > MaxWalkSteps) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt,
                 Alloc.runListHeadSlot(),
                 "free-run list traversal exceeded step bound");
        return;
      }
      if (Current >= Covered) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, DescOf(Current),
                 "free-run index " + std::to_string(Current) +
                     " beyond the heap's " + std::to_string(Covered) +
                     " blocks");
        return;
      }
      if (Heap.peek32(DescOf(Current)) != GnuLocal::TypeFree) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt,
                 DescOf(Current),
                 "free-run head " + std::to_string(Current) +
                     " has descriptor type " +
                     std::to_string(Heap.peek32(DescOf(Current))));
        return;
      }
      uint32_t Length = Heap.peek32(DescOf(Current) + 4);
      if (Length == 0 || Current + Length > Covered) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt,
                 DescOf(Current) + 4,
                 "free run at block " + std::to_string(Current) +
                     " has implausible length " + std::to_string(Length));
        return;
      }
      if (PrevEnd != 0 && Current <= PrevIndex) {
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt,
                 DescOf(Current),
                 "free-run list is not address ordered");
        return;
      }
      if (PrevEnd != 0 && Current == PrevEnd)
        reportTo(Ctx, Name, ViolationKind::MissedCoalesce, DescOf(Current),
                 "free runs at blocks " + std::to_string(PrevIndex) +
                     " and " + std::to_string(Current) +
                     " are adjacent but unmerged");
      if (Heap.peek32(DescOf(Current) + 12) != PrevIndex)
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt,
                 DescOf(Current) + 12,
                 "free-run back link of block " + std::to_string(Current) +
                     " does not name its predecessor");
      for (uint32_t I = 1; I < Length; ++I) {
        if (Heap.peek32(DescOf(Current + I)) != GnuLocal::TypeFreeInterior) {
          reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt,
                   DescOf(Current + I),
                   "interior block " + std::to_string(Current + I) +
                       " of a free run has type " +
                       std::to_string(Heap.peek32(DescOf(Current + I))));
          break;
        }
      }
      PrevIndex = Current;
      PrevEnd = Current + Length;
      Current = Heap.peek32(DescOf(Current) + 8);
    }
  }

  template <typename DescFn>
  void checkFragLists(CheckContext &Ctx, uint32_t Covered,
                      DescFn DescOf) const {
    const SimHeap &Heap = Alloc.heap();
    const char *Name = Alloc.name();
    std::unordered_map<uint32_t, uint32_t> Tally;

    for (unsigned Log = GnuLocal::MinFragLog; Log <= GnuLocal::MaxFragLog;
         ++Log) {
      Addr Head = Alloc.fragListHead(Log);
      Addr Prev = Head;
      Addr Node = Heap.peek32(Head);
      uint64_t Steps = 0;
      while (Node != Head) {
        if (++Steps > MaxWalkSteps) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Head,
                   "fragment list 2^" + std::to_string(Log) +
                       " traversal exceeded step bound");
          break;
        }
        if ((Node & 3) != 0 || !Heap.contains(Node, 8)) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                   "fragment link points outside the heap or is "
                   "misaligned");
          break;
        }
        if (Heap.peek32(Node + 4) != Prev) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                   "fragment back link does not name its predecessor");
          break;
        }
        uint32_t Index =
            (Node - Heap.base()) >> GnuLocal::BlockShift;
        if (Index >= Covered ||
            Heap.peek32(DescOf(Index)) != GnuLocal::TypeFragmented) {
          reportTo(Ctx, Name, ViolationKind::SizeClassMismatch, Node,
                   "free fragment inside block " + std::to_string(Index) +
                       ", which is not fragmented");
          break;
        }
        uint32_t BlockLog = Heap.peek32(DescOf(Index) + 4);
        if (BlockLog != Log)
          reportTo(Ctx, Name, ViolationKind::SizeClassMismatch, Node,
                   "fragment on the 2^" + std::to_string(Log) +
                       " list but its block holds 2^" +
                       std::to_string(BlockLog) + " fragments");
        else if (((Node - Heap.base()) & ((1u << Log) - 1)) != 0)
          reportTo(Ctx, Name, ViolationKind::SizeClassMismatch, Node,
                   "fragment is misaligned for its class");
        checkNotLive(Ctx, Name, Node, 8, "free fragment");
        ++Tally[Index];
        Prev = Node;
        Node = Heap.peek32(Node);
      }
    }

    // Per-block accounting: descriptor counts vs. list membership.
    for (uint32_t I = 0; I != Covered; ++I) {
      if (Heap.peek32(DescOf(I)) != GnuLocal::TypeFragmented)
        continue;
      uint32_t FragLog = Heap.peek32(DescOf(I) + 4);
      if (FragLog < GnuLocal::MinFragLog || FragLog > GnuLocal::MaxFragLog)
        continue; // already reported
      uint32_t NFree = Heap.peek32(DescOf(I) + 8);
      uint32_t Listed = Tally.count(I) ? Tally[I] : 0;
      if (NFree != Listed)
        reportTo(Ctx, Name, ViolationKind::AccountingMismatch, DescOf(I) + 8,
                 "block " + std::to_string(I) + " counts " +
                     std::to_string(NFree) +
                     " free fragments but its class list holds " +
                     std::to_string(Listed));
    }
  }

  const GnuLocal &Alloc;
};

//===----------------------------------------------------------------------===//
// BitmapFit slab map + bitmaps
//===----------------------------------------------------------------------===//

class BitmapFitChecker final : public HeapChecker {
public:
  explicit BitmapFitChecker(const BitmapFit &A)
      : Alloc(A), GeneralChecker(A.generalBackend()) {}

  const char *allocatorName() const override { return Alloc.name(); }

  void check(CheckContext &Ctx) const override {
    const SimHeap &Heap = Alloc.heap();
    const char *Name = Alloc.name();
    Addr Map = Alloc.slabMapAddr();

    // Slab-map sweep: every nonzero entry must name a plausible bucket
    // and a slab whose header line agrees with the map.
    std::unordered_map<uint32_t, uint32_t> SlabBuckets;
    for (uint32_t I = 0; I != Alloc.slabMapCapacity(); ++I) {
      uint32_t Entry = Heap.peek32(Map + 4 * I);
      if (Entry == 0)
        continue;
      uint32_t Bucket = Entry - 1;
      if (Bucket >= BitmapFit::NumBuckets) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, Map + 4 * I,
                 "slab-map entry for slab " + std::to_string(I) +
                     " names bucket " + std::to_string(Bucket) + " of " +
                     std::to_string(BitmapFit::NumBuckets));
        continue;
      }
      Addr Slab = Heap.base() + (I << BitmapFit::SlabShift);
      if (!Heap.contains(Slab, BitmapFit::SlabBytes)) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, Map + 4 * I,
                 "slab-map entry for slab " + std::to_string(I) +
                     " lies beyond the heap break");
        continue;
      }
      uint32_t Header = Heap.peek32(Slab);
      if (Header != BitmapFit::slabHeaderWord(Bucket)) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, Slab,
                 "slab " + std::to_string(I) + " header " + hexAddr(Header) +
                     " does not match map bucket " + std::to_string(Bucket));
        continue;
      }
      checkSlab(Ctx, Slab, Bucket);
      SlabBuckets.emplace(I, Bucket);
    }

    // Bucket slab lists: null-terminated, acyclic, every node a registered
    // slab of exactly this bucket — and every registered slab listed.
    std::unordered_set<Addr> Listed;
    for (unsigned Bucket = 0; Bucket != BitmapFit::NumBuckets; ++Bucket) {
      std::string Label = "bucket " + std::to_string(Bucket) + " slab list";
      Addr Node = Heap.peek32(Alloc.bucketHeadSlot(Bucket));
      uint64_t Steps = 0;
      while (Node != 0) {
        if (++Steps > MaxWalkSteps) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt,
                   Alloc.bucketHeadSlot(Bucket),
                   Label + ": traversal exceeded step bound (cyclic list)");
          break;
        }
        if ((Node & 3) != 0 || !Heap.contains(Node, BitmapFit::SlabBytes)) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                   Label + ": link points outside the heap or is misaligned");
          break;
        }
        if (!Listed.insert(Node).second) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                   Label + ": slab reached twice (cycle or double listing)");
          break;
        }
        uint32_t Index =
            (Node - Heap.base()) >> BitmapFit::SlabShift;
        auto It = SlabBuckets.find(Index);
        if (Heap.base() + (Index << BitmapFit::SlabShift) != Node ||
            It == SlabBuckets.end()) {
          reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Node,
                   Label + ": node " + hexAddr(Node) +
                       " is not a registered slab boundary");
          break;
        }
        if (It->second != Bucket) {
          reportTo(Ctx, Name, ViolationKind::SizeClassMismatch, Node,
                   Label + ": slab " + std::to_string(Index) +
                       " is registered to bucket " +
                       std::to_string(It->second));
          break;
        }
        Node = Heap.peek32(Node + 8);
      }
    }
    for (const auto &[Index, Bucket] : SlabBuckets) {
      Addr Slab = Heap.base() + (Index << BitmapFit::SlabShift);
      if (Listed.count(Slab) == 0)
        reportTo(Ctx, Name, ViolationKind::FreelistCorrupt, Slab,
                 "registered slab " + std::to_string(Index) +
                     " is missing from bucket " + std::to_string(Bucket) +
                     "'s slab list");
    }

    GeneralChecker.check(Ctx);
  }

private:
  /// Bitmap invariants of one registered slab: trailing (nonexistent) bits
  /// permanently set, used count equal to the set-bit population, spare
  /// word zero, and no free slot inside live user data.
  void checkSlab(CheckContext &Ctx, Addr Slab, uint32_t Bucket) const {
    const SimHeap &Heap = Alloc.heap();
    const char *Name = Alloc.name();
    uint32_t Slots = BitmapFit::slotsPerSlab(Bucket);
    uint32_t SlotSize = BitmapFit::slotBytes(Bucket);

    if (Heap.peek32(Slab + 12) != 0)
      reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt, Slab + 12,
               "slab spare word is nonzero");

    uint32_t Population = 0;
    for (unsigned W = 0; W != BitmapFit::BitmapWords; ++W) {
      uint32_t Word = Heap.peek32(Slab + 16 + 4 * W);
      uint32_t FirstBit = 32 * W;
      uint32_t TrailMask;
      if (Slots >= FirstBit + 32)
        TrailMask = 0;
      else if (Slots <= FirstBit)
        TrailMask = ~0u;
      else
        TrailMask = ~((1u << (Slots - FirstBit)) - 1);
      if ((Word & TrailMask) != TrailMask) {
        reportTo(Ctx, Name, ViolationKind::DescriptorCorrupt,
                 Slab + 16 + 4 * W,
                 "bitmap word " + std::to_string(W) +
                     " clears a bit past the slab's " +
                     std::to_string(Slots) + " slots");
        return;
      }
      uint32_t Real = Word & ~TrailMask;
      Population += static_cast<uint32_t>(std::popcount(Real));
      for (uint32_t Bit = 0; Bit != 32; ++Bit) {
        if (FirstBit + Bit >= Slots)
          break;
        if ((Word >> Bit) & 1u)
          continue;
        Addr SlotAddr =
            Slab + BitmapFit::SlabHeaderBytes + (FirstBit + Bit) * SlotSize;
        checkNotLive(Ctx, Name, SlotAddr, SlotSize, "free bitmap slot");
      }
    }

    uint32_t Used = Heap.peek32(Slab + 4);
    if (Used != Population)
      reportTo(Ctx, Name, ViolationKind::AccountingMismatch, Slab + 4,
               "slab used count " + std::to_string(Used) +
                   " disagrees with bitmap population " +
                   std::to_string(Population));
  }

  const BitmapFit &Alloc;
  GnuGxxChecker GeneralChecker;
};

} // namespace

std::unique_ptr<HeapChecker>
allocsim::createHeapChecker(const Allocator &Alloc) {
  switch (Alloc.kind()) {
  case AllocatorKind::FirstFit:
    return std::make_unique<FirstFitChecker>(
        static_cast<const FirstFit &>(Alloc));
  case AllocatorKind::BestFit:
    return std::make_unique<BestFitChecker>(
        static_cast<const BestFit &>(Alloc));
  case AllocatorKind::GnuGxx:
    return std::make_unique<GnuGxxChecker>(
        static_cast<const GnuGxx &>(Alloc));
  case AllocatorKind::Bsd:
    return std::make_unique<BsdChecker>(static_cast<const Bsd &>(Alloc));
  case AllocatorKind::QuickFit:
    return std::make_unique<QuickFitChecker>(
        static_cast<const QuickFit &>(Alloc));
  case AllocatorKind::Custom:
    return std::make_unique<CustomChecker>(
        static_cast<const CustomAlloc &>(Alloc));
  case AllocatorKind::GnuLocal:
    return std::make_unique<GnuLocalChecker>(
        static_cast<const GnuLocal &>(Alloc));
  case AllocatorKind::BitmapFit:
    return std::make_unique<BitmapFitChecker>(
        static_cast<const BitmapFit &>(Alloc));
  case AllocatorKind::SpaceFit:
    return std::make_unique<SpaceFitChecker>(
        static_cast<const SpaceFit &>(Alloc));
  }
  unreachable("unknown allocator kind");
}
