//===- trace/RefTrace.h - Reference trace I/O -------------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the data-reference stream. The paper ran its simulators
/// execution-driven precisely to avoid "storing large trace files", and so
/// do we by default — but a trace format is still essential for regression
/// tests, for inspecting allocator behaviour, and for feeding the simulators
/// from external traces. Two encodings are provided:
///
///  * binary: 6 bytes per record, magic-tagged, for bulk traces;
///  * text:   one "R|W <hexaddr> <size> <src>" line per record, for humans.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_TRACE_REFTRACE_H
#define ALLOCSIM_TRACE_REFTRACE_H

#include "mem/AccessBatch.h"
#include "mem/AccessSink.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace allocsim {

/// AccessSink that appends every reference to an in-memory vector. Useful in
/// tests and as a staging buffer for trace files.
class CollectingSink final : public AccessSink {
public:
  void access(const MemAccess &Access) override { Records.push_back(Access); }

  void accessBatch(const MemAccess *Batch, size_t Count) override {
    Records.insert(Records.end(), Batch, Batch + Count);
  }

  const std::vector<MemAccess> &records() const { return Records; }
  void clear() { Records.clear(); }

private:
  std::vector<MemAccess> Records;
};

/// Writes references to a binary stream. Emits a header on construction.
class BinaryTraceWriter final : public AccessSink {
public:
  explicit BinaryTraceWriter(std::ostream &OS);

  void access(const MemAccess &Access) override;

  /// Encodes the whole batch into one stack buffer and issues a single
  /// stream write — the same bytes the scalar path writes one record at a
  /// time.
  void accessBatch(const MemAccess *Batch, size_t Count) override;

  /// Number of records written.
  uint64_t written() const { return Count; }

private:
  std::ostream &OS;
  uint64_t Count = 0;
};

/// Reads references from a binary stream produced by BinaryTraceWriter.
class BinaryTraceReader {
public:
  /// Validates the header; a malformed header is a fatal error.
  explicit BinaryTraceReader(std::istream &IS);

  /// Reads the next record into \p Access. Returns false at end of stream.
  bool next(MemAccess &Access);

private:
  std::istream &IS;
};

/// Writes one text line per reference.
class TextTraceWriter final : public AccessSink {
public:
  explicit TextTraceWriter(std::ostream &Stream) : OS(Stream) {}

  void access(const MemAccess &Access) override;

  void accessBatch(const MemAccess *Batch, size_t Count) override;

private:
  std::ostream &OS;
};

/// Parses one text trace line; returns false on end-of-stream, fatal error
/// on malformed input.
class TextTraceReader {
public:
  explicit TextTraceReader(std::istream &Stream) : IS(Stream) {}

  bool next(MemAccess &Access);

private:
  std::istream &IS;
};

/// Replays all records from \p Reader into \p Sink in batches of
/// AccessBatch::MaxCapacity. Returns the number of records replayed.
template <typename ReaderT>
uint64_t replayTrace(ReaderT &Reader, AccessSink &Sink) {
  AccessBatch Batch;
  uint64_t N = 0;
  MemAccess Access;
  while (Reader.next(Access)) {
    Batch.push(Access);
    ++N;
    if (Batch.size() == AccessBatch::MaxCapacity) {
      Sink.accessBatch(Batch.data(), Batch.size());
      Batch.clear();
    }
  }
  if (!Batch.empty())
    Sink.accessBatch(Batch.data(), Batch.size());
  return N;
}

} // namespace allocsim

#endif // ALLOCSIM_TRACE_REFTRACE_H
