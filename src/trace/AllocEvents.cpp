//===- trace/AllocEvents.cpp - Allocation event scripts -------------------===//

#include "trace/AllocEvents.h"

#include "support/Error.h"

#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>

using namespace allocsim;

void allocsim::writeAllocEvents(std::ostream &OS,
                                const std::vector<AllocEvent> &Events) {
  for (const AllocEvent &Event : Events) {
    switch (Event.Kind) {
    case AllocEventKind::Malloc:
      OS << "m " << Event.Id << " " << Event.Amount << "\n";
      break;
    case AllocEventKind::Free:
      OS << "f " << Event.Id << "\n";
      break;
    case AllocEventKind::Touch:
      OS << "t " << Event.Id << " " << Event.Amount << " "
         << (Event.Access == AccessKind::Read ? "r" : "w") << "\n";
      break;
    case AllocEventKind::StackTouch:
      OS << "s " << Event.Amount << " "
         << (Event.Access == AccessKind::Read ? "r" : "w") << "\n";
      break;
    }
  }
}

std::vector<AllocEvent> allocsim::readAllocEvents(std::istream &IS) {
  std::vector<AllocEvent> Events;
  std::string Tag;
  while (IS >> Tag) {
    AllocEvent Event;
    if (Tag == "m") {
      uint32_t Id, Size;
      if (!(IS >> Id >> Size))
        reportFatalError("alloc events: truncated malloc record");
      Event = AllocEvent::makeMalloc(Id, Size);
    } else if (Tag == "f") {
      uint32_t Id;
      if (!(IS >> Id))
        reportFatalError("alloc events: truncated free record");
      Event = AllocEvent::makeFree(Id);
    } else if (Tag == "t" || Tag == "s") {
      uint32_t Id = 0, Words;
      std::string Mode;
      if (Tag == "t" && !(IS >> Id))
        reportFatalError("alloc events: truncated touch record");
      if (!(IS >> Words >> Mode) || (Mode != "r" && Mode != "w"))
        reportFatalError("alloc events: malformed touch record");
      AccessKind Kind = Mode == "r" ? AccessKind::Read : AccessKind::Write;
      Event = Tag == "t" ? AllocEvent::makeTouch(Id, Words, Kind)
                         : AllocEvent::makeStackTouch(Words, Kind);
    } else {
      reportFatalError("alloc events: unknown record tag '" + Tag + "'");
    }
    Events.push_back(Event);
  }
  return Events;
}

bool allocsim::validateAllocEvents(const std::vector<AllocEvent> &Events,
                                   std::string *WhyNot) {
  auto Fail = [&](const std::string &Reason) {
    if (WhyNot)
      *WhyNot = Reason;
    return false;
  };
  std::unordered_set<uint32_t> Live;
  for (size_t I = 0; I != Events.size(); ++I) {
    const AllocEvent &Event = Events[I];
    std::string At = " at event " + std::to_string(I);
    switch (Event.Kind) {
    case AllocEventKind::Malloc:
      if (Event.Amount == 0)
        return Fail("zero-size malloc" + At);
      if (!Live.insert(Event.Id).second)
        return Fail("object id " + std::to_string(Event.Id) +
                    " malloc'd while live" + At);
      break;
    case AllocEventKind::Free:
      if (Live.erase(Event.Id) == 0)
        return Fail("free of dead object id " + std::to_string(Event.Id) + At);
      break;
    case AllocEventKind::Touch:
      if (!Live.count(Event.Id))
        return Fail("touch of dead object id " + std::to_string(Event.Id) +
                    At);
      break;
    case AllocEventKind::StackTouch:
      break;
    }
  }
  return true;
}
