//===- trace/AllocEvents.cpp - Allocation event scripts -------------------===//

#include "trace/AllocEvents.h"

#include "support/Error.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>

using namespace allocsim;

void allocsim::writeAllocEvents(std::ostream &OS,
                                const std::vector<AllocEvent> &Events) {
  for (const AllocEvent &Event : Events) {
    switch (Event.Kind) {
    case AllocEventKind::Malloc:
      OS << "m " << Event.Id << " " << Event.Amount << "\n";
      break;
    case AllocEventKind::Free:
      OS << "f " << Event.Id << "\n";
      break;
    case AllocEventKind::Touch:
      OS << "t " << Event.Id << " " << Event.Amount << " "
         << (Event.Access == AccessKind::Read ? "r" : "w") << "\n";
      break;
    case AllocEventKind::StackTouch:
      OS << "s " << Event.Amount << " "
         << (Event.Access == AccessKind::Read ? "r" : "w") << "\n";
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Exhaustive parser
//===----------------------------------------------------------------------===//

namespace {

/// One whitespace-delimited token and its 1-based column.
struct Token {
  std::string Text;
  uint32_t Column = 0;
};

std::vector<Token> tokenizeLine(const std::string &Line) {
  std::vector<Token> Tokens;
  size_t I = 0;
  while (I != Line.size()) {
    if (Line[I] == ' ' || Line[I] == '\t') {
      ++I;
      continue;
    }
    size_t Start = I;
    while (I != Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    Tokens.push_back({Line.substr(Start, I - Start),
                      static_cast<uint32_t>(Start + 1)});
  }
  return Tokens;
}

/// Parses a non-negative decimal integer up to \p Max. Reports
/// trace-bad-number (or \p OverflowRule for values above Max) on failure.
bool parseOperand(const Token &Tok, uint64_t Max, const char *What,
                  const char *OverflowRule, SourceLoc Loc, DiagEngine &Diags,
                  uint64_t &Value) {
  const std::string &Text = Tok.Text;
  char *End = nullptr;
  errno = 0;
  unsigned long long Parsed = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || Text[0] == '-' ||
      Text[0] == '+') {
    Diags.error("trace-bad-number", Loc,
                std::string("bad ") + What + ": '" + Text +
                    "' is not a non-negative integer");
    return false;
  }
  if (errno == ERANGE || Parsed > Max) {
    Diags.error(OverflowRule, Loc,
                std::string(What) + " '" + Text + "' is out of range (max " +
                    std::to_string(Max) + ")");
    return false;
  }
  Value = Parsed;
  return true;
}

/// Operand count check; reports trace-truncated-record at the tag.
bool requireOperands(const std::vector<Token> &Tokens, size_t Needed,
                     const char *Record, uint32_t Line, DiagEngine &Diags) {
  if (Tokens.size() >= 1 + Needed)
    return true;
  Diags.error("trace-truncated-record", {Line, Tokens[0].Column},
              std::string("truncated ") + Record + " record: expected " +
                  std::to_string(Needed) + " operand" +
                  (Needed == 1 ? "" : "s") + ", got " +
                  std::to_string(Tokens.size() - 1));
  return false;
}

/// Parses the r|w access-mode operand.
bool parseMode(const Token &Tok, SourceLoc Loc, DiagEngine &Diags,
               AccessKind &Kind) {
  if (Tok.Text == "r") {
    Kind = AccessKind::Read;
    return true;
  }
  if (Tok.Text == "w") {
    Kind = AccessKind::Write;
    return true;
  }
  Diags.error("trace-bad-access-mode", Loc,
              "bad access mode '" + Tok.Text + "' (expected r or w)");
  return false;
}

} // namespace

std::vector<LocatedAllocEvent>
allocsim::parseAllocEvents(std::istream &IS, DiagEngine &Diags) {
  // The driver word-rounds malloc sizes as (Size + 3) / 4 in 32 bits, so a
  // size above this would silently wrap to zero words.
  constexpr uint64_t MaxMallocBytes = 0xFFFFFFFFull - 3;
  constexpr uint64_t MaxU32 = 0xFFFFFFFFull;

  std::vector<LocatedAllocEvent> Events;
  std::string Line;
  for (uint32_t LineNo = 1; std::getline(IS, Line); ++LineNo) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    std::vector<Token> Tokens = tokenizeLine(Line);
    if (Tokens.empty())
      continue;

    const Token &Tag = Tokens[0];
    SourceLoc TagLoc{LineNo, Tag.Column};
    auto OperandLoc = [&](size_t I) {
      return SourceLoc{LineNo, Tokens[I].Column};
    };

    AllocEvent Event;
    size_t Operands = 0;
    bool Ok = true;
    if (Tag.Text == "m") {
      Operands = 2;
      uint64_t Id = 0, Size = 0;
      Ok = requireOperands(Tokens, 2, "malloc", LineNo, Diags) &&
           parseOperand(Tokens[1], MaxU32, "object id", "trace-bad-number",
                        OperandLoc(1), Diags, Id) &
               parseOperand(Tokens[2], MaxMallocBytes, "malloc size",
                            "trace-size-overflow", OperandLoc(2), Diags,
                            Size);
      if (Ok)
        Event = AllocEvent::makeMalloc(static_cast<uint32_t>(Id),
                                       static_cast<uint32_t>(Size));
    } else if (Tag.Text == "f") {
      Operands = 1;
      uint64_t Id = 0;
      Ok = requireOperands(Tokens, 1, "free", LineNo, Diags) &&
           parseOperand(Tokens[1], MaxU32, "object id", "trace-bad-number",
                        OperandLoc(1), Diags, Id);
      if (Ok)
        Event = AllocEvent::makeFree(static_cast<uint32_t>(Id));
    } else if (Tag.Text == "t") {
      Operands = 3;
      uint64_t Id = 0, Words = 0;
      AccessKind Kind = AccessKind::Read;
      Ok = requireOperands(Tokens, 3, "touch", LineNo, Diags) &&
           parseOperand(Tokens[1], MaxU32, "object id", "trace-bad-number",
                        OperandLoc(1), Diags, Id) &
               parseOperand(Tokens[2], MaxU32, "touch words",
                            "trace-bad-number", OperandLoc(2), Diags,
                            Words) &
               parseMode(Tokens[3], OperandLoc(3), Diags, Kind);
      if (Ok)
        Event = AllocEvent::makeTouch(static_cast<uint32_t>(Id),
                                      static_cast<uint32_t>(Words), Kind);
    } else if (Tag.Text == "s") {
      Operands = 2;
      uint64_t Words = 0;
      AccessKind Kind = AccessKind::Read;
      Ok = requireOperands(Tokens, 2, "stack touch", LineNo, Diags) &&
           parseOperand(Tokens[1], MaxU32, "touch words", "trace-bad-number",
                        OperandLoc(1), Diags, Words) &
               parseMode(Tokens[2], OperandLoc(2), Diags, Kind);
      if (Ok)
        Event = AllocEvent::makeStackTouch(static_cast<uint32_t>(Words),
                                           Kind);
    } else {
      Diags.error("trace-unknown-tag", TagLoc,
                  "unknown record tag '" + Tag.Text +
                      "' (expected m, f, t or s)");
      continue;
    }

    if (Tokens.size() > 1 + Operands)
      Diags.error("trace-trailing-junk", OperandLoc(1 + Operands),
                  "trailing text after complete record: '" +
                      Tokens[1 + Operands].Text + "'");
    if (Ok)
      Events.push_back({Event, TagLoc});
  }
  return Events;
}

std::vector<AllocEvent> allocsim::readAllocEvents(std::istream &IS) {
  DiagEngine Diags;
  std::vector<LocatedAllocEvent> Located = parseAllocEvents(IS, Diags);
  if (Diags.errorCount() != 0) {
    const Diag &First = Diags.diags().front();
    reportFatalError("alloc events: line " + std::to_string(First.Loc.Line) +
                     ": " + First.Message);
  }
  std::vector<AllocEvent> Events;
  Events.reserve(Located.size());
  for (const LocatedAllocEvent &Event : Located)
    Events.push_back(Event.Event);
  return Events;
}

//===----------------------------------------------------------------------===//
// Exhaustive semantic validation
//===----------------------------------------------------------------------===//

void allocsim::validateAllocEvents(const std::vector<AllocEvent> &Events,
                                   DiagEngine &Diags,
                                   const std::vector<SourceLoc> *Locs) {
  auto LocOf = [&](size_t I) {
    if (Locs && I < Locs->size())
      return (*Locs)[I];
    return SourceLoc{static_cast<uint32_t>(I + 1), 0};
  };
  auto At = [](size_t I) { return " at event " + std::to_string(I); };

  /// Everything ever named by a malloc; ids are never erased so a free of
  /// a freed id and a free of a never-seen id stay distinguishable.
  struct ObjectState {
    bool Live = false;
    size_t BirthIdx = 0;
    size_t DeathIdx = 0;
  };
  std::unordered_map<uint32_t, ObjectState> Objects;

  for (size_t I = 0; I != Events.size(); ++I) {
    const AllocEvent &Event = Events[I];
    std::string IdText = "object id " + std::to_string(Event.Id);
    switch (Event.Kind) {
    case AllocEventKind::Malloc: {
      if (Event.Amount == 0)
        Diags.error("trace-zero-size", LocOf(I),
                    "zero-size malloc of " + IdText + At(I));
      auto [It, New] = Objects.try_emplace(Event.Id);
      if (!New && It->second.Live)
        Diags.error("trace-double-malloc", LocOf(I),
                    IdText + " malloc'd while live" + At(I) +
                        " (live since event " +
                        std::to_string(It->second.BirthIdx) + ")");
      // Continue as if the new malloc renamed the object: later frees and
      // touches resolve against the most recent birth.
      It->second.Live = true;
      It->second.BirthIdx = I;
      break;
    }
    case AllocEventKind::Free: {
      auto It = Objects.find(Event.Id);
      if (It == Objects.end()) {
        Diags.error("trace-free-unknown", LocOf(I),
                    "free of unknown " + IdText + At(I));
        break;
      }
      if (!It->second.Live) {
        Diags.error("trace-double-free", LocOf(I),
                    "double free of " + IdText + At(I) +
                        " (already freed at event " +
                        std::to_string(It->second.DeathIdx) + ")");
        break;
      }
      It->second.Live = false;
      It->second.DeathIdx = I;
      break;
    }
    case AllocEventKind::Touch: {
      auto It = Objects.find(Event.Id);
      if (It == Objects.end()) {
        Diags.error("trace-touch-unknown", LocOf(I),
                    "touch of unknown " + IdText + At(I));
        break;
      }
      if (!It->second.Live) {
        Diags.error("trace-touch-dead", LocOf(I),
                    "touch of freed " + IdText + At(I) + " (freed at event " +
                        std::to_string(It->second.DeathIdx) + ")");
        break;
      }
      if (Event.Amount == 0)
        Diags.warning("trace-empty-touch", LocOf(I),
                      "touch of zero words of " + IdText + At(I));
      break;
    }
    case AllocEventKind::StackTouch:
      if (Event.Amount == 0)
        Diags.warning("trace-empty-touch", LocOf(I),
                      "stack touch of zero words" + At(I));
      break;
    }
  }

  // Leaked-at-end objects, reported at their malloc in birth order.
  std::vector<std::pair<size_t, uint32_t>> Leaked;
  for (const auto &[Id, State] : Objects)
    if (State.Live)
      Leaked.push_back({State.BirthIdx, Id});
  std::sort(Leaked.begin(), Leaked.end());
  for (auto [BirthIdx, Id] : Leaked)
    Diags.warning("trace-leak", LocOf(BirthIdx),
                  "object id " + std::to_string(Id) +
                      " still live at end of script (malloc'd at event " +
                      std::to_string(BirthIdx) + ")");
}

bool allocsim::validateAllocEvents(const std::vector<AllocEvent> &Events,
                                   std::string *WhyNot) {
  DiagEngine Diags;
  validateAllocEvents(Events, Diags);
  if (Diags.errorCount() == 0)
    return true;
  if (WhyNot)
    *WhyNot = Diags.firstError();
  return false;
}
