//===- trace/RefTrace.cpp - Reference trace I/O ---------------------------===//

#include "trace/RefTrace.h"

#include "support/Error.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

using namespace allocsim;

namespace {

constexpr char BinaryMagic[4] = {'A', 'S', 'T', '1'};

constexpr char kindChar(AccessKind Kind) {
  return Kind == AccessKind::Read ? 'R' : 'W';
}

constexpr size_t BinaryRecordBytes = 6;

void encodeBinaryRecord(const MemAccess &Access, unsigned char *Record) {
  Record[0] = static_cast<unsigned char>(Access.Address);
  Record[1] = static_cast<unsigned char>(Access.Address >> 8);
  Record[2] = static_cast<unsigned char>(Access.Address >> 16);
  Record[3] = static_cast<unsigned char>(Access.Address >> 24);
  Record[4] = Access.Size;
  Record[5] = static_cast<unsigned char>(
      (static_cast<unsigned>(Access.Kind) << 4) |
      static_cast<unsigned>(Access.Source));
}

} // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream &Stream) : OS(Stream) {
  OS.write(BinaryMagic, sizeof(BinaryMagic));
}

void BinaryTraceWriter::access(const MemAccess &Access) {
  unsigned char Record[BinaryRecordBytes];
  encodeBinaryRecord(Access, Record);
  OS.write(reinterpret_cast<const char *>(Record), sizeof(Record));
  ++Count;
}

void BinaryTraceWriter::accessBatch(const MemAccess *Batch, size_t N) {
  unsigned char Buffer[AccessBatch::MaxCapacity * BinaryRecordBytes];
  while (N != 0) {
    const size_t Chunk = std::min(N, AccessBatch::MaxCapacity);
    for (size_t I = 0; I != Chunk; ++I)
      encodeBinaryRecord(Batch[I], Buffer + I * BinaryRecordBytes);
    OS.write(reinterpret_cast<const char *>(Buffer),
             static_cast<std::streamsize>(Chunk * BinaryRecordBytes));
    Count += Chunk;
    Batch += Chunk;
    N -= Chunk;
  }
}

BinaryTraceReader::BinaryTraceReader(std::istream &Stream) : IS(Stream) {
  char Magic[4];
  IS.read(Magic, sizeof(Magic));
  if (!IS || Magic[0] != BinaryMagic[0] || Magic[1] != BinaryMagic[1] ||
      Magic[2] != BinaryMagic[2] || Magic[3] != BinaryMagic[3])
    reportFatalError("binary trace: bad or missing magic");
}

bool BinaryTraceReader::next(MemAccess &Access) {
  unsigned char Record[6];
  IS.read(reinterpret_cast<char *>(Record), sizeof(Record));
  if (!IS) {
    if (IS.gcount() != 0)
      reportFatalError("binary trace: truncated record");
    return false;
  }
  Access.Address = static_cast<Addr>(Record[0]) |
                   (static_cast<Addr>(Record[1]) << 8) |
                   (static_cast<Addr>(Record[2]) << 16) |
                   (static_cast<Addr>(Record[3]) << 24);
  Access.Size = Record[4];
  unsigned KindBits = Record[5] >> 4;
  unsigned SourceBits = Record[5] & 0xF;
  if (KindBits >= NumAccessKinds || SourceBits >= NumAccessSources)
    reportFatalError("binary trace: corrupt kind/source byte");
  Access.Kind = static_cast<AccessKind>(KindBits);
  Access.Source = static_cast<AccessSource>(SourceBits);
  return true;
}

void TextTraceWriter::access(const MemAccess &Access) {
  char Line[48];
  std::snprintf(Line, sizeof(Line), "%c %08x %u %s\n", kindChar(Access.Kind),
                Access.Address, Access.Size, accessSourceName(Access.Source));
  OS << Line;
}

void TextTraceWriter::accessBatch(const MemAccess *Batch, size_t N) {
  std::string Buffer;
  Buffer.reserve(N * 20);
  char Line[48];
  for (size_t I = 0; I != N; ++I) {
    const MemAccess &Access = Batch[I];
    const int Length =
        std::snprintf(Line, sizeof(Line), "%c %08x %u %s\n",
                      kindChar(Access.Kind), Access.Address, Access.Size,
                      accessSourceName(Access.Source));
    Buffer.append(Line, static_cast<size_t>(Length));
  }
  OS << Buffer;
}

bool TextTraceReader::next(MemAccess &Access) {
  std::string Kind, SourceName;
  uint64_t Address;
  unsigned Size;
  if (!(IS >> Kind))
    return false;
  if (!(IS >> std::hex >> Address >> std::dec >> Size >> SourceName))
    reportFatalError("text trace: truncated record");
  if (Kind == "R")
    Access.Kind = AccessKind::Read;
  else if (Kind == "W")
    Access.Kind = AccessKind::Write;
  else
    reportFatalError("text trace: bad access kind '" + Kind + "'");
  Access.Address = static_cast<Addr>(Address);
  Access.Size = static_cast<uint8_t>(Size);
  if (SourceName == "app")
    Access.Source = AccessSource::Application;
  else if (SourceName == "alloc")
    Access.Source = AccessSource::Allocator;
  else if (SourceName == "tag")
    Access.Source = AccessSource::TagEmulation;
  else
    reportFatalError("text trace: bad access source '" + SourceName + "'");
  return true;
}
