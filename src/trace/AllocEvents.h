//===- trace/AllocEvents.h - Allocation event scripts -----------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-event scripts: the malloc/free/touch behaviour of a program,
/// abstracted away from any particular allocator. A synthetic program can be
/// captured to a script and replayed against each of the five allocators,
/// which guarantees every allocator sees the *identical* request stream —
/// the same methodological guarantee the paper got by tracing one execution
/// of each application per allocator.
///
/// Text format, one event per line:
///   m <id> <size>      allocate <size> bytes, name the object <id>
///   f <id>             free object <id>
///   t <id> <words> r|w touch <words> 4-byte words of object <id>
///   s <words> r|w      touch <words> words of the stack/static segment
///
/// Two parsing/validation surfaces exist on purpose:
///
///  * the exhaustive surface (parseAllocEvents + the DiagEngine overload of
///    validateAllocEvents) reports every syntactic and semantic problem
///    with line/column and a stable rule id — this is what TraceLint
///    (src/analyze/) and the allocsim_lint tool build on;
///  * the fatal/bool wrappers (readAllocEvents, the bool overload) keep the
///    old contract for replay paths that are only ever handed scripts
///    already known to be sound.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_TRACE_ALLOCEVENTS_H
#define ALLOCSIM_TRACE_ALLOCEVENTS_H

#include "mem/MemAccess.h"
#include "support/Diag.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace allocsim {

/// Kind of allocation event.
enum class AllocEventKind : uint8_t { Malloc, Free, Touch, StackTouch };

/// One scripted event.
struct AllocEvent {
  AllocEventKind Kind = AllocEventKind::Malloc;
  /// Object identifier (Malloc names it; Free/Touch refer to it).
  uint32_t Id = 0;
  /// Malloc: requested bytes. Touch/StackTouch: number of words touched.
  uint32_t Amount = 0;
  /// Touch/StackTouch: read or write.
  AccessKind Access = AccessKind::Read;

  static AllocEvent makeMalloc(uint32_t Id, uint32_t Size) {
    return {AllocEventKind::Malloc, Id, Size, AccessKind::Read};
  }
  static AllocEvent makeFree(uint32_t Id) {
    return {AllocEventKind::Free, Id, 0, AccessKind::Read};
  }
  static AllocEvent makeTouch(uint32_t Id, uint32_t Words, AccessKind Kind) {
    return {AllocEventKind::Touch, Id, Words, Kind};
  }
  static AllocEvent makeStackTouch(uint32_t Words, AccessKind Kind) {
    return {AllocEventKind::StackTouch, 0, Words, Kind};
  }

  bool operator==(const AllocEvent &Other) const = default;
};

/// An event plus where its record started in the script text.
struct LocatedAllocEvent {
  AllocEvent Event;
  SourceLoc Loc;
};

/// Serializes \p Events in the text format.
void writeAllocEvents(std::ostream &OS, const std::vector<AllocEvent> &Events);

/// Exhaustive line-oriented parser: every malformed record is reported into
/// \p Diags (rule ids trace-unknown-tag, trace-truncated-record,
/// trace-bad-number, trace-size-overflow, trace-bad-access-mode,
/// trace-trailing-junk) with the line and column of the offending token,
/// and parsing continues with the next line. Well-formed records parse into
/// events carrying their source location. Blank lines are ignored.
std::vector<LocatedAllocEvent> parseAllocEvents(std::istream &IS,
                                                DiagEngine &Diags);

/// Parses an event script. Malformed input is a fatal error naming the
/// first offending line (wrapper over parseAllocEvents for replay paths).
std::vector<AllocEvent> readAllocEvents(std::istream &IS);

/// Exhaustive semantic validation over the object-lifetime state machine:
/// reports *every* violation into \p Diags instead of stopping at the
/// first. Rules:
///
///   trace-zero-size     (error)   malloc of 0 bytes
///   trace-double-malloc (error)   id malloc'd while still live
///   trace-double-free   (error)   free of an already-freed id
///   trace-free-unknown  (error)   free of a never-malloc'd id
///   trace-touch-dead    (error)   touch of a freed id (use after free)
///   trace-touch-unknown (error)   touch of a never-malloc'd id
///   trace-empty-touch   (warning) touch/stack-touch of 0 words
///   trace-leak          (warning) object still live at end of script,
///                                 reported at its malloc's location
///
/// \p Locs, when non-null, must parallel \p Events (as produced by
/// parseAllocEvents) and supplies the reported locations; otherwise
/// diagnostics carry the 1-based event ordinal as the line number.
void validateAllocEvents(const std::vector<AllocEvent> &Events,
                         DiagEngine &Diags,
                         const std::vector<SourceLoc> *Locs = nullptr);

/// Validates script well-formedness. Returns true if no *errors* were
/// found (warnings — leaks, empty touches — do not fail validation, which
/// matches the replay engines: the Driver runs leaky scripts fine); if
/// \p WhyNot is non-null the first error is stored on failure. Wrapper
/// over the exhaustive overload for existing callers.
bool validateAllocEvents(const std::vector<AllocEvent> &Events,
                         std::string *WhyNot = nullptr);

} // namespace allocsim

#endif // ALLOCSIM_TRACE_ALLOCEVENTS_H
