//===- trace/AllocEvents.h - Allocation event scripts -----------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-event scripts: the malloc/free/touch behaviour of a program,
/// abstracted away from any particular allocator. A synthetic program can be
/// captured to a script and replayed against each of the five allocators,
/// which guarantees every allocator sees the *identical* request stream —
/// the same methodological guarantee the paper got by tracing one execution
/// of each application per allocator.
///
/// Text format, one event per line:
///   m <id> <size>      allocate <size> bytes, name the object <id>
///   f <id>             free object <id>
///   t <id> <words> r|w touch <words> 4-byte words of object <id>
///   s <words> r|w      touch <words> words of the stack/static segment
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_TRACE_ALLOCEVENTS_H
#define ALLOCSIM_TRACE_ALLOCEVENTS_H

#include "mem/MemAccess.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace allocsim {

/// Kind of allocation event.
enum class AllocEventKind : uint8_t { Malloc, Free, Touch, StackTouch };

/// One scripted event.
struct AllocEvent {
  AllocEventKind Kind = AllocEventKind::Malloc;
  /// Object identifier (Malloc names it; Free/Touch refer to it).
  uint32_t Id = 0;
  /// Malloc: requested bytes. Touch/StackTouch: number of words touched.
  uint32_t Amount = 0;
  /// Touch/StackTouch: read or write.
  AccessKind Access = AccessKind::Read;

  static AllocEvent makeMalloc(uint32_t Id, uint32_t Size) {
    return {AllocEventKind::Malloc, Id, Size, AccessKind::Read};
  }
  static AllocEvent makeFree(uint32_t Id) {
    return {AllocEventKind::Free, Id, 0, AccessKind::Read};
  }
  static AllocEvent makeTouch(uint32_t Id, uint32_t Words, AccessKind Kind) {
    return {AllocEventKind::Touch, Id, Words, Kind};
  }
  static AllocEvent makeStackTouch(uint32_t Words, AccessKind Kind) {
    return {AllocEventKind::StackTouch, 0, Words, Kind};
  }

  bool operator==(const AllocEvent &Other) const = default;
};

/// Serializes \p Events in the text format.
void writeAllocEvents(std::ostream &OS, const std::vector<AllocEvent> &Events);

/// Parses an event script. Malformed input is a fatal error.
std::vector<AllocEvent> readAllocEvents(std::istream &IS);

/// Validates script well-formedness: every Free/Touch names a live object,
/// no double-malloc of an id, no zero-size malloc. Returns true if valid;
/// if \p WhyNot is non-null an explanation is stored on failure.
bool validateAllocEvents(const std::vector<AllocEvent> &Events,
                         std::string *WhyNot = nullptr);

} // namespace allocsim

#endif // ALLOCSIM_TRACE_ALLOCEVENTS_H
