//===- workload/Engine.h - Synthetic allocation-event generator -*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the deterministic allocation-event stream of a profiled
/// application. The stream depends only on (profile, scale, seed) — never on
/// the allocator — so all five allocators observe the *identical* request
/// sequence, the same methodological control the paper got from replaying
/// one trace per application.
///
/// Per allocation the engine emits: the malloc, an initializing write sweep
/// over the new object, paced frees of earlier objects (biased toward young
/// objects), read-mostly traversal touches over live objects (split between
/// a hot recent set and the whole live population), and stack-segment
/// references — budgeted so the total reference volume matches the paper's
/// data-references-per-allocation ratio for the program.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_WORKLOAD_ENGINE_H
#define ALLOCSIM_WORKLOAD_ENGINE_H

#include "support/Histogram.h"
#include "support/Rng.h"
#include "trace/AllocEvents.h"
#include "workload/Workload.h"

#include <functional>

namespace allocsim {

/// Scaling and tuning knobs for a run.
struct EngineOptions {
  /// Divide the paper's allocation count by this factor. The number of
  /// frees is then chosen so the run still ends with the paper's
  /// *surviving object count* — the final live heap (the paper's "Max.
  /// Heap Size") is preserved while the reference volume shrinks by
  /// 1/Scale. At Scale == 1 this reduces exactly to the paper's totals.
  uint32_t Scale = 8;
  /// Clamp Scale so at least half of the paper's surviving objects can be
  /// reached (programs like PTC that free nothing cannot be scaled without
  /// shrinking their heap).
  bool ClampScaleForLiveHeap = true;
  uint64_t Seed = 0x5EEDBA5E;
  /// Number of most-recent live objects considered "hot" for traversal.
  uint32_t HotWindow = 64;
  /// Probability a traversal touch picks from the hot window.
  double HotShare = 0.70;
  /// Longest single-object touch, in words.
  uint32_t MaxTouchWords = 16;
};

/// Deterministic event generator for one application profile.
class WorkloadEngine {
public:
  WorkloadEngine(const AppProfile &Profile, EngineOptions Options);

  /// Generates the full event stream, invoking \p Sink for each event.
  void generate(const std::function<void(const AllocEvent &)> &Sink);

  /// Convenience: generates into a vector (small scales only; the stream
  /// has roughly 20 events per allocation).
  std::vector<AllocEvent> generateAll();

  /// The request-size histogram of a generation run with these options —
  /// the profile pass that feeds CustomAlloc synthesis. Cheap: no touches
  /// are produced.
  Histogram sizeProfile() const;

  /// Scaled totals for this run.
  uint64_t totalAllocations() const { return TotalAllocs; }
  uint64_t totalFrees() const { return TotalFrees; }
  /// The scale actually used after clamping.
  uint32_t effectiveScale() const { return Options.Scale; }

private:
  /// Request sizes come from a salted, dedicated RNG stream so that
  /// sizeProfile() reproduces generate()'s request sequence exactly.
  static constexpr uint64_t SizeStreamSalt = 0x517EC1A5500D5EEDull;

  uint32_t drawSize(Rng &R) const;

  const AppProfile &Profile;
  EngineOptions Options;
  DiscreteDistribution BinPicker;
  uint64_t TotalAllocs;
  uint64_t TotalFrees;

  /// Per-allocation reference budgets (words).
  double InitWordsMean;
  double StackWordsPerAlloc;
  double TraverseWordsPerAlloc;
};

} // namespace allocsim

#endif // ALLOCSIM_WORKLOAD_ENGINE_H
