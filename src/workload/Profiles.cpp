//===- workload/Profiles.cpp - Synthetic application profiles -------------===//

#include "workload/Workload.h"

#include "support/Error.h"

#include <algorithm>
#include <cctype>

using namespace allocsim;

double AppProfile::meanRequestBytes() const {
  double Sum = 0, Weight = 0;
  for (const SizeBin &Bin : SizeMix) {
    Sum += Bin.Weight * (static_cast<double>(Bin.Lo) + Bin.Hi) / 2.0;
    Weight += Bin.Weight;
  }
  return Weight == 0 ? 0 : Sum / Weight;
}

const char *allocsim::workloadName(WorkloadId Id) {
  switch (Id) {
  case WorkloadId::Espresso:
    return "espresso";
  case WorkloadId::Gs:
    return "gs";
  case WorkloadId::Ptc:
    return "ptc";
  case WorkloadId::Gawk:
    return "gawk";
  case WorkloadId::Make:
    return "make";
  case WorkloadId::GsSmall:
    return "gs-small";
  case WorkloadId::GsMedium:
    return "gs-medium";
  case WorkloadId::Cfrac:
    return "cfrac";
  }
  unreachable("unknown workload id");
}

bool allocsim::tryParseWorkload(const std::string &Name, WorkloadId &Id) {
  std::string Lower = Name;
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "espresso")
    Id = WorkloadId::Espresso;
  else if (Lower == "gs" || Lower == "gs-large" || Lower == "ghostscript")
    Id = WorkloadId::Gs;
  else if (Lower == "ptc")
    Id = WorkloadId::Ptc;
  else if (Lower == "gawk")
    Id = WorkloadId::Gawk;
  else if (Lower == "make")
    Id = WorkloadId::Make;
  else if (Lower == "gs-small")
    Id = WorkloadId::GsSmall;
  else if (Lower == "gs-medium")
    Id = WorkloadId::GsMedium;
  else if (Lower == "cfrac")
    Id = WorkloadId::Cfrac;
  else
    return false;
  return true;
}

WorkloadId allocsim::parseWorkload(const std::string &Name) {
  WorkloadId Id;
  if (!tryParseWorkload(Name, Id))
    reportFatalError("unknown workload '" + Name + "'");
  return Id;
}

namespace {

/// GhostScript's request mix: interpreter tokens dominate; page/raster
/// buffers supply a heavy tail. Shared by the three input sets (the paper
/// varies only the amount of input, Table 3).
std::vector<SizeBin> gsSizeMix() {
  // Buffers recur at exact sizes (raster bands, token tables), so the
  // large bins are coarse: GhostScript re-requests the same sizes.
  return {
      {16, 16, 0.20},           {24, 24, 0.20},
      {32, 48, 0.20, 16},       {64, 96, 0.15, 16},
      {128, 256, 0.12, 64},     {512, 1024, 0.05, 512},
      {2048, 4096, 0.015, 2048}, {8192, 8192, 0.002},
  };
}

} // namespace

const AppProfile &allocsim::getProfile(WorkloadId Id) {
  // Paper-scale totals come from Tables 1-3 of the paper. Size mixes are
  // chosen so the mean request size times the surviving object count
  // reproduces each program's "Max. Heap Size".
  static const AppProfile Espresso = {
      "espresso",
      /*PaperInstrMillions=*/2506,
      /*PaperDataRefsMillions=*/595,
      /*PaperMaxHeapKb=*/396,
      /*PaperObjectsAllocated=*/1673000,
      /*PaperObjectsFreed=*/1666000,
      /*PaperSeconds=*/155.1,
      // Logic-minimization cubes and covers: many small set nodes, a few
      // larger arrays. 24 bytes is a dominant request (the paper's own
      // observation across its suite).
      {{8, 8, 0.10},
       {16, 16, 0.22},
       {24, 24, 0.25},
       {32, 32, 0.14},
       {40, 48, 0.10, 8},
       {64, 64, 0.07},
       {96, 128, 0.05, 32},
       {256, 256, 0.02},
       {512, 1024, 0.008, 512},
       {1536, 2048, 0.002, 512}},
      /*DieYoungProb=*/0.80,
      /*ClusterDeathProb=*/0.35,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.25,
  };

  static const AppProfile Gs = {
      "gs",
      1344,
      421,
      4129,
      924000,
      898000,
      131.3,
      gsSizeMix(),
      /*DieYoungProb=*/0.70,
      /*ClusterDeathProb=*/0.40,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.30,
  };

  static const AppProfile GsSmall = {
      "gs-small", 195,  66,   1092, 109000, 102000, 17.0, gsSizeMix(),
      0.70,       0.40, 0.55,   0.30,
  };

  static const AppProfile GsMedium = {
      "gs-medium", 539,  172,  2721, 567000, 551000, 51.3, gsSizeMix(),
      0.70,        0.40, 0.55,   0.30,
  };

  static const AppProfile Ptc = {
      "ptc",
      367,
      125,
      3146,
      103000,
      /*PaperObjectsFreed=*/0, // PTC never frees (Table 2).
      25.1,
      // Pascal-to-C translator: AST nodes and symbol strings, never freed.
      {{16, 16, 0.30},
       {20, 24, 0.30, 4},
       {32, 32, 0.20},
       {40, 48, 0.12, 8},
       {64, 96, 0.05, 32},
       {128, 256, 0.01, 128}},
      /*DieYoungProb=*/0.0,
      /*ClusterDeathProb=*/0.0,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.35,
  };

  static const AppProfile Gawk = {
      "gawk",
      1215,
      374,
      60,
      1704000,
      1702000,
      76.7,
      // awk NODE cells and short strings with extreme turnover.
      {{12, 12, 0.15},
       {16, 16, 0.25},
       {24, 24, 0.30},
       {32, 32, 0.15},
       {40, 64, 0.10, 8},
       {80, 200, 0.05, 40}},
      /*DieYoungProb=*/0.90,
      /*ClusterDeathProb=*/0.30,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.25,
  };

  static const AppProfile Make = {
      "make",
      56,
      17,
      380,
      24000,
      13000,
      4.0,
      // Dependency strings and file-name buffers.
      {{16, 16, 0.20},
       {24, 24, 0.25},
       {32, 48, 0.25, 16},
       {64, 128, 0.08, 32},
       {256, 512, 0.02, 256},
       {1024, 2048, 0.002, 1024}},
      /*DieYoungProb=*/0.60,
      /*ClusterDeathProb=*/0.40,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.25,
  };

  // Extension workload, not part of the reproduced paper's suite: the
  // totals are plausible round figures modeled on the companion study's
  // description of cfrac (bignum digit vectors, almost every object freed,
  // a live heap of a few tens of kilobytes), not published measurements.
  static const AppProfile Cfrac = {
      "cfrac",
      /*PaperInstrMillions=*/1000,
      /*PaperDataRefsMillions=*/280,
      /*PaperMaxHeapKb=*/40,
      /*PaperObjectsAllocated=*/1600000,
      /*PaperObjectsFreed=*/1599000,
      /*PaperSeconds=*/40.0,
      {{8, 8, 0.15},
       {16, 16, 0.40},
       {24, 24, 0.25},
       {32, 32, 0.12},
       {40, 64, 0.06, 8},
       {80, 120, 0.02, 40}},
      /*DieYoungProb=*/0.95,
      /*ClusterDeathProb=*/0.20,
      /*StackRefShare=*/0.55,
      /*TraverseWriteShare=*/0.30,
  };

  switch (Id) {
  case WorkloadId::Espresso:
    return Espresso;
  case WorkloadId::Gs:
    return Gs;
  case WorkloadId::Ptc:
    return Ptc;
  case WorkloadId::Gawk:
    return Gawk;
  case WorkloadId::Make:
    return Make;
  case WorkloadId::GsSmall:
    return GsSmall;
  case WorkloadId::GsMedium:
    return GsMedium;
  case WorkloadId::Cfrac:
    return Cfrac;
  }
  unreachable("unknown workload id");
}
