//===- workload/Driver.cpp - Event execution against an allocator ---------===//

#include "workload/Driver.h"

#include "check/HeapCheck.h"
#include "inject/FaultInjector.h"
#include "support/Error.h"

#include <cassert>

using namespace allocsim;

Driver::Driver(Allocator &DriverAlloc, MemoryBus &DriverBus,
               CostModel &DriverCost, double AppInstrPerRef,
               uint32_t StackWindow)
    : Alloc(DriverAlloc), Bus(DriverBus), Cost(DriverCost),
      InstrPerRef(AppInstrPerRef), StackWindowBytes(StackWindow) {
  assert(StackWindowBytes >= 64 && (StackWindowBytes & 3) == 0 &&
         "degenerate stack window");
}

void Driver::chargeRef() {
  ++AppRefs;
  InstrDebt += InstrPerRef;
  auto Whole = static_cast<uint64_t>(InstrDebt);
  if (Whole > 0) {
    Cost.chargeApp(Whole);
    InstrDebt -= static_cast<double>(Whole);
  }
}

void Driver::attachTelemetry(Telemetry *Registry) {
  EventsProbe = Registry ? Registry->counter("driver.events") : nullptr;
  LifetimeHist = Registry ? Registry->histogram("driver.obj_lifetime") : nullptr;
  OpInstrHists = {};
  if (Registry) {
    OpInstrHists[static_cast<unsigned>(AllocEventKind::Malloc)] =
        Registry->histogram("driver.malloc_instr");
    OpInstrHists[static_cast<unsigned>(AllocEventKind::Free)] =
        Registry->histogram("driver.free_instr");
    OpInstrHists[static_cast<unsigned>(AllocEventKind::Touch)] =
        Registry->histogram("driver.touch_instr");
    OpInstrHists[static_cast<unsigned>(AllocEventKind::StackTouch)] =
        Registry->histogram("driver.stack_instr");
  }
}

void Driver::execute(const AllocEvent &Event) {
  ++EventOrdinal;
  if (EventsProbe)
    EventsProbe->add();
  // Times the whole operation (allocator work + emitted touches) on the
  // simulated instruction clock; free when the histogram is null.
  PhaseTimer Timer(OpInstrHists[static_cast<unsigned>(Event.Kind)],
                   [this] { return Cost.totalInstructions(); });
  switch (Event.Kind) {
  case AllocEventKind::Malloc: {
    Addr Address = Alloc.malloc(Event.Amount);
    if (Address == 0) {
      // Simulated heap exhaustion: remember the id so the stream's later
      // touches/frees of this object degrade to no-ops instead of faulting.
      assert(Objects.find(Event.Id) == Objects.end() &&
             "duplicate object id in event stream");
      FailedIds.insert(Event.Id);
      ++DroppedEvents;
    } else {
      [[maybe_unused]] bool Inserted =
          Objects
              .emplace(Event.Id, ObjectInfo{Address, (Event.Amount + 3) / 4,
                                            EventOrdinal})
              .second;
      assert(Inserted && "duplicate object id in event stream");
    }
    if (Check) {
      // Allocator-event boundary: deliver everything this malloc emitted
      // before the checker's operation clock advances (HeapCheck flushes
      // again internally, but the contract lives at the emission site).
      Bus.flush();
      Check->onOperation();
    }
    break;
  }
  case AllocEventKind::Free: {
    auto It = Objects.find(Event.Id);
    if (It == Objects.end()) {
      if (FailedIds.erase(Event.Id) != 0) {
        ++DroppedEvents;
        break;
      }
      reportFatalError("event stream frees unknown object");
    }
    if (LifetimeHist)
      LifetimeHist->record(EventOrdinal - It->second.BirthOrdinal);
    Alloc.free(It->second.Address);
    Objects.erase(It);
    if (Check) {
      Bus.flush();
      Check->onOperation();
    }
    break;
  }
  case AllocEventKind::Touch: {
    auto It = Objects.find(Event.Id);
    if (It == Objects.end()) {
      if (FailedIds.count(Event.Id) != 0) {
        ++DroppedEvents;
        break;
      }
      reportFatalError("event stream touches unknown object");
    }
    touchObject(It->second.Address, It->second.Words, Event.Amount,
                Event.Access);
    break;
  }
  case AllocEventKind::StackTouch:
    touchStack(Event.Amount, Event.Access);
    break;
  }
  if (Inj)
    Inj->onEvent(EventOrdinal, Check);
}

Addr Driver::addressOf(uint32_t Id) const {
  auto It = Objects.find(Id);
  if (It == Objects.end())
    reportFatalError("addressOf: unknown object id");
  return It->second.Address;
}

void Driver::touchObject(Addr Address, uint32_t ObjectWords, uint32_t Words,
                         AccessKind Kind) {
  assert(ObjectWords > 0 && "touch of empty object");
  // Sequential field sweep from the object's start, wrapping for touches
  // longer than the object.
  for (uint32_t I = 0; I != Words; ++I) {
    Addr Word = Address + 4 * (I % ObjectWords);
    Bus.emit(Word, 4, Kind, AccessSource::Application);
    chargeRef();
  }
}

void Driver::touchStack(uint32_t Words, AccessKind Kind) {
  // Zig-zag sweep: the push/pop address pattern of call frames.
  for (uint32_t I = 0; I != Words; ++I) {
    Bus.emit(StackBase + StackPos, 4, Kind, AccessSource::Application);
    chargeRef();
    if (StackPos + 4 >= StackWindowBytes)
      StackDir = -1;
    else if (StackPos == 0)
      StackDir = 1;
    StackPos = static_cast<uint32_t>(static_cast<int>(StackPos) +
                                     4 * StackDir);
  }
}
