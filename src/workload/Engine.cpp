//===- workload/Engine.cpp - Synthetic allocation-event generator ---------===//

#include "workload/Engine.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace allocsim;

namespace {

std::vector<double> binWeights(const AppProfile &Profile) {
  std::vector<double> Weights;
  Weights.reserve(Profile.SizeMix.size());
  for (const SizeBin &Bin : Profile.SizeMix)
    Weights.push_back(Bin.Weight);
  return Weights;
}

uint32_t wordsFor(uint32_t Bytes) { return (Bytes + 3) / 4; }

} // namespace

WorkloadEngine::WorkloadEngine(const AppProfile &AppProf,
                               EngineOptions EngineOpts)
    : Profile(AppProf), Options(EngineOpts), BinPicker(binWeights(AppProf)) {
  assert(Options.Scale >= 1 && "scale must be positive");
  uint64_t Surviving =
      Profile.PaperObjectsAllocated - Profile.PaperObjectsFreed;
  if (Options.ClampScaleForLiveHeap && Surviving > 0) {
    // Keep enough allocations to build at least half the paper's live heap.
    auto MaxScale = static_cast<uint32_t>(
        Profile.PaperObjectsAllocated / (2 * Surviving));
    if (MaxScale == 0)
      MaxScale = 1;
    if (Options.Scale > MaxScale)
      Options.Scale = MaxScale;
  }
  TotalAllocs = Profile.PaperObjectsAllocated / Options.Scale;
  // End the run with the paper's surviving-object count, so the final live
  // heap matches the paper's Max Heap column at any scale.
  TotalFrees = TotalAllocs >= Surviving ? TotalAllocs - Surviving : 0;
  if (TotalAllocs == 0)
    reportFatalError("scale too large: no allocations remain");

  // Reference budget per allocation, split so the total matches the
  // program's paper ratio. Init writes and free-time reads are implied by
  // the mix; stack gets its profile share; traversal gets the remainder.
  double RefsPerAlloc = Profile.refsPerAlloc();
  InitWordsMean = Profile.meanRequestBytes() / 4.0;
  double FreeReadWords = 2.0 * Profile.freeFraction();
  StackWordsPerAlloc = RefsPerAlloc * Profile.StackRefShare;
  TraverseWordsPerAlloc = RefsPerAlloc - InitWordsMean - FreeReadWords -
                          StackWordsPerAlloc;
  if (TraverseWordsPerAlloc < 0)
    TraverseWordsPerAlloc = 0;
}

uint32_t WorkloadEngine::drawSize(Rng &R) const {
  const SizeBin &Bin = Profile.SizeMix[BinPicker.sample(R)];
  if (Bin.Lo == Bin.Hi)
    return Bin.Lo;
  uint32_t Step = Bin.step();
  uint32_t Choices = (Bin.Hi - Bin.Lo) / Step + 1;
  return Bin.Lo + Step * static_cast<uint32_t>(R.nextBelow(Choices));
}

Histogram WorkloadEngine::sizeProfile() const {
  // Sizes come from a dedicated generator, so this profile pass sees
  // exactly the request stream generate() will produce.
  Rng SizeRng(Options.Seed ^ SizeStreamSalt);
  Histogram Sizes;
  for (uint64_t I = 0; I != TotalAllocs; ++I)
    Sizes.add(drawSize(SizeRng));
  return Sizes;
}

void WorkloadEngine::generate(
    const std::function<void(const AllocEvent &)> &Sink) {
  Rng R(Options.Seed);
  Rng SizeRng(Options.Seed ^ SizeStreamSalt);

  struct LiveObject {
    uint32_t Id;
    uint32_t Words;
  };
  std::vector<LiveObject> Live;
  Live.reserve(TotalAllocs - TotalFrees + 1024);

  uint32_t NextId = 1;
  uint64_t AllocsDone = 0, FreesDone = 0;
  // Fractional-budget accumulators.
  double StackDebt = 0, TraverseDebt = 0;
  // Death-cluster state: a run of allocation-order-adjacent objects being
  // freed across consecutive due frees.
  size_t ClusterCursor = 0;
  size_t ClusterLeft = 0;

  auto PickLiveIndex = [&](double RecentBias, double MeanDepth) -> size_t {
    assert(!Live.empty() && "no live objects to pick");
    if (R.nextBool(RecentBias)) {
      auto Depth = static_cast<size_t>(R.nextExponential(MeanDepth));
      if (Depth >= Live.size())
        Depth = Live.size() - 1;
      return Live.size() - 1 - Depth;
    }
    return static_cast<size_t>(R.nextBelow(Live.size()));
  };

  for (AllocsDone = 1; AllocsDone <= TotalAllocs; ++AllocsDone) {
    // Allocate and initialize.
    uint32_t Size = drawSize(SizeRng);
    uint32_t Id = NextId++;
    Sink(AllocEvent::makeMalloc(Id, Size));
    Sink(AllocEvent::makeTouch(Id, wordsFor(Size), AccessKind::Write));
    Live.push_back({Id, wordsFor(Size)});

    // Paced frees: keep FreesDone ~= AllocsDone * freeFraction so the run
    // ends with exactly the paper's surviving-object count. Removal is
    // order-preserving so Live stays in allocation order, which death
    // clusters rely on for address adjacency.
    auto FreeAt = [&](size_t Index) {
      const LiveObject &Object = Live[Index];
      // Programs typically inspect an object as they release it.
      Sink(AllocEvent::makeTouch(Object.Id, std::min(Object.Words, 2u),
                                 AccessKind::Read));
      Sink(AllocEvent::makeFree(Object.Id));
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Index));
      ++FreesDone;
    };
    while ((FreesDone + 1) * TotalAllocs <= AllocsDone * TotalFrees &&
           !Live.empty()) {
      if (ClusterLeft > 0 && ClusterCursor < Live.size()) {
        // Continue the in-progress death cluster: the erase above left the
        // next adjacent object at the same index.
        FreeAt(ClusterCursor);
        --ClusterLeft;
        continue;
      }
      ClusterLeft = 0;
      if (Live.size() > 8 && R.nextBool(Profile.ClusterDeathProb)) {
        // A whole structure dies: free a run of adjacent objects.
        ClusterCursor = static_cast<size_t>(R.nextBelow(Live.size()));
        auto Length = 4 + static_cast<size_t>(R.nextExponential(12.0));
        ClusterLeft =
            std::min(Length, Live.size() - ClusterCursor) - 1;
        FreeAt(ClusterCursor);
        continue;
      }
      FreeAt(PickLiveIndex(Profile.DieYoungProb, 8.0));
    }

    // Traversal of live data structures.
    TraverseDebt += TraverseWordsPerAlloc;
    while (TraverseDebt >= 1.0 && !Live.empty()) {
      size_t Index = Live.size() <= Options.HotWindow
                         ? PickLiveIndex(0.0, 1.0)
                         : (R.nextBool(Options.HotShare)
                                ? Live.size() - 1 -
                                      static_cast<size_t>(
                                          R.nextBelow(Options.HotWindow))
                                : static_cast<size_t>(
                                      R.nextBelow(Live.size())));
      const LiveObject &Object = Live[Index];
      uint32_t Words = std::min(Object.Words, Options.MaxTouchWords);
      if (Words > TraverseDebt)
        Words = static_cast<uint32_t>(TraverseDebt) + 1;
      AccessKind Kind = R.nextBool(Profile.TraverseWriteShare)
                            ? AccessKind::Write
                            : AccessKind::Read;
      Sink(AllocEvent::makeTouch(Object.Id, Words, Kind));
      TraverseDebt -= Words;
    }

    // Stack/static segment references.
    StackDebt += StackWordsPerAlloc;
    if (StackDebt >= 1.0) {
      auto Words = static_cast<uint32_t>(StackDebt);
      Sink(AllocEvent::makeStackTouch(
          Words, R.nextBool(0.4) ? AccessKind::Write : AccessKind::Read));
      StackDebt -= Words;
    }
  }

  assert(FreesDone <= TotalFrees && "freed more than planned");
}

std::vector<AllocEvent> WorkloadEngine::generateAll() {
  std::vector<AllocEvent> Events;
  generate([&](const AllocEvent &Event) { Events.push_back(Event); });
  return Events;
}
