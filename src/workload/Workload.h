//===- workload/Workload.h - Synthetic application profiles -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiles of the paper's five allocation-intensive C programs (Tables 1-3)
/// plus GhostScript's three input sets. We do not have the 1993 binaries or
/// their PIXIE traces; instead each program is modeled as a synthetic
/// allocation process calibrated to the published statistics:
///
///   * total objects allocated and freed     (Table 2/3: "Objects Alloc'd",
///                                            "Objects Freed"),
///   * final live heap                        ("Max. Heap Size"; the mean of
///     the request-size mix times the surviving object count reproduces it),
///   * data references per allocation         ("Data Refs" / "Objects"),
///   * instructions per data reference        ("Total Instr." / "Data Refs"),
///   * a request-size mix shaped by the domain (interpreters allocate many
///     small tokens, GhostScript adds page buffers, PTC never frees, ...)
///     honoring the paper's observation that "most allocation requests were
///     for one of a few different object sizes" and that 24 bytes was a very
///     common request.
///
/// The locality phenomena under study depend on the allocation request
/// stream and on the volume of application references to live objects —
/// which is exactly what these profiles pin down.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_WORKLOAD_WORKLOAD_H
#define ALLOCSIM_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace allocsim {

/// The measured applications. Gs is the paper's default (large) input;
/// GsSmall/GsMedium are the Table 3 input-set variants. Cfrac is an
/// extension workload modeled on the sixth program of the authors'
/// companion study ("Empirical measurements of six allocation-intensive C
/// programs", cited as [29]): continued-fraction factoring with extreme
/// small-object churn over a tiny live heap.
enum class WorkloadId {
  Espresso,
  Gs,
  Ptc,
  Gawk,
  Make,
  GsSmall,
  GsMedium,
  Cfrac,
};

/// The paper's five-application suite (Figures 1, 4, 5; Tables 4, 5, 6).
inline constexpr WorkloadId PaperWorkloads[] = {
    WorkloadId::Espresso, WorkloadId::Gs, WorkloadId::Ptc, WorkloadId::Gawk,
    WorkloadId::Make};

const char *workloadName(WorkloadId Id);
WorkloadId parseWorkload(const std::string &Name);
/// Like parseWorkload, but reports an unknown name by returning false
/// instead of dying (for tools that want to print a diagnostic and exit).
bool tryParseWorkload(const std::string &Name, WorkloadId &Id);

/// One bin of the request-size mix; sizes are drawn uniformly from
/// {Lo, Lo+Step, ..., <= Hi}. Lo == Hi models the dominant exact sizes.
/// Step == 0 selects a coarse default (the paper observes that programs
/// use "a small number of distinct sizes"; a fine step would synthesize an
/// unrealistically diverse mix).
struct SizeBin {
  uint32_t Lo = 0;
  uint32_t Hi = 0;
  double Weight = 0;
  uint32_t Step = 0;

  /// Effective quantization step.
  uint32_t step() const {
    if (Step != 0)
      return Step;
    uint32_t Span = Hi - Lo;
    if (Span >= 1024)
      return 256;
    if (Span >= 256)
      return 64;
    if (Span >= 64)
      return 16;
    return 8;
  }
};

/// Calibration data for one application.
struct AppProfile {
  const char *Name;

  /// Paper-scale totals (Tables 2 and 3).
  double PaperInstrMillions;
  double PaperDataRefsMillions;
  uint32_t PaperMaxHeapKb;
  uint32_t PaperObjectsAllocated;
  uint32_t PaperObjectsFreed;
  /// Paper-reported execution seconds on the DECstation 5000/120.
  double PaperSeconds;

  /// Request-size mix.
  std::vector<SizeBin> SizeMix;

  /// Probability that a free targets a recently allocated object.
  double DieYoungProb;
  /// Probability that a due free instead starts a *death cluster*: a run
  /// of allocation-order-adjacent objects freed together, modeling whole
  /// data structures (lists, trees, tables) dying at once. Cluster deaths
  /// release address-adjacent storage, which is what lets coalescing
  /// allocators rebuild large blocks in real programs.
  double ClusterDeathProb;
  /// Share of application references that go to the stack/static segment.
  double StackRefShare;
  /// Share of object-traversal references that are writes.
  double TraverseWriteShare;

  /// Expected request size under the mix.
  double meanRequestBytes() const;
  /// Data references per allocation (Table 2 ratio).
  double refsPerAlloc() const {
    return PaperDataRefsMillions * 1e6 /
           static_cast<double>(PaperObjectsAllocated);
  }
  /// Instructions per data reference (Table 2 ratio).
  double instrPerRef() const {
    return PaperInstrMillions / PaperDataRefsMillions;
  }
  /// Fraction of allocations eventually freed.
  double freeFraction() const {
    return static_cast<double>(PaperObjectsFreed) /
           static_cast<double>(PaperObjectsAllocated);
  }
};

/// Profile registry.
const AppProfile &getProfile(WorkloadId Id);

} // namespace allocsim

#endif // ALLOCSIM_WORKLOAD_WORKLOAD_H
