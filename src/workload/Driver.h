//===- workload/Driver.h - Event execution against an allocator -*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an allocation-event stream against a concrete allocator,
/// emitting the application's data references onto the memory bus:
///
///  * Touch events sweep an object's words sequentially from its start
///    (wrapping if the touch is longer than the object), the access pattern
///    of initialization and field traversal.
///  * Stack touches zig-zag through a small stack segment, modeling the
///    high-locality non-heap data references that dilute every program's
///    miss rate.
///  * Every application reference charges the profile's
///    instructions-per-reference to the cost model, reproducing the paper's
///    instruction totals.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_WORKLOAD_DRIVER_H
#define ALLOCSIM_WORKLOAD_DRIVER_H

#include "alloc/Allocator.h"
#include "stats/Telemetry.h"
#include "trace/AllocEvents.h"

#include <array>
#include <unordered_map>
#include <unordered_set>

namespace allocsim {

class FaultInjector;
class HeapCheck;

/// Executes allocation events against an allocator.
class Driver {
public:
  /// \p InstrPerRef is the application's instructions-per-data-reference
  /// ratio (Table 2); \p StackWindowBytes bounds the simulated stack
  /// segment's working set.
  Driver(Allocator &Alloc, MemoryBus &Bus, CostModel &Cost,
         double InstrPerRef, uint32_t StackWindowBytes = 2048);

  /// Executes one event.
  void execute(const AllocEvent &Event);

  /// Number of live objects currently tracked.
  size_t liveObjects() const { return Objects.size(); }

  /// Application data references emitted so far.
  uint64_t appRefs() const { return AppRefs; }

  /// Looks up the simulated address of a live object (tests/examples).
  Addr addressOf(uint32_t Id) const;

  /// Attaches (or detaches, with nullptr) the heap-integrity checker; its
  /// operation clock is advanced after every malloc/free event.
  void setHeapCheck(HeapCheck *Checker) { Check = Checker; }

  /// Attaches (or detaches, with nullptr) a fault injector; its event hook
  /// runs after every executed event, on the same deterministic event clock
  /// at every check level and job count.
  void setFaultInjector(FaultInjector *Injector) { Inj = Injector; }

  /// Events dropped because they named an object whose malloc failed under
  /// a simulated heap limit (the failed malloc itself, plus every later
  /// touch/free of that id). Always 0 without an OOM fault plan.
  uint64_t droppedEvents() const { return DroppedEvents; }

  /// Attaches (or detaches, with nullptr) a telemetry registry. A
  /// "driver.events" counter tracks executed events; at full level a
  /// per-event-kind PhaseTimer records each operation's instruction cost
  /// (app + alloc, from the simulated clock — deterministic, unlike wall
  /// time) into "driver.malloc_instr" / "driver.free_instr" /
  /// "driver.touch_instr" / "driver.stack_instr", and a
  /// "driver.obj_lifetime" histogram records, at each free, how many events
  /// the object lived (free ordinal minus malloc ordinal — the paper's
  /// object-lifetime distribution on the event clock; leaked objects are
  /// never recorded, which is exactly what TraceLint predicts statically).
  void attachTelemetry(Telemetry *Registry);

private:
  void touchObject(Addr Address, uint32_t ObjectWords, uint32_t Words,
                   AccessKind Kind);
  void touchStack(uint32_t Words, AccessKind Kind);
  void chargeRef();

  struct ObjectInfo {
    Addr Address;
    uint32_t Words;
    /// Value of EventOrdinal when the object was malloc'd.
    uint64_t BirthOrdinal;
  };

  Allocator &Alloc;
  MemoryBus &Bus;
  CostModel &Cost;
  double InstrPerRef;
  double InstrDebt = 0;

  std::unordered_map<uint32_t, ObjectInfo> Objects;
  uint64_t AppRefs = 0;
  /// 1-based ordinal of the event being executed (the object-lifetime
  /// clock).
  uint64_t EventOrdinal = 0;

  /// Optional heap-integrity checker (null when checking is off).
  HeapCheck *Check = nullptr;

  /// Optional fault injector (null unless a corruption plan is active).
  FaultInjector *Inj = nullptr;

  /// Graceful OOM degradation: ids whose malloc returned null. Their later
  /// touches and frees are dropped (a real program would have branched on
  /// the null), while genuinely unknown ids stay fatal stream errors.
  std::unordered_set<uint32_t> FailedIds;
  uint64_t DroppedEvents = 0;

  /// Telemetry probes; null when telemetry is off. OpInstrHists is indexed
  /// by AllocEventKind.
  TelemetryCounter *EventsProbe = nullptr;
  TelemetryHistogram *LifetimeHist = nullptr;
  std::array<TelemetryHistogram *, 4> OpInstrHists{};

  /// Stack zig-zag state.
  uint32_t StackWindowBytes;
  uint32_t StackPos = 0;
  int StackDir = 1;
};

} // namespace allocsim

#endif // ALLOCSIM_WORKLOAD_DRIVER_H
