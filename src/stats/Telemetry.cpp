//===- stats/Telemetry.cpp - Allocator/cache telemetry registry -----------===//

#include "stats/Telemetry.h"

#include <cassert>
#include <ostream>

using namespace allocsim;

const char *allocsim::telemetryLevelName(TelemetryLevel Level) {
  switch (Level) {
  case TelemetryLevel::Off:
    return "off";
  case TelemetryLevel::Summary:
    return "summary";
  case TelemetryLevel::Full:
    return "full";
  }
  return "off";
}

bool allocsim::tryParseTelemetryLevel(const std::string &Name,
                                      TelemetryLevel &Level) {
  if (Name == "off") {
    Level = TelemetryLevel::Off;
    return true;
  }
  if (Name == "summary") {
    Level = TelemetryLevel::Summary;
    return true;
  }
  if (Name == "full") {
    Level = TelemetryLevel::Full;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Bucket layout
//===----------------------------------------------------------------------===//

unsigned TelemetryBuckets::indexFor(uint64_t Value) {
  if (Value <= MaxExactValue)
    return static_cast<unsigned>(Value);
  unsigned Log = 63 - static_cast<unsigned>(__builtin_clzll(Value));
  return NumExactBuckets + (Log - 6);
}

uint64_t TelemetryBuckets::lowerBound(unsigned Index) {
  assert(Index < NumBuckets && "bucket index out of range");
  if (Index < NumExactBuckets)
    return Index;
  unsigned Log = Index - NumExactBuckets + 6;
  // The first log bucket (log2 == 6) starts right after the exact range.
  return Log == 6 ? MaxExactValue + 1 : uint64_t(1) << Log;
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  for (unsigned I = 0; I != TelemetryBuckets::NumBuckets; ++I)
    Buckets[I] = saturatingAdd(Buckets[I], Other.Buckets[I]);
  Count = saturatingAdd(Count, Other.Count);
  Sum = saturatingAdd(Sum, Other.Sum);
  if (Other.Min < Min)
    Min = Other.Min;
  if (Other.Max > Max)
    Max = Other.Max;
}

uint64_t TelemetrySnapshot::counterValue(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

const HistogramSnapshot &
TelemetrySnapshot::histogram(const std::string &Name) const {
  static const HistogramSnapshot Empty;
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? Empty : It->second;
}

void TelemetrySnapshot::merge(const TelemetrySnapshot &Other) {
  for (const auto &[Name, Value] : Other.Counters) {
    uint64_t &Mine = Counters[Name];
    Mine = saturatingAdd(Mine, Value);
  }
  for (const auto &[Name, Hist] : Other.Histograms)
    Histograms[Name].merge(Hist);
}

void allocsim::writeHistogramJson(std::ostream &OS,
                                  const HistogramSnapshot &Hist) {
  OS << "{\"count\": " << Hist.Count << ", \"sum\": " << Hist.Sum;
  if (Hist.Count != 0)
    OS << ", \"min\": " << Hist.Min << ", \"max\": " << Hist.Max;
  OS << ", \"buckets\": [";
  bool FirstBucket = true;
  for (unsigned I = 0; I != TelemetryBuckets::NumBuckets; ++I) {
    if (Hist.Buckets[I] == 0)
      continue;
    OS << (FirstBucket ? "" : ", ") << '[' << TelemetryBuckets::lowerBound(I)
       << ", " << Hist.Buckets[I] << ']';
    FirstBucket = false;
  }
  OS << "]}";
}

void TelemetrySnapshot::writeJson(std::ostream &OS,
                                  const std::string &Indent) const {
  OS << Indent << "{\"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    OS << (First ? "" : ", ") << '"' << Name << "\": " << Value;
    First = false;
  }
  OS << "},\n" << Indent << " \"histograms\": {";
  First = true;
  for (const auto &[Name, Hist] : Histograms) {
    OS << (First ? "\n" : ",\n") << Indent << "  \"" << Name << "\": ";
    writeHistogramJson(OS, Hist);
    First = false;
  }
  if (!First)
    OS << '\n' << Indent << " ";
  OS << "}}";
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TelemetryCounter *Telemetry::counter(const std::string &Name) {
  if (Level == TelemetryLevel::Off)
    return nullptr;
  return &Counters[Name];
}

TelemetryHistogram *Telemetry::histogram(const std::string &Name) {
  if (Level != TelemetryLevel::Full)
    return nullptr;
  return &Histograms[Name];
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot Snap;
  for (const auto &[Name, Counter] : Counters)
    Snap.Counters.emplace(Name, Counter.value());
  for (const auto &[Name, Hist] : Histograms)
    Snap.Histograms.emplace(Name, Hist.snapshot());
  return Snap;
}
