//===- stats/Telemetry.h - Allocator/cache telemetry registry ---*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanism-level observability for the simulator. The paper's headline
/// claims are claims about *per-operation distributions* — FIRSTFIT loses
/// because its freelist search touches many scattered blocks per malloc,
/// QUICKFIT wins because exact-size reuse keeps the working set hot — but
/// end-state miss and fault counts only show the outcome. The Telemetry
/// registry collects the distributions themselves: named Counters and
/// fixed-bucket Histograms fed by probe points in the allocators, the
/// cache/VM sinks, the simulated heap and the workload driver.
///
/// Design constraints, in order:
///
///  1. **Zero cost when off.** Probes are raw pointers that are null unless
///     a registry was attached; an off-mode probe is a single predictable
///     branch. No atomic operation, no lock and no allocation happens on
///     any measurement path when telemetry is off, and nothing about the
///     simulation (addresses, RNG draws, instruction charges, reference
///     streams) ever depends on telemetry state — off-mode outputs are
///     bit-identical to a build without the probes, which
///     tests/telemetry_equivalence_test.cpp and the perf-baseline gate
///     hold us to.
///
///  2. **Deterministic and mergeable.** A registry is private to one
///     experiment cell (no sharing, hence no locking when on, either).
///     Snapshots are plain integer maps whose merge() is associative and
///     commutative — saturating adds and min/max only — so MatrixRunner
///     can fold per-cell telemetry in any order and still produce the
///     identical merged snapshot at any --jobs count. PhaseTimer reads the
///     *simulated* instruction clock, not wall time, for the same reason.
///
///  3. **Fixed memory.** Histograms have a fixed bucket layout (exact
///     buckets for 0..64, log2 buckets above) so merging is element-wise
///     and snapshots have bounded size regardless of the value range.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_STATS_TELEMETRY_H
#define ALLOCSIM_STATS_TELEMETRY_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace allocsim {

/// How much telemetry a run collects. Summary enables counters only; Full
/// adds histograms (and the per-set cache profiles they are built from).
enum class TelemetryLevel : uint8_t { Off, Summary, Full };

/// Display name ("off", "summary", "full").
const char *telemetryLevelName(TelemetryLevel Level);

/// Parses a level name; returns false on unknown input.
bool tryParseTelemetryLevel(const std::string &Name, TelemetryLevel &Level);

/// Saturating add: counters stick at UINT64_MAX instead of wrapping, so a
/// merged snapshot can never report fewer events than one of its parts.
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t Sum = A + B;
  return Sum < A ? UINT64_MAX : Sum;
}

/// A named monotone counter. Probes hold a raw pointer to one of these
/// (null when telemetry is off) and add() on their event.
class TelemetryCounter {
public:
  void add(uint64_t Delta = 1) { Count = saturatingAdd(Count, Delta); }
  uint64_t value() const { return Count; }

private:
  uint64_t Count = 0;
};

/// The fixed bucket layout shared by every histogram: values 0..64 each get
/// an exact bucket (the range where the paper's per-operation quantities —
/// search lengths, size-class indices, run lengths — mostly live), values
/// above 64 share one bucket per power of two. Powers of two are bucket
/// boundaries everywhere: 2^k for k <= 6 is an exact bucket, and every
/// 2^k for k >= 7 starts a fresh log bucket.
struct TelemetryBuckets {
  /// Largest exactly-bucketed value.
  static constexpr uint64_t MaxExactValue = 64;
  static constexpr unsigned NumExactBuckets = MaxExactValue + 1;
  /// Log2 buckets cover floor(log2(v)) in [6, 63] for v > 64.
  static constexpr unsigned NumLogBuckets = 58;
  static constexpr unsigned NumBuckets = NumExactBuckets + NumLogBuckets;

  static unsigned indexFor(uint64_t Value);
  /// Smallest value that lands in bucket \p Index.
  static uint64_t lowerBound(unsigned Index);
};

/// Mergeable integer summary of one histogram: fixed bucket counts plus
/// count/sum/min/max. Everything is an integer, so snapshots serialize
/// exactly and merge deterministically.
struct HistogramSnapshot {
  std::array<uint64_t, TelemetryBuckets::NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;

  /// Derived mean (not serialized; recompute from Sum/Count).
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Element-wise saturating fold of \p Other into this. Associative and
  /// commutative (adds and min/max only).
  void merge(const HistogramSnapshot &Other);

  bool operator==(const HistogramSnapshot &Other) const = default;
};

/// A fixed-bucket histogram probes record() into.
class TelemetryHistogram {
public:
  void record(uint64_t Value) {
    uint64_t &Bucket = Snap.Buckets[TelemetryBuckets::indexFor(Value)];
    Bucket = saturatingAdd(Bucket, 1);
    Snap.Count = saturatingAdd(Snap.Count, 1);
    Snap.Sum = saturatingAdd(Snap.Sum, Value);
    if (Value < Snap.Min)
      Snap.Min = Value;
    if (Value > Snap.Max)
      Snap.Max = Value;
  }

  /// Records \p Value \p Times times in one update — equivalent to calling
  /// record(Value) in a loop (saturation included), for probes that already
  /// hold their data as (value, count) pairs. Times == 0 is a no-op: it
  /// must not disturb Min/Max.
  void record(uint64_t Value, uint64_t Times) {
    if (Times == 0)
      return;
    uint64_t &Bucket = Snap.Buckets[TelemetryBuckets::indexFor(Value)];
    Bucket = saturatingAdd(Bucket, Times);
    Snap.Count = saturatingAdd(Snap.Count, Times);
    const uint64_t Weight = Value != 0 && Times > UINT64_MAX / Value
                                ? UINT64_MAX
                                : Value * Times;
    Snap.Sum = saturatingAdd(Snap.Sum, Weight);
    if (Value < Snap.Min)
      Snap.Min = Value;
    if (Value > Snap.Max)
      Snap.Max = Value;
  }

  const HistogramSnapshot &snapshot() const { return Snap; }

private:
  HistogramSnapshot Snap;
};

/// Everything one registry measured, detached from the registry: plain
/// sorted maps of name -> value. This is what RunResult carries, what
/// MatrixRunner folds across cells, and what the JSON/CSV emitters write.
struct TelemetrySnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, HistogramSnapshot> Histograms;

  bool empty() const { return Counters.empty() && Histograms.empty(); }

  /// Returns the counter's value, or 0 if the name was never registered.
  uint64_t counterValue(const std::string &Name) const;

  /// Returns the named histogram, or an empty one if never registered.
  const HistogramSnapshot &histogram(const std::string &Name) const;

  /// Folds \p Other into this: union of names, saturating element-wise
  /// adds, min/max for extrema. Associative and commutative, so any fold
  /// order over a set of snapshots produces the identical result.
  void merge(const TelemetrySnapshot &Other);

  /// Writes this snapshot as one JSON object ("counters" and "histograms"
  /// keys; integer-only, nonzero buckets as [lower_bound, count] pairs).
  /// \p Indent is prefixed to each line.
  void writeJson(std::ostream &OS, const std::string &Indent) const;

  bool operator==(const TelemetrySnapshot &Other) const = default;
};

/// Writes one histogram as a single-line JSON object: {"count", "sum",
/// "min"/"max" (when nonempty), "buckets": [[lower_bound, count], ...]}.
/// Shared by TelemetrySnapshot::writeJson and the lint predictions emitter
/// so a statically predicted histogram and a measured one render
/// byte-identically.
void writeHistogramJson(std::ostream &OS, const HistogramSnapshot &Hist);

/// The per-run telemetry registry. One instance per experiment cell, never
/// shared across threads — "lock-free when off" holds trivially because the
/// off state is the absence of the registry, and the on state is
/// single-owner. Probe setup fetches stable raw pointers once (std::map
/// nodes do not move); measurement paths then touch only those pointers.
class Telemetry {
public:
  explicit Telemetry(TelemetryLevel RunLevel) : Level(RunLevel) {}

  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  TelemetryLevel level() const { return Level; }

  /// Returns the named counter, creating it on first use; null at
  /// TelemetryLevel::Off (callers then skip the probe entirely).
  TelemetryCounter *counter(const std::string &Name);

  /// Returns the named histogram, creating it on first use; null below
  /// TelemetryLevel::Full — distribution collection is the expensive tier.
  TelemetryHistogram *histogram(const std::string &Name);

  /// Copies the current state of every registered instrument.
  TelemetrySnapshot snapshot() const;

private:
  TelemetryLevel Level;
  std::map<std::string, TelemetryCounter> Counters;
  std::map<std::string, TelemetryHistogram> Histograms;
};

/// Scoped phase timer over a *simulated* clock: records (clock at
/// destruction - clock at construction) into a histogram. The clock is any
/// monotone uint64_t source — the workload driver passes the cost model's
/// total instruction count — so phase "times" are deterministic and merge
/// like any other histogram. A null histogram makes the timer free: the
/// clock is never even read.
template <typename Clock> class PhaseTimer {
public:
  PhaseTimer(TelemetryHistogram *PhaseHist, Clock ClockFn)
      : Hist(PhaseHist), Now(ClockFn), Start(PhaseHist ? ClockFn() : 0) {}
  ~PhaseTimer() {
    if (Hist)
      Hist->record(Now() - Start);
  }

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  TelemetryHistogram *Hist;
  Clock Now;
  uint64_t Start;
};

template <typename Clock>
PhaseTimer(TelemetryHistogram *, Clock) -> PhaseTimer<Clock>;

} // namespace allocsim

#endif // ALLOCSIM_STATS_TELEMETRY_H
