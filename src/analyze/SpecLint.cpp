//===- analyze/SpecLint.cpp - Matrix-spec linting -------------------------===//

#include "analyze/SpecLint.h"

#include "alloc/Allocator.h"
#include "core/MatrixRunner.h"
#include "stats/Telemetry.h"
#include "support/SpecParse.h"
#include "workload/Workload.h"

#include <set>

using namespace allocsim;

namespace {

/// Walks the comma-separated items of an axis value, handing each item to
/// \p Check together with its location in the spec string. \p ValueOffset
/// is the 0-based offset of the value's first character.
template <typename Fn>
void forEachItem(const std::string &Value, size_t ValueOffset, Fn Check) {
  size_t ItemOffset = 0;
  for (const std::string &Item : splitSpecList(Value, ',')) {
    SourceLoc Loc{1, static_cast<uint32_t>(ValueOffset + ItemOffset + 1)};
    Check(Item, Loc);
    ItemOffset += Item.size() + 1;
  }
}

} // namespace

void allocsim::lintMatrixSpec(const std::string &Text, DiagEngine &Diags) {
  // Structural pass (shared with parseMatrixSpec): axis shape, duplicate
  // keys, empty values.
  std::vector<SpecKeyValue> Axes = parseSpecKeyValues(Text, Diags);

  bool SawWorkloads = false, SawAllocators = false;
  bool WorkloadsUsable = false, AllocatorsUsable = false;
  for (const SpecKeyValue &Axis : Axes) {
    SourceLoc AxisLoc{1, static_cast<uint32_t>(Axis.Offset + 1)};
    size_t ValueOffset = Axis.Offset + Axis.Key.size() + 1;
    if (Axis.Key == "workloads") {
      SawWorkloads = true;
      std::set<WorkloadId> Seen;
      forEachItem(Axis.Value, ValueOffset,
                  [&](const std::string &Item, SourceLoc Loc) {
                    WorkloadId Id;
                    if (Item.empty() || !tryParseWorkload(Item, Id)) {
                      Diags.error("spec-unknown-workload", Loc,
                                  "unknown workload '" + Item + "'");
                      return;
                    }
                    WorkloadsUsable = true;
                    if (!Seen.insert(Id).second)
                      Diags.warning("spec-duplicate-value", Loc,
                                    "workload '" + Item +
                                        "' listed twice (duplicate matrix "
                                        "cells)");
                  });
    } else if (Axis.Key == "allocators") {
      SawAllocators = true;
      std::set<AllocatorKind> Seen;
      forEachItem(Axis.Value, ValueOffset,
                  [&](const std::string &Item, SourceLoc Loc) {
                    AllocatorKind Kind;
                    if (Item.empty() || !tryParseAllocatorKind(Item, Kind)) {
                      Diags.error("spec-unknown-allocator", Loc,
                                  "unknown allocator '" + Item + "'");
                      return;
                    }
                    AllocatorsUsable = true;
                    if (!Seen.insert(Kind).second)
                      Diags.warning("spec-duplicate-value", Loc,
                                    "allocator '" + Item +
                                        "' listed twice (duplicate matrix "
                                        "cells)");
                  });
    } else if (Axis.Key == "caches") {
      forEachItem(Axis.Value, ValueOffset,
                  [&](const std::string &Item, SourceLoc Loc) {
                    CacheConfig Config;
                    std::string Why;
                    if (!parseCacheSpec(Item, Config, Why))
                      Diags.error("spec-bad-cache", Loc, Why);
                  });
    } else if (Axis.Key == "paging" || Axis.Key == "penalty") {
      const char *What = Axis.Key == "paging" ? "paging memory size (KB)"
                                              : "miss penalty (cycles)";
      forEachItem(Axis.Value, ValueOffset,
                  [&](const std::string &Item, SourceLoc Loc) {
                    uint32_t Value;
                    std::string Why;
                    if (!parseSpecUnsigned(Item, What, Value, Why))
                      Diags.error("spec-bad-number", Loc, Why);
                  });
    } else if (Axis.Key == "telemetry") {
      TelemetryLevel Level;
      if (!tryParseTelemetryLevel(Axis.Value, Level))
        Diags.error("spec-bad-value",
                    {1, static_cast<uint32_t>(ValueOffset + 1)},
                    "bad telemetry level '" + Axis.Value +
                        "' (expected off, summary or full)");
    } else if (Axis.Key == "delivery") {
      if (Axis.Value != "batched" && Axis.Value != "scalar")
        Diags.error("spec-bad-value",
                    {1, static_cast<uint32_t>(ValueOffset + 1)},
                    "bad delivery mode '" + Axis.Value +
                        "' (expected batched or scalar)");
    } else if (Axis.Key == "engine") {
      if (!tryParseCacheEngine(Axis.Value))
        Diags.error("spec-bad-value",
                    {1, static_cast<uint32_t>(ValueOffset + 1)},
                    "bad cache engine '" + Axis.Value +
                        "' (expected percfg or stackdist)");
    } else {
      Diags.error("spec-unknown-axis", AxisLoc,
                  "unknown axis '" + Axis.Key +
                      "' (expected workloads/allocators/caches/paging/"
                      "penalty/telemetry/delivery/engine)");
    }
  }

  // An absent or fully-bad required axis means the workload x allocator
  // cross-product is empty: nothing would run. Only report the
  // missing-axis rule when the axis itself was absent — bad names already
  // carry their own errors.
  if (!SawWorkloads)
    Diags.error("spec-missing-workloads", {},
                "matrix spec must name at least one workload "
                "(workloads=gs,espresso,...)");
  else if (!WorkloadsUsable)
    Diags.error("spec-missing-workloads", {},
                "no usable workload survives the 'workloads' axis; the "
                "cell cross-product is empty");
  if (!SawAllocators)
    Diags.error("spec-missing-allocators", {},
                "matrix spec must name at least one allocator "
                "(allocators=FirstFit,BSD,...)");
  else if (!AllocatorsUsable)
    Diags.error("spec-missing-allocators", {},
                "no usable allocator survives the 'allocators' axis; the "
                "cell cross-product is empty");
}
