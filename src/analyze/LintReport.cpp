//===- analyze/LintReport.cpp - allocsim-lint-v1 report emission ----------===//

#include "analyze/LintReport.h"

#include <ostream>

using namespace allocsim;

LintSummary allocsim::summarizeLint(const std::vector<LintInput> &Inputs) {
  LintSummary Summary;
  for (const LintInput &Input : Inputs) {
    Summary.Errors += Input.Diags.errorCount();
    Summary.Warnings += Input.Diags.warningCount();
  }
  return Summary;
}

void allocsim::printLintReport(std::ostream &OS,
                               const std::vector<LintInput> &Inputs) {
  for (const LintInput &Input : Inputs)
    Input.Diags.print(OS, Input.Name);
  LintSummary Summary = summarizeLint(Inputs);
  if (Summary.clean()) {
    OS << Inputs.size() << " input" << (Inputs.size() == 1 ? "" : "s")
       << " linted, clean\n";
    return;
  }
  OS << Summary.Errors << " error" << (Summary.Errors == 1 ? "" : "s")
     << ", " << Summary.Warnings << " warning"
     << (Summary.Warnings == 1 ? "" : "s") << "\n";
}

void allocsim::writeLintReportJson(std::ostream &OS,
                                   const std::vector<LintInput> &Inputs) {
  OS << "{\"schema\": \"allocsim-lint-v1\",\n \"inputs\": [";
  for (size_t I = 0; I != Inputs.size(); ++I) {
    const LintInput &Input = Inputs[I];
    OS << (I ? ",\n  " : "\n  ") << "{\"name\": \"" << jsonEscaped(Input.Name)
       << "\",\n   \"kind\": \"" << jsonEscaped(Input.Kind)
       << "\",\n   \"diagnostics\": ";
    Input.Diags.writeJson(OS, "   ");
    OS << ",\n   \"errors\": " << Input.Diags.errorCount()
       << ", \"warnings\": " << Input.Diags.warningCount();
    if (Input.Predictions) {
      OS << ",\n   \"predictions\": ";
      writeTracePredictionsJson(OS, *Input.Predictions, "   ");
    }
    OS << "}";
  }
  if (!Inputs.empty())
    OS << "\n ";
  LintSummary Summary = summarizeLint(Inputs);
  OS << "],\n \"errors\": " << Summary.Errors
     << ", \"warnings\": " << Summary.Warnings << ",\n \"clean\": "
     << (Summary.clean() ? "true" : "false") << "}\n";
}
