//===- analyze/TraceLint.cpp - Static analysis of event scripts -----------===//

#include "analyze/TraceLint.h"

#include "alloc/BitmapFit.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>

using namespace allocsim;

std::vector<LocatedAllocEvent> allocsim::lintTraceScript(std::istream &IS,
                                                         DiagEngine &Diags) {
  std::vector<LocatedAllocEvent> Events = parseAllocEvents(IS, Diags);
  std::vector<AllocEvent> Bare;
  std::vector<SourceLoc> Locs;
  Bare.reserve(Events.size());
  Locs.reserve(Events.size());
  for (const LocatedAllocEvent &Event : Events) {
    Bare.push_back(Event.Event);
    Locs.push_back(Event.Loc);
  }
  validateAllocEvents(Bare, Diags, &Locs);
  return Events;
}

TraceModel allocsim::buildTraceModel(std::vector<LocatedAllocEvent> Events) {
  TraceModel Model;
  Model.Events = std::move(Events);
  // Id -> index into Model.Objects of the currently-live binding. Mirrors
  // the Driver's Objects map: a free or touch resolves to the most recent
  // malloc of that id.
  std::unordered_map<uint32_t, size_t> Live;
  for (size_t I = 0; I != Model.Events.size(); ++I) {
    const LocatedAllocEvent &Located = Model.Events[I];
    const AllocEvent &Event = Located.Event;
    switch (Event.Kind) {
    case AllocEventKind::Malloc: {
      ObjectLifetime Object;
      Object.Id = Event.Id;
      Object.Size = Event.Amount;
      Object.BirthIdx = I;
      Object.BirthLoc = Located.Loc;
      Live[Event.Id] = Model.Objects.size();
      Model.Objects.push_back(std::move(Object));
      break;
    }
    case AllocEventKind::Free: {
      auto It = Live.find(Event.Id);
      if (It == Live.end())
        break; // invalid free; already diagnosed
      Model.Objects[It->second].DeathIdx = I;
      Live.erase(It);
      break;
    }
    case AllocEventKind::Touch: {
      auto It = Live.find(Event.Id);
      if (It == Live.end())
        break; // invalid touch; already diagnosed
      Model.Objects[It->second].TouchIdxs.push_back(I);
      break;
    }
    case AllocEventKind::StackTouch:
      break;
    }
  }
  return Model;
}

TracePredictions allocsim::predictTrace(const TraceModel &Model) {
  TracePredictions P;
  P.Events = Model.Events.size();

  // Event-kind counts and application reference volume come straight off
  // the stream; live-bytes/objects trajectories need the running walk.
  TelemetryHistogram RequestSizes;
  TelemetryHistogram LineClassDemand;
  uint64_t LiveBytes = 0, LiveObjects = 0;
  std::unordered_map<uint32_t, uint32_t> LiveSizes;
  for (const LocatedAllocEvent &Located : Model.Events) {
    const AllocEvent &Event = Located.Event;
    switch (Event.Kind) {
    case AllocEventKind::Malloc: {
      ++P.MallocCalls;
      P.BytesRequested += Event.Amount;
      RequestSizes.record(Event.Amount);
      if (Event.Amount <= BitmapFit::MaxSingleBytes) {
        ++P.LineClassMallocs;
        LineClassDemand.record((Event.Amount + BitmapFit::LineBytes - 1) /
                                   BitmapFit::LineBytes -
                               1);
      } else {
        ++P.DelegatedMallocs;
      }
      LiveBytes += Event.Amount;
      ++LiveObjects;
      P.MaxLiveBytes = std::max(P.MaxLiveBytes, LiveBytes);
      P.MaxLiveObjects = std::max(P.MaxLiveObjects, LiveObjects);
      LiveSizes[Event.Id] = Event.Amount;
      break;
    }
    case AllocEventKind::Free: {
      auto It = LiveSizes.find(Event.Id);
      if (It == LiveSizes.end())
        break; // invalid free: the simulator would die, predictions are
               // best-effort on erroneous scripts
      ++P.FreeCalls;
      LiveBytes -= It->second;
      --LiveObjects;
      LiveSizes.erase(It);
      break;
    }
    case AllocEventKind::Touch:
      ++P.TouchEvents;
      P.AppRefs += Event.Amount;
      break;
    case AllocEventKind::StackTouch:
      ++P.StackTouchEvents;
      P.AppRefs += Event.Amount;
      break;
    }
  }
  P.FinalLiveBytes = LiveBytes;
  P.FinalLiveObjects = LiveObjects;
  P.RequestSizes = RequestSizes.snapshot();
  P.LineClassDemand = LineClassDemand.snapshot();

  // Object lifetimes on the event clock, straight from the IR intervals;
  // leaked objects have no death and are never recorded — exactly the
  // driver's behavior (it records at the free).
  TelemetryHistogram Lifetimes;
  for (const ObjectLifetime &Object : Model.Objects)
    if (Object.DeathIdx)
      Lifetimes.record(Object.lifetimeEvents());
  P.Lifetimes = Lifetimes.snapshot();
  return P;
}

void allocsim::writeTracePredictionsJson(std::ostream &OS,
                                         const TracePredictions &P,
                                         const std::string &Indent) {
  OS << "{\n";
  OS << Indent << " \"events\": " << P.Events << ",\n";
  OS << Indent << " \"mallocs\": " << P.MallocCalls << ",\n";
  OS << Indent << " \"frees\": " << P.FreeCalls << ",\n";
  OS << Indent << " \"touches\": " << P.TouchEvents << ",\n";
  OS << Indent << " \"stack_touches\": " << P.StackTouchEvents << ",\n";
  OS << Indent << " \"bytes_requested\": " << P.BytesRequested << ",\n";
  OS << Indent << " \"max_live_bytes\": " << P.MaxLiveBytes << ",\n";
  OS << Indent << " \"final_live_bytes\": " << P.FinalLiveBytes << ",\n";
  OS << Indent << " \"max_live_objects\": " << P.MaxLiveObjects << ",\n";
  OS << Indent << " \"final_live_objects\": " << P.FinalLiveObjects << ",\n";
  OS << Indent << " \"app_refs\": " << P.AppRefs << ",\n";
  OS << Indent << " \"request_bytes\": ";
  writeHistogramJson(OS, P.RequestSizes);
  OS << ",\n" << Indent << " \"obj_lifetime\": ";
  writeHistogramJson(OS, P.Lifetimes);
  OS << ",\n"
     << Indent << " \"line_class_mallocs\": " << P.LineClassMallocs << ",\n";
  OS << Indent << " \"delegated_mallocs\": " << P.DelegatedMallocs << ",\n";
  OS << Indent << " \"line_class_demand\": ";
  writeHistogramJson(OS, P.LineClassDemand);
  OS << "\n" << Indent << "}";
}
