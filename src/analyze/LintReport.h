//===- analyze/LintReport.h - allocsim-lint-v1 report emission --*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable lint report shared by the allocsim_lint tool and
/// allocsim_cli --lint-json. Schema `allocsim-lint-v1`:
///
/// \code{.json}
///   {"schema": "allocsim-lint-v1",
///    "inputs": [
///      {"name": "<path or pseudo-name>",
///       "kind": "trace" | "matrix-spec",
///       "diagnostics": [{"rule", "severity", "line", "column",
///                        "message"}, ...],
///       "errors": <count>, "warnings": <count>,
///       "predictions": { ... }},        // traces that had no errors only
///      ...],
///    "errors": <total>, "warnings": <total>,
///    "clean": true|false}
/// \endcode
///
/// "clean" is true iff no input produced any diagnostic at all — the same
/// predicate behind exit code 0. Predictions (see TraceLint.h) appear only
/// for trace inputs that validated error-free, since they are only
/// simulator-exact for sound scripts.
///
/// Everything is emitted in input order with stable formatting, so the
/// report is byte-deterministic for a given input set — tests diff it.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ANALYZE_LINTREPORT_H
#define ALLOCSIM_ANALYZE_LINTREPORT_H

#include "analyze/TraceLint.h"
#include "support/Diag.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace allocsim {

/// One linted input and everything found about it.
struct LintInput {
  /// File path, or a pseudo-name like "--matrix" / "<stdin>".
  std::string Name;
  /// "trace" or "matrix-spec".
  std::string Kind;
  DiagEngine Diags;
  /// Static predictions; set for error-free trace inputs.
  std::optional<TracePredictions> Predictions;
};

/// Totals over a report's inputs.
struct LintSummary {
  size_t Errors = 0;
  size_t Warnings = 0;

  bool clean() const { return Errors == 0 && Warnings == 0; }
};

LintSummary summarizeLint(const std::vector<LintInput> &Inputs);

/// Human-readable rendering: compiler-style diagnostic lines per input,
/// then a one-line totals summary ("3 errors, 1 warning" or "clean").
void printLintReport(std::ostream &OS, const std::vector<LintInput> &Inputs);

/// The allocsim-lint-v1 JSON document described above.
void writeLintReportJson(std::ostream &OS,
                         const std::vector<LintInput> &Inputs);

} // namespace allocsim

#endif // ALLOCSIM_ANALYZE_LINTREPORT_H
