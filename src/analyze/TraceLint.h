//===- analyze/TraceLint.h - Static analysis of event scripts ---*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceLint: static analysis of allocation-event scripts, no simulation
/// involved. A script fully determines the *request-stream* side of a run —
/// which objects exist when, how big they are, how often they are touched —
/// before any allocator places a single byte. TraceLint exploits that:
///
///  1. **Diagnostics.** Every syntactic and semantic defect in a script
///     (double frees, use-after-free touches, leaks, zero sizes, malformed
///     records) is reported with line/column and a stable rule id — see the
///     rule tables in trace/AllocEvents.h, whose exhaustive parser and
///     validator this is the façade over.
///
///  2. **The lifetime IR.** A validated script is lifted into a TraceModel:
///     one ObjectLifetime per malloc with its birth/death event interval
///     and touch sites. This is the object-lifetime view the paper reasons
///     with (short-lived objects dominate, so cached placement matters).
///
///  3. **Static predictions.** From the IR, TraceLint computes exactly what
///     parts of a simulation's outcome are allocator-independent: call and
///     event counts, total bytes requested, the live-bytes/live-objects
///     high-water marks, application reference volume, and the request-size
///     and object-lifetime histograms on the telemetry bucket scheme. Each
///     prediction equals — bit-exactly — a specific field of the RunResult
///     that runScriptExperiment produces for the same script (see
///     TracePredictions' member docs); tests/tracelint_crosscheck_test.cpp
///     holds every corpus script to that. A mismatch means either the
///     analyzer or the simulator mis-models the event semantics.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ANALYZE_TRACELINT_H
#define ALLOCSIM_ANALYZE_TRACELINT_H

#include "stats/Telemetry.h"
#include "support/Diag.h"
#include "trace/AllocEvents.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace allocsim {

/// One object's life in the script: the lifetime IR node.
struct ObjectLifetime {
  uint32_t Id = 0;
  /// Requested bytes.
  uint32_t Size = 0;
  /// Event index (0-based) of the malloc.
  size_t BirthIdx = 0;
  /// Event index of the free; nullopt for objects that leak.
  std::optional<size_t> DeathIdx;
  /// Event indices of touches referring to this object while live.
  std::vector<size_t> TouchIdxs;
  /// Where the malloc record appeared in the script text.
  SourceLoc BirthLoc;

  /// Lifetime in events (free ordinal minus malloc ordinal), matching the
  /// driver's "driver.obj_lifetime" clock; only for freed objects.
  uint64_t lifetimeEvents() const { return *DeathIdx - BirthIdx; }
};

/// The lifetime IR: the event stream plus the per-object intervals lifted
/// from it. Built with the same id-resolution rules the Driver uses, so on
/// a validated script the model and the simulation agree by construction.
/// On a script with semantic errors the model is best-effort (erroneous
/// frees/touches are dropped, a double malloc rebinds the id).
struct TraceModel {
  std::vector<LocatedAllocEvent> Events;
  /// In birth order.
  std::vector<ObjectLifetime> Objects;
};

/// Everything about a run that is computable from the script alone. Every
/// field equals a specific simulator measurement bit-exactly when the same
/// (validated) script is run through runScriptExperiment with telemetry at
/// TelemetryLevel::Full.
struct TracePredictions {
  /// == telemetry counter "driver.events".
  uint64_t Events = 0;
  /// == RunResult::Alloc.MallocCalls (and "alloc.mallocs").
  uint64_t MallocCalls = 0;
  /// == RunResult::Alloc.FreeCalls (and "alloc.frees").
  uint64_t FreeCalls = 0;
  /// Touch / stack-touch event counts (no direct telemetry counterpart;
  /// Events == MallocCalls + FreeCalls + TouchEvents + StackTouchEvents).
  uint64_t TouchEvents = 0;
  uint64_t StackTouchEvents = 0;
  /// == RunResult::Alloc.BytesRequested.
  uint64_t BytesRequested = 0;
  /// == RunResult::Alloc.MaxLiveBytes.
  uint64_t MaxLiveBytes = 0;
  /// == RunResult::Alloc.LiveBytes at end of run.
  uint64_t FinalLiveBytes = 0;
  /// == RunResult::Alloc.MaxLiveObjects.
  uint64_t MaxLiveObjects = 0;
  /// == RunResult::Alloc.LiveObjects at end of run.
  uint64_t FinalLiveObjects = 0;
  /// == RunResult::AppRefs: the driver emits exactly Amount references per
  /// touch/stack-touch event (wrapping within the object, which changes
  /// addresses but never the count).
  uint64_t AppRefs = 0;
  /// == telemetry histogram "alloc.request_bytes" (per-size-class
  /// allocation counts on the fixed TelemetryBuckets scheme).
  HistogramSnapshot RequestSizes;
  /// == telemetry histogram "driver.obj_lifetime" (leaked objects are
  /// never recorded, on either side).
  HistogramSnapshot Lifetimes;
  /// Cache-line size-class demand: how the request stream lands on
  /// BitmapFit's line-granular buckets (requests of up to
  /// BitmapFit::MaxSingleBytes round up to whole 32-byte lines; larger
  /// ones delegate to the general backend). Statically predictable
  /// because the dispatch depends only on the requested size:
  /// LineClassMallocs == counter "alloc.class_hits", DelegatedMallocs ==
  /// counter "alloc.class_misses", and LineClassDemand == histogram
  /// "alloc.class_index", all under AllocatorKind::BitmapFit.
  uint64_t LineClassMallocs = 0;
  uint64_t DelegatedMallocs = 0;
  HistogramSnapshot LineClassDemand;
};

/// Parses and validates one script: every syntactic and semantic finding
/// lands in \p Diags (exhaustively — analysis continues past each defect),
/// and the parsed events are returned for IR construction.
std::vector<LocatedAllocEvent> lintTraceScript(std::istream &IS,
                                               DiagEngine &Diags);

/// Lifts parsed events into the lifetime IR.
TraceModel buildTraceModel(std::vector<LocatedAllocEvent> Events);

/// Computes the static predictions from the IR. Exactness against the
/// simulator is only guaranteed for scripts that validated without errors.
TracePredictions predictTrace(const TraceModel &Model);

/// Writes the predictions as one JSON object (integer-only; histograms in
/// the same [lower_bound, count] bucket form telemetry snapshots use).
/// \p Indent prefixes every emitted line.
void writeTracePredictionsJson(std::ostream &OS,
                               const TracePredictions &Predictions,
                               const std::string &Indent);

} // namespace allocsim

#endif // ALLOCSIM_ANALYZE_TRACELINT_H
