//===- analyze/SpecLint.h - Matrix-spec linting -----------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive linting of --matrix specs ("workloads=gs;allocators=BSD;...")
/// over the same diagnostics engine TraceLint uses. parseMatrixSpec stops
/// at its first problem — correct for a CLI that is about to refuse the
/// run, useless for fixing a spec with three typos. lintMatrixSpec reports
/// everything at once, with line 1 / column pointing into the spec string.
///
/// Rules (E = error, W = warning):
///
///   spec-empty-axis       E  empty axis (stray or trailing ';')
///   spec-missing-equals   E  axis without '=' or with an empty key
///   spec-duplicate-axis   E  axis key given twice
///   spec-empty-value      E  axis with an empty value ("workloads=")
///   spec-unknown-axis     E  unrecognized axis key
///   spec-unknown-workload E  name tryParseWorkload rejects
///   spec-unknown-allocator E name tryParseAllocatorKind rejects
///   spec-bad-cache        E  cache geometry parseCacheSpec rejects
///   spec-bad-number       E  bad paging/penalty entry
///   spec-bad-value        E  bad telemetry/delivery value
///   spec-duplicate-value  W  workload/allocator listed twice (the matrix
///                            would run duplicate cells)
///   spec-missing-workloads E required 'workloads' axis absent or unusable
///                            (the cross-product of cells would be empty)
///   spec-missing-allocators E likewise for 'allocators'
///
/// The structural rules (first four) are shared with parseMatrixSpec via
/// support/SpecParse.h's parseSpecKeyValues; a spec that lints clean always
/// parses, and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ANALYZE_SPECLINT_H
#define ALLOCSIM_ANALYZE_SPECLINT_H

#include "support/Diag.h"

#include <string>

namespace allocsim {

/// Lints one matrix spec string, reporting every finding into \p Diags.
void lintMatrixSpec(const std::string &Text, DiagEngine &Diags);

} // namespace allocsim

#endif // ALLOCSIM_ANALYZE_SPECLINT_H
