//===- mem/MemAccess.h - Memory reference records ---------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-reference record that flows from the simulated program and
/// allocator into the locality simulators. This is the execution-driven
/// equivalent of one entry of the paper's PIXIE data-reference trace, with
/// one addition: each access is tagged with its *source* so we can attribute
/// misses to the application, the allocator's bookkeeping, or the emulated
/// boundary tags (the paper's Table 6 experiment).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_MEMACCESS_H
#define ALLOCSIM_MEM_MEMACCESS_H

#include <cstdint>

namespace allocsim {

/// Simulated addresses are 32-bit, matching the paper's MIPS (DECstation)
/// test vehicle.
using Addr = uint32_t;

/// Default base of the simulated heap segment.
inline constexpr Addr HeapBase = 0x1000'0000;

/// Base of the simulated stack/static segment used by synthetic programs for
/// their non-heap data references.
inline constexpr Addr StackBase = 0x0800'0000;

/// Read or write.
enum class AccessKind : uint8_t { Read, Write };

/// Who issued the reference.
enum class AccessSource : uint8_t {
  /// The application program referencing its own (heap or stack) data.
  Application,
  /// The allocator referencing freelists, headers, chunk tables, etc.
  Allocator,
  /// Emulated boundary-tag pollution (Table 6 ablation only).
  TagEmulation,
};

inline constexpr unsigned NumAccessSources = 3;
inline constexpr unsigned NumAccessKinds = 2;

/// Returns a short human-readable name for \p Source.
inline const char *accessSourceName(AccessSource Source) {
  switch (Source) {
  case AccessSource::Application:
    return "app";
  case AccessSource::Allocator:
    return "alloc";
  case AccessSource::TagEmulation:
    return "tag";
  }
  return "?";
}

/// One data reference.
struct MemAccess {
  Addr Address = 0;
  uint8_t Size = 4;
  AccessKind Kind = AccessKind::Read;
  AccessSource Source = AccessSource::Application;
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_MEMACCESS_H
