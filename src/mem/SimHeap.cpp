//===- mem/SimHeap.cpp - Simulated heap segment ---------------------------===//

#include "mem/SimHeap.h"

#include "support/Error.h"

using namespace allocsim;

SimHeap::SimHeap(MemoryBus &TraceBus, Addr HeapBaseAddr, uint32_t LimitBytes)
    : Bus(TraceBus), Base(HeapBaseAddr), Break(HeapBaseAddr),
      Limit(LimitBytes) {
  assert((Base & 4095) == 0 && "heap base must be page aligned");
}

Addr SimHeap::sbrk(uint32_t Bytes) {
  if (Bytes > Limit - heapBytes())
    reportFatalError("simulated heap limit exceeded (sbrk of " +
                     std::to_string(Bytes) + " bytes past " +
                     std::to_string(heapBytes()) + ")");
  Addr Old = Break;
  Break += Bytes;
  Storage.resize(Break - Base, 0);
  return Old;
}
