//===- mem/SimHeap.cpp - Simulated heap segment ---------------------------===//

#include "mem/SimHeap.h"

#include "stats/Telemetry.h"
#include "support/Error.h"

using namespace allocsim;

SimHeap::SimHeap(MemoryBus &TraceBus, Addr HeapBaseAddr, uint32_t LimitBytes)
    : Bus(TraceBus), Base(HeapBaseAddr), Break(HeapBaseAddr),
      Limit(LimitBytes) {
  assert((Base & 4095) == 0 && "heap base must be page aligned");
  // The break must stay representable: a fully grown segment may not reach
  // the end of the 32-bit address space, or Break would wrap to 0 and
  // contains() and every Addr comparison in the allocators would invert.
  if (uint64_t(Base) + LimitBytes > 0xFFFF'FFFFu)
    reportFatalError("heap segment wraps the 32-bit address space (base " +
                     std::to_string(Base) + " + limit " +
                     std::to_string(LimitBytes) + ")");
}

Addr SimHeap::sbrk(uint32_t Bytes) {
  // Segment growth is a flush point: the ShadowHeap validates every
  // reference against the break, so references staged before this sbrk
  // must be delivered before the break moves. sbrk is rare (amortized
  // doubling in the allocators), so the early flush costs nothing.
  Bus.flush();
  if (Bytes > Limit - heapBytes())
    reportFatalError("simulated heap limit exceeded (sbrk of " +
                     std::to_string(Bytes) + " bytes past " +
                     std::to_string(heapBytes()) + ")");
  return grow(Bytes);
}

bool SimHeap::trySbrk(uint32_t Bytes, Addr &OldBreak) {
  Bus.flush();
  if (Bytes > Limit - heapBytes() ||
      uint64_t(heapBytes()) + Bytes > SoftLimit) {
    ++SbrkDenied;
    return false;
  }
  OldBreak = grow(Bytes);
  return true;
}

Addr SimHeap::grow(uint32_t Bytes) {
  if (SbrkCallsProbe) {
    SbrkCallsProbe->add();
    SbrkBytesProbe->add(Bytes);
  }
  if (SbrkChunkHist)
    SbrkChunkHist->record(Bytes);
  Addr Old = Break;
  Break += Bytes;
  Storage.resize(Break - Base, 0);
  return Old;
}

void SimHeap::attachTelemetry(Telemetry *Registry) {
  SbrkCallsProbe = Registry ? Registry->counter("mem.sbrk_calls") : nullptr;
  SbrkBytesProbe = Registry ? Registry->counter("mem.sbrk_bytes") : nullptr;
  SbrkChunkHist = Registry ? Registry->histogram("mem.sbrk_chunk") : nullptr;
}
