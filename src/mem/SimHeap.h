//===- mem/SimHeap.h - Simulated heap segment -------------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A byte-addressed simulated heap segment with a Unix-style sbrk. The five
/// allocators store *all* of their metadata — free-list links, boundary
/// tags, chunk-header tables — inside this heap through the traced
/// load/store accessors, so every metadata reference the 1993
/// implementations would have made reaches the cache and page simulators at
/// the same simulated address it would have occupied.
///
/// Untraced peek/poke accessors exist for tests and internal assertions;
/// they never emit bus traffic.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_SIMHEAP_H
#define ALLOCSIM_MEM_SIMHEAP_H

#include "mem/MemoryBus.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace allocsim {

class Telemetry;
class TelemetryCounter;
class TelemetryHistogram;

/// Simulated heap: contiguous segment [base(), brk()) of a 32-bit address
/// space backed by host memory.
class SimHeap {
public:
  /// Creates a heap starting at \p Base that may grow to at most \p LimitBytes.
  explicit SimHeap(MemoryBus &TraceBus, Addr Base = HeapBase,
                   uint32_t LimitBytes = 256 * 1024 * 1024);

  /// Extends the break by \p Bytes (like Unix sbrk) and returns the previous
  /// break, i.e. the address of the new region. New memory is zero-filled.
  /// Growth beyond the limit is a fatal error (the 1993 programs never
  /// exhaust a modern host's memory).
  Addr sbrk(uint32_t Bytes);

  /// Non-fatal sbrk: on success sets \p OldBreak to the address of the new
  /// region and returns true; when growth would exceed the hard limit or
  /// the FaultLab soft capacity, counts the denial and returns false with
  /// the heap unchanged. Allocator growth paths use this form so exhaustion
  /// propagates as a null malloc instead of killing the experiment.
  bool trySbrk(uint32_t Bytes, Addr &OldBreak);

  /// Caps heapBytes() at \p TotalBytes for trySbrk (the fatal sbrk keeps
  /// honoring only the hard limit). UINT64_MAX — the default — disables
  /// the cap. FaultLab's `oom:after=` plans set this once the rig is built.
  void setSoftLimit(uint64_t TotalBytes) { SoftLimit = TotalBytes; }
  uint64_t softLimit() const { return SoftLimit; }

  /// trySbrk calls denied so far (by either limit).
  uint64_t sbrkDenied() const { return SbrkDenied; }

  Addr base() const { return Base; }
  Addr brk() const { return Break; }

  /// Bytes obtained from the "operating system" so far.
  uint32_t heapBytes() const { return Break - Base; }

  /// True if [Address, Address+Size) lies inside the allocated segment.
  bool contains(Addr Address, uint32_t Size = 1) const {
    return Address >= Base && Address + Size <= Break &&
           Address + Size > Address;
  }

  /// Traced 32-bit load: emits a 4-byte read on the bus.
  uint32_t load32(Addr Address, AccessSource Source) {
    Bus.emit(Address, 4, AccessKind::Read, Source);
    return peek32(Address);
  }

  /// Traced 32-bit store: emits a 4-byte write on the bus.
  void store32(Addr Address, uint32_t Value, AccessSource Source) {
    Bus.emit(Address, 4, AccessKind::Write, Source);
    poke32(Address, Value);
  }

  /// Untraced 32-bit load (tests / assertions only).
  uint32_t peek32(Addr Address) const {
    assert(contains(Address, 4) && "heap load out of bounds");
    assert((Address & 3) == 0 && "misaligned 32-bit heap access");
    uint32_t Value;
    __builtin_memcpy(&Value, &Storage[Address - Base], 4);
    return Value;
  }

  /// Untraced 32-bit store (tests only).
  void poke32(Addr Address, uint32_t Value) {
    assert(contains(Address, 4) && "heap store out of bounds");
    assert((Address & 3) == 0 && "misaligned 32-bit heap access");
    __builtin_memcpy(&Storage[Address - Base], &Value, 4);
  }

  /// The bus this heap traces through.
  MemoryBus &bus() { return Bus; }

  /// Attaches (or detaches, with nullptr) a telemetry registry; sbrk then
  /// maintains "mem.sbrk_calls"/"mem.sbrk_bytes" counters and, at full
  /// level, a "mem.sbrk_chunk" histogram of per-call growth.
  void attachTelemetry(Telemetry *Registry);

private:
  MemoryBus &Bus;
  Addr Base;
  Addr Break;
  uint32_t Limit;
  /// FaultLab capacity cap on heapBytes(); UINT64_MAX when uncapped.
  uint64_t SoftLimit = UINT64_MAX;
  uint64_t SbrkDenied = 0;
  std::vector<uint8_t> Storage;

  /// Limit-checked growth tail shared by sbrk and trySbrk.
  Addr grow(uint32_t Bytes);

  /// Telemetry probes; null when telemetry is off.
  TelemetryCounter *SbrkCallsProbe = nullptr;
  TelemetryCounter *SbrkBytesProbe = nullptr;
  TelemetryHistogram *SbrkChunkHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_SIMHEAP_H
