//===- mem/MemoryBus.h - Reference fan-out and accounting ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MemoryBus receives every data reference made by the simulated program and
/// allocator, keeps per-source/per-kind reference counts (the "Data Refs"
/// column of the paper's Table 2), and forwards each reference to all
/// attached sinks.
///
/// Delivery is batched: emitted references are staged in a fixed-capacity
/// AccessBatch and handed to the sinks through AccessSink::accessBatch when
/// the batch fills or flush() is called. Counters update at *emit* time, so
/// totalAccesses() et al. are exact at any moment; sink-side statistics
/// become current at the next flush. The default batch capacity is 1 —
/// delivery then happens on every emit, matching the historical scalar bus —
/// and the experiment drivers raise it to AccessBatch::MaxCapacity via
/// setBatchCapacity() for measurement runs (see DESIGN.md §10 for the
/// flush-point contract that keeps HeapCheck observers exact under
/// batching).
///
/// attach() and detach() are legal at any time, including from inside a
/// sink's accessBatch during a flush: a sink attached mid-flush starts
/// receiving with the *next* batch, a sink detached mid-flush receives
/// nothing further (not even the remainder of the current fan-out).
/// Emitting into the bus from inside a flush is not supported (the sinks
/// are pure consumers) and asserts.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_MEMORYBUS_H
#define ALLOCSIM_MEM_MEMORYBUS_H

#include "mem/AccessBatch.h"
#include "mem/AccessSink.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace allocsim {

/// Central reference stream: tallies, batches, and fans out accesses.
class MemoryBus final : public AccessSink {
public:
  /// Attaches \p Sink; it will receive every access emitted after this call
  /// (if attached during a flush, delivery starts with the next batch). The
  /// sink is not owned and must outlive the bus's use.
  void attach(AccessSink *Sink);

  /// Detaches a previously attached sink; it receives nothing after this
  /// call, even mid-fan-out. No-op if not attached. Pending (unflushed)
  /// references emitted while the sink was attached are *not* delivered to
  /// it; callers that need them call flush() first.
  void detach(AccessSink *Sink);

  void access(const MemAccess &Access) override { emit(Access); }

  /// Bulk replay entry (trace readers): counts and stages every record.
  void accessBatch(const MemAccess *Batch, size_t Count) override;

  /// Emit: counts the reference and stages it for delivery, flushing when
  /// the effective batch capacity is reached.
  void emit(const MemAccess &Access) {
    assert(!Flushing && "emit into the bus from inside a flush");
    ++Total;
    ++BySource[static_cast<unsigned>(Access.Source)];
    ++ByKind[static_cast<unsigned>(Access.Kind)];
    Batch.push(Access);
    if (Batch.size() >= Capacity)
      flush();
  }

  /// Convenience emit.
  void emit(Addr Address, uint8_t Size, AccessKind Kind, AccessSource Source) {
    emit(MemAccess{Address, Size, Kind, Source});
  }

  /// Delivers all staged references to every attached sink, in stream
  /// order. No-op when nothing is pending. Idempotent; cheap when empty.
  void flush();

  /// Sets the effective batch capacity, clamped to
  /// [1, AccessBatch::MaxCapacity]. 1 selects scalar delivery (one
  /// accessBatch of size 1 per emit — the reference semantics); larger
  /// values enable true batching. Pending references are flushed first so
  /// the change never reorders the stream.
  void setBatchCapacity(size_t NewCapacity);
  size_t batchCapacity() const { return Capacity; }

  /// References staged but not yet delivered.
  size_t pendingAccesses() const { return Batch.size(); }

  /// Total references seen (emit-time; includes staged ones).
  uint64_t totalAccesses() const { return Total; }

  /// References from one source.
  uint64_t accessesFrom(AccessSource Source) const {
    return BySource[static_cast<unsigned>(Source)];
  }

  /// Reads (resp. writes) across all sources.
  uint64_t reads() const { return ByKind[0]; }
  uint64_t writes() const { return ByKind[1]; }

  /// Resets counters (sinks stay attached). References already staged stay
  /// staged and are still delivered on the next flush: counting is an
  /// emit-time concept, delivery a flush-time one.
  void resetCounters();

private:
  /// Attached sinks. A slot is nulled (not erased) when its sink detaches
  /// during a flush, so the fan-out loop stays valid; compactSinks() erases
  /// the holes once the flush completes.
  std::vector<AccessSink *> Sinks;
  /// Sinks attached during a flush, adopted when it completes.
  std::vector<AccessSink *> PendingAttach;
  AccessBatch Batch;
  size_t Capacity = 1;
  bool Flushing = false;
  bool SinksDirty = false;

  uint64_t Total = 0;
  std::array<uint64_t, NumAccessSources> BySource{};
  std::array<uint64_t, NumAccessKinds> ByKind{};

  bool isAttached(const AccessSink *Sink) const;
  void compactSinks();
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_MEMORYBUS_H
