//===- mem/MemoryBus.h - Reference fan-out and accounting ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MemoryBus receives every data reference made by the simulated program and
/// allocator, keeps per-source/per-kind reference counts (the "Data Refs"
/// column of the paper's Table 2), and forwards each reference to all
/// attached sinks.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_MEMORYBUS_H
#define ALLOCSIM_MEM_MEMORYBUS_H

#include "mem/AccessSink.h"

#include <array>
#include <cstdint>
#include <vector>

namespace allocsim {

/// Central reference stream: tallies and fans out accesses.
class MemoryBus final : public AccessSink {
public:
  /// Attaches \p Sink; it will receive every subsequent access. The sink is
  /// not owned and must outlive the bus's use.
  void attach(AccessSink *Sink);

  /// Detaches a previously attached sink. No-op if not attached.
  void detach(AccessSink *Sink);

  void access(const MemAccess &Access) override;

  /// Convenience emit.
  void emit(Addr Address, uint8_t Size, AccessKind Kind, AccessSource Source) {
    access(MemAccess{Address, Size, Kind, Source});
  }

  /// Total references seen.
  uint64_t totalAccesses() const { return Total; }

  /// References from one source.
  uint64_t accessesFrom(AccessSource Source) const {
    return BySource[static_cast<unsigned>(Source)];
  }

  /// Reads (resp. writes) across all sources.
  uint64_t reads() const { return ByKind[0]; }
  uint64_t writes() const { return ByKind[1]; }

  /// Resets counters (sinks stay attached).
  void resetCounters();

private:
  std::vector<AccessSink *> Sinks;
  uint64_t Total = 0;
  std::array<uint64_t, NumAccessSources> BySource{};
  std::array<uint64_t, NumAccessKinds> ByKind{};
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_MEMORYBUS_H
