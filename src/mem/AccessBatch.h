//===- mem/AccessBatch.h - Fixed-capacity reference batch -------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staging buffer of the batched reference pipeline. The MemoryBus
/// appends every emitted reference to one AccessBatch and hands the filled
/// span to each sink through AccessSink::accessBatch, turning one virtual
/// call per sink per *reference* into one per sink per *batch* — the
/// difference between the simulator's inner loop being dispatch-bound and
/// being bound by the actual cache/paging bookkeeping.
///
/// The batch is a fixed-capacity ring: flush() always drains it completely,
/// so the write cursor simply wraps to the start after every delivery. The
/// *effective* capacity is tunable at runtime between 1 (scalar delivery,
/// bit-compatible with the pre-batching bus and the reference for the
/// equivalence tests) and MaxCapacity (the measurement default).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_ACCESSBATCH_H
#define ALLOCSIM_MEM_ACCESSBATCH_H

#include "mem/MemAccess.h"

#include <array>
#include <cstddef>

namespace allocsim {

/// Fixed-capacity staging buffer for MemAccess records.
struct AccessBatch {
  /// Hard capacity of the ring. 256 records (2 KB) keeps the batch resident
  /// in L1 while amortizing virtual dispatch ~256x; measured throughput is
  /// flat beyond this point.
  static constexpr size_t MaxCapacity = 256;

  std::array<MemAccess, MaxCapacity> Records;
  size_t Fill = 0;

  const MemAccess *data() const { return Records.data(); }
  size_t size() const { return Fill; }
  bool empty() const { return Fill == 0; }

  /// Appends one record; the caller checks capacity (the bus flushes when
  /// its effective capacity is reached).
  void push(const MemAccess &Access) { Records[Fill++] = Access; }

  void clear() { Fill = 0; }
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_ACCESSBATCH_H
