//===- mem/AccessSink.h - Consumer interface for references -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer interface for the reference stream. Cache simulators, the
/// page-fault simulator, and trace writers all implement AccessSink; the
/// MemoryBus fans each reference out to every attached sink, which is how
/// the paper simulated many cache sizes from a single program execution.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_ACCESSSINK_H
#define ALLOCSIM_MEM_ACCESSSINK_H

#include "mem/MemAccess.h"

namespace allocsim {

/// Abstract consumer of memory references.
class AccessSink {
public:
  virtual ~AccessSink();

  /// Consumes one reference.
  virtual void access(const MemAccess &Access) = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_ACCESSSINK_H
