//===- mem/AccessSink.h - Consumer interface for references -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer interface for the reference stream. Cache simulators, the
/// page-fault simulator, and trace writers all implement AccessSink; the
/// MemoryBus fans each reference out to every attached sink, which is how
/// the paper simulated many cache sizes from a single program execution.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_MEM_ACCESSSINK_H
#define ALLOCSIM_MEM_ACCESSSINK_H

#include "mem/MemAccess.h"

#include <cstddef>

namespace allocsim {

/// Abstract consumer of memory references.
class AccessSink {
public:
  virtual ~AccessSink();

  /// Consumes one reference.
  virtual void access(const MemAccess &Access) = 0;

  /// Consumes \p Count references at once. The records are in stream order
  /// and the default simply loops over access(), so overriding is purely a
  /// throughput optimization: hot sinks (cache banks, the page simulator,
  /// trace writers) provide tight batch loops with per-batch-hoisted state,
  /// and the equivalence suite proves every override bit-identical to the
  /// scalar path.
  virtual void accessBatch(const MemAccess *Batch, size_t Count) {
    for (size_t I = 0; I != Count; ++I)
      access(Batch[I]);
  }
};

} // namespace allocsim

#endif // ALLOCSIM_MEM_ACCESSSINK_H
