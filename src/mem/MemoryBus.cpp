//===- mem/MemoryBus.cpp - Reference fan-out and accounting ---------------===//

#include "mem/MemoryBus.h"

#include <algorithm>

using namespace allocsim;

AccessSink::~AccessSink() = default;

void MemoryBus::attach(AccessSink *Sink) {
  if (std::find(Sinks.begin(), Sinks.end(), Sink) == Sinks.end())
    Sinks.push_back(Sink);
}

void MemoryBus::detach(AccessSink *Sink) {
  Sinks.erase(std::remove(Sinks.begin(), Sinks.end(), Sink), Sinks.end());
}

void MemoryBus::access(const MemAccess &Access) {
  ++Total;
  ++BySource[static_cast<unsigned>(Access.Source)];
  ++ByKind[static_cast<unsigned>(Access.Kind)];
  for (AccessSink *Sink : Sinks)
    Sink->access(Access);
}

void MemoryBus::resetCounters() {
  Total = 0;
  BySource.fill(0);
  ByKind.fill(0);
}
