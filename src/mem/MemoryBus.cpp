//===- mem/MemoryBus.cpp - Reference fan-out and accounting ---------------===//

#include "mem/MemoryBus.h"

#include <algorithm>

using namespace allocsim;

AccessSink::~AccessSink() = default;

bool MemoryBus::isAttached(const AccessSink *Sink) const {
  return std::find(Sinks.begin(), Sinks.end(), Sink) != Sinks.end() ||
         std::find(PendingAttach.begin(), PendingAttach.end(), Sink) !=
             PendingAttach.end();
}

void MemoryBus::attach(AccessSink *Sink) {
  if (isAttached(Sink))
    return;
  // Mid-flush attaches must not join the fan-out loop currently running
  // over Sinks: the new sink starts with the next batch.
  if (Flushing)
    PendingAttach.push_back(Sink);
  else
    Sinks.push_back(Sink);
}

void MemoryBus::detach(AccessSink *Sink) {
  PendingAttach.erase(
      std::remove(PendingAttach.begin(), PendingAttach.end(), Sink),
      PendingAttach.end());
  if (Flushing) {
    // Null the slot instead of erasing so the fan-out loop's indices stay
    // valid; the hole is compacted when the flush completes.
    for (AccessSink *&Slot : Sinks)
      if (Slot == Sink) {
        Slot = nullptr;
        SinksDirty = true;
      }
    return;
  }
  Sinks.erase(std::remove(Sinks.begin(), Sinks.end(), Sink), Sinks.end());
}

void MemoryBus::compactSinks() {
  Sinks.erase(std::remove(Sinks.begin(), Sinks.end(), nullptr), Sinks.end());
  SinksDirty = false;
}

void MemoryBus::flush() {
  if (Batch.empty())
    return;
  assert(!Flushing && "re-entrant flush");
  Flushing = true;
  // Index loop, not iterators: a sink's accessBatch may attach (deferred to
  // PendingAttach, so Sinks does not grow under us) or detach (slot nulled,
  // size unchanged) during the fan-out.
  for (size_t I = 0; I != Sinks.size(); ++I)
    if (AccessSink *Sink = Sinks[I])
      Sink->accessBatch(Batch.data(), Batch.size());
  Batch.clear();
  Flushing = false;
  if (SinksDirty)
    compactSinks();
  if (!PendingAttach.empty()) {
    Sinks.insert(Sinks.end(), PendingAttach.begin(), PendingAttach.end());
    PendingAttach.clear();
  }
}

void MemoryBus::accessBatch(const MemAccess *ReplayBatch, size_t Count) {
  for (size_t I = 0; I != Count; ++I)
    emit(ReplayBatch[I]);
}

void MemoryBus::setBatchCapacity(size_t NewCapacity) {
  flush();
  Capacity = std::clamp<size_t>(NewCapacity, 1, AccessBatch::MaxCapacity);
}

void MemoryBus::resetCounters() {
  Total = 0;
  BySource.fill(0);
  ByKind.fill(0);
}
