//===- alloc/GnuGxx.h - Lea segregated first-fit allocator ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's GNU G++ allocator (Doug Lea's early malloc): a first-fit
/// allocator "enhanced ... by using an array of freelists segregated by
/// object size". A freelist bin is selected by the logarithm of the
/// allocation request "to increase the probability of a better fit"; within
/// a bin the blocks are doubly linked and searched first-fit. In other
/// respects (boundary tags, splitting, coalescing of adjacent free blocks)
/// it is identical to FIRSTFIT. The paper measures it as the second-worst
/// allocator for locality: better than FIRSTFIT because bins shorten
/// searches, but still search- and coalesce-bound.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_GNUGXX_H
#define ALLOCSIM_ALLOC_GNUGXX_H

#include "alloc/CoalescingAllocator.h"

#include <array>

namespace allocsim {

/// Doug Lea's log2-binned segregated first fit.
class GnuGxx final : public CoalescingAllocator {
public:
  GnuGxx(SimHeap &Heap, CostModel &Cost);

  AllocatorKind kind() const override { return AllocatorKind::GnuGxx; }

  /// Scan-length telemetry, as in FirstFit.
  uint64_t blocksSearched() const override { return BlocksExamined; }

  /// Number of size-segregated bins. Bin B holds free blocks with
  /// size in [2^(B+4), 2^(B+5)); the last bin holds everything larger.
  static constexpr unsigned NumBins = 24;

  /// Bin index for a block of \p Size bytes (Size >= MinBlockBytes); also
  /// the HeapCheck walker's bin-membership oracle.
  static unsigned binFor(uint32_t Size);

  /// Introspection for the HeapCheck invariant walker.
  Addr binSentinel(unsigned Bin) const { return Bins[Bin]; }

private:
  std::pair<Addr, uint32_t> findFit(uint32_t Need) override;
  void insertFree(Addr Block, uint32_t Size) override;
  uint64_t callOverhead() const override { return 14; }
  uint32_t minSplitBytes() const override { return 64; }

  /// Sentinel node of each bin's circular list.
  std::array<Addr, NumBins> Bins;

  uint64_t BlocksExamined = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_GNUGXX_H
