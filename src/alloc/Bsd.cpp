//===- alloc/Bsd.cpp - Kingsley 4.2BSD power-of-two allocator -------------===//

#include "alloc/Bsd.h"

#include "support/Error.h"

#include <cassert>

using namespace allocsim;

namespace {

/// Allocated-block header: bucket index plus a magic marker.
constexpr uint32_t InUseMagic = 0xEF00;

uint32_t makeHeader(unsigned Bucket) {
  return InUseMagic | static_cast<uint32_t>(Bucket);
}

} // namespace

Bsd::Bsd(SimHeap &AllocHeap, CostModel &AllocCost)
    : Allocator(AllocHeap, AllocCost) {
  // nextf[NumBuckets]: one head word per bucket, zero-initialized by sbrk.
  NextF = Heap.sbrk(4 * NumBuckets);
}

unsigned Bsd::bucketFor(uint32_t Size) {
  uint32_t Need = Size + 4; // one-word header
  unsigned Bucket = 0;
  while (bucketBytes(Bucket) < Need) {
    ++Bucket;
    if (Bucket >= NumBuckets)
      reportFatalError("BSD allocation request too large");
  }
  return Bucket;
}

Addr Bsd::doMalloc(uint32_t Size) {
  charge(10); // call overhead + bucket computation.
  unsigned Bucket = bucketFor(Size);
  if (BucketHist)
    BucketHist->record(Bucket);

  Addr Head = load(freelistSlot(Bucket));
  if (Head == 0) {
    if (!moreCore(Bucket))
      return 0; // OOM: the empty freelist head is still empty.
    Head = load(freelistSlot(Bucket));
    assert(Head != 0 && "morecore produced no blocks");
  }
  // Pop: the free block's first word is its next link.
  Addr Next = load(Head);
  store(freelistSlot(Bucket), Next);
  store(Head, makeHeader(Bucket));
  return Head + 4;
}

bool Bsd::moreCore(unsigned Bucket) {
  uint32_t BlockBytes = bucketBytes(Bucket);
  uint32_t Amount = BlockBytes < 4096 ? 4096 : BlockBytes;
  charge(24); // sbrk overhead.
  Addr Region = 0;
  if (!Heap.trySbrk(Amount, Region))
    return false;
  if (RefillsProbe) {
    RefillsProbe->add();
    RefillBytesProbe->add(Amount);
  }

  // Chain every carved block onto the (empty) freelist.
  uint32_t Count = Amount / BlockBytes;
  for (uint32_t I = 0; I + 1 < Count; ++I)
    store(Region + I * BlockBytes, Region + (I + 1) * BlockBytes);
  store(Region + (Count - 1) * BlockBytes, 0);
  store(freelistSlot(Bucket), Region);
  return true;
}

void Bsd::doFree(Addr Ptr) {
  charge(8);
  Addr Block = Ptr - 4;
  uint32_t Header = load(Block);
  assert((Header & 0xFF00) == InUseMagic && "freeing corrupt BSD block");
  unsigned Bucket = Header & 0xFF;
  assert(Bucket < NumBuckets && "corrupt BSD bucket index");

  // LIFO push.
  Addr Head = load(freelistSlot(Bucket));
  store(Block, Head);
  store(freelistSlot(Bucket), Block);
}
