//===- alloc/SizeClassMap.h - Size-class mapping policies -------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Size-class selection, the design axis of the paper's Section 4.4: "the
/// best allocator strikes a balance between too few and too many size
/// classes". The paper names three ways to choose classes — anecdote
/// (QuickFit's 4..32 word multiples), bounded internal fragmentation
/// ("if 25% or less internal fragmentation is tolerated, then objects of
/// size 12-16 bytes are rounded to 16 bytes"), and empirical measurement of
/// the program (their CustoMalloc work) — and its Figure 9 shows how an
/// arbitrary mapping is made O(1): a size-indexed mapping array.
///
/// SizeClassMap implements all policies behind one table, and CustomAlloc
/// installs that table in simulated memory so the Figure 9 lookup itself is
/// part of the measured reference stream.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_SIZECLASSMAP_H
#define ALLOCSIM_ALLOC_SIZECLASSMAP_H

#include "support/Histogram.h"

#include <cstdint>
#include <vector>

namespace allocsim {

/// An O(1) mapping from request size to size class (Figure 9).
class SizeClassMap {
public:
  /// Power-of-two classes up to \p MaxSize (the BSD policy).
  static SizeClassMap powerOfTwo(uint32_t MaxSize);

  /// Multiples of \p Granule bytes up to \p MaxSize (the QuickFit policy;
  /// the paper's measured configuration is Granule=4, MaxSize=32).
  static SizeClassMap wordMultiple(uint32_t Granule, uint32_t MaxSize);

  /// Classes chosen so rounding wastes at most \p MaxWaste of each object
  /// (the DeTreville policy the paper cites; 0.25 reproduces its example).
  static SizeClassMap boundedFragmentation(double MaxWaste, uint32_t MaxSize);

  /// Empirical policy (CustoMalloc): exact classes for the \p MaxExact most
  /// frequent request sizes in \p Profile, padded out with 25%-bounded
  /// classes so all sizes up to \p MaxSize are covered.
  static SizeClassMap fromProfile(const Histogram &Profile, size_t MaxExact,
                                  uint32_t MaxSize);

  /// Largest request this map covers.
  uint32_t maxSize() const { return MaxSize; }

  /// Number of classes.
  size_t numClasses() const { return ClassSizes.size(); }

  /// Class index for a request of \p Size bytes (1 <= Size <= maxSize()).
  uint32_t classIndexFor(uint32_t Size) const;

  /// Rounded (class) size of class \p Index.
  uint32_t classSize(uint32_t Index) const { return ClassSizes[Index]; }

  /// Bytes wasted when a request of \p Size is served from its class.
  uint32_t wasteFor(uint32_t Size) const {
    return classSize(classIndexFor(Size)) - Size;
  }

  /// Expected wasted fraction over a request-size profile:
  /// sum(count * waste) / sum(count * classSize).
  double expectedWaste(const Histogram &Profile) const;

  /// The raw mapping table, indexed by (Size+3)/4: entry = class index.
  /// CustomAlloc installs exactly this array into simulated memory.
  const std::vector<uint32_t> &table() const { return TableBySizeWord; }

private:
  /// Builds the table from an ascending list of distinct class sizes (all
  /// multiples of 4).
  explicit SizeClassMap(std::vector<uint32_t> Sizes);

  std::vector<uint32_t> ClassSizes;
  std::vector<uint32_t> TableBySizeWord;
  uint32_t MaxSize = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_SIZECLASSMAP_H
