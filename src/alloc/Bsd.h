//===- alloc/Bsd.h - Kingsley 4.2BSD power-of-two allocator -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's BSD allocator: Chris Kingsley's "very fast storage
/// allocator" distributed with 4.2BSD Unix. Requests are rounded up to a
/// power of two (including a one-word header), one LIFO freelist is kept
/// per size class, and no attempt is ever made to split or coalesce. The
/// result is the paper's speed/space trade-off exemplar: allocation is a
/// handful of instructions with excellent object re-use (hence locality),
/// but internal fragmentation can approach 2x ("much of the allocated space
/// may be wasted").
///
/// Block layout: a one-word header holding the bucket index when allocated;
/// when free, the same word holds the next-free link.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_BSD_H
#define ALLOCSIM_ALLOC_BSD_H

#include "alloc/Allocator.h"

namespace allocsim {

/// Kingsley power-of-two segregated storage.
class Bsd final : public Allocator {
public:
  Bsd(SimHeap &Heap, CostModel &Cost);

  AllocatorKind kind() const override { return AllocatorKind::Bsd; }

  /// Bucket B holds blocks of 2^(B+4) bytes: 16 bytes up to 128 MB.
  static constexpr unsigned NumBuckets = 24;
  static constexpr uint32_t MinBlockBytes = 16;

  /// Block bytes for bucket \p Bucket.
  static uint32_t bucketBytes(unsigned Bucket) {
    return MinBlockBytes << Bucket;
  }

  /// Smallest bucket whose block holds \p Size user bytes plus the header.
  static unsigned bucketFor(uint32_t Size);

  /// Simulated address of nextf[Bucket] (HeapCheck walker introspection).
  Addr freelistSlot(unsigned Bucket) const { return NextF + 4 * Bucket; }

private:
  Addr doMalloc(uint32_t Size) override;
  void doFree(Addr Ptr) override;

  /// Refills bucket \p Bucket from sbrk, carving a page (or one block, if
  /// larger) into a freelist chain, exactly as Kingsley's morecore does.
  /// Returns false — leaving the bucket untouched — on heap exhaustion.
  bool moreCore(unsigned Bucket);

  void onShadowAttached() override { noteMetadata(NextF, 4 * NumBuckets); }

  void onTelemetryAttached() override {
    RefillsProbe = counterProbe("refills");
    RefillBytesProbe = counterProbe("refill_bytes");
    BucketHist = histogramProbe("class_index");
  }

  /// Address of the nextf[] bucket-head array (in the static area).
  Addr NextF;

  /// Telemetry probes; null when telemetry is off.
  TelemetryCounter *RefillsProbe = nullptr;
  TelemetryCounter *RefillBytesProbe = nullptr;
  TelemetryHistogram *BucketHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_BSD_H
