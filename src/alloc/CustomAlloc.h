//===- alloc/CustomAlloc.h - Synthesized CustoMalloc allocator -*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator architecture the paper's Sections 4.4/5 advocate and its
/// future work pursues (the authors' CustoMalloc line): a QuickFit-style
/// segregated-storage front end whose size classes are *synthesized from an
/// empirical profile of the target program*, with an arbitrary size-to-class
/// mapping implemented by the Figure 9 mapping array, and a general
/// (GNU G++) allocator behind it for rare and large requests.
///
/// The mapping array is installed in simulated memory, so the single
/// table lookup that makes arbitrary mappings affordable is itself part of
/// the measured reference stream.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_CUSTOMALLOC_H
#define ALLOCSIM_ALLOC_CUSTOMALLOC_H

#include "alloc/Allocator.h"
#include "alloc/GnuGxx.h"
#include "alloc/SizeClassMap.h"

#include <vector>

namespace allocsim {

/// Profile-synthesized segregated-storage allocator.
class CustomAlloc final : public Allocator {
public:
  /// Builds the allocator around a synthesized \p Classes map (typically
  /// SizeClassMap::fromProfile of a captured workload profile).
  CustomAlloc(SimHeap &Heap, CostModel &Cost, SizeClassMap Classes);

  AllocatorKind kind() const override { return AllocatorKind::Custom; }

  const SizeClassMap &classes() const { return Map; }

  uint64_t fastMallocs() const { return FastMallocs; }
  uint64_t slowMallocs() const { return SlowMallocs; }

  /// Scans performed by the general (GNU G++) backend.
  uint64_t blocksSearched() const override {
    return General.blocksSearched();
  }

  /// Introspection for the HeapCheck invariant walker.
  Addr freelistSlot(uint32_t ClassIndex) const {
    return FreeLists + 4 * ClassIndex;
  }
  Addr tableSlot(uint32_t SizeWord) const { return MapTable + 4 * SizeWord; }
  const GnuGxx &generalBackend() const { return General; }

  static uint32_t fastHeader(uint32_t ClassIndex) {
    return (ClassIndex << 8) | 0x2u | 0x1u;
  }
  static bool isFastHeader(uint32_t Header) { return (Header & 0x2u) != 0; }

private:
  Addr doMalloc(uint32_t Size) override;
  void doFree(Addr Ptr) override;

  Addr carve(uint32_t ClassIndex);

  void onShadowAttached() override {
    noteMetadata(MapTable,
                 static_cast<uint32_t>(4 * Map.table().size()));
    noteMetadata(FreeLists, static_cast<uint32_t>(4 * Map.numClasses()));
    General.attachShadow(shadowObserver());
  }

  void onTelemetryAttached() override {
    ClassHitsProbe = counterProbe("class_hits");
    ClassMissesProbe = counterProbe("class_misses");
    RefillsProbe = counterProbe("tail_refills");
    ClassIndexHist = histogramProbe("class_index");
    General.attachTelemetry(telemetry(), telemetryPrefix() + ".general");
  }

  SizeClassMap Map;
  /// Figure 9 mapping array, in simulated memory.
  Addr MapTable;
  /// Per-class LIFO freelist heads, in simulated memory.
  Addr FreeLists;
  /// Bump-pointer region for replenishing class lists.
  Addr TailPtr = 0;
  Addr TailEnd = 0;

  GnuGxx General;

  uint64_t FastMallocs = 0;
  uint64_t SlowMallocs = 0;

  /// Telemetry probes; null when telemetry is off (same semantics as
  /// QuickFit: hit = served by a synthesized class, miss = delegated).
  TelemetryCounter *ClassHitsProbe = nullptr;
  TelemetryCounter *ClassMissesProbe = nullptr;
  TelemetryCounter *RefillsProbe = nullptr;
  TelemetryHistogram *ClassIndexHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_CUSTOMALLOC_H
